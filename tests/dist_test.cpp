// Distributed sharded replica-exchange portfolio (src/dist) pins:
//   - byte-identity: every (workers x worker-jobs) split of the ladder —
//     including attached daemon workers — produces member-for-member the
//     identical PortfolioResult the single-process run does;
//   - crash resilience: a worker SIGKILLed mid-run is respawned from the
//     authoritative barrier states and the final report is unchanged;
//   - checkpoint interchange: blobs written by distributed runs resume in
//     single-process runs and vice versa, at any worker count;
//   - strict exchange framing: corrupted frames and malformed protocol
//     lines are rejected with a clean error, never mis-applied;
//   - the slot partition and the NDJSON codec round-trip exactly.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "dist/codec.hpp"
#include "dist/coordinator.hpp"
#include "opt/soc_optimizer.hpp"
#include "portfolio/checkpoint.hpp"
#include "portfolio/ladder_policy.hpp"
#include "portfolio/portfolio.hpp"
#include "portfolio/shard.hpp"
#include "server/fd_io.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"
#include "socgen/d695.hpp"

#ifndef SOCTEST_CLI_BINARY
#error "dist_test needs SOCTEST_CLI_BINARY (the worker binary to spawn)"
#endif

namespace soctest {
namespace {

void expect_identical(const OptimizationResult& a, const OptimizationResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.arch.widths, b.arch.widths);
  EXPECT_EQ(a.test_time, b.test_time);
  EXPECT_EQ(a.data_volume_bits, b.data_volume_bits);
  ASSERT_EQ(a.schedule.entries.size(), b.schedule.entries.size());
  for (std::size_t i = 0; i < a.schedule.entries.size(); ++i) {
    EXPECT_EQ(a.schedule.entries[i].core, b.schedule.entries[i].core) << i;
    EXPECT_EQ(a.schedule.entries[i].bus, b.schedule.entries[i].bus) << i;
    EXPECT_EQ(a.schedule.entries[i].start, b.schedule.entries[i].start) << i;
    EXPECT_EQ(a.schedule.entries[i].end, b.schedule.entries[i].end) << i;
  }
  EXPECT_EQ(a.schedule.bus_finish, b.schedule.bus_finish);
  EXPECT_EQ(a.wiring.onchip_wires, b.wiring.onchip_wires);
  EXPECT_EQ(a.wiring.ate_channels, b.wiring.ate_channels);
  EXPECT_EQ(a.wiring.decompressors, b.wiring.decompressors);
}

void expect_same_portfolio(const PortfolioResult& a, const PortfolioResult& b,
                           const std::string& label) {
  SCOPED_TRACE(label);
  expect_identical(a.best, b.best, "best");
  ASSERT_EQ(a.replica_best.size(), b.replica_best.size());
  for (std::size_t r = 0; r < a.replica_best.size(); ++r)
    expect_identical(a.replica_best[r], b.replica_best[r],
                     "replica " + std::to_string(r));
  EXPECT_EQ(a.stats.sweeps_completed, b.stats.sweeps_completed);
  EXPECT_EQ(a.stats.proposals_total, b.stats.proposals_total);
  EXPECT_EQ(a.stats.swaps_attempted, b.stats.swaps_attempted);
  EXPECT_EQ(a.stats.swaps_accepted, b.stats.swaps_accepted);
  EXPECT_EQ(a.stats.best_by_sweep, b.stats.best_by_sweep);
  EXPECT_EQ(a.stats.hill_climb_won, b.stats.hill_climb_won);
  ASSERT_EQ(a.stats.replica.size(), b.stats.replica.size());
  for (std::size_t r = 0; r < a.stats.replica.size(); ++r) {
    EXPECT_EQ(a.stats.replica[r].proposals, b.stats.replica[r].proposals);
    EXPECT_EQ(a.stats.replica[r].best_test_time,
              b.stats.replica[r].best_test_time);
  }
}

const SocOptimizer& d695_optimizer() {
  static const SocSpec soc = make_d695();
  static const SocOptimizer opt(soc, [] {
    ExploreOptions e;
    e.max_width = 16;
    e.max_chains = 64;
    return e;
  }());
  return opt;
}

OptimizerOptions d695_options() {
  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;
  return o;
}

PortfolioOptions small_portfolio(std::uint64_t seed = 7) {
  PortfolioOptions p;
  p.replicas = 4;
  p.sweeps = 5;
  p.proposals_per_sweep = 20;
  p.seed = seed;
  return p;
}

/// DistOptions matching d695_optimizer()'s explore universe, spawning the
/// real CLI binary as the worker process.
dist::DistOptions d695_dist(int workers, int worker_jobs = 1) {
  dist::DistOptions d;
  d.workers = workers;
  d.worker_jobs = worker_jobs;
  d.worker_cmd = SOCTEST_CLI_BINARY;
  d.explore_max_width = 16;
  d.explore_max_chains = 64;
  return d;
}

std::string temp_path(const std::string& stem) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + stem + "-" + info->test_suite_name() + "-" +
         info->name() + ".bin";
}

TEST(DistShard, SlotRangePartitionsTheLadder) {
  for (int K = 1; K <= 9; ++K) {
    for (int W = 1; W <= K; ++W) {
      int covered = 0;
      int prev_end = 0;
      for (int w = 0; w < W; ++w) {
        const auto r = portfolio::shard_slot_range(K, W, w);
        EXPECT_EQ(r.first, prev_end) << "K=" << K << " W=" << W << " w=" << w;
        EXPECT_LE(r.second - r.first, K / W + 1);
        EXPECT_GE(r.second - r.first, K / W);
        covered += r.second - r.first;
        prev_end = r.second;
      }
      EXPECT_EQ(prev_end, K);
      EXPECT_EQ(covered, K);
    }
  }
}

TEST(DistCodec, HexRoundTripsAndRejectsGarbage) {
  const std::vector<unsigned char> bytes = {0x00, 0xff, 0x5a, 0x01};
  EXPECT_EQ(dist::hex_encode(bytes), "00ff5a01");
  EXPECT_EQ(dist::hex_decode("00ff5a01"), bytes);
  EXPECT_TRUE(dist::hex_decode("").empty());
  EXPECT_THROW(dist::hex_decode("abc"), std::runtime_error);   // odd length
  EXPECT_THROW(dist::hex_decode("zz"), std::runtime_error);    // non-hex
}

TEST(DistCodec, InitLineRoundTripsEveryTrajectoryField) {
  dist::WorkerInit in;
  in.soc_text = "soc tiny\ncore a\n  inputs 1\nend\n";
  in.select = true;
  in.explore_max_width = 24;
  in.explore_max_chains = 99;
  in.opts.width = 17;
  in.opts.mode = ArchMode::PerTam;
  in.opts.constraint = ConstraintMode::AteChannels;
  in.opts.max_buses = 5;
  in.opts.max_search_steps = 321;
  in.opts.power_budget_mw = 12.625;
  in.opts.incremental = false;
  in.opts.capacity_bound = false;
  in.opts.portfolio = 6;
  in.opts.backend = BackendKind::Race;
  in.popts.replicas = 6;
  in.popts.sweeps = 11;
  in.popts.proposals_per_sweep = 13;
  in.popts.initial_temperature = 0.1;  // not exactly representable: bits
  in.popts.temperature_ratio = 0.3;    // must round-trip, not text
  in.popts.cooling = 0.997;
  in.popts.seed = 0xffffffffffffffffULL;  // full u64, past the 2^53 cliff
  in.popts.swaps_enabled = false;
  in.popts.share_caches = false;
  in.popts.race_hill_climb = false;
  in.popts.adaptive_ladder = true;
  in.ladder_size = 6;
  in.slot_begin = 2;
  in.slot_end = 4;
  in.start_sweep = 3;
  in.fingerprint = 0x123456789abcdef0ULL;
  in.restore_frame_hex = "00ff";

  const dist::CoordCmd cmd = dist::parse_coord_cmd(dist::init_line(in));
  ASSERT_EQ(cmd.kind, dist::CoordCmd::Kind::Init);
  const dist::WorkerInit& out = cmd.init;
  EXPECT_EQ(out.soc_text, in.soc_text);
  EXPECT_EQ(out.select, in.select);
  EXPECT_EQ(out.explore_max_width, in.explore_max_width);
  EXPECT_EQ(out.explore_max_chains, in.explore_max_chains);
  EXPECT_EQ(out.opts.width, in.opts.width);
  EXPECT_EQ(out.opts.mode, in.opts.mode);
  EXPECT_EQ(out.opts.constraint, in.opts.constraint);
  EXPECT_EQ(out.opts.max_buses, in.opts.max_buses);
  EXPECT_EQ(out.opts.max_search_steps, in.opts.max_search_steps);
  EXPECT_EQ(portfolio::double_bits(out.opts.power_budget_mw),
            portfolio::double_bits(in.opts.power_budget_mw));
  EXPECT_EQ(out.opts.incremental, in.opts.incremental);
  EXPECT_EQ(out.opts.capacity_bound, in.opts.capacity_bound);
  EXPECT_EQ(out.opts.portfolio, in.opts.portfolio);
  EXPECT_EQ(out.opts.backend, in.opts.backend);
  EXPECT_EQ(out.popts.replicas, in.popts.replicas);
  EXPECT_EQ(out.popts.sweeps, in.popts.sweeps);
  EXPECT_EQ(out.popts.proposals_per_sweep, in.popts.proposals_per_sweep);
  EXPECT_EQ(portfolio::double_bits(out.popts.initial_temperature),
            portfolio::double_bits(in.popts.initial_temperature));
  EXPECT_EQ(portfolio::double_bits(out.popts.temperature_ratio),
            portfolio::double_bits(in.popts.temperature_ratio));
  EXPECT_EQ(portfolio::double_bits(out.popts.cooling),
            portfolio::double_bits(in.popts.cooling));
  EXPECT_EQ(out.popts.seed, in.popts.seed);
  EXPECT_EQ(out.popts.swaps_enabled, in.popts.swaps_enabled);
  EXPECT_EQ(out.popts.share_caches, in.popts.share_caches);
  EXPECT_EQ(out.popts.race_hill_climb, in.popts.race_hill_climb);
  EXPECT_EQ(out.popts.adaptive_ladder, in.popts.adaptive_ladder);
  EXPECT_EQ(out.ladder_size, in.ladder_size);
  EXPECT_EQ(out.slot_begin, in.slot_begin);
  EXPECT_EQ(out.slot_end, in.slot_end);
  EXPECT_EQ(out.start_sweep, in.start_sweep);
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  EXPECT_EQ(out.restore_frame_hex, in.restore_frame_hex);
}

TEST(DistCodec, InitLineRejectsAnUnknownBackendTag) {
  dist::WorkerInit in;
  in.soc_text = "soc tiny\n";
  in.opts.backend = BackendKind::Race;
  std::string line = dist::init_line(in);
  const std::string good = "\"backend\": 2";
  const std::size_t at = line.find(good);
  ASSERT_NE(at, std::string::npos) << line;
  line.replace(at, good.size(), "\"backend\": 9");
  EXPECT_THROW(dist::parse_coord_cmd(line), std::runtime_error);
}

TEST(DistCodec, BarrierAndEventsRoundTrip) {
  dist::BarrierCmd b;
  b.sweep = 9;
  b.swaps = {0, 2};
  b.adopts.emplace_back(3, std::vector<int>{4, 5, 7});
  b.adopts.emplace_back(4, std::vector<int>{16});
  b.temps = {1ULL, 0ULL, 0xffffffffffffffffULL};
  const dist::CoordCmd cmd = dist::parse_coord_cmd(dist::barrier_line(b));
  ASSERT_EQ(cmd.kind, dist::CoordCmd::Kind::Barrier);
  EXPECT_EQ(cmd.barrier.sweep, b.sweep);
  EXPECT_EQ(cmd.barrier.swaps, b.swaps);
  EXPECT_EQ(cmd.barrier.adopts, b.adopts);
  EXPECT_EQ(cmd.barrier.temps, b.temps);

  EXPECT_EQ(dist::parse_coord_cmd(dist::sweep_line(4)).kind,
            dist::CoordCmd::Kind::Sweep);
  EXPECT_EQ(dist::parse_coord_cmd(dist::sweep_line(4)).sweep, 4);
  EXPECT_EQ(dist::parse_coord_cmd(dist::finish_line()).kind,
            dist::CoordCmd::Kind::Finish);

  const dist::WorkerEvent ready =
      dist::parse_worker_event(dist::ready_line("ab12"));
  EXPECT_EQ(ready.kind, dist::WorkerEvent::Kind::Ready);
  EXPECT_EQ(ready.frame_hex, "ab12");
  const dist::WorkerEvent frame =
      dist::parse_worker_event(dist::frame_line(6, "cd"));
  EXPECT_EQ(frame.kind, dist::WorkerEvent::Kind::Frame);
  EXPECT_EQ(frame.sweep, 6);
  EXPECT_EQ(frame.frame_hex, "cd");

  runtime::SearchStats s;
  s.candidates_generated = 1;
  s.anneal_proposals = 0xfffffffffffffff0ULL;
  s.portfolio_swaps_accepted = 13;
  const dist::WorkerEvent bye = dist::parse_worker_event(dist::bye_line(s));
  EXPECT_EQ(bye.kind, dist::WorkerEvent::Kind::Bye);
  EXPECT_EQ(bye.counters.candidates_generated, s.candidates_generated);
  EXPECT_EQ(bye.counters.anneal_proposals, s.anneal_proposals);
  EXPECT_EQ(bye.counters.portfolio_swaps_accepted,
            s.portfolio_swaps_accepted);

  const dist::WorkerEvent err = dist::parse_worker_event(
      dist::error_line("bad \"thing\"\nhappened"));
  EXPECT_EQ(err.kind, dist::WorkerEvent::Kind::Error);
  EXPECT_EQ(err.message, "bad \"thing\"\nhappened");
}

TEST(DistCodec, StrictParsersRejectMalformedLines) {
  EXPECT_THROW(dist::parse_coord_cmd("not json"), std::runtime_error);
  EXPECT_THROW(dist::parse_coord_cmd("{\"cmd\": \"warp\"}"),
               std::runtime_error);
  EXPECT_THROW(dist::parse_coord_cmd("{\"cmd\": \"sweep\"}"),
               std::runtime_error);  // missing sweep index
  EXPECT_THROW(dist::parse_worker_event("{\"event\": \"frame\"}"),
               std::runtime_error);  // missing fields
  EXPECT_THROW(dist::parse_worker_event(
                   "{\"event\": \"bye\", \"counters\": [1, 2]}"),
               std::runtime_error);  // wrong counter arity
}

TEST(DistFraming, CorruptedExchangeFrameIsRejected) {
  // A real frame, then corrupted in the ways a broken transport could
  // produce: flipped magic, truncation, trailing bytes. Every one must
  // throw — a mis-applied frame would silently fork the trajectory.
  portfolio::ShardFrame f;
  f.fingerprint = 42;
  f.sweep = 3;
  f.slot_begin = 1;
  f.slot_end = 2;
  portfolio::ShardSlotState s;
  s.state.iteration = 5;
  s.state.temperature_bits = portfolio::double_bits(0.25);
  s.state.current_widths = {3, 5};
  s.state.best_widths = {4, 4};
  s.cur_time = 100;
  s.best_time = 90;
  f.slots.push_back(s);
  std::vector<unsigned char> bytes = portfolio::encode_shard_frame(f);

  const portfolio::ShardFrame back = portfolio::decode_shard_frame(bytes);
  EXPECT_EQ(back.fingerprint, f.fingerprint);
  EXPECT_EQ(back.slots[0].state.current_widths, s.state.current_widths);
  EXPECT_EQ(back.slots[0].cur_time, s.cur_time);

  std::vector<unsigned char> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(portfolio::decode_shard_frame(bad_magic), std::runtime_error);

  std::vector<unsigned char> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_THROW(portfolio::decode_shard_frame(truncated), std::runtime_error);

  std::vector<unsigned char> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(portfolio::decode_shard_frame(trailing), std::runtime_error);

  EXPECT_THROW(portfolio::decode_shard_frame({}), std::runtime_error);
}

TEST(DistDeterminism, WorkerJobMatrixIsByteIdentical) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const PortfolioOptions p = small_portfolio();
  const PortfolioResult base = optimize_portfolio(opt, o, p);

  for (const int workers : {1, 2, 4}) {
    for (const int jobs : {1, 4}) {
      const PortfolioResult r = dist::optimize_portfolio_distributed(
          opt, o, p, d695_dist(workers, jobs));
      EXPECT_EQ(r.stats.dist_workers, workers);
      EXPECT_EQ(r.stats.dist_respawns, 0);
      expect_same_portfolio(r, base,
                            "workers=" + std::to_string(workers) +
                                " jobs=" + std::to_string(jobs));
    }
  }
}

TEST(DistDeterminism, RaceBackendMergesIdenticallyAcrossSplits) {
  // --backend race on the distributed portfolio: the coordinator runs the
  // fixed-bus ladder unchanged and merges the rect climb at the end, so
  // every (workers x jobs) split must equal the single-process race run —
  // including which side won the merge.
  const SocOptimizer& opt = d695_optimizer();
  OptimizerOptions o = d695_options();
  o.backend = BackendKind::Race;
  const PortfolioOptions p = small_portfolio(3);
  const PortfolioResult base = optimize_portfolio(opt, o, p);
  EXPECT_TRUE(base.stats.rect_raced);

  for (const int workers : {1, 2}) {
    for (const int jobs : {1, 4}) {
      const PortfolioResult r = dist::optimize_portfolio_distributed(
          opt, o, p, d695_dist(workers, jobs));
      expect_same_portfolio(r, base,
                            "race workers=" + std::to_string(workers) +
                                " jobs=" + std::to_string(jobs));
      EXPECT_TRUE(r.stats.rect_raced);
      EXPECT_EQ(r.stats.rect_won, base.stats.rect_won);
      EXPECT_EQ(r.best.backend, base.best.backend);
    }
  }
}

TEST(DistDeterminism, AdaptiveLadderShardsIdentically) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  PortfolioOptions p = small_portfolio(11);
  p.sweeps = 10;  // crosses a retune barrier (kRetuneEverySweeps = 8)
  p.adaptive_ladder = true;
  const PortfolioResult base = optimize_portfolio(opt, o, p);
  const PortfolioResult r =
      dist::optimize_portfolio_distributed(opt, o, p, d695_dist(3));
  expect_same_portfolio(r, base, "adaptive ladder, 3 workers");
}

TEST(DistCrash, KilledWorkerIsRespawnedWithoutChangingTheReport) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const PortfolioOptions p = small_portfolio(5);
  const PortfolioResult base = optimize_portfolio(opt, o, p);

  dist::DistOptions d = d695_dist(2);
  d.kill_worker = 1;
  d.kill_at_sweep = 2;  // SIGKILL mid-run, after real exchanges happened
  const PortfolioResult r =
      dist::optimize_portfolio_distributed(opt, o, p, d);
  EXPECT_GE(r.stats.dist_respawns, 1);
  expect_same_portfolio(r, base, "kill + respawn");
}

TEST(DistCrash, KillThenResumeFromCheckpointIsByteIdentical) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  PortfolioOptions p = small_portfolio(9);
  p.sweeps = 6;
  const PortfolioResult base = optimize_portfolio(opt, o, p);

  // Segment 1, distributed, checkpointing every sweep, with a worker
  // SIGKILLed partway: the periodic checkpoint written from the
  // authoritative barrier states is the resume point.
  const std::string ck = temp_path("dist-kill-resume");
  PortfolioOptions p1 = p;
  p1.sweeps = 4;
  p1.checkpoint_path = ck;
  p1.checkpoint_every = 1;
  dist::DistOptions d = d695_dist(2);
  d.kill_worker = 0;
  d.kill_at_sweep = 2;
  const PortfolioResult seg1 =
      dist::optimize_portfolio_distributed(opt, o, p1, d);
  EXPECT_GE(seg1.stats.dist_respawns, 1);

  // Segment 2 resumes the distributed checkpoint at a DIFFERENT worker
  // count and finishes the budget: together the segments must equal the
  // uninterrupted single-process run.
  PortfolioOptions p2 = p;
  p2.checkpoint_path = ck;
  const PortfolioResult seg2 = dist::resume_portfolio_distributed(
      opt, o, p2, d695_dist(3), ck);
  expect_same_portfolio(seg2, base, "kill, checkpoint, resume at 3 workers");

  // And the same distributed checkpoint resumes in-process too.
  const PortfolioResult seg2_local = resume_portfolio(opt, o, p2, ck);
  expect_same_portfolio(seg2_local, base, "dist checkpoint, local resume");
  std::remove(ck.c_str());
}

TEST(DistAttach, DaemonWorkersMatchSpawnedWorkers) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const PortfolioOptions p = small_portfolio(13);
  const PortfolioResult base = optimize_portfolio(opt, o, p);

  const std::string sock = ::testing::TempDir() + "dist-attach-test.sock";
  server::ServerCore core;
  std::thread daemon([&] { server::serve_unix(sock, core); });
  // The listener unlinks + rebinds on startup; wait until it accepts.
  for (int i = 0; i < 100; ++i) {
    const int probe = server::connect_unix(sock);
    if (probe >= 0) {
      ::close(probe);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  dist::DistOptions d = d695_dist(0);
  d.attach = {sock, sock};  // two workers borrowed from one daemon
  const PortfolioResult r =
      dist::optimize_portfolio_distributed(opt, o, p, d);
  expect_same_portfolio(r, base, "attached daemon workers");
  EXPECT_EQ(r.stats.dist_workers, 2);

  server::EmitFn drop = [](const std::string&) {};
  core.handle_line("{\"op\": \"shutdown\"}", drop);
  daemon.join();
  std::remove(sock.c_str());
}

}  // namespace
}  // namespace soctest
