// CoreSpec / TestCubeSet / SocSpec unit tests.
#include <gtest/gtest.h>

#include "dft/soc_spec.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(CoreSpec, TotalsFixedScan) {
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 10;
  c.num_outputs = 5;
  c.scan_chain_lengths = {30, 20, 15};
  c.num_patterns = 4;
  EXPECT_EQ(c.total_scan_cells(), 65);
  EXPECT_EQ(c.stimulus_bits_per_pattern(), 75);
  EXPECT_EQ(c.initial_data_volume_bits(), 300);
  EXPECT_EQ(c.max_wrapper_chains(), 13);  // 3 chains + 10 input cells
  EXPECT_NO_THROW(c.validate());
}

TEST(CoreSpec, TotalsFlexibleScan) {
  CoreSpec c;
  c.name = "f";
  c.num_inputs = 4;
  c.flexible_scan = true;
  c.flexible_scan_cells = 1000;
  c.num_patterns = 10;
  EXPECT_EQ(c.total_scan_cells(), 1000);
  EXPECT_EQ(c.stimulus_bits_per_pattern(), 1004);
  EXPECT_EQ(c.max_wrapper_chains(), 1004);
  EXPECT_NO_THROW(c.validate());
}

TEST(CoreSpec, ValidateRejectsBadSpecs) {
  CoreSpec c;
  c.name = "";
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.name = "x";
  c.num_patterns = -1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.num_patterns = 1;
  c.scan_chain_lengths = {0};
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.scan_chain_lengths = {5};
  c.flexible_scan = true;  // fixed chains + flexible is contradictory
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CoreSpec, CombinationalCoreHasOneChain) {
  CoreSpec c;
  c.name = "comb";
  c.num_inputs = 0;
  c.num_patterns = 0;
  EXPECT_EQ(c.max_wrapper_chains(), 1);
}

TEST(TestCubeSet, SparseAndExpandedViewsAgree) {
  TestCubeSet s(10);
  s.add_pattern(TernaryVector::from_string("1XX0XXXXX1"));
  ASSERT_EQ(s.num_patterns(), 1);
  const auto& bits = s.pattern(0);
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0].cell, 0u);
  EXPECT_TRUE(bits[0].value);
  EXPECT_EQ(bits[1].cell, 3u);
  EXPECT_FALSE(bits[1].value);
  EXPECT_EQ(s.expand(0).to_string(), "1XX0XXXXX1");
}

TEST(TestCubeSet, SortsAndRejectsBadBits) {
  TestCubeSet s(8);
  s.add_pattern({{5, true}, {1, false}});
  EXPECT_EQ(s.pattern(0)[0].cell, 1u);
  EXPECT_EQ(s.pattern(0)[1].cell, 5u);
  EXPECT_THROW(s.add_pattern({{8, true}}), std::invalid_argument);
  EXPECT_THROW(s.add_pattern({{2, true}, {2, false}}), std::invalid_argument);
  TestCubeSet t(4);
  EXPECT_THROW(t.add_pattern(TernaryVector(5)), std::invalid_argument);
}

TEST(TestCubeSet, DensityAndSkewStatistics) {
  TestCubeSet s(100);
  std::vector<CareBit> bits;
  for (std::uint32_t i = 0; i < 20; ++i) bits.push_back({i, i < 15});
  s.add_pattern(bits);
  s.add_pattern(std::vector<CareBit>{});
  EXPECT_EQ(s.total_care_bits(), 20);
  EXPECT_DOUBLE_EQ(s.care_bit_density(), 20.0 / 200.0);
  EXPECT_DOUBLE_EQ(s.one_fraction(), 0.75);
}

TEST(SocSpec, ValidateCatchesMismatches) {
  SocSpec soc = testutil::mixed_soc();
  EXPECT_NO_THROW(soc.validate());
  EXPECT_GT(soc.initial_data_volume_bits(), 0);

  SocSpec bad = soc;
  bad.cores[0].spec.num_patterns += 1;  // cubes no longer match
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  SocSpec empty;
  empty.name = "e";
  EXPECT_THROW(empty.validate(), std::invalid_argument);
}

TEST(SocSpec, InitialVolumeIsSumOfCores) {
  const SocSpec soc = testutil::mixed_soc();
  std::int64_t sum = 0;
  for (const auto& c : soc.cores) sum += c.spec.initial_data_volume_bits();
  EXPECT_EQ(soc.initial_data_volume_bits(), sum);
}

}  // namespace
}  // namespace soctest
