// ATE memory model and simulated-annealing search.
#include <gtest/gtest.h>

#include "ate/ate_memory.hpp"
#include "bitvec/bit_util.hpp"
#include "opt/annealing.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

class AteAnnealFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc_ = new SocSpec(testutil::mixed_soc());
    ExploreOptions e;
    e.max_width = 20;
    e.max_chains = 80;
    opt_ = new SocOptimizer(*soc_, e);
  }
  static void TearDownTestSuite() {
    delete opt_;
    delete soc_;
    opt_ = nullptr;
    soc_ = nullptr;
  }
  static SocSpec* soc_;
  static SocOptimizer* opt_;
};
SocSpec* AteAnnealFixture::soc_ = nullptr;
SocOptimizer* AteAnnealFixture::opt_ = nullptr;

TEST_F(AteAnnealFixture, MemoryReportIsConsistent) {
  OptimizerOptions o;
  o.width = 12;
  const OptimizationResult r = opt_->optimize(o);
  const AteMemoryReport mem = ate_memory(r);

  ASSERT_EQ(mem.bus_depth.size(), r.buses.size());
  std::int64_t expected_total = 0;
  for (std::size_t b = 0; b < mem.bus_depth.size(); ++b) {
    EXPECT_GE(mem.bus_depth[b], 0);
    EXPECT_LE(mem.bus_depth[b], mem.max_channel_depth);
    expected_total +=
        mem.bus_depth[b] * std::max(1, r.buses[b].ate_width);
  }
  EXPECT_EQ(mem.total_bits, expected_total);
  // Channel rounding can only pad: stored bits >= scheduled volume, and the
  // padding is below one vector per core per bus.
  EXPECT_GE(mem.total_bits, r.data_volume_bits);
  EXPECT_LE(mem.total_bits,
            r.data_volume_bits +
                static_cast<std::int64_t>(r.schedule.entries.size()) * 20);
  EXPECT_GE(mem.imbalance, 1.0);
}

TEST_F(AteAnnealFixture, MemoryDepthTracksVolumePerBus) {
  OptimizerOptions o;
  o.width = 10;
  const OptimizationResult r = opt_->optimize(o);
  const AteMemoryReport mem = ate_memory(r);
  // Recompute one bus by hand.
  for (std::size_t b = 0; b < r.buses.size(); ++b) {
    std::int64_t depth = 0;
    for (const ScheduleEntry& e : r.schedule.entries)
      if (e.bus == static_cast<int>(b))
        depth += ceil_div(e.choice.data_volume_bits,
                          std::max(1, r.buses[b].ate_width));
    EXPECT_EQ(mem.bus_depth[b], depth);
  }
}

TEST_F(AteAnnealFixture, AnnealingIsValidDeterministicAndCompetitive) {
  OptimizerOptions o;
  o.width = 14;
  AnnealingOptions a;
  a.iterations = 600;
  a.seed = 5;

  const OptimizationResult sa1 = optimize_annealing(*opt_, o, a);
  const OptimizationResult sa2 = optimize_annealing(*opt_, o, a);
  EXPECT_EQ(sa1.test_time, sa2.test_time);  // deterministic
  sa1.schedule.validate(soc_->num_cores());
  EXPECT_EQ(sa1.arch.total_width(), 14);

  // Competitive with hill climbing (within 10% on this easy instance).
  const OptimizationResult hill = opt_->optimize(o);
  EXPECT_LE(sa1.test_time, hill.test_time * 11 / 10);
}

TEST_F(AteAnnealFixture, AnnealingRespectsModeSemantics) {
  OptimizerOptions o;
  o.width = 12;
  o.mode = ArchMode::NoTdc;
  const OptimizationResult r = optimize_annealing(*opt_, o, {300, 0.1, 0.99, 2});
  for (const ScheduleEntry& e : r.schedule.entries)
    EXPECT_EQ(e.choice.mode, AccessMode::Direct);
}

}  // namespace
}  // namespace soctest
