#include "report/json.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace soctest {
namespace {

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ResultSerializationIsWellFormedIsh) {
  const SocSpec soc = testutil::mixed_soc();
  ExploreOptions e;
  e.max_width = 12;
  e.max_chains = 48;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 8;
  const OptimizationResult r = opt.optimize(o);
  const std::string json = result_to_json(r, soc);

  // Structural sanity: balanced braces/brackets, all cores present,
  // numeric fields match the result.
  int braces = 0, brackets = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (c == '"' && prev != '\\') in_string = !in_string;
    if (!in_string) {
      braces += c == '{';
      braces -= c == '}';
      brackets += c == '[';
      brackets -= c == ']';
    }
    prev = c;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);

  for (const auto& core : soc.cores)
    EXPECT_NE(json.find("\"" + core.spec.name + "\""), std::string::npos);
  EXPECT_NE(json.find("\"test_time\": " + std::to_string(r.test_time)),
            std::string::npos);
  EXPECT_NE(json.find("\"total_width\": 8"), std::string::npos);
  EXPECT_NE(json.find("decompressor-per-core"), std::string::npos);
}

}  // namespace
}  // namespace soctest
