// Admissibility properties of the makespan lower bounds (sched/
// greedy_scheduler): on exhaustively enumerable instances neither the
// work-conservation bound nor the bus-capacity bound may exceed the true
// optimum over ALL core-to-bus assignments, and on fuzzed large instances
// neither may exceed the (refined) greedy makespan. The bounds are what
// makes incremental-search pruning invisible in results, so admissibility
// is a correctness property, not a quality metric.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/greedy_scheduler.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

CostTable random_table(Rng& rng, int n, int k, std::int64_t max_time) {
  CostTable t;
  t.num_cores = n;
  t.num_buses = k;
  t.cells.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int b = 0; b < k; ++b) {
      BusAccessCost c;
      c.time = rng.next_range(1, max_time);
      c.choice.test_time = c.time;
      t.cells[static_cast<std::size_t>(i)].push_back(c);
    }
  }
  return t;
}

// Heavy-tailed tables: a few cores are cheap only on one bus and ruinous
// everywhere else — the shape where bus-capacity checks bite.
CostTable skewed_table(Rng& rng, int n, int k) {
  CostTable t = random_table(rng, n, k, 60);
  for (int i = 0; i < n; ++i) {
    if (!rng.next_bool(0.35)) continue;
    const int home = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    for (int b = 0; b < k; ++b) {
      BusAccessCost& c = t.cells[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(b)];
      c.time = b == home ? rng.next_range(30, 90) : rng.next_range(500, 900);
      c.choice.test_time = c.time;
    }
  }
  return t;
}

// True minimum makespan over every one of the k^n assignments.
std::int64_t exhaustive_optimum(const CostTable& t) {
  const int n = t.num_cores, k = t.num_buses;
  std::vector<std::int64_t> load(static_cast<std::size_t>(k), 0);
  std::int64_t best = 0;
  for (int i = 0; i < n; ++i) best += t.at(i, 0).time;  // all-on-bus-0 start
  const auto rec = [&](const auto& self, int core) -> void {
    if (core == n) {
      std::int64_t ms = 0;
      for (std::int64_t l : load) ms = std::max(ms, l);
      best = std::min(best, ms);
      return;
    }
    for (int b = 0; b < k; ++b) {
      load[static_cast<std::size_t>(b)] += t.at(core, b).time;
      self(self, core + 1);
      load[static_cast<std::size_t>(b)] -= t.at(core, b).time;
    }
  };
  rec(rec, 0);
  return best;
}

std::vector<std::int64_t> first_bus_ref(const CostTable& t) {
  std::vector<std::int64_t> ref;
  for (int i = 0; i < t.num_cores; ++i) ref.push_back(t.at(i, 0).time);
  return ref;
}

TEST(PropertyLowerBound, AdmissibleAgainstExhaustiveOptimum) {
  Rng rng(2024);
  for (int trial = 0; trial < 120; ++trial) {
    const int n = static_cast<int>(rng.next_range(1, 5));
    const int k = static_cast<int>(rng.next_range(1, 3));
    const CostTable t = trial % 2 ? skewed_table(rng, n, k)
                                  : random_table(rng, n, k, 1000);
    const std::int64_t opt = exhaustive_optimum(t);
    const std::int64_t work = schedule_lower_bound(t);
    const std::int64_t cap = schedule_capacity_bound(t);
    EXPECT_LE(work, opt) << "work-conservation, trial " << trial;
    EXPECT_LE(cap, opt) << "bus-capacity, trial " << trial;
    // The tighter bound dominates the looser one, never the optimum.
    EXPECT_GE(cap, work) << trial;
  }
}

TEST(PropertyLowerBound, AdmissibleAgainstGreedyOnFuzzedLargeInstances) {
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.next_range(10, 80));
    const int k = static_cast<int>(rng.next_range(2, 8));
    const CostTable t = trial % 2 ? skewed_table(rng, n, k)
                                  : random_table(rng, n, k, 2000);
    const Schedule s = greedy_schedule(t, first_bus_ref(t));
    s.validate(n);
    const std::int64_t cap = schedule_capacity_bound(t);
    EXPECT_GE(cap, schedule_lower_bound(t)) << trial;
    EXPECT_LE(cap, s.makespan()) << trial;
  }
}

TEST(PropertyLowerBound, CapacityBoundIsStrictlyTighterOnConfinedCores) {
  // Two cores affordable only on bus 0 within any competitive makespan;
  // work conservation spreads their load over both buses (bound 11), the
  // capacity argument pins them to bus 0 (bound 20 — the true optimum).
  CostTable t;
  t.num_cores = 3;
  t.num_buses = 2;
  const std::int64_t times[3][2] = {{10, 1000}, {10, 1000}, {1, 1}};
  for (int i = 0; i < 3; ++i) {
    std::vector<BusAccessCost> row;
    for (int b = 0; b < 2; ++b) {
      BusAccessCost c;
      c.time = times[i][b];
      c.choice.test_time = c.time;
      row.push_back(c);
    }
    t.cells.push_back(row);
  }
  EXPECT_EQ(schedule_lower_bound(t), 11);
  EXPECT_EQ(schedule_capacity_bound(t), 20);
  EXPECT_EQ(exhaustive_optimum(t), 20);
}

TEST(PropertyLowerBound, MatrixEntryPointMatchesTableEntryPoints) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.next_range(1, 12));
    const int k = static_cast<int>(rng.next_range(1, 5));
    const CostTable t = random_table(rng, n, k, 500);
    std::vector<std::int64_t> flat;
    for (int i = 0; i < n; ++i)
      for (int b = 0; b < k; ++b) flat.push_back(t.at(i, b).time);
    EXPECT_EQ(makespan_lower_bound(n, k, flat, false),
              schedule_lower_bound(t));
    EXPECT_EQ(makespan_lower_bound(n, k, flat, true),
              schedule_capacity_bound(t));
  }
}

TEST(PropertyLowerBound, ExceedsPredicateAgreesWithBoundValue) {
  // The single-probe predicate the search engines prune on must equal
  // "bound > threshold" for every threshold, both bound variants — probed
  // at and around the bound value and at random thresholds.
  Rng rng(90210);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.next_range(1, 20));
    const int k = static_cast<int>(rng.next_range(1, 6));
    const CostTable t = trial % 2 ? skewed_table(rng, n, k)
                                  : random_table(rng, n, k, 800);
    std::vector<std::int64_t> flat;
    for (int i = 0; i < n; ++i)
      for (int b = 0; b < k; ++b) flat.push_back(t.at(i, b).time);
    for (const bool cap : {false, true}) {
      const std::int64_t bound = makespan_lower_bound(n, k, flat, cap);
      for (const std::int64_t thr :
           {std::int64_t{0}, bound - 1, bound, bound + 1,
            rng.next_range(0, 4000)}) {
        EXPECT_EQ(makespan_bound_exceeds(n, k, flat, thr, cap), bound > thr)
            << "cap=" << cap << " thr=" << thr << " bound=" << bound
            << " trial=" << trial;
      }
    }
  }
}

}  // namespace
}  // namespace soctest
