#include "wrapper/slice_map.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace soctest {
namespace {

TEST(SliceMap, CoordinatesCoverEveryCellOnce) {
  const CoreUnderTest core = testutil::small_core("c", 9, {20, 14, 7}, 3);
  const WrapperDesign d = design_wrapper(core.spec, 4);
  const SliceMap map(d, core.cubes.num_cells());
  EXPECT_EQ(map.num_chains(), 4);
  EXPECT_EQ(map.depth(), d.scan_in_length);

  std::vector<int> hits(
      static_cast<std::size_t>(map.depth()) * 4, 0);
  for (std::int64_t cell = 0; cell < core.cubes.num_cells(); ++cell) {
    const auto s = map.slice_of_cell(static_cast<std::uint32_t>(cell));
    const auto c = map.chain_of_cell(static_cast<std::uint32_t>(cell));
    ASSERT_LT(s, static_cast<std::uint32_t>(map.depth()));
    ASSERT_LT(c, 4u);
    ++hits[s * 4 + c];
  }
  for (int h : hits) EXPECT_LE(h, 1);  // idle positions may be unused
}

TEST(SliceMap, PadBitsSitAtEarlySlices) {
  // One long and one short chain: the short chain's cells occupy the last
  // slices; its early slices are idle.
  CoreSpec spec;
  spec.name = "c";
  spec.num_inputs = 0;
  spec.scan_chain_lengths = {8, 3};
  spec.num_patterns = 1;
  const WrapperDesign d = design_wrapper(spec, 2);
  ASSERT_EQ(d.scan_in_length, 8);
  const SliceMap map(d, spec.stimulus_bits_per_pattern());
  // Chain with 3 cells: its j-th shift-in cell sits at slice 8 - 3 + j.
  int short_chain = d.chains[0].scan_cells == 3 ? 0 : 1;
  for (int j = 0; j < 3; ++j) {
    const std::uint32_t cell =
        d.chains[static_cast<std::size_t>(short_chain)]
            .stimulus_cells[static_cast<std::size_t>(j)];
    EXPECT_EQ(map.slice_of_cell(cell), static_cast<std::uint32_t>(5 + j));
  }
}

TEST(SliceMap, SlicesOfPatternMatchCoordinates) {
  const CoreUnderTest core = testutil::small_core("c", 6, {11, 9}, 4, 0.3);
  const WrapperDesign d = design_wrapper(core.spec, 3);
  const SliceMap map(d, core.cubes.num_cells());
  for (int p = 0; p < core.cubes.num_patterns(); ++p) {
    const auto slices = map.slices_of_pattern(core.cubes, p);
    ASSERT_EQ(static_cast<int>(slices.size()), map.depth());
    // Rebuild the care-bit list from the slices and compare.
    std::size_t care_seen = 0;
    for (const CareBit& b : core.cubes.pattern(p)) {
      const Trit t = slices[map.slice_of_cell(b.cell)].get(
          map.chain_of_cell(b.cell));
      EXPECT_EQ(t, b.value ? Trit::One : Trit::Zero);
      ++care_seen;
    }
    std::size_t care_in_slices = 0;
    for (const TernaryVector& s : slices) care_in_slices += s.count_care();
    EXPECT_EQ(care_in_slices, care_seen);
  }
}

TEST(SliceMap, RejectsCorruptDesigns) {
  const CoreUnderTest core = testutil::small_core("c", 4, {10}, 1);
  WrapperDesign d = design_wrapper(core.spec, 2);
  // Duplicate a cell.
  d.chains[0].stimulus_cells.push_back(d.chains[0].stimulus_cells[0]);
  d.finalize();
  EXPECT_THROW(SliceMap(d, core.cubes.num_cells()), std::invalid_argument);

  WrapperDesign d2 = design_wrapper(core.spec, 2);
  d2.chains[1].stimulus_cells.pop_back();  // now one cell is uncovered
  d2.finalize();
  EXPECT_THROW(SliceMap(d2, core.cubes.num_cells()), std::invalid_argument);
}

}  // namespace
}  // namespace soctest
