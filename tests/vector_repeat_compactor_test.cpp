// ATE vector-repeat storage model and the response-side compactor model.
#include <gtest/gtest.h>

#include <cmath>

#include "ate/vector_repeat.hpp"
#include "codec/stream_encoder.hpp"
#include "decomp/compactor.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(VectorRepeat, RunLengthCounting) {
  EXPECT_EQ(vector_repeat_stats(std::vector<std::uint32_t>{}).stored_vectors,
            0);
  const RepeatStats s =
      vector_repeat_stats(std::vector<std::uint32_t>{7, 7, 7, 1, 1, 7});
  EXPECT_EQ(s.raw_vectors, 6);
  EXPECT_EQ(s.stored_vectors, 3);
  EXPECT_DOUBLE_EQ(s.reduction_factor(), 2.0);
}

TEST(VectorRepeat, CompressedStreamsRepeatHeavily) {
  // Sparse cubes -> most slices are the identical empty-Head codeword ->
  // long runs the tester stores once with a repeat count.
  const CoreUnderTest core = testutil::flex_core("c", 3'000, 6, 0.01, 9);
  const WrapperDesign d = design_wrapper(core.spec, 32);
  const SliceMap map(d, core.cubes.num_cells());
  const EncodedStream stream = encode_stream(map, core.cubes);
  const RepeatStats s = vector_repeat_stats(stream);
  EXPECT_EQ(s.raw_vectors, stream.codeword_count());
  EXPECT_GT(s.reduction_factor(), 1.3);
  EXPECT_LT(s.stored_vectors, s.raw_vectors);
}

TEST(Compactor, StructureAndCost) {
  CompactorSpec spec;
  spec.inputs = 64;
  spec.outputs = 8;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.fan_in(), 8);
  EXPECT_EQ(spec.xor_gates(), 56);  // m - q over the forest
  EXPECT_EQ(spec.mask_cells(), 64);

  CompactorSpec bad;
  bad.inputs = 8;
  bad.outputs = 8;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.outputs = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Compactor, XBlockingAnalysis) {
  CompactorSpec spec;
  spec.inputs = 64;
  spec.outputs = 8;
  EXPECT_DOUBLE_EQ(x_block_probability(spec, 0.0), 0.0);
  EXPECT_NEAR(x_block_probability(spec, 1.0), 1.0, 1e-12);
  const double p05 = x_block_probability(spec, 0.05);
  EXPECT_NEAR(p05, 1.0 - std::pow(0.95, 8), 1e-12);

  // More aggressive compaction (wider fan-in) blocks more.
  CompactorSpec aggressive = spec;
  aggressive.outputs = 2;
  EXPECT_GT(x_block_probability(aggressive, 0.05), p05);

  // Masking recovers most blocked observations.
  EXPECT_GT(observed_fraction(spec, 0.05, true),
            observed_fraction(spec, 0.05, false));
  EXPECT_NEAR(observed_fraction(spec, 0.05, true, 1.0), 1.0, 1e-12);
  EXPECT_THROW(x_block_probability(spec, -0.1), std::invalid_argument);
  EXPECT_THROW(observed_fraction(spec, 0.1, true, 2.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace soctest
