// Workload generation: RNG determinism, cube-synthesis statistics, and the
// benchmark SOC constructors.
#include <gtest/gtest.h>

#include "socgen/d2758.hpp"
#include "socgen/d695.hpp"
#include "socgen/industrial.hpp"
#include "socgen/rng.hpp"
#include "socgen/systems.hpp"

namespace soctest {
namespace {

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  int differs = 0;
  Rng a2(1);
  for (int i = 0; i < 100; ++i) differs += a2.next_u64() != c.next_u64();
  EXPECT_GT(differs, 90);
}

TEST(Rng, NextBelowIsInRangeAndCoversValues) {
  Rng rng(3);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++hits[static_cast<std::size_t>(v)];
  }
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, RangeAndGeometric) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) {
    const int g = rng.next_geometric(6.0);
    EXPECT_GE(g, 1);
    sum += g;
  }
  EXPECT_NEAR(sum / 20'000, 6.0, 0.5);
}

TEST(CubeSynth, HitsRequestedStatistics) {
  CubeSynthParams p;
  p.num_cells = 20'000;
  p.num_patterns = 10;
  p.care_density = 0.03;
  p.one_fraction = 0.85;
  const TestCubeSet cubes = synthesize_cubes(p, 77);
  EXPECT_EQ(cubes.num_patterns(), 10);
  EXPECT_NEAR(cubes.care_bit_density(), 0.03, 0.004);
  EXPECT_NEAR(cubes.one_fraction(), 0.85, 0.05);
}

TEST(CubeSynth, DeterministicInSeed) {
  CubeSynthParams p;
  p.num_cells = 500;
  p.num_patterns = 3;
  p.care_density = 0.1;
  const TestCubeSet a = synthesize_cubes(p, 11);
  const TestCubeSet b = synthesize_cubes(p, 11);
  const TestCubeSet c = synthesize_cubes(p, 12);
  ASSERT_EQ(a.num_patterns(), b.num_patterns());
  for (int i = 0; i < a.num_patterns(); ++i)
    EXPECT_EQ(a.pattern(i), b.pattern(i));
  bool any_diff = false;
  for (int i = 0; i < a.num_patterns(); ++i)
    any_diff |= !(a.pattern(i) == c.pattern(i));
  EXPECT_TRUE(any_diff);
}

TEST(CubeSynth, RejectsBadParams) {
  CubeSynthParams p;
  p.num_cells = 0;
  EXPECT_THROW(synthesize_cubes(p, 1), std::invalid_argument);
  p.num_cells = 10;
  p.care_density = 0.0;
  EXPECT_THROW(synthesize_cubes(p, 1), std::invalid_argument);
  p.care_density = 1.5;
  EXPECT_THROW(synthesize_cubes(p, 1), std::invalid_argument);
}

TEST(Industrial, CatalogueMatchesPaperRanges) {
  const auto& cat = industrial_catalogue();
  EXPECT_EQ(cat.size(), 16u);
  for (const IndustrialCoreProfile& p : cat) {
    EXPECT_GE(p.scan_cells, 10'000) << p.name;
    EXPECT_LE(p.scan_cells, 110'000) << p.name;
    EXPECT_LE(p.care_density, 0.05) << p.name;  // "no more than 5%"
    EXPECT_GT(p.patterns, 0) << p.name;
    EXPECT_GT(p.scan_chains, 0) << p.name;
    // Built cores must realize the profile exactly.
    const CoreUnderTest core = make_industrial_core(p);
    EXPECT_EQ(core.spec.total_scan_cells(), p.scan_cells) << p.name;
    EXPECT_EQ(static_cast<int>(core.spec.scan_chain_lengths.size()),
              p.scan_chains)
        << p.name;
    for (int len : core.spec.scan_chain_lengths) EXPECT_GE(len, 1) << p.name;
  }
}

TEST(Industrial, CoreConstructionIsDeterministic) {
  const CoreUnderTest a = make_industrial_core("ckt-10");
  const CoreUnderTest b = make_industrial_core("ckt-10");
  EXPECT_EQ(a.spec.scan_chain_lengths, b.spec.scan_chain_lengths);
  ASSERT_EQ(a.cubes.num_patterns(), b.cubes.num_patterns());
  for (int p = 0; p < a.cubes.num_patterns(); ++p)
    EXPECT_EQ(a.cubes.pattern(p), b.cubes.pattern(p));
  EXPECT_THROW(make_industrial_core("ckt-99"), std::out_of_range);
}

TEST(BenchmarkSocs, D695Structure) {
  const SocSpec soc = make_d695();
  EXPECT_EQ(soc.name, "d695");
  EXPECT_EQ(soc.num_cores(), 10);
  EXPECT_NO_THROW(soc.validate());
  // Pattern counts within the published 12..234 range; high care density.
  double density_sum = 0;
  for (const auto& c : soc.cores) {
    EXPECT_GE(c.spec.num_patterns, 12);
    EXPECT_LE(c.spec.num_patterns, 234);
    EXPECT_LE(static_cast<int>(c.spec.scan_chain_lengths.size()), 16);
    density_sum += c.cubes.care_bit_density();
  }
  const double avg_density = density_sum / soc.num_cores();
  EXPECT_GT(avg_density, 0.40);
  EXPECT_LT(avg_density, 0.70);
}

TEST(BenchmarkSocs, D2758Structure) {
  const SocSpec soc = make_d2758();
  EXPECT_GT(soc.num_cores(), 10);
  EXPECT_NO_THROW(soc.validate());
}

TEST(BenchmarkSocs, SystemsComposeIndustrialCores) {
  for (int i = 1; i <= 4; ++i) {
    const SocSpec soc = make_system(i);
    EXPECT_NO_THROW(soc.validate());
    EXPECT_GE(soc.num_cores(), 6);
    for (const auto& c : soc.cores) {
      EXPECT_FALSE(c.spec.scan_chain_lengths.empty())
          << soc.name << "/" << c.spec.name;
      EXPECT_LE(c.cubes.care_bit_density(), 0.055);
    }
    EXPECT_GT(soc.approx_gate_count, 1'000'000);
  }
  EXPECT_THROW(make_system(0), std::invalid_argument);
  EXPECT_THROW(make_system(5), std::invalid_argument);
  EXPECT_EQ(make_fig4_soc().num_cores(), 4);
  EXPECT_EQ(make_table3_designs().size(), 5u);
}

}  // namespace
}  // namespace soctest
