// Hierarchical SOC planning: spec validation and conflict-aware scheduling.
#include <gtest/gtest.h>

#include "hier/hier_scheduler.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

CostFn flat_cost(const std::vector<std::int64_t>& t) {
  return [t](int core, int) {
    BusAccessCost c;
    c.time = t[static_cast<std::size_t>(core)];
    c.choice.test_time = c.time;
    return c;
  };
}

TEST(HierarchySpec, ValidationAndQueries) {
  HierarchySpec h;
  h.parent = {-1, 0, 1, -1, 3};
  EXPECT_NO_THROW(h.validate());
  EXPECT_EQ(h.ancestors(2), (std::vector<int>{1, 0}));
  EXPECT_EQ(h.ancestors(0), std::vector<int>{});
  EXPECT_EQ(h.depth(2), 2);
  EXPECT_EQ(h.depth(3), 0);
  EXPECT_TRUE(h.conflicts(2, 0));
  EXPECT_TRUE(h.conflicts(0, 2));
  EXPECT_TRUE(h.conflicts(4, 3));
  EXPECT_FALSE(h.conflicts(2, 3));
  EXPECT_FALSE(h.conflicts(1, 1));

  HierarchySpec self;
  self.parent = {0};
  EXPECT_THROW(self.validate(), std::invalid_argument);
  HierarchySpec cycle;
  cycle.parent = {1, 0};
  EXPECT_THROW(cycle.validate(), std::invalid_argument);
  HierarchySpec oob;
  oob.parent = {5};
  EXPECT_THROW(oob.validate(), std::invalid_argument);
  EXPECT_NO_THROW(HierarchySpec::flat(4).validate());
}

TEST(HierScheduler, FlatHierarchyBehavesLikeGreedy) {
  const std::vector<std::int64_t> t = {50, 40, 30, 20};
  const Schedule s = hierarchical_schedule(4, 2, flat_cost(t), t,
                                           HierarchySpec::flat(4));
  s.validate(4, /*allow_gaps=*/true);
  EXPECT_EQ(s.makespan(), 70);  // 50+20 / 40+30
}

TEST(HierScheduler, LineageSerializesAcrossBuses) {
  // Core 1 is inside core 0: even on different buses they must not
  // overlap, so the makespan is at least t0 + t1.
  const std::vector<std::int64_t> t = {60, 50};
  HierarchySpec h;
  h.parent = {-1, 0};
  const Schedule s = hierarchical_schedule(2, 2, flat_cost(t), t, h);
  s.validate(2, true);
  EXPECT_NO_THROW(validate_hierarchy_exclusion(s, h));
  EXPECT_EQ(s.makespan(), 110);
}

TEST(HierScheduler, IndependentSubtreesStillParallel) {
  // Two parent/child pairs: pairs serialize internally, but the two
  // lineages run concurrently on two buses.
  const std::vector<std::int64_t> t = {60, 50, 55, 45};
  HierarchySpec h;
  h.parent = {-1, 0, -1, 2};
  const Schedule s = hierarchical_schedule(4, 2, flat_cost(t), t, h);
  s.validate(4, true);
  EXPECT_NO_THROW(validate_hierarchy_exclusion(s, h));
  EXPECT_EQ(s.makespan(), 110);  // max(60+50, 55+45)
}

TEST(HierScheduler, DeepChainFullySerial) {
  const std::vector<std::int64_t> t = {10, 20, 30, 40};
  HierarchySpec h;
  h.parent = {-1, 0, 1, 2};  // 3 inside 2 inside 1 inside 0
  const Schedule s = hierarchical_schedule(4, 4, flat_cost(t), t, h);
  s.validate(4, true);
  EXPECT_NO_THROW(validate_hierarchy_exclusion(s, h));
  EXPECT_EQ(s.makespan(), 100);
}

TEST(HierScheduler, RandomHierarchiesNeverViolateExclusion) {
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(6));
    HierarchySpec h;
    h.parent.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Parents always have a smaller index: acyclic by construction.
      h.parent[static_cast<std::size_t>(i)] =
          (i == 0 || rng.next_bool(0.4))
              ? -1
              : static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(i)));
    }
    std::vector<std::int64_t> t(static_cast<std::size_t>(n));
    for (auto& x : t) x = 10 + static_cast<std::int64_t>(rng.next_below(90));
    const int buses = 1 + static_cast<int>(rng.next_below(3));
    const Schedule s = hierarchical_schedule(n, buses, flat_cost(t), t, h);
    s.validate(n, true);
    EXPECT_NO_THROW(validate_hierarchy_exclusion(s, h)) << "trial " << trial;

    // Hierarchy can only lengthen the test: lower bound = longest lineage.
    for (int i = 0; i < n; ++i) {
      std::int64_t lineage = t[static_cast<std::size_t>(i)];
      for (int anc : h.ancestors(i))
        lineage += t[static_cast<std::size_t>(anc)];
      EXPECT_GE(s.makespan(), lineage);
    }
  }
}

TEST(HierScheduler, ValidatorDetectsInjectedOverlap) {
  const std::vector<std::int64_t> t = {30, 30};
  HierarchySpec h;
  h.parent = {-1, 0};
  Schedule s = hierarchical_schedule(2, 2, flat_cost(t), t, h);
  // Force the child to overlap its parent.
  for (ScheduleEntry& e : s.entries)
    if (e.core == 1) {
      e.start = 0;
      e.end = 30;
    }
  EXPECT_THROW(validate_hierarchy_exclusion(s, h), std::logic_error);
}

}  // namespace
}  // namespace soctest
