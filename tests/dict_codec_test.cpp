// Dictionary-based slice compression (src/dict) and per-core technique
// selection (explore_core_with_selection).
#include <gtest/gtest.h>

#include <tuple>

#include "dict/dict_codec.hpp"
#include "explore/technique_select.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(DictParams, Geometry) {
  const DictParams p = DictParams::make(64, 16);
  EXPECT_EQ(p.index_bits(), 4);
  EXPECT_EQ(p.codeword_width(), 5);
  EXPECT_EQ(p.literal_cycles(), 13);  // ceil(65 / 5)
  EXPECT_THROW(DictParams::make(0, 16), std::invalid_argument);
  EXPECT_THROW(DictParams::make(8, 10), std::invalid_argument);
  EXPECT_THROW(DictParams::make(8, 1), std::invalid_argument);
}

TEST(Dictionary, BuildMergesCompatibleSlices) {
  // Two-chain core whose patterns produce only two distinct slice shapes:
  // a tiny dictionary captures everything.
  CoreUnderTest core;
  core.spec.name = "rep";
  core.spec.num_inputs = 0;
  core.spec.num_outputs = 0;
  core.spec.scan_chain_lengths = {4, 4};
  core.spec.num_patterns = 2;
  core.cubes = TestCubeSet(8);
  // Chains are {cells 0..3} and {4..7}; slice s = bits (s, s+4).
  core.cubes.add_pattern(TernaryVector::from_string("11110000"));
  core.cubes.add_pattern(TernaryVector::from_string("1X1X0X0X"));
  core.validate();

  const WrapperDesign d = design_wrapper(core.spec, 2);
  const SliceMap map(d, 8);
  const Dictionary dict = build_dictionary(map, core.cubes, 4);
  EXPECT_LE(static_cast<int>(dict.prototypes.size()), 4);

  const DictCost cost = dict_cost(map, core.cubes, dict);
  EXPECT_EQ(cost.matched_slices + cost.literal_slices, 2 * 4);
  EXPECT_EQ(cost.literal_slices, 0);  // everything merged
  EXPECT_EQ(cost.total_cycles, 8);
}

using DictCase = std::tuple<int /*m*/, int /*entries*/, double /*density*/>;

class DictRoundTrip : public ::testing::TestWithParam<DictCase> {};

TEST_P(DictRoundTrip, DecodeReproducesCareBits) {
  const auto [m, entries, density] = GetParam();
  const CoreUnderTest core =
      testutil::flex_core("c", 500, 6, density,
                          static_cast<std::uint64_t>(m * 31 + entries));
  if (m > core.spec.max_wrapper_chains()) GTEST_SKIP();
  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());
  const Dictionary dict = build_dictionary(map, core.cubes, entries);
  const DictStream stream = dict_encode(map, core.cubes, dict);
  const auto slices = dict_decode(stream, dict);
  ASSERT_EQ(static_cast<int>(slices.size()),
            stream.patterns * stream.slices_per_pattern);

  for (int p = 0; p < core.cubes.num_patterns(); ++p) {
    const int base = p * stream.slices_per_pattern;
    for (const CareBit& b : core.cubes.pattern(p)) {
      const auto& slice =
          slices[static_cast<std::size_t>(base) + map.slice_of_cell(b.cell)];
      EXPECT_EQ(slice[map.chain_of_cell(b.cell)], b.value)
          << "pattern " << p << " cell " << b.cell;
    }
  }
}

TEST_P(DictRoundTrip, CostMatchesStream) {
  const auto [m, entries, density] = GetParam();
  const CoreUnderTest core = testutil::flex_core("c", 400, 4, density, 77);
  if (m > core.spec.max_wrapper_chains()) GTEST_SKIP();
  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());
  const Dictionary dict = build_dictionary(map, core.cubes, entries);
  const DictCost cost = dict_cost(map, core.cubes, dict);
  const DictStream stream = dict_encode(map, core.cubes, dict);
  EXPECT_EQ(cost.total_cycles,
            static_cast<std::int64_t>(stream.words.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DictRoundTrip,
    ::testing::Combine(::testing::Values(4, 16, 64, 200),
                       ::testing::Values(4, 16, 64),
                       ::testing::Values(0.02, 0.2, 0.6)));

TEST(Dictionary, DecodeRejectsBadStreams) {
  const DictParams p = DictParams::make(8, 4);  // wd = 3
  Dictionary dict;
  dict.params = p;
  dict.prototypes.push_back(TernaryVector(8));
  DictStream s;
  s.params = p;
  s.words = {0u};  // literal flag but no continuation words
  EXPECT_THROW(dict_decode(s, dict), std::invalid_argument);
  s.words = {(3u << 1) | 1u};  // index 3 beyond the 1-entry dictionary
  EXPECT_THROW(dict_decode(s, dict), std::invalid_argument);
}

TEST(DictArea, ScalesWithGeometry) {
  const DictArea small = dict_area(DictParams::make(16, 16));
  const DictArea big = dict_area(DictParams::make(256, 256));
  EXPECT_GT(big.flip_flops, small.flip_flops);
  EXPECT_GT(big.ram_bits, small.ram_bits);
  EXPECT_EQ(big.ram_bits, 256 * 256);
}

TEST(TechniqueSelection, NeverWorseThanSelectiveOnly) {
  const CoreUnderTest core = testutil::flex_core("c", 2000, 10, 0.03, 5);
  ExploreOptions e;
  e.max_width = 20;
  e.max_chains = 128;
  const CoreTable plain = explore_core(core, e);
  const CoreTable selected = explore_core_with_selection(core, e);
  for (int w = 1; w <= 20; ++w) {
    EXPECT_LE(selected.best(w).test_time, plain.best(w).test_time) << w;
  }
}

TEST(TechniqueSelection, DictionaryWinsOnRepetitiveCubes) {
  // Patterns whose touched slices repeat a handful of fully-specified
  // shapes: dictionary indexing beats per-bit selective encoding.
  CoreUnderTest core;
  core.spec.name = "rep";
  core.spec.num_inputs = 0;
  core.spec.num_outputs = 4;
  core.spec.scan_chain_lengths.assign(16, 32);  // 16 chains of 32
  core.spec.num_patterns = 24;
  core.cubes = TestCubeSet(core.spec.stimulus_bits_per_pattern());
  for (int p = 0; p < 24; ++p) {
    std::vector<CareBit> bits;
    // Dense alternating slice at a per-pattern row: half 1s and half 0s,
    // the worst case for minority targeting but a single dictionary entry.
    const std::uint32_t row = static_cast<std::uint32_t>(p % 32);
    for (std::uint32_t chain = 0; chain < 16; ++chain)
      bits.push_back({chain * 32 + row, (chain % 2) == 0});
    core.cubes.add_pattern(std::move(bits));
  }
  core.validate();

  ExploreOptions e;
  e.max_width = 12;
  e.max_chains = 16;
  DictSelectOptions d;
  d.chain_counts = {16};
  d.entry_counts = {4};
  const CoreTable selected = explore_core_with_selection(core, e, d);
  const CoreChoice& best = selected.best(6);
  EXPECT_EQ(best.mode, AccessMode::Compressed);
  EXPECT_EQ(best.technique, Technique::Dictionary);
  EXPECT_EQ(best.aux, 4);
}

}  // namespace
}  // namespace soctest
