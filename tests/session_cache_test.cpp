// server/session_cache — the daemon's cross-request warm-state store.
// Pins the key semantics (content-addressed, width-budget excluded,
// cancel-token excluded), LRU eviction, the build-outside-the-lock
// contract under cancellation, and concurrent first-insert-wins adoption.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "server/session_cache.hpp"
#include "test_util.hpp"

namespace soctest::server {
namespace {

SocSpec two_core_soc(int chain_tweak = 0) {
  SocSpec soc;
  soc.name = "sc-test";
  soc.cores.push_back(
      testutil::small_core("a", 8, {14 + chain_tweak, 12, 10}, 10));
  soc.cores.push_back(testutil::small_core("b", 10, {18, 16, 12, 8}, 12));
  soc.validate();
  return soc;
}

SessionConfig small_config() {
  SessionConfig cfg;
  cfg.explore.max_width = 32;
  cfg.explore.max_chains = 64;
  return cfg;
}

TEST(SessionCacheKey, ContentAddressedNotNameAddressed) {
  const SocSpec soc = two_core_soc();
  const SessionConfig cfg = small_config();
  EXPECT_EQ(SessionCache::key_for(soc, cfg), SessionCache::key_for(soc, cfg));

  // One changed chain length anywhere -> a different session.
  const SocSpec tweaked = two_core_soc(1);
  EXPECT_NE(SessionCache::key_for(soc, cfg),
            SessionCache::key_for(tweaked, cfg));
}

TEST(SessionCacheKey, KnobsThatChangeResultsChangeTheKey) {
  const SocSpec soc = two_core_soc();
  const SessionConfig base = small_config();

  SessionConfig c = base;
  c.mode = ArchMode::PerTam;
  EXPECT_NE(SessionCache::key_for(soc, base), SessionCache::key_for(soc, c));
  c = base;
  c.constraint = ConstraintMode::AteChannels;
  EXPECT_NE(SessionCache::key_for(soc, base), SessionCache::key_for(soc, c));
  c = base;
  c.select = true;
  EXPECT_NE(SessionCache::key_for(soc, base), SessionCache::key_for(soc, c));
  c = base;
  c.power_budget_mw = 250.0;
  EXPECT_NE(SessionCache::key_for(soc, base), SessionCache::key_for(soc, c));
  c = base;
  c.explore.max_chains = 32;
  EXPECT_NE(SessionCache::key_for(soc, base), SessionCache::key_for(soc, c));
}

TEST(SessionCacheKey, CancelTokenNeverParticipates) {
  const SocSpec soc = two_core_soc();
  SessionConfig a = small_config();
  SessionConfig b = small_config();
  runtime::CancelToken token;
  b.explore.cancel = &token;
  EXPECT_EQ(SessionCache::key_for(soc, a), SessionCache::key_for(soc, b));
}

TEST(SessionCache, WarmHitReturnsTheSameSession) {
  SessionCache cache(4);
  const SocSpec soc = two_core_soc();
  const SessionConfig cfg = small_config();

  bool warm = true;
  auto first = cache.get_or_build(soc, cfg, nullptr, &warm);
  EXPECT_FALSE(warm);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->optimizer->soc().num_cores(), 2);

  auto second = cache.get_or_build(soc, cfg, nullptr, &warm);
  EXPECT_TRUE(warm);
  EXPECT_EQ(first.get(), second.get());

  const runtime::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(SessionCache, EvictsLeastRecentlyUsed) {
  SessionCache cache(2);
  const SessionConfig cfg = small_config();
  const SocSpec s0 = two_core_soc(0);
  const SocSpec s1 = two_core_soc(1);
  const SocSpec s2 = two_core_soc(2);

  auto a = cache.get_or_build(s0, cfg, nullptr);
  cache.get_or_build(s1, cfg, nullptr);
  cache.get_or_build(s0, cfg, nullptr);  // refresh s0: s1 becomes LRU
  cache.get_or_build(s2, cfg, nullptr);  // evicts s1

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.lookup(SessionCache::key_for(s0, cfg)), nullptr);
  EXPECT_EQ(cache.lookup(SessionCache::key_for(s1, cfg)), nullptr);
  // A running request keeps its evicted session alive via shared_ptr.
  EXPECT_EQ(a->optimizer->soc().name, "sc-test");
}

TEST(SessionCache, CancelledBuildInsertsNothing) {
  SessionCache cache(4);
  const SocSpec soc = two_core_soc();
  const SessionConfig cfg = small_config();
  runtime::CancelToken token;
  token.cancel();  // fires at the first explore poll
  EXPECT_THROW(cache.get_or_build(soc, cfg, &token), runtime::CancelledError);
  EXPECT_EQ(cache.size(), 0u);

  // The next (uncancelled) request builds normally — no poisoned state.
  bool warm = true;
  auto session = cache.get_or_build(soc, cfg, nullptr, &warm);
  EXPECT_FALSE(warm);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SessionCache, ConcurrentBuildersAdoptTheFirstInsert) {
  SessionCache cache(4);
  const SocSpec soc = two_core_soc();
  const SessionConfig cfg = small_config();

  std::vector<std::shared_ptr<Session>> got(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < got.size(); ++i)
    threads.emplace_back(
        [&, i] { got[i] = cache.get_or_build(soc, cfg, nullptr); });
  for (auto& t : threads) t.join();

  for (const auto& s : got) {
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s.get(), got[0].get());
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

}  // namespace
}  // namespace soctest::server
