#include <gtest/gtest.h>

#include <set>

#include "tam/partition.hpp"
#include "tam/tam_architecture.hpp"

namespace soctest {
namespace {

TEST(TamArchitecture, Basics) {
  const TamArchitecture a{{12, 10, 9}};
  EXPECT_EQ(a.num_buses(), 3);
  EXPECT_EQ(a.total_width(), 31);
  EXPECT_EQ(a.widest(), 12);
  EXPECT_EQ(a.to_string(), "12+10+9");
  EXPECT_NO_THROW(a.validate());
  EXPECT_THROW(TamArchitecture{}.validate(), std::invalid_argument);
  EXPECT_THROW((TamArchitecture{{3, 0}}).validate(), std::invalid_argument);
}

TEST(Partition, BalancedSplit) {
  const TamArchitecture a = balanced_partition(31, 3);
  EXPECT_EQ(a.total_width(), 31);
  EXPECT_EQ(a.num_buses(), 3);
  for (int w : a.widths) {
    EXPECT_GE(w, 10);
    EXPECT_LE(w, 11);
  }
  EXPECT_THROW(balanced_partition(2, 3), std::invalid_argument);
  EXPECT_THROW(balanced_partition(5, 0), std::invalid_argument);
}

TEST(Partition, WireMoveNeighboursPreserveTotal) {
  const TamArchitecture a{{12, 10, 9}};
  const auto ns = wire_move_neighbours(a);
  EXPECT_FALSE(ns.empty());
  std::set<std::vector<int>> seen;
  for (const TamArchitecture& n : ns) {
    EXPECT_EQ(n.total_width(), 31);
    EXPECT_EQ(n.num_buses(), 3);
    for (int w : n.widths) EXPECT_GE(w, 1);
    std::vector<int> key = n.widths;
    std::sort(key.begin(), key.end());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate neighbour";
  }
}

TEST(Partition, WireMoveRespectsMinWidth) {
  const TamArchitecture a{{2, 1}};
  const auto ns = wire_move_neighbours(a, 1);
  // Only 2->1 move allowed (the width-1 bus cannot give a wire away).
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0].widths, (std::vector<int>{1, 2}));
}

TEST(Partition, EnumerateMatchesClosedForms) {
  // Partitions of 10 into 3 parts >= 1: {8,1,1},{7,2,1},{6,3,1},{6,2,2},
  // {5,4,1},{5,3,2},{4,4,2},{4,3,3} -> 8 of them.
  const auto parts = enumerate_partitions(10, 3);
  EXPECT_EQ(parts.size(), 8u);
  for (const TamArchitecture& p : parts) {
    EXPECT_EQ(p.total_width(), 10);
    // Non-increasing order, no duplicates by construction.
    for (int i = 1; i < p.num_buses(); ++i)
      EXPECT_GE(p.widths[static_cast<std::size_t>(i - 1)],
                p.widths[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(enumerate_partitions(5, 1).size(), 1u);
  EXPECT_TRUE(enumerate_partitions(2, 3).empty());
  // min_width = 2: partitions of 10 into 3 parts >= 2: {6,2,2},{5,3,2},
  // {4,4,2},{4,3,3} -> 4.
  EXPECT_EQ(enumerate_partitions(10, 3, 2).size(), 4u);
}

}  // namespace
}  // namespace soctest
