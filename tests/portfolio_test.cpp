// Replica-exchange portfolio (src/portfolio) pins:
//   - bit-identity across runtime lane counts (1/4/8) — the determinism
//     contract the counter-based swap RNG and ladder-order reduction buy;
//   - shared-cache invisibility: one ScheduleMemo/ColumnCache across all
//     replicas gives member-for-member the same results as private caches;
//   - swaps disabled == K independent optimize_annealing() runs, replica by
//     replica, seed derivation and ladder temperatures included;
//   - checkpoint/resume reproduces the uninterrupted run exactly, and the
//     decoder rejects corrupt or mismatched blobs instead of mis-resuming;
//   - the hill-climb racer merges deterministically, and the proposal
//     budget truncates to whole sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "opt/annealing.hpp"
#include "opt/backend.hpp"
#include "opt/rect_backend.hpp"
#include "opt/soc_optimizer.hpp"
#include "portfolio/checkpoint.hpp"
#include "portfolio/counter_rng.hpp"
#include "portfolio/ladder_policy.hpp"
#include "portfolio/portfolio.hpp"
#include "runtime/thread_pool.hpp"
#include "socgen/cube_synth.hpp"
#include "socgen/d695.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

void expect_identical(const OptimizationResult& a, const OptimizationResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.arch.widths, b.arch.widths);
  EXPECT_EQ(a.test_time, b.test_time);
  EXPECT_EQ(a.data_volume_bits, b.data_volume_bits);
  ASSERT_EQ(a.schedule.entries.size(), b.schedule.entries.size());
  for (std::size_t i = 0; i < a.schedule.entries.size(); ++i) {
    EXPECT_EQ(a.schedule.entries[i].core, b.schedule.entries[i].core) << i;
    EXPECT_EQ(a.schedule.entries[i].bus, b.schedule.entries[i].bus) << i;
    EXPECT_EQ(a.schedule.entries[i].start, b.schedule.entries[i].start) << i;
    EXPECT_EQ(a.schedule.entries[i].end, b.schedule.entries[i].end) << i;
  }
  EXPECT_EQ(a.schedule.bus_finish, b.schedule.bus_finish);
  EXPECT_EQ(a.wiring.onchip_wires, b.wiring.onchip_wires);
  EXPECT_EQ(a.wiring.ate_channels, b.wiring.ate_channels);
  EXPECT_EQ(a.wiring.decompressors, b.wiring.decompressors);
}

void expect_same_portfolio(const PortfolioResult& a, const PortfolioResult& b,
                           const std::string& label) {
  SCOPED_TRACE(label);
  expect_identical(a.best, b.best, "best");
  ASSERT_EQ(a.replica_best.size(), b.replica_best.size());
  for (std::size_t r = 0; r < a.replica_best.size(); ++r)
    expect_identical(a.replica_best[r], b.replica_best[r],
                     "replica " + std::to_string(r));
  EXPECT_EQ(a.stats.sweeps_completed, b.stats.sweeps_completed);
  EXPECT_EQ(a.stats.proposals_total, b.stats.proposals_total);
  EXPECT_EQ(a.stats.swaps_attempted, b.stats.swaps_attempted);
  EXPECT_EQ(a.stats.swaps_accepted, b.stats.swaps_accepted);
  EXPECT_EQ(a.stats.best_by_sweep, b.stats.best_by_sweep);
  EXPECT_EQ(a.stats.hill_climb_won, b.stats.hill_climb_won);
}

SocSpec fuzzed_soc(std::uint64_t seed) {
  Rng rng(seed);
  SocSpec soc;
  soc.name = "fuzz-" + std::to_string(seed);
  const int cores = static_cast<int>(rng.next_range(3, 6));
  for (int i = 0; i < cores; ++i) {
    CoreUnderTest c;
    c.spec.name = "c" + std::to_string(i);
    c.spec.num_inputs = static_cast<int>(rng.next_range(1, 30));
    c.spec.num_outputs = static_cast<int>(rng.next_range(1, 30));
    const int chains = static_cast<int>(rng.next_range(1, 12));
    for (int j = 0; j < chains; ++j)
      c.spec.scan_chain_lengths.push_back(
          static_cast<int>(rng.next_range(1, 120)));
    c.spec.num_patterns = static_cast<int>(rng.next_range(4, 30));
    CubeSynthParams p;
    p.num_cells = c.spec.stimulus_bits_per_pattern();
    p.num_patterns = c.spec.num_patterns;
    p.care_density = 0.01 + 0.4 * rng.next_double();
    c.cubes = synthesize_cubes(p, rng.next_u64());
    c.validate();
    soc.cores.push_back(std::move(c));
  }
  return soc;
}

/// Shared d695 optimizer — static so the SocSpec outlives it (SocOptimizer
/// keeps a pointer) and the explore tables build once for the whole suite.
const SocOptimizer& d695_optimizer() {
  static const SocSpec soc = make_d695();
  static const SocOptimizer opt(soc, [] {
    ExploreOptions e;
    e.max_width = 16;
    e.max_chains = 64;
    return e;
  }());
  return opt;
}

OptimizerOptions d695_options() {
  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;
  return o;
}

PortfolioOptions small_portfolio(std::uint64_t seed = 7) {
  PortfolioOptions p;
  p.replicas = 3;
  p.sweeps = 5;
  p.proposals_per_sweep = 30;
  p.seed = seed;
  return p;
}

TEST(PortfolioDeterminism, BitIdenticalAcrossJobs) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const PortfolioOptions p = small_portfolio();

  runtime::ThreadPool pool1(1), pool4(4), pool8(8);
  PortfolioResult r1, r4, r8;
  {
    runtime::PoolScope scope(&pool1);
    r1 = optimize_portfolio(opt, o, p);
  }
  {
    runtime::PoolScope scope(&pool4);
    r4 = optimize_portfolio(opt, o, p);
  }
  {
    runtime::PoolScope scope(&pool8);
    r8 = optimize_portfolio(opt, o, p);
  }
  expect_same_portfolio(r4, r1, "4 lanes vs 1");
  expect_same_portfolio(r8, r1, "8 lanes vs 1");
}

TEST(PortfolioDeterminism, SharedMemoMatchesPrivateMemo) {
  for (const bool use_d695 : {true, false}) {
    const SocSpec soc = use_d695 ? make_d695() : fuzzed_soc(0xF011F011ULL);
    ExploreOptions e;
    e.max_width = use_d695 ? 16 : 14;
    e.max_chains = 64;
    const SocOptimizer opt(soc, e);
    OptimizerOptions o;
    o.width = use_d695 ? 16 : 11;
    o.mode = ArchMode::PerCore;

    PortfolioOptions shared = small_portfolio(11);
    shared.share_caches = true;
    PortfolioOptions priv = shared;
    priv.share_caches = false;

    runtime::ThreadPool pool1(1), pool4(4);
    PortfolioResult rs1, rp1, rs4, rp4;
    {
      runtime::PoolScope scope(&pool1);
      rs1 = optimize_portfolio(opt, o, shared);
      rp1 = optimize_portfolio(opt, o, priv);
    }
    {
      runtime::PoolScope scope(&pool4);
      rs4 = optimize_portfolio(opt, o, shared);
      rp4 = optimize_portfolio(opt, o, priv);
    }
    const std::string tag = use_d695 ? "d695" : "fuzzed";
    expect_same_portfolio(rp1, rs1, tag + ": private vs shared @1");
    expect_same_portfolio(rs4, rs1, tag + ": shared @4 vs @1");
    expect_same_portfolio(rp4, rs1, tag + ": private @4 vs shared @1");
  }
}

TEST(PortfolioDeterminism, SwapsDisabledMatchesIndependentAnneals) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();

  PortfolioOptions p = small_portfolio(21);
  p.swaps_enabled = false;
  p.race_hill_climb = false;
  const PortfolioResult pr = optimize_portfolio(opt, o, p);
  EXPECT_EQ(pr.stats.swaps_attempted, 0u);

  for (int r = 0; r < p.replicas; ++r) {
    AnnealingOptions a;
    a.iterations = p.sweeps * p.proposals_per_sweep;
    a.initial_temperature = p.initial_temperature;
    for (int i = 0; i < r; ++i) a.initial_temperature *= p.temperature_ratio;
    a.cooling = p.cooling;
    a.seed = portfolio::replica_seed(p.seed, r);
    expect_identical(pr.replica_best[static_cast<std::size_t>(r)],
                     optimize_annealing(opt, o, a),
                     "replica " + std::to_string(r) + " vs lone anneal");
  }
}

TEST(PortfolioCheckpoint, ResumeReproducesUninterruptedRun) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const std::string path = testing::TempDir() + "soctest_portfolio_ck.bin";

  PortfolioOptions full = small_portfolio(5);
  const PortfolioResult uninterrupted = optimize_portfolio(opt, o, full);

  PortfolioOptions partial = full;
  partial.sweeps = 2;  // interrupted after 2 of 5 sweeps
  partial.checkpoint_path = path;
  optimize_portfolio(opt, o, partial);

  PortfolioOptions rest = full;  // budget restored to the full 5 sweeps
  const PortfolioResult resumed = resume_portfolio(opt, o, rest, path);
  expect_same_portfolio(resumed, uninterrupted, "resumed vs uninterrupted");
  std::remove(path.c_str());
}

// Adaptive temperature-ladder retuning (--adaptive-ladder): deterministic
// counters drive the retune, so results stay bit-identical across runtime
// lanes, and a checkpoint taken mid retune-window (sweeps_completed not a
// multiple of kRetuneEverySweeps) must restore the window counters so the
// next retune sees the identical acceptance history.
TEST(PortfolioAdaptive, RetuneIsDeterministicAcrossJobs) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  PortfolioOptions p = small_portfolio(21);
  p.replicas = 4;
  p.sweeps = 2 * portfolio::kRetuneEverySweeps + 1;
  p.proposals_per_sweep = 10;
  p.adaptive_ladder = true;
  const std::string path = testing::TempDir() + "soctest_adaptive_det.bin";
  p.checkpoint_path = path;

  runtime::ThreadPool pool1(1);
  runtime::ThreadPool pool4(4);
  PortfolioResult r1, r4;
  {
    runtime::PoolScope scope(&pool1);
    r1 = optimize_portfolio(opt, o, p);
  }
  const portfolio::PortfolioCheckpoint adaptive_ck =
      portfolio::read_checkpoint_file(path);
  {
    runtime::PoolScope scope(&pool4);
    r4 = optimize_portfolio(opt, o, p);
  }
  expect_same_portfolio(r1, r4, "adaptive ladder, 1 vs 4 lanes");

  // The retune must actually reshape the ladder on this run, or the flag
  // (and this test) would be vacuous: compare the final temperature bits
  // against the same run with the adaptive ladder off.
  PortfolioOptions off = p;
  off.adaptive_ladder = false;
  runtime::PoolScope scope(&pool1);
  optimize_portfolio(opt, o, off);
  const portfolio::PortfolioCheckpoint fixed_ck =
      portfolio::read_checkpoint_file(path);
  ASSERT_EQ(adaptive_ck.replicas.size(), fixed_ck.replicas.size());
  bool ladder_changed = false;
  for (std::size_t r = 0; r < adaptive_ck.replicas.size(); ++r)
    ladder_changed |= adaptive_ck.replicas[r].temperature_bits !=
                      fixed_ck.replicas[r].temperature_bits;
  EXPECT_TRUE(ladder_changed);
  // And the adaptive checkpoint carries the (mid-)window counters.
  EXPECT_FALSE(adaptive_ck.retune_window_attempted.empty());
  EXPECT_TRUE(fixed_ck.retune_window_attempted.empty());
  std::remove(path.c_str());
}

TEST(PortfolioAdaptive, MidWindowCheckpointResumesIdentically) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const std::string path = testing::TempDir() + "soctest_adaptive_ck.bin";

  PortfolioOptions full = small_portfolio(23);
  full.replicas = 4;
  full.sweeps = 2 * portfolio::kRetuneEverySweeps;
  full.proposals_per_sweep = 10;
  full.adaptive_ladder = true;
  const PortfolioResult uninterrupted = optimize_portfolio(opt, o, full);

  // Interrupt past the first retune barrier with a partly-filled second
  // window: the checkpoint must carry the mid-window counters.
  PortfolioOptions partial = full;
  partial.sweeps = portfolio::kRetuneEverySweeps + 3;
  partial.checkpoint_path = path;
  optimize_portfolio(opt, o, partial);

  const PortfolioResult resumed = resume_portfolio(opt, o, full, path);
  expect_same_portfolio(resumed, uninterrupted,
                        "adaptive resumed vs uninterrupted");
  std::remove(path.c_str());
}

TEST(PortfolioCheckpoint, RoundTripsThroughBytes) {
  portfolio::PortfolioCheckpoint ck;
  ck.fingerprint = 0xDEADBEEFCAFEF00DULL;
  ck.sweeps_completed = 3;
  ck.swaps_attempted = 6;
  ck.swaps_accepted = 2;
  ck.proposals_total = 540;
  ck.racer_state = portfolio::RacerState::Done;
  ck.racer_best_widths = {9, 4, 3};
  ck.best_by_sweep = {50000, 48000, 47500};
  for (int r = 0; r < 2; ++r) {
    AnnealWalkState st;
    st.rng = {1ULL + r, 2, 3, 4};
    st.iteration = 90;
    st.temperature_bits = 0x3FE0000000000000ULL;
    st.proposals = 88;
    st.current_widths = {8, 8};
    st.best_widths = {10, 6};
    ck.replicas.push_back(st);
  }
  const std::vector<unsigned char> bytes = portfolio::encode_checkpoint(ck);
  const portfolio::PortfolioCheckpoint back =
      portfolio::decode_checkpoint(bytes);
  EXPECT_EQ(back.fingerprint, ck.fingerprint);
  EXPECT_EQ(back.sweeps_completed, ck.sweeps_completed);
  EXPECT_EQ(back.swaps_attempted, ck.swaps_attempted);
  EXPECT_EQ(back.swaps_accepted, ck.swaps_accepted);
  EXPECT_EQ(back.proposals_total, ck.proposals_total);
  EXPECT_EQ(back.racer_state, ck.racer_state);
  EXPECT_EQ(back.racer_best_widths, ck.racer_best_widths);
  EXPECT_EQ(back.best_by_sweep, ck.best_by_sweep);
  ASSERT_EQ(back.replicas.size(), ck.replicas.size());
  for (std::size_t r = 0; r < ck.replicas.size(); ++r) {
    EXPECT_EQ(back.replicas[r].rng, ck.replicas[r].rng);
    EXPECT_EQ(back.replicas[r].iteration, ck.replicas[r].iteration);
    EXPECT_EQ(back.replicas[r].temperature_bits,
              ck.replicas[r].temperature_bits);
    EXPECT_EQ(back.replicas[r].proposals, ck.replicas[r].proposals);
    EXPECT_EQ(back.replicas[r].current_widths, ck.replicas[r].current_widths);
    EXPECT_EQ(back.replicas[r].best_widths, ck.replicas[r].best_widths);
  }
}

TEST(PortfolioCheckpoint, RejectsCorruptOrMismatched) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const std::string path = testing::TempDir() + "soctest_portfolio_bad.bin";

  PortfolioOptions p = small_portfolio(9);
  p.sweeps = 1;
  p.checkpoint_path = path;
  optimize_portfolio(opt, o, p);
  p.checkpoint_path.clear();

  // Wrong optimizer config: the fingerprint guard must refuse.
  OptimizerOptions narrower = o;
  narrower.width = 8;
  EXPECT_THROW(resume_portfolio(opt, narrower, p, path), std::runtime_error);
  // Wrong portfolio config (different seed -> different trajectory).
  PortfolioOptions other_seed = p;
  other_seed.seed = 1234;
  EXPECT_THROW(resume_portfolio(opt, o, other_seed, path),
               std::runtime_error);
  // Missing file.
  EXPECT_THROW(resume_portfolio(opt, o, p, path + ".nope"),
               std::runtime_error);

  std::vector<unsigned char> bytes;
  {
    const portfolio::PortfolioCheckpoint ck =
        portfolio::read_checkpoint_file(path);
    bytes = portfolio::encode_checkpoint(ck);
  }
  std::vector<unsigned char> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(portfolio::decode_checkpoint(bad_magic), std::runtime_error);
  std::vector<unsigned char> truncated(bytes.begin(), bytes.end() - 5);
  EXPECT_THROW(portfolio::decode_checkpoint(truncated), std::runtime_error);
  std::vector<unsigned char> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(portfolio::decode_checkpoint(trailing), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PortfolioRacer, MergesHillClimbResult) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const OptimizationResult climb = opt.optimize(o);

  // No sweeps: the replicas only know their balanced start, so the racer
  // must carry the portfolio to the hill climb's result.
  PortfolioOptions p = small_portfolio(3);
  p.sweeps = 0;
  const PortfolioResult pr = optimize_portfolio(opt, o, p);
  EXPECT_TRUE(pr.stats.hill_climb_raced);
  expect_identical(pr.best, climb, "racer-carried best");

  // Racer off: the start configuration is all the portfolio has.
  PortfolioOptions no_racer = p;
  no_racer.race_hill_climb = false;
  const PortfolioResult nr = optimize_portfolio(opt, o, no_racer);
  EXPECT_FALSE(nr.stats.hill_climb_raced);
  EXPECT_FALSE(nr.stats.hill_climb_won);
  EXPECT_GE(nr.best.test_time, pr.best.test_time);
}

TEST(PortfolioBudget, ProposalBudgetStopsAtWholeSweeps) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();

  PortfolioOptions p = small_portfolio(13);
  p.race_hill_climb = false;
  const std::uint64_t per_sweep =
      static_cast<std::uint64_t>(p.replicas) *
      static_cast<std::uint64_t>(p.proposals_per_sweep);
  // Budget covers 2 whole sweeps plus a remainder the loop must not start.
  p.max_proposals = 2 * per_sweep + per_sweep / 2;
  const PortfolioResult pr = optimize_portfolio(opt, o, p);
  EXPECT_EQ(pr.stats.sweeps_completed, 2);
  EXPECT_EQ(pr.stats.proposals_total, 2 * per_sweep);

  // The truncated run is the prefix of the unbudgeted one.
  PortfolioOptions unbudgeted = small_portfolio(13);
  unbudgeted.race_hill_climb = false;
  const PortfolioResult full = optimize_portfolio(opt, o, unbudgeted);
  ASSERT_GE(full.stats.best_by_sweep.size(), pr.stats.best_by_sweep.size());
  for (std::size_t i = 0; i < pr.stats.best_by_sweep.size(); ++i)
    EXPECT_EQ(pr.stats.best_by_sweep[i], full.stats.best_by_sweep[i]) << i;
}


TEST(PortfolioCheckpointBackend, BackendTagRoundTrips) {
  portfolio::PortfolioCheckpoint ck;
  ck.fingerprint = 42;
  ck.backend = BackendKind::Race;
  ck.sweeps_completed = 1;
  AnnealWalkState st;
  st.current_widths = {8, 8};
  st.best_widths = {10, 6};
  ck.replicas.push_back(st);
  const portfolio::PortfolioCheckpoint back =
      portfolio::decode_checkpoint(portfolio::encode_checkpoint(ck));
  EXPECT_EQ(back.backend, BackendKind::Race);
  EXPECT_EQ(back.fingerprint, ck.fingerprint);
  EXPECT_EQ(back.sweeps_completed, ck.sweeps_completed);
}

// Blob layout through the scenario tag: 8 magic + 4 version + 8 fingerprint,
// then the v3 backend byte at offset 20 and the v4 scenario tag at
// [21, 30): 8 power-cap IEEE bits followed by one preempt/hier flags byte.
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kBackendOffset = 20;
constexpr std::size_t kScenarioCapOffset = 21;
constexpr std::size_t kScenarioFlagsOffset = 29;
constexpr std::size_t kScenarioEndOffset = 30;

TEST(PortfolioCheckpointBackend, AcceptsVersion2BlobAsFixedBus) {
  portfolio::PortfolioCheckpoint ck;
  ck.fingerprint = 0xFEEDFACE;
  ck.sweeps_completed = 2;
  ck.proposals_total = 60;
  AnnealWalkState st;
  st.current_widths = {8, 8};
  st.best_widths = {10, 6};
  ck.replicas.push_back(st);

  // Regress the v4 blob to v2 by hand: drop the backend byte and the
  // scenario tag, and patch the version field — exactly what a pre-backend
  // writer produced.
  std::vector<unsigned char> bytes = portfolio::encode_checkpoint(ck);
  ASSERT_EQ(bytes[kBackendOffset],
            static_cast<unsigned char>(BackendKind::FixedBus));
  bytes.erase(bytes.begin() + kBackendOffset,
              bytes.begin() + kScenarioEndOffset);
  bytes[kVersionOffset] = 2;

  const portfolio::PortfolioCheckpoint back =
      portfolio::decode_checkpoint(bytes);
  EXPECT_EQ(back.backend, BackendKind::FixedBus);
  EXPECT_TRUE(back.scenario.is_default());
  EXPECT_FALSE(back.has_scenario_tag);
  EXPECT_EQ(back.fingerprint, ck.fingerprint);
  EXPECT_EQ(back.sweeps_completed, ck.sweeps_completed);
  EXPECT_EQ(back.proposals_total, ck.proposals_total);
  ASSERT_EQ(back.replicas.size(), 1u);
  EXPECT_EQ(back.replicas[0].best_widths, st.best_widths);
}

TEST(PortfolioCheckpointBackend, RejectsCorruptBackendTag) {
  portfolio::PortfolioCheckpoint ck;
  AnnealWalkState st;
  st.current_widths = {8, 8};
  st.best_widths = {10, 6};
  ck.replicas.push_back(st);
  std::vector<unsigned char> bytes = portfolio::encode_checkpoint(ck);
  bytes[kBackendOffset] = 9;  // no such BackendKind
  EXPECT_THROW(portfolio::decode_checkpoint(bytes), std::runtime_error);
}

TEST(PortfolioCheckpointBackend, ResumeRejectsBackendMismatch) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const std::string path =
      testing::TempDir() + "soctest_backend_mismatch.bin";
  PortfolioOptions p = small_portfolio(11);
  p.checkpoint_path = path;
  optimize_portfolio(opt, o, p);

  OptimizerOptions race = o;
  race.backend = BackendKind::Race;
  try {
    resume_portfolio(opt, race, p, path);
    FAIL() << "resume accepted a backend mismatch";
  } catch (const std::runtime_error& e) {
    // The error names the backend mismatch, not a bare fingerprint delta.
    EXPECT_NE(std::string(e.what()).find("backend"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(PortfolioCheckpointScenario, ScenarioTagRoundTrips) {
  portfolio::PortfolioCheckpoint ck;
  ck.fingerprint = 77;
  ck.scenario.power_cap_mw = 1250.5;
  ck.scenario.preemptive = true;
  ck.scenario.hierarchical = true;
  ck.sweeps_completed = 1;
  AnnealWalkState st;
  st.current_widths = {8, 8};
  st.best_widths = {10, 6};
  ck.replicas.push_back(st);
  const portfolio::PortfolioCheckpoint back =
      portfolio::decode_checkpoint(portfolio::encode_checkpoint(ck));
  EXPECT_TRUE(back.has_scenario_tag);
  EXPECT_EQ(back.scenario, ck.scenario);
  EXPECT_EQ(back.fingerprint, ck.fingerprint);
}

TEST(PortfolioCheckpointScenario, AcceptsVersion3BlobAsDefaultScenario) {
  portfolio::PortfolioCheckpoint ck;
  ck.fingerprint = 0xC0FFEE;
  ck.backend = BackendKind::Race;
  ck.sweeps_completed = 4;
  AnnealWalkState st;
  st.current_widths = {8, 8};
  st.best_widths = {10, 6};
  ck.replicas.push_back(st);

  // Regress to v3: drop only the scenario tag, keep the backend byte.
  std::vector<unsigned char> bytes = portfolio::encode_checkpoint(ck);
  bytes.erase(bytes.begin() + kScenarioCapOffset,
              bytes.begin() + kScenarioEndOffset);
  bytes[kVersionOffset] = 3;

  const portfolio::PortfolioCheckpoint back =
      portfolio::decode_checkpoint(bytes);
  EXPECT_EQ(back.backend, BackendKind::Race);  // v3 tag survives
  EXPECT_TRUE(back.scenario.is_default());
  EXPECT_FALSE(back.has_scenario_tag);
  EXPECT_EQ(back.fingerprint, ck.fingerprint);
  EXPECT_EQ(back.sweeps_completed, ck.sweeps_completed);
}

TEST(PortfolioCheckpointScenario, RejectsCorruptScenarioFlags) {
  portfolio::PortfolioCheckpoint ck;
  AnnealWalkState st;
  st.current_widths = {8, 8};
  st.best_widths = {10, 6};
  ck.replicas.push_back(st);
  std::vector<unsigned char> bytes = portfolio::encode_checkpoint(ck);
  bytes[kScenarioFlagsOffset] = 7;  // bit2 is no scenario flag
  EXPECT_THROW(portfolio::decode_checkpoint(bytes), std::runtime_error);
}

TEST(PortfolioCheckpointScenario, RejectsCorruptScenarioCap) {
  portfolio::PortfolioCheckpoint ck;
  AnnealWalkState st;
  st.current_widths = {8, 8};
  st.best_widths = {10, 6};
  ck.replicas.push_back(st);
  std::vector<unsigned char> bytes = portfolio::encode_checkpoint(ck);
  // All-ones IEEE-754 bits are a NaN regardless of byte order; a NaN (or
  // negative) cap can only be corruption — no writer produces one.
  for (std::size_t i = kScenarioCapOffset; i < kScenarioFlagsOffset; ++i)
    bytes[i] = 0xFF;
  EXPECT_THROW(portfolio::decode_checkpoint(bytes), std::runtime_error);
}

TEST(PortfolioCheckpointScenario, ResumeRejectsScenarioMismatch) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const std::string path =
      testing::TempDir() + "soctest_scenario_mismatch.bin";
  PortfolioOptions p = small_portfolio(17);
  p.sweeps = 1;
  p.checkpoint_path = path;
  optimize_portfolio(opt, o, p);
  p.checkpoint_path.clear();

  OptimizerOptions hier = o;
  hier.hierarchical = true;
  try {
    resume_portfolio(opt, hier, p, path);
    FAIL() << "resume accepted a scenario mismatch";
  } catch (const std::runtime_error& e) {
    // The error names the scenario mismatch, not a bare fingerprint delta.
    EXPECT_NE(std::string(e.what()).find("scenario"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(PortfolioCheckpointScenario, ResumeAcceptsPreV4DefaultBlob) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const std::string path = testing::TempDir() + "soctest_prev4_resume.bin";

  PortfolioOptions full = small_portfolio(19);
  const PortfolioResult uninterrupted = optimize_portfolio(opt, o, full);

  PortfolioOptions partial = full;
  partial.sweeps = 2;
  partial.checkpoint_path = path;
  optimize_portfolio(opt, o, partial);

  // Regress the on-disk v4 blob to v3 (pre-scenario writer): the resume
  // must accept it as the default scenario and reproduce the uninterrupted
  // run exactly.
  std::vector<unsigned char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes.erase(bytes.begin() + kScenarioCapOffset,
              bytes.begin() + kScenarioEndOffset);
  bytes[kVersionOffset] = 3;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  PortfolioOptions rest = full;
  const PortfolioResult resumed = resume_portfolio(opt, o, rest, path);
  expect_same_portfolio(resumed, uninterrupted, "pre-v4 resumed vs full");
  std::remove(path.c_str());
}

TEST(PortfolioBackend, RejectsRectBackendOutright) {
  const SocOptimizer& opt = d695_optimizer();
  OptimizerOptions o = d695_options();
  o.backend = BackendKind::Rect;
  EXPECT_THROW(optimize_portfolio(opt, o, small_portfolio()),
               std::invalid_argument);
}

TEST(PortfolioBackend, RaceMergesRectAgainstTheLadderDeterministically) {
  const SocOptimizer& opt = d695_optimizer();
  const OptimizerOptions o = d695_options();
  const PortfolioOptions p = small_portfolio(17);

  const PortfolioResult fixed = optimize_portfolio(opt, o, p);
  EXPECT_FALSE(fixed.stats.rect_raced);

  OptimizerOptions race = o;
  race.backend = BackendKind::Race;
  const PortfolioResult merged = optimize_portfolio(opt, race, p);
  EXPECT_TRUE(merged.stats.rect_raced);

  OptimizerOptions ro = o;
  ro.backend = BackendKind::Rect;
  const OptimizationResult rect = optimize_rect(opt, ro);

  const bool rect_wins = better_result(rect, fixed.best);
  EXPECT_EQ(merged.stats.rect_won, rect_wins);
  EXPECT_EQ(merged.best.backend,
            rect_wins ? BackendKind::Rect : BackendKind::FixedBus);
  EXPECT_EQ(merged.best.test_time,
            rect_wins ? rect.test_time : fixed.best.test_time);
  // The fixed-bus ladder trajectories are untouched by the rect racer.
  ASSERT_EQ(merged.replica_best.size(), fixed.replica_best.size());
  for (std::size_t r = 0; r < merged.replica_best.size(); ++r)
    EXPECT_EQ(merged.replica_best[r].test_time,
              fixed.replica_best[r].test_time)
        << "replica " << r;
}

TEST(PortfolioSwapRng, CounterDrawsAreStableAndSeedKeyed) {
  // Pure function of (seed, sweep, pair): same inputs, same draw.
  EXPECT_EQ(portfolio::swap_word(1, 2, 3), portfolio::swap_word(1, 2, 3));
  EXPECT_NE(portfolio::swap_word(1, 2, 3), portfolio::swap_word(2, 2, 3));
  EXPECT_NE(portfolio::swap_word(1, 2, 3), portfolio::swap_word(1, 3, 3));
  EXPECT_NE(portfolio::swap_word(1, 2, 3), portfolio::swap_word(1, 2, 4));
  for (std::uint64_t s = 0; s < 50; ++s) {
    const double u = portfolio::swap_uniform(99, s, s % 3);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_NE(portfolio::replica_seed(1, 0), portfolio::replica_seed(1, 1));
  EXPECT_NE(portfolio::replica_seed(1, 0), portfolio::replica_seed(2, 0));
}

}  // namespace
}  // namespace soctest
