// SOC text-format reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "io/soc_text.hpp"
#include "socgen/d695.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(SocText, ParsesHandWrittenDesign) {
  std::istringstream in(R"(
# a tiny two-core design
soc demo
gates 12345
latches 67

core alpha
  inputs 2
  outputs 1
  scanchains 3 2
  patterns 2
  cube 1X01X00
  sparse 0:0 4:1
end

core beta
  inputs 1
  outputs 1
  flexible 50
  patterns 3
  synthetic 0.1 0.7 42
end
)");
  const SocSpec soc = read_soc_text(in);
  EXPECT_EQ(soc.name, "demo");
  EXPECT_EQ(soc.approx_gate_count, 12345);
  EXPECT_EQ(soc.approx_latch_count, 67);
  ASSERT_EQ(soc.num_cores(), 2);

  const CoreUnderTest& a = soc.cores[0];
  EXPECT_EQ(a.spec.name, "alpha");
  EXPECT_EQ(a.spec.scan_chain_lengths, (std::vector<int>{3, 2}));
  EXPECT_EQ(a.cubes.num_patterns(), 2);
  EXPECT_EQ(a.cubes.expand(0).to_string(), "1X01X00");
  EXPECT_EQ(a.cubes.expand(1).to_string(), "0XXX1XX");

  const CoreUnderTest& b = soc.cores[1];
  EXPECT_TRUE(b.spec.flexible_scan);
  EXPECT_EQ(b.spec.flexible_scan_cells, 50);
  EXPECT_EQ(b.cubes.num_patterns(), 3);
  EXPECT_GT(b.cubes.total_care_bits(), 0);
}

TEST(SocText, RoundTripsExactly) {
  const SocSpec original = testutil::mixed_soc();
  std::ostringstream out;
  write_soc_text(out, original);
  std::istringstream in(out.str());
  const SocSpec re = read_soc_text(in);

  EXPECT_EQ(re.name, original.name);
  ASSERT_EQ(re.num_cores(), original.num_cores());
  for (int i = 0; i < re.num_cores(); ++i) {
    const CoreUnderTest& x = original.cores[static_cast<std::size_t>(i)];
    const CoreUnderTest& y = re.cores[static_cast<std::size_t>(i)];
    EXPECT_EQ(x.spec.name, y.spec.name);
    EXPECT_EQ(x.spec.num_inputs, y.spec.num_inputs);
    EXPECT_EQ(x.spec.scan_chain_lengths, y.spec.scan_chain_lengths);
    EXPECT_EQ(x.spec.flexible_scan_cells, y.spec.flexible_scan_cells);
    ASSERT_EQ(x.cubes.num_patterns(), y.cubes.num_patterns());
    for (int p = 0; p < x.cubes.num_patterns(); ++p)
      EXPECT_EQ(x.cubes.pattern(p), y.cubes.pattern(p));
  }
}

TEST(SocText, RoundTripsD695) {
  const SocSpec original = make_d695();
  std::ostringstream out;
  write_soc_text(out, original);
  std::istringstream in(out.str());
  const SocSpec re = read_soc_text(in);
  ASSERT_EQ(re.num_cores(), 10);
  EXPECT_EQ(re.initial_data_volume_bits(), original.initial_data_volume_bits());
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(re.cores[static_cast<std::size_t>(i)].cubes.total_care_bits(),
              original.cores[static_cast<std::size_t>(i)]
                  .cubes.total_care_bits());
}

TEST(SocText, FileRoundTrip) {
  const SocSpec soc = testutil::mixed_soc();
  const std::string path = "/tmp/soctest_io_test.soc";
  write_soc_text_file(path, soc);
  const SocSpec re = read_soc_text_file(path);
  EXPECT_EQ(re.num_cores(), soc.num_cores());
  std::remove(path.c_str());
  EXPECT_THROW(read_soc_text_file("/nonexistent/x.soc"), std::runtime_error);
}

TEST(SocText, SparseOverflowDiagnosticNamesLineAndIndex) {
  std::istringstream in(
      "soc s\ncore c\n inputs 2\n patterns 1\n sparse 4294967296:1\nend\n");
  try {
    read_soc_text(in);
    FAIL() << "expected rejection of a cell index >= 2^32";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("soc_text:5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cell index"), std::string::npos) << msg;
  }
}

struct BadInput {
  const char* label;
  const char* text;
};

class SocTextErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(SocTextErrors, RejectsMalformedInput) {
  std::istringstream in(GetParam().text);
  EXPECT_THROW(read_soc_text(in), std::runtime_error) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SocTextErrors,
    ::testing::Values(
        BadInput{"missing end",
                 "soc s\ncore c\n inputs 1\n patterns 0\n"},
        BadInput{"nested core",
                 "soc s\ncore c\ncore d\nend\nend\n"},
        BadInput{"end outside core", "soc s\nend\n"},
        BadInput{"unknown keyword", "soc s\nbogus 3\n"},
        BadInput{"bad integer", "soc s\ngates many\n"},
        BadInput{"cube length mismatch",
                 "soc s\ncore c\n inputs 2\n patterns 1\n cube 101\nend\n"},
        BadInput{"wrong cube count",
                 "soc s\ncore c\n inputs 2\n patterns 2\n cube 10\nend\n"},
        BadInput{"bad cube symbol",
                 "soc s\ncore c\n inputs 2\n patterns 1\n cube 1Z\nend\n"},
        BadInput{"bad sparse bit",
                 "soc s\ncore c\n inputs 2\n patterns 1\n sparse 0=1\nend\n"},
        BadInput{"sparse out of range",
                 "soc s\ncore c\n inputs 2\n patterns 1\n sparse 5:1\nend\n"},
        // An index >= 2^32 must be rejected, not silently wrapped to a
        // small valid cell by a stoul-then-cast (4294967296 mod 2^32 = 0,
        // a perfectly legal cell — the old bug).
        BadInput{"sparse index wraps uint32",
                 "soc s\ncore c\n inputs 2\n patterns 1\n"
                 " sparse 4294967296:1\nend\n"},
        BadInput{"sparse index overflows uint64",
                 "soc s\ncore c\n inputs 2\n patterns 1\n"
                 " sparse 99999999999999999999999:1\nend\n"},
        BadInput{"sparse negative index",
                 "soc s\ncore c\n inputs 2\n patterns 1\n sparse -1:1\nend\n"},
        BadInput{"sparse junk index",
                 "soc s\ncore c\n inputs 2\n patterns 1\n sparse 1x:1\nend\n"},
        BadInput{"empty scanchains",
                 "soc s\ncore c\n inputs 1\n scanchains\n patterns 0\nend\n"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      std::string name = info.param.label;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace soctest
