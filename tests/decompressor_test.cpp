// The cycle-accurate hardware model must agree with the software decoder
// word for word, and its cycle count must equal the codeword count (the
// identity behind compressed_test_time()).
#include <gtest/gtest.h>

#include "codec/stream_decoder.hpp"
#include "codec/stream_encoder.hpp"
#include "decomp/area_model.hpp"
#include "decomp/decompressor_model.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

class DecompressorSweep : public ::testing::TestWithParam<int> {};

TEST_P(DecompressorSweep, MatchesSoftwareDecoder) {
  const int m = GetParam();
  const CoreUnderTest core =
      testutil::flex_core("c", 700, 5, 0.06, static_cast<std::uint64_t>(m));
  if (m > core.spec.max_wrapper_chains()) GTEST_SKIP();

  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());
  const EncodedStream stream = encode_stream(map, core.cubes);

  StreamDecoder sw(stream.params);
  const auto sw_slices = sw.decode(stream.words);

  DecompressorModel hw(stream.params);
  const auto hw_slices = hw.run(stream.words);

  EXPECT_EQ(hw.cycles(), stream.codeword_count());
  ASSERT_EQ(hw_slices.size(), sw_slices.size());
  for (std::size_t i = 0; i < sw_slices.size(); ++i)
    EXPECT_EQ(hw_slices[i], sw_slices[i]) << "slice " << i;
  EXPECT_TRUE(hw.idle());
}

INSTANTIATE_TEST_SUITE_P(Geometries, DecompressorSweep,
                         ::testing::Values(2, 3, 4, 6, 9, 17, 32, 100, 255));

TEST(Decompressor, RejectsProtocolViolations) {
  const CodecParams p = CodecParams::for_chains(8);  // k = 4
  const auto head = [&](bool t, int count) {
    return pack({Opcode::Head, p.head_operand(t, count)}, p);
  };
  {
    DecompressorModel hw(p);
    EXPECT_THROW(hw.clock(pack({Opcode::Single, 0}, p)),
                 std::invalid_argument);
  }
  {
    DecompressorModel hw(p);
    hw.clock(head(true, 2));
    EXPECT_THROW(hw.clock(pack({Opcode::Data, 0}, p)), std::invalid_argument);
  }
  {
    DecompressorModel hw(p);
    hw.clock(head(true, 2));
    hw.clock(pack({Opcode::Group, 4}, p));
    EXPECT_THROW(hw.clock(pack({Opcode::Single, 2}, p)),
                 std::invalid_argument);
  }
  {
    // END marker while not in escape mode.
    DecompressorModel hw(p);
    hw.clock(head(true, 2));
    EXPECT_THROW(hw.clock(pack({Opcode::Single, 8}, p)),
                 std::invalid_argument);
  }
  {
    // Group pair straddling the announced body count.
    DecompressorModel hw(p);
    hw.clock(head(true, 1));
    EXPECT_THROW(hw.clock(pack({Opcode::Group, 0}, p)),
                 std::invalid_argument);
  }
  {
    // Truncated stream: run() must notice the FSM is mid-slice.
    DecompressorModel hw(p);
    EXPECT_THROW(hw.run({{Opcode::Head, p.head_operand(true, 1)}}),
                 std::invalid_argument);
  }
}

TEST(Decompressor, RunIsRepeatable) {
  const CodecParams p = CodecParams::for_chains(10);
  const std::vector<Codeword> words = {
      {Opcode::Head, p.head_operand(true, 1)},
      {Opcode::Single, 2},
      {Opcode::Head, p.head_operand(false, 0)},
      {Opcode::Head, p.head_operand(true, 0)},
  };
  DecompressorModel hw(p);
  const auto a = hw.run(words);
  const auto b = hw.run(words);  // run() resets state
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(a[0][2]);
  EXPECT_FALSE(a[0][3]);
  for (bool bit : a[1]) EXPECT_TRUE(bit);   // fill of target 0 is 1
  for (bool bit : a[2]) EXPECT_FALSE(bit);  // fill of target 1 is 0
}

TEST(AreaModel, MatchesPaperAnchors) {
  // Controller alone: 5 FFs + 23 gates; the datapath adds the m-bit slice
  // register, so flip-flops grow linearly in m.
  const DecompressorArea small = decompressor_area(CodecParams::for_chains(8));
  EXPECT_GE(small.flip_flops, 5 + 8);
  EXPECT_GE(small.gates, 23);

  const DecompressorArea big = decompressor_area(CodecParams::for_chains(255));
  EXPECT_GT(big.flip_flops, small.flip_flops);
  EXPECT_GT(big.gates, small.gates);
  // ~1% overhead on million-gate designs (paper, Section 3 step 2).
  EXPECT_LT(area_overhead_fraction(big, 10, 1'000'000), 0.05);
  EXPECT_EQ(area_overhead_fraction(big, 10, 0), 0.0);
}

}  // namespace
}  // namespace soctest
