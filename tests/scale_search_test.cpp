// Scale differential (CTest label: scale — Release CI only): on a
// 100-core synthetic SOC the incremental search engine must still be
// bit-identical to the from-scratch path, for both the hill climb and the
// annealing walk. Small per-core geometry keeps τ-table exploration cheap
// so the test stays well under a minute in Release while the step-4
// scheduling cost — the thing the incremental engine amortizes — is real.
#include <gtest/gtest.h>

#include "dist/coordinator.hpp"
#include "opt/annealing.hpp"
#include "opt/soc_optimizer.hpp"
#include "portfolio/portfolio.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "socgen/synthetic.hpp"

namespace soctest {
namespace {

SocSpec scale_soc(int num_cores, std::uint64_t seed) {
  SyntheticSocParams p;
  p.num_cores = num_cores;
  p.max_inputs = 16;
  p.max_outputs = 16;
  p.max_chains = 6;
  p.max_chain_length = 32;
  p.max_patterns = 10;
  p.giant_scale = 4;
  return make_synthetic_soc(p, seed);
}

TEST(ScaleSearch, HillClimbIdenticalOnHundredCores) {
  const SocSpec soc = scale_soc(100, 2026);
  ExploreOptions e;
  e.max_width = 10;
  e.max_chains = 32;
  const SocOptimizer opt(soc, e);

  OptimizerOptions full;
  full.width = 24;
  full.mode = ArchMode::PerCore;
  full.incremental = false;
  OptimizerOptions inc = full;
  inc.incremental = true;

  runtime::ThreadPool pool(4);
  runtime::PoolScope scope(&pool);

  runtime::reset_search_counters();
  const OptimizationResult rf = opt.optimize(full);
  const runtime::SearchStats sf = runtime::collect_stats().search;

  runtime::reset_search_counters();
  const OptimizationResult ri = opt.optimize(inc);
  const runtime::SearchStats si = runtime::collect_stats().search;

  EXPECT_EQ(rf.test_time, ri.test_time);
  EXPECT_EQ(rf.arch.widths, ri.arch.widths);
  EXPECT_EQ(rf.schedule.bus_finish, ri.schedule.bus_finish);
  ASSERT_EQ(rf.schedule.entries.size(), ri.schedule.entries.size());
  for (std::size_t i = 0; i < rf.schedule.entries.size(); ++i) {
    EXPECT_EQ(rf.schedule.entries[i].core, ri.schedule.entries[i].core) << i;
    EXPECT_EQ(rf.schedule.entries[i].bus, ri.schedule.entries[i].bus) << i;
    EXPECT_EQ(rf.schedule.entries[i].end, ri.schedule.entries[i].end) << i;
  }
  // At this scale the engine must actually be skipping schedule builds.
  EXPECT_LT(si.candidates_scheduled, sf.candidates_scheduled);
  EXPECT_GT(si.candidates_pruned + si.schedule_reuse_hits, 0u);
}

TEST(ScaleSearch, AnnealingIdenticalOnHundredCores) {
  const SocSpec soc = scale_soc(100, 31337);
  ExploreOptions e;
  e.max_width = 10;
  e.max_chains = 32;
  const SocOptimizer opt(soc, e);

  OptimizerOptions full;
  full.width = 20;
  full.mode = ArchMode::PerCore;
  full.incremental = false;
  OptimizerOptions inc = full;
  inc.incremental = true;

  AnnealingOptions a;
  a.iterations = 400;
  a.seed = 11;

  runtime::ThreadPool pool(4);
  runtime::PoolScope scope(&pool);

  runtime::reset_search_counters();
  const OptimizationResult rf = optimize_annealing(opt, full, a);
  const runtime::SearchStats sf = runtime::collect_stats().search;

  runtime::reset_search_counters();
  const OptimizationResult ri = optimize_annealing(opt, inc, a);
  const runtime::SearchStats si = runtime::collect_stats().search;

  EXPECT_EQ(rf.test_time, ri.test_time);
  EXPECT_EQ(rf.arch.widths, ri.arch.widths);
  EXPECT_EQ(rf.schedule.bus_finish, ri.schedule.bus_finish);
  EXPECT_EQ(sf.anneal_proposals, si.anneal_proposals);
  EXPECT_LT(si.candidates_scheduled, sf.candidates_scheduled);
}

// Distributed portfolio at scale: on a 120-core synthetic SOC every
// (workers x worker-jobs) sharding of the replica ladder must reproduce
// the single-process portfolio member-for-member. The small per-core
// geometry keeps each worker's explore-table rebuild cheap; the ladder and
// sweep budget stay small because the point is the split algebra, not the
// search depth (dist_test.cpp covers crash/resume on d695).
TEST(ScaleSearch, DistributedPortfolioMatrixOnSynth120) {
  const SocSpec soc = scale_soc(120, 808);
  ExploreOptions e;
  e.max_width = 10;
  e.max_chains = 32;
  const SocOptimizer opt(soc, e);

  OptimizerOptions o;
  o.width = 24;
  o.mode = ArchMode::PerCore;

  PortfolioOptions p;
  p.replicas = 4;
  p.sweeps = 3;
  p.proposals_per_sweep = 10;
  p.seed = 120;

  const PortfolioResult base = optimize_portfolio(opt, o, p);

  for (const int workers : {1, 2, 4}) {
    for (const int jobs : {1, 4}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " jobs=" + std::to_string(jobs));
      dist::DistOptions d;
      d.workers = workers;
      d.worker_jobs = jobs;
      d.worker_cmd = SOCTEST_CLI_BINARY;
      d.explore_max_width = 10;
      d.explore_max_chains = 32;
      const PortfolioResult r =
          dist::optimize_portfolio_distributed(opt, o, p, d);
      EXPECT_EQ(r.best.arch.widths, base.best.arch.widths);
      EXPECT_EQ(r.best.test_time, base.best.test_time);
      EXPECT_EQ(r.best.data_volume_bits, base.best.data_volume_bits);
      ASSERT_EQ(r.replica_best.size(), base.replica_best.size());
      for (std::size_t i = 0; i < r.replica_best.size(); ++i) {
        EXPECT_EQ(r.replica_best[i].arch.widths,
                  base.replica_best[i].arch.widths) << i;
        EXPECT_EQ(r.replica_best[i].test_time,
                  base.replica_best[i].test_time) << i;
      }
      EXPECT_EQ(r.stats.best_by_sweep, base.stats.best_by_sweep);
      EXPECT_EQ(r.stats.swaps_attempted, base.stats.swaps_attempted);
      EXPECT_EQ(r.stats.swaps_accepted, base.stats.swaps_accepted);
      EXPECT_EQ(r.stats.proposals_total, base.stats.proposals_total);
    }
  }
}

}  // namespace
}  // namespace soctest
