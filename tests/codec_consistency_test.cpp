// The exploration kernel (SparseCostModel) must agree exactly with the
// materializing encoder — codeword counts drive every test-time number in
// the reproduction, so this is the repository's most load-bearing identity.
// Since the word-parallel rewrite it is a three-way identity: the fused
// mask-scatter path, the sort-based reference, and the materializing
// encoder, under both the scalar and the AVX2 kernel dispatch.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "bitvec/slice_kernels.hpp"
#include "codec/sparse_cost.hpp"
#include "codec/stream_encoder.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

using Case = std::tuple<int /*m*/, double /*density*/, bool /*flexible*/>;

class SparseVsMaterialized : public ::testing::TestWithParam<Case> {};

TEST_P(SparseVsMaterialized, CodewordCountsAgree) {
  const auto [m, density, flexible] = GetParam();
  const CoreUnderTest core =
      flexible ? testutil::flex_core("f", 800, 6, density, 5)
               : testutil::small_core("x", 25, {120, 90, 70, 40, 33}, 6,
                                      density, 5);
  if (m > core.spec.max_wrapper_chains()) GTEST_SKIP();

  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());

  const EncodedStream stream = encode_stream(map, core.cubes);
  const SparseCostResult sparse = sparse_stream_cost(map, core.cubes);

  EXPECT_EQ(sparse.total_codewords, stream.codeword_count());
  EXPECT_EQ(sparse.touched_slices + sparse.empty_slices,
            static_cast<std::int64_t>(stream.patterns) *
                stream.slices_per_pattern);

  // The fused word-parallel path must reproduce the sorted reference down
  // to every statistic, in every dispatch mode available on this machine.
  const SparseCostResult sorted = sparse_stream_cost_sorted(map, core.cubes);
  EXPECT_EQ(sparse, sorted);
  const kernels::SimdMode prev = kernels::active_mode();
  kernels::set_mode(kernels::SimdMode::Scalar);
  EXPECT_EQ(sparse_stream_cost(map, core.cubes), sorted);
  kernels::set_mode(kernels::SimdMode::Avx2);  // stays scalar if unsupported
  EXPECT_EQ(sparse_stream_cost(map, core.cubes), sorted);
  kernels::set_mode(prev);

  // The group-copy ablation must agree across paths too.
  SliceEncoderOptions nocopy;
  nocopy.enable_group_copy = false;
  EXPECT_EQ(sparse_stream_cost(map, core.cubes, nocopy),
            sparse_stream_cost_sorted(map, core.cubes, nocopy));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SparseVsMaterialized,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 13, 21, 50, 101, 255),
                       ::testing::Values(0.01, 0.08, 0.4, 0.9),
                       ::testing::Bool()));

TEST(SparseCost, EmptyCubeSetCostsOneHeadPerSlice) {
  CoreUnderTest core = testutil::flex_core("f", 100, 0);
  core.spec.num_patterns = 3;
  core.cubes = TestCubeSet(core.spec.stimulus_bits_per_pattern());
  for (int i = 0; i < 3; ++i) core.cubes.add_pattern(std::vector<CareBit>{});

  const WrapperDesign d = design_wrapper(core.spec, 4);
  const SliceMap map(d, core.cubes.num_cells());
  const SparseCostResult r = sparse_stream_cost(map, core.cubes);
  EXPECT_EQ(r.touched_slices, 0);
  EXPECT_EQ(r.empty_slices, 3ll * map.depth());
  EXPECT_EQ(r.total_codewords, 3ll * map.depth());
}

TEST(SparseCost, PerSliceCostBoundsHold) {
  // Every slice costs at least 1 codeword (Head) and at most
  // 2 + 2 * num_groups (Head + END + a Group/Data pair per group).
  const CoreUnderTest core = testutil::flex_core("f", 500, 6, 0.5, 9);
  for (int m : {4, 16, 40}) {
    const WrapperDesign d = design_wrapper(core.spec, m);
    const SliceMap map(d, core.cubes.num_cells());
    const SparseCostResult r = sparse_stream_cost(map, core.cubes);
    const std::int64_t slices = r.touched_slices + r.empty_slices;
    const CodecParams p = CodecParams::for_chains(m);
    EXPECT_GE(r.total_codewords, slices);
    EXPECT_LE(r.total_codewords, slices * (2 + 2 * p.num_groups()));
  }
}

TEST(SparseCost, ValidatesGeometryAgainstPackingWidths) {
  // The sorted path packs (slice << 21) | (chain << 1) | value into one
  // 64-bit key; chains occupy 20 bits. The cap must be enforced at entry,
  // not assumed from max_wrapper_chains()'s 2^16.
  EXPECT_NO_THROW(validate_sparse_geometry(1, 0));
  EXPECT_NO_THROW(validate_sparse_geometry(kMaxPackedChains, 1 << 20));
  EXPECT_THROW(validate_sparse_geometry(0, 10), std::invalid_argument);
  EXPECT_THROW(validate_sparse_geometry(-5, 10), std::invalid_argument);
  EXPECT_THROW(validate_sparse_geometry(kMaxPackedChains + 1, 10),
               std::invalid_argument);
  EXPECT_THROW(validate_sparse_geometry(4, -1), std::invalid_argument);
}

TEST(SparseCost, MaxWrapperChainsGeometryStaysExact) {
  // Regression at the largest geometry the spec layer can produce:
  // max_wrapper_chains() caps at 2^16 chains, the widest slice planes the
  // fused path ever scatters into (1024 words) and the largest chain index
  // the sorted path ever packs.
  CoreUnderTest core;
  core.spec.name = "max-m";
  core.spec.num_inputs = 16;
  core.spec.num_outputs = 8;
  core.spec.flexible_scan = true;
  core.spec.flexible_scan_cells = 70'000;
  core.spec.num_patterns = 2;
  CubeSynthParams p;
  p.num_cells = core.spec.stimulus_bits_per_pattern();
  p.num_patterns = 2;
  p.care_density = 0.002;
  core.cubes = synthesize_cubes(p, 77);
  core.validate();

  const int m = core.spec.max_wrapper_chains();
  ASSERT_EQ(m, 1 << 16);
  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());
  ASSERT_EQ(map.num_chains(), m);

  const SparseCostResult fused = sparse_stream_cost(map, core.cubes);
  const SparseCostResult sorted = sparse_stream_cost_sorted(map, core.cubes);
  EXPECT_EQ(fused, sorted);
  EXPECT_EQ(fused.total_codewords,
            encode_stream(map, core.cubes).codeword_count());
  EXPECT_GT(fused.touched_slices, 0);
}

TEST(SparseCost, StatisticsDecomposeTotal) {
  // total = 1 per slice (Head) + singles + 2 per group-copy + 1 END per
  // slice that has at least one target; the END count is bounded by the
  // touched-slice count.
  const CoreUnderTest core = testutil::flex_core("f", 400, 5, 0.2, 11);
  const WrapperDesign d = design_wrapper(core.spec, 8);
  const SliceMap map(d, core.cubes.num_cells());
  const SparseCostResult r = sparse_stream_cost(map, core.cubes);
  const std::int64_t slices = r.touched_slices + r.empty_slices;
  const std::int64_t ends =
      r.total_codewords - slices - r.single_codewords - 2 * r.group_copy_pairs;
  EXPECT_GE(ends, 0);
  EXPECT_LE(ends, r.touched_slices);
}

}  // namespace
}  // namespace soctest
