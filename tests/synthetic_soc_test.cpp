// socgen/synthetic: the scale-study SOC generator must be deterministic
// under a fixed seed, honour its parameter ranges (including the giant
// heavy tail), and round-trip through io/soc_text — the three properties
// BENCH_search and the differential tests lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "io/soc_text.hpp"
#include "socgen/synthetic.hpp"

namespace soctest {
namespace {

std::string to_text(const SocSpec& soc) {
  std::ostringstream out;
  write_soc_text(out, soc);
  return out.str();
}

TEST(SyntheticSoc, DeterministicUnderFixedSeed) {
  SyntheticSocParams params;
  params.num_cores = 40;
  const SocSpec a = make_synthetic_soc(params, 0xFEED);
  const SocSpec b = make_synthetic_soc(params, 0xFEED);
  EXPECT_EQ(to_text(a), to_text(b));

  const SocSpec c = make_synthetic_soc(params, 0xFEED + 1);
  EXPECT_NE(to_text(a), to_text(c)) << "seed must matter";
}

TEST(SyntheticSoc, RespectsParameterRanges) {
  SyntheticSocParams params;
  params.num_cores = 150;
  const SocSpec soc = make_synthetic_soc(params, 99);
  ASSERT_EQ(static_cast<int>(soc.cores.size()), params.num_cores);

  bool saw_giant = false;
  for (const CoreUnderTest& core : soc.cores) {
    const CoreSpec& s = core.spec;
    EXPECT_GE(s.num_inputs, params.min_inputs);
    EXPECT_LE(s.num_inputs, params.max_inputs);
    EXPECT_GE(s.num_outputs, params.min_outputs);
    EXPECT_LE(s.num_outputs, params.max_outputs);
    const int chains = static_cast<int>(s.scan_chain_lengths.size());
    EXPECT_GE(chains, params.min_chains);
    EXPECT_LE(chains, params.max_chains);
    // A core is either regular (inside the base ranges) or a giant (scaled
    // by exactly giant_scale); pattern count tells the two apart.
    const bool giant = s.num_patterns > params.max_patterns;
    saw_giant = saw_giant || giant;
    const int scale = giant ? params.giant_scale : 1;
    EXPECT_GE(s.num_patterns, scale * params.min_patterns);
    EXPECT_LE(s.num_patterns, scale * params.max_patterns);
    for (int len : s.scan_chain_lengths) {
      EXPECT_GE(len, scale * params.min_chain_length);
      EXPECT_LE(len, scale * params.max_chain_length);
    }
    EXPECT_EQ(core.cubes.num_patterns(), s.num_patterns);
  }
  // 150 cores at giant_fraction 0.05: the tail is present with
  // overwhelming probability under any fixed seed we'd keep.
  EXPECT_TRUE(saw_giant);
}

TEST(SyntheticSoc, RoundTripsThroughSocText) {
  SyntheticSocParams params;
  params.num_cores = 25;
  const SocSpec soc = make_synthetic_soc(params, 7);
  const std::string text = to_text(soc);
  std::istringstream in(text);
  const SocSpec reread = read_soc_text(in);
  EXPECT_EQ(to_text(reread), text);
  EXPECT_EQ(reread.name, soc.name);
  ASSERT_EQ(reread.cores.size(), soc.cores.size());
}

TEST(SyntheticSoc, ValidateRejectsBadParams) {
  SyntheticSocParams p;
  p.num_cores = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.min_chains = 5;
  p.max_chains = 4;
  EXPECT_THROW(make_synthetic_soc(p, 1), std::invalid_argument);

  p = {};
  p.min_care_density = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.giant_scale = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  EXPECT_NO_THROW(p.validate());
}

}  // namespace
}  // namespace soctest
