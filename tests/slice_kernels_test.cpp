// Word-parallel kernel differentials: the packed-plane counting kernels and
// the word-walking SliceEncoder must agree bit-for-bit with a trit-at-a-time
// oracle, in scalar mode and (where the CPU has it) in AVX2 mode, across
// slice widths 1-130 and the degenerate cubes (all-X, all-care, single-care).
#include "bitvec/slice_kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bitvec/ternary_vector.hpp"
#include "codec/slice_encoder.hpp"
#include "codec/stream_decoder.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

// Restores the process-wide dispatch mode on scope exit so suites can't
// leak a forced mode into each other.
class ScopedMode {
 public:
  explicit ScopedMode(kernels::SimdMode m) : prev_(kernels::active_mode()) {
    kernels::set_mode(m);
  }
  ~ScopedMode() { kernels::set_mode(prev_); }

 private:
  kernels::SimdMode prev_;
};

std::vector<kernels::SimdMode> modes_under_test() {
  std::vector<kernels::SimdMode> modes{kernels::SimdMode::Scalar};
  if (kernels::avx2_supported()) modes.push_back(kernels::SimdMode::Avx2);
  return modes;
}

// The seed's counting loop: one get() per trit.
struct OracleCounts {
  std::int64_t care = 0;
  std::int64_t ones = 0;
};

OracleCounts oracle_count(const TernaryVector& v) {
  OracleCounts c;
  for (std::size_t i = 0; i < v.size(); ++i) {
    switch (v.get(i)) {
      case Trit::One:
        ++c.care;
        ++c.ones;
        break;
      case Trit::Zero: ++c.care; break;
      case Trit::X: break;
    }
  }
  return c;
}

// The seed SliceEncoder::cost: materialized target positions, run walk.
int oracle_cost(const TernaryVector& slice, const CodecParams& p,
                const SliceEncoderOptions& opts) {
  const OracleCounts c = oracle_count(slice);
  const bool target = c.ones <= c.care - c.ones;
  const Trit t = target ? Trit::One : Trit::Zero;
  std::vector<int> positions;
  for (std::size_t i = 0; i < slice.size(); ++i)
    if (slice.get(i) == t) positions.push_back(static_cast<int>(i));
  int body = 0;
  std::size_t i = 0;
  while (i < positions.size()) {
    const int g = positions[i] / p.k;
    std::size_t j = i;
    while (j < positions.size() && positions[j] / p.k == g) ++j;
    body += opts.enable_group_copy
                ? static_cast<int>(std::min<std::size_t>(j - i, 2))
                : static_cast<int>(j - i);
    i = j;
  }
  return 1 + body + (body >= p.escape_count() ? 1 : 0);
}

TernaryVector random_slice(Rng& rng, std::size_t n, double p_one,
                           double p_zero) {
  TernaryVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = rng.next_double();
    if (r < p_one)
      v.set(i, Trit::One);
    else if (r < p_one + p_zero)
      v.set(i, Trit::Zero);
  }
  return v;
}

std::vector<TernaryVector> edge_slices(std::size_t n) {
  std::vector<TernaryVector> out;
  out.emplace_back(n);  // all-X
  TernaryVector ones(n), zeros(n), mixed(n);
  ones.fill_x_with(true);
  zeros.fill_x_with(false);
  for (std::size_t i = 0; i < n; ++i)
    mixed.set(i, i % 2 ? Trit::One : Trit::Zero);
  out.push_back(ones);   // all-care, all 1
  out.push_back(zeros);  // all-care, all 0
  out.push_back(mixed);  // all-care, alternating
  for (const std::size_t pos : {std::size_t{0}, n / 2, n - 1}) {
    TernaryVector single1(n), single0(n);
    single1.set(pos, Trit::One);
    single0.set(pos, Trit::Zero);
    out.push_back(single1);  // single-care
    out.push_back(single0);
  }
  return out;
}

TEST(SliceKernels, CountsMatchTritOracleAcrossWidths) {
  Rng rng(2026);
  for (const kernels::SimdMode mode : modes_under_test()) {
    ScopedMode scoped(mode);
    for (std::size_t n = 1; n <= 130; ++n) {
      std::vector<TernaryVector> cases = edge_slices(n);
      for (int trial = 0; trial < 4; ++trial)
        cases.push_back(random_slice(rng, n, 0.2, 0.3));
      for (const TernaryVector& v : cases) {
        const OracleCounts want = oracle_count(v);
        const kernels::SliceCounts got = kernels::slice_count(
            v.care_words(), v.value_words(), v.num_words());
        ASSERT_EQ(got.care, want.care)
            << "mode=" << kernels::mode_name(mode) << " n=" << n;
        ASSERT_EQ(got.ones, want.ones)
            << "mode=" << kernels::mode_name(mode) << " n=" << n;
        ASSERT_EQ(kernels::popcount_words(v.care_words(), v.num_words()),
                  want.care);
        // The TernaryVector entry points ride the same kernels.
        ASSERT_EQ(v.count_care(), static_cast<std::size_t>(want.care));
        ASSERT_EQ(v.count(Trit::One), static_cast<std::size_t>(want.ones));
        ASSERT_EQ(v.count(Trit::Zero),
                  static_cast<std::size_t>(want.care - want.ones));
        ASSERT_EQ(v.count(Trit::X),
                  v.size() - static_cast<std::size_t>(want.care));
      }
    }
  }
}

TEST(SliceKernels, ScalarAndAvx2KernelsAgreeOnLongPlanes) {
  if (!kernels::avx2_supported())
    GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(555);
  for (const std::size_t words : {1u, 3u, 4u, 5u, 8u, 17u, 64u, 129u}) {
    std::vector<std::uint64_t> care(words), value(words);
    for (std::size_t i = 0; i < words; ++i) {
      care[i] = rng.next_u64();
      value[i] = rng.next_u64() & care[i];
    }
    EXPECT_EQ(kernels::slice_count_scalar(care.data(), value.data(), words),
              kernels::slice_count_avx2(care.data(), value.data(), words));
    EXPECT_EQ(kernels::popcount_scalar(care.data(), words),
              kernels::popcount_avx2(care.data(), words));
  }
}

TEST(SliceKernels, ExtractBitsMatchesPerBitReads) {
  Rng rng(99);
  std::vector<std::uint64_t> w(5);
  for (auto& x : w) x = rng.next_u64();
  for (int trial = 0; trial < 500; ++trial) {
    const int len = 1 + static_cast<int>(rng.next_below(64));
    const std::size_t start = rng.next_below(5 * 64 - len + 1);
    const std::uint64_t got = kernels::extract_bits(w.data(), start, len);
    std::uint64_t want = 0;
    for (int b = 0; b < len; ++b) {
      const std::size_t i = start + static_cast<std::size_t>(b);
      if ((w[i >> 6] >> (i & 63)) & 1) want |= std::uint64_t{1} << b;
    }
    ASSERT_EQ(got, want) << "start=" << start << " len=" << len;
  }
}

TEST(SliceKernels, EncoderCostMatchesTritOracleAcrossWidths) {
  Rng rng(31337);
  for (const kernels::SimdMode mode : modes_under_test()) {
    ScopedMode scoped(mode);
    for (int m = 2; m <= 130; ++m) {
      const CodecParams p = CodecParams::for_chains(m);
      for (const SliceEncoderOptions opts :
           {SliceEncoderOptions{true}, SliceEncoderOptions{false}}) {
        const SliceEncoder enc(p, opts);
        std::vector<TernaryVector> cases =
            edge_slices(static_cast<std::size_t>(m));
        for (int trial = 0; trial < 3; ++trial)
          cases.push_back(random_slice(rng, static_cast<std::size_t>(m), 0.15,
                                       0.25));
        for (const TernaryVector& v : cases) {
          ASSERT_EQ(enc.cost(v), oracle_cost(v, p, opts))
              << "mode=" << kernels::mode_name(mode) << " m=" << m;
          ASSERT_EQ(enc.cost(v),
                    static_cast<int>(enc.encode(v).words.size()))
              << "mode=" << kernels::mode_name(mode) << " m=" << m;
        }
      }
    }
  }
}

TEST(SliceKernels, EncodeDecodesToSameSliceInBothModes) {
  // The encoded words themselves (not just their count) must be mode-
  // independent, and decode must restore every care bit.
  Rng rng(4242);
  for (int m : {2, 7, 63, 64, 65, 128, 130}) {
    const CodecParams p = CodecParams::for_chains(m);
    const SliceEncoder enc(p);
    const StreamDecoder dec(p);
    std::vector<TernaryVector> cases = edge_slices(static_cast<std::size_t>(m));
    for (int trial = 0; trial < 5; ++trial)
      cases.push_back(
          random_slice(rng, static_cast<std::size_t>(m), 0.3, 0.3));
    for (const TernaryVector& v : cases) {
      EncodedSlice scalar_words, simd_words;
      {
        ScopedMode scoped(kernels::SimdMode::Scalar);
        scalar_words = enc.encode(v);
      }
      {
        ScopedMode scoped(kernels::SimdMode::Avx2);  // scalar if unsupported
        simd_words = enc.encode(v);
      }
      ASSERT_EQ(scalar_words.words, simd_words.words) << "m=" << m;
      const auto slices = dec.decode(scalar_words.words);
      ASSERT_EQ(slices.size(), 1u);
      for (std::size_t i = 0; i < v.size(); ++i)
        if (v.get(i) != Trit::X)
          ASSERT_EQ(slices[0][i], v.get(i) == Trit::One)
              << "m=" << m << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace soctest
