#include "codec/slice_encoder.hpp"

#include <gtest/gtest.h>

#include "codec/stream_decoder.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

std::vector<bool> decode_one(const EncodedSlice& es, const CodecParams& p) {
  StreamDecoder dec(p);
  const auto slices = dec.decode(es.words);
  EXPECT_EQ(slices.size(), 1u);
  return slices.at(0);
}

TEST(SliceEncoder, PaperExampleTargetsMinoritySymbol) {
  // Paper: "the target symbol of 1 in the slice XXX1000 is encoded ... at
  // index 3". m = 7: one Head (target 1, one body word), one Single(3).
  const CodecParams p = CodecParams::for_chains(7);
  const SliceEncoder enc(p);
  const EncodedSlice es = enc.encode(TernaryVector::from_string("XXX1000"));
  EXPECT_TRUE(es.target_symbol);
  EXPECT_FALSE(es.fill_symbol);
  ASSERT_EQ(es.words.size(), 2u);
  EXPECT_EQ(es.words[0], (Codeword{Opcode::Head, p.head_operand(true, 1)}));
  EXPECT_EQ(es.words[1], (Codeword{Opcode::Single, 3}));
  EXPECT_EQ(enc.cost(TernaryVector::from_string("XXX1000")), 2);

  const std::vector<bool> out = decode_one(es, p);
  const std::vector<bool> expect = {false, false, false, true,
                                    false, false, false};
  EXPECT_EQ(out, expect);
}

TEST(SliceEncoder, AllXSliceCostsOneCodeword) {
  const CodecParams p = CodecParams::for_chains(12);
  const SliceEncoder enc(p);
  const EncodedSlice es = enc.encode(TernaryVector(12));
  ASSERT_EQ(es.words.size(), 1u);
  EXPECT_EQ(es.words[0].opcode, Opcode::Head);
  EXPECT_EQ(es.words[0].operand >> 1, 0u);  // body count 0
  EXPECT_EQ(enc.cost(TernaryVector(12)), 1);
  EXPECT_EQ(decode_one(es, p).size(), 12u);
}

TEST(SliceEncoder, UniformCareSliceIsEmptyEncoded) {
  // All care bits share one value -> that value becomes the fill; zero
  // targets; one codeword.
  const CodecParams p = CodecParams::for_chains(8);
  const SliceEncoder enc(p);
  const EncodedSlice es = enc.encode(TernaryVector::from_string("1111XXXX"));
  ASSERT_EQ(es.words.size(), 1u);
  EXPECT_TRUE(es.fill_symbol);
  const std::vector<bool> out = decode_one(es, p);
  for (bool b : out) EXPECT_TRUE(b);
}

TEST(SliceEncoder, GroupCopyKicksInAtThreeTargets) {
  // m = 8, k = 4 -> groups {0..3} and {4..7}. Three 1s among four 0s in one
  // group: copy-mode (Group+Data = 2 words) beats three Singles.
  const CodecParams p = CodecParams::for_chains(8);
  ASSERT_EQ(p.k, 4);
  const SliceEncoder enc(p);
  const EncodedSlice es = enc.encode(TernaryVector::from_string("11010000"));
  // care: 1,1,0,1,0,0,0,0 -> c1=3, c0=5 -> target=1; group0 has 3 targets.
  ASSERT_EQ(es.words.size(), 3u);  // Head(count 2), Group, Data
  EXPECT_EQ(es.words[0].operand >> 1, 2u);
  EXPECT_EQ(es.words[1].opcode, Opcode::Group);
  EXPECT_EQ(es.words[1].operand, 0u);
  EXPECT_EQ(es.words[2].opcode, Opcode::Data);
  EXPECT_EQ(es.words[2].operand, 0b1011u);  // bit j -> slice[j]
  EXPECT_EQ(enc.cost(TernaryVector::from_string("11010000")), 3);
}

TEST(SliceEncoder, TwoTargetsStaySingleBitMode) {
  const CodecParams p = CodecParams::for_chains(8);
  const SliceEncoder enc(p);
  const EncodedSlice es = enc.encode(TernaryVector::from_string("1100XXXX"));
  // c1 = c0 = 2 -> tie targets 1; two Singles.
  ASSERT_EQ(es.words.size(), 3u);  // Head(count 2), Single, Single
  EXPECT_EQ(es.words[1], (Codeword{Opcode::Single, 0}));
  EXPECT_EQ(es.words[2], (Codeword{Opcode::Single, 1}));
}

TEST(SliceEncoder, TinyGeometryEscapesToEndMarker) {
  // m = 2 -> k = 2 -> the Head count field holds only {0, escape}; any
  // non-empty slice is END-terminated.
  const CodecParams p = CodecParams::for_chains(2);
  ASSERT_EQ(p.escape_count(), 1);
  const SliceEncoder enc(p);
  const EncodedSlice es = enc.encode(TernaryVector::from_string("10"));
  ASSERT_EQ(es.words.size(), 3u);
  EXPECT_EQ(es.words[0], (Codeword{Opcode::Head, p.head_operand(true, 1)}));
  EXPECT_EQ(es.words[1], (Codeword{Opcode::Single, 0}));
  EXPECT_EQ(es.words[2], (Codeword{Opcode::Single, 2}));  // END
  EXPECT_EQ(enc.cost(TernaryVector::from_string("10")), 3);
  const std::vector<bool> out = decode_one(es, p);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(SliceEncoder, GroupDataLiteralFillsXWithFill) {
  // Group copy of a group containing an X: the literal carries the fill
  // value there, so the decoded slice is still correct on care bits.
  const CodecParams p = CodecParams::for_chains(8);
  const SliceEncoder enc(p);
  const TernaryVector slice = TernaryVector::from_string("1X110000");
  const EncodedSlice es = enc.encode(slice);
  const std::vector<bool> out = decode_one(es, p);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);  // X -> fill (majority care value is 0)
  EXPECT_TRUE(out[2]);
  EXPECT_TRUE(out[3]);
}

TEST(SliceEncoder, RejectsWrongWidth) {
  const SliceEncoder enc(CodecParams::for_chains(8));
  EXPECT_THROW(enc.encode(TernaryVector(7)), std::invalid_argument);
  EXPECT_THROW(enc.cost(TernaryVector(9)), std::invalid_argument);
}

TEST(SliceEncoder, CostMatchesEncodeEverywhere) {
  Rng rng(31);
  for (int m : {2, 3, 5, 8, 15, 31, 64, 200}) {
    const CodecParams p = CodecParams::for_chains(m);
    const SliceEncoder enc(p);
    for (int trial = 0; trial < 50; ++trial) {
      TernaryVector slice(static_cast<std::size_t>(m));
      for (int i = 0; i < m; ++i) {
        const double r = rng.next_double();
        if (r < 0.1)
          slice.set(static_cast<std::size_t>(i), Trit::One);
        else if (r < 0.2)
          slice.set(static_cast<std::size_t>(i), Trit::Zero);
      }
      EXPECT_EQ(enc.cost(slice),
                static_cast<int>(enc.encode(slice).words.size()));
    }
  }
}

}  // namespace
}  // namespace soctest
