// Search-equivalence regression for the incremental step-3 evaluation
// engine: the delta evaluator + lower-bound pruner + batched neighbourhood
// must return an OptimizationResult member-for-member identical to the
// original evaluate-every-neighbour loop, on d695 and on a fuzzed random
// SOC, for 1 and 4 runtime lanes. Also pins down the counter algebra the
// BENCH_search ablation relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>

#include "opt/annealing.hpp"
#include "opt/delta_evaluator.hpp"
#include "opt/soc_optimizer.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/greedy_scheduler.hpp"
#include "socgen/cube_synth.hpp"
#include "socgen/d695.hpp"
#include "socgen/rng.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

void expect_identical(const OptimizationResult& a, const OptimizationResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.constraint, b.constraint);
  EXPECT_EQ(a.arch.widths, b.arch.widths);
  EXPECT_EQ(a.test_time, b.test_time);
  EXPECT_EQ(a.data_volume_bits, b.data_volume_bits);
  EXPECT_EQ(a.peak_power_mw, b.peak_power_mw);

  ASSERT_EQ(a.buses.size(), b.buses.size());
  for (std::size_t i = 0; i < a.buses.size(); ++i) {
    EXPECT_EQ(a.buses[i].alloc_width, b.buses[i].alloc_width) << i;
    EXPECT_EQ(a.buses[i].ate_width, b.buses[i].ate_width) << i;
    EXPECT_EQ(a.buses[i].onchip_width, b.buses[i].onchip_width) << i;
    EXPECT_EQ(a.buses[i].m, b.buses[i].m) << i;
    EXPECT_EQ(a.buses[i].has_decompressor, b.buses[i].has_decompressor) << i;
  }

  EXPECT_EQ(a.schedule.bus_finish, b.schedule.bus_finish);
  EXPECT_EQ(a.schedule.total_volume_bits, b.schedule.total_volume_bits);
  ASSERT_EQ(a.schedule.entries.size(), b.schedule.entries.size());
  for (std::size_t i = 0; i < a.schedule.entries.size(); ++i) {
    const ScheduleEntry& x = a.schedule.entries[i];
    const ScheduleEntry& y = b.schedule.entries[i];
    EXPECT_EQ(x.core, y.core) << i;
    EXPECT_EQ(x.bus, y.bus) << i;
    EXPECT_EQ(x.start, y.start) << i;
    EXPECT_EQ(x.end, y.end) << i;
    EXPECT_EQ(x.choice, y.choice) << i;
  }

  EXPECT_EQ(a.wiring.onchip_wires, b.wiring.onchip_wires);
  EXPECT_EQ(a.wiring.ate_channels, b.wiring.ate_channels);
  EXPECT_EQ(a.wiring.decompressors, b.wiring.decompressors);
  EXPECT_EQ(a.wiring.total_flip_flops, b.wiring.total_flip_flops);
  EXPECT_EQ(a.wiring.total_gates, b.wiring.total_gates);
}

SocSpec fuzzed_soc(std::uint64_t seed) {
  Rng rng(seed);
  SocSpec soc;
  soc.name = "fuzz-" + std::to_string(seed);
  const int cores = static_cast<int>(rng.next_range(3, 6));
  for (int i = 0; i < cores; ++i) {
    CoreUnderTest c;
    c.spec.name = "c" + std::to_string(i);
    c.spec.num_inputs = static_cast<int>(rng.next_range(1, 30));
    c.spec.num_outputs = static_cast<int>(rng.next_range(1, 30));
    const int chains = static_cast<int>(rng.next_range(1, 12));
    for (int j = 0; j < chains; ++j)
      c.spec.scan_chain_lengths.push_back(
          static_cast<int>(rng.next_range(1, 120)));
    c.spec.num_patterns = static_cast<int>(rng.next_range(4, 30));
    CubeSynthParams p;
    p.num_cells = c.spec.stimulus_bits_per_pattern();
    p.num_patterns = c.spec.num_patterns;
    p.care_density = 0.01 + 0.4 * rng.next_double();
    c.cubes = synthesize_cubes(p, rng.next_u64());
    c.validate();
    soc.cores.push_back(std::move(c));
  }
  return soc;
}

/// Runs the search in both evaluation strategies under `lanes` pool lanes
/// and checks member-for-member equality across every combination.
void check_equivalence(const SocOptimizer& opt, const OptimizerOptions& base) {
  OptimizerOptions full = base;
  full.incremental = false;
  OptimizerOptions inc = base;
  inc.incremental = true;

  runtime::ThreadPool pool1(1);
  runtime::ThreadPool pool4(4);

  OptimizationResult reference;
  {
    runtime::PoolScope scope(&pool1);
    reference = opt.optimize(full);
  }
  {
    runtime::PoolScope scope(&pool1);
    expect_identical(opt.optimize(inc), reference, "incremental@1lane");
  }
  {
    runtime::PoolScope scope(&pool4);
    expect_identical(opt.optimize(full), reference, "full@4lanes");
    expect_identical(opt.optimize(inc), reference, "incremental@4lanes");
  }
}

/// Annealing differential: the incremental proposal path (delta evaluator +
/// schedule memo + RNG-stream-preserving bound rejection) must walk the
/// exact same Markov chain as the scratch path — same accepted states, same
/// best — at 1 and 4 runtime lanes.
void check_annealing_equivalence(const SocOptimizer& opt,
                                 const OptimizerOptions& base,
                                 const AnnealingOptions& anneal) {
  OptimizerOptions full = base;
  full.incremental = false;
  OptimizerOptions inc = base;
  inc.incremental = true;

  runtime::ThreadPool pool1(1);
  runtime::ThreadPool pool4(4);

  OptimizationResult reference;
  {
    runtime::PoolScope scope(&pool1);
    reference = optimize_annealing(opt, full, anneal);
  }
  {
    runtime::PoolScope scope(&pool1);
    expect_identical(optimize_annealing(opt, inc, anneal), reference,
                     "anneal-incremental@1lane");
  }
  {
    runtime::PoolScope scope(&pool4);
    expect_identical(optimize_annealing(opt, full, anneal), reference,
                     "anneal-full@4lanes");
    expect_identical(optimize_annealing(opt, inc, anneal), reference,
                     "anneal-incremental@4lanes");
  }
}

TEST(IncrementalSearch, MatchesFullEvaluationOnD695) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);

  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;
  o.constraint = ConstraintMode::TamWidth;
  check_equivalence(opt, o);

  o.mode = ArchMode::PerTam;
  o.constraint = ConstraintMode::AteChannels;
  check_equivalence(opt, o);
}

TEST(IncrementalSearch, MatchesFullEvaluationOnFuzzedSoc) {
  const SocSpec soc = fuzzed_soc(0xD0E5);
  ExploreOptions e;
  e.max_width = 14;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);

  for (ArchMode mode : {ArchMode::NoTdc, ArchMode::PerCore, ArchMode::PerTam}) {
    for (ConstraintMode cons :
         {ConstraintMode::TamWidth, ConstraintMode::AteChannels}) {
      OptimizerOptions o;
      o.width = 11;
      o.mode = mode;
      o.constraint = cons;
      check_equivalence(opt, o);
    }
  }
}

TEST(IncrementalSearch, MatchesFullEvaluationUnderPowerBudget) {
  // The pruner's bound must stay admissible for power-constrained
  // schedules too (stalls only add time).
  const SocSpec soc = testutil::mixed_soc();
  ExploreOptions e;
  e.max_width = 12;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);

  OptimizerOptions o;
  o.width = 12;
  o.mode = ArchMode::PerCore;
  o.power_budget_mw = 1e6;  // loose enough to be feasible, still exercised
  check_equivalence(opt, o);
}

TEST(IncrementalSearch, CountersBalanceAndProveReuse) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);

  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;

  o.incremental = false;
  runtime::reset_search_counters();
  opt.optimize(o);
  const runtime::SearchStats full = runtime::collect_stats().search;
  EXPECT_GT(full.candidates_generated, 0u);
  EXPECT_EQ(full.candidates_pruned, 0u);
  // The full loop schedules every candidate plus one start evaluation per
  // hill climb.
  EXPECT_GE(full.candidates_scheduled, full.candidates_generated);

  o.incremental = true;
  runtime::reset_search_counters();
  const OptimizationResult r = opt.optimize(o);
  const runtime::SearchStats inc = runtime::collect_stats().search;
  EXPECT_GT(inc.candidates_generated, 0u);
  // Every generated candidate is exactly one of pruned, memo-served, or
  // scheduled; the surplus over generated is the per-climb start
  // evaluations (which both strategies schedule without generating).
  EXPECT_EQ(inc.candidates_pruned + inc.schedule_reuse_hits +
                inc.candidates_scheduled - inc.candidates_generated,
            full.candidates_scheduled - full.candidates_generated);
  EXPECT_GT(inc.candidates_pruned, 0u);
  EXPECT_GT(inc.schedule_reuse_hits, 0u);
  EXPECT_LT(inc.candidates_scheduled, full.candidates_scheduled);
  // Column reuse is where the delta evaluation saves its work.
  EXPECT_GT(inc.column_reuse_hits, inc.columns_computed);
  EXPECT_GT(r.test_time, 0);
}

TEST(IncrementalAnnealing, MatchesScratchPathOnD695) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);

  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;
  AnnealingOptions a;
  a.iterations = 800;
  a.seed = 17;
  check_annealing_equivalence(opt, o, a);

  o.mode = ArchMode::PerTam;
  o.constraint = ConstraintMode::AteChannels;
  a.seed = 99;
  check_annealing_equivalence(opt, o, a);
}

TEST(IncrementalAnnealing, MatchesScratchPathOnFuzzedSocs) {
  for (std::uint64_t soc_seed : {0xA11EA1ULL, 0xB0B0ULL}) {
    const SocSpec soc = fuzzed_soc(soc_seed);
    ExploreOptions e;
    e.max_width = 14;
    e.max_chains = 64;
    const SocOptimizer opt(soc, e);

    for (ArchMode mode : {ArchMode::NoTdc, ArchMode::PerCore}) {
      OptimizerOptions o;
      o.width = 11;
      o.mode = mode;
      AnnealingOptions a;
      a.iterations = 500;
      a.seed = soc_seed ^ 0x5EED;
      check_annealing_equivalence(opt, o, a);
    }
  }
}

TEST(IncrementalAnnealing, CountersProveMemoAndBoundReuse) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);

  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;
  AnnealingOptions a;
  a.iterations = 3000;
  a.seed = 3;

  o.incremental = false;
  runtime::reset_search_counters();
  const OptimizationResult rf = optimize_annealing(opt, o, a);
  const runtime::SearchStats full = runtime::collect_stats().search;
  EXPECT_GT(full.anneal_proposals, 0u);
  EXPECT_EQ(full.anneal_memo_hits, 0u);
  EXPECT_EQ(full.anneal_bound_pruned, 0u);
  // The scratch path schedules the start plus every valid proposal.
  EXPECT_EQ(full.candidates_scheduled, full.anneal_proposals + 1);

  o.incremental = true;
  runtime::reset_search_counters();
  const OptimizationResult ri = optimize_annealing(opt, o, a);
  const runtime::SearchStats inc = runtime::collect_stats().search;
  EXPECT_EQ(ri.test_time, rf.test_time);
  EXPECT_EQ(inc.anneal_proposals, full.anneal_proposals);
  // Every proposal is bound-pruned, memo-served, or scheduled (the +1 is
  // the start evaluation, scheduled but never proposed).
  EXPECT_EQ(inc.anneal_bound_pruned + inc.anneal_memo_hits +
                inc.candidates_scheduled,
            inc.anneal_proposals + 1);
  EXPECT_GT(inc.anneal_memo_hits, 0u);
  EXPECT_GT(inc.anneal_bound_pruned, 0u);
  // The acceptance-criteria gate: >= 5x fewer full schedule constructions.
  EXPECT_LE(inc.candidates_scheduled * 5, full.candidates_scheduled);
}

TEST(ScheduleLowerBound, AdmissibleAgainstGreedyAndExhaustive) {
  // Random tables: the bound never exceeds the greedy (refined) makespan.
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.next_range(1, 10));
    const int k = static_cast<int>(rng.next_range(1, 4));
    CostTable t;
    t.num_cores = n;
    t.num_buses = k;
    t.cells.resize(static_cast<std::size_t>(n));
    std::vector<std::int64_t> ref(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int b = 0; b < k; ++b) {
        BusAccessCost c;
        c.time = static_cast<std::int64_t>(rng.next_range(1, 1000));
        c.choice.test_time = c.time;
        t.cells[static_cast<std::size_t>(i)].push_back(c);
      }
      ref[static_cast<std::size_t>(i)] = t.at(i, 0).time;
    }
    const Schedule s = greedy_schedule(t, ref);
    s.validate(n);
    EXPECT_LE(schedule_lower_bound(t), s.makespan()) << trial;
  }
}

TEST(ScheduleLowerBound, ExactOnSingleBus) {
  // One bus: the bound is the exact makespan (sum of all times).
  CostTable t;
  t.num_cores = 3;
  t.num_buses = 1;
  for (std::int64_t time : {5, 7, 11}) {
    BusAccessCost c;
    c.time = time;
    t.cells.push_back({c});
  }
  EXPECT_EQ(schedule_lower_bound(t), 23);
}

TEST(ScheduleMemoHashing, FnvKeyedMapMatchesOrderedMapSemantics) {
  // The memo moved from std::map to an FNV-hashed unordered_map; a random
  // find/emplace workload (duplicate-heavy, near-identical keys) must see
  // identical semantics against an ordered-map shadow.
  Rng rng(0x5EED5EEDULL);
  ScheduleMemo memo;
  std::map<std::vector<int>, std::int64_t> shadow;
  for (int step = 0; step < 4000; ++step) {
    std::vector<int> key;
    const int n = static_cast<int>(rng.next_range(1, 6));
    for (int i = 0; i < n; ++i)
      key.push_back(static_cast<int>(rng.next_range(1, 5)));
    const auto it = memo.results.find(key);
    const auto sit = shadow.find(key);
    ASSERT_EQ(it == memo.results.end(), sit == shadow.end()) << step;
    if (it != memo.results.end()) {
      EXPECT_EQ(it->second.test_time, sit->second) << step;
    } else {
      OptimizationResult r;
      r.test_time = step;
      memo.results.emplace(key, r);
      shadow.emplace(key, step);
    }
  }
  EXPECT_EQ(memo.results.size(), shadow.size());
  EXPECT_GT(shadow.size(), 100u);                 // real collisions of keys
  EXPECT_LT(shadow.size(), 4000u);                // plenty of duplicate hits
  for (const auto& [key, value] : shadow) {
    const auto it = memo.results.find(key);
    ASSERT_NE(it, memo.results.end());
    EXPECT_EQ(it->second.test_time, value);
  }
}

// Warm-started greedy construction (evaluate_warm): the anchor-patching
// fast path for proposals touching at most two buses — and the rebuild
// fallback for splits/merges/jumps — must be bit-identical to the cold
// evaluation, over a random SA-like proposal walk. A private evaluator is
// compared against SocOptimizer::evaluate so the memo cannot mask a wrong
// warm schedule.
TEST(IncrementalSearch, WarmStartEvaluationMatchesCold) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;

  DeltaEvaluator ev(opt, o);
  Rng rng(0xAC1D);
  std::vector<int> widths = {4, 4, 4, 4};
  std::uint64_t warm_before = 0;
  for (int step = 0; step < 40; ++step) {
    const int move = static_cast<int>(rng.next_range(0, 9));
    if (move < 6 && widths.size() >= 2) {
      // Wire move: one bus grows, another shrinks (<= 2 buses change).
      const auto from = rng.next_range(0, widths.size() - 1);
      const auto to = rng.next_range(0, widths.size() - 1);
      if (widths[from] > 1 && widths[to] < 16 && from != to) {
        --widths[from];
        ++widths[to];
      }
    } else if (move < 8 && widths.size() >= 2) {
      // Merge: bus count changes, forcing the anchor rebuild path.
      const auto a = rng.next_range(0, widths.size() - 1);
      auto b = rng.next_range(0, widths.size() - 1);
      if (a != b && widths[a] + widths[b] <= 16) {
        widths[a] += widths[b];
        widths.erase(widths.begin() + static_cast<std::ptrdiff_t>(b));
      }
    } else {
      // Split the widest bus.
      const auto w =
          std::max_element(widths.begin(), widths.end()) - widths.begin();
      if (widths[w] >= 2) {
        const int half = widths[w] / 2;
        widths[w] -= half;
        widths.push_back(half);
      }
    }
    TamArchitecture arch;
    arch.widths = widths;
    ev.prepare({arch});
    const OptimizationResult warm = ev.evaluate_warm(arch);
    const OptimizationResult cold = opt.evaluate(arch, o);
    expect_identical(warm, cold, "step " + std::to_string(step));
    warm_before = ev.counters().warm_schedule_starts;
  }
  // The walk is dominated by wire moves, so the fast path must have fired.
  EXPECT_GT(warm_before, 0u);
}

TEST(CostTableOverload, MatchesCostFnOverload) {
  const CostFn cost = [](int core, int bus) {
    BusAccessCost c;
    c.time = 10 + 7 * core + 3 * bus + ((core * bus) % 5);
    c.volume_bits = c.time * 2;
    c.choice.test_time = c.time;
    return c;
  };
  const std::vector<std::int64_t> ref = {40, 33, 26, 19};
  const Schedule via_fn = greedy_schedule(4, 3, cost, ref);
  const Schedule via_table =
      greedy_schedule(build_cost_table(4, 3, cost), ref);
  ASSERT_EQ(via_fn.entries.size(), via_table.entries.size());
  for (std::size_t i = 0; i < via_fn.entries.size(); ++i) {
    EXPECT_EQ(via_fn.entries[i].core, via_table.entries[i].core);
    EXPECT_EQ(via_fn.entries[i].bus, via_table.entries[i].bus);
    EXPECT_EQ(via_fn.entries[i].start, via_table.entries[i].start);
    EXPECT_EQ(via_fn.entries[i].end, via_table.entries[i].end);
  }
  EXPECT_EQ(via_fn.bus_finish, via_table.bus_finish);
  EXPECT_EQ(via_fn.total_volume_bits, via_table.total_volume_bits);
}

}  // namespace
}  // namespace soctest
