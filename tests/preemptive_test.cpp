// Preemptive power-constrained scheduling.
#include <gtest/gtest.h>

#include "sched/preemptive_scheduler.hpp"

namespace soctest {
namespace {

CostFn flat_cost(const std::vector<std::int64_t>& t) {
  return [t](int core, int) {
    BusAccessCost c;
    c.time = t[static_cast<std::size_t>(core)];
    c.volume_bits = c.time;
    c.choice.test_time = c.time;
    return c;
  };
}

PowerFn flat_power(const std::vector<double>& p) {
  return [p](int core, int) { return p[static_cast<std::size_t>(core)]; };
}

double segments_peak_power(const SegmentedSchedule& s, const PowerFn& power) {
  double peak = 0.0;
  for (const ScheduleEntry& e : s.segments) {
    double at = 0.0;
    for (const ScheduleEntry& o : s.segments)
      if (o.start <= e.start && e.start < o.end) at += power(o.core, o.bus);
    peak = std::max(peak, at);
  }
  return peak;
}

TEST(PreemptiveScheduler, UnconstrainedMatchesListScheduling) {
  const std::vector<std::int64_t> t = {50, 40, 30, 20};
  const std::vector<double> p = {1, 1, 1, 1};
  PowerScheduleOptions o;
  o.power_budget = 100.0;
  const SegmentedSchedule s =
      preemptive_power_schedule(4, 2, flat_cost(t), flat_power(p), t, o);
  s.validate(4, t);
  // Two buses, ample power: 50+20 / 40+30 -> makespan 70.
  EXPECT_EQ(s.makespan(), 70);
}

TEST(PreemptiveScheduler, RespectsBudgetAndCompletes) {
  const std::vector<std::int64_t> t = {80, 70, 60, 50, 40};
  const std::vector<double> p = {5, 4, 3, 2, 2};
  PowerScheduleOptions o;
  o.power_budget = 7.5;
  const SegmentedSchedule s =
      preemptive_power_schedule(5, 3, flat_cost(t), flat_power(p), t, o);
  s.validate(5, t);
  EXPECT_LE(segments_peak_power(s, flat_power(p)), 7.5);
}

TEST(PreemptiveScheduler, PreemptionBeatsNonPreemptiveOnCraftedInstance) {
  // Two buses, budget 3. Core 0: long, power 2. Core 1: long, power 2.
  // Core 2: short, power 3 (needs the budget alone).
  // Non-preemptive: cores 0 and 1 run together (power 4 > 3? no: 2+2=4 > 3
  // so they serialize anyway)... Budget 3 admits only one of {0,1} at a
  // time, and core 2 needs everything. Preemption cannot be worse; check
  // it interleaves correctly and matches the serial lower bound.
  const std::vector<std::int64_t> t = {60, 60, 20};
  const std::vector<double> p = {2, 2, 3};
  PowerScheduleOptions o;
  o.power_budget = 3.0;

  const SegmentedSchedule pre =
      preemptive_power_schedule(3, 2, flat_cost(t), flat_power(p), t, o);
  pre.validate(3, t);
  EXPECT_LE(segments_peak_power(pre, flat_power(p)), 3.0);
  // Everything is mutually exclusive: serial bound 140.
  EXPECT_EQ(pre.makespan(), 140);

  const Schedule nonpre =
      power_schedule(3, 2, flat_cost(t), flat_power(p), t, o);
  nonpre.validate(3, true);
  EXPECT_GE(nonpre.makespan(), pre.makespan());
}

TEST(PreemptiveScheduler, SplitsWhenPowerFrees) {
  // Budget 4; cores: A(time 100, power 3), B(time 100, power 3),
  // C(time 10, power 1). C fits beside either; A and B exclude each other.
  // Preemptive: A runs with C; when C ends, A continues alone; B waits for
  // A -> makespan 200. The point: C overlapped, costing nothing.
  const std::vector<std::int64_t> t = {100, 100, 10};
  const std::vector<double> p = {3, 3, 1};
  PowerScheduleOptions o;
  o.power_budget = 4.0;
  const SegmentedSchedule s =
      preemptive_power_schedule(3, 3, flat_cost(t), flat_power(p), t, o);
  s.validate(3, t);
  EXPECT_EQ(s.makespan(), 200);
  EXPECT_LE(segments_peak_power(s, flat_power(p)), 4.0);
}

TEST(PreemptiveScheduler, RejectsInfeasibleAndBadArgs) {
  PowerScheduleOptions o;
  o.power_budget = 1.0;
  EXPECT_THROW(preemptive_power_schedule(1, 1, flat_cost({5}),
                                         flat_power({2.0}), {5}, o),
               std::runtime_error);
  o.power_budget = 0.0;
  EXPECT_THROW(preemptive_power_schedule(1, 1, flat_cost({5}),
                                         flat_power({0.5}), {5}, o),
               std::invalid_argument);
}

TEST(SegmentedSchedule, ValidateCatchesCorruption) {
  const std::vector<std::int64_t> t = {30, 20};
  const std::vector<double> p = {1, 1};
  PowerScheduleOptions o;
  o.power_budget = 10.0;
  SegmentedSchedule s =
      preemptive_power_schedule(2, 2, flat_cost(t), flat_power(p), t, o);
  s.validate(2, t);

  SegmentedSchedule wrong_total = s;
  wrong_total.segments[0].end -= 1;
  EXPECT_THROW(wrong_total.validate(2, t), std::logic_error);

  SegmentedSchedule moved_bus = s;
  moved_bus.segments.push_back(moved_bus.segments[0]);
  EXPECT_THROW(moved_bus.validate(2, t), std::logic_error);
}

}  // namespace
}  // namespace soctest
