// Scale differentials for the backend refactor (CTest label: scale —
// Release CI only): on the 120-core synthetic SOC the refactored fixed-bus
// path must still produce the pre-refactor golden artifact byte for byte,
// and the rect backend's trimmed big-SOC climb must stay bit-identical
// across runtime lane counts.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "io/design_loader.hpp"
#include "opt/rect_backend.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/json.hpp"
#include "runtime/thread_pool.hpp"

#ifndef SOCTEST_GOLDEN_DIR
#error "backend_scale_test needs SOCTEST_GOLDEN_DIR"
#endif

namespace soctest {
namespace {

TEST(BackendScale, FixedBusMatchesPreRefactorGoldenSynth120) {
  const std::string path =
      std::string(SOCTEST_GOLDEN_DIR) + "/synth_120_w32.json";
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.is_open()) << "missing golden " << path;
  std::ostringstream golden;
  golden << f.rdbuf();

  const SocSpec soc = load_design("synth:120");
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 32;

  for (int jobs : {1, 4}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    runtime::ThreadPool pool(jobs);
    runtime::PoolScope scope(&pool);
    OptimizationResult stable = opt.optimize(o);
    stable.cpu_seconds = 0.0;
    EXPECT_EQ(compact_json(result_to_json(stable, soc)) + "\n", golden.str());
  }
}

TEST(BackendScale, RectClimbIsBitIdenticalAcrossJobsOnSynth120) {
  const SocSpec soc = load_design("synth:120");
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 32;
  o.backend = BackendKind::Rect;
  ASSERT_GT(soc.num_cores(), RectBackend::kBigSocCores)
      << "test must exercise the trimmed big-SOC search path";

  runtime::ThreadPool pool1(1), pool4(4);
  OptimizationResult r1, r4;
  {
    runtime::PoolScope scope(&pool1);
    r1 = optimize_rect(opt, o);
  }
  {
    runtime::PoolScope scope(&pool4);
    r4 = optimize_rect(opt, o);
  }
  EXPECT_EQ(r1.backend, BackendKind::Rect);
  EXPECT_EQ(r1.test_time, r4.test_time);
  EXPECT_EQ(r1.data_volume_bits, r4.data_volume_bits);
  ASSERT_EQ(r1.schedule.entries.size(), r4.schedule.entries.size());
  for (std::size_t i = 0; i < r1.schedule.entries.size(); ++i) {
    EXPECT_EQ(r1.schedule.entries[i].core, r4.schedule.entries[i].core) << i;
    EXPECT_EQ(r1.schedule.entries[i].bus, r4.schedule.entries[i].bus) << i;
    EXPECT_EQ(r1.schedule.entries[i].start, r4.schedule.entries[i].start)
        << i;
    EXPECT_EQ(r1.schedule.entries[i].end, r4.schedule.entries[i].end) << i;
  }
  // A rect schedule is a valid gap-allowed schedule over W one-wire buses.
  ASSERT_NO_THROW(r1.schedule.validate(soc.num_cores(), /*allow_gaps=*/true));
}

}  // namespace
}  // namespace soctest
