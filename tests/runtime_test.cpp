// src/runtime: work-stealing pool semantics, deterministic parallel loops,
// cooperative cancellation, and the subsystem's headline contract — the
// same exploration is bit-identical no matter how many lanes ran it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "explore/core_explorer.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "socgen/d695.hpp"

namespace soctest {
namespace {

using runtime::CancelToken;
using runtime::CancelledError;
using runtime::ParallelOptions;
using runtime::PoolScope;
using runtime::ThreadPool;

TEST(ThreadPool, AsyncReturnsValueAndPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.async([] { return 6 * 7; }).get(), 42);
  auto fut = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  futs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i)
    futs.push_back(pool.async([&ran] { ran.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), kTasks);
  const runtime::PoolStats s = pool.stats();
  EXPECT_EQ(s.submitted, kTasks);
  EXPECT_EQ(s.tasks_run, kTasks);
  EXPECT_EQ(s.workers, 4);
  EXPECT_LE(s.steals, s.tasks_run);
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1);
  const std::thread::id submitter = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.async([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, submitter);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  ParallelOptions opts;
  opts.pool = &pool;
  for (std::int64_t n : {0, 1, 7, 100, 1000}) {
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    runtime::parallel_for(
        0, n, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; },
        opts);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), std::int64_t{0}), n);
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, RespectsBeginOffsetAndGrain) {
  ThreadPool pool(3);
  ParallelOptions opts;
  opts.pool = &pool;
  opts.grain = 5;
  std::vector<std::int64_t> out(50, -1);
  runtime::parallel_for(
      10, 60, [&](std::int64_t i) { out[static_cast<std::size_t>(i - 10)] = i; },
      opts);
  for (std::int64_t i = 0; i < 50; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i + 10);
}

TEST(ParallelFor, PropagatesFirstBodyException) {
  ThreadPool pool(4);
  ParallelOptions opts;
  opts.pool = &pool;
  EXPECT_THROW(runtime::parallel_for(
                   0, 100,
                   [](std::int64_t i) {
                     if (i == 37) throw std::invalid_argument("i=37");
                   },
                   opts),
               std::invalid_argument);
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  ThreadPool pool(3);
  ParallelOptions opts;
  opts.pool = &pool;
  std::vector<std::int64_t> sums(8, 0);
  runtime::parallel_for(
      0, 8,
      [&](std::int64_t outer) {
        // Inner loop runs on the same pool (worker threads are scoped to
        // their pool); the claiming caller guarantees progress.
        std::vector<std::int64_t> inner(100, 0);
        runtime::parallel_for(0, 100, [&](std::int64_t i) {
          inner[static_cast<std::size_t>(i)] = i * (outer + 1);
        });
        sums[static_cast<std::size_t>(outer)] =
            std::accumulate(inner.begin(), inner.end(), std::int64_t{0});
      },
      opts);
  for (std::int64_t outer = 0; outer < 8; ++outer)
    EXPECT_EQ(sums[static_cast<std::size_t>(outer)], 4950 * (outer + 1));
}

TEST(ParallelMap, PreservesInputOrder) {
  ThreadPool pool(4);
  ParallelOptions opts;
  opts.pool = &pool;
  std::vector<int> in(257);
  std::iota(in.begin(), in.end(), 0);
  const std::vector<int> out =
      runtime::parallel_map(in, [](int x) { return 3 * x + 1; }, opts);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], 3 * in[i] + 1);
}

TEST(Cancellation, ExplicitCancelAbandonsLoop) {
  ThreadPool pool(2);
  CancelToken token;
  ParallelOptions opts;
  opts.pool = &pool;
  opts.grain = 1;
  std::atomic<int> ran{0};
  EXPECT_THROW(runtime::parallel_for(
                   0, 10'000,
                   [&](std::int64_t) {
                     if (ran.fetch_add(1) == 5) token.cancel();
                   },
                   [&] {
                     ParallelOptions o = opts;
                     o.cancel = &token;
                     return o;
                   }()),
               CancelledError);
  EXPECT_LT(ran.load(), 10'000);
}

TEST(Cancellation, DeadlineFires) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check(), CancelledError);
}

TEST(Cancellation, CompletedLoopIgnoresLateCancel) {
  ThreadPool pool(2);
  CancelToken token;
  ParallelOptions opts;
  opts.pool = &pool;
  opts.cancel = &token;
  std::atomic<int> ran{0};
  runtime::parallel_for(0, 50, [&](std::int64_t) { ran.fetch_add(1); }, opts);
  EXPECT_EQ(ran.load(), 50);
  token.cancel();  // after completion: no effect on the finished loop
}

// The determinism contract on the real workload: exploring d695 with one
// lane and with several lanes must produce member-identical CoreTables.
// The cache is disabled so both runs actually execute.
TEST(Determinism, ExploreSocBitIdenticalAcrossLaneCounts) {
  const SocSpec soc = make_d695();
  ExploreOptions opts;
  opts.max_width = 16;
  opts.max_chains = 64;
  opts.use_cache = false;

  ThreadPool serial(1), wide(4);
  std::vector<CoreTable> t1, t4;
  {
    PoolScope scope(&serial);
    t1 = explore_soc(soc, opts);
  }
  {
    PoolScope scope(&wide);
    t4 = explore_soc(soc, opts);
  }
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i)
    EXPECT_EQ(t1[i], t4[i]) << "core " << soc.cores[i].spec.name;
}

TEST(Stats, PhaseTimersAccumulate) {
  runtime::reset_phase_times();
  {
    runtime::PhaseTimer t("unit-test-phase");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  runtime::add_phase_seconds("unit-test-phase", 0.5);
  const runtime::RuntimeStats s = runtime::collect_stats();
  bool found = false;
  for (const auto& p : s.phases) {
    if (p.phase == "unit-test-phase") {
      found = true;
      EXPECT_GT(p.seconds, 0.5);
      EXPECT_EQ(p.count, 2u);
    }
  }
  EXPECT_TRUE(found);
  const std::string json = runtime::stats_to_json(s);
  EXPECT_NE(json.find("\"unit-test-phase\""), std::string::npos);
  EXPECT_NE(json.find("\"table_cache\""), std::string::npos);
}

TEST(Stats, SearchCountersAccumulateResetAndSerialize) {
  runtime::reset_search_counters();
  runtime::SearchStats s;
  s.candidates_generated = 10;
  s.candidates_pruned = 4;
  s.candidates_scheduled = 6;
  s.schedule_reuse_hits = 5;
  s.column_reuse_hits = 20;
  s.columns_computed = 3;
  runtime::add_search_counters(s);
  runtime::add_search_counters(s);

  const runtime::SearchStats got = runtime::collect_stats().search;
  EXPECT_EQ(got.candidates_generated, 20u);
  EXPECT_EQ(got.candidates_pruned, 8u);
  EXPECT_EQ(got.candidates_scheduled, 12u);
  EXPECT_EQ(got.schedule_reuse_hits, 10u);
  EXPECT_EQ(got.column_reuse_hits, 40u);
  EXPECT_EQ(got.columns_computed, 6u);

  const std::string json = runtime::stats_to_json(runtime::collect_stats());
  EXPECT_NE(json.find("\"candidates_pruned\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"schedule_reuse_hits\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"column_reuse_hits\": 40"), std::string::npos);

  runtime::reset_search_counters();
  EXPECT_EQ(runtime::collect_stats().search.candidates_generated, 0u);
}

class JobsEnvGuard {
 public:
  JobsEnvGuard() {
    if (const char* v = std::getenv("SOCTEST_JOBS")) saved_ = v;
  }
  ~JobsEnvGuard() {
    if (saved_.empty())
      unsetenv("SOCTEST_JOBS");
    else
      setenv("SOCTEST_JOBS", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
};

TEST(DefaultConcurrency, AcceptsStrictPositiveIntegers) {
  JobsEnvGuard guard;
  setenv("SOCTEST_JOBS", "3", 1);
  EXPECT_EQ(runtime::default_concurrency(), 3);
  setenv("SOCTEST_JOBS", "1", 1);
  EXPECT_EQ(runtime::default_concurrency(), 1);
}

TEST(DefaultConcurrency, RejectsMalformedEnvValues) {
  JobsEnvGuard guard;
  unsetenv("SOCTEST_JOBS");
  const int fallback = runtime::default_concurrency();
  EXPECT_GE(fallback, 1);
  // The CLI promises strict --jobs parsing; the env path must match it:
  // none of these may be atoi'd into a number or silently become 0.
  for (const char* junk : {"abc", "4x", "", " 4", "4 ", "-2", "0", "1.5",
                           "99999999999999999999"}) {
    setenv("SOCTEST_JOBS", junk, 1);
    EXPECT_EQ(runtime::default_concurrency(), fallback)
        << "SOCTEST_JOBS='" << junk << "'";
  }
}

}  // namespace
}  // namespace soctest
