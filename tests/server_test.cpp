// src/server — the optimization-as-a-service daemon engine. Exercises the
// transport-independent ServerCore exactly the way the socket and --batch
// transports do (handle_line + emit), pinning:
//   - strict request validation (unknown fields, conflicting inputs);
//   - warm-vs-cold semantics: an identical resubmit is served from the
//     shared session with a bit-identical report and nonzero cross-request
//     cache hits; a one-bit-different SOC gets a cold session;
//   - concurrent requests produce reports bit-identical to one-shot
//     library runs;
//   - cancellation and deadlines surface as distinct protocol errors and
//     never poison the shared SessionCache for later requests;
//   - checkpoint write failures yield the distinct checkpoint_io error
//     AFTER the intact in-memory result;
//   - --batch directory draining with resume-by-skipping.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "io/json_value.hpp"
#include "io/soc_text.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/json.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "test_util.hpp"

namespace soctest::server {
namespace {

SocSpec mini_soc(int chain_tweak = 0) {
  SocSpec soc;
  soc.name = "server-mini";
  soc.cores.push_back(
      testutil::small_core("a", 8, {14 + chain_tweak, 12, 10}, 10));
  soc.cores.push_back(testutil::small_core("b", 10, {18, 16, 12, 8}, 12));
  soc.validate();
  return soc;
}

std::string soc_text_of(const SocSpec& soc) {
  std::ostringstream os;
  write_soc_text(os, soc);
  return os.str();
}

std::string optimize_request(const std::string& id, const SocSpec& soc,
                             int width, const std::string& extra = "") {
  return "{\"op\": \"optimize\", \"id\": \"" + id + "\", \"soc_text\": \"" +
         json_escape(soc_text_of(soc)) +
         "\", \"width\": " + std::to_string(width) + extra + "}";
}

/// What a one-shot CLI run reports for (soc, width) — the daemon's
/// bit-identity reference.
std::string one_shot_report(const SocSpec& soc, int width) {
  ExploreOptions eopts;
  eopts.max_width = std::max(width, 32);
  eopts.max_chains = 255;
  const SocOptimizer opt(soc, eopts);
  OptimizerOptions o;
  o.width = width;
  OptimizationResult r = opt.optimize(o);
  r.cpu_seconds = 0.0;
  return compact_json(result_to_json(r, soc));
}

class Collector {
 public:
  EmitFn emit() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(m_);
      lines_.push_back(line);
    };
  }
  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(m_);
    return lines_;
  }
  /// Last response with the given event (and id, when non-empty), parsed.
  JsonValue event(const std::string& event, const std::string& id = "") const {
    JsonValue found;
    for (const std::string& line : lines()) {
      const JsonValue v = parse_json(line);
      const JsonValue* ev = v.find("event");
      const JsonValue* idv = v.find("id");
      if (ev && ev->string_value == event &&
          (id.empty() || (idv && idv->string_value == id)))
        found = v;
    }
    return found;
  }
  /// The raw "report" object of a result line (bit-comparable substring).
  std::string report_of(const std::string& id) const {
    for (const std::string& line : lines()) {
      if (line.find("\"event\": \"result\", \"id\": \"" + id + "\"") ==
          std::string::npos)
        continue;
      const std::size_t pos = line.find("\"report\": ");
      EXPECT_NE(pos, std::string::npos);
      return line.substr(pos + 10, line.size() - (pos + 10) - 1);
    }
    ADD_FAILURE() << "no result line for id " << id;
    return "";
  }

 private:
  mutable std::mutex m_;
  std::vector<std::string> lines_;
};

void run(ServerCore& core, const std::string& line, Collector& col) {
  std::shared_future<void> fut = core.handle_line(line, col.emit());
  if (fut.valid()) fut.get();
}

TEST(ServerProtocol, StrictRequestValidation) {
  const auto code_of = [](const std::string& line) -> std::string {
    try {
      parse_request(line);
    } catch (const ProtocolError& e) {
      return e.code();
    }
    return "";
  };
  EXPECT_EQ(code_of("not json"), "bad_request");
  EXPECT_EQ(code_of("{\"op\": \"optimize\"}"), "bad_request");  // no id
  EXPECT_EQ(code_of("{\"op\": \"teleport\", \"id\": \"x\"}"), "bad_request");
  EXPECT_EQ(code_of("{\"op\": \"optimize\", \"id\": \"x\", \"design\": "
                    "\"d695\", \"widht\": 16}"),
            "bad_request");  // typo'd field, never silently defaulted
  EXPECT_EQ(code_of("{\"op\": \"optimize\", \"id\": \"x\"}"),
            "bad_request");  // neither design nor soc_text
  EXPECT_EQ(code_of("{\"op\": \"optimize\", \"id\": \"x\", \"design\": "
                    "\"d695\", \"soc_text\": \"soc s\"}"),
            "bad_request");  // both
  EXPECT_EQ(code_of("{\"op\": \"optimize\", \"id\": \"x\", \"design\": "
                    "\"d695\", \"anneal\": 10, \"portfolio\": 2}"),
            "bad_request");
  EXPECT_EQ(code_of("{\"op\": \"optimize\", \"id\": \"x\", \"design\": "
                    "\"d695\", \"checkpoint\": \"f\"}"),
            "bad_request");  // checkpoint without portfolio
  EXPECT_EQ(code_of("{\"op\": \"optimize\", \"id\": \"x\", \"design\": "
                    "\"d695\", \"width\": 0}"),
            "bad_request");
  EXPECT_EQ(code_of("{\"op\": \"optimize\", \"id\": \"x\", \"design\": "
                    "\"d695\", \"width\": \"16\"}"),
            "bad_request");  // wrong type
  EXPECT_EQ(code_of("{\"op\": \"cancel\"}"), "bad_request");
  EXPECT_EQ(code_of("{\"op\": \"ping\", \"design\": \"d695\"}"),
            "bad_request");  // housekeeping ops take no extra fields
  // Well-formed requests parse.
  EXPECT_EQ(parse_request("{\"op\": \"ping\"}").op, Request::Op::Ping);
  EXPECT_EQ(parse_request("{\"op\": \"optimize\", \"id\": \"r\", "
                          "\"design\": \"d695\", \"width\": 16}")
                .optimize.width,
            16);
}

TEST(ServerCoreTest, HousekeepingOps) {
  ServerCore core;
  Collector col;
  run(core, "{\"op\": \"ping\", \"id\": \"p\"}", col);
  EXPECT_TRUE(col.event("pong", "p").is_object());
  run(core, "{\"op\": \"stats\"}", col);
  const JsonValue stats = col.event("stats");
  ASSERT_TRUE(stats.is_object());
  EXPECT_EQ(stats.find("active")->as_int64(), 0);
  run(core, "{\"op\": \"cancel\", \"id\": \"ghost\"}", col);
  EXPECT_EQ(col.event("error", "ghost").find("code")->as_string(),
            "bad_request");
  run(core, "not json at all", col);
  EXPECT_EQ(col.event("error").find("code")->as_string(), "bad_request");
}

// The history op replays recent result lines from a bounded ring: oldest
// first, byte-for-byte as emitted, oldest dropped past the bound, and
// history = 0 disables recording entirely.
TEST(ServerCoreTest, HistoryReplaysBoundedRecentResults) {
  ServerOptions so;
  so.history = 2;
  ServerCore core(so);
  Collector col;
  const SocSpec soc = mini_soc();
  run(core, optimize_request("h1", soc, 8), col);
  run(core, optimize_request("h2", soc, 10), col);
  run(core, optimize_request("h3", soc, 12), col);

  Collector replay;
  run(core, "{\"op\": \"history\", \"id\": \"q\"}", replay);
  const std::vector<std::string> lines = replay.lines();
  ASSERT_EQ(lines.size(), 3u);  // two entries + history_end
  // h1 fell off the ring; h2 then h3 replay verbatim, oldest first.
  EXPECT_NE(lines[0].find("\"id\": \"h2\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\": \"h3\""), std::string::npos);
  EXPECT_EQ(replay.event("history_end", "q").find("count")->as_int64(), 2);
  const std::vector<std::string> ring = core.history_snapshot();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_NE(lines[0].find(ring[0]), std::string::npos);
  EXPECT_NE(lines[1].find(ring[1]), std::string::npos);

  // A failed request leaves no history entry.
  run(core, "{\"op\": \"cancel\", \"id\": \"nope\"}", col);
  EXPECT_EQ(core.history_snapshot().size(), 2u);

  ServerOptions off;
  off.history = 0;
  ServerCore muted(off);
  Collector mcol;
  run(muted, optimize_request("m1", soc, 8), mcol);
  Collector mreplay;
  run(muted, "{\"op\": \"history\", \"id\": \"mq\"}", mreplay);
  EXPECT_EQ(mreplay.lines().size(), 1u);  // just history_end
  EXPECT_EQ(mreplay.event("history_end", "mq").find("count")->as_int64(), 0);
}

TEST(ServerCoreTest, WarmResubmitIsBitIdenticalWithCacheHits) {
  ServerCore core;
  Collector col;
  const SocSpec soc = mini_soc();

  run(core, optimize_request("cold", soc, 8), col);
  const JsonValue cold = col.event("result", "cold");
  ASSERT_TRUE(cold.is_object());
  EXPECT_FALSE(cold.find("warm")->as_bool());

  run(core, optimize_request("warm", soc, 8), col);
  const JsonValue warm = col.event("result", "warm");
  ASSERT_TRUE(warm.is_object());
  EXPECT_TRUE(warm.find("warm")->as_bool());

  // Bit-identical report objects, byte for byte.
  EXPECT_EQ(col.report_of("cold"), col.report_of("warm"));
  EXPECT_EQ(col.report_of("cold"), one_shot_report(soc, 8));

  // The resubmit was served from shared warm state: same session key,
  // nonzero cross-request memo hits, a SessionCache hit on record.
  const JsonValue* cs = cold.find("session");
  const JsonValue* ws = warm.find("session");
  EXPECT_EQ(cs->find("key")->as_string(), ws->find("key")->as_string());
  EXPECT_GT(ws->find("memo_hits")->as_int64(), 0);
  EXPECT_EQ(ws->find("memo_misses")->as_int64(), 0);
  EXPECT_GE(ws->find("sessions")->find("hits")->as_int64(), 1);
}

TEST(ServerCoreTest, WidthSweepSharesOneSession) {
  ServerCore core;
  Collector col;
  const SocSpec soc = mini_soc();
  run(core, optimize_request("w8", soc, 8), col);
  run(core, optimize_request("w12", soc, 12), col);
  const JsonValue a = col.event("result", "w8");
  const JsonValue b = col.event("result", "w12");
  // Different budget, same session: the width is deliberately not part of
  // the fingerprint, so a sweep reuses warm columns/memo entries.
  EXPECT_TRUE(b.find("warm")->as_bool());
  EXPECT_EQ(a.find("session")->find("key")->as_string(),
            b.find("session")->find("key")->as_string());
  EXPECT_EQ(col.report_of("w12"), one_shot_report(soc, 12));
}

TEST(ServerCoreTest, OneBitDifferentSocGetsAColdSession) {
  ServerCore core;
  Collector col;
  run(core, optimize_request("base", mini_soc(0), 8), col);
  run(core, optimize_request("tweak", mini_soc(1), 8), col);
  const JsonValue a = col.event("result", "base");
  const JsonValue b = col.event("result", "tweak");
  EXPECT_FALSE(b.find("warm")->as_bool());
  EXPECT_NE(a.find("session")->find("key")->as_string(),
            b.find("session")->find("key")->as_string());
}

TEST(ServerCoreTest, ConcurrentRequestsMatchOneShotRuns) {
  ServerCore core;
  Collector col;
  const SocSpec soc = mini_soc();
  // 8 concurrent requests over a width sweep: all interleave on the shared
  // pool and the shared session; every report must equal the one-shot run.
  const std::vector<int> widths = {6, 7, 8, 9, 10, 11, 12, 13};
  std::vector<std::shared_future<void>> pending;
  for (int w : widths)
    pending.push_back(core.handle_line(
        optimize_request("cw" + std::to_string(w), soc, w), col.emit()));
  for (auto& fut : pending) {
    ASSERT_TRUE(fut.valid());
    fut.get();
  }
  for (int w : widths) {
    SCOPED_TRACE(w);
    EXPECT_EQ(col.report_of("cw" + std::to_string(w)), one_shot_report(soc, w));
  }
}

TEST(ServerCoreTest, ExplicitCancelDoesNotPoisonTheSharedSession) {
  ServerCore core;
  Collector col;
  const SocSpec soc = mini_soc();
  // An effectively unbounded portfolio: only the cancel ends it.
  std::shared_future<void> fut = core.handle_line(
      optimize_request("victim", soc, 8,
                       ", \"portfolio\": 2, \"sweeps\": 1000000000, "
                       "\"sweep_proposals\": 5"),
      col.emit());
  ASSERT_TRUE(fut.valid());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Collector ack;
  core.handle_line("{\"op\": \"cancel\", \"id\": \"victim\"}", ack.emit());
  fut.get();
  EXPECT_EQ(col.event("error", "victim").find("code")->as_string(),
            "cancelled");

  // The session the cancelled portfolio was filling serves later requests
  // with exact results (memoized entries are exact by construction).
  run(core, optimize_request("after", soc, 8), col);
  EXPECT_TRUE(col.event("result", "after").find("warm")->as_bool());
  EXPECT_EQ(col.report_of("after"), one_shot_report(soc, 8));
}

TEST(ServerCoreTest, DeadlineMidExploreLeavesNoPartialSession) {
  ServerCore core;
  Collector col;
  // synth:6 explores long enough that a 1 ms deadline always fires during
  // the session build; the cancelled build must insert nothing.
  run(core,
      "{\"op\": \"optimize\", \"id\": \"dl\", \"design\": \"synth:6\", "
      "\"width\": 8, \"deadline_ms\": 1}",
      col);
  EXPECT_EQ(col.event("error", "dl").find("code")->as_string(), "deadline");
  EXPECT_EQ(core.session_cache().size(), 0u);

  // The same SOC afterwards builds cold and completes normally.
  run(core,
      "{\"op\": \"optimize\", \"id\": \"full\", \"design\": \"synth:6\", "
      "\"width\": 8}",
      col);
  const JsonValue full = col.event("result", "full");
  ASSERT_TRUE(full.is_object());
  EXPECT_FALSE(full.find("warm")->as_bool());
  EXPECT_EQ(core.session_cache().size(), 1u);
}

TEST(ServerCoreTest, DuplicateActiveIdIsRejected) {
  ServerCore core;
  Collector col;
  const SocSpec soc = mini_soc();
  std::shared_future<void> fut = core.handle_line(
      optimize_request("dup", soc, 8,
                       ", \"portfolio\": 2, \"sweeps\": 1000000000, "
                       "\"sweep_proposals\": 5"),
      col.emit());
  ASSERT_TRUE(fut.valid());
  Collector second;
  core.handle_line(optimize_request("dup", soc, 8), second.emit());
  EXPECT_EQ(second.event("error", "dup").find("code")->as_string(),
            "bad_request");
  Collector ack;
  core.handle_line("{\"op\": \"cancel\", \"id\": \"dup\"}", ack.emit());
  fut.get();
}

TEST(ServerCoreTest, CheckpointWriteFailureFollowsTheIntactResult) {
  ServerCore core;
  Collector col;
  const SocSpec soc = mini_soc();
  run(core,
      optimize_request("ck", soc, 8,
                       ", \"portfolio\": 2, \"sweeps\": 2, "
                       "\"sweep_proposals\": 5, \"progress\": true, "
                       "\"checkpoint\": "
                       "\"/nonexistent-soctest-dir/cp.bin\""),
      col);
  // The in-memory run is intact and delivered first ...
  const std::vector<std::string> lines = col.lines();
  const auto result_at = std::find_if(
      lines.begin(), lines.end(), [](const std::string& l) {
        return l.find("\"event\": \"result\", \"id\": \"ck\"") !=
               std::string::npos;
      });
  const auto error_at = std::find_if(
      lines.begin(), lines.end(), [](const std::string& l) {
        return l.find("\"checkpoint_io\"") != std::string::npos;
      });
  ASSERT_NE(result_at, lines.end());
  ASSERT_NE(error_at, lines.end());
  EXPECT_LT(result_at - lines.begin(), error_at - lines.begin());
  // ... and progress streamed sweep samples before that.
  const JsonValue prog = col.event("progress", "ck");
  ASSERT_TRUE(prog.is_object());
  EXPECT_EQ(prog.find("sweeps_total")->as_int64(), 2);
}

TEST(ServerCoreTest, ResumesPortfolioCheckpointAcrossDaemonRestarts) {
  namespace fs = std::filesystem;
  const std::string ck =
      (fs::path(::testing::TempDir()) / "soctest_server_ck.bin").string();
  fs::remove(ck);
  const SocSpec soc = mini_soc();
  const std::string base = ", \"portfolio\": 2, \"sweep_proposals\": 20";

  // Daemon #1 runs a partial budget and persists the walk state.
  {
    ServerCore core;
    Collector col;
    run(core,
        optimize_request("part", soc, 8,
                         base + ", \"sweeps\": 2, \"checkpoint\": \"" +
                             json_escape(ck) + "\""),
        col);
    ASSERT_TRUE(col.event("result", "part").is_object());
    ASSERT_TRUE(fs::exists(ck));
  }

  // Daemon #2 — a restart after a kill — resubmits with an extended
  // budget and resumes from the checkpoint instead of starting over.
  ServerCore restarted;
  Collector res;
  run(restarted,
      optimize_request("res", soc, 8,
                       base + ", \"sweeps\": 4, \"checkpoint\": \"" +
                           json_escape(ck) + "\""),
      res);

  // Reference: the uninterrupted 4-sweep run in a fresh daemon.
  ServerCore fresh;
  Collector full;
  run(fresh, optimize_request("full", soc, 8, base + ", \"sweeps\": 4"),
      full);

  // The resumed run lands on the same architecture and cost as the
  // uninterrupted one (proposal counters differ — only the extension
  // ran — so compare the deterministic outcome fields).
  const JsonValue a = parse_json(res.report_of("res"));
  const JsonValue b = parse_json(full.report_of("full"));
  EXPECT_EQ(a.find("test_time")->as_int64(), b.find("test_time")->as_int64());
  EXPECT_EQ(a.find("data_volume_bits")->as_int64(),
            b.find("data_volume_bits")->as_int64());

  // A corrupt checkpoint falls back to a fresh run instead of failing
  // the request.
  { std::ofstream(ck) << "not a checkpoint"; }
  ServerCore after_corrupt;
  Collector cor;
  run(after_corrupt,
      optimize_request("cor", soc, 8,
                       base + ", \"sweeps\": 4, \"checkpoint\": \"" +
                           json_escape(ck) + "\""),
      cor);
  const JsonValue c = parse_json(cor.report_of("cor"));
  EXPECT_EQ(c.find("test_time")->as_int64(), b.find("test_time")->as_int64());
  fs::remove(ck);
}

TEST(ServerCoreTest, ShutdownRejectsNewRequests) {
  ServerCore core;
  Collector col;
  run(core, "{\"op\": \"shutdown\"}", col);
  EXPECT_TRUE(core.shutdown_requested());
  run(core, optimize_request("late", mini_soc(), 8), col);
  EXPECT_EQ(col.event("error", "late").find("code")->as_string(),
            "bad_request");
}

TEST(ServerBatch, DrainsDirectoryAndResumesBySkipping) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "soctest_batch_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const SocSpec soc = mini_soc();
  {
    std::ofstream a(dir / "a.json");
    a << optimize_request("b1", soc, 8) << "\n"
      << optimize_request("b2", soc, 10) << "\n";
    std::ofstream b(dir / "b.json");
    b << "{\"op\": \"optimize\", \"id\": \"bad\", \"design\": "
         "\"no-such.soc\", \"width\": 8}\n";
  }

  ServerCore core;
  EXPECT_EQ(run_batch(dir.string(), core), 0);
  ASSERT_TRUE(fs::exists(dir / "a.out.jsonl"));
  ASSERT_TRUE(fs::exists(dir / "b.out.jsonl"));

  Collector col;  // reuse the line-matching helpers on the batch output
  std::ifstream out(dir / "a.out.jsonl");
  std::string line;
  auto emit = col.emit();
  while (std::getline(out, line)) emit(line);
  EXPECT_EQ(col.report_of("b1"), one_shot_report(soc, 8));
  EXPECT_EQ(col.report_of("b2"), one_shot_report(soc, 10));

  std::ifstream bad(dir / "b.out.jsonl");
  std::stringstream bad_body;
  bad_body << bad.rdbuf();
  EXPECT_NE(bad_body.str().find("\"bad_request\""), std::string::npos);

  // A second drain (killed-daemon restart) skips files whose output
  // already exists instead of recomputing or clobbering them.
  const auto mtime = fs::last_write_time(dir / "a.out.jsonl");
  ServerCore fresh;
  EXPECT_EQ(run_batch(dir.string(), fresh), 0);
  EXPECT_EQ(fs::last_write_time(dir / "a.out.jsonl"), mtime);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace soctest::server
