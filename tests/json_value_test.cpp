// io/json_value — the minimal JSON parser behind the server protocol.
#include <gtest/gtest.h>

#include "io/json_value.hpp"

namespace soctest {
namespace {

TEST(JsonValue, ParsesScalarsAndContainers) {
  const JsonValue v = parse_json(
      R"({"s": "hi", "n": 42, "f": -1.5e2, "b": true, "z": null,)"
      R"( "a": [1, 2, 3], "o": {"inner": false}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->as_string(), "hi");
  EXPECT_EQ(v.find("n")->as_int64(), 42);
  EXPECT_DOUBLE_EQ(v.find("f")->as_double(), -150.0);
  EXPECT_TRUE(v.find("b")->as_bool());
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_TRUE(v.find("a")->is_array());
  ASSERT_EQ(v.find("a")->items.size(), 3u);
  EXPECT_EQ(v.find("a")->items[2].as_int64(), 3);
  EXPECT_FALSE(v.find("o")->find("inner")->as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, PreservesMemberOrderAndLexemes) {
  const JsonValue v = parse_json(R"({"b": 1, "a": 2})");
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, "b");
  EXPECT_EQ(v.members[1].first, "a");
  // 64-bit integers survive exactly (no 2^53 double cliff).
  const JsonValue big = parse_json("9223372036854775807");
  EXPECT_EQ(big.as_int64(), 9223372036854775807LL);
  const JsonValue ubig = parse_json("18446744073709551615");
  EXPECT_EQ(ubig.as_uint64(), 18446744073709551615ULL);
}

TEST(JsonValue, DecodesStringEscapes) {
  const JsonValue v = parse_json(R"("line\nquote\"tab\tback\\uA")");
  EXPECT_EQ(v.as_string(), "line\nquote\"tab\tback\\uA");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_json(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(parse_json("[1 2]"), std::runtime_error);
  EXPECT_THROW(parse_json("truth"), std::runtime_error);
  EXPECT_THROW(parse_json("01"), std::runtime_error);
  EXPECT_THROW(parse_json("1."), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("\"raw\ncontrol\""), std::runtime_error);
  EXPECT_THROW(parse_json(R"("\ud83d alone")"), std::runtime_error);
  // Trailing garbage after a complete document is an error (NDJSON lines
  // must be exactly one object).
  EXPECT_THROW(parse_json("{} {}"), std::runtime_error);
  EXPECT_THROW(parse_json("1 2"), std::runtime_error);
}

TEST(JsonValue, StrictIntegerAccessors) {
  EXPECT_THROW(parse_json("3.5").as_int64(), std::runtime_error);
  EXPECT_THROW(parse_json("1e3").as_int64(), std::runtime_error);
  EXPECT_THROW(parse_json("-1").as_uint64(), std::runtime_error);
  EXPECT_THROW(parse_json("99999999999999999999").as_int64(),
               std::runtime_error);
  EXPECT_THROW(parse_json("\"7\"").as_int64(), std::runtime_error);
  EXPECT_EQ(parse_json("-7").as_int64(), -7);
}

}  // namespace
}  // namespace soctest
