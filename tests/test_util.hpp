// Shared builders for the test suite: small deterministic cores and SOCs.
#pragma once

#include <cstdint>
#include <string>

#include "dft/soc_spec.hpp"
#include "socgen/cube_synth.hpp"

namespace soctest::testutil {

/// A small fixed-scan core with synthetic cubes.
inline CoreUnderTest small_core(const std::string& name, int inputs,
                                std::vector<int> chains, int patterns,
                                double density = 0.15,
                                std::uint64_t seed = 1234) {
  CoreUnderTest c;
  c.spec.name = name;
  c.spec.num_inputs = inputs;
  c.spec.num_outputs = inputs / 2 + 1;
  c.spec.scan_chain_lengths = std::move(chains);
  c.spec.num_patterns = patterns;
  CubeSynthParams p;
  p.num_cells = c.spec.stimulus_bits_per_pattern();
  p.num_patterns = patterns;
  p.care_density = density;
  c.cubes = synthesize_cubes(p, seed);
  c.validate();
  return c;
}

/// A flexible-scan ("industrial-like") core, scaled down for fast tests.
inline CoreUnderTest flex_core(const std::string& name, std::int64_t cells,
                               int patterns, double density = 0.03,
                               std::uint64_t seed = 99) {
  CoreUnderTest c;
  c.spec.name = name;
  c.spec.num_inputs = 16;
  c.spec.num_outputs = 12;
  c.spec.flexible_scan = true;
  c.spec.flexible_scan_cells = cells;
  c.spec.num_patterns = patterns;
  CubeSynthParams p;
  p.num_cells = c.spec.stimulus_bits_per_pattern();
  p.num_patterns = patterns;
  p.care_density = density;
  c.cubes = synthesize_cubes(p, seed);
  c.validate();
  return c;
}

/// A scaled-down industrial-like core: many fixed scan chains with a
/// deterministic length wiggle, sparse skewed cubes — the structure behind
/// the paper's Figure 2/3 non-monotonicity.
inline CoreUnderTest fixed_industrial_like(const std::string& name,
                                           std::int64_t cells, int chains,
                                           int patterns,
                                           double density = 0.015,
                                           std::uint64_t seed = 0xC7) {
  CoreUnderTest c;
  c.spec.name = name;
  c.spec.num_inputs = 24;
  c.spec.num_outputs = 20;
  c.spec.num_patterns = patterns;
  const std::int64_t base = cells / chains;
  std::int64_t remaining = cells;
  for (int i = 0; i < chains - 1; ++i) {
    const std::int64_t len =
        std::max<std::int64_t>(1, base + ((i * 37) % 11) - 5);
    c.spec.scan_chain_lengths.push_back(static_cast<int>(len));
    remaining -= len;
  }
  c.spec.scan_chain_lengths.push_back(static_cast<int>(remaining));
  CubeSynthParams p;
  p.num_cells = c.spec.stimulus_bits_per_pattern();
  p.num_patterns = patterns;
  p.care_density = density;
  c.cubes = synthesize_cubes(p, seed);
  c.validate();
  return c;
}

/// A 4-core SOC mixing fixed and flexible cores.
inline SocSpec mixed_soc() {
  SocSpec soc;
  soc.name = "mixed";
  soc.cores.push_back(small_core("fix-a", 10, {30, 25, 20}, 20));
  soc.cores.push_back(small_core("fix-b", 24, {60, 55, 50, 45}, 35, 0.2, 7));
  soc.cores.push_back(flex_core("flex-a", 1500, 30));
  soc.cores.push_back(flex_core("flex-b", 900, 25, 0.05, 17));
  soc.validate();
  return soc;
}

}  // namespace soctest::testutil
