// ArchitectureBackend conformance (opt/backend): every backend — the
// fixed-bus partition search and the rectangle packer — must honour the
// same contract over its genome space, pinned here parameterized over
// (backend kind x SOC):
//   - starts() are non-empty and valid();
//   - evaluate() yields a schedule that validates against the result's
//     architecture (no bus/strip overlap), visits every core exactly once,
//     and never beats the backend's admissible lower_bound();
//   - neighbours() are valid, exclude the input, contain no duplicates,
//     and are reversible (the input is a neighbour of each neighbour) —
//     the property annealing walks rely on for proposal/undo symmetry;
//   - evaluate() is a deterministic pure function of the genome.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "opt/backend.hpp"
#include "opt/fixed_bus_backend.hpp"
#include "opt/rect_backend.hpp"
#include "opt/soc_optimizer.hpp"
#include "socgen/cube_synth.hpp"
#include "socgen/d695.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

SocSpec fuzzed_soc(std::uint64_t seed) {
  Rng rng(seed);
  SocSpec soc;
  soc.name = "fuzz-" + std::to_string(seed);
  const int cores = static_cast<int>(rng.next_range(3, 7));
  for (int i = 0; i < cores; ++i) {
    CoreUnderTest c;
    c.spec.name = "c" + std::to_string(i);
    c.spec.num_inputs = static_cast<int>(rng.next_range(1, 24));
    c.spec.num_outputs = static_cast<int>(rng.next_range(1, 24));
    const int chains = static_cast<int>(rng.next_range(1, 10));
    for (int j = 0; j < chains; ++j)
      c.spec.scan_chain_lengths.push_back(
          static_cast<int>(rng.next_range(1, 100)));
    c.spec.num_patterns = static_cast<int>(rng.next_range(4, 24));
    CubeSynthParams p;
    p.num_cells = c.spec.stimulus_bits_per_pattern();
    p.num_patterns = c.spec.num_patterns;
    p.care_density = 0.01 + 0.4 * rng.next_double();
    c.cubes = synthesize_cubes(p, rng.next_u64());
    c.validate();
    soc.cores.push_back(std::move(c));
  }
  return soc;
}

struct ContractCase {
  std::string name;
  BackendKind kind;
  std::uint64_t fuzz_seed;  // 0 = d695
  int width;
};

std::string case_name(const testing::TestParamInfo<ContractCase>& info) {
  return info.param.name;
}

class BackendContract : public testing::TestWithParam<ContractCase> {
 protected:
  void SetUp() override {
    const ContractCase& c = GetParam();
    soc_ = c.fuzz_seed == 0 ? make_d695() : fuzzed_soc(c.fuzz_seed);
    ExploreOptions e;
    e.max_width = std::max(c.width, 16);
    e.max_chains = 64;
    opt_ = std::make_unique<SocOptimizer>(soc_, e);
    opts_.width = c.width;
    opts_.mode = ArchMode::PerCore;
    backend_ = make_backend(c.kind, *opt_, opts_);
  }

  SocSpec soc_;
  std::unique_ptr<SocOptimizer> opt_;
  OptimizerOptions opts_;
  std::unique_ptr<ArchitectureBackend> backend_;
};

TEST_P(BackendContract, StartsAreNonEmptyAndValid) {
  const std::vector<std::vector<int>> starts = backend_->starts();
  ASSERT_FALSE(starts.empty());
  for (std::size_t i = 0; i < starts.size(); ++i)
    EXPECT_TRUE(backend_->valid(starts[i])) << "start " << i;
}

TEST_P(BackendContract, EvaluateSchedulesEveryCoreOnceWithoutOverlap) {
  const int n = static_cast<int>(soc_.cores.size());
  for (const std::vector<int>& g : backend_->starts()) {
    const OptimizationResult r = backend_->evaluate(g);
    // validate() checks entry/bus ranges and per-bus overlap; gaps are
    // legal (rect packings and power-limited schedules both leave them).
    ASSERT_NO_THROW(r.schedule.validate(n, /*allow_gaps=*/true));
    std::set<int> seen;
    for (const ScheduleEntry& e : r.schedule.entries) {
      EXPECT_TRUE(seen.insert(e.core).second)
          << "core " << e.core << " scheduled twice";
      EXPECT_GE(e.bus, 0);
      EXPECT_LT(e.bus, static_cast<int>(r.arch.widths.size()));
    }
    EXPECT_EQ(static_cast<int>(seen.size()), n);
    EXPECT_EQ(r.arch.total_width(), opts_.width);
  }
}

TEST_P(BackendContract, LowerBoundIsAdmissible) {
  for (const std::vector<int>& g : backend_->starts()) {
    const OptimizationResult r = backend_->evaluate(g);
    EXPECT_LE(backend_->lower_bound(g), r.test_time)
        << backend_->name() << " bound over-estimates";
  }
}

TEST_P(BackendContract, NeighboursAreValidDeduplicatedAndReversible) {
  // Rect genomes are per-core (position matters), so the reverse move must
  // restore the exact genome. Fixed-bus genomes are bus-width partitions
  // whose neighbourhood dedups by width multiset — there reversibility
  // holds up to bus permutation.
  const bool exact = GetParam().kind == BackendKind::Rect;
  const auto canon = [&](std::vector<int> g) {
    if (!exact) std::sort(g.begin(), g.end());
    return g;
  };
  for (const std::vector<int>& g : backend_->starts()) {
    const std::vector<std::vector<int>> neigh = backend_->neighbours(g);
    std::set<std::vector<int>> unique;
    for (const std::vector<int>& m : neigh) {
      EXPECT_TRUE(backend_->valid(m));
      EXPECT_NE(m, g) << "neighbourhood includes the input genome";
      EXPECT_TRUE(unique.insert(m).second) << "duplicate neighbour";
      bool reversible = false;
      for (const std::vector<int>& back : backend_->neighbours(m))
        if (canon(back) == canon(g)) {
          reversible = true;
          break;
        }
      EXPECT_TRUE(reversible) << "move is not reversible";
    }
  }
}

TEST_P(BackendContract, EvaluateIsDeterministic) {
  const std::vector<std::vector<int>> starts = backend_->starts();
  const OptimizationResult a = backend_->evaluate(starts.front());
  const OptimizationResult b = backend_->evaluate(starts.front());
  EXPECT_EQ(a.test_time, b.test_time);
  EXPECT_EQ(a.data_volume_bits, b.data_volume_bits);
  ASSERT_EQ(a.schedule.entries.size(), b.schedule.entries.size());
  for (std::size_t i = 0; i < a.schedule.entries.size(); ++i) {
    EXPECT_EQ(a.schedule.entries[i].core, b.schedule.entries[i].core);
    EXPECT_EQ(a.schedule.entries[i].bus, b.schedule.entries[i].bus);
    EXPECT_EQ(a.schedule.entries[i].start, b.schedule.entries[i].start);
    EXPECT_EQ(a.schedule.entries[i].end, b.schedule.entries[i].end);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendContract,
    testing::Values(
        ContractCase{"fixed_d695_w16", BackendKind::FixedBus, 0, 16},
        ContractCase{"rect_d695_w16", BackendKind::Rect, 0, 16},
        ContractCase{"fixed_d695_w32", BackendKind::FixedBus, 0, 32},
        ContractCase{"rect_d695_w32", BackendKind::Rect, 0, 32},
        ContractCase{"fixed_fuzz1_w12", BackendKind::FixedBus, 101, 12},
        ContractCase{"rect_fuzz1_w12", BackendKind::Rect, 101, 12},
        ContractCase{"fixed_fuzz2_w8", BackendKind::FixedBus, 202, 8},
        ContractCase{"rect_fuzz2_w8", BackendKind::Rect, 202, 8},
        ContractCase{"fixed_fuzz3_w20", BackendKind::FixedBus, 303, 20},
        ContractCase{"rect_fuzz3_w20", BackendKind::Rect, 303, 20}),
    case_name);

TEST(BackendFactory, RaceIsNotAConstructibleBackend) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 16;
  EXPECT_THROW(make_backend(BackendKind::Race, opt, o),
               std::invalid_argument);
}

TEST(BackendFactory, RectRejectsUnsupportedOptionSlices) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 16;

  OptimizerOptions bad_mode = o;
  bad_mode.mode = ArchMode::PerTam;
  std::string why;
  EXPECT_FALSE(rect_supported(bad_mode, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_THROW(make_backend(BackendKind::Rect, opt, bad_mode),
               std::invalid_argument);

  OptimizerOptions bad_power = o;
  bad_power.power_budget_mw = 100.0;
  EXPECT_FALSE(rect_supported(bad_power));
  EXPECT_THROW(optimize_rect(opt, bad_power), std::invalid_argument);
}

}  // namespace
}  // namespace soctest
