#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace soctest {
namespace {

TEST(Table, AlignsColumnsAndFormats) {
  Table t({"design", "tau", "factor"});
  t.add_row({"d695", Table::num(123456), Table::fixed(12.586, 2)});
  t.add_row({"System1", Table::num(7), Table::fixed(0.5, 2)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("design"), std::string::npos);
  EXPECT_NE(s.find("123456"), std::string::npos);
  EXPECT_NE(s.find("12.59"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.row(1)[0], "System1");
  EXPECT_THROW(t.add_row({"too", "few"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Csv, EscapesAndWrites) {
  Csv csv({"a", "b"});
  csv.add_row({"plain", "has,comma"});
  csv.add_row({"has\"quote", "multi\nline"});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);

  const std::string path = "/tmp/soctest_csv_test.csv";
  csv.write_file(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_EQ(first, "a,b");
  std::remove(path.c_str());
  EXPECT_THROW(csv.write_file("/nonexistent-dir/x.csv"), std::runtime_error);
  EXPECT_THROW(csv.add_row({"one"}), std::invalid_argument);
}

TEST(AsciiChart, RendersExtremes) {
  ChartSeries s;
  for (int i = 0; i <= 20; ++i) {
    s.x.push_back(i);
    s.y.push_back(i == 13 ? 5.0 : 100.0 + i);
  }
  ChartOptions o;
  o.title = "test chart";
  o.x_label = "m";
  o.y_label = "tau";
  const std::string out = render_chart(s, o);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("m: 0 .. 20"), std::string::npos);

  ChartSeries bad;
  EXPECT_THROW(render_chart(bad, o), std::invalid_argument);
  bad.x = {1.0};
  EXPECT_THROW(render_chart(bad, o), std::invalid_argument);
}

TEST(AsciiChart, FlatSeriesDoesNotDivideByZero) {
  ChartSeries s;
  s.x = {1, 2, 3};
  s.y = {5, 5, 5};
  ChartOptions o;
  EXPECT_NO_THROW(render_chart(s, o));
}

}  // namespace
}  // namespace soctest
