// Content-addressed TableCache: fingerprint stability/sensitivity, hits
// substituting for cold runs, collision handling by construction, LRU
// eviction at capacity, and a realistic >50% hit-rate workload.
#include <gtest/gtest.h>

#include <memory>

#include "explore/core_explorer.hpp"
#include "explore/technique_select.hpp"
#include "opt/soc_optimizer.hpp"
#include "runtime/table_cache.hpp"
#include "socgen/d695.hpp"

namespace soctest {
namespace {

using runtime::CacheKey;
using runtime::CacheStats;
using runtime::TableCache;
using runtime::key_of;

ExploreOptions small_opts() {
  ExploreOptions opts;
  opts.max_width = 12;
  opts.max_chains = 32;
  return opts;
}

TEST(CacheKey, StableForEqualInputs) {
  const SocSpec soc = make_d695();
  const ExploreOptions opts = small_opts();
  EXPECT_EQ(key_of(soc.cores[0], opts), key_of(soc.cores[0], opts));
  EXPECT_EQ(key_of(soc.cores[0], opts, DictSelectOptions{}),
            key_of(soc.cores[0], opts, DictSelectOptions{}));
}

TEST(CacheKey, SensitiveToEveryInputThatChangesTheResult) {
  const SocSpec soc = make_d695();
  const ExploreOptions opts = small_opts();
  const CacheKey base = key_of(soc.cores[0], opts);

  // A different core.
  EXPECT_NE(base, key_of(soc.cores[1], opts));

  // A different exploration band.
  ExploreOptions wider = opts;
  wider.max_width = 13;
  EXPECT_NE(base, key_of(soc.cores[0], wider));
  ExploreOptions more_chains = opts;
  more_chains.max_chains = 33;
  EXPECT_NE(base, key_of(soc.cores[0], more_chains));

  // Different pattern count on an otherwise identical core.
  CoreUnderTest tweaked = soc.cores[0];
  tweaked.spec.num_patterns += 1;
  EXPECT_NE(base, key_of(tweaked, opts));

  // The selection flow fingerprints the dictionary options too.
  const CacheKey sel = key_of(soc.cores[0], opts, DictSelectOptions{});
  EXPECT_NE(base, sel);
  DictSelectOptions dict;
  dict.entry_counts = {16, 64};
  EXPECT_NE(sel, key_of(soc.cores[0], opts, dict));
}

TEST(CacheKey, InsensitiveToCachePolicyFlag) {
  // use_cache selects *whether* to consult the cache, not what the result
  // is — it must not split otherwise-identical fingerprints.
  const SocSpec soc = make_d695();
  ExploreOptions on = small_opts();
  ExploreOptions off = small_opts();
  on.use_cache = true;
  off.use_cache = false;
  EXPECT_EQ(key_of(soc.cores[0], on), key_of(soc.cores[0], off));
}

TEST(TableCache, HitEqualsColdRun) {
  const SocSpec soc = make_d695();
  const ExploreOptions opts = small_opts();
  const CoreTable cold = explore_core(soc.cores[0], opts);

  TableCache cache(8);
  const CacheKey key = key_of(soc.cores[0], opts);
  int computes = 0;
  const auto first = cache.get_or_compute(key, [&] {
    ++computes;
    return explore_core(soc.cores[0], opts);
  });
  const auto second = cache.get_or_compute(key, [&] {
    ++computes;
    return explore_core(soc.cores[0], opts);
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());  // same stored object
  EXPECT_EQ(*second, cold);              // and bit-identical to a cold run

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(TableCache, PrimaryHashCollisionKeepsBothEntries) {
  // Keys engineered to share the primary digest (same bucket) but differ
  // in the check digest: the cache must treat them as distinct.
  TableCache cache(8);
  const CacheKey a{0xDEADBEEFCAFEF00DULL, 0x1111, 64};
  const CacheKey b{0xDEADBEEFCAFEF00DULL, 0x2222, 64};
  const CacheKey c{0xDEADBEEFCAFEF00DULL, 0x1111, 65};  // length differs

  cache.insert(a, CoreTable("table-a", 4));
  cache.insert(b, CoreTable("table-b", 4));
  cache.insert(c, CoreTable("table-c", 4));

  ASSERT_NE(cache.lookup(a), nullptr);
  ASSERT_NE(cache.lookup(b), nullptr);
  ASSERT_NE(cache.lookup(c), nullptr);
  EXPECT_EQ(cache.lookup(a)->core_name(), "table-a");
  EXPECT_EQ(cache.lookup(b)->core_name(), "table-b");
  EXPECT_EQ(cache.lookup(c)->core_name(), "table-c");
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(TableCache, EvictsLeastRecentlyUsedAtCapacity) {
  TableCache cache(2);
  const CacheKey k1{1, 1, 8};
  const CacheKey k2{2, 2, 8};
  const CacheKey k3{3, 3, 8};

  cache.insert(k1, CoreTable("t1", 4));
  cache.insert(k2, CoreTable("t2", 4));
  ASSERT_NE(cache.lookup(k1), nullptr);  // touch k1: k2 becomes LRU

  cache.insert(k3, CoreTable("t3", 4));  // at capacity -> evict k2
  EXPECT_NE(cache.lookup(k1), nullptr);
  EXPECT_EQ(cache.lookup(k2), nullptr);
  EXPECT_NE(cache.lookup(k3), nullptr);

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(TableCache, ReinsertReplacesWithoutGrowth) {
  TableCache cache(4);
  const CacheKey k{7, 7, 8};
  cache.insert(k, CoreTable("old", 4));
  cache.insert(k, CoreTable("new", 4));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.lookup(k)->core_name(), "new");
}

TEST(TableCache, ClearDropsEntriesKeepsCounters) {
  TableCache cache(4);
  cache.insert(CacheKey{1, 1, 8}, CoreTable("t", 4));
  ASSERT_NE(cache.lookup(CacheKey{1, 1, 8}), nullptr);
  cache.clear();
  EXPECT_EQ(cache.lookup(CacheKey{1, 1, 8}), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_GE(s.hits, 1u);
}

// A realistic workload: building three optimizers over the same SOC with
// the same band re-explores the same cores, so at most the first pass can
// miss — the global cache must serve > 50% of lookups from memory.
TEST(TableCache, RepeatedOptimizerConstructionHitsMajority) {
  const SocSpec soc = make_d695();
  ExploreOptions opts;
  opts.max_width = 14;
  opts.max_chains = 48;

  const CacheStats before = TableCache::global().stats();
  for (int round = 0; round < 3; ++round) {
    const SocOptimizer opt(soc, opts);
    OptimizerOptions o;
    o.width = 12;
    EXPECT_GT(opt.optimize(o).test_time, 0);
  }
  const CacheStats after = TableCache::global().stats();

  const std::uint64_t lookups =
      (after.hits - before.hits) + (after.misses - before.misses);
  const std::uint64_t hits = after.hits - before.hits;
  ASSERT_GT(lookups, 0u);
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(lookups), 0.5)
      << "hits " << hits << " of " << lookups << " lookups";
}

TEST(TableCache, GlobalCacheFeedsRuntimeStats) {
  // TableCache::global() registers itself as the stats provider, so the
  // collected snapshot must reflect its counters.
  (void)TableCache::global();  // ensure registration
  const CacheStats direct = TableCache::global().stats();
  const CacheStats via = runtime::collect_stats().table_cache;
  EXPECT_EQ(via.capacity, direct.capacity);
  EXPECT_GE(via.hits + via.misses, direct.hits);  // monotone counters
}

}  // namespace
}  // namespace soctest
