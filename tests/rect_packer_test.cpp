// Rectangle strip packer (sched/rect_packer) pins:
//   - every packing is valid (in-strip, overlap-free) and MAXIMAL: no
//     rectangle can slide to an earlier start on its wires — the
//     left-justified property the rect backend's schedules inherit;
//   - the construction is a pure function of the item multiset: identical
//     inputs pack identically regardless of input order, and repacking a
//     packing's own rectangles is a fixed point;
//   - the area/longest-item bound never exceeds the constructed makespan
//     (admissibility of the backend's lower_bound);
//   - malformed items (non-positive strip, width off the strip, negative
//     time) are rejected with std::invalid_argument.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sched/rect_packer.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

std::vector<RectItem> items_of(const RectPacking& p) {
  std::vector<RectItem> items;
  for (const PlacedRect& r : p.rects)
    items.push_back(RectItem{r.id, r.width, r.time});
  return items;
}

std::vector<PlacedRect> by_id(RectPacking p) {
  std::sort(p.rects.begin(), p.rects.end(),
            [](const PlacedRect& a, const PlacedRect& b) {
              return a.id < b.id;
            });
  return p.rects;
}

void expect_same_packing(const RectPacking& a, const RectPacking& b) {
  ASSERT_EQ(a.strip_width, b.strip_width);
  const std::vector<PlacedRect> pa = by_id(a);
  const std::vector<PlacedRect> pb = by_id(b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].id, pb[i].id) << i;
    EXPECT_EQ(pa[i].x, pb[i].x) << i;
    EXPECT_EQ(pa[i].start, pb[i].start) << i;
  }
}

std::vector<RectItem> fuzz_items(Rng& rng, int strip_width) {
  const int n = static_cast<int>(rng.next_range(1, 24));
  std::vector<RectItem> items;
  for (int i = 0; i < n; ++i)
    items.push_back(RectItem{
        i, static_cast<int>(rng.next_range(1,
                                           static_cast<std::uint64_t>(
                                               strip_width))),
        static_cast<int>(rng.next_range(0, 5000))});
  return items;
}

TEST(RectPacker, EmptyAndSingleItem) {
  const RectPacking empty = pack_rectangles(8, {});
  EXPECT_EQ(empty.makespan(), 0);
  EXPECT_TRUE(empty.rects.empty());
  validate_packing(empty);

  const RectPacking one = pack_rectangles(8, {RectItem{0, 8, 100}});
  ASSERT_EQ(one.rects.size(), 1u);
  EXPECT_EQ(one.rects[0].x, 0);
  EXPECT_EQ(one.rects[0].start, 0);
  EXPECT_EQ(one.makespan(), 100);
  EXPECT_TRUE(packing_is_maximal(one));
}

TEST(RectPacker, TwoSideBySideBeatStacking) {
  // Two width-4 rects fit side by side on an 8-wide strip.
  const RectPacking p = pack_rectangles(
      8, {RectItem{0, 4, 100}, RectItem{1, 4, 100}});
  validate_packing(p);
  EXPECT_EQ(p.makespan(), 100);
}

TEST(RectPacker, RejectsMalformedItems) {
  EXPECT_THROW(pack_rectangles(0, {}), std::invalid_argument);
  EXPECT_THROW(pack_rectangles(4, {RectItem{0, 0, 10}}),
               std::invalid_argument);
  EXPECT_THROW(pack_rectangles(4, {RectItem{0, 5, 10}}),
               std::invalid_argument);
  EXPECT_THROW(pack_rectangles(4, {RectItem{0, 2, -1}}),
               std::invalid_argument);
}

TEST(RectPacker, FuzzedPackingsAreValidMaximalAndBounded) {
  Rng rng(20260808);
  for (int trial = 0; trial < 300; ++trial) {
    const int strip = static_cast<int>(rng.next_range(1, 48));
    const std::vector<RectItem> items = fuzz_items(rng, strip);
    const RectPacking p = pack_rectangles(strip, items);
    SCOPED_TRACE("trial " + std::to_string(trial) + " strip " +
                 std::to_string(strip));
    ASSERT_EQ(p.rects.size(), items.size());
    ASSERT_NO_THROW(validate_packing(p));
    EXPECT_TRUE(packing_is_maximal(p));
    EXPECT_GE(p.makespan(), rect_area_bound(strip, items));
  }
}

TEST(RectPacker, PureFunctionOfItemMultiset) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const int strip = static_cast<int>(rng.next_range(2, 32));
    std::vector<RectItem> items = fuzz_items(rng, strip);
    const RectPacking a = pack_rectangles(strip, items);
    // Same multiset, reversed presentation order: identical placements.
    std::reverse(items.begin(), items.end());
    const RectPacking b = pack_rectangles(strip, items);
    expect_same_packing(a, b);
  }
}

TEST(RectPacker, RepackIsAFixedPoint) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    const int strip = static_cast<int>(rng.next_range(1, 40));
    const RectPacking p = pack_rectangles(strip, fuzz_items(rng, strip));
    const RectPacking again = pack_rectangles(strip, items_of(p));
    expect_same_packing(p, again);
  }
}

TEST(RectPacker, MaximalityCheckerCatchesAFloatedRect) {
  RectPacking p;
  p.strip_width = 4;
  // A rect floated above an empty strip: nothing obstructs it at start 50.
  p.rects.push_back(PlacedRect{0, 4, 10, 0, 50});
  ASSERT_NO_THROW(validate_packing(p));
  EXPECT_FALSE(packing_is_maximal(p));
}

}  // namespace
}  // namespace soctest
