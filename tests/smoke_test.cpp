// End-to-end smoke: a tiny SOC goes through explore -> optimize -> schedule
// and every structural invariant holds.
#include <gtest/gtest.h>

#include "opt/soc_optimizer.hpp"
#include "socgen/cube_synth.hpp"

namespace soctest {
namespace {

SocSpec tiny_soc() {
  SocSpec soc;
  soc.name = "tiny";
  for (int i = 0; i < 3; ++i) {
    CoreUnderTest c;
    c.spec.name = "core" + std::to_string(i);
    c.spec.num_inputs = 8 + 4 * i;
    c.spec.num_outputs = 6;
    c.spec.scan_chain_lengths = {40 + 10 * i, 35, 20};
    c.spec.num_patterns = 25 + 5 * i;
    CubeSynthParams p;
    p.num_cells = c.spec.stimulus_bits_per_pattern();
    p.num_patterns = c.spec.num_patterns;
    p.care_density = 0.1;
    c.cubes = synthesize_cubes(p, 42 + static_cast<std::uint64_t>(i));
    soc.cores.push_back(std::move(c));
  }
  return soc;
}

TEST(Smoke, EndToEnd) {
  const SocSpec soc = tiny_soc();
  ExploreOptions e;
  e.max_width = 24;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);

  for (ArchMode mode : {ArchMode::NoTdc, ArchMode::PerCore, ArchMode::PerTam,
                        ArchMode::FixedWidth4}) {
    OptimizerOptions o;
    o.width = 16;
    o.mode = mode;
    const OptimizationResult r = opt.optimize(o);
    EXPECT_GT(r.test_time, 0) << to_string(mode);
    EXPECT_GT(r.data_volume_bits, 0) << to_string(mode);
    EXPECT_NO_THROW(r.schedule.validate(soc.num_cores())) << to_string(mode);
    EXPECT_EQ(r.test_time, r.schedule.makespan());
  }
}

}  // namespace
}  // namespace soctest
