// Cycle-accurate scan power (WTM + shift traces) and its headline claim:
// constant-fill expansion toggles less than tester random fill.
#include <gtest/gtest.h>

#include "power/wsa.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

WrapperDesign two_chain_design() {
  CoreSpec spec;
  spec.name = "t";
  spec.num_inputs = 0;
  spec.scan_chain_lengths = {4, 4};
  spec.num_patterns = 1;
  return design_wrapper(spec, 2);
}

SliceSequence slices_from(const std::vector<std::string>& rows) {
  SliceSequence s;
  for (const std::string& r : rows) {
    std::vector<bool> bits;
    for (char c : r) bits.push_back(c == '1');
    s.push_back(bits);
  }
  return s;
}

TEST(Wsa, WtmHandComputed) {
  const WrapperDesign d = two_chain_design();
  // Chain 0 vector (slices top to bottom): 0,1,0,1 -> transitions at j=0,1,2
  // with weights 3,2,1 -> 6. Chain 1: 1,1,1,1 -> 0.
  const SliceSequence s = slices_from({"01", "11", "01", "11"});
  EXPECT_EQ(weighted_transitions(s, d), 6);

  // Constant chains: zero WTM.
  const SliceSequence flat = slices_from({"00", "00", "00", "00"});
  EXPECT_EQ(weighted_transitions(flat, d), 0);

  // Maximum-activity chain 0101 on both chains: 2 * 6 = 12.
  const SliceSequence busy = slices_from({"00", "11", "00", "11"});
  EXPECT_EQ(weighted_transitions(busy, d), 12);
}

TEST(Wsa, ShiftTraceCountsToggles) {
  const WrapperDesign d = two_chain_design();
  // All-ones into zero-initialized chains: cycle t toggles exactly one new
  // cell per chain (the 1-front advances one position per cycle).
  const SliceSequence s = slices_from({"11", "11", "11", "11"});
  const PowerTrace trace = shift_power_trace(s, d);
  ASSERT_EQ(trace.toggles_per_cycle.size(), 4u);
  for (std::int64_t t : trace.toggles_per_cycle) EXPECT_EQ(t, 2);
  EXPECT_EQ(trace.peak, 2);
  EXPECT_DOUBLE_EQ(trace.average, 2.0);

  // Alternating input toggles every cell it passes: activity ramps up.
  const SliceSequence alt = slices_from({"10", "00", "10", "00"});
  const PowerTrace at = shift_power_trace(alt, d);
  EXPECT_GT(at.peak, 1);
}

TEST(Wsa, RejectsShapeMismatch) {
  const WrapperDesign d = two_chain_design();
  EXPECT_THROW(weighted_transitions(slices_from({"01"}), d),
               std::invalid_argument);
  EXPECT_THROW(
      shift_power_trace(slices_from({"011", "110", "000", "101"}), d),
      std::invalid_argument);
}

TEST(Wsa, ConstantFillTogglesLessThanRandomFill) {
  // The companion-paper claim this module exists to quantify: on sparse
  // cubes, majority-fill (what the decompressor drives) yields much lower
  // WTM than tester-side random fill.
  const CoreUnderTest core = testutil::flex_core("c", 2'000, 6, 0.02, 3);
  const WrapperDesign d = design_wrapper(core.spec, 16);
  const SliceMap map(d, core.cubes.num_cells());

  std::int64_t wtm_fill = 0, wtm_random = 0;
  for (int p = 0; p < core.cubes.num_patterns(); ++p) {
    wtm_fill += weighted_transitions(
        expand_pattern_slices(map, core.cubes, p, /*random_fill=*/false), d);
    wtm_random += weighted_transitions(
        expand_pattern_slices(map, core.cubes, p, /*random_fill=*/true), d);
  }
  EXPECT_LT(wtm_fill * 2, wtm_random)
      << "constant fill should at least halve the weighted transitions";
}

TEST(Wsa, ExpandPreservesCareBits) {
  const CoreUnderTest core = testutil::small_core("c", 8, {20, 15}, 4, 0.3);
  const WrapperDesign d = design_wrapper(core.spec, 3);
  const SliceMap map(d, core.cubes.num_cells());
  for (bool random_fill : {false, true}) {
    const SliceSequence s =
        expand_pattern_slices(map, core.cubes, 1, random_fill);
    for (const CareBit& b : core.cubes.pattern(1)) {
      EXPECT_EQ(s[map.slice_of_cell(b.cell)][map.chain_of_cell(b.cell)],
                b.value);
    }
  }
}

}  // namespace
}  // namespace soctest
