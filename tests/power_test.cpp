// Power model and power-constrained scheduling (extension; see src/power).
#include <gtest/gtest.h>

#include <algorithm>

#include "opt/soc_optimizer.hpp"
#include "power/power_model.hpp"
#include "sched/power_scheduler.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(PowerModel, ScalesWithCellsAndMode) {
  CoreSpec small;
  small.name = "s";
  small.flexible_scan = true;
  small.flexible_scan_cells = 1'000;
  small.num_patterns = 1;
  CoreSpec big = small;
  big.name = "b";
  big.flexible_scan_cells = 50'000;

  CoreChoice direct;
  direct.mode = AccessMode::Direct;
  CoreChoice compressed;
  compressed.mode = AccessMode::Compressed;

  EXPECT_LT(core_test_power(small, direct), core_test_power(big, direct));
  // Constant-fill expansion toggles less than tester random fill.
  EXPECT_LT(core_test_power(big, compressed), core_test_power(big, direct));
  EXPECT_GE(core_peak_power(big), core_test_power(big, direct));
  EXPECT_GE(core_peak_power(big), core_test_power(big, compressed));
}

// Simple synthetic instances for the scheduler itself.
CostFn flat_cost(const std::vector<std::int64_t>& t) {
  return [t](int core, int) {
    BusAccessCost c;
    c.time = t[static_cast<std::size_t>(core)];
    c.choice.test_time = c.time;
    return c;
  };
}

PowerFn flat_power(const std::vector<double>& p) {
  return [p](int core, int) { return p[static_cast<std::size_t>(core)]; };
}

TEST(PowerScheduler, RespectsBudgetAtEveryInstant) {
  const std::vector<std::int64_t> t = {100, 90, 80, 70, 60, 50};
  const std::vector<double> p = {5, 4, 3, 3, 2, 2};
  PowerScheduleOptions o;
  o.power_budget = 7.0;
  const Schedule s = power_schedule(6, 3, flat_cost(t), flat_power(p), t, o);
  s.validate(6, /*allow_gaps=*/true);
  EXPECT_LE(schedule_peak_power(s, flat_power(p)), 7.0);
}

TEST(PowerScheduler, TighterBudgetNeverFaster) {
  const std::vector<std::int64_t> t = {100, 90, 80, 70, 60, 50, 40, 30};
  const std::vector<double> p = {5, 4, 3, 3, 2, 2, 1, 1};
  std::int64_t prev = 0;
  for (double budget : {21.0, 10.0, 7.0, 5.0}) {
    PowerScheduleOptions o;
    o.power_budget = budget;
    const Schedule s =
        power_schedule(8, 4, flat_cost(t), flat_power(p), t, o);
    s.validate(8, true);
    EXPECT_GE(s.makespan(), prev) << "budget " << budget;
    prev = s.makespan();
  }
}

TEST(PowerScheduler, UnlimitedBudgetMatchesUnconstrainedQuality) {
  const std::vector<std::int64_t> t = {70, 60, 50, 40, 30};
  const std::vector<double> p = {1, 1, 1, 1, 1};
  PowerScheduleOptions o;
  o.power_budget = 1e9;
  const Schedule s = power_schedule(5, 2, flat_cost(t), flat_power(p), t, o);
  s.validate(5, true);
  // Sum = 250; lower bound on 2 buses = 130 (LPT-style greedy hits it).
  EXPECT_LE(s.makespan(), 140);
}

TEST(PowerScheduler, SerializesWhenOnlyOneFits) {
  // Budget fits exactly one core at a time: makespan = sum of times even
  // with many buses.
  const std::vector<std::int64_t> t = {30, 20, 10};
  const std::vector<double> p = {2, 2, 2};
  PowerScheduleOptions o;
  o.power_budget = 3.0;
  const Schedule s = power_schedule(3, 3, flat_cost(t), flat_power(p), t, o);
  s.validate(3, true);
  EXPECT_EQ(s.makespan(), 60);
  EXPECT_LE(schedule_peak_power(s, flat_power(p)), 3.0);
}

TEST(PowerScheduler, InfeasibleCoreThrows) {
  PowerScheduleOptions o;
  o.power_budget = 1.0;
  EXPECT_THROW(power_schedule(1, 1, flat_cost({10}), flat_power({2.0}), {10},
                              o),
               std::runtime_error);
  o.power_budget = 0.0;
  EXPECT_THROW(power_schedule(1, 1, flat_cost({10}), flat_power({0.5}), {10},
                              o),
               std::invalid_argument);
}

TEST(PowerScheduler, OptimizerIntegration) {
  const SocSpec soc = testutil::mixed_soc();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);

  OptimizerOptions unconstrained;
  unconstrained.width = 12;
  const OptimizationResult free_run = opt.optimize(unconstrained);
  EXPECT_GT(free_run.peak_power_mw, 0.0);

  double floor_mw = 0.0;  // one core must always fit
  for (const auto& c : soc.cores)
    floor_mw = std::max(floor_mw, core_peak_power(c.spec));

  OptimizerOptions capped = unconstrained;
  capped.power_budget_mw =
      std::max(free_run.peak_power_mw * 0.7, floor_mw + 0.1);
  if (capped.power_budget_mw >= free_run.peak_power_mw)
    GTEST_SKIP() << "instance too small to constrain meaningfully";
  const OptimizationResult capped_run = opt.optimize(capped);
  capped_run.schedule.validate(soc.num_cores(), true);
  EXPECT_LE(capped_run.peak_power_mw, capped.power_budget_mw + 1e-9);
  EXPECT_GE(capped_run.test_time, free_run.test_time);
}

}  // namespace
}  // namespace soctest
