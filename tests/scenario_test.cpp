// Scenario engine (src/scenario) pins:
//   - the strict ScenarioSpec grammar: canonical round-trips, rejected
//     malformed specs, and the sweep cross-product's deterministic order
//     (cap outermost, then preempt, then hier, then w);
//   - the SchedulerBackend contract: factory dispatch per scenario cell
//     (preempt-without-cap normalizes away), gap/prepared capabilities,
//     power caps respected at every instant, hierarchy exclusion honoured,
//     preemptive segments summing to the full test time on one bus, and
//     the shared makespan lower bound staying admissible for every
//     constrained scenario;
//   - the differential equivalences the byte-identity discipline rests on:
//     preempt-without-cap == default and an explicit zero cap == default,
//     bit-identical JSON artifacts at 1/4/8 runtime lanes;
//   - incremental == from-scratch search under every constrained scenario;
//   - seeded synthx decorations: deterministic across runs and lane
//     counts, hierarchy stream independent of the power-profile flag,
//     decorations never perturbing the underlying cores, and exact
//     round-trips through the soc_text format;
//   - the report rule: default scenario emits no JSON key.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "hier/hier_scheduler.hpp"
#include "hier/hierarchy.hpp"
#include "io/soc_text.hpp"
#include "opt/soc_optimizer.hpp"
#include "power/power_model.hpp"
#include "report/json.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scheduler_backend.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/power_scheduler.hpp"
#include "socgen/cube_synth.hpp"
#include "socgen/d695.hpp"
#include "socgen/rng.hpp"
#include "socgen/synthetic.hpp"

namespace soctest {
namespace {

// ---------------------------------------------------------------- grammar

TEST(ScenarioParse, CanonicalFormsRoundTrip) {
  for (const char* spec :
       {"default", "cap=20", "cap=1250.5", "preempt", "hier", "w=24",
        "cap=20,preempt", "cap=20,hier", "cap=20,preempt,hier",
        "cap=1500.25,preempt,hier,w=16", "preempt,hier", "hier,w=8"}) {
    SCOPED_TRACE(spec);
    const ScenarioSpec s = parse_scenario(spec);
    EXPECT_EQ(s.to_string(), spec);
    EXPECT_EQ(parse_scenario(s.to_string()), s);
  }
}

TEST(ScenarioParse, FieldsAndPredicates) {
  const ScenarioSpec d = parse_scenario("default");
  EXPECT_TRUE(d.is_default());
  EXPECT_FALSE(d.constrains_schedule());

  const ScenarioSpec s = parse_scenario("cap=20,preempt,w=24");
  EXPECT_EQ(s.power_cap_mw, 20.0);
  EXPECT_TRUE(s.preemptive);
  EXPECT_FALSE(s.hierarchical);
  EXPECT_EQ(s.width, 24);
  EXPECT_FALSE(s.is_default());
  EXPECT_TRUE(s.constrains_schedule());

  // preempt alone never changes the schedule (nothing to preempt for),
  // hier alone does (earliest-fit placement).
  EXPECT_FALSE(parse_scenario("preempt").constrains_schedule());
  EXPECT_TRUE(parse_scenario("hier").constrains_schedule());
}

TEST(ScenarioParse, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "bogus", "cap=", "cap=20x", "cap=-1", "cap=nope", "w=0", "w=-4",
        "w=8.5", "cap=1,cap=2", "preempt,preempt", "hier,hier", "w=8,w=9",
        "cap=20,", "Default", "preempt "}) {
    SCOPED_TRACE(std::string("'") + spec + "'");
    EXPECT_THROW(parse_scenario(spec), std::invalid_argument);
  }
}

TEST(ScenarioSweep, CrossProductOrderIsDeterministic) {
  // Axis order in the spec must not matter: cells always enumerate cap
  // outermost, then preempt, then hier, then w.
  const std::vector<ScenarioSpec> cells =
      parse_scenario_sweep("hier=0,1;cap=0,1000;w=8");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].to_string(), "w=8");
  EXPECT_EQ(cells[1].to_string(), "hier,w=8");
  EXPECT_EQ(cells[2].to_string(), "cap=1000,w=8");
  EXPECT_EQ(cells[3].to_string(), "cap=1000,hier,w=8");

  const std::vector<ScenarioSpec> full =
      parse_scenario_sweep("cap=0,500;preempt=0,1;hier=0,1;w=8,16");
  ASSERT_EQ(full.size(), 16u);
  // First cap block entirely before the second; w innermost.
  EXPECT_EQ(full[0].to_string(), "w=8");
  EXPECT_EQ(full[1].to_string(), "w=16");
  EXPECT_EQ(full[7].to_string(), "preempt,hier,w=16");
  EXPECT_EQ(full[8].to_string(), "cap=500,w=8");
  EXPECT_EQ(full[15].to_string(), "cap=500,preempt,hier,w=16");
}

TEST(ScenarioSweep, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "cap", "cap=", "preempt=2", "hier=yes", "w=", "nope=1",
        "cap=1;cap=2", "preempt=0,1;preempt=1", "w=8,", "cap=1,-2"}) {
    SCOPED_TRACE(std::string("'") + spec + "'");
    EXPECT_THROW(parse_scenario_sweep(spec), std::invalid_argument);
  }
}

TEST(ScenarioOptions, ScenarioOfAndApplyRoundTrip) {
  OptimizerOptions o;
  o.power_budget_mw = 20.0;
  o.preemptive = true;
  const ScenarioSpec s = scenario_of(o);
  EXPECT_EQ(s.to_string(), "cap=20,preempt");
  EXPECT_EQ(s.width, 0);  // width is never scenario identity

  OptimizerOptions t;
  t.width = 16;
  apply_scenario(parse_scenario("cap=5,hier,w=24"), t);
  EXPECT_EQ(t.power_budget_mw, 5.0);
  EXPECT_FALSE(t.preemptive);
  EXPECT_TRUE(t.hierarchical);
  EXPECT_EQ(t.width, 24);  // positive cell width overrides

  apply_scenario(parse_scenario("preempt"), t);
  EXPECT_EQ(t.power_budget_mw, 0.0);
  EXPECT_TRUE(t.preemptive);
  EXPECT_FALSE(t.hierarchical);
  EXPECT_EQ(t.width, 24);  // zero cell width inherits the driver's
}

// ----------------------------------------------------- backend contract

constexpr int kCores = 5;
constexpr int kBuses = 2;
constexpr std::int64_t kTime[kCores] = {40, 30, 20, 10, 8};
constexpr double kPower[kCores] = {6.0, 5.0, 4.0, 3.0, 2.0};

CostFn tiny_cost() {
  return [](int core, int) {
    BusAccessCost c;
    c.time = kTime[core];
    c.volume_bits = 2 * kTime[core];
    return c;
  };
}

PowerFn tiny_power() {
  return [](int core, int) { return kPower[core]; };
}

std::vector<std::int64_t> tiny_ref() {
  return {kTime, kTime + kCores};
}

/// Row-major [core * kBuses + bus] time matrix matching tiny_cost().
std::vector<std::int64_t> tiny_matrix() {
  std::vector<std::int64_t> m;
  for (int c = 0; c < kCores; ++c)
    for (int b = 0; b < kBuses; ++b) m.push_back(kTime[c]);
  return m;
}

HierarchySpec tiny_hierarchy() {
  HierarchySpec h;
  h.parent = {-1, 0, 1, -1, 3};  // two chains: 0<-1<-2 and 3<-4
  return h;
}

ScenarioSpec scenario(const std::string& spec) {
  return parse_scenario(spec);
}

TEST(SchedulerBackendFactory, DispatchesPerScenarioCell) {
  const HierarchySpec flat = HierarchySpec::flat(kCores);
  const std::map<std::string, std::string> want = {
      {"default", "greedy"},
      {"preempt", "greedy"},  // nothing to preempt for
      {"cap=9", "power"},
      {"cap=9,preempt", "preemptive"},
      {"hier", "hier"},
      {"preempt,hier", "hier"},
      {"cap=9,hier", "hier-power"},
      {"cap=9,preempt,hier", "hier-preemptive"},
  };
  for (const auto& [spec, name] : want) {
    SCOPED_TRACE(spec);
    const auto backend = make_scheduler_backend(scenario(spec), flat);
    EXPECT_EQ(std::string(backend->name()), name);
    // Only power-consuming backends ask for the power model.
    EXPECT_EQ(backend->needs_power(), spec.find("cap=") != std::string::npos);
  }
}

TEST(SchedulerBackendFactory, OnlyGreedySupportsPreparedConstruction) {
  const HierarchySpec flat = HierarchySpec::flat(kCores);
  for (const char* spec :
       {"default", "cap=9", "cap=9,preempt", "hier", "cap=9,hier",
        "cap=9,preempt,hier"}) {
    SCOPED_TRACE(spec);
    const auto backend = make_scheduler_backend(scenario(spec), flat);
    const bool is_greedy = std::string(backend->name()) == "greedy";
    EXPECT_EQ(backend->supports_prepared(), is_greedy);
    EXPECT_EQ(backend->allows_gaps(), !is_greedy);
    if (!is_greedy) {
      std::vector<int> order(kCores);
      for (int i = 0; i < kCores; ++i) order[static_cast<std::size_t>(i)] = i;
      EXPECT_THROW(backend->construct_prepared(kCores, kBuses, tiny_matrix(),
                                               order, tiny_cost()),
                   std::logic_error);
    }
  }
}

TEST(SchedulerBackendContract, GreedyBackendMatchesGreedySchedule) {
  const auto backend =
      make_scheduler_backend(ScenarioSpec{}, HierarchySpec::flat(kCores));
  const Schedule got = backend->construct(kCores, kBuses, tiny_cost(),
                                          tiny_power(), tiny_ref());
  got.validate(kCores);  // gap-free, one entry per core
  const Schedule ref = greedy_schedule(kCores, kBuses, tiny_cost(), tiny_ref());
  ASSERT_EQ(got.entries.size(), ref.entries.size());
  for (std::size_t i = 0; i < got.entries.size(); ++i) {
    EXPECT_EQ(got.entries[i].core, ref.entries[i].core) << i;
    EXPECT_EQ(got.entries[i].bus, ref.entries[i].bus) << i;
    EXPECT_EQ(got.entries[i].start, ref.entries[i].start) << i;
    EXPECT_EQ(got.entries[i].end, ref.entries[i].end) << i;
  }
  EXPECT_EQ(got.bus_finish, ref.bus_finish);
}

TEST(SchedulerBackendContract, PowerBackendsRespectCapAtEveryInstant) {
  const double cap = 9.0;  // cores 0 (6 mW) and 1 (5 mW) cannot overlap
  const HierarchySpec hier = tiny_hierarchy();
  for (const char* spec :
       {"cap=9", "cap=9,preempt", "cap=9,hier", "cap=9,preempt,hier"}) {
    SCOPED_TRACE(spec);
    const auto backend = make_scheduler_backend(scenario(spec), hier);
    const Schedule s = backend->construct(kCores, kBuses, tiny_cost(),
                                          tiny_power(), tiny_ref());
    EXPECT_LE(schedule_peak_power(s, tiny_power()), cap + 1e-9);
    EXPECT_GE(s.makespan(), kTime[0] + kTime[1]);  // 0 and 1 serialized
  }
}

TEST(SchedulerBackendContract, PowerBackendsRejectInfeasibleCap) {
  // Core 0 alone draws 6 mW; a 5 mW budget can never run it.
  const HierarchySpec hier = tiny_hierarchy();
  for (const char* spec :
       {"cap=5", "cap=5,preempt", "cap=5,hier", "cap=5,preempt,hier"}) {
    SCOPED_TRACE(spec);
    const auto backend = make_scheduler_backend(scenario(spec), hier);
    EXPECT_THROW(backend->construct(kCores, kBuses, tiny_cost(), tiny_power(),
                                    tiny_ref()),
                 std::runtime_error);
  }
}

TEST(SchedulerBackendContract, HierBackendsRespectAncestorExclusion) {
  const HierarchySpec hier = tiny_hierarchy();
  for (const char* spec : {"hier", "cap=9,hier", "cap=9,preempt,hier"}) {
    SCOPED_TRACE(spec);
    const auto backend = make_scheduler_backend(scenario(spec), hier);
    const Schedule s = backend->construct(kCores, kBuses, tiny_cost(),
                                          tiny_power(), tiny_ref());
    EXPECT_NO_THROW(validate_hierarchy_exclusion(s, hier));
  }
}

TEST(SchedulerBackendContract, PreemptiveSegmentsSumToFullTestOnOneBus) {
  for (const char* spec : {"cap=9,preempt", "cap=9,preempt,hier"}) {
    SCOPED_TRACE(spec);
    const auto backend =
        make_scheduler_backend(scenario(spec), tiny_hierarchy());
    const Schedule s = backend->construct(kCores, kBuses, tiny_cost(),
                                          tiny_power(), tiny_ref());
    std::vector<std::int64_t> run(kCores, 0);
    std::vector<int> bus(kCores, -1);
    for (const ScheduleEntry& e : s.entries) {
      ASSERT_GE(e.core, 0);
      ASSERT_LT(e.core, kCores);
      EXPECT_LT(e.start, e.end);
      run[static_cast<std::size_t>(e.core)] += e.end - e.start;
      if (bus[static_cast<std::size_t>(e.core)] < 0)
        bus[static_cast<std::size_t>(e.core)] = e.bus;
      // Segments resume on the bus the core was bound to at activation.
      EXPECT_EQ(e.bus, bus[static_cast<std::size_t>(e.core)]) << e.core;
    }
    for (int c = 0; c < kCores; ++c) {
      EXPECT_EQ(run[static_cast<std::size_t>(c)], kTime[c]) << c;
      EXPECT_GE(bus[static_cast<std::size_t>(c)], 0) << c;
    }
    // No two segments overlap on one bus.
    for (std::size_t i = 0; i < s.entries.size(); ++i) {
      for (std::size_t j = i + 1; j < s.entries.size(); ++j) {
        if (s.entries[i].bus == s.entries[j].bus) {
          EXPECT_TRUE(s.entries[i].end <= s.entries[j].start ||
                      s.entries[j].end <= s.entries[i].start)
              << i << " vs " << j;
        }
      }
    }
  }
}

TEST(SchedulerBackendContract, SharedBoundStaysAdmissibleForEveryScenario) {
  // Constraints only ever ADD time over the unconstrained packing, so the
  // shared lower bound may never exceed a constructed schedule's makespan —
  // otherwise the incremental pruner would discard the optimum.
  const HierarchySpec hier = tiny_hierarchy();
  for (const char* spec :
       {"default", "cap=9", "cap=9,preempt", "hier", "cap=9,hier",
        "cap=9,preempt,hier"}) {
    SCOPED_TRACE(spec);
    const auto backend = make_scheduler_backend(scenario(spec), hier);
    const Schedule s = backend->construct(kCores, kBuses, tiny_cost(),
                                          tiny_power(), tiny_ref());
    for (const bool capacity : {false, true}) {
      EXPECT_FALSE(backend->bound_exceeds(kCores, kBuses, tiny_matrix(),
                                          s.makespan(), capacity))
          << "capacity_bound=" << capacity;
    }
  }
}

// ------------------------------------------------------- differentials

SocSpec fuzzed_soc(std::uint64_t seed) {
  Rng rng(seed);
  SocSpec soc;
  soc.name = "fuzz-" + std::to_string(seed);
  const int cores = static_cast<int>(rng.next_range(3, 6));
  for (int i = 0; i < cores; ++i) {
    CoreUnderTest c;
    c.spec.name = "c" + std::to_string(i);
    c.spec.num_inputs = static_cast<int>(rng.next_range(1, 30));
    c.spec.num_outputs = static_cast<int>(rng.next_range(1, 30));
    const int chains = static_cast<int>(rng.next_range(1, 12));
    for (int j = 0; j < chains; ++j)
      c.spec.scan_chain_lengths.push_back(
          static_cast<int>(rng.next_range(1, 120)));
    c.spec.num_patterns = static_cast<int>(rng.next_range(4, 30));
    CubeSynthParams p;
    p.num_cells = c.spec.stimulus_bits_per_pattern();
    p.num_patterns = c.spec.num_patterns;
    p.care_density = 0.01 + 0.4 * rng.next_double();
    c.cubes = synthesize_cubes(p, rng.next_u64());
    c.validate();
    soc.cores.push_back(std::move(c));
  }
  return soc;
}

/// Shared d695 optimizer (same trick as portfolio_test: the SocSpec is
/// static so the optimizer's pointer stays valid, tables build once).
const SocOptimizer& d695_optimizer() {
  static const SocSpec soc = make_d695();
  static const SocOptimizer opt(soc, [] {
    ExploreOptions e;
    e.max_width = 16;
    e.max_chains = 64;
    return e;
  }());
  return opt;
}

/// The full one-line JSON report with cpu zeroed — what --json emits and
/// what the goldens pin; any schedule, scenario-key or metric drift shows.
std::string report_bytes(const SocOptimizer& opt, const OptimizerOptions& o) {
  OptimizationResult r = opt.optimize(o);
  r.cpu_seconds = 0.0;
  return compact_json(result_to_json(r, opt.soc())) + "\n";
}

TEST(ScenarioDifferential, NoOpScenariosAreBitIdenticalToDefault) {
  std::vector<const SocOptimizer*> opts;
  std::vector<std::unique_ptr<SocSpec>> fuzz_socs;
  std::vector<std::unique_ptr<SocOptimizer>> fuzz_opts;
  opts.push_back(&d695_optimizer());
  for (const std::uint64_t seed : {0x5CE7A410ULL, 0x5CE7A411ULL}) {
    fuzz_socs.push_back(std::make_unique<SocSpec>(fuzzed_soc(seed)));
    ExploreOptions e;
    e.max_width = 16;
    e.max_chains = 64;
    fuzz_opts.push_back(
        std::make_unique<SocOptimizer>(*fuzz_socs.back(), e));
    opts.push_back(fuzz_opts.back().get());
  }

  for (const SocOptimizer* opt : opts) {
    OptimizerOptions base;
    base.width = 16;
    base.mode = ArchMode::PerCore;

    for (const int jobs : {1, 4, 8}) {
      SCOPED_TRACE(opt->soc().name + " jobs=" + std::to_string(jobs));
      runtime::ThreadPool pool(jobs);
      runtime::PoolScope scope(&pool);
      const std::string golden = report_bytes(*opt, base);
      // No "scenario" key in the default report — the byte-identity rule.
      EXPECT_EQ(golden.find("\"scenario\""), std::string::npos);

      // preempt without a cap: nothing to preempt for.
      OptimizerOptions preempt = base;
      preempt.preemptive = true;
      EXPECT_EQ(report_bytes(*opt, preempt), golden);

      // An explicit zero cap is the unlimited default.
      OptimizerOptions zero_cap = base;
      zero_cap.power_budget_mw = 0.0;
      EXPECT_EQ(report_bytes(*opt, zero_cap), golden);
    }
  }
}

TEST(ScenarioIncremental, MatchesFromScratchUnderConstrainedScenarios) {
  const SocOptimizer& opt = d695_optimizer();

  // A binding but feasible cap, derived like power_test does: below the
  // free run's peak, above the largest single core.
  OptimizerOptions base;
  base.width = 16;
  base.mode = ArchMode::PerCore;
  const OptimizationResult free_run = opt.optimize(base);
  double floor_mw = 0.0;
  for (const auto& c : opt.soc().cores)
    floor_mw = std::max(floor_mw, core_peak_power(c.spec));
  const double cap = std::max(free_run.peak_power_mw * 0.7, floor_mw + 0.1);

  for (const char* spec :
       {"cap", "cap+preempt", "hier", "cap+hier", "cap+preempt+hier"}) {
    SCOPED_TRACE(spec);
    OptimizerOptions full = base;
    const std::string sp(spec);
    if (sp.find("cap") != std::string::npos) full.power_budget_mw = cap;
    if (sp.find("preempt") != std::string::npos) full.preemptive = true;
    if (sp.find("hier") != std::string::npos) full.hierarchical = true;
    full.incremental = false;
    OptimizerOptions inc = full;
    inc.incremental = true;

    for (const int jobs : {1, 4}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      runtime::ThreadPool pool(jobs);
      runtime::PoolScope scope(&pool);
      OptimizationResult rf = opt.optimize(full);
      OptimizationResult ri = opt.optimize(inc);
      rf.cpu_seconds = ri.cpu_seconds = 0.0;
      EXPECT_EQ(result_to_json(ri, opt.soc()), result_to_json(rf, opt.soc()));
    }
  }
}

TEST(ScenarioIncremental, MatchesFromScratchOnHierarchicalSynthSoc) {
  SyntheticSocParams p;
  p.num_cores = 16;
  p.max_inputs = 12;
  p.max_outputs = 12;
  p.max_chains = 6;
  p.max_chain_length = 32;
  p.max_patterns = 10;
  p.power_profile = true;
  p.hierarchy = true;
  const SocSpec soc = make_synthetic_soc(p, 0x5CE7A412ULL);
  ASSERT_FALSE(soc.hierarchy_parent.empty());
  ExploreOptions e;
  e.max_width = 12;
  e.max_chains = 32;
  const SocOptimizer opt(soc, e);

  OptimizerOptions full;
  full.width = 16;
  full.mode = ArchMode::PerCore;
  full.hierarchical = true;
  full.incremental = false;
  OptimizerOptions inc = full;
  inc.incremental = true;

  runtime::ThreadPool pool(4);
  runtime::PoolScope scope(&pool);
  OptimizationResult rf = opt.optimize(full);
  OptimizationResult ri = opt.optimize(inc);
  rf.cpu_seconds = ri.cpu_seconds = 0.0;
  EXPECT_EQ(result_to_json(ri, soc), result_to_json(rf, soc));
  EXPECT_NO_THROW(validate_hierarchy_exclusion(
      ri.schedule, HierarchySpec{soc.hierarchy_parent}));
}

TEST(ScenarioReport, NonDefaultScenarioNamesItselfInJson) {
  const SocOptimizer& opt = d695_optimizer();
  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;
  double floor_mw = 0.0;
  for (const auto& c : opt.soc().cores)
    floor_mw = std::max(floor_mw, core_peak_power(c.spec));
  o.power_budget_mw = floor_mw + 1.0;
  const OptimizationResult r = opt.optimize(o);
  EXPECT_EQ(r.scenario, scenario_of(o));
  const std::string json = result_to_json(r, opt.soc());
  EXPECT_NE(json.find("\"scenario\": \"" + r.scenario.to_string() + "\""),
            std::string::npos)
      << json;
}

// --------------------------------------------------- synthx determinism

SyntheticSocParams synthx_params(int cores = 24) {
  SyntheticSocParams p;
  p.num_cores = cores;
  p.max_inputs = 12;
  p.max_outputs = 12;
  p.max_chains = 6;
  p.max_chain_length = 32;
  p.max_patterns = 10;
  p.power_profile = true;
  p.hierarchy = true;
  return p;
}

std::string soc_text(const SocSpec& soc) {
  std::ostringstream os;
  write_soc_text(os, soc);
  return os.str();
}

TEST(ScenarioSynth, DecorationsAreDeterministicAcrossRunsAndLanes) {
  const SyntheticSocParams p = synthx_params();
  std::string first;
  for (const int jobs : {1, 4, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    runtime::ThreadPool pool(jobs);
    runtime::PoolScope scope(&pool);
    const std::string a = soc_text(make_synthetic_soc(p, 0xD00D));
    const std::string b = soc_text(make_synthetic_soc(p, 0xD00D));
    EXPECT_EQ(a, b);  // same run, byte-identical
    if (first.empty())
      first = a;
    else
      EXPECT_EQ(a, first);  // and across lane counts
  }
  // A different seed moves the decorations.
  EXPECT_NE(soc_text(make_synthetic_soc(p, 0xD00E)), first);
}

TEST(ScenarioSynth, HierarchyStreamIndependentOfPowerFlag) {
  SyntheticSocParams with_power = synthx_params();
  SyntheticSocParams without = with_power;
  without.power_profile = false;
  const SocSpec a = make_synthetic_soc(with_power, 0xBEEF);
  const SocSpec b = make_synthetic_soc(without, 0xBEEF);
  ASSERT_FALSE(a.hierarchy_parent.empty());
  EXPECT_EQ(a.hierarchy_parent, b.hierarchy_parent);
  for (const auto& c : b.cores) EXPECT_EQ(c.spec.power_scale, 1.0);
}

TEST(ScenarioSynth, DecorationsNeverPerturbTheCores) {
  // Stripping the power/hierarchy lines from a decorated SOC's text form
  // must leave exactly the plain SOC's text: the extension draws come from
  // a separate stream AFTER the core loop.
  // (The "soc" header is normalized away too: extended SOCs name
  // themselves synthx-... instead of synth-....)
  const auto undecorated = [](const std::string& text) {
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("soc ", 0) == 0 || line.rfind("hierarchy", 0) == 0 ||
          line.rfind("  power ", 0) == 0)
        continue;
      out << line << "\n";
    }
    return out.str();
  };
  SyntheticSocParams plain = synthx_params();
  plain.power_profile = false;
  plain.hierarchy = false;
  EXPECT_EQ(
      undecorated(soc_text(make_synthetic_soc(synthx_params(), 0xABBA))),
      undecorated(soc_text(make_synthetic_soc(plain, 0xABBA))));
}

TEST(ScenarioSynth, HierarchyIsValidDepthCappedAndBackwardNesting) {
  const SyntheticSocParams p = synthx_params(48);
  const SocSpec soc = make_synthetic_soc(p, 0xCAFE);
  ASSERT_EQ(static_cast<int>(soc.hierarchy_parent.size()), p.num_cores);
  HierarchySpec h;
  h.parent = soc.hierarchy_parent;
  EXPECT_NO_THROW(h.validate());
  bool any_nested = false;
  for (int i = 0; i < h.num_cores(); ++i) {
    if (h.parent[static_cast<std::size_t>(i)] >= 0) {
      any_nested = true;
      EXPECT_LT(h.parent[static_cast<std::size_t>(i)], i);  // earlier core
    }
    EXPECT_LE(h.depth(i), p.max_hierarchy_depth);
  }
  EXPECT_TRUE(any_nested);  // 48 cores at 0.4 child fraction must nest some
}

TEST(ScenarioSynth, DecoratedSocRoundTripsThroughText) {
  const SocSpec soc = make_synthetic_soc(synthx_params(), 0xF00D);
  std::istringstream in(soc_text(soc));
  const SocSpec back = read_soc_text(in);
  EXPECT_EQ(back.hierarchy_parent, soc.hierarchy_parent);
  ASSERT_EQ(back.num_cores(), soc.num_cores());
  bool any_scaled = false;
  for (int i = 0; i < soc.num_cores(); ++i) {
    const double want = soc.cores[static_cast<std::size_t>(i)].spec.power_scale;
    EXPECT_EQ(back.cores[static_cast<std::size_t>(i)].spec.power_scale, want)
        << i;  // to_chars shortest form round-trips the exact bits
    any_scaled |= want != 1.0;
  }
  EXPECT_TRUE(any_scaled);
  EXPECT_EQ(soc_text(back), soc_text(soc));
}

}  // namespace
}  // namespace soctest
