#include "bitvec/ternary_vector.hpp"

#include <gtest/gtest.h>

#include "socgen/rng.hpp"

namespace soctest {
namespace {

TEST(TernaryVector, DefaultIsAllX) {
  TernaryVector v(130);
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v.get(i), Trit::X);
  EXPECT_EQ(v.count_care(), 0u);
  EXPECT_EQ(v.count(Trit::X), 130u);
}

TEST(TernaryVector, SetGetRoundTrip) {
  TernaryVector v(70);
  v.set(0, Trit::One);
  v.set(63, Trit::Zero);
  v.set(64, Trit::One);
  v.set(69, Trit::Zero);
  EXPECT_EQ(v.get(0), Trit::One);
  EXPECT_EQ(v.get(63), Trit::Zero);
  EXPECT_EQ(v.get(64), Trit::One);
  EXPECT_EQ(v.get(69), Trit::Zero);
  EXPECT_EQ(v.get(1), Trit::X);
  EXPECT_EQ(v.count_care(), 4u);
  EXPECT_EQ(v.count(Trit::One), 2u);
  EXPECT_EQ(v.count(Trit::Zero), 2u);
  EXPECT_EQ(v.count(Trit::X), 66u);
  // Overwrite back to X.
  v.set(0, Trit::X);
  EXPECT_EQ(v.get(0), Trit::X);
  EXPECT_EQ(v.count_care(), 3u);
}

TEST(TernaryVector, StringRoundTrip) {
  const std::string s = "01X10-x01";
  TernaryVector v = TernaryVector::from_string(s);
  EXPECT_EQ(v.to_string(), "01X10XX01");
  EXPECT_EQ(TernaryVector::from_string(v.to_string()), v);
  EXPECT_THROW(TernaryVector::from_string("012"), std::invalid_argument);
}

TEST(TernaryVector, FromStringNamesBadCharacterAndPosition) {
  try {
    TernaryVector::from_string("01Xq1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'q'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("position 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("from_string"), std::string::npos) << msg;
  }
  // A '2' (the classic near-miss for a ternary alphabet) is rejected too.
  try {
    TernaryVector::from_string("2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'2'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("position 0"), std::string::npos);
  }
}

TEST(TernaryVector, FillXWith) {
  TernaryVector v = TernaryVector::from_string("0X1XX");
  v.fill_x_with(true);
  EXPECT_EQ(v.to_string(), "01111");
  TernaryVector u = TernaryVector::from_string("0X1XX");
  u.fill_x_with(false);
  EXPECT_EQ(u.to_string(), "00100");
  EXPECT_EQ(u.count_care(), 5u);
}

TEST(TernaryVector, FillXWithPreservesTailInvariant) {
  // A size crossing a word boundary: tail bits beyond size must stay clear
  // so equality still works after filling.
  TernaryVector a(65);
  a.set(64, Trit::Zero);
  a.fill_x_with(true);
  TernaryVector b(65);
  for (std::size_t i = 0; i < 64; ++i) b.set(i, Trit::One);
  b.set(64, Trit::Zero);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.count(Trit::X), 0u);
}

TEST(TernaryVector, PaddingStaysClearAcrossGrowFillShrink) {
  // Regression for the padding-bit hazard: fill_x_with sets whole words
  // before re-clearing the tail, and resize strands old tail bits when
  // shrinking. Any leaked bit past size() makes the word-parallel
  // count/count_care silently overcount.
  TernaryVector v;
  for (int i = 0; i < 70; ++i) v.push_back(Trit::X);  // grow across word 0/1
  EXPECT_EQ(v.size(), 70u);
  v.fill_x_with(true);  // word 1 is written whole; bits 70..127 must clear
  EXPECT_EQ(v.count(Trit::One), 70u);
  EXPECT_EQ(v.count_care(), 70u);

  v.resize(65);  // shrink across the boundary: bits 65..69 were 1
  EXPECT_EQ(v.size(), 65u);
  EXPECT_EQ(v.count(Trit::One), 65u);
  EXPECT_EQ(v.count_care(), 65u);
  EXPECT_EQ(v.count(Trit::X), 0u);

  v.resize(64);  // shrink to an exact word boundary
  EXPECT_EQ(v.count(Trit::One), 64u);

  v.resize(130);  // regrow: new positions must read as X, not leaked 1s
  EXPECT_EQ(v.count(Trit::One), 64u);
  EXPECT_EQ(v.count(Trit::X), 66u);
  for (std::size_t i = 64; i < 130; ++i) EXPECT_EQ(v.get(i), Trit::X);

  // push_back after a shrink must land on a clean word.
  v.resize(63);
  v.push_back(Trit::Zero);
  v.push_back(Trit::One);
  EXPECT_EQ(v.size(), 65u);
  EXPECT_EQ(v.get(63), Trit::Zero);
  EXPECT_EQ(v.get(64), Trit::One);
  EXPECT_EQ(v.count_care(), 65u);

  // Equality must hold against a vector built fresh the same way: leaked
  // padding would break operator== even with identical logical contents.
  TernaryVector w(65);
  for (std::size_t i = 0; i < 63; ++i) w.set(i, Trit::One);
  w.set(63, Trit::Zero);
  w.set(64, Trit::One);
  EXPECT_EQ(v, w);
}

TEST(TernaryVector, MergeWithKeepsPaddingClear) {
  TernaryVector a(100), b(100);
  for (std::size_t i = 0; i < 100; i += 3) a.set(i, Trit::One);
  for (std::size_t i = 1; i < 100; i += 3) b.set(i, Trit::Zero);
  b.fill_x_with(true);  // b: word 1 fully written, tail cleared
  ASSERT_TRUE(a.compatible_with(b));
  a.merge_with(b);
  EXPECT_EQ(a.count_care(), 100u);
  EXPECT_EQ(a.count(Trit::X), 0u);
  EXPECT_EQ(a.count(Trit::Zero), 33u);  // positions 1, 4, ..., 97
}

TEST(TernaryVector, PushBack) {
  TernaryVector v;
  for (int i = 0; i < 200; ++i)
    v.push_back(i % 3 == 0 ? Trit::One : (i % 3 == 1 ? Trit::Zero : Trit::X));
  EXPECT_EQ(v.size(), 200u);
  EXPECT_EQ(v.get(0), Trit::One);
  EXPECT_EQ(v.get(1), Trit::Zero);
  EXPECT_EQ(v.get(2), Trit::X);
  EXPECT_EQ(v.count(Trit::One), 67u);
}

TEST(TernaryVector, Compatibility) {
  const TernaryVector a = TernaryVector::from_string("01XX1");
  const TernaryVector b = TernaryVector::from_string("0X0X1");
  const TernaryVector c = TernaryVector::from_string("11XX1");
  EXPECT_TRUE(a.compatible_with(b));
  EXPECT_TRUE(b.compatible_with(a));
  EXPECT_FALSE(a.compatible_with(c));
  EXPECT_FALSE(a.compatible_with(TernaryVector(4)));  // size mismatch
}

TEST(TernaryVector, RandomizedCountsAgreeWithNaive) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(300);
    TernaryVector v(n);
    std::size_t ones = 0, zeros = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const int r = static_cast<int>(rng.next_below(3));
      v.set(i, static_cast<Trit>(r));
      ones += r == 1;
      zeros += r == 0;
    }
    EXPECT_EQ(v.count(Trit::One), ones);
    EXPECT_EQ(v.count(Trit::Zero), zeros);
    EXPECT_EQ(v.count(Trit::X), n - ones - zeros);
    EXPECT_EQ(v.count_care(), ones + zeros);
  }
}

}  // namespace
}  // namespace soctest
