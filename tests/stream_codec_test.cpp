// Round-trip property of the full stream codec, parameterized across
// wrapper geometries and cube densities: decoding the encoded stream must
// reproduce every care bit, and X positions must hold each slice's fill.
#include <gtest/gtest.h>

#include <tuple>

#include "codec/stream_decoder.hpp"
#include "codec/stream_encoder.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

using Geometry = std::tuple<int /*m*/, double /*density*/>;

class StreamRoundTrip : public ::testing::TestWithParam<Geometry> {};

TEST_P(StreamRoundTrip, DecodeReproducesCareBits) {
  const auto [m, density] = GetParam();
  const CoreUnderTest core =
      testutil::flex_core("c", 600, 8, density,
                          static_cast<std::uint64_t>(m * 1000 + 7));
  if (m > core.spec.max_wrapper_chains()) GTEST_SKIP();

  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());
  const EncodedStream stream = encode_stream(map, core.cubes);

  StreamDecoder dec(stream.params);
  const std::vector<DecodedSlice> slices = dec.decode(stream.words);
  ASSERT_EQ(static_cast<int>(slices.size()),
            stream.patterns * stream.slices_per_pattern);

  for (int p = 0; p < core.cubes.num_patterns(); ++p) {
    const int base = p * stream.slices_per_pattern;
    for (const CareBit& b : core.cubes.pattern(p)) {
      const DecodedSlice& slice =
          slices[static_cast<std::size_t>(base) + map.slice_of_cell(b.cell)];
      EXPECT_EQ(slice[map.chain_of_cell(b.cell)], b.value)
          << "pattern " << p << " cell " << b.cell;
    }
  }
}

TEST_P(StreamRoundTrip, VolumeAccounting) {
  const auto [m, density] = GetParam();
  const CoreUnderTest core = testutil::flex_core("c", 400, 5, density);
  if (m > core.spec.max_wrapper_chains()) GTEST_SKIP();
  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());
  const EncodedStream stream = encode_stream(map, core.cubes);
  EXPECT_EQ(stream.compressed_bits(),
            stream.codeword_count() * stream.params.w);
  // Every pattern needs at least one codeword per slice.
  EXPECT_GE(stream.codeword_count(),
            static_cast<std::int64_t>(stream.patterns) *
                stream.slices_per_pattern);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StreamRoundTrip,
    ::testing::Combine(::testing::Values(2, 3, 4, 7, 8, 16, 33, 64, 128, 255),
                       ::testing::Values(0.01, 0.05, 0.3, 0.7)));

TEST(StreamDecoder, RejectsMalformedStreams) {
  const CodecParams p = CodecParams::for_chains(8);  // k = 4, escape = 7
  StreamDecoder dec(p);
  const auto head = [&](bool t, int count) {
    return Codeword{Opcode::Head, p.head_operand(t, count)};
  };
  // Starts with a non-Head word.
  EXPECT_THROW(dec.decode({{Opcode::Single, 1}}), std::invalid_argument);
  // Head announcing one body word, followed by nothing (truncated).
  EXPECT_THROW(dec.decode({head(true, 1)}), std::invalid_argument);
  // Group without Data.
  EXPECT_THROW(dec.decode({head(true, 2), {Opcode::Group, 0},
                           {Opcode::Single, 2}}),
               std::invalid_argument);
  // Data without Group.
  EXPECT_THROW(dec.decode({head(true, 1), {Opcode::Data, 3}}),
               std::invalid_argument);
  // Single index out of range (> m).
  EXPECT_THROW(dec.decode({head(true, 1), {Opcode::Single, 9}}),
               std::invalid_argument);
  // END marker while not in escape mode.
  EXPECT_THROW(dec.decode({head(true, 1), {Opcode::Single, 8}}),
               std::invalid_argument);
  // Misaligned group base (k = 4 for m = 8).
  EXPECT_THROW(dec.decode({head(true, 2), {Opcode::Group, 2},
                           {Opcode::Data, 0}}),
               std::invalid_argument);
  // Group pair straddling the announced count.
  EXPECT_THROW(dec.decode({head(true, 1), {Opcode::Group, 0},
                           {Opcode::Data, 0}}),
               std::invalid_argument);
  // Head inside a slice body.
  EXPECT_THROW(dec.decode({head(true, 2), head(true, 0)}),
               std::invalid_argument);
  // A well-formed empty slice decodes fine.
  EXPECT_EQ(dec.decode({head(false, 0)}).size(), 1u);
  // A well-formed escape-mode slice decodes fine.
  const auto slices = dec.decode({head(true, p.escape_count()),
                                  {Opcode::Single, 5},
                                  {Opcode::Single, 8}});
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_TRUE(slices[0][5]);
}

}  // namespace
}  // namespace soctest
