// Greedy scheduler unit tests + heuristic-vs-exact quality bound, plus
// Schedule::validate fault detection.
#include <gtest/gtest.h>

#include "sched/exact_scheduler.hpp"
#include "sched/gantt.hpp"
#include "sched/greedy_scheduler.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

CostFn uniform_cost(const std::vector<std::int64_t>& times) {
  return [times](int core, int /*bus*/) {
    BusAccessCost c;
    c.time = times[static_cast<std::size_t>(core)];
    c.volume_bits = c.time * 2;
    c.choice.test_time = c.time;
    return c;
  };
}

TEST(GreedyScheduler, LptOnIdenticalBuses) {
  // Classic LPT instance: times {7,6,5,4,3} on 2 buses. Pure LPT packs
  // 7+4+3 / 6+5 -> makespan 14; the refinement pass recovers the optimum 13.
  const std::vector<std::int64_t> t = {3, 7, 4, 6, 5};
  GreedyOptions pure;
  pure.refine_passes = 0;
  const Schedule lpt = greedy_schedule(5, 2, uniform_cost(t), t, pure);
  lpt.validate(5);
  EXPECT_EQ(lpt.makespan(), 14);
  EXPECT_EQ(lpt.total_volume_bits, 2 * (3 + 7 + 4 + 6 + 5));

  const Schedule refined = greedy_schedule(5, 2, uniform_cost(t), t);
  refined.validate(5);
  EXPECT_EQ(refined.makespan(), 13);
}

TEST(GreedyScheduler, SingleBusSumsTimes) {
  const std::vector<std::int64_t> t = {10, 20, 30};
  const Schedule s = greedy_schedule(3, 1, uniform_cost(t), t);
  s.validate(3);
  EXPECT_EQ(s.makespan(), 60);
  // Longest first on the single bus.
  EXPECT_EQ(s.entries[0].core, 2);
}

TEST(GreedyScheduler, BusDependentCosts) {
  // Bus 1 is twice as fast for core 0; scheduler must exploit that.
  const CostFn cost = [](int core, int bus) {
    BusAccessCost c;
    c.time = core == 0 ? (bus == 1 ? 10 : 20) : 10;
    return c;
  };
  const Schedule s = greedy_schedule(1, 2, cost, {20});
  EXPECT_EQ(s.entries[0].bus, 1);
  EXPECT_EQ(s.makespan(), 10);
}

TEST(GreedyScheduler, RejectsBadArguments) {
  EXPECT_THROW(greedy_schedule(2, 0, uniform_cost({1, 2}), {1, 2}),
               std::invalid_argument);
  EXPECT_THROW(greedy_schedule(2, 1, uniform_cost({1, 2}), {1}),
               std::invalid_argument);
}

TEST(Schedule, ValidateDetectsCorruption) {
  const std::vector<std::int64_t> t = {5, 6, 7};
  Schedule s = greedy_schedule(3, 2, uniform_cost(t), t);
  s.validate(3);

  Schedule missing = s;
  missing.entries.pop_back();
  EXPECT_THROW(missing.validate(3), std::logic_error);

  Schedule dup = s;
  dup.entries.push_back(dup.entries[0]);
  EXPECT_THROW(dup.validate(3), std::logic_error);

  Schedule gap = s;
  gap.entries[1].start += 1;
  EXPECT_THROW(gap.validate(3), std::logic_error);

  Schedule finish = s;
  finish.bus_finish[0] += 5;
  EXPECT_THROW(finish.validate(3), std::logic_error);
}

TEST(ExactScheduler, SolvesTinyInstanceOptimally) {
  // Two cores, W=4: cost = ceil(work / width). Best: one bus of 4 shared?
  // work {12, 4}: single bus w=4 -> 3 + 1 = 4; two buses 2+2 -> max(6, 2)=6.
  const auto cost = [](int core, int width) {
    const std::int64_t work[] = {12, 4};
    return (work[core] + width - 1) / width;
  };
  const auto r = exact_optimize(2, 4, cost);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->makespan, 4);
  EXPECT_EQ(r->arch.num_buses(), 1);
}

TEST(ExactScheduler, RefusesOversizedInstances) {
  const auto cost = [](int, int) { return 1ll; };
  ExactLimits limits;
  limits.max_cores = 3;
  EXPECT_FALSE(exact_optimize(4, 8, cost, limits).has_value());
}

TEST(ExactScheduler, GreedyWithinFactorOfExactOnRandomInstances) {
  // The greedy step-4 heuristic (with the trivial single-partition
  // architecture fixed) must stay within 1.5x of the exact optimum on
  // random width-sensitive instances. (LPT's bound on identical machines
  // is 4/3; bus-dependent times loosen it slightly.)
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5 + static_cast<int>(rng.next_below(3));
    const int W = 6;
    std::vector<std::int64_t> work(static_cast<std::size_t>(n));
    for (auto& w : work) w = 20 + static_cast<std::int64_t>(rng.next_below(200));

    const auto exact_cost = [&](int core, int width) {
      return (work[static_cast<std::size_t>(core)] + width - 1) / width;
    };
    const auto exact = exact_optimize(n, W, exact_cost);
    ASSERT_TRUE(exact.has_value());

    // Greedy on the exact solver's own architecture.
    const TamArchitecture arch = exact->arch;
    const CostFn cost = [&](int core, int bus) {
      BusAccessCost c;
      c.time = exact_cost(core, arch.widths[static_cast<std::size_t>(bus)]);
      return c;
    };
    std::vector<std::int64_t> ref(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      ref[static_cast<std::size_t>(i)] = cost(i, 0).time;
    const Schedule s = greedy_schedule(n, arch.num_buses(), cost, ref);
    s.validate(n);
    EXPECT_LE(s.makespan(), (exact->makespan * 3) / 2 + 1)
        << "trial " << trial;
    EXPECT_GE(s.makespan(), exact->makespan);
  }
}

TEST(Gantt, RendersEveryBusAndCore) {
  const std::vector<std::int64_t> t = {50, 60};
  const Schedule s = greedy_schedule(2, 2, uniform_cost(t), t);
  const TamArchitecture arch{{3, 2}};
  const std::string g = render_gantt(s, arch, {"alpha", "beta"});
  EXPECT_NE(g.find("TAM0"), std::string::npos);
  EXPECT_NE(g.find("TAM1"), std::string::npos);
  EXPECT_NE(g.find("alpha"), std::string::npos);
  EXPECT_NE(g.find("beta"), std::string::npos);
  EXPECT_NE(g.find("makespan = 60"), std::string::npos);
}

}  // namespace
}  // namespace soctest
