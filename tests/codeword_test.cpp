#include "codec/codeword.hpp"

#include <gtest/gtest.h>

namespace soctest {
namespace {

TEST(CodecParams, GeometryFollowsPaperFormula) {
  const CodecParams p = CodecParams::for_chains(255);
  EXPECT_EQ(p.k, 8);
  EXPECT_EQ(p.w, 10);
  EXPECT_EQ(p.num_groups(), 32);
  EXPECT_EQ(p.group_start(3), 24);
  EXPECT_EQ(p.group_size(31), 7);  // 255 = 31*8 + 7

  const CodecParams q = CodecParams::for_chains(7);
  EXPECT_EQ(q.k, 3);
  EXPECT_EQ(q.w, 5);
  EXPECT_EQ(q.num_groups(), 3);
  EXPECT_EQ(q.group_size(2), 1);

  EXPECT_THROW(CodecParams::for_chains(1), std::invalid_argument);
  EXPECT_THROW(CodecParams::for_chains(0), std::invalid_argument);
}

TEST(Codeword, PackUnpackRoundTrip) {
  const CodecParams p = CodecParams::for_chains(100);  // k=7, w=9
  for (int op = 0; op < 4; ++op) {
    for (std::uint32_t operand : {0u, 1u, 63u, 100u, 127u}) {
      const Codeword cw{static_cast<Opcode>(op), operand};
      const std::uint32_t bits = pack(cw, p);
      EXPECT_LT(bits, 1u << p.w);
      EXPECT_EQ(unpack(bits, p), cw);
    }
  }
}

TEST(Codeword, PackRejectsOverflow) {
  const CodecParams p = CodecParams::for_chains(7);  // k=3
  EXPECT_THROW(pack({Opcode::Single, 8}, p), std::invalid_argument);
  EXPECT_THROW(unpack(1u << p.w, p), std::invalid_argument);
}

TEST(Codeword, ToStringNames) {
  EXPECT_EQ(to_string(Codeword{Opcode::Head, 1}), "HEAD(1)");
  EXPECT_EQ(to_string(Codeword{Opcode::Single, 3}), "SINGLE(3)");
  EXPECT_EQ(to_string(Codeword{Opcode::Group, 8}), "GROUP(8)");
  EXPECT_EQ(to_string(Codeword{Opcode::Data, 5}), "DATA(5)");
}

}  // namespace
}  // namespace soctest
