#include "bitvec/bit_util.hpp"

#include <gtest/gtest.h>

namespace soctest {
namespace {

TEST(BitUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_EQ(ceil_div(10'000'000'000, 3), 3'333'333'334);
}

TEST(BitUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_EQ(ceil_log2(std::uint64_t{1} << 63), 63);
}

// The paper's formula: w = ceil(log2(m+1)) + 2. Figure 2 uses w = 10 with
// m in [128, 255].
TEST(BitUtil, CodewordWidthMatchesPaper) {
  EXPECT_EQ(codeword_width_for_chains(128), 10);
  EXPECT_EQ(codeword_width_for_chains(255), 10);
  EXPECT_EQ(codeword_width_for_chains(127), 9);
  EXPECT_EQ(codeword_width_for_chains(256), 11);
  // The paper's single-bit-mode example: slice XXX1000 (m = 7) uses 3+2 bits.
  EXPECT_EQ(codeword_width_for_chains(7), 5);
}

TEST(BitUtil, WidthChainRangesAreConsistent) {
  for (int w = 4; w <= 18; ++w) {
    const int lo = min_chains_for_width(w);
    const int hi = max_chains_for_width(w);
    ASSERT_LE(lo, hi);
    EXPECT_EQ(codeword_width_for_chains(lo), w);
    EXPECT_EQ(codeword_width_for_chains(hi), w);
    if (lo > 1) {
      EXPECT_LT(codeword_width_for_chains(lo - 1), w);
    }
    EXPECT_GT(codeword_width_for_chains(hi + 1), w);
  }
  EXPECT_EQ(max_chains_for_width(2), 0);
}

TEST(BitUtil, EveryChainCountHasAWidth) {
  for (int m = 1; m <= 4096; ++m) {
    const int w = codeword_width_for_chains(m);
    EXPECT_GE(m, min_chains_for_width(w));
    EXPECT_LE(m, max_chains_for_width(w));
  }
}

}  // namespace
}  // namespace soctest
