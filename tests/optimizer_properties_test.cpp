// Cross-cutting optimizer properties on the real benchmark designs —
// slower than unit tests but pinned to the exact workloads the paper-level
// benches run, so bench regressions surface here first.
#include <gtest/gtest.h>

#include "ate/ate_memory.hpp"
#include "opt/annealing.hpp"
#include "opt/baselines.hpp"
#include "socgen/d695.hpp"
#include "socgen/systems.hpp"

namespace soctest {
namespace {

class D695Fixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc_ = new SocSpec(make_d695());
    ExploreOptions e;
    e.max_width = 32;
    e.max_chains = 128;
    opt_ = new SocOptimizer(*soc_, e);
  }
  static void TearDownTestSuite() {
    delete opt_;
    delete soc_;
    opt_ = nullptr;
    soc_ = nullptr;
  }
  static SocSpec* soc_;
  static SocOptimizer* opt_;
};
SocSpec* D695Fixture::soc_ = nullptr;
SocOptimizer* D695Fixture::opt_ = nullptr;

TEST_F(D695Fixture, DenseBenchmarkBarelyCompresses) {
  // The paper's d695 observation: ~44-66% care density leaves compression
  // little to do, so the planner mostly chooses direct access.
  const TdcComparison cmp = compare_with_without_tdc(*opt_, 24);
  EXPECT_LE(cmp.time_reduction_factor(), 1.5);
  EXPECT_GE(cmp.time_reduction_factor(), 1.0);
  int compressed = 0;
  for (const ScheduleEntry& e : cmp.with_tdc.schedule.entries)
    compressed += e.choice.mode == AccessMode::Compressed;
  EXPECT_LE(compressed, soc_->num_cores() / 2);
}

TEST_F(D695Fixture, ProposedDominatesPerTamUnderTamConstraint) {
  for (int w : {16, 32}) {
    const MethodComparison cmp =
        compare_methods(*opt_, w, ConstraintMode::TamWidth);
    EXPECT_LE(cmp.proposed.test_time, cmp.per_tam.test_time) << w;
    EXPECT_LE(cmp.proposed.test_time, cmp.fixed_w4.test_time) << w;
  }
}

TEST_F(D695Fixture, AteMemoryScalesDownWithVolume) {
  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::NoTdc;
  const AteMemoryReport without = ate_memory(opt_->optimize(o));
  o.mode = ArchMode::PerCore;
  const AteMemoryReport with = ate_memory(opt_->optimize(o));
  EXPECT_LE(with.total_bits, without.total_bits * 11 / 10);
  EXPECT_GT(with.max_channel_depth, 0);
}

TEST(OptimizerProperties, Fig4SocHeadlineShapes) {
  // The Figure-4 claims on the actual fig4 design, as a regression test.
  const SocSpec soc = make_fig4_soc();
  ExploreOptions e;
  e.max_width = 40;
  e.max_chains = 511;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 31;
  o.constraint = ConstraintMode::AteChannels;

  o.mode = ArchMode::NoTdc;
  const OptimizationResult a = opt.optimize(o);
  o.mode = ArchMode::PerTam;
  const OptimizationResult b = opt.optimize(o);
  o.mode = ArchMode::PerCore;
  const OptimizationResult c = opt.optimize(o);

  EXPECT_GT(a.test_time, b.test_time * 5);      // TDC cuts ~10x
  EXPECT_LE(c.test_time, b.test_time * 11 / 10);  // (c) matches (b)
  EXPECT_LT(c.wiring.onchip_wires * 2, b.wiring.onchip_wires);
  EXPECT_EQ(c.wiring.onchip_wires, 31);
}

TEST(OptimizerProperties, AnnealingMatchesHillClimbOnFig4) {
  const SocSpec soc = make_fig4_soc();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 128;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 12;
  const OptimizationResult hill = opt.optimize(o);
  AnnealingOptions a;
  a.iterations = 800;
  const OptimizationResult sa = optimize_annealing(opt, o, a);
  EXPECT_LE(sa.test_time, hill.test_time * 21 / 20);
  EXPECT_GE(sa.test_time, hill.test_time * 19 / 20);
}

}  // namespace
}  // namespace soctest
