// Shape checks for the paper's headline claims, run on scaled-down
// industrial-like workloads so the whole suite stays fast:
//   (a) Figure 2: test time is non-monotonic in the wrapper-chain count m
//       at fixed codeword width w;
//   (b) Figure 3: the per-width best test time is non-monotonic in w;
//   (c) Figure 4: per-core expansion matches per-TAM expansion's test time
//       with far fewer on-chip wires;
//   (d) Table 3: co-optimized TDC yields a large test-time and data-volume
//       reduction on sparse (industrial-density) cores.
#include <gtest/gtest.h>

#include "explore/core_explorer.hpp"
#include "opt/baselines.hpp"
#include "socgen/industrial.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

// Figures 2-3 are reproduced on the actual ckt-7 stand-in (the paper's
// running example). Explored once and shared across the suite.
class Ckt7Fixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const CoreUnderTest core = make_industrial_core("ckt-7");
    ExploreOptions e;
    e.max_width = 14;
    e.max_chains = core.spec.max_wrapper_chains();
    table_ = new CoreTable(explore_core(core, e));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static CoreTable* table_;
};
CoreTable* Ckt7Fixture::table_ = nullptr;

TEST_F(Ckt7Fixture, Fig2NonMonotonicInChainCount) {
  const auto band = table_->sweep_at_width(10);  // m in [128, 255]
  ASSERT_GT(band.size(), 100u);

  // Non-monotonic: the curve changes direction many times within the band.
  int increases = 0, decreases = 0;
  for (std::size_t i = 1; i < band.size(); ++i) {
    increases += band[i].test_time > band[i - 1].test_time;
    decreases += band[i].test_time < band[i - 1].test_time;
  }
  EXPECT_GT(increases, 10) << "tau(m) nearly monotone, unlike Fig 2";
  EXPECT_GT(decreases, 10);

  // The minimum does not sit at the maximum m (paper: m = 253, not 255).
  std::int64_t tmin = band.front().test_time, tmax = tmin;
  int argmin = band.front().m;
  for (const SweepPoint& pt : band) {
    if (pt.test_time < tmin) {
      tmin = pt.test_time;
      argmin = pt.m;
    }
    tmax = std::max(tmax, pt.test_time);
  }
  EXPECT_LT(argmin, band.back().m);
  // Meaningful spread between best and worst configuration (paper: 31%).
  EXPECT_GT(static_cast<double>(tmax - tmin) / static_cast<double>(tmax),
            0.05);
}

TEST_F(Ckt7Fixture, Fig3ExactWidthSeriesNonMonotonic) {
  // The exact-width series (no prefix-min) goes UP as w grows past the
  // sweet spot -- the paper's Figure 3 observation (tau at w = 11 below
  // tau at w = 12 and 13).
  bool any_increase = false;
  std::int64_t prev = -1;
  for (int w = 5; w <= 14; ++w) {
    const CoreChoice& c = table_->best_compressed_exact(w);
    if (c.m == 0) continue;
    if (prev >= 0 && c.test_time > prev) any_increase = true;
    prev = c.test_time;
  }
  EXPECT_TRUE(any_increase)
      << "exact-width test time monotone in w, unlike Fig 3";
}

TEST(PaperProperties, Fig4PerCoreMatchesPerTamTimeWithFewerWires) {
  SocSpec soc;
  soc.name = "fig4-like";
  soc.cores.push_back(testutil::flex_core("a", 5000, 16, 0.02, 1));
  soc.cores.push_back(testutil::flex_core("b", 7000, 20, 0.015, 2));
  soc.cores.push_back(testutil::flex_core("c", 3000, 12, 0.03, 3));
  soc.cores.push_back(testutil::flex_core("d", 9000, 18, 0.01, 4));
  ExploreOptions e;
  e.max_width = 31;
  e.max_chains = 128;
  const SocOptimizer opt(soc, e);

  // Same ATE budget: per-core and per-TAM reach comparable test times...
  OptimizerOptions o;
  o.width = 31;
  o.constraint = ConstraintMode::AteChannels;
  o.mode = ArchMode::PerCore;
  const OptimizationResult per_core = opt.optimize(o);
  o.mode = ArchMode::PerTam;
  const OptimizationResult per_tam = opt.optimize(o);
  EXPECT_LE(per_core.test_time, per_tam.test_time * 11 / 10);
  // ...but per-core routes compressed data: far fewer on-chip wires.
  EXPECT_LT(per_core.wiring.onchip_wires, per_tam.wiring.onchip_wires / 2);
}

TEST(PaperProperties, Table3LargeReductionOnIndustrialDensity) {
  SocSpec soc;
  soc.name = "mini-system";
  soc.cores.push_back(testutil::flex_core("a", 6000, 20, 0.015, 11));
  soc.cores.push_back(testutil::flex_core("b", 4000, 24, 0.02, 12));
  soc.cores.push_back(testutil::flex_core("c", 8000, 16, 0.01, 13));
  ExploreOptions e;
  e.max_width = 24;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);
  const TdcComparison cmp = compare_with_without_tdc(opt, 24);
  EXPECT_GE(cmp.time_reduction_factor(), 5.0);
  EXPECT_GE(cmp.volume_vs_uncompressed(), 5.0);
  EXPECT_GE(cmp.volume_vs_initial(), 5.0);
}

TEST(PaperProperties, CompressionHelpsLittleAtHighCareDensity) {
  // d695-like densities gain far less — consistent with the paper's small
  // benchmarks showing modest improvements.
  SocSpec soc;
  soc.name = "dense";
  soc.cores.push_back(testutil::flex_core("a", 1200, 16, 0.5, 21));
  soc.cores.push_back(testutil::flex_core("b", 900, 12, 0.6, 22));
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 128;
  const SocOptimizer opt(soc, e);
  const TdcComparison cmp = compare_with_without_tdc(opt, 16);
  EXPECT_LT(cmp.time_reduction_factor(), 3.0);
}

}  // namespace
}  // namespace soctest
