#include "report/svg.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sched/greedy_scheduler.hpp"

namespace soctest {
namespace {

Schedule tiny_schedule() {
  const std::vector<std::int64_t> t = {40, 30, 20};
  const CostFn cost = [&t](int core, int) {
    BusAccessCost c;
    c.time = t[static_cast<std::size_t>(core)];
    return c;
  };
  return greedy_schedule(3, 2, cost, t);
}

TEST(Svg, GanttContainsAllElements) {
  const Schedule s = tiny_schedule();
  const TamArchitecture arch{{5, 3}};
  SvgOptions o;
  o.title = "demo <gantt>";
  const std::string svg = gantt_svg(s, arch, {"a&b", "c2", "c3"}, o);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("TAM0"), std::string::npos);
  EXPECT_NE(svg.find("TAM1"), std::string::npos);
  // XML escaping of titles and names.
  EXPECT_NE(svg.find("demo &lt;gantt&gt;"), std::string::npos);
  EXPECT_NE(svg.find("a&amp;b"), std::string::npos);
  EXPECT_EQ(svg.find("a&b"), std::string::npos);
  // One rect per scheduled core.
  std::size_t rects = 0, at = 0;
  while ((at = svg.find("<rect", at)) != std::string::npos) {
    ++rects;
    ++at;
  }
  EXPECT_EQ(rects, 3u);
  EXPECT_NE(svg.find("makespan"), std::string::npos);
}

TEST(Svg, ChartRendersSeries) {
  ChartSeries series;
  for (int i = 0; i < 10; ++i) {
    series.x.push_back(i);
    series.y.push_back(100 - i * i);
  }
  ChartOptions copts;
  copts.title = "tau vs m";
  copts.x_label = "m";
  copts.y_label = "tau";
  const std::string svg = chart_svg(series, copts);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  std::size_t circles = 0, at = 0;
  while ((at = svg.find("<circle", at)) != std::string::npos) {
    ++circles;
    ++at;
  }
  EXPECT_EQ(circles, 10u);
  EXPECT_NE(svg.find("tau vs m"), std::string::npos);

  ChartSeries empty;
  EXPECT_THROW(chart_svg(empty, copts), std::invalid_argument);
}

TEST(Svg, WriteFile) {
  const std::string path = "/tmp/soctest_svg_test.svg";
  write_svg_file(path, "<svg/>");
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string content;
  std::getline(f, content);
  EXPECT_EQ(content, "<svg/>");
  std::remove(path.c_str());
  EXPECT_THROW(write_svg_file("/nonexistent/x.svg", "<svg/>"),
               std::runtime_error);
}

}  // namespace
}  // namespace soctest
