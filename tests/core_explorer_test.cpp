// CoreTable / CoreExplorer: lookup-table consistency with the underlying
// wrapper + codec models, prefix-minimization, and the sweep series used by
// the figure benches.
#include <gtest/gtest.h>

#include "bitvec/bit_util.hpp"
#include "codec/sparse_cost.hpp"
#include "explore/core_explorer.hpp"
#include "test_util.hpp"
#include "wrapper/slice_map.hpp"
#include "wrapper/time_model.hpp"

namespace soctest {
namespace {

ExploreOptions small_opts() {
  ExploreOptions o;
  o.max_width = 20;
  o.max_chains = 64;
  return o;
}

TEST(CoreExplorer, SweepPointsMatchDirectComputation) {
  const CoreUnderTest core = testutil::flex_core("c", 900, 6, 0.05);
  const CoreTable table = explore_core(core, small_opts());
  for (int m : {2, 7, 33, 64}) {
    const SweepPoint* pt = table.at_chains(m);
    ASSERT_NE(pt, nullptr) << m;
    const WrapperDesign d = design_wrapper(core.spec, m);
    const SliceMap map(d, core.cubes.num_cells());
    const SparseCostResult cost = sparse_stream_cost(map, core.cubes);
    EXPECT_EQ(pt->codewords, cost.total_codewords);
    EXPECT_EQ(pt->w, codeword_width_for_chains(m));
    EXPECT_EQ(pt->test_time,
              compressed_test_time(cost.total_codewords, d.scan_out_length,
                                   core.spec.num_patterns));
    EXPECT_EQ(pt->data_volume_bits, cost.total_codewords * pt->w);
  }
  EXPECT_EQ(table.at_chains(65), nullptr);
  EXPECT_EQ(table.at_chains(1), nullptr);
}

TEST(CoreExplorer, DirectEntriesMatchWrapperModel) {
  const CoreUnderTest core = testutil::small_core("c", 12, {40, 30, 20}, 9);
  const CoreTable table = explore_core(core, small_opts());
  for (int w = 1; w <= 20; ++w) {
    const int m = std::min(w, core.spec.max_wrapper_chains());
    const WrapperDesign d = design_wrapper(core.spec, m);
    const CoreChoice& c = table.direct(w);
    EXPECT_EQ(c.mode, AccessMode::Direct);
    EXPECT_EQ(c.m, m);
    EXPECT_EQ(c.test_time, uncompressed_test_time(d, core.spec.num_patterns));
  }
}

TEST(CoreExplorer, BestIsPrefixMinimizedAndNeverWorseThanDirect) {
  const CoreUnderTest core = testutil::flex_core("c", 1200, 8, 0.03);
  const CoreTable table = explore_core(core, small_opts());
  std::int64_t prev = table.best(1).test_time;
  for (int w = 1; w <= table.max_width(); ++w) {
    const CoreChoice& b = table.best(w);
    EXPECT_LE(b.test_time, table.direct(w).test_time);
    EXPECT_LE(b.test_time, prev);  // monotone non-increasing in w
    prev = b.test_time;
    const CoreChoice& e = table.best_compressed_exact(w);
    if (e.m != 0) {
      EXPECT_LE(b.test_time, e.test_time);
      EXPECT_EQ(codeword_width_for_chains(e.m), w);
    }
  }
}

TEST(CoreExplorer, CompressionWinsOnSparseCubes) {
  // At industrial densities the compressed choice must beat direct access
  // once m can exceed the TAM width substantially.
  const CoreUnderTest core = testutil::flex_core("c", 3000, 10, 0.02);
  const CoreTable table = explore_core(core, small_opts());
  const CoreChoice& b = table.best(8);
  EXPECT_EQ(b.mode, AccessMode::Compressed);
  EXPECT_LT(b.test_time, table.direct(8).test_time / 2);
}

TEST(CoreExplorer, DirectWinsOnDenseCubes) {
  // Near-fully-specified cubes cannot compress: codewords per slice exceed
  // the m/w expansion and the explorer must fall back to direct access.
  const CoreUnderTest core = testutil::flex_core("c", 400, 4, 0.95, 3);
  const CoreTable table = explore_core(core, small_opts());
  EXPECT_EQ(table.best(12).mode, AccessMode::Direct);
}

TEST(CoreExplorer, SweepAtWidthSelectsCorrectBand) {
  const CoreUnderTest core = testutil::flex_core("c", 800, 4, 0.05);
  const CoreTable table = explore_core(core, small_opts());
  const auto band = table.sweep_at_width(7);  // m in [16, 31]
  ASSERT_FALSE(band.empty());
  for (const SweepPoint& pt : band) {
    EXPECT_GE(pt.m, 16);
    EXPECT_LE(pt.m, 31);
  }
}

TEST(CoreTable, BuilderRejectsMisuse) {
  CoreTable t("x", 8);
  t.add_sweep_point({5, 5, 10, 20, 50, 3});
  EXPECT_THROW(t.add_sweep_point({5, 5, 10, 20, 50, 3}),
               std::invalid_argument);  // non-increasing m
  EXPECT_THROW(t.best(0), std::out_of_range);
  EXPECT_THROW(t.best(9), std::out_of_range);
  EXPECT_THROW(CoreTable("y", 0), std::invalid_argument);
}

TEST(CoreExplorer, ExploreSocCoversAllCores) {
  const SocSpec soc = testutil::mixed_soc();
  const auto tables = explore_soc(soc, small_opts());
  ASSERT_EQ(tables.size(), soc.cores.size());
  for (std::size_t i = 0; i < tables.size(); ++i)
    EXPECT_EQ(tables[i].core_name(), soc.cores[i].spec.name);
}

}  // namespace
}  // namespace soctest
