#include "fdr/fdr_codec.hpp"

#include <gtest/gtest.h>

#include "socgen/cube_synth.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

std::vector<bool> bits(const std::string& s) {
  std::vector<bool> v;
  for (char c : s) v.push_back(c == '1');
  return v;
}

TEST(FdrCodec, KnownCodewords) {
  // Group 1 covers runs {0, 1}: codewords "0"+1 tail bit.
  // "1" = run 0 -> prefix "0", tail "0" -> 00.
  EXPECT_EQ(fdr_encode(bits("1")), bits("00"));
  // "01" = run 1 -> "01".
  EXPECT_EQ(fdr_encode(bits("01")), bits("01"));
  // "001" = run 2 -> group 2 [2..5]: prefix "10", tail "00" -> 1000.
  EXPECT_EQ(fdr_encode(bits("001")), bits("1000"));
  // "000001" = run 5 -> group 2, tail 3 -> "1011".
  EXPECT_EQ(fdr_encode(bits("000001")), bits("1011"));
  // run 6 -> group 3 [6..13]: prefix "110", tail "000".
  EXPECT_EQ(fdr_encode(bits("0000001")), bits("110000"));
  // Two runs concatenate: "1" then "001".
  EXPECT_EQ(fdr_encode(bits("1001")), bits("001000"));
}

TEST(FdrCodec, RoundTripIncludingTrailingZeros) {
  for (const char* s :
       {"1", "0", "000", "1001", "00000000001", "10101", "0001000",
        "1111", "000000000000000000000000001", ""}) {
    const std::vector<bool> input = bits(s);
    const std::vector<bool> enc = fdr_encode(input);
    EXPECT_EQ(fdr_decode(enc, static_cast<std::int64_t>(input.size())), input)
        << "'" << s << "'";
  }
}

TEST(FdrCodec, RandomRoundTrip) {
  Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.next_below(2'000);
    const double p1 = 0.01 + 0.4 * rng.next_double();
    std::vector<bool> input(n);
    for (std::size_t i = 0; i < n; ++i) input[i] = rng.next_bool(p1);
    FdrStats stats;
    const std::vector<bool> enc = fdr_encode(input, &stats);
    EXPECT_EQ(stats.input_bits, static_cast<std::int64_t>(n));
    EXPECT_EQ(stats.output_bits, static_cast<std::int64_t>(enc.size()));
    EXPECT_EQ(fdr_decode(enc, static_cast<std::int64_t>(n)), input);
  }
}

TEST(FdrCodec, CompressesSparseStreamsWell) {
  // 1% ones: long runs -> strong compression (the regime FDR targets).
  Rng rng(7);
  std::vector<bool> input(50'000);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = rng.next_bool(0.01);
  FdrStats stats;
  fdr_encode(input, &stats);
  EXPECT_GT(stats.compression_ratio(), 3.0);

  // Dense streams expand instead (every 1 costs >= 2 bits).
  std::vector<bool> dense(10'000, true);
  FdrStats dstats;
  fdr_encode(dense, &dstats);
  EXPECT_LT(dstats.compression_ratio(), 1.0);
}

TEST(FdrCodec, DecodeRejectsTruncation) {
  EXPECT_THROW(fdr_decode(bits("1"), 4), std::invalid_argument);   // prefix
  EXPECT_THROW(fdr_decode(bits("10"), 4), std::invalid_argument);  // tail
}

TEST(FdrCodec, CompressCubesUsesXFill) {
  // All-X cubes serialize to zeros: one giant run, tiny output.
  TestCubeSet cubes(1'000);
  for (int p = 0; p < 5; ++p) cubes.add_pattern(std::vector<CareBit>{});
  const FdrStats stats = fdr_compress_cubes(cubes);
  EXPECT_EQ(stats.input_bits, 5'000);
  EXPECT_LT(stats.output_bits, 64);
  EXPECT_GT(stats.compression_ratio(), 50.0);
}

}  // namespace
}  // namespace soctest
