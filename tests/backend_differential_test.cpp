// Cross-backend differential harness. The fixed-bus search was refactored
// behind the ArchitectureBackend interface; these tests pin that the
// refactor changed NOTHING observable:
//   - the full one-line JSON report (the --json artifact, cpu_seconds
//     zeroed) is byte-identical to goldens captured from the pre-refactor
//     tree (tests/data/golden/*.json) on d695 and System1..4, at 1, 4 and
//     8 runtime lanes;
//   - a fixed-bus OptimizationResult never carries a backend tag (the JSON
//     key is emitted only for non-default backends — that is what keeps
//     the artifact byte-stable);
//   - the rect backend's climb is bit-identical across lane counts, and
//     race == better(fixed, rect) deterministically.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "opt/backend.hpp"
#include "opt/rect_backend.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/json.hpp"
#include "runtime/thread_pool.hpp"
#include "socgen/d695.hpp"
#include "socgen/systems.hpp"

#ifndef SOCTEST_GOLDEN_DIR
#error "backend_differential_test needs SOCTEST_GOLDEN_DIR"
#endif

namespace soctest {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "missing golden " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// The CLI's --json artifact, byte for byte: explore at
/// max_width = max(width, 32), max_chains = 255, no selection, then the
/// default hill climb and a compact single-line report with cpu zeroed.
std::string artifact(const SocSpec& soc, int width) {
  ExploreOptions e;
  e.max_width = std::max(width, 32);
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = width;
  OptimizationResult stable = opt.optimize(o);
  stable.cpu_seconds = 0.0;
  return compact_json(result_to_json(stable, soc)) + "\n";
}

void expect_matches_golden(const SocSpec& soc, int width,
                           const std::string& golden_name) {
  const std::string golden =
      read_file(std::string(SOCTEST_GOLDEN_DIR) + "/" + golden_name);
  ASSERT_FALSE(golden.empty());
  for (int jobs : {1, 4, 8}) {
    SCOPED_TRACE(golden_name + " jobs=" + std::to_string(jobs));
    runtime::ThreadPool pool(jobs);
    runtime::PoolScope scope(&pool);
    EXPECT_EQ(artifact(soc, width), golden);
  }
}

TEST(BackendDifferential, FixedBusMatchesPreRefactorGoldenD695W16) {
  expect_matches_golden(make_d695(), 16, "d695_w16.json");
}

TEST(BackendDifferential, FixedBusMatchesPreRefactorGoldenD695W32) {
  expect_matches_golden(make_d695(), 32, "d695_w32.json");
}

TEST(BackendDifferential, FixedBusMatchesPreRefactorGoldenD695W48) {
  expect_matches_golden(make_d695(), 48, "d695_w48.json");
}

TEST(BackendDifferential, FixedBusMatchesPreRefactorGoldenSystem1) {
  expect_matches_golden(make_system(1), 24, "System1_w24.json");
}

TEST(BackendDifferential, FixedBusMatchesPreRefactorGoldenSystem2) {
  expect_matches_golden(make_system(2), 32, "System2_w32.json");
}

TEST(BackendDifferential, FixedBusMatchesPreRefactorGoldenSystem3) {
  expect_matches_golden(make_system(3), 16, "System3_w16.json");
}

TEST(BackendDifferential, FixedBusMatchesPreRefactorGoldenSystem4) {
  expect_matches_golden(make_system(4), 40, "System4_w40.json");
}

TEST(BackendDifferential, FixedBusResultCarriesNoBackendKey) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 16;
  const OptimizationResult r = opt.optimize(o);
  EXPECT_EQ(r.backend, BackendKind::FixedBus);
  EXPECT_EQ(result_to_json(r, soc).find("\"backend\""), std::string::npos);

  // And the rect backend's report names itself — the two artifact spaces
  // cannot be confused.
  OptimizerOptions ro = o;
  ro.backend = BackendKind::Rect;
  const OptimizationResult rr = optimize_backend(opt, ro);
  EXPECT_EQ(rr.backend, BackendKind::Rect);
  EXPECT_NE(result_to_json(rr, soc).find("\"backend\": \"rect\""),
            std::string::npos);
}

void expect_identical(const OptimizationResult& a,
                      const OptimizationResult& b) {
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.arch.widths, b.arch.widths);
  EXPECT_EQ(a.test_time, b.test_time);
  EXPECT_EQ(a.data_volume_bits, b.data_volume_bits);
  ASSERT_EQ(a.schedule.entries.size(), b.schedule.entries.size());
  for (std::size_t i = 0; i < a.schedule.entries.size(); ++i) {
    EXPECT_EQ(a.schedule.entries[i].core, b.schedule.entries[i].core) << i;
    EXPECT_EQ(a.schedule.entries[i].bus, b.schedule.entries[i].bus) << i;
    EXPECT_EQ(a.schedule.entries[i].start, b.schedule.entries[i].start) << i;
    EXPECT_EQ(a.schedule.entries[i].end, b.schedule.entries[i].end) << i;
  }
}

TEST(BackendDifferential, RectClimbIsBitIdenticalAcrossJobs) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 24;
  o.backend = BackendKind::Rect;

  runtime::ThreadPool pool1(1), pool4(4), pool8(8);
  OptimizationResult r1, r4, r8;
  {
    runtime::PoolScope scope(&pool1);
    r1 = optimize_rect(opt, o);
  }
  {
    runtime::PoolScope scope(&pool4);
    r4 = optimize_rect(opt, o);
  }
  {
    runtime::PoolScope scope(&pool8);
    r8 = optimize_rect(opt, o);
  }
  expect_identical(r1, r4);
  expect_identical(r1, r8);
}

TEST(BackendDifferential, RaceKeepsTheBetterSideDeterministically) {
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);

  for (int width : {16, 48}) {
    SCOPED_TRACE("width " + std::to_string(width));
    OptimizerOptions fo;
    fo.width = width;
    const OptimizationResult fixed = opt.optimize(fo);

    OptimizerOptions ro = fo;
    ro.backend = BackendKind::Rect;
    const OptimizationResult rect = optimize_rect(opt, ro);

    OptimizerOptions race = fo;
    race.backend = BackendKind::Race;
    const OptimizationResult merged = optimize_backend(opt, race);

    const bool rect_wins = better_result(rect, fixed);
    EXPECT_EQ(merged.backend,
              rect_wins ? BackendKind::Rect : BackendKind::FixedBus);
    EXPECT_EQ(merged.test_time,
              rect_wins ? rect.test_time : fixed.test_time);
    // Ties keep fixed: the merged result never regresses either side.
    EXPECT_LE(merged.test_time, fixed.test_time);
    EXPECT_LE(merged.test_time, rect.test_time);
  }
}

}  // namespace
}  // namespace soctest
