// Randomized cross-module robustness: random SOCs driven through the whole
// pipeline must satisfy every structural invariant in every mode. The
// seeds are fixed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include "codec/sparse_cost.hpp"
#include "codec/stream_encoder.hpp"
#include "decomp/decompressor_model.hpp"
#include "opt/soc_optimizer.hpp"
#include "power/power_model.hpp"
#include "runtime/thread_pool.hpp"
#include "socgen/cube_synth.hpp"
#include "socgen/rng.hpp"

namespace soctest {
namespace {

SocSpec random_soc(std::uint64_t seed) {
  Rng rng(seed);
  SocSpec soc;
  soc.name = "fuzz-" + std::to_string(seed);
  const int cores = static_cast<int>(rng.next_range(2, 6));
  for (int i = 0; i < cores; ++i) {
    CoreUnderTest c;
    c.spec.name = "c" + std::to_string(i);
    c.spec.num_inputs = static_cast<int>(rng.next_range(0, 40));
    c.spec.num_outputs = static_cast<int>(rng.next_range(0, 40));
    if (rng.next_bool(0.5)) {
      c.spec.flexible_scan = true;
      c.spec.flexible_scan_cells = rng.next_range(50, 3'000);
    } else {
      const int chains = static_cast<int>(rng.next_range(1, 20));
      for (int j = 0; j < chains; ++j)
        c.spec.scan_chain_lengths.push_back(
            static_cast<int>(rng.next_range(1, 150)));
    }
    // Guard against the all-empty corner: at least one stimulus cell.
    if (c.spec.stimulus_bits_per_pattern() == 0) c.spec.num_inputs = 1;
    c.spec.num_patterns = static_cast<int>(rng.next_range(1, 40));

    CubeSynthParams p;
    p.num_cells = c.spec.stimulus_bits_per_pattern();
    p.num_patterns = c.spec.num_patterns;
    p.care_density = 0.005 + 0.9 * rng.next_double();
    p.one_fraction = 0.3 + 0.6 * rng.next_double();
    p.cluster_mean = 1.0 + 9.0 * rng.next_double();
    if (!c.spec.scan_chain_lengths.empty() && rng.next_bool(0.7)) {
      p.chain_lengths = c.spec.scan_chain_lengths;
      p.scan_cell_offset = c.spec.num_inputs;
    }
    c.cubes = synthesize_cubes(p, rng.next_u64());
    c.validate();
    soc.cores.push_back(std::move(c));
  }
  return soc;
}

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, AllModesAllConstraintsHoldInvariants) {
  const SocSpec soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  ExploreOptions e;
  e.max_width = 20;
  e.max_chains = 80;
  const SocOptimizer opt(soc, e);

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  for (ArchMode mode : {ArchMode::NoTdc, ArchMode::PerCore, ArchMode::PerTam,
                        ArchMode::FixedWidth4}) {
    for (ConstraintMode cons :
         {ConstraintMode::TamWidth, ConstraintMode::AteChannels}) {
      OptimizerOptions o;
      o.width = static_cast<int>(rng.next_range(2, 20));
      o.mode = mode;
      o.constraint = cons;
      const OptimizationResult r = opt.optimize(o);
      ASSERT_NO_THROW(r.schedule.validate(soc.num_cores()))
          << soc.name << " " << to_string(mode) << " W=" << o.width;
      EXPECT_EQ(r.arch.total_width(), o.width);
      EXPECT_GT(r.test_time, 0);
      EXPECT_EQ(r.test_time, r.schedule.makespan());
      EXPECT_GT(r.peak_power_mw, 0.0);
    }
  }
}

TEST_P(PipelineFuzz, CodecRoundTripOnRandomCore) {
  const SocSpec soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  const CoreUnderTest& core =
      soc.cores[rng.next_below(soc.cores.size())];
  const int max_m = std::min(60, core.spec.max_wrapper_chains());
  if (max_m < 2) GTEST_SKIP();
  const int m = static_cast<int>(rng.next_range(2, max_m));

  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());

  // Sparse cost == materialized count == hardware cycles.
  const EncodedStream stream = encode_stream(map, core.cubes);
  const SparseCostResult sparse = sparse_stream_cost(map, core.cubes);
  EXPECT_EQ(sparse.total_codewords, stream.codeword_count());

  DecompressorModel hw(stream.params);
  const auto slices = hw.run(stream.words);
  EXPECT_EQ(hw.cycles(), stream.codeword_count());
  ASSERT_EQ(static_cast<int>(slices.size()),
            stream.patterns * stream.slices_per_pattern);
  for (int p = 0; p < core.cubes.num_patterns(); ++p) {
    const int base = p * stream.slices_per_pattern;
    for (const CareBit& b : core.cubes.pattern(p)) {
      EXPECT_EQ(slices[static_cast<std::size_t>(base) +
                       map.slice_of_cell(b.cell)][map.chain_of_cell(b.cell)],
                b.value);
    }
  }
}

// The runtime pool must not change results: exploring a random SOC with a
// single lane and with several lanes yields member-identical CoreTables.
// The cache is bypassed so both runs actually compute.
TEST_P(PipelineFuzz, ParallelExploreMatchesSerial) {
  const SocSpec soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  ExploreOptions e;
  e.max_width = 18;
  e.max_chains = 60;
  e.use_cache = false;

  runtime::ThreadPool serial(1), wide(3);
  std::vector<CoreTable> ref, par;
  {
    runtime::PoolScope scope(&serial);
    ref = explore_soc(soc, e);
  }
  {
    runtime::PoolScope scope(&wide);
    par = explore_soc(soc, e);
  }
  ASSERT_EQ(ref.size(), par.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(ref[i], par[i]) << soc.name << " core " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 13));

}  // namespace
}  // namespace soctest
