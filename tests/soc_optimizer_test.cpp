// SocOptimizer: mode/constraint semantics, invariants across the search,
// and agreement with the exact optimizer on small instances.
#include <gtest/gtest.h>

#include "opt/baselines.hpp"
#include "opt/result.hpp"
#include "opt/soc_optimizer.hpp"
#include "sched/exact_scheduler.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

class OptimizerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc_ = new SocSpec(testutil::mixed_soc());
    ExploreOptions e;
    e.max_width = 24;
    e.max_chains = 128;
    opt_ = new SocOptimizer(*soc_, e);
  }
  static void TearDownTestSuite() {
    delete opt_;
    delete soc_;
    opt_ = nullptr;
    soc_ = nullptr;
  }
  static SocSpec* soc_;
  static SocOptimizer* opt_;
};
SocSpec* OptimizerFixture::soc_ = nullptr;
SocOptimizer* OptimizerFixture::opt_ = nullptr;

TEST_F(OptimizerFixture, ResultInvariantsAcrossModesAndConstraints) {
  for (ArchMode mode : {ArchMode::NoTdc, ArchMode::PerCore, ArchMode::PerTam,
                        ArchMode::FixedWidth4}) {
    for (ConstraintMode cons :
         {ConstraintMode::TamWidth, ConstraintMode::AteChannels}) {
      OptimizerOptions o;
      o.width = 14;
      o.mode = mode;
      o.constraint = cons;
      const OptimizationResult r = opt_->optimize(o);
      r.schedule.validate(soc_->num_cores());
      EXPECT_EQ(r.arch.total_width(), 14) << to_string(mode);
      EXPECT_EQ(r.test_time, r.schedule.makespan());
      EXPECT_EQ(r.buses.size(),
                static_cast<std::size_t>(r.arch.num_buses()));
      EXPECT_GT(r.data_volume_bits, 0);
      // Every scheduled choice fits its bus realization.
      for (const ScheduleEntry& e : r.schedule.entries) {
        EXPECT_GT(e.choice.test_time, 0);
        EXPECT_EQ(e.end - e.start, e.choice.test_time);
      }
    }
  }
}

TEST_F(OptimizerFixture, PerCoreNeverSlowerThanNoTdc) {
  // The per-core mode may always fall back to direct access, so its
  // optimized test time cannot exceed the no-TDC optimum.
  for (int W : {6, 10, 16, 24}) {
    const TdcComparison cmp = compare_with_without_tdc(*opt_, W);
    EXPECT_LE(cmp.with_tdc.test_time, cmp.without_tdc.test_time) << W;
    EXPECT_LE(cmp.with_tdc.data_volume_bits,
              cmp.without_tdc.data_volume_bits)
        << W;
    EXPECT_GE(cmp.time_reduction_factor(), 1.0);
  }
}

TEST_F(OptimizerFixture, WiderBudgetsNeverHurt) {
  OptimizerOptions o;
  o.mode = ArchMode::PerCore;
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (int W : {4, 8, 12, 16, 20, 24}) {
    o.width = W;
    const std::int64_t t = opt_->optimize(o).test_time;
    EXPECT_LE(t, prev) << "W=" << W;
    prev = t;
  }
}

TEST_F(OptimizerFixture, PerTamConstraintAsymmetry) {
  // Under a TAM-width constraint the per-TAM style pays for expanded buses
  // on chip; under an ATE constraint it gets the expansion for free on
  // chip. Its on-chip wiring must reflect that.
  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerTam;
  o.constraint = ConstraintMode::TamWidth;
  const OptimizationResult tam = opt_->optimize(o);
  EXPECT_LE(tam.wiring.onchip_wires, 16);

  o.constraint = ConstraintMode::AteChannels;
  const OptimizationResult ate = opt_->optimize(o);
  EXPECT_LE(ate.wiring.ate_channels, 16);
  EXPECT_GT(ate.wiring.onchip_wires, 16);  // expanded buses are wide
}

TEST_F(OptimizerFixture, PerCoreWiringStaysCompressed) {
  OptimizerOptions o;
  o.width = 16;
  o.mode = ArchMode::PerCore;
  const OptimizationResult r = opt_->optimize(o);
  EXPECT_EQ(r.wiring.onchip_wires, 16);
  EXPECT_EQ(r.wiring.ate_channels, 16);
  // Compressed cores own one decompressor each.
  int compressed = 0;
  for (const ScheduleEntry& e : r.schedule.entries)
    compressed += e.choice.mode == AccessMode::Compressed;
  EXPECT_EQ(r.wiring.decompressors, compressed);
}

TEST_F(OptimizerFixture, EvaluateMatchesOptimizeObjective) {
  OptimizerOptions o;
  o.width = 12;
  o.mode = ArchMode::PerCore;
  const OptimizationResult best = opt_->optimize(o);
  // Re-evaluating the winning architecture reproduces the same numbers.
  const OptimizationResult re = opt_->evaluate(best.arch, o);
  EXPECT_EQ(re.test_time, best.test_time);
  EXPECT_EQ(re.data_volume_bits, best.data_volume_bits);
}

TEST_F(OptimizerFixture, HeuristicWithinBoundOfExactSmallCase) {
  // Exact optimum over all partitions/assignments with the same lookup
  // tables; the heuristic must come close (paper: heuristic quality).
  const auto& tables = opt_->tables();
  const auto cost = [&](int core, int width) {
    return tables[static_cast<std::size_t>(core)]
        .best(std::min(width, tables[core].max_width()))
        .test_time;
  };
  const auto exact = exact_optimize(soc_->num_cores(), 10, cost);
  ASSERT_TRUE(exact.has_value());

  OptimizerOptions o;
  o.width = 10;
  o.mode = ArchMode::PerCore;
  const OptimizationResult heur = opt_->optimize(o);
  EXPECT_GE(heur.test_time, exact->makespan);
  EXPECT_LE(heur.test_time, exact->makespan * 3 / 2 + 1);
}

TEST_F(OptimizerFixture, SummariesMentionEveryCore) {
  OptimizerOptions o;
  o.width = 12;
  const OptimizationResult r = opt_->optimize(o);
  const std::string s = summarize(r, *soc_);
  for (const auto& c : soc_->cores)
    EXPECT_NE(s.find(c.spec.name), std::string::npos) << c.spec.name;
  EXPECT_FALSE(one_line(r).empty());
}

TEST_F(OptimizerFixture, RejectsBadWidth) {
  OptimizerOptions o;
  o.width = 0;
  EXPECT_THROW(opt_->optimize(o), std::invalid_argument);
}

TEST(FixedW4Baseline, ValidatesAcrossSmallWidths) {
  // Regression for the width < 4 edge: a budget too small for one full
  // 4-bit bus must become a single narrow bus, not an empty (invalid)
  // architecture; remainders always trail the 4-bit buses.
  for (int W = 1; W <= 7; ++W) {
    const TamArchitecture arch = fixed_w4_architecture(W);
    arch.validate();
    EXPECT_EQ(arch.total_width(), W) << W;
    ASSERT_GE(arch.num_buses(), 1) << W;
    for (int b = 0; b + 1 < arch.num_buses(); ++b)
      EXPECT_EQ(arch.widths[static_cast<std::size_t>(b)], 4) << W;
    const int last = arch.widths.back();
    EXPECT_GE(last, 1) << W;
    EXPECT_LE(last, 4) << W;
    // Non-increasing: the remainder bus (if any) comes last.
    for (std::size_t b = 1; b < arch.widths.size(); ++b)
      EXPECT_LE(arch.widths[b], arch.widths[b - 1]) << W;
  }
  EXPECT_EQ(fixed_w4_architecture(3).widths, (std::vector<int>{3}));
  EXPECT_EQ(fixed_w4_architecture(4).widths, (std::vector<int>{4}));
  EXPECT_EQ(fixed_w4_architecture(7).widths, (std::vector<int>{4, 3}));
  EXPECT_EQ(fixed_w4_architecture(8).widths, (std::vector<int>{4, 4}));
}

TEST_F(OptimizerFixture, FixedW4ModeUsesTheFixedPartition) {
  for (int W : {3, 6, 14}) {
    OptimizerOptions o;
    o.width = W;
    o.mode = ArchMode::FixedWidth4;
    const OptimizationResult r = opt_->optimize(o);
    EXPECT_EQ(r.arch.widths, fixed_w4_architecture(W).widths) << W;
    r.schedule.validate(soc_->num_cores());
    EXPECT_GT(r.test_time, 0) << W;
  }
}

TEST(SocOptimizerStandalone, MethodComparisonRunsAllThree) {
  const SocSpec soc = testutil::mixed_soc();
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);
  const MethodComparison cmp =
      compare_methods(opt, 12, ConstraintMode::TamWidth);
  EXPECT_GT(cmp.proposed.test_time, 0);
  EXPECT_GT(cmp.per_tam.test_time, 0);
  EXPECT_GT(cmp.fixed_w4.test_time, 0);
  // Under a TAM-wire constraint, per-core expansion dominates per-TAM
  // expansion (the paper's central claim).
  EXPECT_LE(cmp.proposed.test_time, cmp.per_tam.test_time);
}

}  // namespace
}  // namespace soctest
