// Wrapper-chain design (BFD) invariants, parameterized over chain counts.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "bitvec/bit_util.hpp"
#include "test_util.hpp"
#include "wrapper/time_model.hpp"
#include "wrapper/wrapper_design.hpp"

namespace soctest {
namespace {

void check_invariants(const CoreSpec& core, const WrapperDesign& d, int m) {
  ASSERT_EQ(d.num_chains, m);
  ASSERT_EQ(static_cast<int>(d.chains.size()), m);

  // Every stimulus cell appears exactly once.
  std::set<std::uint32_t> cells;
  std::int64_t scan_total = 0;
  int outputs = 0;
  for (const WrapperChain& c : d.chains) {
    for (std::uint32_t cell : c.stimulus_cells)
      ASSERT_TRUE(cells.insert(cell).second) << "duplicate cell " << cell;
    scan_total += c.scan_cells;
    outputs += c.output_cells;
    EXPECT_LE(c.stimulus_length(), d.scan_in_length);
    EXPECT_LE(c.response_length(), d.scan_out_length);
  }
  EXPECT_EQ(static_cast<std::int64_t>(cells.size()),
            core.stimulus_bits_per_pattern());
  EXPECT_EQ(scan_total, core.total_scan_cells());
  EXPECT_EQ(outputs, core.num_outputs);

  // Scan-in length can never beat the perfectly balanced lower bound.
  EXPECT_GE(d.scan_in_length,
            ceil_div(core.stimulus_bits_per_pattern(), m));
  EXPECT_GE(d.idle_bits_per_pattern, 0);
  EXPECT_EQ(d.idle_bits_per_pattern,
            static_cast<std::int64_t>(d.scan_in_length) * m -
                core.stimulus_bits_per_pattern());
}

class WrapperSweep : public ::testing::TestWithParam<int> {};

TEST_P(WrapperSweep, FixedScanInvariants) {
  const CoreUnderTest core =
      testutil::small_core("c", 17, {40, 33, 25, 12, 9}, 5);
  const int m = GetParam();
  if (m > core.spec.max_wrapper_chains()) GTEST_SKIP();
  const WrapperDesign d = design_wrapper(core.spec, m);
  check_invariants(core.spec, d, m);
}

TEST_P(WrapperSweep, FlexibleScanInvariants) {
  const CoreUnderTest core = testutil::flex_core("f", 777, 5);
  const int m = GetParam();
  const WrapperDesign d = design_wrapper(core.spec, m);
  check_invariants(core.spec, d, m);
  // Flexible stitching is balanced: lengths differ by at most 1 before
  // input-cell distribution, so at most a small spread afterwards.
  const std::int64_t total = core.spec.stimulus_bits_per_pattern();
  EXPECT_LE(d.scan_in_length, ceil_div(total, m) + 1);
}

INSTANTIATE_TEST_SUITE_P(ChainCounts, WrapperSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 22));

TEST(Wrapper, BfdCannotBeatLongestScanChain) {
  // A fixed scan chain is unsplittable: si >= the longest chain.
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 2;
  c.scan_chain_lengths = {100, 5, 5};
  c.num_patterns = 1;
  for (int m = 1; m <= 5; ++m) {
    const WrapperDesign d = design_wrapper(c, m);
    EXPECT_GE(d.scan_in_length, 100);
  }
}

TEST(Wrapper, MoreChainsNeverHelpBeyondItemCount) {
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 3;
  c.scan_chain_lengths = {10, 9};
  c.num_patterns = 1;
  EXPECT_EQ(c.max_wrapper_chains(), 5);
  EXPECT_THROW(design_wrapper(c, 6), std::invalid_argument);
  EXPECT_THROW(design_wrapper(c, 0), std::invalid_argument);
}

TEST(Wrapper, ScanInLengthIsNonIncreasingInM) {
  const CoreUnderTest core = testutil::flex_core("f", 2000, 3);
  int prev = 1 << 30;
  for (int m = 1; m <= 64; ++m) {
    const WrapperDesign d = design_wrapper(core.spec, m);
    EXPECT_LE(d.scan_in_length, prev) << "m=" << m;
    prev = d.scan_in_length;
  }
}

TEST(TimeModel, UncompressedFormula) {
  // tau = (1 + max(si, so)) * p + min(si, so), the classic wrapper model.
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 0;
  c.num_outputs = 0;
  c.scan_chain_lengths = {10, 10};
  c.num_patterns = 7;
  const WrapperDesign d = design_wrapper(c, 2);
  EXPECT_EQ(d.scan_in_length, 10);
  EXPECT_EQ(d.scan_out_length, 10);
  EXPECT_EQ(uncompressed_test_time(d, 7), (1 + 10) * 7 + 10);
  EXPECT_EQ(uncompressed_test_time(d, 0), 0);
  EXPECT_EQ(uncompressed_data_volume(d, 7), 10 * 2 * 7);
}

TEST(TimeModel, CompressedFormula) {
  EXPECT_EQ(compressed_test_time(1000, 50, 10), 1060);
  EXPECT_EQ(compressed_test_time(1000, 50, 0), 0);
}

}  // namespace
}  // namespace soctest
