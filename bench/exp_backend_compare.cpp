// Backend comparison gate: does the rectangle-packing TAM backend
// (opt/rect_backend + sched/rect_packer) actually compete with the
// fixed-bus partition search it races against? For every width of the
// Table-2 d695 sweep we run both backends on the CLI's explore universe
// and record the makespans side by side.
//
// Gates (from the issue):
//   1. rect must match or beat the fixed-bus makespan on at least half of
//      the d695 width sweep {16, 24, 32, 40, 48, 56, 64};
//   2. --backend race must be byte-identical between a single-process
//      portfolio and the distributed coordinator (any worker split) —
//      checked here at 2 workers against the in-process run.
//
// Results are spliced into the "backend" section of BENCH_search.json by
// brace matching (only this bench's own section is replaced), so the
// search benches can be rerun in any order without eating each other's
// output.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "opt/backend.hpp"
#include "opt/rect_backend.hpp"
#include "opt/soc_optimizer.hpp"
#include "portfolio/portfolio.hpp"
#include "report/table.hpp"
#include "socgen/d695.hpp"

using namespace soctest;

namespace {

/// Removes the top-level "backend" key (and the comma that precedes it)
/// from an existing BENCH_search.json body, leaving every other section
/// intact. Brace/bracket-matched, safe because no string in the file
/// contains braces.
std::string drop_backend_section(std::string existing) {
  const std::size_t marker = existing.find("\n  \"backend\":");
  if (marker == std::string::npos)
    return existing;
  std::size_t start = marker;
  if (start > 0 && existing[start - 1] == ',')
    --start;
  std::size_t p = existing.find_first_of("[{", marker);
  if (p == std::string::npos)
    return existing.substr(0, start);  // malformed tail: drop it
  int depth = 0;
  std::size_t q = p;
  for (; q < existing.size(); ++q) {
    const char c = existing[q];
    if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth == 0) {
        ++q;
        break;
      }
    }
  }
  return existing.substr(0, start) + existing.substr(q);
}

void splice_backend_section(const std::string& section) {
  std::string existing;
  {
    std::ifstream in("BENCH_search.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  if (const std::size_t close = drop_backend_section(existing).rfind('}');
      close != std::string::npos) {
    out = drop_backend_section(existing).substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
      out.pop_back();
  }
  if (out.empty())
    out = "{\n  \"experiment\": \"backend\"";
  out += ",\n  \"backend\": {\n" + section + "  }\n}\n";
  std::ofstream f("BENCH_search.json");
  f << out;
}

}  // namespace

int main() {
  std::printf("=== Fixed-bus vs rectangle-packing backend on d695 ===\n\n");

  const SocSpec soc = make_d695();
  const std::vector<int> widths = {16, 24, 32, 40, 48, 56, 64};

  Table t({"width", "fixed-bus", "rect", "delta", "winner"});
  int rect_wins = 0;
  std::string sweep_json;

  for (std::size_t i = 0; i < widths.size(); ++i) {
    const int w = widths[i];
    // The CLI's explore recipe: widths past 32 need the wider universe.
    ExploreOptions e;
    e.max_width = std::max(w, 32);
    e.max_chains = 255;
    const SocOptimizer opt(soc, e);
    OptimizerOptions o;
    o.width = w;

    const OptimizationResult fixed = opt.optimize(o);
    OptimizerOptions ro = o;
    ro.backend = BackendKind::Rect;
    const OptimizationResult rect = optimize_rect(opt, ro);

    const bool win = rect.test_time <= fixed.test_time;
    rect_wins += win ? 1 : 0;
    t.add_row({Table::num(w), Table::num(fixed.test_time),
               Table::num(rect.test_time),
               Table::num(rect.test_time - fixed.test_time),
               win ? "rect" : "fixed"});

    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "      {\"width\": %d, \"fixed_test_time\": %lld, "
                  "\"rect_test_time\": %lld, \"rect_wins\": %s}%s\n",
                  w, static_cast<long long>(fixed.test_time),
                  static_cast<long long>(rect.test_time),
                  win ? "true" : "false",
                  i + 1 < widths.size() ? "," : "");
    sweep_json += buf;
  }
  std::printf("%s\n", t.to_string().c_str());

  const int need = static_cast<int>(widths.size() + 1) / 2;
  const bool sweep_pass = rect_wins >= need;
  std::printf("rect wins %d/%zu widths (gate: >= %d): %s\n\n", rect_wins,
              widths.size(), need, sweep_pass ? "PASS" : "FAIL");

  // Gate 2: --backend race merges identically in-process and distributed.
  ExploreOptions e;
  e.max_width = 16;
  e.max_chains = 64;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 16;
  o.backend = BackendKind::Race;
  PortfolioOptions po;
  po.replicas = 4;
  po.sweeps = 5;
  po.proposals_per_sweep = 20;
  po.seed = 2026;
  const PortfolioResult single = optimize_portfolio(opt, o, po);
  dist::DistOptions d;
  d.workers = 2;
  d.worker_cmd = SOCTEST_CLI_BINARY;
  d.explore_max_width = 16;
  d.explore_max_chains = 64;
  const PortfolioResult dist =
      dist::optimize_portfolio_distributed(opt, o, po, d);
  const bool race_pass =
      single.best.test_time == dist.best.test_time &&
      single.best.backend == dist.best.backend &&
      single.best.arch.widths == dist.best.arch.widths &&
      single.stats.rect_won == dist.stats.rect_won &&
      single.best.schedule.entries.size() == dist.best.schedule.entries.size();
  std::printf("race single-process vs 2 workers: %s (time %lld vs %lld, "
              "winner %s)\n",
              race_pass ? "PASS" : "FAIL",
              static_cast<long long>(single.best.test_time),
              static_cast<long long>(dist.best.test_time),
              to_string(single.best.backend).c_str());

  std::string json = "    \"d695_width_sweep\": [\n" + sweep_json +
                     "    ],\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "    \"rect_wins\": %d,\n"
                "    \"sweep_gate_pass\": %s,\n"
                "    \"race_single_test_time\": %lld,\n"
                "    \"race_dist_test_time\": %lld,\n"
                "    \"race_identical\": %s\n",
                rect_wins, sweep_pass ? "true" : "false",
                static_cast<long long>(single.best.test_time),
                static_cast<long long>(dist.best.test_time),
                race_pass ? "true" : "false");
  json += buf;
  splice_backend_section(json);
  std::printf("spliced \"backend\" section into BENCH_search.json\n");

  if (!sweep_pass || !race_pass) {
    std::fprintf(stderr, "FAIL: %s%s\n",
                 sweep_pass ? "" : "rect lost the width-sweep gate; ",
                 race_pass ? "" : "race merge diverged across processes");
    return 1;
  }
  return 0;
}
