// Distributed portfolio scaling: does sharding the replica-exchange
// ladder across worker processes (src/dist/) actually buy wall-clock —
// and does every split still produce the byte-identical report the
// coordinator promises?
//
// Default mode (every CI run): on the 120-core synthetic SOC, run the
// single-process portfolio and the distributed one at 1 and 4 workers.
// HARD gate: the distributed results must be member-identical to the
// single-process run — identity is the contract, and it must hold on the
// small case cheaply. The 1-worker/4-worker sweep-loop ratio is recorded
// as an advisory (a saturated small machine cannot show scaling).
//
// SOCTEST_SCALE_XL=1 (opt-in CI step on a multi-core runner): the
// 1000-core SOC with a 32-replica ladder, where per-sweep evaluation work
// dwarfs the exchange protocol. HARD gate: >= 3x sweep-loop speedup at 4
// workers vs 1 worker at the identical proposal budget.
//
// Results are spliced into the "distributed" section of BENCH_search.json
// (own-section brace matching, same discipline as exp_portfolio.cpp: the
// benches can be rerun in any order without eating each other's output).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "opt/soc_optimizer.hpp"
#include "portfolio/portfolio.hpp"
#include "report/table.hpp"
#include "socgen/synthetic.hpp"

#ifndef SOCTEST_CLI_BINARY
#error "exp_portfolio_distributed needs SOCTEST_CLI_BINARY (worker binary)"
#endif

using namespace soctest;

namespace {

SocSpec synth_soc(int num_cores, std::uint64_t seed) {
  SyntheticSocParams p;  // same geometry as exp_search_scale
  p.num_cores = num_cores;
  p.max_inputs = 16;
  p.max_outputs = 16;
  p.max_chains = 6;
  p.max_chain_length = 32;
  p.max_patterns = 10;
  p.giant_scale = 4;
  return make_synthetic_soc(p, seed);
}

/// Removes the top-level "distributed" key (and the comma preceding it)
/// from an existing BENCH_search.json body, leaving other sections intact.
std::string drop_distributed_section(std::string existing) {
  const std::size_t marker = existing.find("\n  \"distributed\":");
  if (marker == std::string::npos)
    return existing;
  std::size_t start = marker;
  if (start > 0 && existing[start - 1] == ',')
    --start;
  std::size_t p = existing.find_first_of("[{", marker);
  if (p == std::string::npos)
    return existing.substr(0, start);  // malformed tail: drop it
  int depth = 0;
  std::size_t q = p;
  for (; q < existing.size(); ++q) {
    const char c = existing[q];
    if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth == 0) {
        ++q;
        break;
      }
    }
  }
  return existing.substr(0, start) + existing.substr(q);
}

void splice_distributed_section(const std::string& section) {
  std::string existing;
  {
    std::ifstream in("BENCH_search.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  if (const std::size_t close = drop_distributed_section(existing).rfind('}');
      close != std::string::npos) {
    out = drop_distributed_section(existing).substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
      out.pop_back();
  }
  if (out.empty())
    out = "{\n  \"experiment\": \"distributed\"";
  out += ",\n  \"distributed\": [\n" + section + "  ]\n}\n";
  std::ofstream f("BENCH_search.json");
  f << out;
}

bool same_result(const PortfolioResult& a, const PortfolioResult& b) {
  if (a.best.arch.widths != b.best.arch.widths) return false;
  if (a.best.test_time != b.best.test_time) return false;
  if (a.best.data_volume_bits != b.best.data_volume_bits) return false;
  if (a.stats.best_by_sweep != b.stats.best_by_sweep) return false;
  if (a.stats.swaps_attempted != b.stats.swaps_attempted) return false;
  if (a.stats.swaps_accepted != b.stats.swaps_accepted) return false;
  if (a.replica_best.size() != b.replica_best.size()) return false;
  for (std::size_t r = 0; r < a.replica_best.size(); ++r) {
    if (a.replica_best[r].arch.widths != b.replica_best[r].arch.widths)
      return false;
    if (a.replica_best[r].test_time != b.replica_best[r].test_time)
      return false;
  }
  return true;
}

dist::DistOptions dist_opts(int workers) {
  dist::DistOptions d;
  d.workers = workers;
  d.worker_cmd = SOCTEST_CLI_BINARY;
  d.explore_max_width = 10;
  d.explore_max_chains = 32;
  return d;
}

}  // namespace

int main() {
  const char* xl = std::getenv("SOCTEST_SCALE_XL");
  const bool run_xl = xl && *xl && *xl != '0';

  std::printf("=== Distributed sharded portfolio: identity + scaling ===\n\n");

  // --- Default case: 120 cores, identity gate, advisory speedup. -------
  const SocSpec soc = synth_soc(120, 0xC0DE);
  ExploreOptions e;
  e.max_width = 10;
  e.max_chains = 32;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 24;
  o.mode = ArchMode::PerCore;

  PortfolioOptions po;
  po.replicas = 8;
  po.sweeps = 5;
  po.proposals_per_sweep = 30;
  po.seed = 2026;
  po.race_hill_climb = false;  // isolate the sharded ladder's wall-clock

  const PortfolioResult local = optimize_portfolio(opt, o, po);
  const PortfolioResult w1 =
      dist::optimize_portfolio_distributed(opt, o, po, dist_opts(1));
  const PortfolioResult w4 =
      dist::optimize_portfolio_distributed(opt, o, po, dist_opts(4));

  const bool identical = same_result(w1, local) && same_result(w4, local);
  const double small_speedup =
      w4.stats.dist_sweep_seconds > 0.0
          ? w1.stats.dist_sweep_seconds / w4.stats.dist_sweep_seconds
          : 0.0;

  Table t({"case", "workers", "setup s", "sweeps s", "speedup", "identical"});
  t.add_row({"synth120", "1", Table::fixed(w1.stats.dist_setup_seconds, 3),
             Table::fixed(w1.stats.dist_sweep_seconds, 3), "1.00x",
             same_result(w1, local) ? "yes" : "NO"});
  t.add_row({"synth120", "4", Table::fixed(w4.stats.dist_setup_seconds, 3),
             Table::fixed(w4.stats.dist_sweep_seconds, 3),
             Table::fixed(small_speedup, 2) + "x",
             same_result(w4, local) ? "yes" : "NO"});

  std::printf("identity (1 and 4 workers vs single-process): %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("advisory speedup at 4 workers: %.2fx\n\n", small_speedup);

  // --- XL case: 1000 cores, 32 replicas, hard >= 3x gate. --------------
  double xl_speedup = 0.0;
  bool xl_pass = true;
  std::string xl_json;
  if (run_xl) {
    std::printf("SOCTEST_SCALE_XL=1: 1000-core SOC, 32-replica ladder\n");
    const SocSpec big = synth_soc(1000, 0xBEEF);
    const SocOptimizer bopt(big, e);
    OptimizerOptions bo;
    bo.width = 32;
    bo.mode = ArchMode::PerCore;
    PortfolioOptions bp;
    bp.replicas = 32;
    bp.sweeps = 3;
    bp.proposals_per_sweep = 20;
    bp.seed = 2026;
    bp.race_hill_climb = false;

    const PortfolioResult x1 =
        dist::optimize_portfolio_distributed(bopt, bo, bp, dist_opts(1));
    const PortfolioResult x4 =
        dist::optimize_portfolio_distributed(bopt, bo, bp, dist_opts(4));
    xl_speedup = x4.stats.dist_sweep_seconds > 0.0
                     ? x1.stats.dist_sweep_seconds / x4.stats.dist_sweep_seconds
                     : 0.0;
    xl_pass = same_result(x1, x4) && xl_speedup >= 3.0;
    t.add_row({"synth1000", "1", Table::fixed(x1.stats.dist_setup_seconds, 3),
               Table::fixed(x1.stats.dist_sweep_seconds, 3), "1.00x",
               same_result(x1, x4) ? "yes" : "NO"});
    t.add_row({"synth1000", "4", Table::fixed(x4.stats.dist_setup_seconds, 3),
               Table::fixed(x4.stats.dist_sweep_seconds, 3),
               Table::fixed(xl_speedup, 2) + "x",
               same_result(x1, x4) ? "yes" : "NO"});
    std::printf("XL speedup at 4 workers: %.2fx (gate: >= 3.00x) %s\n\n",
                xl_speedup, xl_pass ? "PASS" : "FAIL");

    char xbuf[512];
    std::snprintf(xbuf, sizeof xbuf,
                  ",\n  {\n"
                  "    \"soc\": \"synth1000\",\n"
                  "    \"replicas\": %d,\n"
                  "    \"sweeps\": %d,\n"
                  "    \"proposals_per_sweep\": %d,\n"
                  "    \"sweep_seconds_1w\": %.4f,\n"
                  "    \"sweep_seconds_4w\": %.4f,\n"
                  "    \"speedup_4w\": %.3f,\n"
                  "    \"gate\": 3.0\n"
                  "  }\n",
                  bp.replicas, bp.sweeps, bp.proposals_per_sweep,
                  x1.stats.dist_sweep_seconds, x4.stats.dist_sweep_seconds,
                  xl_speedup);
    xl_json = xbuf;
  } else {
    std::printf("SOCTEST_SCALE_XL unset: skipping the 1000-core gate "
                "(advisory CI step runs it on a multi-core runner)\n\n");
  }

  std::printf("%s\n", t.to_string().c_str());

  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  {\n"
                "    \"soc\": \"synth120\",\n"
                "    \"replicas\": %d,\n"
                "    \"sweeps\": %d,\n"
                "    \"proposals_per_sweep\": %d,\n"
                "    \"identical\": %s,\n"
                "    \"setup_seconds_4w\": %.4f,\n"
                "    \"sweep_seconds_1w\": %.4f,\n"
                "    \"sweep_seconds_4w\": %.4f,\n"
                "    \"speedup_4w\": %.3f\n"
                "  }%s",
                po.replicas, po.sweeps, po.proposals_per_sweep,
                identical ? "true" : "false", w4.stats.dist_setup_seconds,
                w1.stats.dist_sweep_seconds, w4.stats.dist_sweep_seconds,
                small_speedup, xl_json.empty() ? "\n" : "");
  splice_distributed_section(buf + xl_json);
  std::printf("spliced \"distributed\" section into BENCH_search.json\n");

  if (!identical) {
    std::fprintf(stderr, "FAIL: distributed result diverged from the "
                         "single-process portfolio\n");
    return 1;
  }
  if (!xl_pass) {
    std::fprintf(stderr, "FAIL: XL 4-worker speedup %.2fx below the 3x gate\n",
                 xl_speedup);
    return 1;
  }
  return 0;
}
