// Scenario matrix: constraint-rich scheduling (power cap x preemption x
// hierarchy) through the incremental fast path, on workloads the paper
// never measured — d695, System1-4 and a synthx SOC whose seeded power
// profile and core hierarchy exercise every constraint at once. Each
// design gets a binding-but-feasible power cap derived from its own
// unconstrained run (70% of free peak, floored at the largest single
// core), then the whole cell matrix is optimized and tabulated.
//
// Gates (from the issue):
//   1. power-capped search through the incremental engine produces the
//      same result as the direct power_scheduler path (incremental off)
//      with >= 2x fewer full schedule constructions, on every design;
//   2. the power-capped incremental result is byte-identical across
//      runtime lane counts (1 vs 4);
//   3. a power-capped portfolio is bit-identical between a single process
//      and the distributed coordinator at 2 workers.
//
// Results are spliced into the "scenario" section of BENCH_search.json by
// brace matching (only this bench's own section is replaced), same
// protocol as exp_backend_compare's "backend" section.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "hier/hier_scheduler.hpp"
#include "opt/annealing.hpp"
#include "opt/soc_optimizer.hpp"
#include "portfolio/portfolio.hpp"
#include "power/power_model.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/scenario.hpp"
#include "socgen/synthetic.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

namespace {

/// Removes the top-level "scenario" key (and the comma that precedes it)
/// from an existing BENCH_search.json body, leaving every other section
/// intact. Brace/bracket-matched, safe because no string in the file
/// contains braces.
std::string drop_scenario_section(std::string existing) {
  const std::size_t marker = existing.find("\n  \"scenario\":");
  if (marker == std::string::npos)
    return existing;
  std::size_t start = marker;
  if (start > 0 && existing[start - 1] == ',')
    --start;
  std::size_t p = existing.find_first_of("[{", marker);
  if (p == std::string::npos)
    return existing.substr(0, start);  // malformed tail: drop it
  int depth = 0;
  std::size_t q = p;
  for (; q < existing.size(); ++q) {
    const char c = existing[q];
    if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth == 0) {
        ++q;
        break;
      }
    }
  }
  return existing.substr(0, start) + existing.substr(q);
}

void splice_scenario_section(const std::string& section) {
  std::string existing;
  {
    std::ifstream in("BENCH_search.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  if (const std::size_t close = drop_scenario_section(existing).rfind('}');
      close != std::string::npos) {
    out = drop_scenario_section(existing).substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
      out.pop_back();
  }
  if (out.empty())
    out = "{\n  \"experiment\": \"scenario\"";
  out += ",\n  \"scenario\": {\n" + section + "  }\n}\n";
  std::ofstream f("BENCH_search.json");
  f << out;
}

/// Binding-but-feasible cap: below the free run's peak, above the largest
/// single core (one core must always fit the budget alone).
double binding_cap(const SocSpec& soc, double free_peak_mw) {
  double floor_mw = 0.0;
  for (const auto& c : soc.cores)
    floor_mw = std::max(floor_mw, core_peak_power(c.spec));
  return std::max(free_peak_mw * 0.7, floor_mw + 0.1);
}

/// The --json artifact bytes with cpu zeroed — the byte-compare currency.
std::string anneal_bytes(const SocOptimizer& opt, const OptimizerOptions& o,
                         const AnnealingOptions& a) {
  OptimizationResult r = optimize_annealing(opt, o, a);
  r.cpu_seconds = 0.0;
  return compact_json(result_to_json(r, opt.soc())) + "\n";
}

}  // namespace

int main() {
  std::printf("=== Scenario matrix: power / preemption / hierarchy ===\n\n");

  std::vector<SocSpec> designs = make_table3_designs();  // d695, System1-4
  {
    SyntheticSocParams p;
    p.num_cores = 24;
    p.max_inputs = 12;
    p.max_outputs = 12;
    p.max_chains = 6;
    p.max_chain_length = 32;
    p.max_patterns = 10;
    p.power_profile = true;
    p.hierarchy = true;
    designs.push_back(make_synthetic_soc(p, 7));
  }

  Table t({"design", "scenario", "test time", "volume (bits)", "peak mW",
           "vs default"});
  std::string matrix_json = "    \"matrix\": [\n";
  std::string gate_json;
  bool all_pass = true;
  double min_ratio = 1e30;

  for (std::size_t di = 0; di < designs.size(); ++di) {
    const SocSpec& soc = designs[di];
    ExploreOptions e;
    e.max_width = 32;
    e.max_chains = 511;
    const SocOptimizer opt(soc, e);

    OptimizerOptions base;
    base.width = 24;
    base.mode = ArchMode::PerCore;
    const OptimizationResult free_run = opt.optimize(base);
    const double cap = binding_cap(soc, free_run.peak_power_mw);

    char capbuf[48];
    std::snprintf(capbuf, sizeof capbuf, "cap=%.1f", cap);
    const std::vector<std::string> cells = {
        "default", capbuf, std::string(capbuf) + ",preempt", "hier",
        std::string(capbuf) + ",hier"};

    matrix_json += "      {\"design\": \"" + soc.name + "\", \"cells\": [\n";
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      const ScenarioSpec cell = parse_scenario(cells[ci]);
      OptimizerOptions o = base;
      apply_scenario(cell, o);
      const OptimizationResult r = opt.optimize(o);
      if (cell.hierarchical && !soc.hierarchy_parent.empty())
        validate_hierarchy_exclusion(r.schedule,
                                     HierarchySpec{soc.hierarchy_parent});
      const double delta =
          100.0 *
          (static_cast<double>(r.test_time - free_run.test_time) /
           static_cast<double>(free_run.test_time));
      t.add_row({soc.name, cells[ci], Table::num(r.test_time),
                 Table::num(r.data_volume_bits),
                 Table::fixed(r.peak_power_mw, 1),
                 (delta >= 0 ? "+" : "") + Table::fixed(delta, 1) + "%"});
      char row[256];
      std::snprintf(row, sizeof row,
                    "        {\"scenario\": \"%s\", \"test_time\": %lld, "
                    "\"data_volume_bits\": %lld, \"peak_power_mw\": %.3f}%s\n",
                    cells[ci].c_str(), static_cast<long long>(r.test_time),
                    static_cast<long long>(r.data_volume_bits),
                    r.peak_power_mw, ci + 1 < cells.size() ? "," : "");
      matrix_json += row;
    }
    matrix_json += di + 1 < designs.size() ? "      ]},\n" : "      ]}\n";

    // Gate 1: the power-capped annealing search through the incremental
    // engine (shared ScheduleMemo + admissible bound pruner) lands on the
    // same schedule as the direct power_scheduler path — incremental off,
    // every proposal rebuilt through power_schedule from scratch — with
    // >= 2x fewer full schedule constructions. Gate 2: the incremental
    // result is byte-identical across runtime lane counts (1 vs 4).
    OptimizerOptions capped = base;
    capped.power_budget_mw = cap;
    const AnnealingOptions anneal;  // default 2000-proposal walk, seed 1

    runtime::ThreadPool pool1(1), pool4(4);
    std::string direct_bytes, inc_bytes1, inc_bytes4;
    std::uint64_t direct_sched = 0, inc_sched = 0;
    {
      runtime::PoolScope scope(&pool1);
      OptimizerOptions o = capped;
      o.incremental = false;
      runtime::reset_search_counters();
      direct_bytes = anneal_bytes(opt, o, anneal);
      direct_sched = runtime::collect_stats().search.candidates_scheduled;
      o.incremental = true;
      runtime::reset_search_counters();
      inc_bytes1 = anneal_bytes(opt, o, anneal);
      inc_sched = runtime::collect_stats().search.candidates_scheduled;
    }
    {
      runtime::PoolScope scope(&pool4);
      OptimizerOptions o = capped;
      o.incremental = true;
      inc_bytes4 = anneal_bytes(opt, o, anneal);
    }
    const bool identical = inc_bytes1 == direct_bytes;
    const bool lanes_identical = inc_bytes4 == inc_bytes1;
    const double ratio = static_cast<double>(direct_sched) /
                         std::max<double>(1.0, static_cast<double>(inc_sched));
    min_ratio = std::min(min_ratio, ratio);
    if (!identical || !lanes_identical || ratio < 2.0) {
      std::fprintf(stderr,
                   "FAIL %s: identical=%d lanes_identical=%d ratio=%.1f\n",
                   soc.name.c_str(), identical, lanes_identical, ratio);
      all_pass = false;
    }
    std::printf("%s: capped annealing, incremental vs direct: %s, "
                "schedule constructions %llu vs %llu (%.1fx), "
                "lanes 1 vs 4: %s\n",
                soc.name.c_str(), identical ? "identical" : "DIVERGED",
                static_cast<unsigned long long>(direct_sched),
                static_cast<unsigned long long>(inc_sched), ratio,
                lanes_identical ? "identical" : "DIVERGED");
    char g[320];
    std::snprintf(g, sizeof g,
                  "      {\"design\": \"%s\", \"power_cap_mw\": %.1f, "
                  "\"direct_schedule_constructions\": %llu, "
                  "\"incremental_schedule_constructions\": %llu, "
                  "\"ratio\": %.1f, \"identical\": %s, "
                  "\"lanes_identical\": %s}%s\n",
                  soc.name.c_str(), cap,
                  static_cast<unsigned long long>(direct_sched),
                  static_cast<unsigned long long>(inc_sched), ratio,
                  identical ? "true" : "false",
                  lanes_identical ? "true" : "false",
                  di + 1 < designs.size() ? "," : "");
    gate_json += g;
  }
  matrix_json += "    ],\n";
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("minimum direct/incremental schedule-construction ratio: "
              "%.1fx (issue gate: >= 2x)\n\n",
              min_ratio);

  // Gate 3: a power-capped portfolio is bit-identical between a single
  // process and the distributed coordinator at 2 workers.
  const SocSpec& d695 = designs[0];
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 511;
  const SocOptimizer opt(d695, e);
  OptimizerOptions o;
  o.width = 24;
  o.mode = ArchMode::PerCore;
  o.power_budget_mw = binding_cap(d695, opt.optimize(o).peak_power_mw);
  PortfolioOptions po;
  po.replicas = 4;
  po.sweeps = 5;
  po.proposals_per_sweep = 20;
  po.seed = 2026;
  const PortfolioResult single = optimize_portfolio(opt, o, po);
  dist::DistOptions d;
  d.workers = 2;
  d.worker_cmd = SOCTEST_CLI_BINARY;
  d.explore_max_width = 32;
  d.explore_max_chains = 511;
  const PortfolioResult two_workers =
      dist::optimize_portfolio_distributed(opt, o, po, d);
  const bool workers_identical =
      single.best.test_time == two_workers.best.test_time &&
      single.best.arch.widths == two_workers.best.arch.widths &&
      single.best.schedule.entries.size() ==
          two_workers.best.schedule.entries.size() &&
      single.stats.best_by_sweep == two_workers.stats.best_by_sweep;
  if (!workers_identical) {
    std::fprintf(stderr, "FAIL: capped portfolio diverged across workers\n");
    all_pass = false;
  }
  std::printf("capped portfolio single-process vs 2 workers: %s "
              "(time %lld vs %lld)\n",
              workers_identical ? "identical" : "DIVERGED",
              static_cast<long long>(single.best.test_time),
              static_cast<long long>(two_workers.best.test_time));

  char tail[256];
  std::snprintf(tail, sizeof tail,
                "    \"min_construction_ratio\": %.1f,\n"
                "    \"workers_identical\": %s,\n"
                "    \"gates_pass\": %s\n",
                min_ratio, workers_identical ? "true" : "false",
                all_pass ? "true" : "false");
  std::string json = matrix_json + "    \"gates\": [\n" + gate_json +
                     "    ],\n" + tail;
  splice_scenario_section(json);
  std::printf("spliced \"scenario\" section into BENCH_search.json\n");

  if (!all_pass) {
    std::fprintf(stderr, "FAIL: scenario gates not met\n");
    return 1;
  }
  return 0;
}
