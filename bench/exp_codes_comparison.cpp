// EXTENSION — "how effective are the compression codes?": data-volume
// comparison of the three implemented techniques on the same cores, in the
// spirit of Chandra/Chakrabarty's survey (cited in the related work):
//   selective encoding   slice-parallel, tiny decompressor (the paper's);
//   dictionary           slice-parallel, RAM-backed indices;
//   FDR                  serial single-channel run-length coding.
// FDR compresses volume but cannot cut scan time; the slice-parallel
// schemes cut both — the architectural reason the paper builds on them.
#include <algorithm>
#include <cstdio>

#include "dict/dict_codec.hpp"
#include "explore/core_explorer.hpp"
#include "fdr/fdr_codec.hpp"
#include "report/table.hpp"
#include "socgen/d695.hpp"
#include "socgen/industrial.hpp"

using namespace soctest;

int main() {
  std::printf("=== Extension: compression-code comparison (data volume) ===\n\n");
  Table t({"core", "V_i (bits)", "selective", "dict-256", "FDR",
           "best ratio"});

  std::vector<CoreUnderTest> cores;
  for (const char* name : {"ckt-7", "ckt-10", "ckt-12"})
    cores.push_back(make_industrial_core(name));
  const SocSpec d695 = make_d695();
  cores.push_back(d695.cores[5]);  // s13207: dense small core

  for (const CoreUnderTest& core : cores) {
    const std::int64_t vi = core.spec.initial_data_volume_bits();

    // Selective encoding: best volume over the explored sweep.
    ExploreOptions e;
    e.max_width = 16;
    e.max_chains = 255;
    const CoreTable table = explore_core(core, e);
    std::int64_t v_sel = vi;
    for (const SweepPoint& pt : table.sweep())
      v_sel = std::min(v_sel, pt.data_volume_bits);

    // Dictionary at a representative geometry.
    const int m = std::min(128, core.spec.max_wrapper_chains());
    std::int64_t v_dict = vi;
    if (m >= 2) {
      const WrapperDesign d = design_wrapper(core.spec, m);
      const SliceMap map(d, core.cubes.num_cells());
      const Dictionary dict = build_dictionary(map, core.cubes, 256);
      v_dict = dict_cost(map, core.cubes, dict).total_bits;
    }

    // FDR on the serialized stream.
    const FdrStats fdr = fdr_compress_cubes(core.cubes);

    const std::int64_t best =
        std::min({v_sel, v_dict, fdr.output_bits});
    t.add_row({core.spec.name, Table::num(vi), Table::num(v_sel),
               Table::num(v_dict), Table::num(fdr.output_bits),
               Table::fixed(static_cast<double>(vi) /
                                static_cast<double>(std::max<std::int64_t>(
                                    1, best)),
                            1) +
                   "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("note: volumes only — FDR needs its full scan time regardless; "
              "the paper's\nco-optimization requires slice-parallel schemes "
              "to convert compression into\ntest-time reduction.\n");
  return 0;
}
