// Table 3 reproduction — the paper's headline experiment: test time, test
// data volume and planning CPU time with vs without test-data compression,
// at several TAM-width constraints, on d695 and four systems composed of
// industrial cores.
//
// Paper result to reproduce in shape: with TDC co-optimization the test
// time drops ~12.6x on average (~15.4x for the industrial-core systems)
// and the data volume ~12.8x (~15.8x), with planning CPU under a minute.
#include <cstdio>

#include "opt/baselines.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

int main() {
  std::printf("=== Table 3: test time & volume at TAM-width constraint, "
              "with vs without TDC ===\n\n");

  Table t({"design", "gates", "V_i (Mb)", "W_TAM", "tau_nc (k)", "V_nc (Mb)",
           "CPU_nc (s)", "tau_c (k)", "V_c (Mb)", "CPU_c (s)", "tau_nc/tau_c",
           "V_i/V_c", "V_nc/V_c"});
  Csv csv({"design", "w", "tau_nc", "v_nc_bits", "tau_c", "v_c_bits",
           "time_factor", "vi_over_vc", "vnc_over_vc"});

  double sum_tf = 0, sum_vi = 0, sum_vnc = 0;
  double ind_tf = 0, ind_vi = 0, ind_vnc = 0;
  int rows = 0, ind_rows = 0;

  const auto mb = [](std::int64_t bits) {
    return Table::fixed(static_cast<double>(bits) / 1e6, 2);
  };
  const auto kc = [](std::int64_t cycles) {
    return Table::fixed(static_cast<double>(cycles) / 1e3, 1);
  };

  for (const SocSpec& soc : make_table3_designs()) {
    ExploreOptions e;
    e.max_width = 64;
    e.max_chains = 511;
    const SocOptimizer opt(soc, e);
    const bool industrial = soc.name != "d695";
    // The four width rows are independent optimizations; run them on the
    // runtime pool and aggregate in width order.
    const std::vector<int> widths = {16, 32, 48, 64};
    const std::vector<TdcComparison> cmps =
        runtime::parallel_map(widths, [&](int w) {
          return compare_with_without_tdc(opt, w);
        });
    for (std::size_t wi = 0; wi < widths.size(); ++wi) {
      const int w = widths[wi];
      const TdcComparison& cmp = cmps[wi];
      t.add_row({soc.name,
                 soc.approx_gate_count
                     ? Table::fixed(soc.approx_gate_count / 1e6, 2) + "M"
                     : "n.r.",
                 mb(cmp.initial_volume_bits), Table::num(w),
                 kc(cmp.without_tdc.test_time),
                 mb(cmp.without_tdc.data_volume_bits),
                 Table::fixed(cmp.without_tdc.cpu_seconds, 3),
                 kc(cmp.with_tdc.test_time),
                 mb(cmp.with_tdc.data_volume_bits),
                 Table::fixed(cmp.with_tdc.cpu_seconds, 3),
                 Table::fixed(cmp.time_reduction_factor(), 2),
                 Table::fixed(cmp.volume_vs_initial(), 2),
                 Table::fixed(cmp.volume_vs_uncompressed(), 2)});
      csv.add_row({soc.name, Table::num(w),
                   Table::num(cmp.without_tdc.test_time),
                   Table::num(cmp.without_tdc.data_volume_bits),
                   Table::num(cmp.with_tdc.test_time),
                   Table::num(cmp.with_tdc.data_volume_bits),
                   Table::fixed(cmp.time_reduction_factor(), 3),
                   Table::fixed(cmp.volume_vs_initial(), 3),
                   Table::fixed(cmp.volume_vs_uncompressed(), 3)});

      sum_tf += cmp.time_reduction_factor();
      sum_vi += cmp.volume_vs_initial();
      sum_vnc += cmp.volume_vs_uncompressed();
      ++rows;
      if (industrial) {
        ind_tf += cmp.time_reduction_factor();
        ind_vi += cmp.volume_vs_initial();
        ind_vnc += cmp.volume_vs_uncompressed();
        ++ind_rows;
      }
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("average, all designs:        time %.2fx, V_i/V_c %.2fx, "
              "V_nc/V_c %.2fx   [paper: 12.59x / 12.78x]\n",
              sum_tf / rows, sum_vi / rows, sum_vnc / rows);
  std::printf("average, industrial designs: time %.2fx, V_i/V_c %.2fx, "
              "V_nc/V_c %.2fx   [paper: 15.39x / 15.80x]\n",
              ind_tf / ind_rows, ind_vi / ind_rows, ind_vnc / ind_rows);

  csv.write_file("table3_tdc_gain.csv");
  std::printf("\nwrote table3_tdc_gain.csv\n");
  const runtime::RuntimeStats rs = runtime::collect_stats();
  std::printf("\n[runtime] %s\n", runtime::stats_to_json(rs).c_str());
  return 0;
}
