// EXTENSION (the authors' ATS 2008 follow-up): per-core compression
// technique selection. Every core is explored under both selective
// encoding and dictionary-based slice compression; the SOC optimizer then
// picks per core. Reports which technique wins where and the SOC-level
// benefit over selective-encoding-only planning.
#include <cstdio>

#include "explore/technique_select.hpp"
#include "opt/result.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/table.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

namespace {
const char* tech_name(Technique t) {
  switch (t) {
    case Technique::None: return "-";
    case Technique::SelectiveEncoding: return "selective";
    case Technique::Dictionary: return "dictionary";
  }
  return "?";
}
}  // namespace

int main() {
  std::printf("=== Extension: core-level compression technique selection "
              "(System1) ===\n\n");
  const SocSpec soc = make_system(1);
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 511;
  DictSelectOptions dopts;  // defaults: m grid x entry grid

  std::printf("exploring both techniques per core...\n");
  const std::vector<CoreTable> selected =
      explore_soc_with_selection(soc, e, dopts);

  Table t({"core", "w", "chosen", "m", "entries", "tau", "selective tau"});
  const std::vector<CoreTable> plain = explore_soc(soc, e);
  for (std::size_t i = 0; i < selected.size(); ++i) {
    for (int w : {6, 10, 16}) {
      const CoreChoice& sel = selected[i].best(w);
      const CoreChoice& pl = plain[i].best(w);
      t.add_row({selected[i].core_name(), Table::num(w),
                 sel.mode == AccessMode::Direct ? "direct"
                                                : tech_name(sel.technique),
                 Table::num(sel.m),
                 sel.technique == Technique::Dictionary ? Table::num(sel.aux)
                                                        : "-",
                 Table::num(sel.test_time), Table::num(pl.test_time)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // SOC-level effect.
  const SocOptimizer opt_plain(soc, e);
  const SocOptimizer opt_sel(soc, selected, e);
  OptimizerOptions o;
  o.width = 32;
  const OptimizationResult plain_r = opt_plain.optimize(o);
  const OptimizationResult sel_r = opt_sel.optimize(o);
  std::printf("SOC test time at W=32: selective-only %lld, with technique "
              "selection %lld (%.2f%% better)\n",
              static_cast<long long>(plain_r.test_time),
              static_cast<long long>(sel_r.test_time),
              100.0 * (1.0 - static_cast<double>(sel_r.test_time) /
                                 static_cast<double>(plain_r.test_time)));
  return 0;
}
