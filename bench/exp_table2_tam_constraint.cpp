// Table 2 reproduction: test time under a TAM-width (on-chip wire)
// constraint for d695, vs the [18]-like SOC-level-decompression stand-in
// and the [11]-like fixed-w4 stand-in.
//
// Paper shape to check: under a TAM-wire constraint the proposed per-core
// expansion beats SOC-level expansion clearly (the expanded per-TAM buses
// now eat the constrained resource).
#include <cstdio>

#include "opt/baselines.hpp"
#include "report/table.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "socgen/d695.hpp"

using namespace soctest;

int main() {
  std::printf("=== Table 2: test time at TAM-width constraint (d695) ===\n\n");
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 64;
  e.max_chains = 511;
  const SocOptimizer opt(soc, e);

  Table t({"W_TAM", "tau[18]-like", "tau[11]-like", "tau proposed",
           "prop/[18]", "prop/[11]"});
  int proposed_wins_vs_pertam = 0, rows = 0;
  // Width rows are independent: sweep on the runtime pool, report in order.
  const std::vector<int> widths = {16, 24, 32, 40, 48, 56, 64};
  const std::vector<MethodComparison> cmps =
      runtime::parallel_map(widths, [&](int w) {
        return compare_methods(opt, w, ConstraintMode::TamWidth);
      });
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const int w = widths[i];
    const MethodComparison& cmp = cmps[i];
    t.add_row({Table::num(w), Table::num(cmp.per_tam.test_time),
               Table::num(cmp.fixed_w4.test_time),
               Table::num(cmp.proposed.test_time),
               Table::fixed(static_cast<double>(cmp.proposed.test_time) /
                                static_cast<double>(cmp.per_tam.test_time),
                            2),
               Table::fixed(static_cast<double>(cmp.proposed.test_time) /
                                static_cast<double>(cmp.fixed_w4.test_time),
                            2)});
    proposed_wins_vs_pertam += cmp.proposed.test_time <= cmp.per_tam.test_time;
    ++rows;
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("proposed <= [18]-like on %d/%d widths "
              "[paper: proposed better under TAM constraint]\n",
              proposed_wins_vs_pertam, rows);
  const runtime::RuntimeStats rs = runtime::collect_stats();
  std::printf("\n[runtime] %s\n", runtime::stats_to_json(rs).c_str());
  return 0;
}
