// Figure 2 reproduction: non-monotonic variation of test time with the
// number of wrapper chains at fixed codeword width w = 10 (m in [128, 255])
// for core ckt-7.
//
// Paper shape: test time generally falls as m grows, but NOT monotonically;
// the minimum sits below the maximum m (253 in the paper), and
// (tau_max - tau_min) / tau_max ~= 31%.
#include <algorithm>
#include <cstdio>

#include "explore/core_explorer.hpp"
#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "runtime/stats.hpp"
#include "socgen/industrial.hpp"

using namespace soctest;

int main() {
  std::printf("=== Figure 2: tau vs wrapper chains at TAM width 10 (ckt-7) ===\n\n");
  const CoreUnderTest core = make_industrial_core("ckt-7");
  ExploreOptions opts;
  opts.max_width = 16;
  opts.max_chains = 255;
  const CoreTable table = explore_core(core, opts);

  const std::vector<SweepPoint> band = table.sweep_at_width(10);
  if (band.empty()) {
    std::printf("no geometries at width 10\n");
    return 1;
  }

  ChartSeries series;
  const SweepPoint* best = &band.front();
  const SweepPoint* worst = &band.front();
  int direction_changes = 0;
  for (std::size_t i = 0; i < band.size(); ++i) {
    series.x.push_back(band[i].m);
    series.y.push_back(static_cast<double>(band[i].test_time));
    if (band[i].test_time < best->test_time) best = &band[i];
    if (band[i].test_time > worst->test_time) worst = &band[i];
    if (i >= 2) {
      const auto d1 = band[i - 1].test_time - band[i - 2].test_time;
      const auto d2 = band[i].test_time - band[i - 1].test_time;
      if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) ++direction_changes;
    }
  }

  ChartOptions copts;
  copts.title = "ckt-7, w = 10: test time vs number of wrapper chains m";
  copts.x_label = "wrapper chains m";
  copts.y_label = "test time (cycles)";
  std::printf("%s\n", render_chart(series, copts).c_str());

  Table t({"m", "codewords", "test time", "volume (bits)"});
  for (const SweepPoint& pt : band) {
    if (pt.m % 16 == 0 || &pt == best || &pt == worst)
      t.add_row({Table::num(pt.m), Table::num(pt.codewords),
                 Table::num(pt.test_time), Table::num(pt.data_volume_bits)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double spread =
      100.0 * static_cast<double>(worst->test_time - best->test_time) /
      static_cast<double>(worst->test_time);
  std::printf("tau_min = %lld at m = %d (band max m = %d)\n",
              static_cast<long long>(best->test_time), best->m,
              band.back().m);
  std::printf("tau_max = %lld at m = %d\n",
              static_cast<long long>(worst->test_time), worst->m);
  std::printf("(tau_max - tau_min)/tau_max = %.1f%%   [paper: 31%%]\n", spread);
  std::printf("direction changes across the band: %d (paper: non-monotonic)\n",
              direction_changes);
  std::printf("minimum at the largest m? %s   [paper: no, m = 253 of 255]\n",
              best->m == band.back().m ? "yes" : "no");

  Csv csv({"m", "w", "codewords", "test_time", "volume_bits"});
  for (const SweepPoint& pt : band)
    csv.add_row({Table::num(pt.m), Table::num(pt.w), Table::num(pt.codewords),
                 Table::num(pt.test_time), Table::num(pt.data_volume_bits)});
  csv.write_file("fig2_ckt7_w10.csv");
  std::printf("\nwrote fig2_ckt7_w10.csv\n");
  // The (w, m) sweep above ran chunked across the runtime pool.
  const runtime::RuntimeStats rs = runtime::collect_stats();
  std::printf("\n[runtime] %s\n", runtime::stats_to_json(rs).c_str());
  return 0;
}
