// Daemon throughput: cold vs warm request batches through the in-process
// ServerCore — the same engine `soctest --serve` and `--batch` run. Two
// scenarios:
//
//   repeat   N distinct synthetic SOCs submitted concurrently twice over.
//            The first wave builds N sessions (full per-core explore); the
//            second wave must be served from the SessionCache and finish
//            measurably faster, with nonzero cross-request cache hits.
//   sweep    One SOC, a sequence of TAM widths inside one explore band
//            (the session fingerprint covers the explored width range
//            max(width, 32), not the requested width itself), so every
//            width after the first rides the warm columns/memo; compared
//            against fresh cold ServerCores per width.
//
// Gates (exit 1): warm wall-clock < cold wall-clock in both scenarios,
// warm reports byte-identical to their cold counterparts, and nonzero
// session-cache hits. Results are spliced into the "server" section of
// BENCH_runtime.json; micro_kernels rewrites the google-benchmark body of
// that file wholesale, so this binary only replaces its own section.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "report/table.hpp"
#include "server/server.hpp"

using namespace soctest;
using namespace soctest::server;

namespace {

/// Thread-safe line sink; keeps the raw "report" object per request id so
/// cold and warm waves can be compared byte for byte.
class Sink {
 public:
  EmitFn emit() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(m_);
      const std::size_t pos = line.find("\"report\": ");
      if (pos == std::string::npos) return;
      const std::size_t id0 = line.find("\"id\": \"") + 7;
      const std::string id = line.substr(id0, line.find('"', id0) - id0);
      reports_[id] = line.substr(pos + 10, line.size() - (pos + 10) - 1);
    };
  }
  std::string report(const std::string& id) const {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = reports_.find(id);
    return it == reports_.end() ? std::string() : it->second;
  }

 private:
  mutable std::mutex m_;
  std::map<std::string, std::string> reports_;
};

std::string synth_request(const std::string& id, int cores, int seed,
                          int width) {
  return "{\"op\": \"optimize\", \"id\": \"" + id + "\", \"design\": "
         "\"synth:" + std::to_string(cores) + ":" + std::to_string(seed) +
         "\", \"width\": " + std::to_string(width) + "}";
}

/// Submits all lines concurrently and waits for every job; returns wall
/// seconds for the whole wave.
double run_wave(ServerCore& core, const std::vector<std::string>& lines,
                Sink& sink) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::shared_future<void>> pending;
  for (const std::string& line : lines)
    pending.push_back(core.handle_line(line, sink.emit()));
  for (auto& fut : pending)
    if (fut.valid()) fut.get();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Removes the top-level "server" key (and its preceding comma) from an
/// existing BENCH_runtime.json body by bracket matching, leaving the
/// google-benchmark "context"/"benchmarks" sections intact.
std::string drop_server_section(std::string existing) {
  const std::size_t marker = existing.find("\n  \"server\":");
  if (marker == std::string::npos)
    return existing;
  std::size_t start = marker;
  if (start > 0 && existing[start - 1] == ',')
    --start;
  std::size_t p = existing.find_first_of("[{", marker);
  if (p == std::string::npos)
    return existing.substr(0, start);  // malformed tail: drop it
  int depth = 0;
  std::size_t q = p;
  for (; q < existing.size(); ++q) {
    const char c = existing[q];
    if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth == 0) {
        ++q;
        break;
      }
    }
  }
  return existing.substr(0, start) + existing.substr(q);
}

/// Replaces (or appends) the top-level "server" key of BENCH_runtime.json,
/// leaving the micro_kernels body intact. Falls back to a standalone file
/// when none exists yet.
void splice_server_section(const std::string& server_json) {
  std::string existing;
  {
    std::ifstream in("BENCH_runtime.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  if (const std::size_t close = drop_server_section(existing).rfind('}');
      close != std::string::npos) {
    out = drop_server_section(existing).substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
      out.pop_back();
  }
  if (out.empty())
    out = "{\n  \"experiment\": \"server_throughput\"";
  out += ",\n  \"server\": {\n" + server_json + "  }\n}\n";
  std::ofstream f("BENCH_runtime.json");
  f << out;
}

std::string json_f(const char* key, double v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "    \"%s\": %.6f%s\n", key, v,
                comma ? "," : "");
  return buf;
}

std::string json_u(const char* key, std::uint64_t v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "    \"%s\": %llu%s\n", key,
                static_cast<unsigned long long>(v), comma ? "," : "");
  return buf;
}

}  // namespace

int main() {
  std::printf("=== Daemon throughput: cold vs warm request waves ===\n\n");
  bool ok = true;
  std::string json;

  // --- Scenario 1: repeat traffic over N distinct SOCs -------------------
  constexpr int kSocs = 6;
  constexpr int kCores = 24;
  std::vector<std::string> cold_wave, warm_wave;
  for (int i = 0; i < kSocs; ++i) {
    cold_wave.push_back(
        synth_request("cold" + std::to_string(i), kCores, 100 + i, 24));
    warm_wave.push_back(
        synth_request("warm" + std::to_string(i), kCores, 100 + i, 24));
  }

  ServerCore core;
  Sink sink;
  const double cold_s = run_wave(core, cold_wave, sink);
  const double warm_s = run_wave(core, warm_wave, sink);
  const runtime::CacheStats repeat_stats = core.session_cache().stats();

  bool identical = true;
  for (int i = 0; i < kSocs; ++i) {
    const std::string c = sink.report("cold" + std::to_string(i));
    const std::string w = sink.report("warm" + std::to_string(i));
    identical = identical && !c.empty() && c == w;
  }

  Table t1({"wave", "requests", "wall s", "session hits", "identical"});
  t1.add_row({"cold", std::to_string(kSocs), Table::fixed(cold_s, 3), "0",
              "-"});
  t1.add_row({"warm", std::to_string(kSocs), Table::fixed(warm_s, 3),
              std::to_string(repeat_stats.hits), identical ? "yes" : "NO"});
  std::printf("%s", t1.to_string().c_str());
  std::printf("\nrepeat speedup: %.2fx\n\n",
              warm_s > 0 ? cold_s / warm_s : 0.0);

  ok = ok && identical && repeat_stats.hits >= kSocs && warm_s < cold_s;

  json += "    \"repeat\": {\n";
  json += "  " + json_u("requests", kSocs);
  json += "  " + json_f("cold_wall_seconds", cold_s);
  json += "  " + json_f("warm_wall_seconds", warm_s);
  json += "  " + json_f("speedup", warm_s > 0 ? cold_s / warm_s : 0.0);
  json += "  " + json_u("session_hits", repeat_stats.hits);
  json += "  " + json_u("session_insertions", repeat_stats.insertions, false);
  json += "    },\n";

  // --- Scenario 2: width sweep on one SOC (cross-width warm sharing) -----
  const std::vector<int> widths = {12, 16, 20, 24, 32};
  double sweep_cold_s = 0.0;
  Sink cold_sink;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ServerCore fresh;  // a cold daemon per width: no sharing possible
    sweep_cold_s += run_wave(
        fresh, {synth_request("sc" + std::to_string(i), kCores, 7, widths[i])},
        cold_sink);
  }

  ServerCore shared;
  Sink warm_sink;
  double sweep_warm_s = 0.0;
  for (std::size_t i = 0; i < widths.size(); ++i)
    sweep_warm_s += run_wave(
        shared, {synth_request("sw" + std::to_string(i), kCores, 7, widths[i])},
        warm_sink);
  const runtime::CacheStats sweep_stats = shared.session_cache().stats();

  bool sweep_identical = true;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const std::string c = cold_sink.report("sc" + std::to_string(i));
    const std::string w = warm_sink.report("sw" + std::to_string(i));
    sweep_identical = sweep_identical && !c.empty() && c == w;
  }

  Table t2({"sweep", "widths", "wall s", "session hits", "identical"});
  t2.add_row({"cold daemons", std::to_string(widths.size()),
              Table::fixed(sweep_cold_s, 3), "0", "-"});
  t2.add_row({"one daemon", std::to_string(widths.size()),
              Table::fixed(sweep_warm_s, 3), std::to_string(sweep_stats.hits),
              sweep_identical ? "yes" : "NO"});
  std::printf("%s", t2.to_string().c_str());
  std::printf("\nsweep speedup: %.2fx\n\n",
              sweep_warm_s > 0 ? sweep_cold_s / sweep_warm_s : 0.0);

  ok = ok && sweep_identical && sweep_stats.hits >= widths.size() - 1 &&
       sweep_warm_s < sweep_cold_s;

  json += "    \"width_sweep\": {\n";
  json += "  " + json_u("widths", widths.size());
  json += "  " + json_f("cold_wall_seconds", sweep_cold_s);
  json += "  " + json_f("warm_wall_seconds", sweep_warm_s);
  json += "  " + json_f("speedup",
                        sweep_warm_s > 0 ? sweep_cold_s / sweep_warm_s : 0.0);
  json += "  " + json_u("session_hits", sweep_stats.hits, false);
  json += "    }\n";

  splice_server_section(json);
  std::printf("BENCH_runtime.json: \"server\" section updated\n");

  if (!ok) {
    std::printf("FAIL: warm waves must beat cold with identical reports "
                "and nonzero session hits\n");
    return 1;
  }
  std::printf("OK: warm repeats beat cold with bit-identical reports\n");
  return 0;
}
