// Word-parallel kernel gates: the bit-parallel codec/explore rewrite must
// (1) beat the seed trit-at-a-time slice counting loop by >= 5x,
// (2) make the explore-phase geometry sweep measurably faster than the
//     sort-based seed cost model on the same workload, and
// (3) produce byte-identical cost reports with the SIMD path forced on and
//     forced off.
//
// Gates exit 1 on failure. Results are spliced into the "kernels" section
// of BENCH_runtime.json; micro_kernels rewrites the google-benchmark body
// of that file wholesale, so this binary only replaces its own section
// (same contract as exp_server_throughput's "server" section).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bitvec/slice_kernels.hpp"
#include "codec/sparse_cost.hpp"
#include "dft/soc_spec.hpp"
#include "report/table.hpp"
#include "socgen/cube_synth.hpp"
#include "socgen/rng.hpp"
#include "wrapper/slice_map.hpp"
#include "wrapper/wrapper_design.hpp"

using namespace soctest;

namespace {

volatile std::int64_t g_sink = 0;

/// Median-free micro timer: doubles reps until the body runs >= 30 ms, then
/// reports ns per call.
double time_ns_per_call(const std::function<void()>& body) {
  using clock = std::chrono::steady_clock;
  std::int64_t reps = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::int64_t i = 0; i < reps; ++i) body();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= 0.03 || reps > (std::int64_t{1} << 40))
      return s * 1e9 / static_cast<double>(reps);
    reps *= 2;
  }
}

std::vector<TernaryVector> slice_pool(int width, int count, Rng& rng) {
  std::vector<TernaryVector> pool;
  for (int i = 0; i < count; ++i) {
    TernaryVector v(static_cast<std::size_t>(width));
    for (std::size_t j = 0; j < v.size(); ++j) {
      const double r = rng.next_double();
      if (r < 0.15)
        v.set(j, Trit::One);
      else if (r < 0.4)
        v.set(j, Trit::Zero);
    }
    pool.push_back(std::move(v));
  }
  return pool;
}

/// The seed's counting loop: one virtual get() per position.
std::int64_t trit_count(const TernaryVector& v) {
  std::int64_t c0 = 0, c1 = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    switch (v.get(i)) {
      case Trit::Zero: ++c0; break;
      case Trit::One: ++c1; break;
      case Trit::X: break;
    }
  }
  return c0 + (c1 << 20);
}

CoreUnderTest explore_workload() {
  CoreUnderTest c;
  c.spec.name = "kernels-bench";
  c.spec.num_inputs = 32;
  c.spec.num_outputs = 24;
  c.spec.flexible_scan = true;
  c.spec.flexible_scan_cells = 20'000;
  c.spec.num_patterns = 100;
  CubeSynthParams p;
  p.num_cells = c.spec.stimulus_bits_per_pattern();
  p.num_patterns = c.spec.num_patterns;
  p.care_density = 0.02;
  c.cubes = synthesize_cubes(p, 11);
  return c;
}

std::string cost_report_json(const std::vector<int>& geometries,
                             const CoreUnderTest& core) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < geometries.size(); ++i) {
    const int m = geometries[i];
    const WrapperDesign d = design_wrapper(core.spec, m);
    const SliceMap map(d, core.cubes.num_cells());
    const SparseCostResult r = sparse_stream_cost(map, core.cubes);
    os << (i ? "," : "") << "{\"m\":" << m << ",\"total\":"
       << r.total_codewords << ",\"touched\":" << r.touched_slices
       << ",\"empty\":" << r.empty_slices << ",\"singles\":"
       << r.single_codewords << ",\"pairs\":" << r.group_copy_pairs << "}";
  }
  os << "]";
  return os.str();
}

// --- BENCH_runtime.json "kernels" section splicing (see
// --- exp_server_throughput.cpp for the same idiom on "server") ------------

std::string drop_kernels_section(std::string existing) {
  const std::size_t marker = existing.find("\n  \"kernels\":");
  if (marker == std::string::npos) return existing;
  std::size_t start = marker;
  if (start > 0 && existing[start - 1] == ',') --start;
  std::size_t p = existing.find_first_of("[{", marker);
  if (p == std::string::npos) return existing.substr(0, start);
  int depth = 0;
  std::size_t q = p;
  for (; q < existing.size(); ++q) {
    const char c = existing[q];
    if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth == 0) {
        ++q;
        break;
      }
    }
  }
  return existing.substr(0, start) + existing.substr(q);
}

void splice_kernels_section(const std::string& kernels_json) {
  std::string existing;
  {
    std::ifstream in("BENCH_runtime.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  if (const std::size_t close = drop_kernels_section(existing).rfind('}');
      close != std::string::npos) {
    out = drop_kernels_section(existing).substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
      out.pop_back();
  }
  if (out.empty()) out = "{\n  \"experiment\": \"kernels\"";
  out += ",\n  \"kernels\": {\n" + kernels_json + "  }\n}\n";
  std::ofstream f("BENCH_runtime.json");
  f << out;
}

std::string json_f(const char* key, double v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "    \"%s\": %.6f%s\n", key, v,
                comma ? "," : "");
  return buf;
}

}  // namespace

int main() {
  std::printf("=== Word-parallel kernel gates ===\n\n");
  bool ok = true;
  std::string json;
  json += "    \"simd_supported\": ";
  json += kernels::avx2_supported() ? "true" : "false";
  json += ",\n    \"mode\": \"";
  json += kernels::mode_name(kernels::active_mode());
  json += "\",\n";

  // --- Gate 1: slice counting, trit oracle vs packed-word kernels ---------
  Rng rng(17);
  Table t1({"width", "trit ns", "word ns", "simd ns", "word x", "simd x"});
  double min_word_speedup = 1e30;
  json += "    \"slice_count\": {\n";
  const std::vector<int> widths = {130, 255, 1024};
  for (std::size_t wi = 0; wi < widths.size(); ++wi) {
    const int width = widths[wi];
    const std::vector<TernaryVector> pool = slice_pool(width, 64, rng);
    std::size_t next = 0;
    const auto pick = [&]() -> const TernaryVector& {
      const TernaryVector& v = pool[next];
      next = (next + 1) % pool.size();
      return v;
    };
    const double trit_ns =
        time_ns_per_call([&] { g_sink = g_sink + trit_count(pick()); });
    const double word_ns = time_ns_per_call([&] {
      const TernaryVector& v = pick();
      g_sink = g_sink + kernels::slice_count_scalar(v.care_words(),
                                                    v.value_words(),
                                                    v.num_words())
                            .care;
    });
    const double simd_ns = time_ns_per_call([&] {
      const TernaryVector& v = pick();
      g_sink = g_sink + kernels::slice_count(v.care_words(), v.value_words(),
                                             v.num_words())
                            .care;
    });
    const double word_x = word_ns > 0 ? trit_ns / word_ns : 0;
    const double simd_x = simd_ns > 0 ? trit_ns / simd_ns : 0;
    min_word_speedup = std::min(min_word_speedup, word_x);
    t1.add_row({std::to_string(width), Table::fixed(trit_ns, 1),
                Table::fixed(word_ns, 1), Table::fixed(simd_ns, 1),
                Table::fixed(word_x, 1), Table::fixed(simd_x, 1)});
    json += "      \"width_" + std::to_string(width) + "\": {\n";
    json += "    " + json_f("trit_ns", trit_ns);
    json += "    " + json_f("word_scalar_ns", word_ns);
    json += "    " + json_f("word_dispatched_ns", simd_ns);
    json += "    " + json_f("scalar_speedup", word_x);
    json += "    " + json_f("dispatched_speedup", simd_x, false);
    json += wi + 1 < widths.size() ? "      },\n" : "      }\n";
  }
  json += "    },\n";
  std::printf("%s\n", t1.to_string().c_str());
  ok = ok && min_word_speedup >= 5.0;
  if (min_word_speedup < 5.0)
    std::printf("GATE FAIL: word-parallel slice counting only %.1fx over the "
                "trit loop (need >= 5x)\n",
                min_word_speedup);

  // --- Gate 2: explore-phase geometry sweep, sorted seed vs fused ---------
  const CoreUnderTest core = explore_workload();
  const int m_cap = std::min(255, core.spec.max_wrapper_chains());
  using clock = std::chrono::steady_clock;

  std::int64_t sorted_total = 0, fused_total = 0;
  const auto t_sorted0 = clock::now();
  for (int m = 2; m <= m_cap; ++m) {
    const WrapperDesign d = design_wrapper(core.spec, m);
    const SliceMap map(d, core.cubes.num_cells());
    sorted_total += sparse_stream_cost_sorted(map, core.cubes).total_codewords;
  }
  const double sorted_s =
      std::chrono::duration<double>(clock::now() - t_sorted0).count();
  const auto t_fused0 = clock::now();
  for (int m = 2; m <= m_cap; ++m) {
    const WrapperDesign d = design_wrapper(core.spec, m);
    const SliceMap map(d, core.cubes.num_cells());
    fused_total += sparse_stream_cost(map, core.cubes).total_codewords;
  }
  const double fused_s =
      std::chrono::duration<double>(clock::now() - t_fused0).count();

  Table t2({"sweep", "geometries", "wall s", "codewords"});
  t2.add_row({"sorted (seed)", std::to_string(m_cap - 1),
              Table::fixed(sorted_s, 3), std::to_string(sorted_total)});
  t2.add_row({"fused (word)", std::to_string(m_cap - 1),
              Table::fixed(fused_s, 3), std::to_string(fused_total)});
  std::printf("%s\nexplore sweep speedup: %.2fx\n\n", t2.to_string().c_str(),
              fused_s > 0 ? sorted_s / fused_s : 0.0);
  ok = ok && fused_total == sorted_total && fused_s < sorted_s;
  if (fused_total != sorted_total)
    std::printf("GATE FAIL: fused and sorted sweeps disagree\n");
  else if (fused_s >= sorted_s)
    std::printf("GATE FAIL: fused sweep must beat the sorted seed sweep\n");

  json += "    \"explore_sweep\": {\n";
  json += json_f("geometries", m_cap - 1);
  json += json_f("patterns", core.spec.num_patterns);
  json += json_f("sorted_wall_seconds", sorted_s);
  json += json_f("fused_wall_seconds", fused_s);
  json += json_f("speedup", fused_s > 0 ? sorted_s / fused_s : 0.0, false);
  json += "    },\n";

  // --- Gate 3: forced-scalar vs forced-SIMD byte identity -----------------
  const std::vector<int> geometries = {8, 64, 255};
  const kernels::SimdMode prev_mode = kernels::active_mode();
  kernels::set_mode(kernels::SimdMode::Scalar);
  const std::string scalar_report = cost_report_json(geometries, core);
  kernels::set_mode(kernels::SimdMode::Avx2);  // stays scalar if unsupported
  const std::string simd_report = cost_report_json(geometries, core);
  kernels::set_mode(prev_mode);
  const bool identical = scalar_report == simd_report;
  std::printf("forced-scalar vs forced-%s cost report: %s\n\n",
              kernels::avx2_supported() ? "avx2" : "scalar(no avx2)",
              identical ? "byte-identical" : "MISMATCH");
  ok = ok && identical;

  json += "    \"dispatch_identity\": {\n";
  json += "      \"byte_identical\": ";
  json += identical ? "true" : "false";
  json += ",\n      \"report\": " + scalar_report + "\n";
  json += "    }\n";

  splice_kernels_section(json);
  std::printf("BENCH_runtime.json: \"kernels\" section updated\n");

  if (!ok) {
    std::printf("FAIL: kernel gates not met\n");
    return 1;
  }
  std::printf("OK: >=5x slice counting, fused sweep faster, dispatch "
              "byte-identical\n");
  return 0;
}
