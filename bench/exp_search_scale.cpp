// SCALE study of the incremental search engine on synthetic 100+-core
// SOCs (socgen/synthetic). On the paper-scale designs the win is mostly a
// counter win — schedules there cost microseconds. At 120/240 cores the
// step-4 schedule construction dominates each candidate evaluation, so
// memo hits and bound pruning must translate into WALL-CLOCK speedups;
// this experiment gates on that. Results are spliced into the "scale"
// section of BENCH_search.json (run exp_search_incremental first — it
// rewrites the file wholesale; this binary only replaces its own section).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "opt/annealing.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/table.hpp"
#include "runtime/stats.hpp"
#include "socgen/synthetic.hpp"

using namespace soctest;

namespace {

struct Run {
  runtime::SearchStats stats;
  double wall_seconds = 0.0;
  std::int64_t test_time = 0;
  std::int64_t data_volume_bits = 0;
};

template <typename F>
Run timed_best_of(int reps, const F& go) {
  Run out;
  out.wall_seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    runtime::reset_search_counters();
    const auto t0 = std::chrono::steady_clock::now();
    const OptimizationResult r = go();
    const auto t1 = std::chrono::steady_clock::now();
    out.stats = runtime::collect_stats().search;
    out.wall_seconds = std::min(
        out.wall_seconds, std::chrono::duration<double>(t1 - t0).count());
    out.test_time = r.test_time;
    out.data_volume_bits = r.data_volume_bits;
  }
  return out;
}

SocSpec scale_soc(int num_cores, std::uint64_t seed) {
  // Small per-core geometry: τ-table exploration stays cheap, the n-core
  // schedule construction per candidate is what's being measured.
  SyntheticSocParams p;
  p.num_cores = num_cores;
  p.max_inputs = 16;
  p.max_outputs = 16;
  p.max_chains = 6;
  p.max_chain_length = 32;
  p.max_patterns = 10;
  p.giant_scale = 4;
  return make_synthetic_soc(p, seed);
}

std::string json_u64(const char* key, std::uint64_t v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "      \"%s\": %llu%s\n", key,
                static_cast<unsigned long long>(v), comma ? "," : "");
  return buf;
}

std::string json_run(const char* key, const Run& r, bool comma) {
  std::string s = "    \"" + std::string(key) + "\": {\n";
  s += json_u64("anneal_proposals", r.stats.anneal_proposals);
  s += json_u64("anneal_memo_hits", r.stats.anneal_memo_hits);
  s += json_u64("anneal_bound_pruned", r.stats.anneal_bound_pruned);
  s += json_u64("candidates_generated", r.stats.candidates_generated);
  s += json_u64("candidates_pruned", r.stats.candidates_pruned);
  s += json_u64("candidates_scheduled", r.stats.candidates_scheduled);
  s += json_u64("schedule_reuse_hits", r.stats.schedule_reuse_hits);
  s += json_u64("column_reuse_hits", r.stats.column_reuse_hits);
  s += json_u64("columns_computed", r.stats.columns_computed);
  s += json_u64("test_time", static_cast<std::uint64_t>(r.test_time));
  char buf[64];
  std::snprintf(buf, sizeof buf, "      \"wall_seconds\": %.6f\n",
                r.wall_seconds);
  s += buf;
  s += comma ? "    },\n" : "    }\n";
  return s;
}

/// Removes the top-level "scale" key (and its preceding comma) from an
/// existing BENCH_search.json body by bracket matching, leaving any other
/// section — exp_search_incremental's body, exp_portfolio's section —
/// intact regardless of ordering. Safe because no string in the file
/// contains brackets.
std::string drop_scale_section(std::string existing) {
  const std::size_t marker = existing.find("\n  \"scale\":");
  if (marker == std::string::npos)
    return existing;
  std::size_t start = marker;
  if (start > 0 && existing[start - 1] == ',')
    --start;
  std::size_t p = existing.find_first_of("[{", marker);
  if (p == std::string::npos)
    return existing.substr(0, start);  // malformed tail: drop it
  int depth = 0;
  std::size_t q = p;
  for (; q < existing.size(); ++q) {
    const char c = existing[q];
    if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth == 0) {
        ++q;
        break;
      }
    }
  }
  return existing.substr(0, start) + existing.substr(q);
}

/// Replaces (or appends) the top-level "scale" key of BENCH_search.json,
/// leaving every other section intact. Falls back to a standalone file
/// when none exists yet.
void splice_scale_section(const std::string& scale_json) {
  std::string existing;
  {
    std::ifstream in("BENCH_search.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  if (const std::size_t close = drop_scale_section(existing).rfind('}');
      close != std::string::npos) {
    out = drop_scale_section(existing).substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
      out.pop_back();
  }
  if (out.empty())
    out = "{\n  \"experiment\": \"search_scale\"";
  out += ",\n  \"scale\": [\n" + scale_json + "  ]\n}\n";
  std::ofstream f("BENCH_search.json");
  f << out;
}

}  // namespace

int main() {
  std::printf("=== Incremental search at scale (synthetic SOCs, W=24) ===\n\n");

  Table t({"soc", "search", "sched(full)", "sched(inc)", "wall(full) s",
           "wall(inc) s", "speedup"});
  std::string json;
  bool all_identical = true;
  double min_climb_speedup = 1e30;

  std::vector<int> sizes = {120, 240};
  // The 1000-core configuration takes minutes and is an optional CI
  // artifact, not a hard CI step: opt in with SOCTEST_SCALE_XL=1.
  const char* xl = std::getenv("SOCTEST_SCALE_XL");
  if (xl && std::strcmp(xl, "1") == 0) {
    sizes.push_back(1000);
    std::printf("SOCTEST_SCALE_XL=1: including the 1000-core SOC "
                "(single rep)\n\n");
  }
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const SocSpec soc = scale_soc(sizes[si], 0xC0DE + si);
    ExploreOptions e;
    e.max_width = 10;
    e.max_chains = 32;
    const SocOptimizer opt(soc, e);

    OptimizerOptions o;
    o.width = 24;
    o.mode = ArchMode::PerCore;

    // XL sizes run once — the schedule cost is large enough that rep-to-rep
    // noise no longer hides the effect being measured.
    const int climb_reps = sizes[si] >= 1000 ? 1 : 3;
    const int anneal_reps = sizes[si] >= 1000 ? 1 : 2;
    o.incremental = false;
    const Run cf = timed_best_of(climb_reps, [&] { return opt.optimize(o); });
    o.incremental = true;
    const Run ci = timed_best_of(climb_reps, [&] { return opt.optimize(o); });

    AnnealingOptions a;  // default 2000-iteration walk
    o.incremental = false;
    const Run af =
        timed_best_of(anneal_reps, [&] { return optimize_annealing(opt, o, a); });
    o.incremental = true;
    const Run ai =
        timed_best_of(anneal_reps, [&] { return optimize_annealing(opt, o, a); });

    if (ci.test_time != cf.test_time ||
        ci.data_volume_bits != cf.data_volume_bits ||
        ai.test_time != af.test_time ||
        ai.data_volume_bits != af.data_volume_bits) {
      std::fprintf(stderr, "FAIL %s: incremental result differs\n",
                   soc.name.c_str());
      all_identical = false;
    }

    const double climb_speedup = cf.wall_seconds / std::max(1e-9, ci.wall_seconds);
    const double anneal_speedup = af.wall_seconds / std::max(1e-9, ai.wall_seconds);
    min_climb_speedup = std::min(min_climb_speedup, climb_speedup);

    t.add_row({soc.name, "hill-climb", Table::num(cf.stats.candidates_scheduled),
               Table::num(ci.stats.candidates_scheduled),
               Table::fixed(cf.wall_seconds, 3), Table::fixed(ci.wall_seconds, 3),
               Table::fixed(climb_speedup, 2) + "x"});
    t.add_row({soc.name, "annealing", Table::num(af.stats.candidates_scheduled),
               Table::num(ai.stats.candidates_scheduled),
               Table::fixed(af.wall_seconds, 3), Table::fixed(ai.wall_seconds, 3),
               Table::fixed(anneal_speedup, 2) + "x"});

    json += "  {\n    \"soc\": \"" + soc.name + "\",\n";
    char line[160];
    std::snprintf(line, sizeof line,
                  "    \"num_cores\": %d,\n"
                  "    \"hill_climb_speedup\": %.2f,\n"
                  "    \"anneal_speedup\": %.2f,\n",
                  sizes[si], climb_speedup, anneal_speedup);
    json += line;
    json += json_run("climb_full", cf, true);
    json += json_run("climb_incremental", ci, true);
    json += json_run("anneal_full", af, true);
    json += json_run("anneal_incremental", ai, false);
    json += si + 1 < sizes.size() ? "  },\n" : "  }\n";
  }

  std::printf("%s\n", t.to_string().c_str());
  std::printf("minimum hill-climb wall-clock speedup: %.2fx "
              "(issue gate: > 1x — a wall-clock win, not just counters)\n",
              min_climb_speedup);

  splice_scale_section(json);
  std::printf("spliced \"scale\" section into BENCH_search.json\n");
  if (!all_identical || min_climb_speedup <= 1.0) {
    std::fprintf(stderr, "FAIL: equivalence or wall-clock gate not met\n");
    return 1;
  }
  return 0;
}
