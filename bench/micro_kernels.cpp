// google-benchmark microbenchmarks for the library's hot kernels: slice
// encoding, sparse cost evaluation, wrapper design, exploration and
// scheduling. Not part of the paper; used for performance regression
// tracking of the reproduction itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <future>

#include "bitvec/slice_kernels.hpp"
#include "codec/sparse_cost.hpp"
#include "codec/stream_encoder.hpp"
#include "explore/core_explorer.hpp"
#include "opt/soc_optimizer.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/greedy_scheduler.hpp"
#include "socgen/cube_synth.hpp"
#include "wrapper/wrapper_design.hpp"

namespace {

using namespace soctest;

CoreUnderTest bench_core(std::int64_t cells, int patterns, double density) {
  CoreUnderTest c;
  c.spec.name = "bench";
  c.spec.num_inputs = 32;
  c.spec.num_outputs = 24;
  c.spec.flexible_scan = true;
  c.spec.flexible_scan_cells = cells;
  c.spec.num_patterns = patterns;
  CubeSynthParams p;
  p.num_cells = c.spec.stimulus_bits_per_pattern();
  p.num_patterns = patterns;
  p.care_density = density;
  c.cubes = synthesize_cubes(p, 1);
  return c;
}

TernaryVector patterned_slice(int m) {
  TernaryVector slice(static_cast<std::size_t>(m));
  for (int i = 0; i < m; i += 7) slice.set(static_cast<std::size_t>(i), Trit::One);
  for (int i = 3; i < m; i += 11) slice.set(static_cast<std::size_t>(i), Trit::Zero);
  return slice;
}

void BM_SliceEncode(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const CodecParams p = CodecParams::for_chains(m);
  const SliceEncoder enc(p);
  const TernaryVector slice = patterned_slice(m);
  for (auto _ : state) benchmark::DoNotOptimize(enc.encode(slice).words.size());
}
BENCHMARK(BM_SliceEncode)->Arg(16)->Arg(64)->Arg(255);

// --- slice counting: seed trit-at-a-time loop vs packed-word kernels ------
// (gated version with recorded speedups: bench/exp_kernels.cpp)

void BM_SliceCountTrit(benchmark::State& state) {
  // The seed's counting loop: one virtual slice.get() per position.
  const TernaryVector slice =
      patterned_slice(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::int64_t c0 = 0, c1 = 0;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      switch (slice.get(i)) {
        case Trit::Zero: ++c0; break;
        case Trit::One: ++c1; break;
        case Trit::X: break;
      }
    }
    benchmark::DoNotOptimize(c0 + c1);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_SliceCountTrit)->Arg(64)->Arg(255)->Arg(2048);

void BM_SliceCountScalar(benchmark::State& state) {
  const TernaryVector slice =
      patterned_slice(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels::slice_count_scalar(
        slice.care_words(), slice.value_words(), slice.num_words()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_SliceCountScalar)->Arg(64)->Arg(255)->Arg(2048);

void BM_SliceCountDispatched(benchmark::State& state) {
  // Whatever SOCTEST_SIMD / the CPU picked (AVX2 where available).
  const TernaryVector slice =
      patterned_slice(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels::slice_count(
        slice.care_words(), slice.value_words(), slice.num_words()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(slice.size()));
  state.SetLabel(kernels::mode_name(kernels::active_mode()));
}
BENCHMARK(BM_SliceCountDispatched)->Arg(64)->Arg(255)->Arg(2048);

void BM_SparseCost(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const CoreUnderTest core = bench_core(20'000, 16, 0.02);
  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());
  for (auto _ : state)
    benchmark::DoNotOptimize(sparse_stream_cost(map, core.cubes).total_codewords);
  state.SetItemsProcessed(state.iterations() * core.cubes.total_care_bits());
}
BENCHMARK(BM_SparseCost)->Arg(32)->Arg(255);

void BM_SparseCostSorted(benchmark::State& state) {
  // The seed sort-based path, kept as the differential oracle; the ratio to
  // BM_SparseCost is the fused rewrite's win at the same geometry.
  const int m = static_cast<int>(state.range(0));
  const CoreUnderTest core = bench_core(20'000, 16, 0.02);
  const WrapperDesign d = design_wrapper(core.spec, m);
  const SliceMap map(d, core.cubes.num_cells());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sparse_stream_cost_sorted(map, core.cubes).total_codewords);
  state.SetItemsProcessed(state.iterations() * core.cubes.total_care_bits());
}
BENCHMARK(BM_SparseCostSorted)->Arg(32)->Arg(255);

void BM_StreamEncode(benchmark::State& state) {
  const CoreUnderTest core = bench_core(4'000, 4, 0.05);
  const WrapperDesign d = design_wrapper(core.spec, 64);
  const SliceMap map(d, core.cubes.num_cells());
  for (auto _ : state)
    benchmark::DoNotOptimize(encode_stream(map, core.cubes).words.size());
}
BENCHMARK(BM_StreamEncode);

void BM_WrapperDesign(benchmark::State& state) {
  const CoreUnderTest core = bench_core(50'000, 1, 0.02);
  for (auto _ : state)
    benchmark::DoNotOptimize(design_wrapper(core.spec, 128).scan_in_length);
}
BENCHMARK(BM_WrapperDesign);

void BM_ExploreCore(benchmark::State& state) {
  const CoreUnderTest core = bench_core(10'000, 8, 0.02);
  ExploreOptions o;
  o.max_width = 32;
  o.max_chains = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(explore_core(core, o).max_width());
}
BENCHMARK(BM_ExploreCore)->Arg(64)->Arg(255)->Unit(benchmark::kMillisecond);

void BM_GreedySchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::int64_t> times(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    times[static_cast<std::size_t>(i)] = 1000 + 37 * i % 977;
  const CostFn cost = [&](int core, int bus) {
    BusAccessCost c;
    c.time = times[static_cast<std::size_t>(core)] / (bus + 1);
    return c;
  };
  for (auto _ : state)
    benchmark::DoNotOptimize(greedy_schedule(n, 4, cost, times).makespan());
}
BENCHMARK(BM_GreedySchedule)->Arg(10)->Arg(100)->Arg(1000);

// --- runtime pool overhead (results recorded in BENCH_runtime.json) ---

// Round-trip latency of a single task: submit + wake + run + future fulfil.
void BM_PoolSpawnLatency(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) pool.async([] {}).get();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolSpawnLatency)->Arg(1)->Arg(2)->Arg(4);

// Burst fan-out of 256 tiny tasks; the steal_rate counter reports what
// fraction of tasks workers lifted from sibling queues.
void BM_PoolFanOut(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<int>(state.range(0)));
  constexpr int kBurst = 256;
  for (auto _ : state) {
    std::atomic<int> sink{0};
    std::vector<std::future<void>> futs;
    futs.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i)
      futs.push_back(
          pool.async([&sink] { sink.fetch_add(1, std::memory_order_relaxed); }));
    for (auto& f : futs) f.get();
    benchmark::DoNotOptimize(sink.load());
  }
  const runtime::PoolStats s = pool.stats();
  state.counters["steal_rate"] =
      s.tasks_run ? static_cast<double>(s.steals) /
                        static_cast<double>(s.tasks_run)
                  : 0.0;
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_PoolFanOut)->Arg(2)->Arg(4);

// Chunked-loop overhead over a cheap body (the determinism engine's cost
// floor); per-element time should stay in the nanoseconds.
void BM_ParallelForOverhead(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<int>(state.range(0)));
  runtime::ParallelOptions o;
  o.pool = &pool;
  std::vector<double> out(1 << 14);
  for (auto _ : state) {
    runtime::parallel_for(
        0, static_cast<std::int64_t>(out.size()),
        [&](std::int64_t i) {
          out[static_cast<std::size_t>(i)] = std::sqrt(static_cast<double>(i));
        },
        o);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4);

// End-to-end parallel_for speedup on the real workload: explore_core's
// geometry sweep under a scoped pool of N lanes. Compare Arg(1) vs Arg(N)
// wall time for the speedup ratio (flat on single-core CI machines).
void BM_ExploreCoreJobs(benchmark::State& state) {
  const CoreUnderTest core = bench_core(10'000, 8, 0.02);
  ExploreOptions o;
  o.max_width = 32;
  o.max_chains = 255;
  runtime::ThreadPool pool(static_cast<int>(state.range(0)));
  runtime::PoolScope scope(&pool);
  for (auto _ : state)
    benchmark::DoNotOptimize(explore_core(core, o).max_width());
}
BENCHMARK(BM_ExploreCoreJobs)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
