// EXTENSION (not a table in the DATE 2008 paper): power-constrained test
// scheduling, following the authors' companion work. Sweeps the peak-power
// budget for one industrial system and reports how the co-optimized test
// time degrades as concurrency is throttled — and how compression helps
// twice (shorter tests AND lower per-core scan power via constant-fill).
#include <cstdio>

#include "opt/soc_optimizer.hpp"
#include "power/power_model.hpp"
#include "report/table.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

int main() {
  std::printf("=== Extension: power-constrained scheduling (System1, W_TAM=32) ===\n\n");
  const SocSpec soc = make_system(1);
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 511;
  const SocOptimizer opt(soc, e);

  // Feasibility floor: the hungriest core must fit alone.
  double floor_mw = 0.0;
  for (const auto& c : soc.cores)
    floor_mw = std::max(floor_mw, core_peak_power(c.spec));

  OptimizerOptions o;
  o.width = 32;
  o.mode = ArchMode::PerCore;
  const OptimizationResult unconstrained = opt.optimize(o);
  std::printf("unconstrained: tau = %lld, peak power = %.1f mW "
              "(single-core floor %.1f mW)\n\n",
              static_cast<long long>(unconstrained.test_time),
              unconstrained.peak_power_mw, floor_mw);

  Table t({"budget (mW)", "mode", "test time", "vs unconstrained",
           "peak power"});
  for (double frac : {1.2, 1.0, 0.85, 0.7, 0.6, 0.5}) {
    const double budget = unconstrained.peak_power_mw * frac;
    for (ArchMode mode : {ArchMode::PerCore, ArchMode::NoTdc}) {
      OptimizerOptions po = o;
      po.mode = mode;
      po.power_budget_mw = budget;
      try {
        const OptimizationResult r = opt.optimize(po);
        t.add_row({Table::fixed(budget, 1), to_string(mode),
                   Table::num(r.test_time),
                   Table::fixed(
                       static_cast<double>(r.test_time) /
                           static_cast<double>(unconstrained.test_time),
                       2) +
                       "x",
                   Table::fixed(r.peak_power_mw, 1)});
      } catch (const std::exception&) {
        // One core alone exceeds this budget in this mode (direct access
        // draws random-fill scan power) — the planner reports infeasible.
        t.add_row({Table::fixed(budget, 1), to_string(mode), "infeasible",
                   "-", "-"});
      }
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("compressed access draws less scan power (constant-fill X "
              "runs), so the\nper-core TDC architecture sustains more "
              "concurrency at tight budgets.\n");
  return 0;
}
