// Figure 3 reproduction: the lowest test time achievable at each exact TAM
// width w (best m per width) for core ckt-7.
//
// Paper shape: the series is NOT monotonically decreasing in w — e.g. the
// paper's tau at w = 11 is lower than at w = 12 and 13, because the usable
// m-band [2^(w-3), 2^(w-2)-1] shifts and the encoding efficiency changes.
#include <cstdio>

#include "explore/core_explorer.hpp"
#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "runtime/stats.hpp"
#include "socgen/industrial.hpp"

using namespace soctest;

int main() {
  std::printf("=== Figure 3: lowest test time vs TAM width (ckt-7) ===\n\n");
  const CoreUnderTest core = make_industrial_core("ckt-7");
  ExploreOptions opts;
  opts.max_width = 16;
  // Explore every feasible wrapper-chain count; the core's fixed scan
  // chains bound the fan-out (industrial reality), which is part of why
  // wider TAMs stop paying off.
  opts.max_chains = core.spec.max_wrapper_chains();
  const CoreTable table = explore_core(core, opts);

  Table t({"TAM width w", "best m", "test time", "volume (bits)",
           "vs previous w"});
  ChartSeries series;
  std::int64_t prev = -1;
  int increases = 0;
  Csv csv({"w", "best_m", "test_time", "volume_bits"});
  for (int w = 4; w <= opts.max_width; ++w) {
    const CoreChoice& c = table.best_compressed_exact(w);
    if (c.m == 0) continue;
    series.x.push_back(w);
    series.y.push_back(static_cast<double>(c.test_time));
    const char* dir = "-";
    if (prev >= 0) {
      dir = c.test_time > prev ? "UP (non-monotonic)" : "down";
      increases += c.test_time > prev;
    }
    t.add_row({Table::num(w), Table::num(c.m), Table::num(c.test_time),
               Table::num(c.data_volume_bits), dir});
    csv.add_row({Table::num(w), Table::num(c.m), Table::num(c.test_time),
                 Table::num(c.data_volume_bits)});
    prev = c.test_time;
  }

  ChartOptions copts;
  copts.title = "ckt-7: lowest test time at each exact TAM width";
  copts.x_label = "TAM width w";
  copts.y_label = "test time (cycles)";
  std::printf("%s\n", render_chart(series, copts).c_str());
  std::printf("%s\n", t.to_string().c_str());
  std::printf("widths where tau increased vs the next-narrower width: %d "
              "[paper: tau(12), tau(13) > tau(11)]\n",
              increases);

  csv.write_file("fig3_ckt7.csv");
  std::printf("\nwrote fig3_ckt7.csv\n");
  // The per-geometry sweep above ran chunked across the runtime pool.
  const runtime::RuntimeStats rs = runtime::collect_stats();
  std::printf("\n[runtime] %s\n", runtime::stats_to_json(rs).c_str());
  return 0;
}
