// Figure 4 reproduction: three test architectures for one industrial
// design, at the same access budget:
//   (a) optimized architecture + schedule WITHOUT compression;
//   (b) one decompressor per TAM (SOC-level expansion): test time drops
//       sharply, but the on-chip TAMs carry *expanded* data and are
//       extremely wide;
//   (c) one decompressor per core (the paper's proposal): same test time
//       as (b) with far narrower on-chip TAMs.
#include <cstdio>

#include "opt/result.hpp"
#include "opt/soc_optimizer.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

int main() {
  std::printf("=== Figure 4: architecture styles on a 4-core industrial design ===\n\n");
  const SocSpec soc = make_fig4_soc();
  ExploreOptions eopts;
  eopts.max_width = 40;
  eopts.max_chains = 511;
  const SocOptimizer opt(soc, eopts);

  const int kAteBudget = 31;  // the paper's W_TAM = 31 example

  OptimizerOptions o;
  o.width = kAteBudget;
  o.constraint = ConstraintMode::AteChannels;

  o.mode = ArchMode::NoTdc;
  const OptimizationResult a = opt.optimize(o);
  o.mode = ArchMode::PerTam;
  const OptimizationResult b = opt.optimize(o);
  o.mode = ArchMode::PerCore;
  const OptimizationResult c = opt.optimize(o);

  std::printf("--- (a) no test-data compression ---\n%s\n",
              summarize(a, soc).c_str());
  std::printf("--- (b) one decompressor per TAM ---\n%s\n",
              summarize(b, soc).c_str());
  std::printf("--- (c) one decompressor per core (proposed) ---\n%s\n",
              summarize(c, soc).c_str());

  std::printf("summary (ATE budget %d channels):\n", kAteBudget);
  std::printf("  (a) no TDC       : tau_tot = %9lld, on-chip wires = %3d\n",
              static_cast<long long>(a.test_time), a.wiring.onchip_wires);
  std::printf("  (b) per-TAM TDC  : tau_tot = %9lld, on-chip wires = %3d\n",
              static_cast<long long>(b.test_time), b.wiring.onchip_wires);
  std::printf("  (c) per-core TDC : tau_tot = %9lld, on-chip wires = %3d\n",
              static_cast<long long>(c.test_time), c.wiring.onchip_wires);
  std::printf("\nshape checks vs the paper:\n");
  std::printf("  TDC cuts test time vs (a):            %s (%.1fx)\n",
              b.test_time < a.test_time ? "yes" : "NO",
              static_cast<double>(a.test_time) /
                  static_cast<double>(b.test_time));
  std::printf("  (c) matches (b) test time (+-10%%):    %s\n",
              c.test_time <= b.test_time * 11 / 10 ? "yes" : "NO");
  std::printf("  (c) uses far fewer on-chip wires:     %s (%d vs %d)\n",
              c.wiring.onchip_wires * 2 <= b.wiring.onchip_wires ? "yes" : "NO",
              c.wiring.onchip_wires, b.wiring.onchip_wires);
  return 0;
}
