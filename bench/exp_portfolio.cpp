// Portfolio ablation: does the replica-exchange ladder (src/portfolio/)
// actually buy search efficiency over one long annealing walk, or is it
// just K walks in a trench coat? For each design we give a single walk a
// budget of K * sweeps * proposals_per_sweep iterations, then run the
// K-replica portfolio (racer disabled — this isolates the tempering
// mechanism) on the same total budget and read its best-by-sweep curve.
//
// Gate (from the issue): the portfolio must reach the single walk's FINAL
// makespan within half the proposal budget, or end strictly better at the
// full budget. An independent-walks run (swaps disabled) is also recorded
// so the JSON shows what the exchanges themselves contribute.
//
// Results are spliced into the "portfolio" section of BENCH_search.json.
// Unlike exp_search_scale's splice (which may truncate trailing sections on
// rerun), this one removes ONLY its own section by brace matching, so the
// benches can be rerun in any order without eating each other's output.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "opt/annealing.hpp"
#include "opt/soc_optimizer.hpp"
#include "portfolio/portfolio.hpp"
#include "report/table.hpp"
#include "socgen/d695.hpp"
#include "socgen/synthetic.hpp"

using namespace soctest;

namespace {

struct Case {
  std::string name;
  SocSpec soc;
  ExploreOptions explore;
  int width = 16;
};

SocSpec synth_soc(int num_cores, std::uint64_t seed) {
  SyntheticSocParams p;  // same geometry as exp_search_scale
  p.num_cores = num_cores;
  p.max_inputs = 16;
  p.max_outputs = 16;
  p.max_chains = 6;
  p.max_chain_length = 32;
  p.max_patterns = 10;
  p.giant_scale = 4;
  return make_synthetic_soc(p, seed);
}

/// Removes the top-level "portfolio" key (and the comma that precedes it)
/// from an existing BENCH_search.json body, leaving every other section
/// intact. The section value is brace/bracket-matched, which is safe here
/// because no string in the file contains braces.
std::string drop_portfolio_section(std::string existing) {
  const std::size_t marker = existing.find("\n  \"portfolio\":");
  if (marker == std::string::npos)
    return existing;
  std::size_t start = marker;
  if (start > 0 && existing[start - 1] == ',')
    --start;
  std::size_t p = existing.find_first_of("[{", marker);
  if (p == std::string::npos)
    return existing.substr(0, start);  // malformed tail: drop it
  int depth = 0;
  std::size_t q = p;
  for (; q < existing.size(); ++q) {
    const char c = existing[q];
    if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth == 0) {
        ++q;
        break;
      }
    }
  }
  return existing.substr(0, start) + existing.substr(q);
}

void splice_portfolio_section(const std::string& section) {
  std::string existing;
  {
    std::ifstream in("BENCH_search.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  if (const std::size_t close = drop_portfolio_section(existing).rfind('}');
      close != std::string::npos) {
    out = drop_portfolio_section(existing).substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
      out.pop_back();
  }
  if (out.empty())
    out = "{\n  \"experiment\": \"portfolio\"";
  out += ",\n  \"portfolio\": [\n" + section + "  ]\n}\n";
  std::ofstream f("BENCH_search.json");
  f << out;
}

}  // namespace

int main() {
  std::printf("=== Replica-exchange portfolio vs one long annealing walk ===\n\n");

  const int K = 4, sweeps = 20, pps = 100;
  const std::uint64_t seed = 2026;
  const std::uint64_t total = static_cast<std::uint64_t>(K) * sweeps * pps;

  std::vector<Case> cases;
  cases.push_back({"d695", make_d695(), {}, 16});
  cases.back().explore.max_width = 16;
  cases.back().explore.max_chains = 64;
  cases.push_back({"synth120", synth_soc(120, 0xC0DE), {}, 24});
  cases.back().explore.max_width = 10;
  cases.back().explore.max_chains = 32;

  Table t({"soc", "single walk", "independent", "portfolio", "to-match",
           "budget/2", "swap acc"});
  std::string json;
  bool all_pass = true;

  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    const SocOptimizer opt(c.soc, c.explore);
    OptimizerOptions o;
    o.width = c.width;
    o.mode = ArchMode::PerCore;

    AnnealingOptions a;
    a.iterations = static_cast<int>(total);
    a.seed = seed;
    const OptimizationResult single = optimize_annealing(opt, o, a);

    PortfolioOptions po;
    po.replicas = K;
    po.sweeps = sweeps;
    po.proposals_per_sweep = pps;
    po.seed = seed;
    po.race_hill_climb = false;  // isolate the tempering mechanism
    const PortfolioResult pf = optimize_portfolio(opt, o, po);

    PortfolioOptions pi = po;
    pi.swaps_enabled = false;  // ablation: same ladder, no exchanges
    const PortfolioResult indep = optimize_portfolio(opt, o, pi);

    // First sweep whose best matches the single walk's final makespan.
    std::uint64_t to_match = 0;
    for (std::size_t s = 0; s < pf.stats.best_by_sweep.size(); ++s) {
      if (pf.stats.best_by_sweep[s] <= single.test_time) {
        to_match = (s + 1) * static_cast<std::uint64_t>(K) * pps;
        break;
      }
    }
    const bool pass = (to_match != 0 && to_match * 2 <= total) ||
                      pf.best.test_time < single.test_time;
    all_pass = all_pass && pass;

    t.add_row({c.name, Table::num(single.test_time),
               Table::num(indep.best.test_time), Table::num(pf.best.test_time),
               to_match ? Table::num(static_cast<std::int64_t>(to_match)) : "never",
               Table::num(static_cast<std::int64_t>(total / 2)),
               Table::fixed(100.0 * pf.stats.swap_acceptance(), 1) + "%"});
    std::printf("%s: %s\n", c.name.c_str(),
                pass ? "PASS" : "FAIL (neither half-budget match nor strict win)");

    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "  {\n"
                  "    \"soc\": \"%s\",\n"
                  "    \"width\": %d,\n"
                  "    \"replicas\": %d,\n"
                  "    \"sweeps\": %d,\n"
                  "    \"proposals_per_sweep\": %d,\n"
                  "    \"proposals_total\": %llu,\n"
                  "    \"single_walk_test_time\": %lld,\n"
                  "    \"independent_walks_test_time\": %lld,\n"
                  "    \"portfolio_test_time\": %lld,\n"
                  "    \"proposals_to_match_single\": %llu,\n"
                  "    \"swap_acceptance\": %.4f,\n"
                  "    \"best_by_sweep\": [",
                  c.name.c_str(), c.width, K, sweeps, pps,
                  static_cast<unsigned long long>(total),
                  static_cast<long long>(single.test_time),
                  static_cast<long long>(indep.best.test_time),
                  static_cast<long long>(pf.best.test_time),
                  static_cast<unsigned long long>(to_match),
                  pf.stats.swap_acceptance());
    json += buf;
    for (std::size_t s = 0; s < pf.stats.best_by_sweep.size(); ++s) {
      json += std::to_string(pf.stats.best_by_sweep[s]);
      if (s + 1 < pf.stats.best_by_sweep.size())
        json += ", ";
    }
    json += "]\n";
    json += ci + 1 < cases.size() ? "  },\n" : "  }\n";
  }

  std::printf("\n%s\n", t.to_string().c_str());
  splice_portfolio_section(json);
  std::printf("spliced \"portfolio\" section into BENCH_search.json\n");
  if (!all_pass) {
    std::fprintf(stderr,
                 "FAIL: portfolio did not reach the single walk's makespan "
                 "in half the budget nor beat it outright\n");
    return 1;
  }
  return 0;
}
