// ABLATIONS of the design choices DESIGN.md calls out:
//   (a) group-copy-mode: how much of the selective-encoding compression
//       comes from the second coding mode (vs single-bit-mode alone);
//   (b) schedule refinement: the paper's pure greedy step 4 vs the
//       move/swap polishing pass;
//   (c) decompressor bypass: forcing compression even where direct access
//       is faster (the co-optimization's freedom to say "no").
#include <cstdio>

#include "codec/sparse_cost.hpp"
#include "explore/core_explorer.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/table.hpp"
#include "sched/greedy_scheduler.hpp"
#include "socgen/d695.hpp"
#include "socgen/industrial.hpp"
#include "socgen/systems.hpp"
#include "wrapper/wrapper_design.hpp"

using namespace soctest;

namespace {

void ablate_group_copy() {
  std::printf("--- (a) group-copy-mode contribution ---\n");
  Table t({"core", "m", "codewords (full)", "codewords (no copy)",
           "overhead without copy"});
  for (const char* name : {"ckt-7", "ckt-10", "ckt-14"}) {
    const CoreUnderTest core = make_industrial_core(name);
    for (int m : {64, 255}) {
      if (m > core.spec.max_wrapper_chains()) continue;
      const WrapperDesign d = design_wrapper(core.spec, m);
      const SliceMap map(d, core.cubes.num_cells());
      SliceEncoderOptions full, nocopy;
      nocopy.enable_group_copy = false;
      const auto a = sparse_stream_cost(map, core.cubes, full);
      const auto b = sparse_stream_cost(map, core.cubes, nocopy);
      t.add_row({name, Table::num(m), Table::num(a.total_codewords),
                 Table::num(b.total_codewords),
                 Table::fixed(100.0 * (static_cast<double>(b.total_codewords) /
                                           static_cast<double>(
                                               a.total_codewords) -
                                       1.0),
                              1) +
                     "%"});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
}

void ablate_refinement() {
  std::printf("--- (b) schedule refinement (paper greedy vs +move/swap) ---\n");
  const SocSpec soc = make_system(3);
  ExploreOptions e;
  e.max_width = 48;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);
  Table t({"W_TAM", "greedy-only tau", "refined tau", "improvement"});
  for (int w : {16, 32, 48}) {
    // Refined pipeline (library default).
    OptimizerOptions o;
    o.width = w;
    const OptimizationResult refined = opt.optimize(o);

    // Paper-pure greedy: rebuild the winning architecture's schedule with
    // refinement off.
    const auto& tables = opt.tables();
    const TamArchitecture arch = refined.arch;
    const CostFn cost = [&](int core, int bus) {
      const CoreTable& tab = tables[static_cast<std::size_t>(core)];
      const CoreChoice& c = tab.best(
          std::min(arch.widths[static_cast<std::size_t>(bus)],
                   tab.max_width()));
      return BusAccessCost{c.test_time, c.data_volume_bits, c};
    };
    std::vector<std::int64_t> ref(soc.cores.size());
    for (std::size_t i = 0; i < soc.cores.size(); ++i)
      ref[i] = cost(static_cast<int>(i), 0).time;
    GreedyOptions pure;
    pure.refine_passes = 0;
    const Schedule greedy = greedy_schedule(
        soc.num_cores(), arch.num_buses(), cost, ref, pure);
    t.add_row({Table::num(w), Table::num(greedy.makespan()),
               Table::num(refined.test_time),
               Table::fixed(100.0 * (1.0 - static_cast<double>(
                                               refined.test_time) /
                                               static_cast<double>(
                                                   greedy.makespan())),
                            1) +
                   "%"});
  }
  std::printf("%s\n", t.to_string().c_str());
}

void ablate_bypass() {
  std::printf("--- (c) decompressor bypass (min(direct, compressed)) ---\n");
  // d695 cores barely compress; forcing compression everywhere shows why
  // the lookup keeps the direct option.
  const SocSpec soc = make_d695();
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);
  Table t({"core", "w", "direct tau", "forced-compressed tau", "penalty"});
  for (const CoreTable& tab : opt.tables()) {
    const CoreChoice& d = tab.direct(16);
    const CoreChoice& c = tab.best_compressed_exact(9);
    if (c.m == 0) continue;
    t.add_row({tab.core_name(), "16/9", Table::num(d.test_time),
               Table::num(c.test_time),
               Table::fixed(static_cast<double>(c.test_time) /
                                static_cast<double>(d.test_time),
                            2) +
                   "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("=== Ablations of design choices ===\n\n");
  ablate_group_copy();
  ablate_refinement();
  ablate_bypass();
  return 0;
}
