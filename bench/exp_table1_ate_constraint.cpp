// Table 1 reproduction: test time under an ATE-channel constraint for the
// benchmark SOCs d695 and d2758.
//
// The paper compares against [18] (virtual TAMs / SOC-level decompression)
// and [11] (compression with fixed w = 4). Those tools and their exact
// numbers are not available; we run behavioural stand-ins implemented in
// this repository (DESIGN.md Section 3): per-TAM expansion for [18] and
// fixed-4-wire serialized delivery for [11]. The paper's observation to
// check: under an *ATE-channel* constraint the SOC-level decompressor is
// competitive (it spends cheap on-chip wires instead of tester channels),
// so the proposed method's advantage is smaller here than in Table 2.
#include <cstdio>

#include "opt/baselines.hpp"
#include "report/table.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "socgen/d2758.hpp"
#include "socgen/d695.hpp"

using namespace soctest;

int main() {
  std::printf("=== Table 1: test time at ATE-channel constraint ===\n\n");
  Table t({"design", "W_ATE", "tau[18]-like", "tau[11]-like", "tau proposed",
           "prop/[18]", "prop/[11]"});

  for (const SocSpec& soc : {make_d695(), make_d2758()}) {
    ExploreOptions e;
    e.max_width = 64;
    e.max_chains = 511;
    const SocOptimizer opt(soc, e);
    // Each width's three optimizations are independent; run the sweep on
    // the runtime pool and emit rows in width order.
    const std::vector<int> widths = {8, 16, 24, 32};
    const std::vector<MethodComparison> cmps =
        runtime::parallel_map(widths, [&](int w_ate) {
          return compare_methods(opt, w_ate, ConstraintMode::AteChannels);
        });
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const int w_ate = widths[i];
      const MethodComparison& cmp = cmps[i];
      t.add_row({soc.name, Table::num(w_ate),
                 Table::num(cmp.per_tam.test_time),
                 Table::num(cmp.fixed_w4.test_time),
                 Table::num(cmp.proposed.test_time),
                 Table::fixed(static_cast<double>(cmp.proposed.test_time) /
                                  static_cast<double>(cmp.per_tam.test_time),
                              2),
                 Table::fixed(static_cast<double>(cmp.proposed.test_time) /
                                  static_cast<double>(cmp.fixed_w4.test_time),
                              2)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "note: ratios < 1 mean the proposed method is faster. The paper "
      "reports\nsmaller gains here than under the TAM-width constraint "
      "(Table 2), because a\nSOC-level decompressor spends on-chip wires "
      "rather than ATE channels.\n");
  const runtime::RuntimeStats rs = runtime::collect_stats();
  std::printf("\n[runtime] %s\n", runtime::stats_to_json(rs).c_str());
  return 0;
}
