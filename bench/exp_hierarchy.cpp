// EXTENSION — hierarchical SOC scheduling (after the related work on test
// planning for hierarchical SOCs): the same design planned flat vs with
// cores nested inside parents. Nesting serializes each lineage (a parent's
// wrapper either tests the parent or routes its child), so hierarchy costs
// test time; the bench quantifies how much, per nesting shape.
#include <cstdio>

#include "hier/hier_scheduler.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/table.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

int main() {
  std::printf("=== Extension: hierarchical SOC scheduling (System1, W=32) ===\n\n");
  const SocSpec soc = make_system(1);  // 6 cores
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 255;
  const SocOptimizer opt(soc, e);

  // Find a good flat architecture first; reuse its buses for all shapes.
  OptimizerOptions o;
  o.width = 32;
  const OptimizationResult flat_r = opt.optimize(o);
  const TamArchitecture arch = flat_r.arch;
  const auto& tables = opt.tables();
  const CostFn cost = [&](int core, int bus) {
    const CoreTable& tab = tables[static_cast<std::size_t>(core)];
    const CoreChoice& c = tab.best(
        std::min(arch.widths[static_cast<std::size_t>(bus)],
                 tab.max_width()));
    return BusAccessCost{c.test_time, c.data_volume_bits, c};
  };
  std::vector<std::int64_t> ref(soc.cores.size());
  for (std::size_t i = 0; i < soc.cores.size(); ++i)
    ref[i] = cost(static_cast<int>(i), 0).time;

  struct Shape {
    const char* name;
    std::vector<int> parent;
  };
  const std::vector<Shape> shapes = {
      {"flat (paper's setting)", {-1, -1, -1, -1, -1, -1}},
      {"two nested pairs", {-1, 0, -1, 2, -1, -1}},
      {"one 3-deep chain", {-1, 0, 1, -1, -1, -1}},
      {"all under one parent", {-1, 0, 0, 0, 0, 0}},
  };

  Table t({"hierarchy", "test time", "vs flat", "max lineage depth"});
  std::int64_t flat_time = 0;
  for (const Shape& shape : shapes) {
    HierarchySpec h;
    h.parent = shape.parent;
    const Schedule s = hierarchical_schedule(
        soc.num_cores(), arch.num_buses(), cost, ref, h);
    s.validate(soc.num_cores(), true);
    validate_hierarchy_exclusion(s, h);
    if (flat_time == 0) flat_time = s.makespan();
    int depth = 0;
    for (int i = 0; i < soc.num_cores(); ++i)
      depth = std::max(depth, h.depth(i));
    t.add_row({shape.name, Table::num(s.makespan()),
               Table::fixed(static_cast<double>(s.makespan()) /
                                static_cast<double>(flat_time),
                            2) +
                   "x",
               Table::num(depth)});
  }
  std::printf("architecture %s\n\n%s\n", arch.to_string().c_str(),
              t.to_string().c_str());
  std::printf("lineages serialize; independent subtrees still overlap — "
              "deep nesting is what hurts.\n");
  return 0;
}
