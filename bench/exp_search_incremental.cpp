// ABLATION of the incremental step-3 evaluation engine: the delta
// evaluator (per-width column cache) + makespan lower-bound pruner vs the
// seed's evaluate-every-neighbour search, on d695 and System1-4. The two
// strategies must return identical optima (the whole point of the design);
// the incremental path must run strictly fewer full schedule evaluations.
// Results land in BENCH_search.json (committed, uploaded as a CI artifact).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "opt/annealing.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/table.hpp"
#include "runtime/stats.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

namespace {

struct Run {
  runtime::SearchStats stats;
  double wall_seconds = 0.0;
  std::int64_t test_time = 0;
  std::int64_t data_volume_bits = 0;
};

Run run_once(const SocOptimizer& opt, const OptimizerOptions& o) {
  // Best wall time of three repetitions; counters come from the last (all
  // repetitions produce identical counts on a fixed pool size).
  Run out;
  out.wall_seconds = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    runtime::reset_search_counters();
    const auto t0 = std::chrono::steady_clock::now();
    const OptimizationResult r = opt.optimize(o);
    const auto t1 = std::chrono::steady_clock::now();
    out.stats = runtime::collect_stats().search;
    out.wall_seconds = std::min(
        out.wall_seconds, std::chrono::duration<double>(t1 - t0).count());
    out.test_time = r.test_time;
    out.data_volume_bits = r.data_volume_bits;
  }
  return out;
}

Run run_anneal(const SocOptimizer& opt, const OptimizerOptions& o,
               const AnnealingOptions& a) {
  Run out;
  out.wall_seconds = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    runtime::reset_search_counters();
    const auto t0 = std::chrono::steady_clock::now();
    const OptimizationResult r = optimize_annealing(opt, o, a);
    const auto t1 = std::chrono::steady_clock::now();
    out.stats = runtime::collect_stats().search;
    out.wall_seconds = std::min(
        out.wall_seconds, std::chrono::duration<double>(t1 - t0).count());
    out.test_time = r.test_time;
    out.data_volume_bits = r.data_volume_bits;
  }
  return out;
}

// A "full schedule evaluation" builds the candidate's entire cost table
// from scratch and runs greedy + refine on it — what the seed search does
// for every candidate. The incremental engine's from-scratch table work is
// columns_computed; expressed in whole-table units (divide by the mean
// columns per candidate table) it is directly comparable to the full
// path's per-candidate rebuilds. Pruned and memo-served candidates
// contribute zero.
double full_evaluation_equivalents(const runtime::SearchStats& s) {
  const std::uint64_t tables_prepared =
      s.candidates_generated + (s.candidates_pruned + s.schedule_reuse_hits +
                                s.candidates_scheduled -
                                s.candidates_generated);  // + starts
  const std::uint64_t column_needs = s.column_reuse_hits + s.columns_computed;
  if (!tables_prepared || !column_needs)
    return static_cast<double>(s.candidates_scheduled);
  const double avg_columns = static_cast<double>(column_needs) /
                             static_cast<double>(tables_prepared);
  return static_cast<double>(s.columns_computed) / avg_columns;
}

std::string json_u64(const char* key, std::uint64_t v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "      \"%s\": %llu%s\n", key,
                static_cast<unsigned long long>(v), comma ? "," : "");
  return buf;
}

std::string json_run(const char* key, const Run& r, bool comma,
                     bool anneal = false) {
  std::string s = "    \"" + std::string(key) + "\": {\n";
  if (anneal) {
    s += json_u64("anneal_proposals", r.stats.anneal_proposals);
    s += json_u64("anneal_memo_hits", r.stats.anneal_memo_hits);
    s += json_u64("anneal_bound_pruned", r.stats.anneal_bound_pruned);
  }
  s += json_u64("candidates_generated", r.stats.candidates_generated);
  s += json_u64("candidates_pruned", r.stats.candidates_pruned);
  s += json_u64("candidates_scheduled", r.stats.candidates_scheduled);
  s += json_u64("schedule_reuse_hits", r.stats.schedule_reuse_hits);
  s += json_u64("column_reuse_hits", r.stats.column_reuse_hits);
  s += json_u64("columns_computed", r.stats.columns_computed);
  s += json_u64("test_time", static_cast<std::uint64_t>(r.test_time));
  s += json_u64("data_volume_bits",
                static_cast<std::uint64_t>(r.data_volume_bits));
  char buf[64];
  std::snprintf(buf, sizeof buf, "      \"wall_seconds\": %.6f\n",
                r.wall_seconds);
  s += buf;
  s += comma ? "    },\n" : "    }\n";
  return s;
}

}  // namespace

int main() {
  std::printf("=== Incremental search vs full evaluation (W=24) ===\n\n");

  Table t({"design", "cand.", "pruned", "memo", "sched(full)", "sched(inc)",
           "full-evals(inc)", "full-eval ratio", "wall(full) s",
           "wall(inc) s", "speedup"});
  std::string json =
      "{\n  \"experiment\": \"search_incremental\",\n"
      "  \"metric\": \"full_schedule_evaluations = candidates whose entire "
      "cost table was built from scratch and scheduled; the incremental "
      "engine's value is columns_computed in whole-table units — pruned "
      "and memo-served candidates contribute zero\",\n"
      "  \"width\": 24,\n  \"designs\": [\n";

  std::vector<SocSpec> designs = make_table3_designs();
  bool all_identical = true;
  double min_sched_ratio = 1e30;
  for (std::size_t di = 0; di < designs.size(); ++di) {
    const SocSpec& soc = designs[di];
    ExploreOptions e;
    e.max_width = 32;
    e.max_chains = 511;
    const SocOptimizer opt(soc, e);

    OptimizerOptions o;
    o.width = 24;
    o.mode = ArchMode::PerCore;

    o.incremental = false;
    const Run full = run_once(opt, o);
    o.incremental = true;
    const Run inc = run_once(opt, o);

    if (inc.test_time != full.test_time ||
        inc.data_volume_bits != full.data_volume_bits) {
      std::fprintf(stderr,
                   "FAIL %s: incremental optimum differs (tau %lld vs %lld, "
                   "V %lld vs %lld)\n",
                   soc.name.c_str(), static_cast<long long>(inc.test_time),
                   static_cast<long long>(full.test_time),
                   static_cast<long long>(inc.data_volume_bits),
                   static_cast<long long>(full.data_volume_bits));
      all_identical = false;
    }

    // Every full-path candidate is a full evaluation; the incremental
    // path's from-scratch work shrinks to its computed columns.
    const double full_evals_full =
        static_cast<double>(full.stats.candidates_scheduled);
    const double full_evals_inc = full_evaluation_equivalents(inc.stats);
    const double ratio = full_evals_full / std::max(1e-9, full_evals_inc);
    min_sched_ratio = std::min(min_sched_ratio, ratio);

    t.add_row({soc.name, Table::num(inc.stats.candidates_generated),
               Table::num(inc.stats.candidates_pruned),
               Table::num(inc.stats.schedule_reuse_hits),
               Table::num(full.stats.candidates_scheduled),
               Table::num(inc.stats.candidates_scheduled),
               Table::fixed(full_evals_inc, 1),
               Table::fixed(ratio, 1) + "x",
               Table::fixed(full.wall_seconds, 3),
               Table::fixed(inc.wall_seconds, 3),
               Table::fixed(full.wall_seconds /
                                std::max(1e-9, inc.wall_seconds),
                            2) +
                   "x"});

    json += "  {\n    \"design\": \"" + soc.name + "\",\n";
    char metric[160];
    std::snprintf(metric, sizeof metric,
                  "    \"full_schedule_evaluations\": "
                  "{\"full\": %.0f, \"incremental\": %.1f, "
                  "\"ratio\": %.1f},\n",
                  full_evals_full, full_evals_inc, ratio);
    json += metric;
    json += json_run("full", full, true);
    json += json_run("incremental", inc, false);
    json += di + 1 < designs.size() ? "  },\n" : "  }\n";
  }
  json += "  ],\n";

  // ---- Annealing ablation: scratch walk vs DeltaEvaluator-backed walk.
  // Same Markov chain (differential tests pin bit-identity); the counters
  // here quantify how much of it the memo + bound pruning absorb.
  std::printf("%s\n", t.to_string().c_str());
  std::printf("minimum full/incremental full-schedule-evaluation ratio: "
              "%.1fx (issue gate: >= 2x)\n\n",
              min_sched_ratio);

  std::printf("=== Annealing: scratch vs incremental proposal path ===\n\n");
  Table ta({"design", "proposals", "memo", "bound-pruned", "sched(full)",
            "sched(inc)", "sched ratio", "wall(full) s", "wall(inc) s"});
  json += "  \"anneal\": [\n";
  double min_anneal_ratio = 1e30;
  for (std::size_t di = 0; di < designs.size(); ++di) {
    const SocSpec& soc = designs[di];
    ExploreOptions e;
    e.max_width = 32;
    e.max_chains = 511;
    const SocOptimizer opt(soc, e);

    OptimizerOptions o;
    o.width = 24;
    o.mode = ArchMode::PerCore;
    AnnealingOptions a;  // default 2000-iteration walk, seed 1

    o.incremental = false;
    const Run full = run_anneal(opt, o, a);
    o.incremental = true;
    const Run inc = run_anneal(opt, o, a);

    if (inc.test_time != full.test_time ||
        inc.data_volume_bits != full.data_volume_bits) {
      std::fprintf(stderr, "FAIL %s: annealing optimum differs\n",
                   soc.name.c_str());
      all_identical = false;
    }
    const double ratio =
        static_cast<double>(full.stats.candidates_scheduled) /
        std::max<double>(1.0,
                         static_cast<double>(inc.stats.candidates_scheduled));
    min_anneal_ratio = std::min(min_anneal_ratio, ratio);

    ta.add_row({soc.name, Table::num(inc.stats.anneal_proposals),
                Table::num(inc.stats.anneal_memo_hits),
                Table::num(inc.stats.anneal_bound_pruned),
                Table::num(full.stats.candidates_scheduled),
                Table::num(inc.stats.candidates_scheduled),
                Table::fixed(ratio, 1) + "x",
                Table::fixed(full.wall_seconds, 3),
                Table::fixed(inc.wall_seconds, 3)});

    json += "  {\n    \"design\": \"" + soc.name + "\",\n";
    char metric[128];
    std::snprintf(metric, sizeof metric,
                  "    \"schedule_constructions\": "
                  "{\"full\": %llu, \"incremental\": %llu, "
                  "\"ratio\": %.1f},\n",
                  static_cast<unsigned long long>(
                      full.stats.candidates_scheduled),
                  static_cast<unsigned long long>(
                      inc.stats.candidates_scheduled),
                  ratio);
    json += metric;
    json += json_run("full", full, true, true);
    json += json_run("incremental", inc, false, true);
    json += di + 1 < designs.size() ? "  },\n" : "  }\n";
  }
  json += "  ]\n}\n";

  std::printf("%s\n", ta.to_string().c_str());
  std::printf("minimum annealing schedule-construction ratio: %.1fx "
              "(issue gate: >= 5x)\n",
              min_anneal_ratio);

  std::ofstream f("BENCH_search.json");
  f << json;
  std::printf("wrote BENCH_search.json\n");
  if (!all_identical || min_sched_ratio < 2.0 || min_anneal_ratio < 5.0) {
    std::fprintf(stderr, "FAIL: equivalence or pruning gate not met\n");
    return 1;
  }
  return 0;
}
