// ABLATION of the step-3 architecture search: the default multi-start hill
// climbing vs simulated annealing vs the exact optimizer (where tractable).
// Shows the heuristic landscape is benign at paper scales — hill climbing
// matches SA at a fraction of the evaluations, and both match the exact
// optimum on small instances.
#include <cstdio>

#include "opt/annealing.hpp"
#include "opt/soc_optimizer.hpp"
#include "report/table.hpp"
#include "sched/exact_scheduler.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

int main() {
  std::printf("=== Ablation: architecture search strategies ===\n\n");
  const SocSpec soc = make_fig4_soc();
  ExploreOptions e;
  e.max_width = 32;
  e.max_chains = 511;
  const SocOptimizer opt(soc, e);

  Table t({"W", "hill-climb tau", "annealing tau", "exact tau"});
  for (int w : {8, 12, 16, 24, 32}) {
    OptimizerOptions o;
    o.width = w;
    const OptimizationResult hill = opt.optimize(o);

    AnnealingOptions a;
    a.iterations = 1'500;
    a.seed = 11;
    const OptimizationResult sa = optimize_annealing(opt, o, a);

    const auto cost = [&](int core, int width) {
      const CoreTable& tab = opt.tables()[static_cast<std::size_t>(core)];
      return tab.best(std::min(width, tab.max_width())).test_time;
    };
    const auto exact = exact_optimize(soc.num_cores(), w, cost);

    t.add_row({Table::num(w), Table::num(hill.test_time),
               Table::num(sa.test_time),
               exact ? Table::num(exact->makespan) : "n/a"});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
