// Power analysis: the cycle-accurate side of core-level expansion.
//
//   1. WTM / per-cycle toggle traces for one core under the two X-fill
//      policies (decompressor constant fill vs tester random fill);
//   2. the effect on SOC-level power-constrained scheduling;
//   3. ATE vector-repeat statistics of the compressed stream.
//
// Run: ./power_analysis
#include <cstdio>

#include "ate/vector_repeat.hpp"
#include "codec/stream_encoder.hpp"
#include "opt/soc_optimizer.hpp"
#include "power/power_model.hpp"
#include "power/wsa.hpp"
#include "report/table.hpp"
#include "socgen/cube_synth.hpp"

using namespace soctest;

namespace {

CoreUnderTest demo_core(std::int64_t cells, double density,
                        std::uint64_t seed) {
  CoreUnderTest c;
  c.spec.name = "core" + std::to_string(seed);
  c.spec.num_inputs = 12;
  c.spec.num_outputs = 10;
  const int chains = 24;
  for (int i = 0; i < chains; ++i)
    c.spec.scan_chain_lengths.push_back(
        static_cast<int>(cells / chains + (i < cells % chains ? 1 : 0)));
  c.spec.num_patterns = 12;
  CubeSynthParams p;
  p.num_cells = c.spec.stimulus_bits_per_pattern();
  p.num_patterns = c.spec.num_patterns;
  p.care_density = density;
  p.chain_lengths = c.spec.scan_chain_lengths;
  p.scan_cell_offset = c.spec.num_inputs;
  c.cubes = synthesize_cubes(p, seed);
  c.validate();
  return c;
}

}  // namespace

int main() {
  // 1. Fill-policy comparison on one core.
  const CoreUnderTest core = demo_core(2'400, 0.02, 7);
  const WrapperDesign d = design_wrapper(core.spec, 24);
  const SliceMap map(d, core.cubes.num_cells());

  Table t({"pattern", "WTM const-fill", "WTM random-fill", "peak const",
           "peak random"});
  for (int p = 0; p < 4; ++p) {
    const SliceSequence cf = expand_pattern_slices(map, core.cubes, p, false);
    const SliceSequence rf = expand_pattern_slices(map, core.cubes, p, true);
    const PowerTrace ct = shift_power_trace(cf, d);
    const PowerTrace rt = shift_power_trace(rf, d);
    t.add_row({Table::num(p), Table::num(weighted_transitions(cf, d)),
               Table::num(weighted_transitions(rf, d)), Table::num(ct.peak),
               Table::num(rt.peak)});
  }
  std::printf("fill-policy effect on scan power (%s):\n%s\n",
              core.spec.name.c_str(), t.to_string().c_str());

  // 2. SOC-level power-constrained optimization.
  SocSpec soc;
  soc.name = "power-demo";
  soc.cores.push_back(demo_core(2'400, 0.02, 7));
  soc.cores.push_back(demo_core(1'800, 0.03, 8));
  soc.cores.push_back(demo_core(3'000, 0.015, 9));
  soc.cores.push_back(demo_core(1'200, 0.05, 10));
  soc.validate();

  ExploreOptions e;
  e.max_width = 24;
  e.max_chains = 96;
  const SocOptimizer opt(soc, e);
  OptimizerOptions o;
  o.width = 16;
  const OptimizationResult free_run = opt.optimize(o);
  std::printf("unconstrained: tau = %lld, peak %.1f mW\n",
              static_cast<long long>(free_run.test_time),
              free_run.peak_power_mw);
  o.power_budget_mw = free_run.peak_power_mw * 0.75;
  try {
    const OptimizationResult capped = opt.optimize(o);
    std::printf("capped at %.1f mW: tau = %lld (%.2fx), peak %.1f mW\n",
                o.power_budget_mw, static_cast<long long>(capped.test_time),
                static_cast<double>(capped.test_time) /
                    static_cast<double>(free_run.test_time),
                capped.peak_power_mw);
  } catch (const std::exception& ex) {
    std::printf("capped at %.1f mW: infeasible (%s)\n", o.power_budget_mw,
                ex.what());
  }

  // 3. Tester-side repeat compressibility of the codeword stream.
  const EncodedStream stream = encode_stream(map, core.cubes);
  const RepeatStats rs = vector_repeat_stats(stream);
  std::printf("\nATE vector repeat on %s's stream: %lld cycles -> %lld "
              "stored vectors (%.2fx)\n",
              core.spec.name.c_str(), static_cast<long long>(rs.raw_vectors),
              static_cast<long long>(rs.stored_vectors),
              rs.reduction_factor());
  return 0;
}
