// Industrial flow: the full Table-3-style co-optimization run on one of
// the industrial example systems, narrated step by step — the workflow a
// DFT engineer would run for a new SOC:
//
//   1. describe the SOC (here: System2, built from the ckt-* catalogue);
//   2. explore every core's wrapper/decompressor design space;
//   3. optimize the test architecture with and without compression;
//   4. inspect the schedule, the per-core configurations, the hardware
//      cost, and export the lookup data as CSV.
//
// Run: ./industrial_flow [W_TAM]     (default 32)
#include <cstdio>
#include <cstdlib>

#include "decomp/area_model.hpp"
#include "explore/core_explorer.hpp"
#include "opt/baselines.hpp"
#include "opt/result.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

int main(int argc, char** argv) {
  const int w_tam = argc > 1 ? std::atoi(argv[1]) : 32;
  if (w_tam < 1 || w_tam > 64) {
    std::fprintf(stderr, "usage: %s [W_TAM in 1..64]\n", argv[0]);
    return 1;
  }

  // Step 1: the design.
  const SocSpec soc = make_system(2);
  std::printf("design %s: %d cores, %.1fM gates, V_i = %.2f Mbit\n\n",
              soc.name.c_str(), soc.num_cores(),
              soc.approx_gate_count / 1e6,
              soc.initial_data_volume_bits() / 1e6);

  Table cores({"core", "scan cells", "chains", "patterns", "care bits",
               "density"});
  for (const CoreUnderTest& c : soc.cores) {
    cores.add_row({c.spec.name, Table::num(c.spec.total_scan_cells()),
                   Table::num(static_cast<std::int64_t>(
                       c.spec.scan_chain_lengths.size())),
                   Table::num(c.spec.num_patterns),
                   Table::num(c.cubes.total_care_bits()),
                   Table::fixed(100.0 * c.cubes.care_bit_density(), 2) + "%"});
  }
  std::printf("%s\n", cores.to_string().c_str());

  // Step 2: exploration (steps 1-2 of the paper's heuristic).
  std::printf("exploring decompressor design spaces...\n");
  ExploreOptions eopts;
  eopts.max_width = 64;
  eopts.max_chains = 511;
  const SocOptimizer opt(soc, eopts);

  Table sweet({"core", "best w", "best m", "tau_c", "tau_direct(10)",
               "core gain"});
  for (const CoreTable& t : opt.tables()) {
    const CoreChoice& b = t.best(16);
    sweet.add_row(
        {t.core_name(), Table::num(b.wires_used), Table::num(b.m),
         Table::num(b.test_time), Table::num(t.direct(10).test_time),
         Table::fixed(static_cast<double>(t.direct(10).test_time) /
                          static_cast<double>(b.test_time),
                      1) +
             "x"});
  }
  std::printf("%s\n", sweet.to_string().c_str());

  // Step 3: SOC-level optimization, with vs without TDC.
  const TdcComparison cmp = compare_with_without_tdc(opt, w_tam);
  std::printf("--- without TDC ---\n%s\n",
              summarize(cmp.without_tdc, soc).c_str());
  std::printf("--- with TDC (proposed) ---\n%s\n",
              summarize(cmp.with_tdc, soc).c_str());
  std::printf("test time reduction: %.2fx, volume reduction: %.2fx (vs "
              "initial: %.2fx)\n",
              cmp.time_reduction_factor(), cmp.volume_vs_uncompressed(),
              cmp.volume_vs_initial());

  // Step 4: hardware cost of the chosen decompressors.
  double overhead = area_overhead_fraction(
      DecompressorArea{cmp.with_tdc.wiring.total_flip_flops,
                       cmp.with_tdc.wiring.total_gates},
      1, soc.approx_gate_count);
  std::printf("decompressor hardware: %d instances, %d FFs, %d gates "
              "(%.2f%% of the design)\n",
              cmp.with_tdc.wiring.decompressors,
              cmp.with_tdc.wiring.total_flip_flops,
              cmp.with_tdc.wiring.total_gates, 100.0 * overhead);

  // Export the per-core lookup tables for offline analysis.
  Csv csv({"core", "w", "mode", "m", "test_time", "volume_bits"});
  for (const CoreTable& t : opt.tables()) {
    for (int w = 1; w <= 24; ++w) {
      const CoreChoice& c = t.best(w);
      csv.add_row({t.core_name(), Table::num(w),
                   c.mode == AccessMode::Compressed ? "compressed" : "direct",
                   Table::num(c.m), Table::num(c.test_time),
                   Table::num(c.data_volume_bits)});
    }
  }
  csv.write_file("industrial_flow_tables.csv");
  std::printf("wrote industrial_flow_tables.csv\n");
  return 0;
}
