// Quickstart: the smallest end-to-end use of the library.
//
// Builds one industrial core, explores its decompressor design space,
// verifies the compression round-trip on real hardware-model cycles, then
// optimizes a small SOC and prints the schedule.
//
// Run: ./quickstart
#include <cstdio>

#include "codec/stream_encoder.hpp"
#include "decomp/decompressor_model.hpp"
#include "explore/core_explorer.hpp"
#include "opt/result.hpp"
#include "opt/soc_optimizer.hpp"
#include "socgen/industrial.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

int main() {
  // 1. One core: ckt-7, the paper's running example.
  const CoreUnderTest core = make_industrial_core("ckt-7");
  std::printf("core %s: %lld scan cells, %d patterns, %.2f%% care bits\n",
              core.spec.name.c_str(),
              static_cast<long long>(core.spec.total_scan_cells()),
              core.spec.num_patterns, 100.0 * core.cubes.care_bit_density());

  // 2. Explore every decompressor geometry (the (w, m) design space).
  ExploreOptions eopts;
  const CoreTable table = explore_core(core, eopts);
  for (int w : {6, 8, 10, 12, 16}) {
    const CoreChoice& best = table.best(w);
    const CoreChoice& direct = table.direct(w);
    std::printf(
        "  width %2d: direct tau=%-10lld best tau=%-10lld (m=%d, %s, %.1fx)\n",
        w, static_cast<long long>(direct.test_time),
        static_cast<long long>(best.test_time), best.m,
        best.mode == AccessMode::Compressed ? "compressed" : "direct",
        static_cast<double>(direct.test_time) /
            static_cast<double>(best.test_time));
  }

  // 3. Sanity: expand one geometry through the cycle-accurate decompressor.
  {
    const WrapperDesign d = design_wrapper(core.spec, 64);
    const SliceMap map(d, core.cubes.num_cells());
    // Encode just the first pattern to keep the demo quick.
    TestCubeSet first(core.cubes.num_cells());
    first.add_pattern(core.cubes.pattern(0));
    const EncodedStream stream = encode_stream(map, first);
    DecompressorModel hw(stream.params);
    const auto slices = hw.run(stream.words);
    std::printf(
        "  decompressor: %lld codewords -> %lld slices in %lld cycles\n",
        static_cast<long long>(stream.codeword_count()),
        static_cast<long long>(hw.slices_emitted()),
        static_cast<long long>(hw.cycles()));
  }

  // 4. SOC-level co-optimization on the Figure-4 example design.
  const SocSpec soc = make_fig4_soc();
  const SocOptimizer opt(soc);
  OptimizerOptions oopts;
  oopts.width = 31;
  oopts.mode = ArchMode::PerCore;
  const OptimizationResult result = opt.optimize(oopts);
  std::printf("\n%s\n", summarize(result, soc).c_str());
  return 0;
}
