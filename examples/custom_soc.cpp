// Custom SOC: building a design by hand — your own cores, your own test
// cubes (including cubes written as literal strings) — then validating the
// heuristic against the exact optimizer, which is tractable at this size.
//
// Run: ./custom_soc
#include <cstdio>

#include "opt/result.hpp"
#include "opt/soc_optimizer.hpp"
#include "sched/exact_scheduler.hpp"
#include "socgen/cube_synth.hpp"

using namespace soctest;

namespace {

// A tiny hand-written core: 2 scan chains of 4 cells plus 2 inputs, with
// cubes given as ternary strings over the canonical cell order
// [inputs | chain0 | chain1].
CoreUnderTest handwritten_core() {
  CoreUnderTest c;
  c.spec.name = "hand";
  c.spec.num_inputs = 2;
  c.spec.num_outputs = 1;
  c.spec.scan_chain_lengths = {4, 4};
  c.spec.num_patterns = 3;
  c.cubes = TestCubeSet(c.spec.stimulus_bits_per_pattern());
  c.cubes.add_pattern(TernaryVector::from_string("1X01XXXX0X"));
  c.cubes.add_pattern(TernaryVector::from_string("XX1XXX10XX"));
  c.cubes.add_pattern(TernaryVector::from_string("0XXXX1XXX1"));
  c.validate();
  return c;
}

CoreUnderTest synthetic_core(const std::string& name, std::int64_t cells,
                             int patterns, double density,
                             std::uint64_t seed) {
  CoreUnderTest c;
  c.spec.name = name;
  c.spec.num_inputs = 8;
  c.spec.num_outputs = 8;
  // 12 chains, equal up to remainder.
  const int chains = 12;
  for (int i = 0; i < chains; ++i)
    c.spec.scan_chain_lengths.push_back(
        static_cast<int>(cells / chains + (i < cells % chains ? 1 : 0)));
  c.spec.num_patterns = patterns;
  CubeSynthParams p;
  p.num_cells = c.spec.stimulus_bits_per_pattern();
  p.num_patterns = patterns;
  p.care_density = density;
  c.cubes = synthesize_cubes(p, seed);
  c.validate();
  return c;
}

}  // namespace

int main() {
  SocSpec soc;
  soc.name = "my-soc";
  soc.cores.push_back(handwritten_core());
  soc.cores.push_back(synthetic_core("dsp", 1800, 40, 0.08, 1));
  soc.cores.push_back(synthetic_core("mcu", 900, 60, 0.15, 2));
  soc.cores.push_back(synthetic_core("modem", 2600, 30, 0.05, 3));
  soc.validate();
  std::printf("built %s with %d cores, V_i = %lld bits\n\n",
              soc.name.c_str(), soc.num_cores(),
              static_cast<long long>(soc.initial_data_volume_bits()));

  ExploreOptions eopts;
  eopts.max_width = 16;
  eopts.max_chains = 64;
  const SocOptimizer opt(soc, eopts);

  OptimizerOptions o;
  o.width = 12;
  o.mode = ArchMode::PerCore;
  const OptimizationResult heur = opt.optimize(o);
  std::printf("heuristic result:\n%s\n", summarize(heur, soc).c_str());

  // Exact optimum over every partition and assignment (NP-hard; fine at
  // this size). The heuristic should land within a few percent.
  const auto cost = [&](int core, int width) {
    const CoreTable& t = opt.tables()[static_cast<std::size_t>(core)];
    return t.best(std::min(width, t.max_width())).test_time;
  };
  const auto exact = exact_optimize(soc.num_cores(), o.width, cost);
  if (exact) {
    std::printf("exact optimum: tau = %lld on %s (heuristic: %lld, gap "
                "%.1f%%)\n",
                static_cast<long long>(exact->makespan),
                exact->arch.to_string().c_str(),
                static_cast<long long>(heur.test_time),
                100.0 * (static_cast<double>(heur.test_time) /
                             static_cast<double>(exact->makespan) -
                         1.0));
  } else {
    std::printf("instance too large for the exact optimizer\n");
  }
  return 0;
}
