// Architecture study: how the three architecture styles of the paper's
// Figure 4 trade test time against on-chip wiring and decompressor
// hardware, across a sweep of access budgets and under both constraint
// interpretations. The output is the decision table an SOC integrator
// would use to pick a style.
//
// Run: ./architecture_study
#include <cstdio>

#include "opt/soc_optimizer.hpp"
#include "report/table.hpp"
#include "sched/gantt.hpp"
#include "socgen/systems.hpp"

using namespace soctest;

namespace {

void study(const SocOptimizer& opt, const SocSpec& soc,
           ConstraintMode constraint) {
  std::printf("=== constraint: %s ===\n", to_string(constraint).c_str());
  Table t({"budget", "mode", "test time", "on-chip wires", "ATE ch.",
           "decompressors", "decomp. FFs"});
  for (int width : {16, 24, 32, 48}) {
    for (ArchMode mode :
         {ArchMode::NoTdc, ArchMode::PerTam, ArchMode::PerCore}) {
      OptimizerOptions o;
      o.width = width;
      o.mode = mode;
      o.constraint = constraint;
      const OptimizationResult r = opt.optimize(o);
      t.add_row({Table::num(width), to_string(mode),
                 Table::num(r.test_time), Table::num(r.wiring.onchip_wires),
                 Table::num(r.wiring.ate_channels),
                 Table::num(r.wiring.decompressors),
                 Table::num(r.wiring.total_flip_flops)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Show the winning per-core schedule at the middle budget.
  OptimizerOptions o;
  o.width = 32;
  o.mode = ArchMode::PerCore;
  o.constraint = constraint;
  const OptimizationResult r = opt.optimize(o);
  std::vector<std::string> names;
  for (const auto& c : soc.cores) names.push_back(c.spec.name);
  std::printf("per-core schedule at budget 32 (%s):\n%s\n",
              r.arch.to_string().c_str(),
              render_gantt(r.schedule, r.arch, names).c_str());
}

}  // namespace

int main() {
  const SocSpec soc = make_fig4_soc();
  std::printf("design %s: %d industrial cores\n\n", soc.name.c_str(),
              soc.num_cores());
  ExploreOptions eopts;
  eopts.max_width = 48;
  eopts.max_chains = 511;
  const SocOptimizer opt(soc, eopts);

  study(opt, soc, ConstraintMode::TamWidth);
  study(opt, soc, ConstraintMode::AteChannels);

  std::printf(
      "reading the tables: per-TAM expansion matches per-core test time\n"
      "under an ATE constraint but needs m-wide on-chip buses; per-core\n"
      "expansion keeps the buses at compressed width in both regimes --\n"
      "the paper's Figure 4(c) argument.\n");
  return 0;
}
