// soctest — command-line front end for the library.
//
//   soctest list-designs
//   soctest show     --design <name|file.soc>
//   soctest explore  --design <d> --core <name> [--max-width N]
//                    [--max-chains N] [--csv out.csv]
//   soctest optimize --design <d> --width W [--mode percore|pertam|notdc|
//                    fixedw4] [--constraint tam|ate] [--power MW]
//                    [--power-cap MW] [--scenario spec]
//                    [--sweep-scenarios spec]      (constraint scenarios)
//                    [--select] [--svg out.svg]
//                    [--anneal N [--seed S]]    (simulated annealing search)
//                    [--portfolio K [--sweeps N] [--sweep-proposals P]
//                     [--seed S] [--checkpoint f [--checkpoint-every N]]
//                     [--resume f]]     (replica-exchange search portfolio)
//   soctest compare  --design <d> --width W            (with vs without TDC)
//   soctest convert  --design <d> --out file.soc       (export any design)
//   soctest help                                       (full flag grammar)
//
// Daemon modes (mutually exclusive with each other and with commands):
//   soctest --serve <sock>   [--sessions N] [--max-active N]
//   soctest --batch <dir>    [--sessions N] [--max-active N]
//   soctest --connect <sock>                 (client: stdin -> responses)
//   soctest --worker  <sock>                 (distributed-portfolio worker;
//                                             spawned by optimize --workers)
//
// Every command also accepts --jobs N (parallel lanes for the runtime
// pool; default: SOCTEST_JOBS env var, else all hardware threads).
//
// <d> is a built-in design (d695, d2758, System1..System4, fig4),
// synth:<cores>[:<seed>] for the seeded synthetic generator,
// synthx:<cores>[:<seed>] for the same cores with a seeded power profile
// and deterministic hierarchy, or a path to a .soc file in the src/io text
// format.
//
// Exit codes: 0 success, 1 runtime/optimizer failure, 2 usage error,
// 3 the run succeeded but a checkpoint write failed.
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ate/ate_memory.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "explore/technique_select.hpp"
#include "io/design_loader.hpp"
#include "io/soc_text.hpp"
#include "opt/annealing.hpp"
#include "opt/backend.hpp"
#include "opt/baselines.hpp"
#include "opt/rect_backend.hpp"
#include "opt/result.hpp"
#include "portfolio/portfolio.hpp"
#include "report/csv.hpp"
#include "report/json.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/scenario.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"

using namespace soctest;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  bool has(const std::string& k) const { return flags.count(k) != 0; }
  std::string get(const std::string& k, const std::string& def = "") const {
    auto it = flags.find(k);
    return it == flags.end() ? def : it->second;
  }
  /// Strict integer flag: a malformed value is a usage error (exit 2), not
  /// a silent 0 like atoi would give.
  int get_int(const std::string& k, int def) const {
    auto it = flags.find(k);
    if (it == flags.end()) return def;
    char* end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "--%s: '%s' is not an integer\n", k.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return static_cast<int>(v);
  }
  /// Strict floating-point flag, same contract as get_int: malformed
  /// values are a usage error, not atof's silent 0.
  double get_double(const std::string& k, double def) const {
    auto it = flags.find(k);
    if (it == flags.end()) return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "--%s: '%s' is not a number\n", k.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return v;
  }
  /// Strictest double flag (--power-cap): std::from_chars over the WHOLE
  /// token — unlike strtod, no leading whitespace and no inf/nan/hex
  /// forms; any trailing garbage is a usage error (exit 2).
  double get_double_chars(const std::string& k, double def) const {
    auto it = flags.find(k);
    if (it == flags.end()) return def;
    const std::string& s = it->second;
    double v = 0.0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || p != s.data() + s.size()) {
      std::fprintf(stderr, "--%s: '%s' is not a decimal number\n", k.c_str(),
                   s.c_str());
      std::exit(2);
    }
    return v;
  }
  /// Strict unsigned 64-bit flag (seeds): the whole token must be digits.
  std::uint64_t get_u64(const std::string& k, std::uint64_t def) const {
    auto it = flags.find(k);
    if (it == flags.end()) return def;
    const char* s = it->second.c_str();
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (*s < '0' || *s > '9' || end == s || *end != '\0') {
      std::fprintf(stderr, "--%s: '%s' is not an unsigned integer\n",
                   k.c_str(), s);
      std::exit(2);
    }
    return v;
  }
  /// Usage error (exit 2) if the flag is absent or empty.
  std::string require(const std::string& k) const {
    const std::string v = get(k);
    if (v.empty()) {
      std::fprintf(stderr, "missing required flag --%s\n", k.c_str());
      std::exit(2);
    }
    return v;
  }
};

Args parse_args(int argc, char** argv) {
  Args a;
  // Flags may appear before or after the command (`soctest --jobs 8
  // optimize ...` and `soctest optimize --jobs 8 ...` are equivalent);
  // the first non-flag token is the command.
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      if (a.command.empty()) {
        a.command = key;
        continue;
      }
      std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
      std::exit(2);
    }
    key = key.substr(2);
    std::string value = "1";  // bare flags
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
      value = argv[++i];
    a.flags[key] = value;
  }
  return a;
}

/// io/design_loader shared with the server, with the CLI's exit-code
/// contract layered on: a malformed design reference (strict synth:
/// grammar) is a usage error (exit 2), not a runtime failure.
SocSpec load_design_or_exit(const std::string& name) {
  try {
    return soctest::load_design(name);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

int cmd_list_designs() {
  std::printf("built-in designs:\n");
  std::printf("  d695      ITC'02-style benchmark (10 ISCAS cores)\n");
  std::printf("  d2758     synthetic many-core benchmark\n");
  std::printf("  System1..System4  industrial-core example systems\n");
  std::printf("  fig4      the paper's Figure 4 four-core design\n");
  std::printf("  synth:<cores>[:<seed>]  seeded synthetic scale-study SOC\n");
  std::printf("  synthx:<cores>[:<seed>] synth plus a seeded per-core power\n");
  std::printf("                          profile and deterministic hierarchy\n");
  std::printf("any other name is read as a .soc file (src/io format)\n");
  return 0;
}

int cmd_show(const Args& a) {
  const SocSpec soc = load_design_or_exit(a.require("design"));
  std::printf("%s: %d cores, V_i = %.3f Mbit\n", soc.name.c_str(),
              soc.num_cores(), soc.initial_data_volume_bits() / 1e6);
  Table t({"core", "inputs", "outputs", "scan cells", "chains", "patterns",
           "density"});
  for (const CoreUnderTest& c : soc.cores) {
    t.add_row({c.spec.name, Table::num(c.spec.num_inputs),
               Table::num(c.spec.num_outputs),
               Table::num(c.spec.total_scan_cells()),
               c.spec.flexible_scan
                   ? "flex"
                   : Table::num(static_cast<std::int64_t>(
                         c.spec.scan_chain_lengths.size())),
               Table::num(c.spec.num_patterns),
               Table::fixed(100.0 * c.cubes.care_bit_density(), 2) + "%"});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int cmd_explore(const Args& a) {
  const SocSpec soc = load_design_or_exit(a.require("design"));
  const std::string core_name = a.require("core");
  const CoreUnderTest* core = nullptr;
  for (const auto& c : soc.cores)
    if (c.spec.name == core_name) core = &c;
  if (!core) {
    std::fprintf(stderr, "no core '%s' in %s\n", core_name.c_str(),
                 soc.name.c_str());
    return 1;
  }
  ExploreOptions opts;
  opts.max_width = a.get_int("max-width", 32);
  opts.max_chains = a.get_int("max-chains", 255);
  const CoreTable table = explore_core(*core, opts);

  Table t({"w", "mode", "m", "test time", "volume (bits)"});
  for (int w = 1; w <= opts.max_width; ++w) {
    const CoreChoice& b = table.best(w);
    t.add_row({Table::num(w),
               b.mode == AccessMode::Compressed ? "compressed" : "direct",
               Table::num(b.m), Table::num(b.test_time),
               Table::num(b.data_volume_bits)});
  }
  std::printf("%s", t.to_string().c_str());

  if (a.has("csv")) {
    Csv csv({"m", "w", "codewords", "test_time", "volume_bits"});
    for (const SweepPoint& pt : table.sweep())
      csv.add_row({Table::num(pt.m), Table::num(pt.w),
                   Table::num(pt.codewords), Table::num(pt.test_time),
                   Table::num(pt.data_volume_bits)});
    csv.write_file(a.get("csv"));
    std::printf("wrote %s\n", a.get("csv").c_str());
  }
  return 0;
}

std::optional<ArchMode> parse_mode(const std::string& s) {
  if (s == "percore") return ArchMode::PerCore;
  if (s == "pertam") return ArchMode::PerTam;
  if (s == "notdc") return ArchMode::NoTdc;
  if (s == "fixedw4") return ArchMode::FixedWidth4;
  return std::nullopt;
}

int cmd_optimize(const Args& a) {
  const SocSpec soc = load_design_or_exit(a.require("design"));

  // Scheduling-scenario flags — parsed before the optimizer so a sweep's
  // widest cell can size the explore band. The cap channels are exclusive:
  // a run's power cap has exactly one source of truth.
  if (a.has("power") && a.has("power-cap")) {
    std::fprintf(stderr,
                 "--power and --power-cap are exclusive (same knob; "
                 "--power-cap parses strictly)\n");
    return 2;
  }
  if (a.has("scenario") && (a.has("power") || a.has("power-cap"))) {
    std::fprintf(stderr,
                 "--scenario carries its own power cap; it is exclusive "
                 "with --power/--power-cap\n");
    return 2;
  }
  if (a.has("sweep-scenarios") &&
      (a.has("scenario") || a.has("power") || a.has("power-cap") ||
       a.has("anneal") || a.has("portfolio") || a.has("resume") ||
       a.has("workers") || a.has("attach") || a.has("json") ||
       a.has("svg") || a.has("backend"))) {
    std::fprintf(stderr,
                 "--sweep-scenarios drives plain hill-climb cells; it is "
                 "exclusive with --scenario/--power/--power-cap/--anneal/"
                 "--portfolio/--resume/--workers/--attach/--json/--svg/"
                 "--backend\n");
    return 2;
  }
  ScenarioSpec scenario;
  std::vector<ScenarioSpec> sweep;
  try {
    if (a.has("scenario")) scenario = parse_scenario(a.require("scenario"));
    if (a.has("sweep-scenarios"))
      sweep = parse_scenario_sweep(a.require("sweep-scenarios"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const double power_cap = a.get_double_chars("power-cap", 0.0);
  if (power_cap < 0.0) {
    std::fprintf(stderr, "--power-cap must be >= 0\n");
    return 2;
  }

  ExploreOptions eopts;
  eopts.max_width = std::max(a.get_int("width", 32), 32);
  eopts.max_width = std::max(eopts.max_width, scenario.width);
  for (const ScenarioSpec& cell : sweep)
    eopts.max_width = std::max(eopts.max_width, cell.width);
  eopts.max_chains = a.get_int("max-chains", 255);

  const SocOptimizer opt =
      a.has("select")
          ? SocOptimizer(soc, explore_soc_with_selection(soc, eopts), eopts)
          : SocOptimizer(soc, eopts);

  OptimizerOptions o;
  o.width = a.get_int("width", 32);
  const auto mode = parse_mode(a.get("mode", "percore"));
  if (!mode) {
    std::fprintf(stderr, "bad --mode (percore|pertam|notdc|fixedw4)\n");
    return 2;
  }
  o.mode = *mode;
  const std::string cons = a.get("constraint", "tam");
  if (cons == "tam") {
    o.constraint = ConstraintMode::TamWidth;
  } else if (cons == "ate") {
    o.constraint = ConstraintMode::AteChannels;
  } else {
    std::fprintf(stderr, "bad --constraint (tam|ate)\n");
    return 2;
  }
  o.power_budget_mw = a.get_double("power", 0.0);
  if (a.has("power-cap")) o.power_budget_mw = power_cap;
  // apply_scenario also overrides --width when the scenario pins one
  // (parse_scenario enforces w >= 1 and cap >= 0, so no recheck needed).
  if (a.has("scenario")) apply_scenario(scenario, o);
  if (o.width < 1) {
    std::fprintf(stderr, "--width must be >= 1\n");
    return 2;
  }
  const std::string bk = a.get("backend", "fixed");
  if (bk == "fixed") {
    o.backend = BackendKind::FixedBus;
  } else if (bk == "rect") {
    o.backend = BackendKind::Rect;
  } else if (bk == "race") {
    o.backend = BackendKind::Race;
  } else {
    std::fprintf(stderr, "bad --backend (fixed|rect|race)\n");
    return 2;
  }
  if (o.backend != BackendKind::FixedBus) {
    std::string why;
    if (!rect_supported(o, &why)) {
      std::fprintf(stderr, "--backend %s: %s\n", bk.c_str(), why.c_str());
      return 2;
    }
  }
  // The rectangle backend is a deterministic hill climb with no tempering
  // ladder; it has nothing for annealing or the portfolio to drive. Race it
  // beside them instead.
  if (o.backend == BackendKind::Rect &&
      (a.has("anneal") || a.has("portfolio") || a.has("resume") ||
       a.has("workers") || a.has("attach"))) {
    std::fprintf(stderr,
                 "--backend rect cannot drive --anneal/--portfolio/--resume/"
                 "--workers/--attach; use --backend race to run the rect "
                 "climb beside the fixed-bus search\n");
    return 2;
  }

  if (!sweep.empty()) {
    // One optimizer, every cell: the explore tables are built once above
    // (the band already covers the widest cell) and each cell runs the
    // plain hill climb under its own scenario. Deterministic cell order —
    // cap outermost, then preempt, hier, w (scenario/scenario.hpp).
    Table t({"scenario", "W", "test time", "volume (bits)", "peak mW"});
    for (const ScenarioSpec& cell : sweep) {
      OptimizerOptions oc = o;
      apply_scenario(cell, oc);
      const OptimizationResult rc = optimize_backend(opt, oc);
      t.add_row({cell.to_string(), Table::num(oc.width),
                 Table::num(rc.test_time), Table::num(rc.data_volume_bits),
                 Table::fixed(rc.peak_power_mw, 1)});
    }
    std::printf("%s scenario matrix (%zu cells)\n", soc.name.c_str(),
                sweep.size());
    std::printf("%s", t.to_string().c_str());
    return 0;
  }

  OptimizationResult r;
  std::optional<PortfolioStats> pstats;
  if (a.has("portfolio") || a.has("resume")) {
    if (a.has("anneal")) {
      std::fprintf(stderr, "--portfolio and --anneal are exclusive (the "
                           "portfolio runs its own annealing ladder)\n");
      return 2;
    }
    o.portfolio = a.get_int("portfolio", 4);
    if (o.portfolio < 1) {
      std::fprintf(stderr, "--portfolio must be >= 1\n");
      return 2;
    }
    PortfolioOptions p;
    p.sweeps = a.get_int("sweeps", 20);
    p.proposals_per_sweep = a.get_int("sweep-proposals", 100);
    p.seed = a.get_u64("seed", 1);
    p.adaptive_ladder = a.has("adaptive-ladder");
    p.checkpoint_path = a.get("checkpoint");
    p.checkpoint_every = a.get_int("checkpoint-every", 0);
    if (p.sweeps < 0 || p.proposals_per_sweep < 1) {
      std::fprintf(stderr,
                   "--sweeps must be >= 0 and --sweep-proposals >= 1\n");
      return 2;
    }
    PortfolioResult pr;
    if (a.has("workers") || a.has("attach")) {
      dist::DistOptions d;
      d.workers = a.get_int("workers", 2);
      if (d.workers < 1) {
        std::fprintf(stderr, "--workers must be >= 1\n");
        return 2;
      }
      // --attach takes comma-separated daemon socket paths, one worker
      // each; it overrides --workers.
      if (a.has("attach")) {
        std::string rest = a.require("attach");
        while (!rest.empty()) {
          const std::size_t comma = rest.find(',');
          const std::string part = rest.substr(0, comma);
          if (!part.empty()) d.attach.push_back(part);
          if (comma == std::string::npos) break;
          rest.erase(0, comma + 1);
        }
        if (d.attach.empty()) {
          std::fprintf(stderr, "--attach needs at least one socket path\n");
          return 2;
        }
      }
      d.select = a.has("select");
      d.explore_max_width = eopts.max_width;
      d.explore_max_chains = eopts.max_chains;
      d.worker_jobs = a.get_int("jobs", 0);
      pr = a.has("resume")
               ? dist::resume_portfolio_distributed(opt, o, p, d,
                                                    a.require("resume"))
               : dist::optimize_portfolio_distributed(opt, o, p, d);
    } else {
      pr = a.has("resume")
               ? resume_portfolio(opt, o, p, a.require("resume"))
               : optimize_portfolio(opt, o, p);
    }
    r = pr.best;
    pstats = pr.stats;
    if (!p.checkpoint_path.empty() && pstats->checkpoint_error.empty())
      std::printf("checkpoint written to %s\n", p.checkpoint_path.c_str());
  } else if (a.has("anneal")) {
    AnnealingOptions an;
    an.iterations = a.get_int("anneal", 2000);
    an.seed = a.get_u64("seed", 1);
    if (an.iterations < 1) {
      std::fprintf(stderr, "--anneal must be >= 1\n");
      return 2;
    }
    r = optimize_annealing(opt, o, an);
    r = race_merge_rect(opt, o, std::move(r));
  } else {
    r = optimize_backend(opt, o);
  }
  std::printf("%s", summarize(r, soc).c_str());
  const runtime::RuntimeStats rs = runtime::collect_stats();
  double explore_s = 0, search_s = 0, portfolio_s = 0;
  for (const auto& p : rs.phases) {
    if (p.phase == "explore") explore_s = p.seconds;
    if (p.phase == "search") search_s = p.seconds;
    if (p.phase == "portfolio") portfolio_s = p.seconds;
  }
  if (portfolio_s > 0) search_s += portfolio_s;
  std::printf("[runtime] jobs=%d explore=%.3fs search=%.3fs cache %llu/%llu "
              "hits (%.1f%%), %llu evictions\n",
              rs.pool.workers, explore_s, search_s,
              static_cast<unsigned long long>(rs.table_cache.hits),
              static_cast<unsigned long long>(rs.table_cache.lookups()),
              100.0 * rs.table_cache.hit_rate(),
              static_cast<unsigned long long>(rs.table_cache.evictions));
  std::printf("[search] candidates=%llu pruned=%llu scheduled=%llu "
              "schedule-reuse=%llu column-reuse=%llu/%llu\n",
              static_cast<unsigned long long>(rs.search.candidates_generated),
              static_cast<unsigned long long>(rs.search.candidates_pruned),
              static_cast<unsigned long long>(rs.search.candidates_scheduled),
              static_cast<unsigned long long>(rs.search.schedule_reuse_hits),
              static_cast<unsigned long long>(rs.search.column_reuse_hits),
              static_cast<unsigned long long>(rs.search.column_reuse_hits +
                                              rs.search.columns_computed));
  if (rs.search.anneal_proposals > 0)
    std::printf("[search] annealing proposals=%llu memo-hits=%llu "
                "bound-pruned=%llu\n",
                static_cast<unsigned long long>(rs.search.anneal_proposals),
                static_cast<unsigned long long>(rs.search.anneal_memo_hits),
                static_cast<unsigned long long>(
                    rs.search.anneal_bound_pruned));
  if (o.backend != BackendKind::FixedBus)
    std::printf("[backend] %s packs=%llu memo-hits=%llu winner=%s\n",
                to_string(o.backend).c_str(),
                static_cast<unsigned long long>(rs.search.rect_packs),
                static_cast<unsigned long long>(rs.search.rect_memo_hits),
                to_string(r.backend).c_str());
  if (pstats) {
    std::printf("[portfolio] replicas=%d sweeps=%d proposals=%llu "
                "swap-acceptance=%.1f%% (%llu/%llu)%s%s\n",
                pstats->replicas, pstats->sweeps_completed,
                static_cast<unsigned long long>(pstats->proposals_total),
                100.0 * pstats->swap_acceptance(),
                static_cast<unsigned long long>(pstats->swaps_accepted),
                static_cast<unsigned long long>(pstats->swaps_attempted),
                pstats->hill_climb_raced ? " raced-hill-climb" : "",
                pstats->hill_climb_won ? " (hill climb won)" : "");
    if (pstats->rect_raced)
      std::printf("[portfolio] raced-rect%s\n",
                  pstats->rect_won ? " (rect won)" : "");
    if (pstats->dist_workers > 0)
      std::printf("[portfolio] distributed: workers=%d respawns=%d "
                  "setup=%.3fs sweeps=%.3fs\n",
                  pstats->dist_workers, pstats->dist_respawns,
                  pstats->dist_setup_seconds, pstats->dist_sweep_seconds);
    for (std::size_t i = 0; i < pstats->replica.size(); ++i) {
      const PortfolioReplicaReport& rep = pstats->replica[i];
      std::printf("[portfolio]   replica %zu: T0=%.4f proposals=%llu "
                  "best=%lld\n",
                  i, rep.initial_temperature,
                  static_cast<unsigned long long>(rep.proposals),
                  static_cast<long long>(rep.best_test_time));
    }
  }
  if (o.power_budget_mw > 0)
    std::printf("peak power %.1f mW (budget %.1f)\n", r.peak_power_mw,
                o.power_budget_mw);
  const AteMemoryReport mem = ate_memory(r);
  std::printf("ATE memory: %.3f Mbit total, deepest channel %lld vectors, "
              "imbalance %.2f\n",
              mem.total_bits / 1e6,
              static_cast<long long>(mem.max_channel_depth), mem.imbalance);

  if (a.has("svg")) {
    std::vector<std::string> names;
    for (const auto& c : soc.cores) names.push_back(c.spec.name);
    SvgOptions sopts;
    sopts.title = soc.name + " @ W=" + std::to_string(o.width) + " (" +
                  to_string(o.mode) + ")";
    write_svg_file(a.get("svg"), gantt_svg(r.schedule, r.arch, names, sopts));
    std::printf("wrote %s\n", a.get("svg").c_str());
  }
  if (a.has("json")) {
    // Timing-free full report on one line — the artifact determinism
    // tests byte-compare across --jobs counts and (workers x jobs) splits.
    OptimizationResult stable = r;
    stable.cpu_seconds = 0.0;
    const std::string path = a.require("json");
    std::ofstream jf(path, std::ios::binary | std::ios::trunc);
    jf << compact_json(result_to_json(stable, soc)) << "\n";
    if (!jf) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  // A checkpoint-write failure never aborts the run (the result above is
  // real and fully reported) but must not exit 0 either: scripted sweeps
  // that rely on the checkpoint for resume need to notice. Distinct code
  // so callers can tell "lost the run" (1) from "lost the checkpoint" (3).
  if (pstats && !pstats->checkpoint_error.empty()) {
    std::fprintf(stderr, "checkpoint write failed: %s\n",
                 pstats->checkpoint_error.c_str());
    return 3;
  }
  return 0;
}

int cmd_compare(const Args& a) {
  const SocSpec soc = load_design_or_exit(a.require("design"));
  ExploreOptions eopts;
  eopts.max_width = std::max(a.get_int("width", 32), 32);
  eopts.max_chains = a.get_int("max-chains", 255);
  const SocOptimizer opt(soc, eopts);
  const TdcComparison cmp =
      compare_with_without_tdc(opt, a.get_int("width", 32));
  std::printf("%s @ W=%d\n", soc.name.c_str(), cmp.width);
  std::printf("  without TDC: tau = %lld, V = %lld bits\n",
              static_cast<long long>(cmp.without_tdc.test_time),
              static_cast<long long>(cmp.without_tdc.data_volume_bits));
  std::printf("  with TDC:    tau = %lld, V = %lld bits\n",
              static_cast<long long>(cmp.with_tdc.test_time),
              static_cast<long long>(cmp.with_tdc.data_volume_bits));
  std::printf("  reductions:  time %.2fx, volume %.2fx (vs initial %.2fx)\n",
              cmp.time_reduction_factor(), cmp.volume_vs_uncompressed(),
              cmp.volume_vs_initial());
  return 0;
}

int cmd_convert(const Args& a) {
  const SocSpec soc = load_design_or_exit(a.require("design"));
  const std::string out = a.require("out");
  write_soc_text_file(out, soc);
  std::printf("wrote %s (%d cores)\n", out.c_str(), soc.num_cores());
  return 0;
}

void print_grammar(std::FILE* out) {
  std::fprintf(
      out,
      "usage: soctest <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  list-designs\n"
      "  show     --design <d>\n"
      "  explore  --design <d> --core <name> [--max-width N] [--max-chains N]\n"
      "           [--csv out.csv]\n"
      "  optimize --design <d> --width W [--mode percore|pertam|notdc|fixedw4]\n"
      "           [--constraint tam|ate] [--power MW] [--select] [--svg f]\n"
      "           [--json f] [--backend fixed|rect|race]\n"
      "           [--power-cap MW | --scenario spec | --sweep-scenarios spec]\n"
      "           [--anneal N [--seed S]]\n"
      "           [--portfolio K [--sweeps N] [--sweep-proposals P] [--seed S]\n"
      "            [--adaptive-ladder]\n"
      "            [--checkpoint f [--checkpoint-every N]] [--resume f]\n"
      "            [--workers N | --attach sock[,sock...]]]\n"
      "  compare  --design <d> --width W\n"
      "  convert  --design <d> --out file.soc\n"
      "  help\n"
      "\n"
      "daemon modes (no command; exclusive with each other and with every\n"
      "one-shot flag except --jobs):\n"
      "  --serve <sock>      long-lived daemon on a unix socket; newline-\n"
      "                      delimited JSON requests/responses (op: optimize|\n"
      "                      cancel|stats|ping|shutdown), concurrent requests\n"
      "                      share warm per-SOC state (see DESIGN.md s11)\n"
      "  --batch <dir>       drain <dir>/*.json request files through the\n"
      "                      same engine; responses to <stem>.out.jsonl;\n"
      "                      files with existing output are skipped (resume)\n"
      "  --connect <sock>    client: forward stdin lines to a --serve daemon\n"
      "                      and print its responses\n"
      "  --worker <sock>     distributed-portfolio worker (spawned by\n"
      "                      optimize --workers; not for interactive use)\n"
      "  --sessions N        warm SOC sessions kept (LRU; default 8)\n"
      "  --max-active N      concurrently computing requests (default 0 =\n"
      "                      unbounded; queued requests stay cancellable)\n"
      "\n"
      "design grammar (<d>):\n"
      "  d695 | d2758 | System1..System4 | fig4     built-in benchmarks\n"
      "  synth:<cores>[:<seed>]                     seeded synthetic SOC;\n"
      "      <cores> decimal >= 1, <seed> unsigned decimal (default 1);\n"
      "      no trailing characters (synth:120:7x is rejected)\n"
      "  synthx:<cores>[:<seed>]                    the same cores with a\n"
      "      seeded per-core power profile and a deterministic hierarchy\n"
      "      (the constraint-scenario workloads); same strict grammar\n"
      "  anything else                              path to a .soc text file\n"
      "\n"
      "scheduling scenarios (optimize):\n"
      "  --power-cap MW      strict peak-power cap: the whole token must be\n"
      "                      a plain decimal (from_chars; '20x', 'inf' and\n"
      "                      leading blanks exit 2). Exclusive with --power,\n"
      "                      which it supersedes\n"
      "  --scenario spec     one scenario cell; spec is comma-joined tokens\n"
      "                      cap=MW | preempt | hier | w=W (e.g.\n"
      "                      'cap=20,preempt' or 'hier,w=24'; 'default' =\n"
      "                      unconstrained). preempt allows power-preemptive\n"
      "                      segmented schedules (schedules like\n"
      "                      non-preemptive without a cap); hier enforces\n"
      "                      the SOC's ancestor/descendant exclusion; w\n"
      "                      overrides --width. Exclusive with --power/\n"
      "                      --power-cap; composes with --anneal,\n"
      "                      --portfolio, --workers and --json\n"
      "  --sweep-scenarios s sweep the cross product of axis lists\n"
      "                      'cap=0,20;preempt=0,1;hier=0,1;w=16,32'\n"
      "                      (semicolon-separated axes; cells enumerate cap\n"
      "                      outermost, then preempt, hier, w) through ONE\n"
      "                      warm optimizer and print a table; exclusive\n"
      "                      with the search/artifact flags listed above\n"
      "\n"
      "search selection (optimize):\n"
      "  default             multi-start hill climb over bus counts\n"
      "  --backend B         architecture backend: fixed (bus partition,\n"
      "                      default), rect (rectangle packing: per-core\n"
      "                      Pareto widths, best-fit-decreasing skyline into\n"
      "                      the W-wide strip; percore/notdc + tam only), or\n"
      "                      race (fixed-bus search plus an independent rect\n"
      "                      climb, best result wins; composes with --anneal,\n"
      "                      --portfolio and --workers)\n"
      "  --anneal N          simulated annealing, N iterations, RNG --seed S\n"
      "  --portfolio K       replica-exchange portfolio: K annealing walks on\n"
      "                      a geometric temperature ladder, deterministic\n"
      "                      swaps each sweep, racing the hill climb; budget =\n"
      "                      --sweeps x --sweep-proposals per replica\n"
      "  --checkpoint f      write portfolio state to f (and every\n"
      "                      --checkpoint-every sweeps when > 0)\n"
      "  --resume f          resume a portfolio checkpoint (same design,\n"
      "                      width, mode and portfolio config; --sweeps may\n"
      "                      be raised to extend the search; checkpoints are\n"
      "                      interchangeable between --workers counts)\n"
      "  --adaptive-ladder   retune the temperature ladder every few sweeps\n"
      "                      from observed swap acceptance (deterministic;\n"
      "                      changes the trajectory, so it is fingerprinted)\n"
      "  --workers N         shard the ladder across N spawned worker\n"
      "                      processes; the report is byte-identical to the\n"
      "                      single-process run for any (workers, jobs)\n"
      "  --attach socks      use running --serve daemons as workers instead\n"
      "                      of spawning (comma-separated socket paths)\n"
      "  --json f            also write the full report as one-line JSON with\n"
      "                      timing zeroed (the byte-compare artifact)\n"
      "\n"
      "global flags: --jobs N (parallel lanes; default $SOCTEST_JOBS or all\n"
      "hardware threads). Results are bit-identical for any --jobs value.\n"
      "exit codes: 0 success, 1 runtime/optimizer failure, 2 usage error,\n"
      "3 run succeeded but a checkpoint write failed\n");
}

int usage() {
  print_grammar(stderr);
  return 2;
}

/// Validates and runs the daemon modes. Strict, PR-5 style: the three
/// modes are mutually exclusive, take no command, and reject every
/// one-shot flag (a request's parameters travel in the protocol, not on
/// the daemon's command line) — a typo'd invocation exits 2 instead of
/// silently ignoring half its flags.
int run_daemon_mode(const Args& a) {
  const int modes = (a.has("serve") ? 1 : 0) + (a.has("batch") ? 1 : 0) +
                    (a.has("connect") ? 1 : 0);
  if (modes > 1) {
    std::fprintf(stderr,
                 "--serve, --batch and --connect are mutually exclusive\n");
    return 2;
  }
  if (!a.command.empty()) {
    std::fprintf(stderr,
                 "--serve/--batch/--connect take no command (got '%s')\n",
                 a.command.c_str());
    return 2;
  }
  static const char* kOneShot[] = {
      "design", "width",      "mode",           "constraint", "power",
      "select", "svg",        "anneal",         "portfolio",  "sweeps",
      "sweep-proposals",      "seed",           "checkpoint",
      "checkpoint-every",     "resume",         "core",       "max-width",
      "max-chains",           "csv",            "out",        "workers",
      "attach", "adaptive-ladder",              "json",       "backend",
      "power-cap",            "scenario",       "sweep-scenarios"};
  for (const char* flag : kOneShot) {
    if (a.has(flag)) {
      std::fprintf(stderr,
                   "--%s is a one-shot flag; optimize parameters travel in "
                   "the request protocol, not on the daemon command line\n",
                   flag);
      return 2;
    }
  }
  if (a.has("connect")) {
    if (a.has("sessions") || a.has("max-active")) {
      std::fprintf(stderr,
                   "--sessions/--max-active configure the daemon, not the "
                   "client\n");
      return 2;
    }
    return server::run_client(a.require("connect"));
  }
  const int sessions = a.get_int("sessions", 8);
  const int max_active = a.get_int("max-active", 0);
  if (sessions < 1) {
    std::fprintf(stderr, "--sessions must be >= 1\n");
    return 2;
  }
  if (max_active < 0) {
    std::fprintf(stderr, "--max-active must be >= 0\n");
    return 2;
  }
  server::ServerOptions sopts;
  sopts.sessions = static_cast<std::size_t>(sessions);
  sopts.max_active = max_active;
  server::ServerCore core(sopts);
  if (a.has("serve")) return server::serve_unix(a.require("serve"), core);
  return server::run_batch(a.require("batch"), core);
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  if (a.has("jobs")) {
    const int jobs = a.get_int("jobs", 0);
    if (jobs < 1) {
      std::fprintf(stderr, "--jobs must be >= 1\n");
      return 2;
    }
    soctest::runtime::set_global_concurrency(jobs);
  }
  if (a.command == "help" || a.has("help")) {
    print_grammar(stdout);
    return 0;
  }
  if (a.has("worker")) {
    // Distributed-portfolio worker: spawned by a coordinator, never by
    // hand. Takes the coordinator's socket and nothing else.
    if (!a.command.empty() || a.has("serve") || a.has("batch") ||
        a.has("connect")) {
      std::fprintf(stderr, "--worker takes no command and no other mode\n");
      return 2;
    }
    try {
      return dist::run_worker(a.require("worker"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (a.has("serve") || a.has("batch") || a.has("connect")) {
    try {
      return run_daemon_mode(a);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (a.has("sessions") || a.has("max-active")) {
    std::fprintf(stderr,
                 "--sessions/--max-active require --serve or --batch\n");
    return 2;
  }
  try {
    if (a.command == "list-designs") return cmd_list_designs();
    if (a.command == "show") return cmd_show(a);
    if (a.command == "explore") return cmd_explore(a);
    if (a.command == "optimize") return cmd_optimize(a);
    if (a.command == "compare") return cmd_compare(a);
    if (a.command == "convert") return cmd_convert(a);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
