#include "portfolio/shard.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "portfolio/counter_rng.hpp"
#include "runtime/parallel_for.hpp"

namespace soctest::portfolio {

double ladder_temperature(const PortfolioOptions& popts, int slot) {
  return popts.initial_temperature *
         std::pow(popts.temperature_ratio, slot);
}

int resolved_ladder_size(const OptimizerOptions& opts,
                         const PortfolioOptions& popts) {
  if (popts.replicas > 0) return popts.replicas;
  if (opts.portfolio > 0) return opts.portfolio;
  return 4;
}

std::pair<int, int> shard_slot_range(int ladder_size, int workers,
                                     int worker) {
  if (workers < 1 || worker < 0 || worker >= workers)
    throw std::invalid_argument("shard_slot_range: bad worker index");
  const std::int64_t k = ladder_size;
  const std::int64_t w = workers;
  return {static_cast<int>(k * worker / w),
          static_cast<int>(k * (worker + 1) / w)};
}

LadderShard::LadderShard(const SocOptimizer& optimizer,
                         const OptimizerOptions& opts,
                         const PortfolioOptions& popts, int ladder_size,
                         int slot_begin, int slot_end, ScheduleMemo* memo,
                         ColumnCache* columns)
    : begin_(slot_begin),
      end_(slot_end),
      proposals_per_sweep_(popts.proposals_per_sweep) {
  if (slot_begin < 0 || slot_end > ladder_size || slot_begin >= slot_end)
    throw std::invalid_argument("LadderShard: bad slot range [" +
                                std::to_string(slot_begin) + ", " +
                                std::to_string(slot_end) + ") of " +
                                std::to_string(ladder_size));
  walks_.reserve(static_cast<std::size_t>(size()));
  for (int r = slot_begin; r < slot_end; ++r) {
    // Each walk needs iterations for the FULL budget up front (it refuses
    // to step past its own horizon); resume may extend this.
    AnnealingOptions a;
    a.iterations = static_cast<std::int64_t>(popts.sweeps) *
                   popts.proposals_per_sweep;
    a.initial_temperature = ladder_temperature(popts, r);
    a.cooling = popts.cooling;
    a.seed = replica_seed(popts.seed, r);
    walks_.push_back(
        std::make_unique<AnnealWalk>(optimizer, opts, a, memo, columns));
  }
}

void LadderShard::run_sweep() {
  runtime::parallel_for(0, size(), [&](std::int64_t i) {
    AnnealWalk& w = *walks_[static_cast<std::size_t>(i)];
    for (int p = 0; p < proposals_per_sweep_; ++p) w.step();
  });
}

AnnealWalk& LadderShard::walk(int slot) {
  if (slot < begin_ || slot >= end_)
    throw std::out_of_range("LadderShard: slot " + std::to_string(slot) +
                            " not in [" + std::to_string(begin_) + ", " +
                            std::to_string(end_) + ")");
  return *walks_[static_cast<std::size_t>(slot - begin_)];
}

const AnnealWalk& LadderShard::walk(int slot) const {
  return const_cast<LadderShard*>(this)->walk(slot);
}

ShardSlotState LadderShard::slot_state(int slot) const {
  const AnnealWalk& w = walk(slot);
  ShardSlotState s;
  s.state = w.save_state();
  s.cur_time = w.current_result().test_time;
  s.cur_volume = w.current_result().data_volume_bits;
  s.best_time = w.best().test_time;
  s.best_volume = w.best().data_volume_bits;
  return s;
}

ShardFrame LadderShard::frame(std::uint64_t fingerprint, int sweep) const {
  ShardFrame f;
  f.fingerprint = fingerprint;
  f.sweep = sweep;
  f.slot_begin = begin_;
  f.slot_end = end_;
  f.slots.reserve(static_cast<std::size_t>(size()));
  for (int r = begin_; r < end_; ++r) f.slots.push_back(slot_state(r));
  return f;
}

void LadderShard::restore(int slot, const AnnealWalkState& st) {
  walk(slot).restore_state(st);
}

runtime::SearchStats LadderShard::counters() const {
  runtime::SearchStats total;
  for (const auto& w : walks_) {
    const runtime::SearchStats s = w->counters();
    total.candidates_generated += s.candidates_generated;
    total.candidates_pruned += s.candidates_pruned;
    total.candidates_scheduled += s.candidates_scheduled;
    total.schedule_reuse_hits += s.schedule_reuse_hits;
    total.column_reuse_hits += s.column_reuse_hits;
    total.columns_computed += s.columns_computed;
    total.anneal_proposals += s.anneal_proposals;
    total.anneal_memo_hits += s.anneal_memo_hits;
    total.anneal_bound_pruned += s.anneal_bound_pruned;
    total.warm_schedule_starts += s.warm_schedule_starts;
    total.portfolio_proposals += s.portfolio_proposals;
    total.portfolio_swaps_attempted += s.portfolio_swaps_attempted;
    total.portfolio_swaps_accepted += s.portfolio_swaps_accepted;
  }
  return total;
}

}  // namespace soctest::portfolio
