// LadderShard: the ladder slots [slot_begin, slot_end) of a K-replica
// temperature ladder, owned and stepped by one process. The single-process
// portfolio runs one shard spanning [0, K); the distributed portfolio gives
// each worker process its own contiguous slot range over process-local
// caches. Slot indices are always LADDER-GLOBAL, so temperatures
// (ladder_temperature(popts, slot)) and RNG streams (replica_seed(seed,
// slot)) are identical no matter which process hosts a slot — the
// foundation of the byte-identical (workers x jobs) invariant.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "opt/anneal_walk.hpp"
#include "portfolio/checkpoint.hpp"
#include "portfolio/portfolio.hpp"

namespace soctest::portfolio {

class LadderShard {
 public:
  /// Builds the walks for slots [slot_begin, slot_end) of a
  /// `ladder_size`-slot ladder; each gets its ladder temperature, its
  /// replica seed, and the full sweeps x proposals_per_sweep iteration
  /// budget. `optimizer` must outlive the shard; `memo`/`columns` are the
  /// process-local shared caches (null = private per walk).
  LadderShard(const SocOptimizer& optimizer, const OptimizerOptions& opts,
              const PortfolioOptions& popts, int ladder_size, int slot_begin,
              int slot_end, ScheduleMemo* memo, ColumnCache* columns);

  int slot_begin() const { return begin_; }
  int slot_end() const { return end_; }
  int size() const { return end_ - begin_; }

  /// One sweep: every local slot advances proposals_per_sweep iterations,
  /// in parallel on the process pool. Trajectories are independent (own
  /// RNG, own evaluator view); shared caches only change who computes a
  /// result first.
  void run_sweep();

  /// Walk of LADDER-GLOBAL slot `slot` (must be local to this shard).
  AnnealWalk& walk(int slot);
  const AnnealWalk& walk(int slot) const;

  /// Exchange between local slots (lo, lo + 1) — both must be local.
  void exchange(int lo) { AnnealWalk::exchange(walk(lo), walk(lo + 1)); }

  /// Snapshot of one local slot (state + current/best metrics).
  ShardSlotState slot_state(int slot) const;
  /// Full frame for slots [slot_begin, slot_end) after `sweep` sweeps.
  ShardFrame frame(std::uint64_t fingerprint, int sweep) const;

  /// Restores one local slot from a checkpointed walk state.
  void restore(int slot, const AnnealWalkState& st);

  /// Summed evaluator counters of every local walk.
  runtime::SearchStats counters() const;

 private:
  int begin_;
  int end_;
  int proposals_per_sweep_;
  std::vector<std::unique_ptr<AnnealWalk>> walks_;  // index slot - begin_
};

/// Ladder slot r's starting temperature (relative to its start makespan):
/// initial_temperature * temperature_ratio^r.
double ladder_temperature(const PortfolioOptions& popts, int slot);

/// Ladder size K: popts.replicas, else opts.portfolio, else 4.
int resolved_ladder_size(const OptimizerOptions& opts,
                         const PortfolioOptions& popts);

/// The coordinator's slot partition: worker w of W gets
/// [w * K / W, (w + 1) * K / W) — contiguous, near-equal, and a pure
/// function of (K, W), so respawns recompute the identical split.
std::pair<int, int> shard_slot_range(int ladder_size, int workers,
                                     int worker);

}  // namespace soctest::portfolio
