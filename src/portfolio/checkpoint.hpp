// Versioned binary checkpoint for the replica-exchange portfolio. The blob
// captures everything a resumed run needs to be bit-identical to the
// uninterrupted one: per-replica RNG words, iteration cursors, exact
// temperature bits, and current/best width vectors (their
// OptimizationResults are re-derived — evaluation is deterministic), plus
// the swap/proposal counters, the best-by-sweep trajectory, and the
// hill-climb racer's outcome. A fingerprint of the (SOC, optimizer options,
// portfolio config) universe guards against resuming against the wrong
// problem; decode errors and mismatches throw, they never silently
// mis-resume.
//
// Format (version 4, little-endian on every supported target):
//   byte[8]  magic "SOCPFCK1"
//   u32      version
//   u64      fingerprint
//   u8       backend tag (BackendKind numeric value; version 3+ only)
//   u64      scenario power-cap IEEE-754 bits (version 4+ only)
//   u8       scenario flags: bit0 preemptive, bit1 hierarchical; any
//            other bit set is corruption (version 4+ only)
//   u32      replica count K
//   u32      sweeps_completed
//   u64      swaps_attempted, swaps_accepted, proposals_total
//   u8       racer_state (0 = no racer, 1 = rerun on resume, 2 = done)
//   widths   racer best (present iff racer_state == 2)
//   i64[]    best_by_sweep (u32 count prefix)
//   u64[]    retune_attempted (u32 count prefix; adaptive-ladder window)
//   u64[]    retune_accepted  (u32 count prefix)
//   K x      { u64[4] rng, u64 iteration, u64 temperature_bits,
//              u64 proposals, widths current, widths best }
// where widths = u32 count + i32 values. Version 2 added the adaptive
// ladder's per-pair retune window counters (empty unless --adaptive-ladder
// ran); version 1 blobs are rejected — the fingerprint recipe changed with
// them, so no version-1 blob could resume correctly anyway. Version 3
// added the backend tag right after the fingerprint; version 2 blobs are
// still accepted (the tag defaults to fixed-bus with a stderr note — every
// pre-backend run WAS fixed-bus, and the fingerprint recipe only hashes a
// non-default backend, so v2 fingerprints stay comparable). Version 4
// added the scheduling-scenario tag (power cap bits + preempt/hier flags)
// right after the backend byte; v2/v3 blobs decode as the default scenario
// with a stderr note — pre-scenario runs could not have been anything
// else, and the fingerprint only hashes non-default scenario flags, so
// their fingerprints stay comparable too (the power budget was already
// hashed unconditionally before scenarios existed).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "opt/anneal_walk.hpp"
#include "scenario/scenario.hpp"

namespace soctest::portfolio {

/// Thrown by write_checkpoint_file when the blob cannot be persisted
/// (unwritable path, full disk). Distinct from std::runtime_error so
/// callers can keep the in-memory run: the search state that failed to
/// persist is still valid — the CLI reports it with exit code 3 and the
/// server with a "checkpoint_io" protocol error, neither aborts the run.
class CheckpointIoError : public std::runtime_error {
 public:
  explicit CheckpointIoError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class RacerState : std::uint8_t { None = 0, Pending = 1, Done = 2 };

struct PortfolioCheckpoint {
  std::uint64_t fingerprint = 0;
  /// Backend the checkpointed run searched with. Pre-v3 blobs carry no tag
  /// and decode as FixedBus (what every pre-backend run was); resuming
  /// under a different backend is rejected before the fingerprint check so
  /// the error names the actual mismatch.
  BackendKind backend = BackendKind::FixedBus;
  /// Scheduling scenario the checkpointed run searched under (width is
  /// never part of scenario identity and stays 0 here — it is hashed into
  /// the fingerprint as opts.width). Pre-v4 blobs carry no tag and decode
  /// as the default scenario with a stderr note; resuming under a
  /// different scenario is rejected before the fingerprint check so the
  /// error names the actual mismatch.
  ScenarioSpec scenario;
  /// False iff the blob predates version 4. A pre-v4 blob's power cap is
  /// unknowable from the blob itself (it was only ever hashed into the
  /// fingerprint), so resume skips the cap half of the scenario check for
  /// them — the unconditional fingerprint hash of the power budget already
  /// guards it, exactly as it did before scenarios existed. The
  /// preempt/hier half still applies: no pre-scenario run was either.
  bool has_scenario_tag = true;
  int sweeps_completed = 0;
  std::uint64_t swaps_attempted = 0;
  std::uint64_t swaps_accepted = 0;
  std::uint64_t proposals_total = 0;
  RacerState racer_state = RacerState::None;
  std::vector<int> racer_best_widths;       // valid iff racer_state == Done
  std::vector<std::int64_t> best_by_sweep;  // incumbent after each sweep
  // Adaptive-ladder retune window: per-adjacent-pair swap attempts and
  // acceptances since the last retune barrier. Checkpoints can land
  // mid-window, so a resume must restore these exactly or the next retune
  // would see a shorter window and re-shape the ladder differently. Empty
  // when the adaptive ladder is off.
  std::vector<std::uint64_t> retune_window_attempted;
  std::vector<std::uint64_t> retune_window_accepted;
  std::vector<AnnealWalkState> replicas;    // ladder order
};

std::vector<unsigned char> encode_checkpoint(const PortfolioCheckpoint& ck);

/// Throws CheckpointIoError when the path cannot be opened or the write
/// comes up short (disk full).
void write_checkpoint_file(const std::string& path,
                           const PortfolioCheckpoint& ck);

/// Throws std::runtime_error on bad magic, unknown version, or truncation.
PortfolioCheckpoint decode_checkpoint(const std::vector<unsigned char>& bytes);

/// Throws std::runtime_error when the file is unreadable or malformed.
PortfolioCheckpoint read_checkpoint_file(const std::string& path);

/// Rejects a resume whose scheduling scenario differs from the one the
/// checkpoint was written under — called by both the single-process and
/// distributed resume paths BEFORE the fingerprint check, so the error
/// names the actual mismatch instead of a generic fingerprint failure.
/// For pre-v4 blobs (no scenario tag) only the preempt/hier half is
/// compared; the cap half is guarded by the fingerprint's unconditional
/// power-budget hash, exactly as it was before scenarios existed.
void check_checkpoint_scenario(const PortfolioCheckpoint& ck,
                               const ScenarioSpec& want);

/// One ladder slot's state as exchanged between the distributed
/// coordinator and a worker at a sweep barrier: the full AnnealWalkState
/// plus the current/best objective metrics the coordinator needs for its
/// swap decisions and best-by-sweep curve. Workers restoring a frame only
/// use `state` (results are re-derived deterministically); the metrics are
/// coordinator-side bookkeeping.
struct ShardSlotState {
  AnnealWalkState state;
  std::int64_t cur_time = 0;
  std::int64_t cur_volume = 0;
  std::int64_t best_time = 0;
  std::int64_t best_volume = 0;
};

/// Exchange message payload ("SOCPFSH1"): the states of ladder slots
/// [slot_begin, slot_end) after `sweep` sweeps, guarded by the same
/// configuration fingerprint as the checkpoint blob. Shipped worker ->
/// coordinator after every sweep and coordinator -> worker on init/respawn.
struct ShardFrame {
  std::uint64_t fingerprint = 0;
  int sweep = 0;
  int slot_begin = 0;
  int slot_end = 0;
  std::vector<ShardSlotState> slots;  // ladder order, slot_end - slot_begin
};

std::vector<unsigned char> encode_shard_frame(const ShardFrame& f);

/// Strict decode: throws std::runtime_error on bad magic, unknown version,
/// truncation, slot-count mismatch, or trailing bytes — a corrupted
/// exchange frame must abort the distributed run cleanly, never
/// mis-resume a replica.
ShardFrame decode_shard_frame(const std::vector<unsigned char>& bytes);

}  // namespace soctest::portfolio
