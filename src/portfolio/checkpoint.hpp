// Versioned binary checkpoint for the replica-exchange portfolio. The blob
// captures everything a resumed run needs to be bit-identical to the
// uninterrupted one: per-replica RNG words, iteration cursors, exact
// temperature bits, and current/best width vectors (their
// OptimizationResults are re-derived — evaluation is deterministic), plus
// the swap/proposal counters, the best-by-sweep trajectory, and the
// hill-climb racer's outcome. A fingerprint of the (SOC, optimizer options,
// portfolio config) universe guards against resuming against the wrong
// problem; decode errors and mismatches throw, they never silently
// mis-resume.
//
// Format (version 1, little-endian on every supported target):
//   byte[8]  magic "SOCPFCK1"
//   u32      version
//   u64      fingerprint
//   u32      replica count K
//   u32      sweeps_completed
//   u64      swaps_attempted, swaps_accepted, proposals_total
//   u8       racer_state (0 = no racer, 1 = rerun on resume, 2 = done)
//   widths   racer best (present iff racer_state == 2)
//   i64[]    best_by_sweep (u32 count prefix)
//   K x      { u64[4] rng, u64 iteration, u64 temperature_bits,
//              u64 proposals, widths current, widths best }
// where widths = u32 count + i32 values.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "opt/anneal_walk.hpp"

namespace soctest::portfolio {

/// Thrown by write_checkpoint_file when the blob cannot be persisted
/// (unwritable path, full disk). Distinct from std::runtime_error so
/// callers can keep the in-memory run: the search state that failed to
/// persist is still valid — the CLI reports it with exit code 3 and the
/// server with a "checkpoint_io" protocol error, neither aborts the run.
class CheckpointIoError : public std::runtime_error {
 public:
  explicit CheckpointIoError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class RacerState : std::uint8_t { None = 0, Pending = 1, Done = 2 };

struct PortfolioCheckpoint {
  std::uint64_t fingerprint = 0;
  int sweeps_completed = 0;
  std::uint64_t swaps_attempted = 0;
  std::uint64_t swaps_accepted = 0;
  std::uint64_t proposals_total = 0;
  RacerState racer_state = RacerState::None;
  std::vector<int> racer_best_widths;       // valid iff racer_state == Done
  std::vector<std::int64_t> best_by_sweep;  // incumbent after each sweep
  std::vector<AnnealWalkState> replicas;    // ladder order
};

std::vector<unsigned char> encode_checkpoint(const PortfolioCheckpoint& ck);

/// Throws CheckpointIoError when the path cannot be opened or the write
/// comes up short (disk full).
void write_checkpoint_file(const std::string& path,
                           const PortfolioCheckpoint& ck);

/// Throws std::runtime_error on bad magic, unknown version, or truncation.
PortfolioCheckpoint decode_checkpoint(const std::vector<unsigned char>& bytes);

/// Throws std::runtime_error when the file is unreadable or malformed.
PortfolioCheckpoint read_checkpoint_file(const std::string& path);

}  // namespace soctest::portfolio
