// Shared temperature-ladder policy for the replica-exchange portfolio. The
// single-process driver (portfolio.cpp) and the distributed coordinator
// (src/dist) must take EXACTLY the same swap and retune decisions — both
// call these pure functions on the same inputs, so the decisions are equal
// by construction, not by careful duplication. Temperatures cross process
// boundaries as raw IEEE-754 bits (AnnealWalkState::temperature_bits), so
// the doubles fed in here are bitwise identical on every side.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "portfolio/counter_rng.hpp"

namespace soctest::portfolio {

inline std::uint64_t double_bits(double d) {
  std::uint64_t u;
  static_assert(sizeof u == sizeof d);
  std::memcpy(&u, &d, sizeof u);
  return u;
}

inline double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

/// Standard replica-exchange acceptance between the (hot, cold) =
/// (lo, lo + 1) ladder pair: always swap when it moves the better
/// configuration toward the colder slot, otherwise with probability
/// exp((1/T_lo - 1/T_hi)(E_lo - E_hi)) on a counter-based draw keyed on
/// (seed, sweep, pair) — a pure function, so any process sharding takes
/// the identical decision.
inline bool swap_decision(double t_hot, double t_cold, std::int64_t e_hot,
                          std::int64_t e_cold, std::uint64_t seed, int sweep,
                          int pair) {
  const double th = std::max(t_hot, 1e-300);
  const double tc = std::max(t_cold, 1e-300);
  const double eh = static_cast<double>(e_hot);
  const double ec = static_cast<double>(e_cold);
  const double arg = (1.0 / th - 1.0 / tc) * (eh - ec);
  if (arg >= 0.0) return true;
  return swap_uniform(seed, static_cast<std::uint64_t>(sweep),
                      static_cast<std::uint64_t>(pair)) < std::exp(arg);
}

/// Adaptive-ladder retune window and acceptance target (~23-40% per
/// adjacent pair, the classic parallel-tempering sweet spot).
constexpr int kRetuneEverySweeps = 8;
constexpr double kRetuneAcceptLow = 0.23;
constexpr double kRetuneAcceptHigh = 0.40;
/// Gap adjustment exponent: a retune moves the colder slot's temperature a
/// quarter of the way (in log space) toward / away from its hotter
/// neighbour.
constexpr double kRetuneStep = 0.25;

/// Deterministic ladder retune from per-pair swap acceptance observed over
/// the last window. `temps` holds the CURRENT temperature of every ladder
/// slot (ladder order); pairs are processed in ascending order, each
/// adjusting the colder slot T[p+1]: too few acceptances narrow the gap
/// (raise T[p+1] toward T[p]), too many widen it. T[p+1] never exceeds
/// T[p], so the ladder stays monotone. Inputs come from deterministic swap
/// counters, so every process computes the identical new ladder; the swap
/// RNG itself is untouched (it is keyed on (seed, sweep, pair), never on
/// temperatures).
inline void retune_ladder(std::vector<double>& temps,
                          const std::vector<std::uint64_t>& attempted,
                          const std::vector<std::uint64_t>& accepted) {
  for (std::size_t p = 0; p + 1 < temps.size(); ++p) {
    if (p >= attempted.size() || attempted[p] == 0) continue;
    const double t_hot = temps[p];
    const double t_cold = temps[p + 1];
    if (!(t_hot > 0.0) || !(t_cold > 0.0)) continue;
    const double rate = static_cast<double>(accepted[p]) /
                        static_cast<double>(attempted[p]);
    const double gap = std::max(t_hot / t_cold, 1.0);
    if (rate < kRetuneAcceptLow) {
      temps[p + 1] = std::min(t_hot, t_cold * std::pow(gap, kRetuneStep));
    } else if (rate > kRetuneAcceptHigh) {
      temps[p + 1] = t_cold / std::pow(gap, kRetuneStep);
    }
  }
}

}  // namespace soctest::portfolio
