#include "portfolio/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "portfolio/ladder_policy.hpp"

namespace soctest::portfolio {
namespace {

constexpr char kMagic[8] = {'S', 'O', 'C', 'P', 'F', 'C', 'K', '1'};
constexpr std::uint32_t kVersion = 4;
// Still accepted: identical to v4 minus the scenario tag (always default).
constexpr std::uint32_t kVersionNoScenario = 3;
// Still accepted: v3 minus the backend tag too (always fixed-bus).
constexpr std::uint32_t kVersionNoBackend = 2;
constexpr std::uint8_t kScenarioPreemptive = 0x01;
constexpr std::uint8_t kScenarioHierarchical = 0x02;
constexpr char kShardMagic[8] = {'S', 'O', 'C', 'P', 'F', 'S', 'H', '1'};
constexpr std::uint32_t kShardVersion = 1;

struct Writer {
  std::vector<unsigned char> out;

  void u8(std::uint8_t v) { out.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void widths(const std::vector<int>& w) {
    u32(static_cast<std::uint32_t>(w.size()));
    for (int v : w) u32(static_cast<std::uint32_t>(v));
  }
};

struct Reader {
  const std::vector<unsigned char>& in;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > in.size())
      throw std::runtime_error("portfolio checkpoint: truncated blob");
  }
  std::uint8_t u8() {
    need(1);
    return in[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(in[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(in[pos++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::vector<int> widths() {
    const std::uint32_t n = u32();
    // A width vector can never outgrow the blob it came from; anything
    // larger is corruption, not data — reject before allocating.
    if (n > in.size())
      throw std::runtime_error("portfolio checkpoint: implausible vector");
    std::vector<int> w;
    w.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      w.push_back(static_cast<int>(u32()));
    return w;
  }
};

}  // namespace

std::vector<unsigned char> encode_checkpoint(const PortfolioCheckpoint& ck) {
  Writer w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kVersion);
  w.u64(ck.fingerprint);
  w.u8(static_cast<std::uint8_t>(ck.backend));
  w.u64(double_bits(ck.scenario.power_cap_mw));
  w.u8(static_cast<std::uint8_t>(
      (ck.scenario.preemptive ? kScenarioPreemptive : 0) |
      (ck.scenario.hierarchical ? kScenarioHierarchical : 0)));
  w.u32(static_cast<std::uint32_t>(ck.replicas.size()));
  w.u32(static_cast<std::uint32_t>(ck.sweeps_completed));
  w.u64(ck.swaps_attempted);
  w.u64(ck.swaps_accepted);
  w.u64(ck.proposals_total);
  w.u8(static_cast<std::uint8_t>(ck.racer_state));
  if (ck.racer_state == RacerState::Done) w.widths(ck.racer_best_widths);
  w.u32(static_cast<std::uint32_t>(ck.best_by_sweep.size()));
  for (std::int64_t v : ck.best_by_sweep) w.i64(v);
  w.u32(static_cast<std::uint32_t>(ck.retune_window_attempted.size()));
  for (std::uint64_t v : ck.retune_window_attempted) w.u64(v);
  w.u32(static_cast<std::uint32_t>(ck.retune_window_accepted.size()));
  for (std::uint64_t v : ck.retune_window_accepted) w.u64(v);
  for (const AnnealWalkState& r : ck.replicas) {
    for (std::uint64_t s : r.rng) w.u64(s);
    w.u64(static_cast<std::uint64_t>(r.iteration));
    w.u64(r.temperature_bits);
    w.u64(r.proposals);
    w.widths(r.current_widths);
    w.widths(r.best_widths);
  }
  return std::move(w.out);
}

PortfolioCheckpoint decode_checkpoint(
    const std::vector<unsigned char>& bytes) {
  Reader r{bytes};
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("portfolio checkpoint: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kVersion && version != kVersionNoScenario &&
      version != kVersionNoBackend)
    throw std::runtime_error("portfolio checkpoint: unsupported version " +
                             std::to_string(version));
  PortfolioCheckpoint ck;
  ck.fingerprint = r.u64();
  if (version >= kVersionNoScenario) {
    const std::uint8_t backend = r.u8();
    if (backend > static_cast<std::uint8_t>(BackendKind::Race))
      throw std::runtime_error("portfolio checkpoint: bad backend tag " +
                               std::to_string(backend));
    ck.backend = static_cast<BackendKind>(backend);
  } else {
    // Pre-v3 blob: no backend tag existed, and every pre-backend run was
    // the fixed-bus search. Note it — the blob is being reinterpreted, not
    // read verbatim.
    std::fprintf(stderr,
                 "note: portfolio checkpoint has no backend tag (version %u); "
                 "assuming fixed-bus\n",
                 version);
    ck.backend = BackendKind::FixedBus;
  }
  if (version >= kVersion) {
    ck.scenario.power_cap_mw = bits_double(r.u64());
    if (!(ck.scenario.power_cap_mw >= 0.0))  // rejects NaN and negatives
      throw std::runtime_error("portfolio checkpoint: bad scenario power cap");
    const std::uint8_t flags = r.u8();
    if (flags > (kScenarioPreemptive | kScenarioHierarchical))
      throw std::runtime_error("portfolio checkpoint: bad scenario flags " +
                               std::to_string(flags));
    ck.scenario.preemptive = (flags & kScenarioPreemptive) != 0;
    ck.scenario.hierarchical = (flags & kScenarioHierarchical) != 0;
  } else {
    // Pre-v4 blob: no scenario tag existed, and every pre-scenario run
    // searched the default scenario (a power budget, when set, lives in
    // the fingerprint — pre-v4 blobs with one simply fail the fingerprint
    // check against a non-matching request, as they always did).
    std::fprintf(stderr,
                 "note: portfolio checkpoint has no scenario tag "
                 "(version %u); assuming default scenario\n",
                 version);
    ck.scenario = ScenarioSpec{};
    ck.has_scenario_tag = false;
  }
  const std::uint32_t replicas = r.u32();
  ck.sweeps_completed = static_cast<int>(r.u32());
  ck.swaps_attempted = r.u64();
  ck.swaps_accepted = r.u64();
  ck.proposals_total = r.u64();
  const std::uint8_t racer = r.u8();
  if (racer > static_cast<std::uint8_t>(RacerState::Done))
    throw std::runtime_error("portfolio checkpoint: bad racer state");
  ck.racer_state = static_cast<RacerState>(racer);
  if (ck.racer_state == RacerState::Done) ck.racer_best_widths = r.widths();
  const std::uint32_t sweeps = r.u32();
  if (sweeps > bytes.size())
    throw std::runtime_error("portfolio checkpoint: implausible vector");
  ck.best_by_sweep.reserve(sweeps);
  for (std::uint32_t i = 0; i < sweeps; ++i)
    ck.best_by_sweep.push_back(r.i64());
  const std::uint32_t win_att = r.u32();
  if (win_att > bytes.size())
    throw std::runtime_error("portfolio checkpoint: implausible vector");
  ck.retune_window_attempted.reserve(win_att);
  for (std::uint32_t i = 0; i < win_att; ++i)
    ck.retune_window_attempted.push_back(r.u64());
  const std::uint32_t win_acc = r.u32();
  if (win_acc > bytes.size())
    throw std::runtime_error("portfolio checkpoint: implausible vector");
  ck.retune_window_accepted.reserve(win_acc);
  for (std::uint32_t i = 0; i < win_acc; ++i)
    ck.retune_window_accepted.push_back(r.u64());
  if (replicas > bytes.size())
    throw std::runtime_error("portfolio checkpoint: implausible vector");
  ck.replicas.reserve(replicas);
  for (std::uint32_t i = 0; i < replicas; ++i) {
    AnnealWalkState st;
    for (std::uint64_t& s : st.rng) s = r.u64();
    const std::uint64_t it = r.u64();
    if (it > static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max()))
      throw std::runtime_error("portfolio checkpoint: implausible iteration");
    st.iteration = static_cast<std::int64_t>(it);
    st.temperature_bits = r.u64();
    st.proposals = r.u64();
    st.current_widths = r.widths();
    st.best_widths = r.widths();
    ck.replicas.push_back(std::move(st));
  }
  if (r.pos != bytes.size())
    throw std::runtime_error("portfolio checkpoint: trailing bytes");
  return ck;
}

namespace {

void put_walk_state(Writer& w, const AnnealWalkState& st) {
  for (std::uint64_t s : st.rng) w.u64(s);
  w.u64(static_cast<std::uint64_t>(st.iteration));
  w.u64(st.temperature_bits);
  w.u64(st.proposals);
  w.widths(st.current_widths);
  w.widths(st.best_widths);
}

AnnealWalkState get_walk_state(Reader& r, const char* what) {
  AnnealWalkState st;
  for (std::uint64_t& s : st.rng) s = r.u64();
  const std::uint64_t it = r.u64();
  if (it >
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
    throw std::runtime_error(std::string(what) + ": implausible iteration");
  st.iteration = static_cast<std::int64_t>(it);
  st.temperature_bits = r.u64();
  st.proposals = r.u64();
  st.current_widths = r.widths();
  st.best_widths = r.widths();
  return st;
}

}  // namespace

std::vector<unsigned char> encode_shard_frame(const ShardFrame& f) {
  Writer w;
  for (char c : kShardMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kShardVersion);
  w.u64(f.fingerprint);
  w.u32(static_cast<std::uint32_t>(f.sweep));
  w.u32(static_cast<std::uint32_t>(f.slot_begin));
  w.u32(static_cast<std::uint32_t>(f.slot_end));
  w.u32(static_cast<std::uint32_t>(f.slots.size()));
  for (const ShardSlotState& s : f.slots) {
    put_walk_state(w, s.state);
    w.i64(s.cur_time);
    w.i64(s.cur_volume);
    w.i64(s.best_time);
    w.i64(s.best_volume);
  }
  return std::move(w.out);
}

ShardFrame decode_shard_frame(const std::vector<unsigned char>& bytes) {
  Reader r{bytes};
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kShardMagic, sizeof kShardMagic) != 0)
    throw std::runtime_error("shard frame: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kShardVersion)
    throw std::runtime_error("shard frame: unsupported version " +
                             std::to_string(version));
  ShardFrame f;
  f.fingerprint = r.u64();
  f.sweep = static_cast<int>(r.u32());
  f.slot_begin = static_cast<int>(r.u32());
  f.slot_end = static_cast<int>(r.u32());
  const std::uint32_t n = r.u32();
  if (n > bytes.size())
    throw std::runtime_error("shard frame: implausible slot count");
  if (f.slot_begin < 0 || f.slot_end < f.slot_begin ||
      static_cast<std::uint32_t>(f.slot_end - f.slot_begin) != n)
    throw std::runtime_error("shard frame: slot range/count mismatch");
  f.slots.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardSlotState s;
    s.state = get_walk_state(r, "shard frame");
    s.cur_time = r.i64();
    s.cur_volume = r.i64();
    s.best_time = r.i64();
    s.best_volume = r.i64();
    f.slots.push_back(std::move(s));
  }
  if (r.pos != bytes.size())
    throw std::runtime_error("shard frame: trailing bytes");
  return f;
}

void write_checkpoint_file(const std::string& path,
                           const PortfolioCheckpoint& ck) {
  const std::vector<unsigned char> bytes = encode_checkpoint(ck);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f)
    throw CheckpointIoError("portfolio checkpoint: cannot open '" + path +
                            "' for writing");
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  f.flush();
  if (!f)
    throw CheckpointIoError("portfolio checkpoint: short write to '" + path +
                            "' (disk full?)");
}

void check_checkpoint_scenario(const PortfolioCheckpoint& ck,
                               const ScenarioSpec& want) {
  ScenarioSpec got = ck.scenario;
  if (!ck.has_scenario_tag) got.power_cap_mw = want.power_cap_mw;
  if (got != want)
    throw std::runtime_error("portfolio: checkpoint scenario '" +
                             got.to_string() +
                             "' does not match requested scenario '" +
                             want.to_string() + "'");
}

PortfolioCheckpoint read_checkpoint_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("portfolio checkpoint: cannot read '" + path +
                             "'");
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  return decode_checkpoint(bytes);
}

}  // namespace soctest::portfolio
