// Replica-exchange (parallel-tempering) search portfolio for the step-3
// architecture search. K annealing walks run at a geometric temperature
// ladder (slot r starts at initial_temperature * temperature_ratio^r,
// relative to its start makespan, all cooling at the same rate); after
// every sweep of proposals_per_sweep steps per walk, adjacent ladder pairs
// exchange their current configurations with the standard replica-exchange
// acceptance min(1, exp((1/T_lo - 1/T_hi) * (E_lo - E_hi))). Hot slots
// tunnel between basins; cold slots polish — the multi-modal landscape
// regime (see PAPERS.md: rectangle-packing TAM formulations) where one walk
// stalls.
//
// Determinism: every replica owns its RNG stream (seeded by
// portfolio::replica_seed), swap decisions come from a counter-based RNG
// keyed on (seed, sweep, pair) — portfolio::swap_uniform — and the final
// reduction runs in ladder order, so results are bit-identical for any
// --jobs lane count. Sharing one ScheduleMemo/ColumnCache across replicas
// (and the hill-climb racer) is invisible in the trajectories: a memoized
// result is the exact result regardless of which walk computed it first.
//
// Budget: sweeps x proposals_per_sweep is the deterministic budget;
// max_proposals tightens it deterministically (whole sweeps only).
// max_seconds and the cancel token stop cooperatively at sweep boundaries —
// wall-clock stops are inherently timing-dependent, but the state they stop
// in is always a whole number of sweeps, so a checkpoint written there
// resumes exactly.
//
// Checkpoint/resume: the full ladder state (RNG words, temperature bits,
// iteration cursors, current/best width vectors, swap counters, racer
// outcome) round-trips through a versioned binary blob
// (portfolio/checkpoint.hpp); a resumed run is bit-identical to the
// uninterrupted one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "opt/annealing.hpp"
#include "opt/soc_optimizer.hpp"
#include "runtime/cancellation.hpp"

namespace soctest {

/// One progress sample, delivered after each completed sweep (single
/// threaded, between the swap phase and the next sweep). The server
/// streams these to clients as NDJSON progress events.
struct PortfolioProgress {
  int sweep = 0;                 // completed sweeps, cumulative (1-based)
  int sweeps_total = 0;          // configured budget
  std::int64_t incumbent = 0;    // best makespan across the ladder so far
  std::uint64_t proposals = 0;   // proposal slots consumed, cumulative
};

struct PortfolioOptions {
  /// Ladder size K; 0 takes OptimizerOptions::portfolio, else 4.
  int replicas = 0;
  /// Deterministic budget: each replica runs sweeps * proposals_per_sweep
  /// annealing iterations, swaps happen between sweeps.
  int sweeps = 20;
  int proposals_per_sweep = 100;
  /// Hottest slot's starting temperature relative to its start makespan
  /// (same meaning as AnnealingOptions::initial_temperature); slot r gets
  /// initial_temperature * temperature_ratio^r.
  double initial_temperature = 0.10;
  double temperature_ratio = 0.5;
  double cooling = 0.997;
  std::uint64_t seed = 1;
  /// false: no exchanges — K independent walks, bit-identical to K
  /// optimize_annealing() runs (pinned in tests).
  bool swaps_enabled = true;
  /// Share one ScheduleMemo/ColumnCache across replicas and the racer
  /// (results are identical either way; the flag exists for the
  /// equivalence tests and the bench ablation).
  bool share_caches = true;
  /// Race the multi-start hill climb (SocOptimizer::optimize) against the
  /// ladder as one more portfolio member, drinking from the same shared
  /// caches; its result is merged at the end, after the replicas, so the
  /// outcome never depends on timing.
  bool race_hill_climb = true;
  /// Retune the temperature ladder every portfolio::kRetuneEverySweeps
  /// sweeps from the observed per-pair swap acceptance, targeting the
  /// classic ~23-40% parallel-tempering band. Applied only at sweep
  /// barriers from deterministic counters, so single-process and every
  /// (workers x jobs) sharding compute the identical new ladder; the swap
  /// RNG is keyed on (seed, sweep, pair) and is untouched. Off by default;
  /// part of the resume fingerprint (it changes the trajectory).
  bool adaptive_ladder = false;
  /// Hard deterministic cap on total proposal slots (iterations summed
  /// over replicas); a sweep that would exceed it does not start. 0 = off.
  std::uint64_t max_proposals = 0;
  /// Cooperative wall-clock budget, checked between sweeps. 0 = off.
  /// Timing-dependent by nature — use max_proposals for reproducibility.
  double max_seconds = 0.0;
  /// Optional cooperative cancellation, polled between sweeps.
  const runtime::CancelToken* cancel = nullptr;
  /// When set, the final state is checkpointed here (and every
  /// checkpoint_every sweeps when that is > 0). A write failure never
  /// aborts the run: checkpointing is disabled for the rest of the run and
  /// the first error is reported in PortfolioStats::checkpoint_error.
  std::string checkpoint_path;
  int checkpoint_every = 0;
  /// Called after every completed sweep (from the driving thread). Purely
  /// observational — never part of the fingerprint, never affects the
  /// trajectory.
  std::function<void(const PortfolioProgress&)> progress;
  /// Externally owned evaluation caches (the server's per-SOC
  /// SessionCache). When set they override share_caches and every replica
  /// plus the racer drinks from them, so warm state persists across
  /// portfolio invocations. Must come from the same (optimizer, opts)
  /// universe; results are bit-identical either way.
  ScheduleMemo* memo = nullptr;
  ColumnCache* columns = nullptr;
};

struct PortfolioReplicaReport {
  double initial_temperature = 0.0;  // relative, after ladder scaling
  std::uint64_t proposals = 0;       // valid proposals, cumulative
  std::int64_t best_test_time = 0;
};

struct PortfolioStats {
  int replicas = 0;
  int sweeps_completed = 0;
  /// Proposal slots consumed (replicas x proposals_per_sweep per sweep),
  /// cumulative across resume.
  std::uint64_t proposals_total = 0;
  std::uint64_t swaps_attempted = 0;
  std::uint64_t swaps_accepted = 0;
  bool hill_climb_raced = false;
  /// True when the racer's result beat every tempering replica.
  bool hill_climb_won = false;
  /// --backend race: the rectangle backend's deterministic hill climb ran
  /// beside the (fixed-bus) ladder, merged after the racer so the fixed
  /// trajectories are untouched; rect_won is true when it beat them all.
  bool rect_raced = false;
  bool rect_won = false;
  /// First checkpoint-write failure, empty when every write succeeded.
  /// The run itself completed — callers decide how loudly to fail (the
  /// CLI exits 3, the server sends a "checkpoint_io" protocol error).
  std::string checkpoint_error;
  /// Distributed-run observability (zero for single-process runs): worker
  /// process count, how many workers were respawned after a crash, and the
  /// wall-clock split between setup (spawn + init frames) and the sweep
  /// loop. Purely observational — never part of the fingerprint.
  int dist_workers = 0;
  int dist_respawns = 0;
  double dist_setup_seconds = 0.0;
  double dist_sweep_seconds = 0.0;
  std::vector<PortfolioReplicaReport> replica;  // ladder order
  /// Best-known makespan after each sweep (cumulative proposals for sweep
  /// s = (s + 1) * replicas * proposals_per_sweep) — the bench's
  /// proposals-to-target curve.
  std::vector<std::int64_t> best_by_sweep;

  double swap_acceptance() const {
    return swaps_attempted
               ? static_cast<double>(swaps_accepted) /
                     static_cast<double>(swaps_attempted)
               : 0.0;
  }
};

struct PortfolioResult {
  OptimizationResult best;
  std::vector<OptimizationResult> replica_best;  // ladder order
  PortfolioStats stats;
};

/// Runs the portfolio from scratch. Flushes search + portfolio counters
/// into runtime::collect_stats() ("portfolio" phase timer, swap and
/// proposal counters, shared-cache hit rates via the usual search stats).
PortfolioResult optimize_portfolio(const SocOptimizer& optimizer,
                                   const OptimizerOptions& opts,
                                   const PortfolioOptions& popts = {});

/// Resumes a checkpoint written by a run with the same (SOC, optimizer
/// options, portfolio config) — fingerprint-verified, throws
/// std::runtime_error on mismatch or a malformed blob. popts.sweeps may
/// exceed the checkpointed run's budget to extend the search; a resume with
/// the original budget reproduces the uninterrupted run bit-identically.
PortfolioResult resume_portfolio(const SocOptimizer& optimizer,
                                 const OptimizerOptions& opts,
                                 const PortfolioOptions& popts,
                                 const std::string& checkpoint_path);

/// The configuration fingerprint guarding resume (exposed for tests).
/// Covers the SOC identity, every result-affecting optimizer option, and
/// the trajectory-defining portfolio parameters — but not the sweep budget
/// (extending it is the point of resume) and not cache sharing (invisible
/// in results).
std::uint64_t portfolio_fingerprint(const SocOptimizer& optimizer,
                                    const OptimizerOptions& opts,
                                    const PortfolioOptions& popts);

}  // namespace soctest
