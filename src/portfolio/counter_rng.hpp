// Counter-based randomness for the replica-exchange portfolio. Swap
// decisions must be a pure function of (seed, sweep, pair) — never of
// thread timing or of any replica's own draw stream — so the portfolio is
// bit-identical for any --jobs lane count, and a resumed run replays the
// exact swap sequence of the uninterrupted one (the "counter" is the sweep
// index, which the checkpoint stores). Three SplitMix64 finalizer rounds
// over the keyed words give a well-mixed 64-bit word per counter value; no
// state is carried between calls.
#pragma once

#include <cstdint>

namespace soctest::portfolio {

/// SplitMix64 finalizer (the same mixer socgen's Rng seeds with).
inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Keyed 64-bit word for one (seed, sweep, pair) swap decision.
inline std::uint64_t swap_word(std::uint64_t seed, std::uint64_t sweep,
                               std::uint64_t pair) {
  std::uint64_t h = mix64(seed ^ 0x53574150'5041'4952ull);  // "SWAP PAIR"
  h = mix64(h ^ sweep);
  h = mix64(h ^ pair);
  return h;
}

/// Uniform double in [0, 1) for one swap decision (same 53-bit construction
/// as Rng::next_double).
inline double swap_uniform(std::uint64_t seed, std::uint64_t sweep,
                           std::uint64_t pair) {
  return static_cast<double>(swap_word(seed, sweep, pair) >> 11) * 0x1.0p-53;
}

/// Seed of ladder slot `replica` for portfolio seed `seed`. Exposed (and
/// fixed) so tests can reproduce a replica as an independent anneal() run:
/// with swaps disabled, slot r is bit-identical to optimize_annealing with
/// this seed and the slot's ladder temperature.
inline std::uint64_t replica_seed(std::uint64_t seed, int replica) {
  return mix64(mix64(seed ^ 0x5245'504C'4943'41ull) +  // "REPLICA"
               static_cast<std::uint64_t>(replica));
}

}  // namespace soctest::portfolio
