#include "portfolio/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>

#include "opt/anneal_walk.hpp"
#include "opt/backend.hpp"
#include "opt/delta_evaluator.hpp"
#include "portfolio/checkpoint.hpp"
#include "portfolio/counter_rng.hpp"
#include "portfolio/ladder_policy.hpp"
#include "portfolio/shard.hpp"
#include "runtime/fnv.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace soctest {
namespace {

using portfolio::LadderShard;
using portfolio::PortfolioCheckpoint;
using portfolio::RacerState;

bool better(const OptimizationResult& a, const OptimizationResult& b) {
  if (a.test_time != b.test_time) return a.test_time < b.test_time;
  return a.data_volume_bits < b.data_volume_bits;
}

PortfolioResult run_portfolio(const SocOptimizer& optimizer,
                              const OptimizerOptions& opts,
                              const PortfolioOptions& popts,
                              const PortfolioCheckpoint* restore) {
  const int K = portfolio::resolved_ladder_size(opts, popts);
  if (K < 1) throw std::invalid_argument("portfolio: replicas must be >= 1");
  if (opts.backend == BackendKind::Rect)
    throw std::invalid_argument(
        "portfolio: the rect backend has no tempering ladder — use "
        "backend=race to race it beside the fixed-bus portfolio");
  if (popts.proposals_per_sweep < 1)
    throw std::invalid_argument("portfolio: proposals_per_sweep must be >= 1");
  if (popts.sweeps < 0)
    throw std::invalid_argument("portfolio: sweeps must be >= 0");

  const auto t0 = std::chrono::steady_clock::now();
  runtime::PhaseTimer timer("portfolio");

  // One shared memo + column store for the whole portfolio — the first
  // truly concurrent mutable structure in the search (TSan-covered).
  // External caches (the server's cross-request SessionCache) take
  // precedence: then warm state outlives this invocation.
  ScheduleMemo shared_memo;
  ColumnCache shared_columns;
  ScheduleMemo* memo =
      popts.memo ? popts.memo : (popts.share_caches ? &shared_memo : nullptr);
  ColumnCache* columns =
      popts.columns ? popts.columns
                    : (popts.share_caches ? &shared_columns : nullptr);

  // The whole ladder as one local shard spanning [0, K): the identical
  // construction a distributed worker uses for its sub-range, so the
  // single-process run is the W = 1 case of the same machinery.
  LadderShard shard(optimizer, opts, popts, K, 0, K, memo, columns);

  PortfolioStats stats;
  stats.replicas = K;
  int first_sweep = 0;
  std::uint64_t restored_proposals = 0;
  OptimizationResult racer_result;
  bool racer_done = false;
  std::future<OptimizationResult> racer;
  bool racer_pending = false;

  // Adaptive-ladder retune window: per-adjacent-pair swap attempts and
  // acceptances since the last retune barrier. Restored from checkpoints
  // (which can land mid-window) so a resume replays retunes exactly.
  std::vector<std::uint64_t> win_att(K > 0 ? K - 1 : 0, 0);
  std::vector<std::uint64_t> win_acc(K > 0 ? K - 1 : 0, 0);

  if (restore) {
    if (static_cast<int>(restore->replicas.size()) != K)
      throw std::runtime_error("portfolio: checkpoint replica count " +
                               std::to_string(restore->replicas.size()) +
                               " != configured " + std::to_string(K));
    for (int r = 0; r < K; ++r)
      shard.restore(r, restore->replicas[static_cast<std::size_t>(r)]);
    for (std::size_t p = 0;
         p < win_att.size() && p < restore->retune_window_attempted.size();
         ++p)
      win_att[p] = restore->retune_window_attempted[p];
    for (std::size_t p = 0;
         p < win_acc.size() && p < restore->retune_window_accepted.size();
         ++p)
      win_acc[p] = restore->retune_window_accepted[p];
    first_sweep = restore->sweeps_completed;
    stats.sweeps_completed = restore->sweeps_completed;
    stats.swaps_attempted = restore->swaps_attempted;
    stats.swaps_accepted = restore->swaps_accepted;
    stats.proposals_total = restore->proposals_total;
    restored_proposals = restore->proposals_total;
    stats.best_by_sweep = restore->best_by_sweep;
    if (restore->racer_state == RacerState::Done) {
      TamArchitecture arch;
      arch.widths = restore->racer_best_widths;
      // Evaluation is deterministic, so re-deriving the racer's result
      // from its width vector reproduces the original bit for bit.
      racer_result = optimizer.evaluate(arch, opts);
      racer_done = true;
    }
  }

  if (popts.race_hill_climb) {
    stats.hill_climb_raced = true;
    if (!racer_done) {
      racer = runtime::effective_pool().async([&optimizer, &opts, memo,
                                               columns] {
        return optimizer.optimize_shared(opts, memo, columns);
      });
      racer_pending = true;
    }
  }

  const std::uint64_t sweep_proposals =
      static_cast<std::uint64_t>(K) *
      static_cast<std::uint64_t>(popts.proposals_per_sweep);

  // A checkpoint write failure (unwritable path, full disk) must never
  // tear down the run it was trying to persist: the first failure is
  // recorded, checkpointing is disabled, and the search carries on with
  // its in-memory state intact.
  bool checkpointing = !popts.checkpoint_path.empty();
  const auto write_checkpoint = [&](RacerState racer_state) {
    if (!checkpointing) return;
    PortfolioCheckpoint ck;
    ck.fingerprint = portfolio_fingerprint(optimizer, opts, popts);
    ck.backend = opts.backend;
    ck.scenario = scenario_of(opts);
    ck.sweeps_completed = stats.sweeps_completed;
    ck.swaps_attempted = stats.swaps_attempted;
    ck.swaps_accepted = stats.swaps_accepted;
    ck.proposals_total = stats.proposals_total;
    ck.racer_state = racer_state;
    if (racer_state == RacerState::Done)
      ck.racer_best_widths = racer_result.arch.widths;
    ck.best_by_sweep = stats.best_by_sweep;
    if (popts.adaptive_ladder) {
      ck.retune_window_attempted = win_att;
      ck.retune_window_accepted = win_acc;
    }
    for (int r = 0; r < K; ++r)
      ck.replicas.push_back(shard.walk(r).save_state());
    try {
      portfolio::write_checkpoint_file(popts.checkpoint_path, ck);
    } catch (const portfolio::CheckpointIoError& e) {
      stats.checkpoint_error = e.what();
      checkpointing = false;
    }
  };

  for (int sweep = first_sweep; sweep < popts.sweeps; ++sweep) {
    if (popts.cancel && popts.cancel->cancelled()) break;
    if (popts.max_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (elapsed >= popts.max_seconds) break;
    }
    if (popts.max_proposals > 0 &&
        stats.proposals_total + sweep_proposals > popts.max_proposals)
      break;

    shard.run_sweep();
    stats.proposals_total += sweep_proposals;

    if (popts.swaps_enabled) {
      // Alternating even/odd adjacent pairs; decisions keyed on the
      // absolute sweep index so a resumed run replays them exactly.
      for (int lo = sweep % 2; lo + 1 < K; lo += 2) {
        ++stats.swaps_attempted;
        AnnealWalk& hot = shard.walk(lo);
        AnnealWalk& cold = shard.walk(lo + 1);
        const bool accept = portfolio::swap_decision(
            hot.temperature(), cold.temperature(),
            hot.current_result().test_time, cold.current_result().test_time,
            popts.seed, sweep, lo);
        if (popts.adaptive_ladder) ++win_att[static_cast<std::size_t>(lo)];
        if (accept) {
          AnnealWalk::exchange(hot, cold);
          ++stats.swaps_accepted;
          if (popts.adaptive_ladder) ++win_acc[static_cast<std::size_t>(lo)];
        }
      }
    }

    if (popts.adaptive_ladder && popts.swaps_enabled &&
        (sweep + 1) % portfolio::kRetuneEverySweeps == 0) {
      // Retune at the barrier from the window's deterministic counters,
      // then reset the window. Every sharding of the ladder observes the
      // same counters at the same sweep, so the new ladder is identical
      // everywhere.
      std::vector<double> temps(static_cast<std::size_t>(K));
      for (int r = 0; r < K; ++r)
        temps[static_cast<std::size_t>(r)] = shard.walk(r).temperature();
      portfolio::retune_ladder(temps, win_att, win_acc);
      for (int r = 0; r < K; ++r)
        shard.walk(r).set_temperature_bits(
            portfolio::double_bits(temps[static_cast<std::size_t>(r)]));
      std::fill(win_att.begin(), win_att.end(), 0);
      std::fill(win_acc.begin(), win_acc.end(), 0);
    }

    std::int64_t sweep_best = shard.walk(0).best().test_time;
    for (int r = 1; r < K; ++r)
      sweep_best = std::min(sweep_best, shard.walk(r).best().test_time);
    stats.best_by_sweep.push_back(sweep_best);
    stats.sweeps_completed = sweep + 1;

    if (popts.progress) {
      PortfolioProgress pg;
      pg.sweep = sweep + 1;
      pg.sweeps_total = popts.sweeps;
      pg.incumbent = sweep_best;
      pg.proposals = stats.proposals_total;
      popts.progress(pg);
    }

    if (!popts.checkpoint_path.empty() && popts.checkpoint_every > 0 &&
        (sweep + 1) % popts.checkpoint_every == 0 &&
        sweep + 1 < popts.sweeps) {
      // Mid-run checkpoints always mark the racer as pending: resuming
      // reruns it, which yields the identical (deterministic) result
      // without having to wait for the in-flight climb here.
      write_checkpoint(popts.race_hill_climb ? RacerState::Pending
                                             : RacerState::None);
    }
  }

  if (racer_pending) {
    racer_result = racer.get();
    racer_done = true;
  }

  PortfolioResult out;
  out.replica_best.reserve(static_cast<std::size_t>(K));
  for (int r = 0; r < K; ++r) {
    const AnnealWalk& w = shard.walk(r);
    out.replica_best.push_back(w.best());
    PortfolioReplicaReport rep;
    rep.initial_temperature = portfolio::ladder_temperature(popts, r);
    rep.proposals = w.proposals();
    rep.best_test_time = w.best().test_time;
    stats.replica.push_back(rep);
  }
  out.best = out.replica_best[0];
  for (int r = 1; r < K; ++r)
    if (better(out.replica_best[static_cast<std::size_t>(r)], out.best))
      out.best = out.replica_best[static_cast<std::size_t>(r)];
  if (racer_done && better(racer_result, out.best)) {
    out.best = racer_result;
    stats.hill_climb_won = true;
  }

  // backend == Race: the rectangle backend runs as one more deterministic
  // portfolio member, merged last so the fixed-bus trajectories (and the
  // checkpointed ladder state) are exactly what they were without it. It
  // depends only on (optimizer, opts) — never on jobs or worker count.
  if (opts.backend == BackendKind::Race) {
    stats.rect_raced = true;
    bool rect_won = false;
    out.best = race_merge_rect(optimizer, opts, std::move(out.best), &rect_won);
    stats.rect_won = rect_won;
  }

  if (!popts.checkpoint_path.empty())
    write_checkpoint(racer_done ? RacerState::Done : RacerState::None);

  // Flush the evaluator counters of every walk, plus the portfolio's own
  // counters for THIS invocation (a resume adds only its own segment to
  // the process-wide totals; PortfolioStats carries the cumulative view).
  runtime::add_search_counters(shard.counters());
  runtime::SearchStats ps;
  ps.portfolio_proposals = stats.proposals_total - restored_proposals;
  ps.portfolio_swaps_attempted =
      stats.swaps_attempted - (restore ? restore->swaps_attempted : 0);
  ps.portfolio_swaps_accepted =
      stats.swaps_accepted - (restore ? restore->swaps_accepted : 0);
  runtime::add_search_counters(ps);

  out.best.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.stats = std::move(stats);
  return out;
}

}  // namespace

std::uint64_t portfolio_fingerprint(const SocOptimizer& optimizer,
                                    const OptimizerOptions& opts,
                                    const PortfolioOptions& popts) {
  runtime::FnvHasher h;
  h.str(optimizer.soc().name);
  h.i32(optimizer.soc().num_cores());
  h.i32(opts.width);
  h.i32(static_cast<std::int32_t>(opts.mode));
  h.i32(static_cast<std::int32_t>(opts.constraint));
  h.i32(opts.max_buses);
  h.i32(opts.max_search_steps);
  h.u64(portfolio::double_bits(opts.power_budget_mw));
  h.boolean(opts.incremental);
  h.boolean(opts.capacity_bound);
  // Hashed only when non-default so pre-backend (v2) checkpoints, which
  // could only have been fixed-bus runs, keep their fingerprints.
  if (opts.backend != BackendKind::FixedBus)
    h.i32(static_cast<std::int32_t>(opts.backend));
  // Same reasoning for the scenario flags: pre-scenario (v3) checkpoints
  // could only have been flat non-preemptive runs, and the power cap is
  // already in the unconditional power_budget_mw hash above.
  if (opts.preemptive || opts.hierarchical) {
    h.boolean(opts.preemptive);
    h.boolean(opts.hierarchical);
  }
  h.i32(portfolio::resolved_ladder_size(opts, popts));
  h.i32(popts.proposals_per_sweep);
  h.u64(portfolio::double_bits(popts.initial_temperature));
  h.u64(portfolio::double_bits(popts.temperature_ratio));
  h.u64(portfolio::double_bits(popts.cooling));
  h.u64(popts.seed);
  h.boolean(popts.swaps_enabled);
  h.boolean(popts.race_hill_climb);
  h.boolean(popts.adaptive_ladder);
  return h.digest_a() ^ (h.digest_b() << 1);
}

PortfolioResult optimize_portfolio(const SocOptimizer& optimizer,
                                   const OptimizerOptions& opts,
                                   const PortfolioOptions& popts) {
  return run_portfolio(optimizer, opts, popts, nullptr);
}

PortfolioResult resume_portfolio(const SocOptimizer& optimizer,
                                 const OptimizerOptions& opts,
                                 const PortfolioOptions& popts,
                                 const std::string& checkpoint_path) {
  const PortfolioCheckpoint ck =
      portfolio::read_checkpoint_file(checkpoint_path);
  if (ck.backend != opts.backend)
    throw std::runtime_error("portfolio: checkpoint backend '" +
                             to_string(ck.backend) +
                             "' does not match requested backend '" +
                             to_string(opts.backend) + "'");
  portfolio::check_checkpoint_scenario(ck, scenario_of(opts));
  const std::uint64_t expect =
      portfolio_fingerprint(optimizer, opts, popts);
  if (ck.fingerprint != expect)
    throw std::runtime_error(
        "portfolio: checkpoint fingerprint mismatch — it was written for a "
        "different SOC / optimizer / portfolio configuration");
  return run_portfolio(optimizer, opts, popts, &ck);
}

}  // namespace soctest
