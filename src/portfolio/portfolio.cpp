#include "portfolio/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>

#include "opt/anneal_walk.hpp"
#include "opt/delta_evaluator.hpp"
#include "portfolio/checkpoint.hpp"
#include "portfolio/counter_rng.hpp"
#include "runtime/fnv.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace soctest {
namespace {

using portfolio::PortfolioCheckpoint;
using portfolio::RacerState;

bool better(const OptimizationResult& a, const OptimizationResult& b) {
  if (a.test_time != b.test_time) return a.test_time < b.test_time;
  return a.data_volume_bits < b.data_volume_bits;
}

int resolved_replicas(const OptimizerOptions& opts,
                      const PortfolioOptions& popts) {
  if (popts.replicas > 0) return popts.replicas;
  if (opts.portfolio > 0) return opts.portfolio;
  return 4;
}

double ladder_temperature(const PortfolioOptions& popts, int slot) {
  return popts.initial_temperature *
         std::pow(popts.temperature_ratio, slot);
}

/// Standard replica-exchange acceptance between the (hot, cold) =
/// (lo, lo + 1) ladder pair: always swap when it moves the better
/// configuration toward the colder slot, otherwise with probability
/// exp((1/T_lo - 1/T_hi)(E_lo - E_hi)) on a counter-based draw.
bool swap_accepted(const AnnealWalk& hot, const AnnealWalk& cold,
                   std::uint64_t seed, int sweep, int pair) {
  const double t_hot = std::max(hot.temperature(), 1e-300);
  const double t_cold = std::max(cold.temperature(), 1e-300);
  const double e_hot =
      static_cast<double>(hot.current_result().test_time);
  const double e_cold =
      static_cast<double>(cold.current_result().test_time);
  const double arg = (1.0 / t_hot - 1.0 / t_cold) * (e_hot - e_cold);
  if (arg >= 0.0) return true;
  return portfolio::swap_uniform(seed, static_cast<std::uint64_t>(sweep),
                                 static_cast<std::uint64_t>(pair)) <
         std::exp(arg);
}

std::uint64_t double_key_bits(double d) {
  std::uint64_t u;
  static_assert(sizeof u == sizeof d);
  std::memcpy(&u, &d, sizeof u);
  return u;
}

PortfolioResult run_portfolio(const SocOptimizer& optimizer,
                              const OptimizerOptions& opts,
                              const PortfolioOptions& popts,
                              const PortfolioCheckpoint* restore) {
  const int K = resolved_replicas(opts, popts);
  if (K < 1) throw std::invalid_argument("portfolio: replicas must be >= 1");
  if (popts.proposals_per_sweep < 1)
    throw std::invalid_argument("portfolio: proposals_per_sweep must be >= 1");
  if (popts.sweeps < 0)
    throw std::invalid_argument("portfolio: sweeps must be >= 0");

  const auto t0 = std::chrono::steady_clock::now();
  runtime::PhaseTimer timer("portfolio");

  // One shared memo + column store for the whole portfolio — the first
  // truly concurrent mutable structure in the search (TSan-covered).
  // External caches (the server's cross-request SessionCache) take
  // precedence: then warm state outlives this invocation.
  ScheduleMemo shared_memo;
  ColumnCache shared_columns;
  ScheduleMemo* memo =
      popts.memo ? popts.memo : (popts.share_caches ? &shared_memo : nullptr);
  ColumnCache* columns =
      popts.columns ? popts.columns
                    : (popts.share_caches ? &shared_columns : nullptr);

  // Each replica needs iterations for the FULL budget up front (the walk
  // refuses to step past its own horizon); resume may extend this.
  std::vector<std::unique_ptr<AnnealWalk>> walks;
  walks.reserve(static_cast<std::size_t>(K));
  for (int r = 0; r < K; ++r) {
    AnnealingOptions a;
    a.iterations = static_cast<std::int64_t>(popts.sweeps) *
                   popts.proposals_per_sweep;
    a.initial_temperature = ladder_temperature(popts, r);
    a.cooling = popts.cooling;
    a.seed = portfolio::replica_seed(popts.seed, r);
    walks.push_back(
        std::make_unique<AnnealWalk>(optimizer, opts, a, memo, columns));
  }

  PortfolioStats stats;
  stats.replicas = K;
  int first_sweep = 0;
  std::uint64_t restored_proposals = 0;
  OptimizationResult racer_result;
  bool racer_done = false;
  std::future<OptimizationResult> racer;
  bool racer_pending = false;

  if (restore) {
    if (static_cast<int>(restore->replicas.size()) != K)
      throw std::runtime_error("portfolio: checkpoint replica count " +
                               std::to_string(restore->replicas.size()) +
                               " != configured " + std::to_string(K));
    for (int r = 0; r < K; ++r)
      walks[static_cast<std::size_t>(r)]->restore_state(
          restore->replicas[static_cast<std::size_t>(r)]);
    first_sweep = restore->sweeps_completed;
    stats.sweeps_completed = restore->sweeps_completed;
    stats.swaps_attempted = restore->swaps_attempted;
    stats.swaps_accepted = restore->swaps_accepted;
    stats.proposals_total = restore->proposals_total;
    restored_proposals = restore->proposals_total;
    stats.best_by_sweep = restore->best_by_sweep;
    if (restore->racer_state == RacerState::Done) {
      TamArchitecture arch;
      arch.widths = restore->racer_best_widths;
      // Evaluation is deterministic, so re-deriving the racer's result
      // from its width vector reproduces the original bit for bit.
      racer_result = optimizer.evaluate(arch, opts);
      racer_done = true;
    }
  }

  if (popts.race_hill_climb) {
    stats.hill_climb_raced = true;
    if (!racer_done) {
      racer = runtime::effective_pool().async([&optimizer, &opts, memo,
                                               columns] {
        return optimizer.optimize_shared(opts, memo, columns);
      });
      racer_pending = true;
    }
  }

  const std::uint64_t sweep_proposals =
      static_cast<std::uint64_t>(K) *
      static_cast<std::uint64_t>(popts.proposals_per_sweep);

  // A checkpoint write failure (unwritable path, full disk) must never
  // tear down the run it was trying to persist: the first failure is
  // recorded, checkpointing is disabled, and the search carries on with
  // its in-memory state intact.
  bool checkpointing = !popts.checkpoint_path.empty();
  const auto write_checkpoint = [&](RacerState racer_state) {
    if (!checkpointing) return;
    PortfolioCheckpoint ck;
    ck.fingerprint = portfolio_fingerprint(optimizer, opts, popts);
    ck.sweeps_completed = stats.sweeps_completed;
    ck.swaps_attempted = stats.swaps_attempted;
    ck.swaps_accepted = stats.swaps_accepted;
    ck.proposals_total = stats.proposals_total;
    ck.racer_state = racer_state;
    if (racer_state == RacerState::Done)
      ck.racer_best_widths = racer_result.arch.widths;
    ck.best_by_sweep = stats.best_by_sweep;
    for (const auto& w : walks) ck.replicas.push_back(w->save_state());
    try {
      portfolio::write_checkpoint_file(popts.checkpoint_path, ck);
    } catch (const portfolio::CheckpointIoError& e) {
      stats.checkpoint_error = e.what();
      checkpointing = false;
    }
  };

  for (int sweep = first_sweep; sweep < popts.sweeps; ++sweep) {
    if (popts.cancel && popts.cancel->cancelled()) break;
    if (popts.max_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (elapsed >= popts.max_seconds) break;
    }
    if (popts.max_proposals > 0 &&
        stats.proposals_total + sweep_proposals > popts.max_proposals)
      break;

    // One sweep: every replica advances proposals_per_sweep iterations,
    // in parallel. Trajectories are independent (own RNG, own evaluator
    // view); the shared caches only change who computes a result first.
    runtime::parallel_for(0, K, [&](std::int64_t r) {
      AnnealWalk& w = *walks[static_cast<std::size_t>(r)];
      for (int p = 0; p < popts.proposals_per_sweep; ++p) w.step();
    });
    stats.proposals_total += sweep_proposals;

    if (popts.swaps_enabled) {
      // Alternating even/odd adjacent pairs; decisions keyed on the
      // absolute sweep index so a resumed run replays them exactly.
      for (int lo = sweep % 2; lo + 1 < K; lo += 2) {
        ++stats.swaps_attempted;
        AnnealWalk& hot = *walks[static_cast<std::size_t>(lo)];
        AnnealWalk& cold = *walks[static_cast<std::size_t>(lo + 1)];
        if (swap_accepted(hot, cold, popts.seed, sweep, lo)) {
          AnnealWalk::exchange(hot, cold);
          ++stats.swaps_accepted;
        }
      }
    }

    std::int64_t sweep_best = walks[0]->best().test_time;
    for (int r = 1; r < K; ++r)
      sweep_best = std::min(sweep_best,
                            walks[static_cast<std::size_t>(r)]->best()
                                .test_time);
    stats.best_by_sweep.push_back(sweep_best);
    stats.sweeps_completed = sweep + 1;

    if (popts.progress) {
      PortfolioProgress pg;
      pg.sweep = sweep + 1;
      pg.sweeps_total = popts.sweeps;
      pg.incumbent = sweep_best;
      pg.proposals = stats.proposals_total;
      popts.progress(pg);
    }

    if (!popts.checkpoint_path.empty() && popts.checkpoint_every > 0 &&
        (sweep + 1) % popts.checkpoint_every == 0 &&
        sweep + 1 < popts.sweeps) {
      // Mid-run checkpoints always mark the racer as pending: resuming
      // reruns it, which yields the identical (deterministic) result
      // without having to wait for the in-flight climb here.
      write_checkpoint(popts.race_hill_climb ? RacerState::Pending
                                             : RacerState::None);
    }
  }

  if (racer_pending) {
    racer_result = racer.get();
    racer_done = true;
  }

  PortfolioResult out;
  out.replica_best.reserve(static_cast<std::size_t>(K));
  for (int r = 0; r < K; ++r) {
    const AnnealWalk& w = *walks[static_cast<std::size_t>(r)];
    out.replica_best.push_back(w.best());
    PortfolioReplicaReport rep;
    rep.initial_temperature = ladder_temperature(popts, r);
    rep.proposals = w.proposals();
    rep.best_test_time = w.best().test_time;
    stats.replica.push_back(rep);
  }
  out.best = out.replica_best[0];
  for (int r = 1; r < K; ++r)
    if (better(out.replica_best[static_cast<std::size_t>(r)], out.best))
      out.best = out.replica_best[static_cast<std::size_t>(r)];
  if (racer_done && better(racer_result, out.best)) {
    out.best = racer_result;
    stats.hill_climb_won = true;
  }

  if (!popts.checkpoint_path.empty())
    write_checkpoint(racer_done ? RacerState::Done : RacerState::None);

  // Flush the evaluator counters of every walk, plus the portfolio's own
  // counters for THIS invocation (a resume adds only its own segment to
  // the process-wide totals; PortfolioStats carries the cumulative view).
  for (const auto& w : walks) runtime::add_search_counters(w->counters());
  runtime::SearchStats ps;
  ps.portfolio_proposals = stats.proposals_total - restored_proposals;
  ps.portfolio_swaps_attempted =
      stats.swaps_attempted - (restore ? restore->swaps_attempted : 0);
  ps.portfolio_swaps_accepted =
      stats.swaps_accepted - (restore ? restore->swaps_accepted : 0);
  runtime::add_search_counters(ps);

  out.best.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.stats = std::move(stats);
  return out;
}

}  // namespace

std::uint64_t portfolio_fingerprint(const SocOptimizer& optimizer,
                                    const OptimizerOptions& opts,
                                    const PortfolioOptions& popts) {
  runtime::FnvHasher h;
  h.str(optimizer.soc().name);
  h.i32(optimizer.soc().num_cores());
  h.i32(opts.width);
  h.i32(static_cast<std::int32_t>(opts.mode));
  h.i32(static_cast<std::int32_t>(opts.constraint));
  h.i32(opts.max_buses);
  h.i32(opts.max_search_steps);
  h.u64(double_key_bits(opts.power_budget_mw));
  h.boolean(opts.incremental);
  h.boolean(opts.capacity_bound);
  h.i32(resolved_replicas(opts, popts));
  h.i32(popts.proposals_per_sweep);
  h.u64(double_key_bits(popts.initial_temperature));
  h.u64(double_key_bits(popts.temperature_ratio));
  h.u64(double_key_bits(popts.cooling));
  h.u64(popts.seed);
  h.boolean(popts.swaps_enabled);
  h.boolean(popts.race_hill_climb);
  return h.digest_a() ^ (h.digest_b() << 1);
}

PortfolioResult optimize_portfolio(const SocOptimizer& optimizer,
                                   const OptimizerOptions& opts,
                                   const PortfolioOptions& popts) {
  return run_portfolio(optimizer, opts, popts, nullptr);
}

PortfolioResult resume_portfolio(const SocOptimizer& optimizer,
                                 const OptimizerOptions& opts,
                                 const PortfolioOptions& popts,
                                 const std::string& checkpoint_path) {
  const PortfolioCheckpoint ck =
      portfolio::read_checkpoint_file(checkpoint_path);
  const std::uint64_t expect =
      portfolio_fingerprint(optimizer, opts, popts);
  if (ck.fingerprint != expect)
    throw std::runtime_error(
        "portfolio: checkpoint fingerprint mismatch — it was written for a "
        "different SOC / optimizer / portfolio configuration");
  return run_portfolio(optimizer, opts, popts, &ck);
}

}  // namespace soctest
