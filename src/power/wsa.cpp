#include "power/wsa.hpp"

#include <algorithm>
#include <stdexcept>

namespace soctest {
namespace {

void check_sizes(const SliceSequence& slices, const WrapperDesign& design) {
  if (static_cast<int>(slices.size()) != design.scan_in_length)
    throw std::invalid_argument("wsa: slice count != scan-in length");
  for (const auto& s : slices)
    if (static_cast<int>(s.size()) != design.num_chains)
      throw std::invalid_argument("wsa: slice width != chain count");
}

}  // namespace

std::int64_t weighted_transitions(const SliceSequence& slices,
                                  const WrapperDesign& design) {
  check_sizes(slices, design);
  const int depth = design.scan_in_length;
  std::int64_t wtm = 0;
  for (int c = 0; c < design.num_chains; ++c) {
    const int len = design.chains[static_cast<std::size_t>(c)]
                        .stimulus_length();
    const int pad = depth - len;
    // The chain's real bits occupy slices [pad, depth); bit j of the vector
    // is slices[pad + j][c].
    for (int j = 0; j + 1 < len; ++j) {
      const bool a = slices[static_cast<std::size_t>(pad + j)]
                           [static_cast<std::size_t>(c)];
      const bool b = slices[static_cast<std::size_t>(pad + j + 1)]
                           [static_cast<std::size_t>(c)];
      if (a != b) wtm += len - 1 - j;
    }
  }
  return wtm;
}

PowerTrace shift_power_trace(const SliceSequence& slices,
                             const WrapperDesign& design) {
  check_sizes(slices, design);
  PowerTrace trace;
  const int depth = design.scan_in_length;
  trace.toggles_per_cycle.assign(static_cast<std::size_t>(depth), 0);

  // Per-chain simulation: chain contents as a vector of bools; each cycle
  // shift in the next slice bit and count cells whose value changed.
  for (int c = 0; c < design.num_chains; ++c) {
    const int len = std::max(
        1, design.chains[static_cast<std::size_t>(c)].stimulus_length());
    std::vector<bool> cells(static_cast<std::size_t>(len), false);
    for (int t = 0; t < depth; ++t) {
      const bool in = slices[static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(c)];
      bool carry = in;
      std::int64_t toggles = 0;
      for (int j = 0; j < len; ++j) {
        const bool old = cells[static_cast<std::size_t>(j)];
        if (old != carry) {
          cells[static_cast<std::size_t>(j)] = carry;
          ++toggles;
        }
        carry = old;
      }
      trace.toggles_per_cycle[static_cast<std::size_t>(t)] += toggles;
    }
  }

  std::int64_t sum = 0;
  for (std::int64_t t : trace.toggles_per_cycle) {
    trace.peak = std::max(trace.peak, t);
    sum += t;
  }
  trace.average = depth == 0
                      ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(depth);
  return trace;
}

SliceSequence expand_pattern_slices(const SliceMap& map,
                                    const TestCubeSet& cubes, int p,
                                    bool random_fill) {
  const std::vector<TernaryVector> ternary = map.slices_of_pattern(cubes, p);
  SliceSequence out;
  out.reserve(ternary.size());
  for (std::size_t s = 0; s < ternary.size(); ++s) {
    const TernaryVector& slice = ternary[s];
    // Selective-encoding fill: the majority care value of the slice.
    const std::size_t ones = slice.count(Trit::One);
    const std::size_t zeros = slice.count(Trit::Zero);
    const bool majority_fill = ones > zeros;

    std::vector<bool> bits(slice.size(), false);
    for (std::size_t c = 0; c < slice.size(); ++c) {
      switch (slice.get(c)) {
        case Trit::One: bits[c] = true; break;
        case Trit::Zero: bits[c] = false; break;
        case Trit::X:
          if (random_fill) {
            // Deterministic position hash standing in for tester fill.
            std::uint64_t h = (static_cast<std::uint64_t>(p) << 40) ^
                              (static_cast<std::uint64_t>(s) << 20) ^ c;
            h ^= h >> 33;
            h *= 0xFF51AFD7ED558CCDull;
            h ^= h >> 33;
            bits[c] = h & 1;
          } else {
            bits[c] = majority_fill;
          }
          break;
      }
    }
    out.push_back(std::move(bits));
  }
  return out;
}

}  // namespace soctest
