// Cycle-accurate scan-power analysis, after the authors' companion paper
// on cycle-accurate test power modeling (Samii, Larsson, Chakrabarty,
// Peng). Two granularities:
//
//  - WTM (weighted transitions metric, Sankaralingam et al.): for a scan
//    vector b_0..b_{L-1} shifted into a chain of length L, each adjacent
//    transition b_j != b_{j+1} ripples through (L-1-j) cells, so
//        WTM = sum_j (L - 1 - j) * (b_j xor b_{j+1}).
//    Summed over wrapper chains it ranks patterns by shift power.
//
//  - A per-cycle trace: the number of toggling cells in every shift cycle,
//    from which peak and average power follow. This is what a power-aware
//    scheduler actually needs to guarantee a peak budget.
//
// The analyses run on *decompressed* slice sequences, so they expose the
// constant-fill benefit of core-level expansion: selective encoding fills
// every X with the slice fill symbol, producing long constant runs and
// fewer transitions than tester-side random fill.
#pragma once

#include <cstdint>
#include <vector>

#include "wrapper/slice_map.hpp"
#include "wrapper/wrapper_design.hpp"

namespace soctest {

/// One pattern's stimulus as fully specified slices (slice s, chain c),
/// e.g. a DecompressorModel output or a filled SliceMap expansion.
using SliceSequence = std::vector<std::vector<bool>>;

/// Weighted transitions metric of one pattern over all wrapper chains.
/// `design` supplies per-chain stimulus lengths (pad cycles excluded from
/// the weight of shorter chains).
std::int64_t weighted_transitions(const SliceSequence& slices,
                                  const WrapperDesign& design);

struct PowerTrace {
  /// Toggling-cell count per shift cycle.
  std::vector<std::int64_t> toggles_per_cycle;
  std::int64_t peak = 0;
  double average = 0.0;
};

/// Cycle-accurate shift simulation of one pattern: every cycle each chain
/// shifts by one, and a cell toggles when its new value differs from its
/// old one. Chains start from the previous pattern's residue (all zeros
/// for the first pattern).
PowerTrace shift_power_trace(const SliceSequence& slices,
                             const WrapperDesign& design);

/// Convenience: expands pattern `p` with a given X-fill policy and returns
/// its slices. `random_fill` uses a deterministic per-position hash (the
/// tester-side fill of uncompressed delivery); otherwise the per-slice
/// majority fill of selective encoding is used.
SliceSequence expand_pattern_slices(const SliceMap& map,
                                    const TestCubeSet& cubes, int p,
                                    bool random_fill);

}  // namespace soctest
