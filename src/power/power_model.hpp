// Test-power model — an extension beyond the DATE 2008 paper, following
// the authors' companion work on power-constrained SOC test scheduling
// (test power is the classic reason concurrent core tests must be limited).
//
// Model: during scan, every scan cell of a core toggles with some activity
// factor regardless of how many wrapper chains carry the data (all chains
// shift simultaneously), so
//
//   P_core = (P_BASE + KAPPA * scan_cells * activity) * power_scale
//
// in abstract milliwatt units, where power_scale is the core's optional
// per-core multiplier (CoreSpec::power_scale, 1.0 by default — synthetic
// power profiles and .soc files set it to heterogenize power draw). Compressed access lowers the activity: the
// selective-encoding decompressor drives every don't-care to the slice's
// fill value, so long X runs stop toggling (constant-fill power benefit),
// whereas uncompressed patterns arrive with tester-side random fill.
#pragma once

#include "dft/core_spec.hpp"
#include "explore/core_table.hpp"

namespace soctest {

struct PowerModelParams {
  double base_mw = 5.0;            // clocking / control overhead per core
  double kappa_mw_per_cell = 0.01; // per scan cell at activity 1.0
  double direct_activity = 0.5;    // random tester fill
  double compressed_activity = 0.3;  // constant-fill X runs toggle less
};

/// Power drawn by `core` while it is under test through `choice`.
double core_test_power(const CoreSpec& core, const CoreChoice& choice,
                       const PowerModelParams& params = {});

/// Upper bound over both access modes (used for feasibility checks).
double core_peak_power(const CoreSpec& core,
                       const PowerModelParams& params = {});

}  // namespace soctest
