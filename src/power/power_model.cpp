#include "power/power_model.hpp"

#include <algorithm>

namespace soctest {

double core_test_power(const CoreSpec& core, const CoreChoice& choice,
                       const PowerModelParams& params) {
  const double activity = choice.mode == AccessMode::Compressed
                              ? params.compressed_activity
                              : params.direct_activity;
  // power_scale defaults to 1.0, and x * 1.0 == x exactly in IEEE-754, so
  // SOCs without a power profile keep their pre-profile power bytes.
  return (params.base_mw +
          params.kappa_mw_per_cell *
              static_cast<double>(core.total_scan_cells()) * activity) *
         core.power_scale;
}

double core_peak_power(const CoreSpec& core, const PowerModelParams& params) {
  const double act =
      std::max(params.direct_activity, params.compressed_activity);
  return (params.base_mw + params.kappa_mw_per_cell *
                               static_cast<double>(core.total_scan_cells()) *
                               act) *
         core.power_scale;
}

}  // namespace soctest
