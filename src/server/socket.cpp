#include "server/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/worker.hpp"
#include "server/fd_io.hpp"
#include "server/server.hpp"

namespace soctest::server {

namespace {

void serve_connection(int fd, ServerCore& core) {
  auto write_m = std::make_shared<std::mutex>();
  const EmitFn emit = [fd, write_m](const std::string& line) {
    std::lock_guard<std::mutex> lock(*write_m);
    fd_write_all(fd, line + "\n");
  };

  std::vector<std::shared_future<void>> pending;
  LineReader reader(fd);
  bool open = true;
  while (open && !core.shutdown_requested()) {
    std::string line;
    // Short timeout so a quiet connection still notices server shutdown.
    switch (reader.read_line(&line, 100)) {
      case ReadStatus::Timeout:
        continue;
      case ReadStatus::Eof:
      case ReadStatus::Error:
        open = false;  // EOF / error: stop reading, drain in-flight jobs
        continue;
      case ReadStatus::Ok:
        break;
    }
    if (line.empty()) continue;

    // The worker op hands the whole byte stream over to the distributed
    // portfolio: from here on the connection speaks the dist exchange
    // protocol, with any already-buffered bytes carried across.
    bool is_worker = false;
    try {
      is_worker = parse_request(line).op == Request::Op::Worker;
    } catch (const ProtocolError&) {
      // Not parseable here; handle_line will emit the error response.
    }
    if (is_worker) {
      for (auto& fut : pending) fut.get();
      dist::run_worker_loop(fd, reader.take_buffered());
      ::close(fd);
      return;
    }

    std::shared_future<void> fut = core.handle_line(line, emit);
    if (fut.valid()) pending.push_back(std::move(fut));
  }
  // The client may have half-closed after sending its requests; every
  // in-flight job still delivers its terminal event before we hang up.
  for (auto& fut : pending) fut.get();
  ::close(fd);
}

}  // namespace

int serve_unix(const std::string& path, ServerCore& core) {
  const int listen_fd = listen_unix(path);
  if (listen_fd < 0) return 1;
  std::fprintf(stderr, "soctest: serving on %s\n", path.c_str());

  std::vector<std::thread> connections;
  while (!core.shutdown_requested()) {
    pollfd p{listen_fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    connections.emplace_back([fd, &core] { serve_connection(fd, core); });
  }
  for (std::thread& t : connections) t.join();
  core.wait_idle();
  ::close(listen_fd);
  ::unlink(path.c_str());
  std::fprintf(stderr, "soctest: shut down cleanly\n");
  return 0;
}

int run_client(const std::string& path) {
  const int fd = connect_unix(path);
  if (fd < 0) return 1;

  bool stdin_open = true;
  char chunk[4096];
  while (true) {
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {stdin_open ? STDIN_FILENO : -1, POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "poll: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
    if (fds[0].revents & (POLLIN | POLLHUP)) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return 1;
      }
      if (n == 0) break;  // server closed: all responses delivered
      std::fwrite(chunk, 1, static_cast<std::size_t>(n), stdout);
      std::fflush(stdout);
      continue;
    }
    if (stdin_open && (fds[1].revents & (POLLIN | POLLHUP))) {
      const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return 1;
      }
      if (n == 0) {
        stdin_open = false;
        ::shutdown(fd, SHUT_WR);  // tell the server we are done sending
        continue;
      }
      if (!fd_write_all(fd, std::string(chunk, static_cast<std::size_t>(n)))) {
        std::fprintf(stderr, "write: server connection lost\n");
        ::close(fd);
        return 1;
      }
    }
  }
  ::close(fd);
  return 0;
}

}  // namespace soctest::server
