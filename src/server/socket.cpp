#include "server/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/server.hpp"

namespace soctest::server {

namespace {

/// Writes all of `data`; returns false on a hard error (peer gone — the
/// response is dropped, the job itself already completed server-side).
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool bind_path(int fd, const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket from a killed daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "bind %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

bool connect_path(int fd, const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "connect %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

void serve_connection(int fd, ServerCore& core) {
  auto write_m = std::make_shared<std::mutex>();
  const EmitFn emit = [fd, write_m](const std::string& line) {
    std::lock_guard<std::mutex> lock(*write_m);
    write_all(fd, line + "\n");
  };

  std::vector<std::shared_future<void>> pending;
  std::string buf;
  char chunk[4096];
  bool open = true;
  while (open && !core.shutdown_requested()) {
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);  // timeout: re-check shutdown
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      open = false;  // EOF / error: stop reading, drain in-flight jobs
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.empty()) continue;
      std::shared_future<void> fut = core.handle_line(line, emit);
      if (fut.valid()) pending.push_back(std::move(fut));
    }
  }
  // The client may have half-closed after sending its requests; every
  // in-flight job still delivers its terminal event before we hang up.
  for (auto& fut : pending) fut.get();
  ::close(fd);
}

}  // namespace

int serve_unix(const std::string& path, ServerCore& core) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return 1;
  }
  if (!bind_path(listen_fd, path)) {
    ::close(listen_fd);
    return 1;
  }
  if (::listen(listen_fd, 64) != 0) {
    std::fprintf(stderr, "listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr, "soctest: serving on %s\n", path.c_str());

  std::vector<std::thread> connections;
  while (!core.shutdown_requested()) {
    pollfd p{listen_fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back([fd, &core] { serve_connection(fd, core); });
  }
  for (std::thread& t : connections) t.join();
  core.wait_idle();
  ::close(listen_fd);
  ::unlink(path.c_str());
  std::fprintf(stderr, "soctest: shut down cleanly\n");
  return 0;
}

int run_client(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return 1;
  }
  if (!connect_path(fd, path)) {
    ::close(fd);
    return 1;
  }

  bool stdin_open = true;
  char chunk[4096];
  while (true) {
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {stdin_open ? STDIN_FILENO : -1, POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "poll: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
    if (fds[0].revents & (POLLIN | POLLHUP)) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return 1;
      }
      if (n == 0) break;  // server closed: all responses delivered
      std::fwrite(chunk, 1, static_cast<std::size_t>(n), stdout);
      std::fflush(stdout);
      continue;
    }
    if (stdin_open && (fds[1].revents & (POLLIN | POLLHUP))) {
      const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return 1;
      }
      if (n == 0) {
        stdin_open = false;
        ::shutdown(fd, SHUT_WR);  // tell the server we are done sending
        continue;
      }
      if (!write_all(fd, std::string(chunk, static_cast<std::size_t>(n)))) {
        std::fprintf(stderr, "write: server connection lost\n");
        ::close(fd);
        return 1;
      }
    }
  }
  ::close(fd);
  return 0;
}

}  // namespace soctest::server
