// Cross-request evaluation-state sharing for the soctest daemon.
//
// The expensive, reusable state of an optimize request is (a) the per-core
// lookup tables inside a SocOptimizer and (b) the ScheduleMemo /
// ColumnCache the incremental search fills while it runs. One-shot CLI
// runs rebuild all three every time; the server keeps them alive in a
// Session keyed by a content fingerprint of everything that determines
// their values — the full SOC content (runtime::key_of_soc: every core's
// spec and cubes plus the explore band) extended with technique selection
// and the result-affecting optimizer knobs (mode, constraint, power
// budget). Two requests with equal keys can share warm state bit-safely:
// memo entries are keyed by width vector and evaluation is deterministic,
// so a warm hit returns exactly what a cold run would compute. The width
// BUDGET is deliberately NOT in the key — a width sweep over one SOC is
// the motivating warm workload, and architecture evaluation never depends
// on the budget that proposed it.
//
// Sessions are built OUTSIDE the cache lock: a request cancelled
// mid-explore unwinds before insert and leaves no partial session behind
// (concurrent requests racing on the same key both build; the first insert
// wins and the loser adopts it). Eviction is LRU at a fixed capacity;
// running requests keep their evicted session alive through shared_ptr.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "explore/core_explorer.hpp"
#include "opt/delta_evaluator.hpp"
#include "opt/soc_optimizer.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/stats.hpp"
#include "runtime/table_cache.hpp"

namespace soctest::server {

/// The key-forming subset of a request: explore band + technique selection
/// + the optimizer knobs a memoized result depends on.
struct SessionConfig {
  ExploreOptions explore;  // cancel is ignored for the key (never hashed)
  bool select = false;     // per-core technique selection tables
  ArchMode mode = ArchMode::PerCore;
  ConstraintMode constraint = ConstraintMode::TamWidth;
  double power_budget_mw = 0.0;
  // Scenario flags: a preemptive or hierarchical request fills its memo
  // with schedules no other scenario may reuse, so they split the key —
  // but only when set, so pre-scenario session ids stay stable.
  bool preemptive = false;
  bool hierarchical = false;
};

/// One SOC's warm state. The SocSpec is owned here (at a stable address —
/// SocOptimizer keeps a pointer into it) so the request's stack copy can
/// die while the session lives on.
struct Session {
  runtime::CacheKey key;
  std::unique_ptr<SocSpec> soc;
  std::unique_ptr<SocOptimizer> optimizer;
  ScheduleMemo memo;
  ColumnCache columns;

  /// "<hash><check>" as 32 hex digits — the id clients see in result
  /// envelopes (equal ids <=> shared warm state).
  std::string key_hex() const;
};

/// Relaxed snapshot of a session's memo/column counters; the server diffs
/// two snapshots around a request to report per-request warm evidence.
struct SessionCounters {
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t column_hits = 0;
  std::uint64_t column_misses = 0;
};

SessionCounters snapshot_counters(const Session& s);

class SessionCache {
 public:
  explicit SessionCache(std::size_t capacity = 8);

  /// The session fingerprint for (soc, cfg); cfg.explore.cancel never
  /// participates.
  static runtime::CacheKey key_for(const SocSpec& soc,
                                   const SessionConfig& cfg);

  /// Returns the cached session for (soc, cfg), or builds one (copying
  /// `soc`, exploring its cores — honoring `cancel` — and constructing the
  /// optimizer) and inserts it. `*warm` reports whether the session came
  /// from cache. Throws runtime::CancelledError if `cancel` fires during
  /// the build; nothing is inserted in that case.
  std::shared_ptr<Session> get_or_build(const SocSpec& soc,
                                        const SessionConfig& cfg,
                                        const runtime::CancelToken* cancel,
                                        bool* warm = nullptr);

  /// Lookup without building (tests / stats).
  std::shared_ptr<Session> lookup(const runtime::CacheKey& key);

  runtime::CacheStats stats() const;
  std::size_t size() const;

 private:
  void evict_lru_locked();

  struct Entry {
    std::shared_ptr<Session> session;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex m_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
  std::vector<Entry> entries_;  // small N: linear scan beats a map
};

}  // namespace soctest::server
