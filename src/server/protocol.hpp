// NDJSON request/response protocol for the soctest daemon. One JSON object
// per line in both directions.
//
// Requests ({"op": ...}):
//   {"op":"optimize","id":"r1","design":"d695","width":16, ...}
//   {"op":"optimize","id":"r2","soc_text":"soc mini\ncore a\n...","width":8}
//   {"op":"cancel","id":"r1"}
//   {"op":"stats"}       {"op":"ping"}       {"op":"shutdown"}
//   {"op":"history"}     replay recent result lines (bounded ring)
//   {"op":"worker"}      turn this connection into a distributed-portfolio
//                        worker channel (socket transport only; the NDJSON
//                        exchange that follows is defined in dist/codec.hpp)
//
// optimize fields (beyond op/id; unknown keys are a bad_request —
// validation is strict, a typo never silently falls back to a default):
//   design           built-in | synth:<cores>[:<seed>] | .soc path
//   soc_text         inline .soc text (exactly one of design/soc_text)
//   width            budget W (>= 1; default 32)
//   mode             "percore"|"pertam"|"notdc"|"fixedw4"  (default percore)
//   constraint       "tam"|"ate"                           (default tam)
//   power            peak-power budget mW (default 0 = off)
//   preemptive       bool: power-preemptive segmented scheduling (default
//                    false; schedules like non-preemptive when power is 0)
//   hierarchical     bool: enforce the SOC's ancestor/descendant test
//                    exclusion                              (default false)
//   select           bool: per-core technique selection     (default false)
//   max_chains       wrapper-chain cap (default 255)
//   anneal           > 0: simulated annealing, that many iterations
//   portfolio        > 0: replica-exchange portfolio, that many replicas
//   sweeps, sweep_proposals, seed          portfolio/annealing knobs
//   checkpoint       portfolio checkpoint path; resumed when the file
//                    exists and its fingerprint matches, else started fresh
//   checkpoint_every write every N sweeps (default 0 = final only)
//   deadline_ms      > 0: cancel the request this many ms after acceptance
//   progress         bool: stream progress events              (default false)
//
// Responses ({"event": ...}), per request id:
//   accepted    the request was parsed and queued
//   progress    {"phase":"explore"|"search"|"portfolio"[,"sweep","sweeps_total",
//               "incumbent","proposals"]} — only when progress:true
//   result      terminal on success: {"warm":bool,"elapsed_ms":N,
//               "session":{...per-request cache evidence...},
//               "report":{...the full optimize report, cpu_seconds zeroed so
//               identical requests give bit-identical report objects...}}
//   error       terminal on failure: {"code","message"}. Codes:
//                 bad_request    malformed JSON / unknown field / bad value
//                 cancelled      an explicit cancel op stopped the request
//                 deadline       the request's deadline_ms elapsed
//                 checkpoint_io  the run finished but a checkpoint write
//                                failed — this error FOLLOWS the result
//                                event (the in-memory run is intact)
//                 internal       anything else (bug or resource failure)
//   stats/pong/shutdown   acks for the housekeeping ops
//   history     one per replayed entry: {"entry":<stored result line>},
//               oldest first, then a terminal history_end {"count":N}. The
//               ring is bounded (ServerOptions::history, default 64) — old
//               entries drop silently.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "opt/soc_optimizer.hpp"
#include "server/session_cache.hpp"

namespace soctest::server {

/// Thrown by request parsing and mapped to an error response. `code` is
/// one of the protocol error codes above.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

struct OptimizeRequest {
  std::string design;    // exactly one of design / soc_text is set
  std::string soc_text;
  int width = 32;
  ArchMode mode = ArchMode::PerCore;
  ConstraintMode constraint = ConstraintMode::TamWidth;
  double power = 0.0;
  bool preemptive = false;
  bool hierarchical = false;
  bool select = false;
  int max_chains = 255;
  int anneal = 0;
  int portfolio = 0;
  int sweeps = 20;
  int sweep_proposals = 100;
  std::uint64_t seed = 1;
  std::string checkpoint;
  int checkpoint_every = 0;
  std::int64_t deadline_ms = 0;
  bool progress = false;
};

struct Request {
  enum class Op { Optimize, Cancel, Stats, Ping, Shutdown, History, Worker };
  Op op = Op::Ping;
  std::string id;
  OptimizeRequest optimize;  // meaningful when op == Optimize
};

/// Parses one request line. Strict: malformed JSON, a missing/unknown op,
/// an unknown field, a wrong-typed or out-of-range value, or both/neither
/// of design+soc_text all throw ProtocolError("bad_request", ...).
Request parse_request(const std::string& line);

// Response emitters — each returns one complete line WITHOUT the trailing
// newline (the transport appends it).
std::string accepted_line(const std::string& id);
std::string cancel_ack_line(const std::string& id);
std::string phase_progress_line(const std::string& id,
                                const std::string& phase);
std::string portfolio_progress_line(const std::string& id, int sweep,
                                    int sweeps_total, std::int64_t incumbent,
                                    std::uint64_t proposals);
/// `session_json` and `compact_report` are pre-rendered JSON objects.
std::string result_line(const std::string& id, bool warm,
                        std::int64_t elapsed_ms,
                        const std::string& session_json,
                        const std::string& compact_report);
std::string error_line(const std::string& id, const std::string& code,
                       const std::string& message);
std::string pong_line(const std::string& id);
std::string shutdown_line(const std::string& id);
/// `entry` is a pre-rendered stored response line, embedded verbatim.
std::string history_entry_line(const std::string& id,
                               const std::string& entry);
std::string history_end_line(const std::string& id, std::size_t count);

/// The per-request cache-evidence object embedded in result lines: the
/// session identity, this request's memo/column counter deltas, and the
/// SessionCache's cumulative hit/miss/eviction stats.
std::string session_evidence_json(const Session& session,
                                  const SessionCounters& before,
                                  const SessionCounters& after,
                                  const runtime::CacheStats& cache);

/// The stats-op response body (cumulative SessionCache stats + job counts).
std::string stats_line(const std::string& id,
                       const runtime::CacheStats& cache, int active,
                       std::uint64_t completed, std::uint64_t failed);

}  // namespace soctest::server
