// Low-level unix-socket + line-framing helpers shared by the daemon
// transport (server/socket.cpp) and the distributed portfolio
// (src/dist/): blocking full writes, CLOEXEC listen/connect, and a
// poll-driven buffered line reader that distinguishes EOF (peer gone —
// the coordinator's crash signal) from a timeout (peer alive but slow)
// without ever blocking forever.
//
// Every fd created here is O_CLOEXEC: the distributed coordinator forks
// worker processes, and a worker inheriting its siblings' socket fds
// would keep those connections "open" after the sibling died, masking
// exactly the EOF the crash detection depends on.
#pragma once

#include <string>

namespace soctest::server {

/// Writes all of `data` (MSG_NOSIGNAL, EINTR-safe); false on a hard
/// error (peer gone).
bool fd_write_all(int fd, const std::string& data);

/// Creates, binds, and listens on a unix stream socket (CLOEXEC, backlog
/// 64, stale socket file replaced). Returns the listening fd, or -1 with
/// a message on stderr.
int listen_unix(const std::string& path);

/// Connects to a unix stream socket (CLOEXEC). Returns the fd, or -1
/// with a message on stderr.
int connect_unix(const std::string& path);

enum class ReadStatus {
  Ok,       // one complete line delivered
  Eof,      // peer closed; no complete line remained buffered
  Timeout,  // no complete line within the budget; buffered bytes kept
  Error,    // hard read/poll failure
};

/// Buffered newline-framed reader over a socket fd (not owned). A line
/// already buffered is returned without touching the fd, so interleaving
/// with other readers of the same buffer is safe as long as the carry is
/// handed over (see take_buffered / the carry constructor).
class LineReader {
 public:
  explicit LineReader(int fd, std::string carry = {})
      : fd_(fd), buf_(std::move(carry)) {}

  /// Reads until one complete line (without the '\n') is available.
  /// timeout_ms < 0 blocks indefinitely; 0 polls. On Timeout partial
  /// data stays buffered for the next call.
  ReadStatus read_line(std::string* out, int timeout_ms);

  /// Surrenders the unconsumed buffer (bytes read past the last returned
  /// line) — for handing this connection to another framing layer.
  std::string take_buffered();

 private:
  int fd_;
  std::string buf_;
};

}  // namespace soctest::server
