// Unix-domain-socket transport for ServerCore, plus the matching client
// the CLI's --connect flag uses. Framing is newline-delimited JSON in both
// directions (see server/protocol.hpp).
//
// Listener: accepts any number of concurrent connections, one reader
// thread per connection; responses are serialized per connection with a
// write mutex (a request's responses never interleave mid-line with
// another's). A connection that half-closes keeps receiving responses for
// its in-flight requests before the server closes the other half. A
// {"op":"shutdown"} request from any connection stops the accept loop,
// drains every active job, and removes the socket file.
//
// Client: streams stdin to the socket and socket responses to stdout
// until both sides are drained — `soctest --connect <sock> < requests`
// is the scriptable unit the CI smoke uses.
#pragma once

#include <string>

namespace soctest::server {

class ServerCore;

/// Binds `path` (an existing stale socket file is replaced), serves until
/// a shutdown request arrives, then drains and unlinks. Returns a process
/// exit code: 0 clean shutdown, 1 on a bind/listen failure.
int serve_unix(const std::string& path, ServerCore& core);

/// Connects to `path`, forwards stdin lines to the server and server
/// lines to stdout (interleaved via poll, so progress events stream while
/// stdin is still being read). Returns 0 when the server closed the
/// connection after stdin was fully forwarded, 1 on connect/I/O failure.
int run_client(const std::string& path);

}  // namespace soctest::server
