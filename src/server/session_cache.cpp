#include "server/session_cache.hpp"

#include <cstdio>

#include "explore/technique_select.hpp"
#include "runtime/fnv.hpp"

namespace soctest::server {

std::string Session::key_hex() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(key.hash),
                static_cast<unsigned long long>(key.check));
  return buf;
}

SessionCounters snapshot_counters(const Session& s) {
  SessionCounters c;
  c.memo_hits = s.memo.hits.load(std::memory_order_relaxed);
  c.memo_misses = s.memo.misses.load(std::memory_order_relaxed);
  c.column_hits = s.columns.hits.load(std::memory_order_relaxed);
  c.column_misses = s.columns.misses.load(std::memory_order_relaxed);
  return c;
}

SessionCache::SessionCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

runtime::CacheKey SessionCache::key_for(const SocSpec& soc,
                                        const SessionConfig& cfg) {
  // Base: the full SOC content + explore band (one changed care bit
  // anywhere changes it). Extend with the session-relevant knobs.
  const runtime::CacheKey base = runtime::key_of_soc(soc, cfg.explore);
  runtime::FnvHasher h;
  h.str("soctest.session.v1");
  h.u64(base.hash);
  h.u64(base.check);
  h.u64(base.length);
  h.boolean(cfg.select);
  h.i32(static_cast<int>(cfg.mode));
  h.i32(static_cast<int>(cfg.constraint));
  h.bytes(&cfg.power_budget_mw, sizeof cfg.power_budget_mw);
  if (cfg.preemptive || cfg.hierarchical) {
    h.boolean(cfg.preemptive);
    h.boolean(cfg.hierarchical);
  }
  return {h.digest_a(), h.digest_b(), h.length()};
}

std::shared_ptr<Session> SessionCache::lookup(const runtime::CacheKey& key) {
  std::lock_guard<std::mutex> lock(m_);
  for (Entry& e : entries_) {
    if (e.session->key == key) {
      e.last_used = ++tick_;
      ++hits_;
      return e.session;
    }
  }
  ++misses_;
  return nullptr;
}

std::shared_ptr<Session> SessionCache::get_or_build(
    const SocSpec& soc, const SessionConfig& cfg,
    const runtime::CancelToken* cancel, bool* warm) {
  const runtime::CacheKey key = key_for(soc, cfg);
  if (auto hit = lookup(key)) {
    if (warm) *warm = true;
    return hit;
  }
  if (warm) *warm = false;

  // Build outside the lock: exploration is the expensive part and may be
  // cancelled; an unwound build must leave the cache untouched.
  auto session = std::make_shared<Session>();
  session->key = key;
  session->soc = std::make_unique<SocSpec>(soc);
  ExploreOptions eopts = cfg.explore;
  eopts.cancel = cancel;
  std::vector<CoreTable> tables =
      cfg.select ? explore_soc_with_selection(*session->soc, eopts)
                 : explore_soc(*session->soc, eopts);
  // The stored optimizer must not reference the request's token.
  eopts.cancel = nullptr;
  session->optimizer = std::make_unique<SocOptimizer>(
      *session->soc, std::move(tables), eopts);

  std::lock_guard<std::mutex> lock(m_);
  // A concurrent request may have inserted the same key while we built;
  // first insert wins so every requester shares one warm state.
  for (Entry& e : entries_) {
    if (e.session->key == key) {
      e.last_used = ++tick_;
      return e.session;
    }
  }
  if (entries_.size() >= capacity_) evict_lru_locked();
  entries_.push_back({session, ++tick_});
  ++insertions_;
  return session;
}

void SessionCache::evict_lru_locked() {
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i)
    if (entries_[i].last_used < entries_[victim].last_used) victim = i;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  ++evictions_;
}

runtime::CacheStats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  runtime::CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.insertions = insertions_;
  s.entries = entries_.size();
  s.capacity = capacity_;
  return s;
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return entries_.size();
}

}  // namespace soctest::server
