#include "server/protocol.hpp"

#include <sstream>

#include "io/json_value.hpp"
#include "report/json.hpp"

namespace soctest::server {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError("bad_request", message);
}

int field_int(const JsonValue& v, const std::string& key, int lo, int hi) {
  std::int64_t x = 0;
  try {
    x = v.as_int64();
  } catch (const std::exception&) {
    bad("'" + key + "' must be an integer");
  }
  if (x < lo || x > hi)
    bad("'" + key + "' must be in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "]");
  return static_cast<int>(x);
}

ArchMode parse_mode(const std::string& s) {
  if (s == "percore") return ArchMode::PerCore;
  if (s == "pertam") return ArchMode::PerTam;
  if (s == "notdc") return ArchMode::NoTdc;
  if (s == "fixedw4") return ArchMode::FixedWidth4;
  bad("'mode' must be percore|pertam|notdc|fixedw4");
}

ConstraintMode parse_constraint(const std::string& s) {
  if (s == "tam") return ConstraintMode::TamWidth;
  if (s == "ate") return ConstraintMode::AteChannels;
  bad("'constraint' must be tam|ate");
}

void parse_optimize_field(OptimizeRequest& r, const std::string& key,
                          const JsonValue& v) {
  try {
    if (key == "design") {
      r.design = v.as_string();
    } else if (key == "soc_text") {
      r.soc_text = v.as_string();
    } else if (key == "width") {
      r.width = field_int(v, key, 1, 1 << 20);
    } else if (key == "mode") {
      r.mode = parse_mode(v.as_string());
    } else if (key == "constraint") {
      r.constraint = parse_constraint(v.as_string());
    } else if (key == "power") {
      r.power = v.as_double();
      if (r.power < 0) bad("'power' must be >= 0");
    } else if (key == "preemptive") {
      r.preemptive = v.as_bool();
    } else if (key == "hierarchical") {
      r.hierarchical = v.as_bool();
    } else if (key == "select") {
      r.select = v.as_bool();
    } else if (key == "max_chains") {
      r.max_chains = field_int(v, key, 1, 1 << 20);
    } else if (key == "anneal") {
      r.anneal = field_int(v, key, 0, 1 << 30);
    } else if (key == "portfolio") {
      r.portfolio = field_int(v, key, 0, 1 << 20);
    } else if (key == "sweeps") {
      r.sweeps = field_int(v, key, 0, 1 << 30);
    } else if (key == "sweep_proposals") {
      r.sweep_proposals = field_int(v, key, 1, 1 << 30);
    } else if (key == "seed") {
      r.seed = v.as_uint64();
    } else if (key == "checkpoint") {
      r.checkpoint = v.as_string();
    } else if (key == "checkpoint_every") {
      r.checkpoint_every = field_int(v, key, 0, 1 << 30);
    } else if (key == "deadline_ms") {
      r.deadline_ms = v.as_int64();
      if (r.deadline_ms < 0) bad("'deadline_ms' must be >= 0");
    } else if (key == "progress") {
      r.progress = v.as_bool();
    } else {
      bad("unknown field '" + key + "'");
    }
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    bad("'" + key + "': " + e.what());
  }
}

}  // namespace

Request parse_request(const std::string& line) {
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const std::exception& e) {
    bad(e.what());
  }
  if (!doc.is_object()) bad("request must be a JSON object");
  const JsonValue* opv = doc.find("op");
  if (!opv || !opv->is_string()) bad("missing string field 'op'");
  const std::string op = opv->string_value;

  Request req;
  if (const JsonValue* idv = doc.find("id")) {
    if (!idv->is_string()) bad("'id' must be a string");
    req.id = idv->string_value;
  }

  if (op == "optimize") {
    req.op = Request::Op::Optimize;
    if (req.id.empty()) bad("optimize requires a non-empty 'id'");
    for (const auto& [key, value] : doc.members) {
      if (key == "op" || key == "id") continue;
      parse_optimize_field(req.optimize, key, value);
    }
    const bool has_design = !req.optimize.design.empty();
    const bool has_text = !req.optimize.soc_text.empty();
    if (has_design == has_text)
      bad("optimize requires exactly one of 'design' or 'soc_text'");
    if (req.optimize.anneal > 0 && req.optimize.portfolio > 0)
      bad("'anneal' and 'portfolio' are exclusive (the portfolio runs its "
          "own annealing ladder)");
    if (!req.optimize.checkpoint.empty() && req.optimize.portfolio == 0)
      bad("'checkpoint' requires 'portfolio'");
    return req;
  }

  // Housekeeping ops take no fields beyond op/id.
  for (const auto& [key, value] : doc.members) {
    (void)value;
    if (key != "op" && key != "id") bad("unknown field '" + key + "'");
  }
  if (op == "cancel") {
    if (req.id.empty()) bad("cancel requires a non-empty 'id'");
    req.op = Request::Op::Cancel;
  } else if (op == "stats") {
    req.op = Request::Op::Stats;
  } else if (op == "ping") {
    req.op = Request::Op::Ping;
  } else if (op == "shutdown") {
    req.op = Request::Op::Shutdown;
  } else if (op == "history") {
    req.op = Request::Op::History;
  } else if (op == "worker") {
    req.op = Request::Op::Worker;
  } else {
    bad("unknown op '" + op + "'");
  }
  return req;
}

namespace {

std::string head(const char* event, const std::string& id) {
  std::string s = "{\"event\": \"";
  s += event;
  s += "\", \"id\": \"" + json_escape(id) + "\"";
  return s;
}

}  // namespace

std::string accepted_line(const std::string& id) {
  return head("accepted", id) + "}";
}

std::string cancel_ack_line(const std::string& id) {
  return head("accepted", id) + ", \"op\": \"cancel\"}";
}

std::string phase_progress_line(const std::string& id,
                                const std::string& phase) {
  return head("progress", id) + ", \"phase\": \"" + json_escape(phase) + "\"}";
}

std::string portfolio_progress_line(const std::string& id, int sweep,
                                    int sweeps_total, std::int64_t incumbent,
                                    std::uint64_t proposals) {
  std::ostringstream os;
  os << head("progress", id) << ", \"phase\": \"portfolio\", \"sweep\": "
     << sweep << ", \"sweeps_total\": " << sweeps_total
     << ", \"incumbent\": " << incumbent << ", \"proposals\": " << proposals
     << "}";
  return os.str();
}

std::string result_line(const std::string& id, bool warm,
                        std::int64_t elapsed_ms,
                        const std::string& session_json,
                        const std::string& compact_report) {
  std::ostringstream os;
  os << head("result", id) << ", \"warm\": " << (warm ? "true" : "false")
     << ", \"elapsed_ms\": " << elapsed_ms << ", \"session\": " << session_json
     << ", \"report\": " << compact_report << "}";
  return os.str();
}

std::string error_line(const std::string& id, const std::string& code,
                       const std::string& message) {
  return head("error", id) + ", \"code\": \"" + json_escape(code) +
         "\", \"message\": \"" + json_escape(message) + "\"}";
}

std::string pong_line(const std::string& id) {
  return head("pong", id) + "}";
}

std::string shutdown_line(const std::string& id) {
  return head("shutdown", id) + "}";
}

std::string history_entry_line(const std::string& id,
                               const std::string& entry) {
  return head("history", id) + ", \"entry\": " + entry + "}";
}

std::string history_end_line(const std::string& id, std::size_t count) {
  return head("history_end", id) + ", \"count\": " + std::to_string(count) +
         "}";
}

namespace {

std::string cache_stats_json(const runtime::CacheStats& c) {
  std::ostringstream os;
  os << "{\"hits\": " << c.hits << ", \"misses\": " << c.misses
     << ", \"evictions\": " << c.evictions << ", \"entries\": " << c.entries
     << ", \"capacity\": " << c.capacity << "}";
  return os.str();
}

}  // namespace

std::string session_evidence_json(const Session& session,
                                  const SessionCounters& before,
                                  const SessionCounters& after,
                                  const runtime::CacheStats& cache) {
  std::ostringstream os;
  os << "{\"key\": \"" << session.key_hex() << "\""
     << ", \"memo_hits\": " << (after.memo_hits - before.memo_hits)
     << ", \"memo_misses\": " << (after.memo_misses - before.memo_misses)
     << ", \"column_hits\": " << (after.column_hits - before.column_hits)
     << ", \"column_misses\": " << (after.column_misses - before.column_misses)
     << ", \"sessions\": " << cache_stats_json(cache) << "}";
  return os.str();
}

std::string stats_line(const std::string& id,
                       const runtime::CacheStats& cache, int active,
                       std::uint64_t completed, std::uint64_t failed) {
  std::ostringstream os;
  os << head("stats", id) << ", \"sessions\": " << cache_stats_json(cache)
     << ", \"active\": " << active << ", \"completed\": " << completed
     << ", \"failed\": " << failed << "}";
  return os.str();
}

}  // namespace soctest::server
