#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "io/design_loader.hpp"
#include "io/soc_text.hpp"
#include "opt/annealing.hpp"
#include "portfolio/portfolio.hpp"
#include "report/json.hpp"

namespace soctest::server {

namespace {

SocSpec load_request_soc(const OptimizeRequest& req) {
  try {
    if (!req.soc_text.empty()) {
      std::istringstream in(req.soc_text);
      return read_soc_text(in);
    }
    return load_design(req.design);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError("bad_request", e.what());
  } catch (const std::runtime_error& e) {
    // Malformed .soc text / unreadable file — the request named bad input.
    throw ProtocolError("bad_request", e.what());
  }
}

}  // namespace

ServerCore::ServerCore(ServerOptions opts) : opts_(opts), sessions_(opts.sessions) {}

ServerCore::~ServerCore() { wait_idle(); }

int ServerCore::active_jobs() const {
  std::lock_guard<std::mutex> lock(jobs_m_);
  return static_cast<int>(jobs_.size());
}

void ServerCore::wait_idle() {
  std::unique_lock<std::mutex> lock(jobs_m_);
  jobs_cv_.wait(lock, [this] { return jobs_.empty(); });
}

void ServerCore::acquire_slot(const Job& job) {
  std::unique_lock<std::mutex> lock(jobs_m_);
  if (opts_.max_active > 0) {
    // Queued requests stay cancellable: poll the token while waiting.
    while (running_ >= opts_.max_active) {
      job.token.check();
      jobs_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
    job.token.check();
  }
  ++running_;
}

void ServerCore::release_slot() {
  std::lock_guard<std::mutex> lock(jobs_m_);
  --running_;
  jobs_cv_.notify_all();
}

void ServerCore::record_history(const std::string& line) {
  if (opts_.history == 0) return;
  std::lock_guard<std::mutex> lock(history_m_);
  history_.push_back(line);
  while (history_.size() > opts_.history) history_.pop_front();
}

std::vector<std::string> ServerCore::history_snapshot() const {
  std::lock_guard<std::mutex> lock(history_m_);
  return {history_.begin(), history_.end()};
}

void ServerCore::finish_job(const std::string& id, bool failed) {
  std::lock_guard<std::mutex> lock(jobs_m_);
  jobs_.erase(id);
  if (failed)
    ++failed_;
  else
    ++completed_;
  jobs_cv_.notify_all();
}

std::shared_future<void> ServerCore::handle_line(const std::string& line,
                                                 EmitFn emit) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    emit(error_line("", e.code(), e.what()));
    return {};
  }

  switch (req.op) {
    case Request::Op::Ping:
      emit(pong_line(req.id));
      return {};
    case Request::Op::Shutdown:
      shutdown_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(jobs_m_);
        jobs_cv_.notify_all();
      }
      emit(shutdown_line(req.id));
      return {};
    case Request::Op::Stats: {
      int active = 0;
      std::uint64_t completed = 0, failed = 0;
      {
        std::lock_guard<std::mutex> lock(jobs_m_);
        active = static_cast<int>(jobs_.size());
        completed = completed_;
        failed = failed_;
      }
      emit(stats_line(req.id, sessions_.stats(), active, completed, failed));
      return {};
    }
    case Request::Op::Cancel: {
      std::shared_ptr<Job> job;
      {
        std::lock_guard<std::mutex> lock(jobs_m_);
        auto it = jobs_.find(req.id);
        if (it != jobs_.end()) job = it->second;
      }
      if (!job) {
        emit(error_line(req.id, "bad_request",
                        "no active request with id '" + req.id + "'"));
        return {};
      }
      job->cancel_requested.store(true, std::memory_order_relaxed);
      job->token.cancel();
      {
        std::lock_guard<std::mutex> lock(jobs_m_);
        jobs_cv_.notify_all();  // wake it if queued on a compute slot
      }
      emit(cancel_ack_line(req.id));
      return {};
    }
    case Request::Op::History: {
      // Replay under no lock held during emission: emit() may block on a
      // slow client, and the ring must stay writable for running jobs.
      const std::vector<std::string> entries = history_snapshot();
      for (const std::string& e : entries)
        emit(history_entry_line(req.id, e));
      emit(history_end_line(req.id, entries.size()));
      return {};
    }
    case Request::Op::Worker:
      // Taking over the byte stream is a transport-level act; only the
      // socket listener can do it (it intercepts the op before this
      // point). Reaching here means a transport that cannot.
      emit(error_line(req.id, "bad_request",
                      "worker op requires a socket transport"));
      return {};
    case Request::Op::Optimize:
      break;
  }

  if (shutdown_requested()) {
    emit(error_line(req.id, "bad_request", "server is shutting down"));
    return {};
  }
  auto job = std::make_shared<Job>();
  job->id = req.id;
  if (req.optimize.deadline_ms > 0)
    job->token.set_deadline_after(
        std::chrono::milliseconds(req.optimize.deadline_ms));
  {
    std::lock_guard<std::mutex> lock(jobs_m_);
    if (jobs_.count(req.id)) {
      emit(error_line(req.id, "bad_request",
                      "request id '" + req.id + "' is already active"));
      return {};
    }
    jobs_[req.id] = job;
  }
  emit(accepted_line(req.id));

  // Dedicated thread per job: a job may block (slot queue, another job's
  // future) and must never park a compute-pool lane. The promise is
  // fulfilled only after the job's terminal event was emitted and the job
  // was deregistered, so waiting on the future then closing the transport
  // can never lose a response line.
  auto prom = std::make_shared<std::promise<void>>();
  job->done = prom->get_future().share();
  std::thread([this, job, request = req.optimize, emit = std::move(emit),
               prom]() mutable {
    run_job(job, std::move(request), emit);
    prom->set_value();
  }).detach();
  return job->done;
}

void ServerCore::run_job(const std::shared_ptr<Job>& job, OptimizeRequest req,
                         const EmitFn& emit) {
  const auto t0 = std::chrono::steady_clock::now();
  bool failed = true;
  bool slot = false;
  try {
    acquire_slot(*job);
    slot = true;

    if (req.progress) emit(phase_progress_line(job->id, "explore"));
    const SocSpec soc = load_request_soc(req);
    SessionConfig cfg;
    cfg.explore.max_width = std::max(req.width, 32);
    cfg.explore.max_chains = req.max_chains;
    cfg.select = req.select;
    cfg.mode = req.mode;
    cfg.constraint = req.constraint;
    cfg.power_budget_mw = req.power;
    cfg.preemptive = req.preemptive;
    cfg.hierarchical = req.hierarchical;
    bool warm = false;
    std::shared_ptr<Session> session =
        sessions_.get_or_build(soc, cfg, &job->token, &warm);
    const SessionCounters before = snapshot_counters(*session);

    if (req.progress) emit(phase_progress_line(job->id, "search"));
    OptimizerOptions o;
    o.width = req.width;
    o.mode = req.mode;
    o.constraint = req.constraint;
    o.power_budget_mw = req.power;
    o.preemptive = req.preemptive;
    o.hierarchical = req.hierarchical;

    OptimizationResult r;
    std::string checkpoint_error;
    if (req.portfolio > 0) {
      o.portfolio = req.portfolio;
      // The portfolio stops cooperatively at sweep boundaries through
      // popts.cancel; o.cancel stays null so the racing hill climb never
      // aborts the graceful stop with a CancelledError.
      PortfolioOptions p;
      p.sweeps = req.sweeps;
      p.proposals_per_sweep = req.sweep_proposals;
      p.seed = req.seed;
      p.checkpoint_path = req.checkpoint;
      p.checkpoint_every = req.checkpoint_every;
      p.cancel = &job->token;
      p.memo = &session->memo;
      p.columns = &session->columns;
      if (req.progress) {
        const std::string id = job->id;
        p.progress = [&emit, id](const PortfolioProgress& pp) {
          emit(portfolio_progress_line(id, pp.sweep, pp.sweeps_total,
                                       pp.incumbent, pp.proposals));
        };
      }
      PortfolioResult pr;
      bool resumed = false;
      if (!req.checkpoint.empty() &&
          std::filesystem::exists(req.checkpoint)) {
        try {
          pr = resume_portfolio(*session->optimizer, o, p, req.checkpoint);
          resumed = true;
        } catch (const runtime::CancelledError&) {
          throw;
        } catch (const std::exception&) {
          resumed = false;  // mismatched/malformed checkpoint: start fresh
        }
      }
      if (!resumed) pr = optimize_portfolio(*session->optimizer, o, p);
      job->token.check();  // a cooperative stop is still a cancellation
      r = pr.best;
      checkpoint_error = pr.stats.checkpoint_error;
    } else if (req.anneal > 0) {
      o.cancel = &job->token;
      AnnealingOptions an;
      an.iterations = req.anneal;
      an.seed = req.seed;
      r = optimize_annealing_shared(*session->optimizer, o, an,
                                    &session->memo, &session->columns);
    } else {
      o.cancel = &job->token;
      r = session->optimizer->optimize_shared(o, &session->memo,
                                              &session->columns);
    }

    // Planning wall time varies run to run; zero it so identical requests
    // produce bit-identical report objects (the envelope carries timing).
    r.cpu_seconds = 0.0;
    const SessionCounters after = snapshot_counters(*session);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const std::string result = result_line(
        job->id, warm, elapsed_ms,
        session_evidence_json(*session, before, after, sessions_.stats()),
        compact_json(result_to_json(r, *session->soc)));
    emit(result);
    record_history(result);
    failed = false;
    if (!checkpoint_error.empty()) {
      // The run is intact and its result was just delivered; persistence
      // failed. Distinct code so clients (and the batch exit path) can
      // tell this apart from a lost run.
      emit(error_line(job->id, "checkpoint_io", checkpoint_error));
      failed = true;
    }
  } catch (const runtime::CancelledError&) {
    const bool explicit_cancel =
        job->cancel_requested.load(std::memory_order_relaxed);
    emit(error_line(job->id, explicit_cancel ? "cancelled" : "deadline",
                    explicit_cancel
                        ? "request cancelled"
                        : "request deadline elapsed"));
  } catch (const ProtocolError& e) {
    emit(error_line(job->id, e.code(), e.what()));
  } catch (const std::exception& e) {
    emit(error_line(job->id, "internal", e.what()));
  }
  if (slot) release_slot();
  finish_job(job->id, failed);
}

int run_batch(const std::string& dir, ServerCore& core) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  try {
    for (const auto& entry : fs::directory_iterator(dir))
      if (entry.is_regular_file() && entry.path().extension() == ".json")
        files.push_back(entry.path());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "batch: cannot read '%s': %s\n", dir.c_str(),
                 e.what());
    return 1;
  }
  std::sort(files.begin(), files.end());

  bool checkpoint_io = false;
  for (const fs::path& file : files) {
    if (core.shutdown_requested()) break;
    fs::path out = file;
    out.replace_extension(".out.jsonl");
    if (fs::exists(out)) {
      std::fprintf(stderr, "batch: %s: output exists, skipping\n",
                   file.filename().c_str());
      continue;
    }

    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "batch: cannot open %s\n", file.c_str());
      return 1;
    }
    std::mutex m;
    std::vector<std::string> lines;
    const EmitFn emit = [&m, &lines](const std::string& line) {
      std::lock_guard<std::mutex> lock(m);
      lines.push_back(line);
    };
    // Requests within one file run concurrently through the same
    // handle_line path the socket transport uses.
    std::vector<std::shared_future<void>> pending;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::shared_future<void> fut = core.handle_line(line, emit);
      if (fut.valid()) pending.push_back(std::move(fut));
    }
    for (auto& fut : pending) fut.get();

    const fs::path tmp = out.string() + ".tmp";
    {
      std::ofstream os(tmp);
      for (const std::string& l : lines) {
        os << l << "\n";
        if (l.find("\"code\": \"checkpoint_io\"") != std::string::npos)
          checkpoint_io = true;
      }
      os.flush();
      if (!os) {
        std::fprintf(stderr, "batch: cannot write %s\n", tmp.c_str());
        return 1;
      }
    }
    std::error_code ec;
    fs::rename(tmp, out, ec);
    if (ec) {
      std::fprintf(stderr, "batch: cannot rename %s: %s\n", tmp.c_str(),
                   ec.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "batch: %s -> %s (%zu lines)\n",
                 file.filename().c_str(), out.filename().c_str(),
                 lines.size());
  }
  return checkpoint_io ? 3 : 0;
}

}  // namespace soctest::server
