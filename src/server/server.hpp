// ServerCore: the transport-independent daemon engine. One instance owns
// the cross-request SessionCache and an active-job registry; transports
// (the unix-socket listener in server/socket, the --batch directory
// drainer below, tests calling handle_line directly) feed it request
// lines and receive response lines through an emit callback.
//
// Concurrency model: every optimize request runs on its own dedicated
// thread (std::async) so a request blocking on another's future can never
// park the compute pool — while all actual parallel work inside a request
// (exploration, candidate batches, portfolio replicas) flows through the
// shared work-stealing runtime::ThreadPool, where the work-stealing deques
// interleave the requests' chunks. `max_active` bounds how many requests
// compute at once (a queued request waits on a slot, still cancellable);
// the pool bounds how many lanes the whole daemon uses. Determinism is
// per-request: each request's report is bit-identical to a one-shot run at
// any --jobs and any concurrency mix, because shared caches only ever
// substitute exact results (see session_cache.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/protocol.hpp"
#include "server/session_cache.hpp"

namespace soctest::server {

/// Receives one complete response line (no trailing newline). Called from
/// the accepting thread and from job threads — must be thread-safe.
using EmitFn = std::function<void(const std::string&)>;

struct ServerOptions {
  /// SessionCache capacity (distinct warm SOC configurations kept).
  std::size_t sessions = 8;
  /// Concurrently *computing* optimize requests; 0 = unbounded. Accepted
  /// requests beyond the bound queue (FIFO by slot wakeup) and remain
  /// cancellable while queued.
  int max_active = 0;
  /// Result lines kept for the history op (bounded ring, oldest dropped);
  /// 0 disables recording.
  std::size_t history = 64;
};

class ServerCore {
 public:
  explicit ServerCore(ServerOptions opts = {});
  ~ServerCore();

  /// Handles one request line, emitting every response for it through
  /// `emit`. Optimize requests return immediately with the job's future
  /// (so a transport can drain a connection's jobs before closing it);
  /// housekeeping ops are handled inline and return an invalid future.
  std::shared_future<void> handle_line(const std::string& line, EmitFn emit);

  /// Blocks until every accepted job has terminated.
  void wait_idle();

  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  SessionCache& session_cache() { return sessions_; }
  runtime::CacheStats session_stats() const { return sessions_.stats(); }
  int active_jobs() const;

  /// Snapshot of the recent-result ring, oldest first (exposed for tests;
  /// the history op replays exactly these lines).
  std::vector<std::string> history_snapshot() const;

 private:
  struct Job {
    std::string id;
    runtime::CancelToken token;
    std::atomic<bool> cancel_requested{false};
    std::shared_future<void> done;
  };

  void run_job(const std::shared_ptr<Job>& job, OptimizeRequest req,
               const EmitFn& emit);
  void acquire_slot(const Job& job);
  void release_slot();
  void finish_job(const std::string& id, bool failed);
  void record_history(const std::string& line);

  ServerOptions opts_;
  SessionCache sessions_;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex jobs_m_;
  std::condition_variable jobs_cv_;  // job-finished + slot-freed wakeups
  std::map<std::string, std::shared_ptr<Job>> jobs_;  // active, by id
  int running_ = 0;                  // jobs holding a compute slot
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;

  mutable std::mutex history_m_;
  std::deque<std::string> history_;  // recent result lines, oldest first
};

/// --batch mode: drains `dir` of request files through the same
/// handle_line path the socket uses. Every `*.json` file (sorted by name)
/// holds one request per line; its responses are written to
/// `<stem>.out.jsonl` via a tmp+rename, so a killed daemon resumes by
/// skipping files whose output already exists. Requests within one file
/// run concurrently; files are processed in order. Returns a process exit
/// code: 0 when every file was processed (individual request failures are
/// recorded in the outputs, not the exit code), 3 when any request
/// reported a checkpoint_io error and nothing worse happened, 1 on a
/// directory or output I/O failure.
int run_batch(const std::string& dir, ServerCore& core);

}  // namespace soctest::server
