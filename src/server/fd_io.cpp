#include "server/fd_io.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

namespace soctest::server {

namespace {

bool fill_addr(sockaddr_un* addr, const std::string& path) {
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool fd_write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return -1;
  }
  sockaddr_un addr{};
  if (!fill_addr(&addr, path)) {
    ::close(fd);
    return -1;
  }
  ::unlink(path.c_str());  // replace a stale socket from a killed daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "bind %s: %s\n", path.c_str(), std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    std::fprintf(stderr, "listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return -1;
  }
  sockaddr_un addr{};
  if (!fill_addr(&addr, path)) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "connect %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

ReadStatus LineReader::read_line(std::string* out, int timeout_ms) {
  using clock = std::chrono::steady_clock;
  const bool bounded = timeout_ms >= 0;
  const clock::time_point deadline =
      clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  char chunk[4096];
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return ReadStatus::Ok;
    }
    int wait = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock::now());
      if (left.count() <= 0) return ReadStatus::Timeout;
      wait = static_cast<int>(left.count());
    }
    pollfd p{fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, wait);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::Error;
    }
    if (pr == 0) return ReadStatus::Timeout;
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::Error;
    }
    if (n == 0) return ReadStatus::Eof;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string LineReader::take_buffered() { return std::exchange(buf_, {}); }

}  // namespace soctest::server
