#include "scenario/constrained_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace soctest {
namespace {

void check_sizes(const char* who, int num_cores, int num_buses,
                 const std::vector<std::int64_t>& ref_time,
                 const PowerScheduleOptions& opts,
                 const HierarchySpec& hierarchy) {
  if (num_cores < 0 || num_buses < 1)
    throw std::invalid_argument(std::string(who) + ": bad sizes");
  if (static_cast<int>(ref_time.size()) != num_cores ||
      hierarchy.num_cores() != num_cores)
    throw std::invalid_argument(std::string(who) + ": size mismatch");
  if (opts.power_budget <= 0.0)
    throw std::invalid_argument(std::string(who) + ": budget must be positive");
  hierarchy.validate();
}

void check_feasible(const char* who, int num_cores, int num_buses,
                    const PowerFn& power, const PowerScheduleOptions& opts) {
  for (int i = 0; i < num_cores; ++i) {
    double min_p = std::numeric_limits<double>::max();
    for (int b = 0; b < num_buses; ++b) min_p = std::min(min_p, power(i, b));
    if (min_p > opts.power_budget)
      throw std::runtime_error(std::string(who) + ": core " +
                               std::to_string(i) +
                               " alone exceeds the power budget");
  }
}

std::vector<int> longest_first(int num_cores,
                               const std::vector<std::int64_t>& ref_time) {
  std::vector<int> order(static_cast<std::size_t>(num_cores));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ref_time[static_cast<std::size_t>(a)] >
           ref_time[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

Schedule constrained_schedule(int num_cores, int num_buses, const CostFn& cost,
                              const PowerFn& power,
                              const std::vector<std::int64_t>& ref_time,
                              const PowerScheduleOptions& opts,
                              const HierarchySpec& hierarchy) {
  check_sizes("constrained_schedule", num_cores, num_buses, ref_time, opts,
              hierarchy);
  check_feasible("constrained_schedule", num_cores, num_buses, power, opts);

  const std::vector<int> order = longest_first(num_cores, ref_time);

  Schedule s;
  s.bus_finish.assign(static_cast<std::size_t>(num_buses), 0);
  std::vector<bool> scheduled(static_cast<std::size_t>(num_cores), false);
  std::vector<double> bus_power(static_cast<std::size_t>(num_buses), 0.0);
  std::vector<int> bus_core(static_cast<std::size_t>(num_buses), -1);
  std::vector<std::int64_t> bus_busy_until(static_cast<std::size_t>(num_buses),
                                           0);
  int remaining = num_cores;
  std::int64_t now = 0;

  const auto lineage_busy = [&](int core) {
    for (int b = 0; b < num_buses; ++b) {
      if (bus_busy_until[static_cast<std::size_t>(b)] <= now) continue;
      const int other = bus_core[static_cast<std::size_t>(b)];
      if (other >= 0 && hierarchy.conflicts(core, other)) return true;
    }
    return false;
  };

  while (remaining > 0) {
    double active_power = 0.0;
    for (int b = 0; b < num_buses; ++b)
      if (bus_busy_until[static_cast<std::size_t>(b)] > now)
        active_power += bus_power[static_cast<std::size_t>(b)];

    // Idle buses greedily pick the longest core that fits the headroom AND
    // whose lineage is clear. The check re-runs per placement: a core
    // placed at `now` immediately blocks its ancestors/descendants.
    bool placed_any = false;
    for (int b = 0; b < num_buses; ++b) {
      if (bus_busy_until[static_cast<std::size_t>(b)] > now) continue;
      for (int core : order) {
        if (scheduled[static_cast<std::size_t>(core)]) continue;
        const double p = power(core, b);
        if (active_power + p > opts.power_budget) continue;
        if (lineage_busy(core)) continue;
        const BusAccessCost c = cost(core, b);
        ScheduleEntry e;
        e.core = core;
        e.bus = b;
        e.start = now;
        e.end = now + c.time;
        e.choice = c.choice;
        s.entries.push_back(e);
        s.total_volume_bits += c.volume_bits;
        s.bus_finish[static_cast<std::size_t>(b)] = e.end;
        bus_busy_until[static_cast<std::size_t>(b)] = e.end;
        bus_power[static_cast<std::size_t>(b)] = p;
        bus_core[static_cast<std::size_t>(b)] = core;
        active_power += p;
        scheduled[static_cast<std::size_t>(core)] = true;
        --remaining;
        placed_any = true;
        break;
      }
    }
    if (remaining == 0) break;

    std::int64_t next = std::numeric_limits<std::int64_t>::max();
    for (int b = 0; b < num_buses; ++b) {
      const std::int64_t until = bus_busy_until[static_cast<std::size_t>(b)];
      if (until > now) next = std::min(next, until);
    }
    if (next == std::numeric_limits<std::int64_t>::max()) {
      if (!placed_any)
        throw std::logic_error("constrained_schedule: deadlock at idle");
      continue;
    }
    now = next;
  }
  return s;
}

SegmentedSchedule preemptive_constrained_schedule(
    int num_cores, int num_buses, const CostFn& cost, const PowerFn& power,
    const std::vector<std::int64_t>& ref_time,
    const PowerScheduleOptions& opts, const HierarchySpec& hierarchy) {
  check_sizes("preemptive_constrained_schedule", num_cores, num_buses,
              ref_time, opts, hierarchy);
  check_feasible("preemptive_constrained_schedule", num_cores, num_buses,
                 power, opts);

  std::vector<int> bound(static_cast<std::size_t>(num_cores), -1);
  std::vector<std::int64_t> remaining(static_cast<std::size_t>(num_cores), -1);
  std::vector<BusAccessCost> bound_cost(static_cast<std::size_t>(num_cores));
  const std::vector<int> order = longest_first(num_cores, ref_time);

  SegmentedSchedule s;
  s.bus_finish.assign(static_cast<std::size_t>(num_buses), 0);
  int unfinished = num_cores;
  std::int64_t now = 0;

  while (unfinished > 0) {
    // Select the active set exactly like preemptive_power_schedule, with
    // one extra admission rule: no two conflicting cores may be active at
    // once (a paused relative does NOT block — pausing is the point).
    std::vector<int> pick_order = order;
    std::stable_sort(pick_order.begin(), pick_order.end(), [&](int a, int b) {
      const std::int64_t ra = remaining[static_cast<std::size_t>(a)] >= 0
                                  ? remaining[static_cast<std::size_t>(a)]
                                  : ref_time[static_cast<std::size_t>(a)];
      const std::int64_t rb = remaining[static_cast<std::size_t>(b)] >= 0
                                  ? remaining[static_cast<std::size_t>(b)]
                                  : ref_time[static_cast<std::size_t>(b)];
      return ra > rb;
    });

    std::vector<bool> bus_taken(static_cast<std::size_t>(num_buses), false);
    std::vector<int> active;
    double used = 0.0;
    const auto conflicts_active = [&](int core) {
      for (int other : active)
        if (hierarchy.conflicts(core, other)) return true;
      return false;
    };
    for (int core : pick_order) {
      if (remaining[static_cast<std::size_t>(core)] == 0) continue;
      if (conflicts_active(core)) continue;
      int b = bound[static_cast<std::size_t>(core)];
      if (b >= 0) {
        if (bus_taken[static_cast<std::size_t>(b)]) continue;
        if (used + power(core, b) > opts.power_budget) continue;
      } else {
        // First activation: lowest free bus fitting the budget, preferring
        // buses without a paused bound core (same rule as the preemptive
        // power scheduler — resumptions keep their slot).
        std::vector<int> busy_bound(static_cast<std::size_t>(num_buses), 0);
        for (int other = 0; other < num_cores; ++other)
          if (bound[static_cast<std::size_t>(other)] >= 0 &&
              remaining[static_cast<std::size_t>(other)] != 0)
            ++busy_bound[static_cast<std::size_t>(
                bound[static_cast<std::size_t>(other)])];
        b = -1;
        for (int pass = 0; pass < 2 && b < 0; ++pass) {
          for (int cand = 0; cand < num_buses; ++cand) {
            if (bus_taken[static_cast<std::size_t>(cand)]) continue;
            if (pass == 0 && busy_bound[static_cast<std::size_t>(cand)] > 0)
              continue;
            if (used + power(core, cand) > opts.power_budget) continue;
            b = cand;
            break;
          }
        }
        if (b < 0) continue;
        bound[static_cast<std::size_t>(core)] = b;
        bound_cost[static_cast<std::size_t>(core)] = cost(core, b);
        remaining[static_cast<std::size_t>(core)] =
            bound_cost[static_cast<std::size_t>(core)].time;
        s.total_volume_bits +=
            bound_cost[static_cast<std::size_t>(core)].volume_bits;
        if (remaining[static_cast<std::size_t>(core)] == 0) {
          --unfinished;
          continue;
        }
      }
      bus_taken[static_cast<std::size_t>(b)] = true;
      used += power(core, b);
      active.push_back(core);
    }
    if (active.empty())
      throw std::logic_error("preemptive_constrained_schedule: deadlock");

    std::int64_t step = std::numeric_limits<std::int64_t>::max();
    for (int core : active)
      step = std::min(step, remaining[static_cast<std::size_t>(core)]);

    for (int core : active) {
      const int b = bound[static_cast<std::size_t>(core)];
      ScheduleEntry e;
      e.core = core;
      e.bus = b;
      e.start = now;
      e.end = now + step;
      e.choice = bound_cost[static_cast<std::size_t>(core)].choice;
      s.segments.push_back(e);
      s.bus_finish[static_cast<std::size_t>(b)] = e.end;
      remaining[static_cast<std::size_t>(core)] -= step;
      if (remaining[static_cast<std::size_t>(core)] == 0) --unfinished;
    }
    now += step;
  }

  std::vector<ScheduleEntry> merged;
  for (const ScheduleEntry& e : s.segments) {
    if (!merged.empty() && merged.back().core == e.core &&
        merged.back().bus == e.bus && merged.back().end == e.start) {
      merged.back().end = e.end;
    } else {
      merged.push_back(e);
    }
  }
  s.segments = std::move(merged);
  return s;
}

}  // namespace soctest
