#include "scenario/scenario.hpp"

#include <charconv>
#include <stdexcept>

namespace soctest {
namespace {

/// Shortest round-trip decimal form of a double (std::to_chars).
std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

double parse_cap(const std::string& spec, const std::string& text) {
  double v = 0.0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto res = std::from_chars(first, last, v);
  if (res.ec != std::errc{} || res.ptr != last)
    throw std::invalid_argument("scenario '" + spec + "': bad power cap '" +
                                text + "'");
  if (!(v >= 0.0))
    throw std::invalid_argument("scenario '" + spec +
                                "': power cap must be >= 0");
  return v;
}

int parse_width(const std::string& spec, const std::string& text) {
  int v = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto res = std::from_chars(first, last, v);
  if (res.ec != std::errc{} || res.ptr != last)
    throw std::invalid_argument("scenario '" + spec + "': bad width '" + text +
                                "'");
  if (v < 1)
    throw std::invalid_argument("scenario '" + spec + "': width must be >= 1");
  return v;
}

bool parse_bool01(const std::string& spec, const std::string& text) {
  if (text == "0") return false;
  if (text == "1") return true;
  throw std::invalid_argument("scenario sweep '" + spec + "': bad flag '" +
                              text + "' (want 0 or 1)");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
}

}  // namespace

std::string ScenarioSpec::to_string() const {
  if (is_default()) return "default";
  std::string out;
  const auto append = [&](const std::string& tok) {
    if (!out.empty()) out += ',';
    out += tok;
  };
  if (power_cap_mw > 0.0) append("cap=" + format_double(power_cap_mw));
  if (preemptive) append("preempt");
  if (hierarchical) append("hier");
  if (width > 0) append("w=" + std::to_string(width));
  return out;
}

ScenarioSpec parse_scenario(const std::string& spec) {
  if (spec.empty())
    throw std::invalid_argument("scenario: empty spec");
  ScenarioSpec s;
  if (spec == "default") return s;
  bool have_cap = false, have_preempt = false, have_hier = false,
       have_width = false;
  for (const std::string& tok : split(spec, ',')) {
    if (tok.rfind("cap=", 0) == 0) {
      if (have_cap)
        throw std::invalid_argument("scenario '" + spec + "': duplicate cap");
      have_cap = true;
      s.power_cap_mw = parse_cap(spec, tok.substr(4));
    } else if (tok == "preempt") {
      if (have_preempt)
        throw std::invalid_argument("scenario '" + spec +
                                    "': duplicate preempt");
      have_preempt = true;
      s.preemptive = true;
    } else if (tok == "hier") {
      if (have_hier)
        throw std::invalid_argument("scenario '" + spec + "': duplicate hier");
      have_hier = true;
      s.hierarchical = true;
    } else if (tok.rfind("w=", 0) == 0) {
      if (have_width)
        throw std::invalid_argument("scenario '" + spec + "': duplicate w");
      have_width = true;
      s.width = parse_width(spec, tok.substr(2));
    } else {
      throw std::invalid_argument("scenario '" + spec + "': unknown token '" +
                                  tok + "'");
    }
  }
  return s;
}

std::vector<ScenarioSpec> parse_scenario_sweep(const std::string& spec) {
  if (spec.empty())
    throw std::invalid_argument("scenario sweep: empty spec");
  std::vector<double> caps = {0.0};
  std::vector<bool> preempts = {false};
  std::vector<bool> hiers = {false};
  std::vector<int> widths = {0};
  bool have_cap = false, have_preempt = false, have_hier = false,
       have_width = false;
  for (const std::string& axis : split(spec, ';')) {
    const std::size_t eq = axis.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("scenario sweep '" + spec +
                                  "': axis without '=' in '" + axis + "'");
    const std::string name = axis.substr(0, eq);
    const std::vector<std::string> vals = split(axis.substr(eq + 1), ',');
    if (vals.size() == 1 && vals[0].empty())
      throw std::invalid_argument("scenario sweep '" + spec +
                                  "': empty value list for '" + name + "'");
    if (name == "cap") {
      if (have_cap)
        throw std::invalid_argument("scenario sweep '" + spec +
                                    "': duplicate cap axis");
      have_cap = true;
      caps.clear();
      for (const std::string& v : vals) caps.push_back(parse_cap(spec, v));
    } else if (name == "preempt") {
      if (have_preempt)
        throw std::invalid_argument("scenario sweep '" + spec +
                                    "': duplicate preempt axis");
      have_preempt = true;
      preempts.clear();
      for (const std::string& v : vals)
        preempts.push_back(parse_bool01(spec, v));
    } else if (name == "hier") {
      if (have_hier)
        throw std::invalid_argument("scenario sweep '" + spec +
                                    "': duplicate hier axis");
      have_hier = true;
      hiers.clear();
      for (const std::string& v : vals) hiers.push_back(parse_bool01(spec, v));
    } else if (name == "w") {
      if (have_width)
        throw std::invalid_argument("scenario sweep '" + spec +
                                    "': duplicate w axis");
      have_width = true;
      widths.clear();
      for (const std::string& v : vals)
        widths.push_back(parse_width(spec, v));
    } else {
      throw std::invalid_argument("scenario sweep '" + spec +
                                  "': unknown axis '" + name + "'");
    }
  }
  std::vector<ScenarioSpec> cells;
  cells.reserve(caps.size() * preempts.size() * hiers.size() * widths.size());
  for (double cap : caps)
    for (bool p : preempts)
      for (bool h : hiers)
        for (int w : widths) {
          ScenarioSpec s;
          s.power_cap_mw = cap;
          s.preemptive = p;
          s.hierarchical = h;
          s.width = w;
          cells.push_back(s);
        }
  return cells;
}

}  // namespace soctest
