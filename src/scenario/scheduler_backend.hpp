// SchedulerBackend: the step-4 schedule construction extracted behind an
// interface so the whole search stack (SocOptimizer::evaluate_with, the
// DeltaEvaluator's warm/cold paths, annealing, the portfolio and the
// distributed coordinator) is scheduler-generic. One backend per scenario:
//
//   scenario                       backend          scheduler
//   default                        greedy           sched/greedy_scheduler
//   cap>0                          power            sched/power_scheduler
//   cap>0, preempt                 preemptive       sched/preemptive_scheduler
//   hier                           hier             hier/hier_scheduler
//   hier, cap>0                    hier-power       scenario/constrained_*
//   hier, cap>0, preempt           hier-preemptive  scenario/constrained_*
//
// `preempt` without a power cap normalizes to the scenario without it
// (there is nothing to preempt for), so the factory returns the same
// backend — the differential tests pin that equivalence.
//
// Segmented scenarios (preemptive) return their segments as ordinary
// Schedule entries: one core may appear several times, each segment on the
// core's single bound bus. Downstream consumers that count per-core
// hardware must deduplicate by core index, not by entry
// (SocOptimizer::evaluate_scheduled does).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hier/hierarchy.hpp"
#include "scenario/scenario.hpp"
#include "sched/power_scheduler.hpp"
#include "sched/schedule.hpp"

namespace soctest {

class SchedulerBackend {
 public:
  virtual ~SchedulerBackend() = default;

  virtual const char* name() const = 0;

  /// Does construct() consult the power model? (Callers may skip building
  /// a PowerFn when false.)
  virtual bool needs_power() const { return false; }

  /// May the returned schedule contain idle gaps / repeated cores? The
  /// plain greedy backend is the only gap-free, one-entry-per-core one.
  virtual bool allows_gaps() const { return true; }

  /// Builds the schedule. `power` is only consulted when needs_power().
  /// `ref_time[i]` orders the cores (longest first), exactly the reference
  /// column the seed schedulers take.
  virtual Schedule construct(int num_cores, int num_buses, const CostFn& cost,
                             const PowerFn& power,
                             const std::vector<std::int64_t>& ref_time) const
      = 0;

  /// Warm-start hook: construct from a precomputed row-major time matrix
  /// and construction order (the DeltaEvaluator's patched anchor). Only
  /// the greedy backend supports it — constrained schedulers derive their
  /// event order from power/hierarchy state, so a cached sort buys
  /// nothing; callers fall back to construct() when false.
  virtual bool supports_prepared() const { return false; }
  virtual Schedule construct_prepared(int num_cores, int num_buses,
                                      const std::vector<std::int64_t>& time,
                                      const std::vector<int>& order,
                                      const CostFn& cost) const;

  /// True iff the admissible makespan lower bound over `time` (row-major
  /// [core*num_buses + bus]) exceeds `threshold`. Every scenario shares
  /// the unconstrained bound (sched/makespan_bound_exceeds): power stalls,
  /// hierarchy exclusion and preemption only ever ADD time over the
  /// unconstrained packing, so a bound no unconstrained schedule beats is
  /// admissible for every constrained one too — pruning on it stays
  /// exact. Virtual so a future scenario-specific tighter bound can slot
  /// in without touching the search.
  virtual bool bound_exceeds(int num_cores, int num_buses,
                             const std::vector<std::int64_t>& time,
                             std::int64_t threshold, bool capacity_bound) const;
};

/// Backend for one scenario cell. `hierarchy` is copied into hierarchical
/// backends (and ignored otherwise); it must already be validated or
/// validatable — construction validates hierarchical scenarios eagerly.
std::unique_ptr<SchedulerBackend> make_scheduler_backend(
    const ScenarioSpec& scenario, const HierarchySpec& hierarchy);

}  // namespace soctest
