// ScenarioSpec: one cell of the constraint-rich scheduling matrix — power
// cap x preemption x hierarchy x TAM width. The default-constructed spec is
// the paper's unconstrained greedy schedule; every layer that fingerprints,
// serializes or reports a scenario only does so when it is non-default, so
// pre-scenario artifacts (goldens, checkpoints, session keys, JSON reports)
// stay byte-identical.
//
// Grammar (strict; parse errors throw std::invalid_argument):
//   scenario  := "default" | token ("," token)*
//   token     := "cap=" DOUBLE | "preempt" | "hier" | "w=" INT
// Duplicate tokens, unknown tokens, trailing garbage and non-positive
// values are rejected. `preempt` without a power cap is accepted but
// schedules exactly like the non-preemptive scenario (there is nothing to
// preempt for); the differential tests pin that equivalence.
//
// Sweep grammar (axis lists crossed into a deterministic matrix):
//   sweep := axis (";" axis)*
//   axis  := "cap=" DOUBLE ("," DOUBLE)* | "preempt=" BOOL ("," BOOL)*
//          | "hier=" BOOL ("," BOOL)*    | "w=" INT ("," INT)*
// Cells enumerate with cap outermost, then preempt, then hier, then w —
// independent of the order axes appear in the spec.
#pragma once

#include <string>
#include <vector>

namespace soctest {

struct ScenarioSpec {
  /// Peak concurrent test power cap in model milliwatts; 0 = unlimited.
  double power_cap_mw = 0.0;
  /// Allow a core's test to be split into segments (resuming on the same
  /// bus) when the power budget is needed elsewhere. Meaningless without a
  /// power cap — the schedulers treat preempt-without-cap as non-preemptive.
  bool preemptive = false;
  /// Enforce ancestor/descendant mutual exclusion from the SOC's core
  /// hierarchy (hier/hierarchy.hpp).
  bool hierarchical = false;
  /// TAM width override for sweep cells; 0 = inherit the driver's width.
  /// Never part of scenario identity (fingerprints key the width itself).
  int width = 0;

  bool is_default() const {
    return power_cap_mw == 0.0 && !preemptive && !hierarchical && width == 0;
  }

  /// True when the schedule this scenario produces can differ from the
  /// plain greedy one (the warm-start/byte-identity gate).
  bool constrains_schedule() const {
    return power_cap_mw > 0.0 || hierarchical;
  }

  /// Canonical form: "default", or the defining tokens joined with commas
  /// ("cap=20,preempt", "hier,w=24", ...). parse_scenario round-trips it.
  std::string to_string() const;

  friend bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) {
    return a.power_cap_mw == b.power_cap_mw && a.preemptive == b.preemptive &&
           a.hierarchical == b.hierarchical && a.width == b.width;
  }
  friend bool operator!=(const ScenarioSpec& a, const ScenarioSpec& b) {
    return !(a == b);
  }
};

/// Strict parse of the scenario grammar above.
ScenarioSpec parse_scenario(const std::string& spec);

/// Strict parse of the sweep grammar; returns the cross product in the
/// documented deterministic order. Never empty on success.
std::vector<ScenarioSpec> parse_scenario_sweep(const std::string& spec);

}  // namespace soctest
