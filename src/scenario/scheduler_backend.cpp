#include "scenario/scheduler_backend.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "hier/hier_scheduler.hpp"
#include "scenario/constrained_scheduler.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/preemptive_scheduler.hpp"

namespace soctest {
namespace {

Schedule from_segments(SegmentedSchedule seg) {
  Schedule s;
  s.entries = std::move(seg.segments);
  s.bus_finish = std::move(seg.bus_finish);
  s.total_volume_bits = seg.total_volume_bits;
  return s;
}

PowerScheduleOptions power_options(double cap) {
  PowerScheduleOptions popts;
  popts.power_budget = cap;
  return popts;
}

class GreedyBackend final : public SchedulerBackend {
 public:
  const char* name() const override { return "greedy"; }
  bool allows_gaps() const override { return false; }
  Schedule construct(int num_cores, int num_buses, const CostFn& cost,
                     const PowerFn&,
                     const std::vector<std::int64_t>& ref_time) const override {
    return greedy_schedule(num_cores, num_buses, cost, ref_time);
  }
  bool supports_prepared() const override { return true; }
  Schedule construct_prepared(
      int num_cores, int num_buses, const std::vector<std::int64_t>& time,
      const std::vector<int>& order, const CostFn& cost) const override {
    return greedy_schedule_prepared(num_cores, num_buses, time, order, cost,
                                    GreedyOptions{});
  }
};

class PowerBackend final : public SchedulerBackend {
 public:
  explicit PowerBackend(double cap) : cap_(cap) {}
  const char* name() const override { return "power"; }
  bool needs_power() const override { return true; }
  Schedule construct(int num_cores, int num_buses, const CostFn& cost,
                     const PowerFn& power,
                     const std::vector<std::int64_t>& ref_time) const override {
    return power_schedule(num_cores, num_buses, cost, power, ref_time,
                          power_options(cap_));
  }

 private:
  double cap_;
};

class PreemptiveBackend final : public SchedulerBackend {
 public:
  explicit PreemptiveBackend(double cap) : cap_(cap) {}
  const char* name() const override { return "preemptive"; }
  bool needs_power() const override { return true; }
  Schedule construct(int num_cores, int num_buses, const CostFn& cost,
                     const PowerFn& power,
                     const std::vector<std::int64_t>& ref_time) const override {
    return from_segments(preemptive_power_schedule(
        num_cores, num_buses, cost, power, ref_time, power_options(cap_)));
  }

 private:
  double cap_;
};

class HierBackend final : public SchedulerBackend {
 public:
  explicit HierBackend(HierarchySpec hierarchy)
      : hierarchy_(std::move(hierarchy)) {}
  const char* name() const override { return "hier"; }
  Schedule construct(int num_cores, int num_buses, const CostFn& cost,
                     const PowerFn&,
                     const std::vector<std::int64_t>& ref_time) const override {
    return hierarchical_schedule(num_cores, num_buses, cost, ref_time,
                                 hierarchy_);
  }

 private:
  HierarchySpec hierarchy_;
};

class HierPowerBackend final : public SchedulerBackend {
 public:
  HierPowerBackend(double cap, HierarchySpec hierarchy)
      : cap_(cap), hierarchy_(std::move(hierarchy)) {}
  const char* name() const override { return "hier-power"; }
  bool needs_power() const override { return true; }
  Schedule construct(int num_cores, int num_buses, const CostFn& cost,
                     const PowerFn& power,
                     const std::vector<std::int64_t>& ref_time) const override {
    return constrained_schedule(num_cores, num_buses, cost, power, ref_time,
                                power_options(cap_), hierarchy_);
  }

 private:
  double cap_;
  HierarchySpec hierarchy_;
};

class HierPreemptiveBackend final : public SchedulerBackend {
 public:
  HierPreemptiveBackend(double cap, HierarchySpec hierarchy)
      : cap_(cap), hierarchy_(std::move(hierarchy)) {}
  const char* name() const override { return "hier-preemptive"; }
  bool needs_power() const override { return true; }
  Schedule construct(int num_cores, int num_buses, const CostFn& cost,
                     const PowerFn& power,
                     const std::vector<std::int64_t>& ref_time) const override {
    return from_segments(preemptive_constrained_schedule(
        num_cores, num_buses, cost, power, ref_time, power_options(cap_),
        hierarchy_));
  }

 private:
  double cap_;
  HierarchySpec hierarchy_;
};

}  // namespace

Schedule SchedulerBackend::construct_prepared(
    int, int, const std::vector<std::int64_t>&, const std::vector<int>&,
    const CostFn&) const {
  throw std::logic_error(std::string("SchedulerBackend '") + name() +
                         "' has no prepared entry point");
}

bool SchedulerBackend::bound_exceeds(int num_cores, int num_buses,
                                     const std::vector<std::int64_t>& time,
                                     std::int64_t threshold,
                                     bool capacity_bound) const {
  return makespan_bound_exceeds(num_cores, num_buses, time, threshold,
                                capacity_bound);
}

std::unique_ptr<SchedulerBackend> make_scheduler_backend(
    const ScenarioSpec& scenario, const HierarchySpec& hierarchy) {
  const double cap = scenario.power_cap_mw;
  if (scenario.hierarchical) {
    hierarchy.validate();
    if (cap > 0.0) {
      if (scenario.preemptive)
        return std::make_unique<HierPreemptiveBackend>(cap, hierarchy);
      return std::make_unique<HierPowerBackend>(cap, hierarchy);
    }
    return std::make_unique<HierBackend>(hierarchy);
  }
  if (cap > 0.0) {
    if (scenario.preemptive) return std::make_unique<PreemptiveBackend>(cap);
    return std::make_unique<PowerBackend>(cap);
  }
  return std::make_unique<GreedyBackend>();
}

}  // namespace soctest
