// Combined-constraint scheduling: power cap AND hierarchy exclusion in one
// event-driven scheduler, for the scenario matrix cells no single seed
// scheduler covers. Both variants follow sched/power_scheduler's model —
// at every completion event idle buses pick the longest remaining core —
// extended with the hier/ rule that a core may not run while any
// ancestor/descendant is active. Deadlock-free: whenever nothing is
// active, the first unscheduled core always fits (per-core power
// feasibility is checked up front, and no conflict can be active).
#pragma once

#include <cstdint>
#include <vector>

#include "hier/hierarchy.hpp"
#include "sched/power_scheduler.hpp"
#include "sched/preemptive_scheduler.hpp"
#include "sched/schedule.hpp"

namespace soctest {

/// Non-preemptive: like power_schedule, but an idle bus additionally skips
/// cores whose lineage is busy. Validates with allow_gaps = true and
/// passes validate_hierarchy_exclusion. Throws std::runtime_error when a
/// core alone exceeds the budget.
Schedule constrained_schedule(int num_cores, int num_buses, const CostFn& cost,
                              const PowerFn& power,
                              const std::vector<std::int64_t>& ref_time,
                              const PowerScheduleOptions& opts,
                              const HierarchySpec& hierarchy);

/// Preemptive: like preemptive_power_schedule (segments, same-bus
/// resumption), but the active set never contains two conflicting cores.
SegmentedSchedule preemptive_constrained_schedule(
    int num_cores, int num_buses, const CostFn& cost, const PowerFn& power,
    const std::vector<std::int64_t>& ref_time,
    const PowerScheduleOptions& opts, const HierarchySpec& hierarchy);

}  // namespace soctest
