// Small integer/bit helpers shared across the library.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace soctest {

/// Ceiling of a/b for non-negative integers, b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  assert(b > 0 && a >= 0);
  return (a + b - 1) / b;
}

/// Smallest k such that 2^k >= n (n >= 1). ceil_log2(1) == 0.
constexpr int ceil_log2(std::uint64_t n) {
  assert(n >= 1);
  return n <= 1 ? 0 : 64 - std::countl_zero(n - 1);
}

/// Codeword width of the selective-encoding scheme for m wrapper chains:
/// w = ceil(log2(m + 1)) + 2  (the paper's formula; the +1 makes room for
/// the END-of-slice index m, the +2 for the opcode bits).
constexpr int codeword_width_for_chains(int m) {
  assert(m >= 1);
  return ceil_log2(static_cast<std::uint64_t>(m) + 1) + 2;
}

/// Operand width k = w - 2 = ceil(log2(m + 1)).
constexpr int operand_width_for_chains(int m) {
  return codeword_width_for_chains(m) - 2;
}

/// Largest m whose codewords fit in width w, i.e. max m with
/// ceil(log2(m+1)) <= w - 2. Returns 0 if w < 3 (no m fits).
constexpr int max_chains_for_width(int w) {
  if (w < 3) return 0;
  const int k = w - 2;
  if (k >= 31) return (1 << 30);  // practical cap; callers clamp further
  return (1 << k) - 1;
}

/// Smallest m that *requires* width w (i.e. 2^(w-3) when w > 3, else 1).
constexpr int min_chains_for_width(int w) {
  if (w < 3) return 0;
  const int k = w - 2;
  return k == 1 ? 1 : (1 << (k - 1));
}

}  // namespace soctest
