#include "bitvec/bit_util.hpp"

// Header-only helpers; this TU exists so the target has a concrete object
// file and the header is compiled standalone at least once.
namespace soctest {
static_assert(ceil_log2(1) == 0);
static_assert(ceil_log2(2) == 1);
static_assert(ceil_log2(255) == 8);
static_assert(ceil_log2(256) == 8);
static_assert(ceil_log2(257) == 9);
static_assert(codeword_width_for_chains(255) == 10);
static_assert(codeword_width_for_chains(128) == 10);
static_assert(codeword_width_for_chains(127) == 9);
static_assert(max_chains_for_width(10) == 255);
static_assert(min_chains_for_width(10) == 128);
}  // namespace soctest
