#include "bitvec/slice_kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(SOCTEST_HAVE_AVX2_KERNELS)
#include <immintrin.h>
#endif

namespace soctest::kernels {

// --- scalar reference ------------------------------------------------------

SliceCounts slice_count_scalar(const std::uint64_t* care,
                               const std::uint64_t* value, std::size_t words) {
  SliceCounts r;
  for (std::size_t i = 0; i < words; ++i) {
    r.care += std::popcount(care[i]);
    r.ones += std::popcount(care[i] & value[i]);
  }
  return r;
}

std::int64_t popcount_scalar(const std::uint64_t* w, std::size_t words) {
  std::int64_t n = 0;
  for (std::size_t i = 0; i < words; ++i) n += std::popcount(w[i]);
  return n;
}

// --- AVX2 path -------------------------------------------------------------

#if defined(SOCTEST_HAVE_AVX2_KERNELS)
namespace {

// Per-64-bit-lane popcount of a 256-bit vector via the nibble lookup trick
// (vpshufb LUT + vpsadbw byte reduction).
__attribute__((target("avx2"))) inline __m256i popcnt256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low));
  const __m256i hi = _mm256_shuffle_epi8(
      lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low));
  return _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::int64_t hsum64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

}  // namespace

__attribute__((target("avx2"))) SliceCounts slice_count_avx2(
    const std::uint64_t* care, const std::uint64_t* value, std::size_t words) {
  SliceCounts r;
  __m256i acc_care = _mm256_setzero_si256();
  __m256i acc_ones = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(care + i));
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(value + i));
    acc_care = _mm256_add_epi64(acc_care, popcnt256(c));
    acc_ones = _mm256_add_epi64(acc_ones, popcnt256(_mm256_and_si256(c, v)));
  }
  r.care = hsum64(acc_care);
  r.ones = hsum64(acc_ones);
  for (; i < words; ++i) {
    r.care += std::popcount(care[i]);
    r.ones += std::popcount(care[i] & value[i]);
  }
  return r;
}

__attribute__((target("avx2"))) std::int64_t popcount_avx2(
    const std::uint64_t* w, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4)
    acc = _mm256_add_epi64(
        acc,
        popcnt256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i))));
  std::int64_t n = hsum64(acc);
  for (; i < words; ++i) n += std::popcount(w[i]);
  return n;
}
#endif  // SOCTEST_HAVE_AVX2_KERNELS

// --- dispatch --------------------------------------------------------------

bool avx2_supported() {
#if defined(SOCTEST_HAVE_AVX2_KERNELS)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

namespace {

SimdMode resolve_from_env() {
  const char* env = std::getenv("SOCTEST_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 ||
      std::strcmp(env, "") == 0)
    return avx2_supported() ? SimdMode::Avx2 : SimdMode::Scalar;
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "off") == 0)
    return SimdMode::Scalar;
  if (std::strcmp(env, "avx2") == 0 || std::strcmp(env, "1") == 0 ||
      std::strcmp(env, "on") == 0) {
    if (avx2_supported()) return SimdMode::Avx2;
    std::fprintf(stderr,
                 "soctest: SOCTEST_SIMD=%s requested but AVX2 is unavailable; "
                 "using scalar kernels\n",
                 env);
    return SimdMode::Scalar;
  }
  std::fprintf(stderr,
               "soctest: ignoring unrecognized SOCTEST_SIMD value \"%s\" "
               "(want scalar|avx2|auto)\n",
               env);
  return avx2_supported() ? SimdMode::Avx2 : SimdMode::Scalar;
}

// Relaxed atomics: set_mode() may race with reads from pool workers in
// benches; any interleaving yields one of the two valid modes and both
// produce identical results.
std::atomic<SimdMode>& mode_cell() {
  static std::atomic<SimdMode> mode{resolve_from_env()};
  return mode;
}

}  // namespace

SimdMode active_mode() {
  return mode_cell().load(std::memory_order_relaxed);
}

SimdMode set_mode(SimdMode mode) {
  if (mode == SimdMode::Avx2 && !avx2_supported()) mode = SimdMode::Scalar;
  mode_cell().store(mode, std::memory_order_relaxed);
  return mode;
}

const char* mode_name(SimdMode mode) {
  return mode == SimdMode::Avx2 ? "avx2" : "scalar";
}

SliceCounts slice_count(const std::uint64_t* care, const std::uint64_t* value,
                        std::size_t words) {
#if defined(SOCTEST_HAVE_AVX2_KERNELS)
  if (active_mode() == SimdMode::Avx2)
    return slice_count_avx2(care, value, words);
#endif
  return slice_count_scalar(care, value, words);
}

std::int64_t popcount_words(const std::uint64_t* w, std::size_t words) {
#if defined(SOCTEST_HAVE_AVX2_KERNELS)
  if (active_mode() == SimdMode::Avx2) return popcount_avx2(w, words);
#endif
  return popcount_scalar(w, words);
}

}  // namespace soctest::kernels
