// TernaryVector: a fixed-length vector of three-valued test-data symbols
// {0, 1, X}. Stored as two packed bit planes (care, value) so that slice
// analysis (count care bits, count 1s among care bits) is word-parallel.
//
// Invariant (load-bearing for the word-parallel kernels in
// bitvec/slice_kernels.hpp): in the last word of each plane, every bit at a
// position >= size() is zero. All mutating operations preserve it; the
// counting kernels would silently overcount otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace soctest {

/// One test-data symbol: logic 0, logic 1, or don't-care.
enum class Trit : std::uint8_t { Zero = 0, One = 1, X = 2 };

char to_char(Trit t);
Trit trit_from_char(char c);

class TernaryVector {
 public:
  TernaryVector() = default;
  /// Constructs a vector of `size` symbols, all X.
  explicit TernaryVector(std::size_t size);
  /// Parses a string of '0', '1', 'X'/'x'/'-' characters. Throws
  /// std::invalid_argument naming the offending character and position on
  /// anything else.
  static TernaryVector from_string(const std::string& s);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Trit get(std::size_t i) const;
  void set(std::size_t i, Trit t);

  /// True if position i holds 0 or 1 (not X).
  bool is_care(std::size_t i) const;

  /// Number of positions holding 0 or 1.
  std::size_t count_care() const;
  /// Number of positions holding exactly `t` (X counts X positions).
  std::size_t count(Trit t) const;

  /// Sets every X position to the given binary value (the codec's "fill").
  void fill_x_with(bool value);

  /// Appends one symbol.
  void push_back(Trit t);

  /// Grows (new positions are X) or shrinks the vector. Shrinking clears
  /// the dropped positions so the padding invariant holds.
  void resize(std::size_t new_size);

  std::string to_string() const;

  friend bool operator==(const TernaryVector& a, const TernaryVector& b);

  /// Two vectors are *compatible* if they agree on every position where both
  /// are care bits. (Used by merging/validation utilities.)
  bool compatible_with(const TernaryVector& other) const;

  /// Absorbs `other`'s care bits into this vector. Precondition: compatible
  /// (asserted); positions keep their value where both specify.
  void merge_with(const TernaryVector& other);

  /// True if every care bit of this vector is specified with the same value
  /// in `other` (i.e. `other` refines/covers this vector).
  bool covered_by(const TernaryVector& other) const;

  // Packed-plane access for the word-parallel kernels
  // (bitvec/slice_kernels.hpp). Bit i of word i/64 is position i; bits past
  // size() in the last word are guaranteed zero.
  std::size_t num_words() const { return care_.size(); }
  const std::uint64_t* care_words() const { return care_.data(); }
  const std::uint64_t* value_words() const { return value_.data(); }

 private:
  static constexpr std::size_t kWordBits = 64;

  /// Re-zeroes both planes' bits past size_ in the last word.
  void clear_tail();
  /// Debug-only invariant probe: no plane bit set at positions >= size_.
  bool tail_is_clear() const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> care_;   // bit set => position is 0/1
  std::vector<std::uint64_t> value_;  // meaningful only where care bit set
};

}  // namespace soctest
