// Word-parallel counting kernels over the packed dual-plane (care, value)
// representation of TernaryVector (DESIGN.md Section 12).
//
// Every kernel exists twice:
//   *_scalar   portable word-at-a-time reference using std::popcount —
//              always built, the pinned oracle for the SIMD path;
//   *_avx2     AVX2 nibble-LUT popcount path (x86-64 gcc/clang only),
//              compiled with a per-function target attribute so the rest of
//              the library keeps the baseline ISA.
//
// Dispatch is resolved once per process from the SOCTEST_SIMD environment
// variable ("scalar"/"0"/"off", "avx2"/"1"/"on", "auto"/unset) plus a CPUID
// probe; tests and benches can override it in-process with set_mode(). Both
// paths are integer-exact, so forced-scalar and forced-AVX2 runs must be
// bit-identical — the differential suites and bench/exp_kernels enforce it.
//
// All kernels assume the caller upholds the padding-bit invariant: bits at
// positions >= the logical size in the last word of each plane are zero
// (TernaryVector maintains this; see ternary_vector.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

namespace soctest::kernels {

/// Fused per-slice statistics: care = popcount(care plane),
/// ones = popcount(care & value).
struct SliceCounts {
  std::int64_t care = 0;
  std::int64_t ones = 0;

  friend bool operator==(const SliceCounts&, const SliceCounts&) = default;
};

enum class SimdMode : int { Scalar = 0, Avx2 = 1 };

/// True if this build carries the AVX2 kernels and the CPU reports AVX2.
bool avx2_supported();

/// The dispatch mode in effect (env + CPUID resolved on first use).
SimdMode active_mode();
/// Overrides dispatch for this process (tests/benches). Requesting Avx2 on
/// a machine without it silently stays Scalar; returns the mode in effect.
SimdMode set_mode(SimdMode mode);
const char* mode_name(SimdMode mode);

// --- scalar reference kernels (always built) -------------------------------

SliceCounts slice_count_scalar(const std::uint64_t* care,
                               const std::uint64_t* value, std::size_t words);
std::int64_t popcount_scalar(const std::uint64_t* w, std::size_t words);

// --- AVX2 kernels (present only when the build supports them; calling them
// --- on a CPU without AVX2 is undefined — go through the dispatched entry
// --- points below unless you probed avx2_supported() yourself) -------------

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SOCTEST_HAVE_AVX2_KERNELS 1
SliceCounts slice_count_avx2(const std::uint64_t* care,
                             const std::uint64_t* value, std::size_t words);
std::int64_t popcount_avx2(const std::uint64_t* w, std::size_t words);
#endif

// --- dispatched entry points ----------------------------------------------

SliceCounts slice_count(const std::uint64_t* care, const std::uint64_t* value,
                        std::size_t words);
std::int64_t popcount_words(const std::uint64_t* w, std::size_t words);

/// Extracts `len` (1..64) bits starting at bit `start` from a packed word
/// array (little-endian bit order, matching TernaryVector's planes). The
/// caller guarantees the range lies within the array.
inline std::uint64_t extract_bits(const std::uint64_t* w, std::size_t start,
                                  int len) {
  const std::size_t word = start >> 6;
  const unsigned shift = static_cast<unsigned>(start & 63);
  std::uint64_t bits = w[word] >> shift;
  if (shift != 0 && shift + static_cast<unsigned>(len) > 64)
    bits |= w[word + 1] << (64 - shift);
  if (len < 64) bits &= (std::uint64_t{1} << len) - 1;
  return bits;
}

}  // namespace soctest::kernels
