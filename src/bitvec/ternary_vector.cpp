#include "bitvec/ternary_vector.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "bitvec/bit_util.hpp"

namespace soctest {

char to_char(Trit t) {
  switch (t) {
    case Trit::Zero: return '0';
    case Trit::One: return '1';
    case Trit::X: return 'X';
  }
  return '?';
}

Trit trit_from_char(char c) {
  switch (c) {
    case '0': return Trit::Zero;
    case '1': return Trit::One;
    case 'X':
    case 'x':
    case '-': return Trit::X;
    default: throw std::invalid_argument("trit_from_char: bad symbol");
  }
}

TernaryVector::TernaryVector(std::size_t size)
    : size_(size),
      care_(ceil_div(static_cast<std::int64_t>(size), kWordBits), 0),
      value_(care_.size(), 0) {}

TernaryVector TernaryVector::from_string(const std::string& s) {
  TernaryVector v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) v.set(i, trit_from_char(s[i]));
  return v;
}

Trit TernaryVector::get(std::size_t i) const {
  assert(i < size_);
  const std::size_t word = i / kWordBits;
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (!(care_[word] & mask)) return Trit::X;
  return (value_[word] & mask) ? Trit::One : Trit::Zero;
}

void TernaryVector::set(std::size_t i, Trit t) {
  assert(i < size_);
  const std::size_t word = i / kWordBits;
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (t == Trit::X) {
    care_[word] &= ~mask;
    value_[word] &= ~mask;
  } else {
    care_[word] |= mask;
    if (t == Trit::One)
      value_[word] |= mask;
    else
      value_[word] &= ~mask;
  }
}

bool TernaryVector::is_care(std::size_t i) const {
  assert(i < size_);
  return (care_[i / kWordBits] >> (i % kWordBits)) & 1;
}

std::size_t TernaryVector::count_care() const {
  std::size_t n = 0;
  for (std::uint64_t w : care_) n += std::popcount(w);
  return n;
}

std::size_t TernaryVector::count(Trit t) const {
  std::size_t n = 0;
  for (std::size_t w = 0; w < care_.size(); ++w) {
    switch (t) {
      case Trit::One: n += std::popcount(care_[w] & value_[w]); break;
      case Trit::Zero: n += std::popcount(care_[w] & ~value_[w]); break;
      case Trit::X: n += std::popcount(~care_[w]); break;
    }
  }
  if (t == Trit::X) {
    // ~care_ counts the unused tail bits of the last word too; subtract.
    const std::size_t capacity = care_.size() * kWordBits;
    n -= capacity - size_;
  }
  return n;
}

void TernaryVector::fill_x_with(bool value) {
  for (std::size_t w = 0; w < care_.size(); ++w) {
    if (value)
      value_[w] |= ~care_[w];
    else
      value_[w] &= care_[w];
    care_[w] = ~std::uint64_t{0};
  }
  // Re-clear the tail beyond size_ so equality/compat stay well-defined.
  const std::size_t tail = size_ % kWordBits;
  if (!care_.empty() && tail != 0) {
    const std::uint64_t keep = (std::uint64_t{1} << tail) - 1;
    care_.back() &= keep;
    value_.back() &= keep;
  }
}

void TernaryVector::push_back(Trit t) {
  if (size_ % kWordBits == 0) {
    care_.push_back(0);
    value_.push_back(0);
  }
  ++size_;
  set(size_ - 1, t);
}

std::string TernaryVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(to_char(get(i)));
  return s;
}

bool operator==(const TernaryVector& a, const TernaryVector& b) {
  return a.size_ == b.size_ && a.care_ == b.care_ && a.value_ == b.value_;
}

bool TernaryVector::compatible_with(const TernaryVector& other) const {
  if (size_ != other.size_) return false;
  for (std::size_t w = 0; w < care_.size(); ++w) {
    const std::uint64_t both = care_[w] & other.care_[w];
    if ((value_[w] ^ other.value_[w]) & both) return false;
  }
  return true;
}

bool TernaryVector::covered_by(const TernaryVector& other) const {
  if (size_ != other.size_) return false;
  for (std::size_t w = 0; w < care_.size(); ++w) {
    if (care_[w] & ~other.care_[w]) return false;  // unspecified in other
    if ((value_[w] ^ other.value_[w]) & care_[w]) return false;
  }
  return true;
}

void TernaryVector::merge_with(const TernaryVector& other) {
  assert(compatible_with(other));
  for (std::size_t w = 0; w < care_.size(); ++w) {
    // Take other's value wherever only it specifies the position.
    const std::uint64_t only_other = other.care_[w] & ~care_[w];
    value_[w] = (value_[w] & ~only_other) | (other.value_[w] & only_other);
    care_[w] |= other.care_[w];
  }
}

}  // namespace soctest
