#include "bitvec/ternary_vector.hpp"

#include <cassert>
#include <stdexcept>

#include "bitvec/bit_util.hpp"
#include "bitvec/slice_kernels.hpp"

namespace soctest {

char to_char(Trit t) {
  switch (t) {
    case Trit::Zero: return '0';
    case Trit::One: return '1';
    case Trit::X: return 'X';
  }
  return '?';
}

Trit trit_from_char(char c) {
  switch (c) {
    case '0': return Trit::Zero;
    case '1': return Trit::One;
    case 'X':
    case 'x':
    case '-': return Trit::X;
    default: throw std::invalid_argument("trit_from_char: bad symbol");
  }
}

TernaryVector::TernaryVector(std::size_t size)
    : size_(size),
      care_(ceil_div(static_cast<std::int64_t>(size), kWordBits), 0),
      value_(care_.size(), 0) {}

TernaryVector TernaryVector::from_string(const std::string& s) {
  TernaryVector v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    switch (s[i]) {
      case '0': v.set(i, Trit::Zero); break;
      case '1': v.set(i, Trit::One); break;
      case 'X':
      case 'x':
      case '-': break;  // already X
      default:
        throw std::invalid_argument(
            "TernaryVector::from_string: invalid character '" +
            std::string(1, s[i]) + "' at position " + std::to_string(i) +
            " (expected 0, 1, X, x or -)");
    }
  }
  return v;
}

Trit TernaryVector::get(std::size_t i) const {
  assert(i < size_);
  const std::size_t word = i / kWordBits;
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (!(care_[word] & mask)) return Trit::X;
  return (value_[word] & mask) ? Trit::One : Trit::Zero;
}

void TernaryVector::set(std::size_t i, Trit t) {
  assert(i < size_);
  const std::size_t word = i / kWordBits;
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (t == Trit::X) {
    care_[word] &= ~mask;
    value_[word] &= ~mask;
  } else {
    care_[word] |= mask;
    if (t == Trit::One)
      value_[word] |= mask;
    else
      value_[word] &= ~mask;
  }
}

bool TernaryVector::is_care(std::size_t i) const {
  assert(i < size_);
  return (care_[i / kWordBits] >> (i % kWordBits)) & 1;
}

std::size_t TernaryVector::count_care() const {
  assert(tail_is_clear());
  return static_cast<std::size_t>(
      kernels::popcount_words(care_.data(), care_.size()));
}

std::size_t TernaryVector::count(Trit t) const {
  assert(tail_is_clear());
  const kernels::SliceCounts c =
      kernels::slice_count(care_.data(), value_.data(), care_.size());
  switch (t) {
    case Trit::One: return static_cast<std::size_t>(c.ones);
    case Trit::Zero: return static_cast<std::size_t>(c.care - c.ones);
    case Trit::X: return size_ - static_cast<std::size_t>(c.care);
  }
  return 0;
}

void TernaryVector::clear_tail() {
  const std::size_t tail = size_ % kWordBits;
  if (care_.empty() || tail == 0) return;
  const std::uint64_t keep = (std::uint64_t{1} << tail) - 1;
  care_.back() &= keep;
  value_.back() &= keep;
}

bool TernaryVector::tail_is_clear() const {
  if (care_.empty()) return true;
  const std::size_t tail = size_ % kWordBits;
  if (tail == 0) return true;
  const std::uint64_t pad = ~((std::uint64_t{1} << tail) - 1);
  return (care_.back() & pad) == 0 && (value_.back() & pad) == 0;
}

void TernaryVector::fill_x_with(bool value) {
  for (std::size_t w = 0; w < care_.size(); ++w) {
    if (value)
      value_[w] |= ~care_[w];
    else
      value_[w] &= care_[w];
    care_[w] = ~std::uint64_t{0};
  }
  clear_tail();
  assert(tail_is_clear());
}

void TernaryVector::push_back(Trit t) {
  if (size_ % kWordBits == 0) {
    care_.push_back(0);
    value_.push_back(0);
  }
  ++size_;
  set(size_ - 1, t);
  assert(tail_is_clear());
}

void TernaryVector::resize(std::size_t new_size) {
  const std::size_t new_words =
      static_cast<std::size_t>(ceil_div(static_cast<std::int64_t>(new_size),
                                        kWordBits));
  care_.resize(new_words, 0);
  value_.resize(new_words, 0);
  const bool shrinking = new_size < size_;
  size_ = new_size;
  // Shrinking strands bits of the old tail past the new size; growing only
  // exposes zeros (new positions read as X) because the invariant held.
  if (shrinking) clear_tail();
  assert(tail_is_clear());
}

std::string TernaryVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(to_char(get(i)));
  return s;
}

bool operator==(const TernaryVector& a, const TernaryVector& b) {
  return a.size_ == b.size_ && a.care_ == b.care_ && a.value_ == b.value_;
}

bool TernaryVector::compatible_with(const TernaryVector& other) const {
  if (size_ != other.size_) return false;
  for (std::size_t w = 0; w < care_.size(); ++w) {
    const std::uint64_t both = care_[w] & other.care_[w];
    if ((value_[w] ^ other.value_[w]) & both) return false;
  }
  return true;
}

bool TernaryVector::covered_by(const TernaryVector& other) const {
  if (size_ != other.size_) return false;
  for (std::size_t w = 0; w < care_.size(); ++w) {
    if (care_[w] & ~other.care_[w]) return false;  // unspecified in other
    if ((value_[w] ^ other.value_[w]) & care_[w]) return false;
  }
  return true;
}

void TernaryVector::merge_with(const TernaryVector& other) {
  assert(compatible_with(other));
  for (std::size_t w = 0; w < care_.size(); ++w) {
    // Take other's value wherever only it specifies the position.
    const std::uint64_t only_other = other.care_[w] & ~care_[w];
    value_[w] = (value_[w] & ~only_other) | (other.value_[w] & only_other);
    care_[w] |= other.care_[w];
  }
  // Defense in depth: if `other` ever arrived with dirty padding, absorbing
  // its planes verbatim would break the word-parallel counts here.
  clear_tail();
  assert(tail_is_clear());
}

}  // namespace soctest
