// Minimal recursive-descent JSON parser for the server's request protocol.
// The repository's reporters emit JSON by hand (src/report/json); this is
// the matching input side. It parses the full JSON grammar (objects,
// arrays, strings with escapes, numbers, true/false/null) into a small
// tree value. Numbers keep their raw lexeme alongside the double
// conversion so 64-bit integers (RNG seeds, cycle counts) round-trip
// without the 2^53 precision cliff.
//
// No third-party dependencies, same as the rest of the repo.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace soctest {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool bool_value = false;
  double number_value = 0.0;
  std::string number_lexeme;  // exact source text, Number only
  std::string string_value;
  std::vector<JsonValue> items;                                // Array
  std::vector<std::pair<std::string, JsonValue>> members;      // Object,
                                                               // source order
  bool is_null() const { return type == Type::Null; }
  bool is_bool() const { return type == Type::Bool; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool is_array() const { return type == Type::Array; }
  bool is_object() const { return type == Type::Object; }

  /// Member lookup (Object only); null when absent.
  const JsonValue* find(const std::string& key) const;

  // Checked accessors: throw std::runtime_error naming the expected type
  // (the server maps that to a bad_request protocol error).
  bool as_bool() const;
  std::string as_string() const;
  double as_double() const;
  /// Strict integer conversions off the raw lexeme: "3.5", "1e3" and
  /// out-of-range values are errors, not truncations.
  std::int64_t as_int64() const;
  std::uint64_t as_uint64() const;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
/// Throws std::runtime_error with a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace soctest
