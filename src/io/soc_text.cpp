#include "io/soc_text.hpp"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "socgen/cube_synth.hpp"

namespace soctest {
namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("soc_text:" + std::to_string(line) + ": " + msg);
}

struct Tokenizer {
  std::istringstream ss;
  int line;
  explicit Tokenizer(const std::string& s, int ln) : ss(s), line(ln) {}

  bool next(std::string& tok) { return static_cast<bool>(ss >> tok); }
  std::string require(const std::string& what) {
    std::string tok;
    if (!next(tok)) fail(line, "expected " + what);
    return tok;
  }
  std::int64_t require_int(const std::string& what) {
    const std::string tok = require(what);
    try {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(tok, &pos);
      if (pos != tok.size()) throw std::invalid_argument("");
      return v;
    } catch (...) {
      fail(line, "bad integer for " + what + ": '" + tok + "'");
    }
  }
  double require_double(const std::string& what) {
    const std::string tok = require(what);
    try {
      std::size_t pos = 0;
      const double v = std::stod(tok, &pos);
      if (pos != tok.size()) throw std::invalid_argument("");
      return v;
    } catch (...) {
      fail(line, "bad number for " + what + ": '" + tok + "'");
    }
  }
};

}  // namespace

SocSpec read_soc_text(std::istream& in) {
  SocSpec soc;
  bool in_core = false;
  CoreUnderTest core;
  std::vector<std::vector<CareBit>> pending_cubes;
  bool synthetic = false;
  CubeSynthParams synth_params;
  std::uint64_t synth_seed = 0;

  const auto finish_core = [&](int line) {
    try {
    core.spec.validate();
    if (synthetic) {
      synth_params.num_cells = core.spec.stimulus_bits_per_pattern();
      synth_params.num_patterns = core.spec.num_patterns;
      core.cubes = synthesize_cubes(synth_params, synth_seed);
    } else {
      if (static_cast<int>(pending_cubes.size()) != core.spec.num_patterns)
        fail(line, "core " + core.spec.name + ": expected " +
                       std::to_string(core.spec.num_patterns) +
                       " cubes, got " + std::to_string(pending_cubes.size()));
      core.cubes = TestCubeSet(core.spec.stimulus_bits_per_pattern());
      for (auto& bits : pending_cubes) core.cubes.add_pattern(std::move(bits));
    }
    core.validate();
    soc.cores.push_back(std::move(core));
    core = CoreUnderTest{};
    pending_cubes.clear();
    synthetic = false;
    } catch (const std::runtime_error&) {
      throw;  // already carries a soc_text line message
    } catch (const std::exception& e) {
      fail(line, std::string("invalid core: ") + e.what());
    }
  };

  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    Tokenizer tok(raw, line);
    std::string kw;
    if (!tok.next(kw)) continue;

    if (kw == "soc") {
      soc.name = tok.require("soc name");
    } else if (kw == "gates") {
      soc.approx_gate_count = tok.require_int("gate count");
    } else if (kw == "latches") {
      soc.approx_latch_count = tok.require_int("latch count");
    } else if (kw == "hierarchy") {
      // One parent index per core, -1 = top level; count checked against
      // the core list by SocSpec::validate() once the file is read.
      if (!soc.hierarchy_parent.empty()) fail(line, "duplicate hierarchy");
      std::string t;
      while (tok.next(t)) {
        try {
          std::size_t pos = 0;
          const int p = std::stoi(t, &pos);
          if (pos != t.size()) throw std::invalid_argument("");
          soc.hierarchy_parent.push_back(p);
        } catch (...) {
          fail(line, "bad hierarchy parent '" + t + "'");
        }
      }
      if (soc.hierarchy_parent.empty())
        fail(line, "hierarchy needs one parent per core");
    } else if (kw == "core") {
      if (in_core) fail(line, "nested core (missing 'end'?)");
      in_core = true;
      core.spec.name = tok.require("core name");
    } else if (kw == "end") {
      if (!in_core) fail(line, "'end' outside core");
      finish_core(line);
      in_core = false;
    } else if (!in_core) {
      fail(line, "unknown top-level keyword '" + kw + "'");
    } else if (kw == "inputs") {
      core.spec.num_inputs = static_cast<int>(tok.require_int("inputs"));
    } else if (kw == "outputs") {
      core.spec.num_outputs = static_cast<int>(tok.require_int("outputs"));
    } else if (kw == "scanchains") {
      std::string t;
      while (tok.next(t)) {
        try {
          core.spec.scan_chain_lengths.push_back(std::stoi(t));
        } catch (...) {
          fail(line, "bad chain length '" + t + "'");
        }
      }
      if (core.spec.scan_chain_lengths.empty())
        fail(line, "scanchains needs at least one length");
    } else if (kw == "flexible") {
      core.spec.flexible_scan = true;
      core.spec.flexible_scan_cells = tok.require_int("cell count");
    } else if (kw == "patterns") {
      core.spec.num_patterns = static_cast<int>(tok.require_int("patterns"));
    } else if (kw == "power") {
      core.spec.power_scale = tok.require_double("power scale");
      if (!(core.spec.power_scale > 0.0))
        fail(line, "power scale must be positive");
    } else if (kw == "cube") {
      const std::string s = tok.require("ternary string");
      std::vector<CareBit> bits;
      for (std::size_t i = 0; i < s.size(); ++i) {
        Trit t;
        try {
          t = trit_from_char(s[i]);
        } catch (...) {
          fail(line, std::string("bad cube symbol '") + s[i] + "'");
        }
        if (t != Trit::X)
          bits.push_back({static_cast<std::uint32_t>(i), t == Trit::One});
      }
      if (static_cast<std::int64_t>(s.size()) !=
          core.spec.stimulus_bits_per_pattern())
        fail(line, "cube length " + std::to_string(s.size()) +
                       " != stimulus cells " +
                       std::to_string(core.spec.stimulus_bits_per_pattern()));
      pending_cubes.push_back(std::move(bits));
    } else if (kw == "sparse") {
      std::vector<CareBit> bits;
      std::string t;
      // Known only once the core geometry lines (inputs/scanchains) have
      // been seen — the format writes them before any cube, like `cube`'s
      // length check assumes.
      const std::int64_t cells = core.spec.stimulus_bits_per_pattern();
      while (tok.next(t)) {
        const std::size_t colon = t.find(':');
        if (colon == std::string::npos || colon + 2 != t.size() ||
            (t[colon + 1] != '0' && t[colon + 1] != '1'))
          fail(line, "bad sparse bit '" + t + "' (want cell:0 or cell:1)");
        // Strict unsigned parse + range check: on LP64 a blind
        // stoul-then-cast would wrap an index >= 2^32 onto a small valid
        // cell and corrupt the cube silently.
        std::uint64_t idx = 0;
        const auto [ptr, ec] =
            std::from_chars(t.data(), t.data() + colon, idx);
        if (ec != std::errc() || ptr != t.data() + colon)
          fail(line, "bad cell index in '" + t + "'");
        if (idx > std::numeric_limits<std::uint32_t>::max())
          fail(line, "cell index " + t.substr(0, colon) +
                         " exceeds the uint32 cell range");
        if (cells > 0 && static_cast<std::int64_t>(idx) >= cells)
          fail(line, "cell index " + t.substr(0, colon) + " >= " +
                         std::to_string(cells) + " stimulus cells");
        bits.push_back({static_cast<std::uint32_t>(idx), t[colon + 1] == '1'});
      }
      pending_cubes.push_back(std::move(bits));
    } else if (kw == "synthetic") {
      synthetic = true;
      synth_params.care_density = tok.require_double("density");
      synth_params.one_fraction = tok.require_double("one fraction");
      synth_seed = static_cast<std::uint64_t>(tok.require_int("seed"));
    } else {
      fail(line, "unknown core keyword '" + kw + "'");
    }
  }
  if (in_core) fail(line, "missing 'end' for core " + core.spec.name);
  soc.validate();
  return soc;
}

SocSpec read_soc_text_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("soc_text: cannot open " + path);
  return read_soc_text(f);
}

void write_soc_text(std::ostream& out, const SocSpec& soc) {
  out << "soc " << soc.name << "\n";
  if (soc.approx_gate_count) out << "gates " << soc.approx_gate_count << "\n";
  if (soc.approx_latch_count)
    out << "latches " << soc.approx_latch_count << "\n";
  if (!soc.hierarchy_parent.empty()) {
    out << "hierarchy";
    for (int p : soc.hierarchy_parent) out << " " << p;
    out << "\n";
  }
  for (const CoreUnderTest& c : soc.cores) {
    out << "core " << c.spec.name << "\n";
    out << "  inputs " << c.spec.num_inputs << "\n";
    out << "  outputs " << c.spec.num_outputs << "\n";
    if (c.spec.flexible_scan) {
      out << "  flexible " << c.spec.flexible_scan_cells << "\n";
    } else if (!c.spec.scan_chain_lengths.empty()) {
      out << "  scanchains";
      for (int len : c.spec.scan_chain_lengths) out << " " << len;
      out << "\n";
    }
    if (c.spec.power_scale != 1.0) {
      // Shortest round-trip form: the distributed workers rebuild the SOC
      // from this text, and the power profile feeds scheduling decisions,
      // so the serialized scale must recover the exact double.
      char buf[64];
      const auto res =
          std::to_chars(buf, buf + sizeof(buf), c.spec.power_scale);
      out << "  power " << std::string(buf, res.ptr) << "\n";
    }
    out << "  patterns " << c.spec.num_patterns << "\n";
    for (int p = 0; p < c.cubes.num_patterns(); ++p) {
      out << "  sparse";
      for (const CareBit& b : c.cubes.pattern(p))
        out << " " << b.cell << ":" << (b.value ? 1 : 0);
      out << "\n";
    }
    out << "end\n";
  }
}

void write_soc_text_file(const std::string& path, const SocSpec& soc) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("soc_text: cannot open " + path);
  write_soc_text(f, soc);
  if (!f) throw std::runtime_error("soc_text: write failed for " + path);
}

}  // namespace soctest
