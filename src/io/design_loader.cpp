#include "io/design_loader.hpp"

#include <cstdlib>
#include <stdexcept>

#include "io/soc_text.hpp"
#include "socgen/d2758.hpp"
#include "socgen/d695.hpp"
#include "socgen/synthetic.hpp"
#include "socgen/systems.hpp"

namespace soctest {

SocSpec load_design(const std::string& name) {
  if (name == "d695") return make_d695();
  if (name == "d2758") return make_d2758();
  if (name == "fig4") return make_fig4_soc();
  for (int i = 1; i <= 4; ++i)
    if (name == "System" + std::to_string(i)) return make_system(i);
  if (name.rfind("synth:", 0) == 0) {
    const auto bad = [&name]() {
      throw std::invalid_argument(
          "bad design '" + name +
          "': expected synth:<cores>[:<seed>] with <cores> >= 1 and <seed> "
          "unsigned decimal");
    };
    const char* s = name.c_str() + 6;
    char* end = nullptr;
    const long cores = std::strtol(s, &end, 10);
    if (*s < '0' || *s > '9' || end == s || cores < 1) bad();
    std::uint64_t seed = 1;
    if (*end == ':') {
      const char* s2 = end + 1;
      seed = std::strtoull(s2, &end, 10);
      if (*s2 < '0' || *s2 > '9' || end == s2) bad();
    }
    if (*end != '\0') bad();
    SyntheticSocParams p;
    p.num_cores = static_cast<int>(cores);
    return make_synthetic_soc(p, seed);
  }
  // Otherwise treat as a file path.
  return read_soc_text_file(name);
}

}  // namespace soctest
