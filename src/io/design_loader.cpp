#include "io/design_loader.hpp"

#include <cstdlib>
#include <stdexcept>

#include "io/soc_text.hpp"
#include "socgen/d2758.hpp"
#include "socgen/d695.hpp"
#include "socgen/synthetic.hpp"
#include "socgen/systems.hpp"

namespace soctest {

SocSpec load_design(const std::string& name) {
  if (name == "d695") return make_d695();
  if (name == "d2758") return make_d2758();
  if (name == "fig4") return make_fig4_soc();
  for (int i = 1; i <= 4; ++i)
    if (name == "System" + std::to_string(i)) return make_system(i);
  // synth:<cores>[:<seed>] — the plain scale-study generator;
  // synthx:<cores>[:<seed>] — the same cores decorated with a seeded
  // per-core power profile and a deterministic hierarchy (the
  // constraint-rich scenario workloads). Same strict grammar.
  const bool plain_synth = name.rfind("synth:", 0) == 0;
  const bool extended_synth = name.rfind("synthx:", 0) == 0;
  if (plain_synth || extended_synth) {
    const char* kind = extended_synth ? "synthx" : "synth";
    const auto bad = [&name, kind]() {
      throw std::invalid_argument(
          "bad design '" + name + "': expected " + kind +
          ":<cores>[:<seed>] with <cores> >= 1 and <seed> unsigned decimal");
    };
    const char* s = name.c_str() + (extended_synth ? 7 : 6);
    char* end = nullptr;
    const long cores = std::strtol(s, &end, 10);
    if (*s < '0' || *s > '9' || end == s || cores < 1) bad();
    std::uint64_t seed = 1;
    if (*end == ':') {
      const char* s2 = end + 1;
      seed = std::strtoull(s2, &end, 10);
      if (*s2 < '0' || *s2 > '9' || end == s2) bad();
    }
    if (*end != '\0') bad();
    SyntheticSocParams p;
    p.num_cores = static_cast<int>(cores);
    if (extended_synth) {
      p.power_profile = true;
      p.hierarchy = true;
    }
    return make_synthetic_soc(p, seed);
  }
  // Otherwise treat as a file path.
  return read_soc_text_file(name);
}

}  // namespace soctest
