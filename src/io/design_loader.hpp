// Shared design-name resolution for the CLI and the server.
//
// A design reference is one of:
//   d695 | d2758 | System1..System4 | fig4      built-in benchmarks
//   synth:<cores>[:<seed>]                      seeded synthetic generator
//   anything else                               path to a .soc text file
//
// The synth: grammar is strict — the whole token must be consumed, so
// "synth:120:7x" or "synth:12x0" raises instead of silently parsing a
// digit prefix. Malformed references throw std::invalid_argument (the CLI
// maps that to exit 2, the server to a bad_request protocol error);
// unreadable/malformed .soc files throw std::runtime_error from the text
// reader (exit 1 / internal error).
#pragma once

#include <string>

#include "dft/soc_spec.hpp"

namespace soctest {

SocSpec load_design(const std::string& name);

}  // namespace soctest
