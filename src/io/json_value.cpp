#include "io/json_value.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace soctest {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at byte " +
                             std::to_string(pos_));
  }

  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n]) ++n;
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return bool_value();
      case 'n':
        if (!literal("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.items.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::String;
    v.string_value = parse_string();
    return v;
  }

  JsonValue bool_value() {
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    if (literal("true")) {
      v.bool_value = true;
    } else if (literal("false")) {
      v.bool_value = false;
    } else {
      fail("bad literal");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("bad \\u escape");
      }
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: require the low half.
            if (take() != '\\' || take() != 'u') {
              --pos_;
              fail("unpaired surrogate");
            }
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9')
      fail("bad number");
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    if (s_[pos_] == '0')
      ++pos_;
    else
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9')
      fail("bad number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9')
        fail("bad number");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9')
        fail("bad number");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number_lexeme = s_.substr(start, pos_ - start);
    v.number_value = std::strtod(v.number_lexeme.c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json: expected ") + want);
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

bool JsonValue::as_bool() const {
  if (type != Type::Bool) type_error("a boolean");
  return bool_value;
}

std::string JsonValue::as_string() const {
  if (type != Type::String) type_error("a string");
  return string_value;
}

double JsonValue::as_double() const {
  if (type != Type::Number) type_error("a number");
  return number_value;
}

std::int64_t JsonValue::as_int64() const {
  if (type != Type::Number) type_error("an integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(number_lexeme.c_str(), &end, 10);
  if (errno == ERANGE || end == number_lexeme.c_str() || *end != '\0')
    type_error("a 64-bit integer");
  return v;
}

std::uint64_t JsonValue::as_uint64() const {
  if (type != Type::Number) type_error("an integer");
  if (!number_lexeme.empty() && number_lexeme[0] == '-')
    type_error("an unsigned integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(number_lexeme.c_str(), &end, 10);
  if (errno == ERANGE || end == number_lexeme.c_str() || *end != '\0')
    type_error("an unsigned 64-bit integer");
  return v;
}

JsonValue parse_json(const std::string& text) { return Parser(text).run(); }

}  // namespace soctest
