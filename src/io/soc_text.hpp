// Text-format reader/writer for SOC descriptions, inspired by the ITC'02
// SOC Test Benchmarks format the paper's d695 experiments use. Lets users
// define their own designs in files instead of C++.
//
// Format (line oriented, '#' comments):
//
//   soc <name>
//   gates <count>            # optional
//   latches <count>          # optional
//   core <name>
//     inputs <n>
//     outputs <n>
//     scanchains <len> <len> ...        # fixed-scan core
//     flexible <cells>                  # or: re-stitchable scan
//     patterns <n>
//     cube <ternary string>             # one full pattern, 0/1/X
//     sparse <cell>:<0|1> <cell>:<0|1>  # one pattern, care bits only
//     synthetic <density> <one_fraction> <seed>
//                                       # generate all patterns instead
//   end
//
// Each core supplies exactly `patterns` cubes via `cube`/`sparse` lines, or
// a single `synthetic` directive.
#pragma once

#include <iosfwd>
#include <string>

#include "dft/soc_spec.hpp"

namespace soctest {

/// Parses a SOC description. Throws std::runtime_error with a line number
/// on malformed input; the returned SOC is validate()d.
SocSpec read_soc_text(std::istream& in);
SocSpec read_soc_text_file(const std::string& path);

/// Writes `soc` in the same format (sparse cube lines). Round-trips through
/// read_soc_text() exactly.
void write_soc_text(std::ostream& out, const SocSpec& soc);
void write_soc_text_file(const std::string& path, const SocSpec& soc);

}  // namespace soctest
