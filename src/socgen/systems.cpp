#include "socgen/systems.hpp"

#include <stdexcept>

#include "socgen/d695.hpp"
#include "socgen/industrial.hpp"

namespace soctest {
namespace {

SocSpec compose(const std::string& name, std::int64_t gates,
                const std::vector<std::string>& core_names) {
  SocSpec soc;
  soc.name = name;
  soc.approx_gate_count = gates;
  for (const std::string& cn : core_names) {
    soc.cores.push_back(make_industrial_core(cn));
    soc.approx_latch_count += soc.cores.back().spec.total_scan_cells();
  }
  soc.validate();
  return soc;
}

}  // namespace

SocSpec make_system(int index) {
  switch (index) {
    case 1:
      return compose("System1", 7'130'000,
                     {"ckt-1", "ckt-2", "ckt-4", "ckt-7", "ckt-10", "ckt-14"});
    case 2:
      return compose("System2", 16'740'000,
                     {"ckt-3", "ckt-5", "ckt-6", "ckt-8", "ckt-11", "ckt-15",
                      "ckt-16"});
    case 3:
      return compose("System3", 21'500'000,
                     {"ckt-2", "ckt-6", "ckt-7", "ckt-9", "ckt-11", "ckt-12",
                      "ckt-15", "ckt-16"});
    case 4:
      return compose("System4", 24'580'000,
                     {"ckt-1", "ckt-3", "ckt-4", "ckt-5", "ckt-8", "ckt-9",
                      "ckt-10", "ckt-12", "ckt-13", "ckt-14"});
    default:
      throw std::invalid_argument("make_system: index must be 1..4");
  }
}

SocSpec make_fig4_soc() {
  return compose("fig4-design", 9'800'000,
                 {"ckt-1", "ckt-9", "ckt-11", "ckt-16"});
}

std::vector<SocSpec> make_table3_designs() {
  std::vector<SocSpec> designs;
  designs.push_back(make_d695());
  for (int i = 1; i <= 4; ++i) designs.push_back(make_system(i));
  return designs;
}

}  // namespace soctest
