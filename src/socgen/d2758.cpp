#include "socgen/d2758.hpp"

#include "socgen/cube_synth.hpp"
#include "socgen/rng.hpp"

namespace soctest {

SocSpec make_d2758() {
  SocSpec soc;
  soc.name = "d2758";
  soc.approx_gate_count = 580'000;
  soc.approx_latch_count = 28'000;

  Rng rng(0xD2758);
  const int num_cores = 18;
  for (int i = 0; i < num_cores; ++i) {
    CoreUnderTest core;
    core.spec.name = "m" + std::to_string(i + 1);
    core.spec.num_inputs = static_cast<int>(rng.next_range(20, 160));
    core.spec.num_outputs = static_cast<int>(rng.next_range(10, 200));
    const int num_chains = static_cast<int>(rng.next_range(1, 12));
    const int total_ff = static_cast<int>(rng.next_range(120, 2'400));
    const int base = total_ff / num_chains, extra = total_ff % num_chains;
    for (int c = 0; c < num_chains; ++c)
      core.spec.scan_chain_lengths.push_back(base + (c < extra ? 1 : 0));
    core.spec.num_patterns = static_cast<int>(rng.next_range(20, 220));

    CubeSynthParams p;
    p.num_cells = core.spec.stimulus_bits_per_pattern();
    p.num_patterns = core.spec.num_patterns;
    p.care_density = 0.30 + 0.28 * rng.next_double();  // ~44% average
    p.one_fraction = 0.55 + 0.12 * rng.next_double();
    p.cluster_mean = 3.0;
    p.chain_lengths = core.spec.scan_chain_lengths;
    p.scan_cell_offset = core.spec.num_inputs;
    core.cubes = synthesize_cubes(p, rng.next_u64());
    core.validate();
    soc.cores.push_back(std::move(core));
  }
  soc.validate();
  return soc;
}

}  // namespace soctest
