#include "socgen/industrial.hpp"

#include <algorithm>
#include <stdexcept>

#include "socgen/rng.hpp"

namespace soctest {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

const std::vector<IndustrialCoreProfile>& industrial_catalogue() {
  // Structural ranges from the paper (Section 4): 10k-110k scan cells,
  // care-bit density no more than 5%, large terminal counts, flexible scan.
  static const std::vector<IndustrialCoreProfile> catalogue = {
      {"ckt-1", 12'000, 200, 96, 80, 96, 0.030, 0.80},
      {"ckt-2", 18'500, 230, 130, 110, 110, 0.025, 0.82},
      {"ckt-3", 24'000, 240, 150, 140, 84, 0.020, 0.90},
      {"ckt-4", 30'500, 250, 180, 160, 128, 0.018, 0.86},
      {"ckt-5", 38'000, 280, 210, 170, 100, 0.022, 0.78},
      {"ckt-6", 47'500, 320, 240, 200, 90, 0.015, 0.88},
      {"ckt-7", 64'000, 400, 220, 190, 120, 0.015, 0.88},
      {"ckt-8", 72'000, 380, 260, 240, 80, 0.012, 0.90},
      {"ckt-9", 85'000, 420, 300, 280, 72, 0.010, 0.92},
      {"ckt-10", 10'000, 200, 64, 60, 140, 0.050, 0.75},
      {"ckt-11", 54'000, 340, 200, 180, 104, 0.020, 0.84},
      {"ckt-12", 96'000, 450, 320, 300, 64, 0.010, 0.90},
      {"ckt-13", 110'000, 480, 350, 320, 60, 0.010, 0.92},
      {"ckt-14", 15'000, 210, 100, 90, 130, 0.040, 0.76},
      {"ckt-15", 42'000, 300, 190, 170, 96, 0.018, 0.85},
      {"ckt-16", 28'000, 250, 160, 150, 112, 0.025, 0.80},
  };
  return catalogue;
}

const IndustrialCoreProfile& industrial_profile(const std::string& name) {
  for (const IndustrialCoreProfile& p : industrial_catalogue())
    if (p.name == name) return p;
  throw std::out_of_range("industrial_profile: unknown core " + name);
}

CoreUnderTest make_industrial_core(const IndustrialCoreProfile& profile) {
  CoreUnderTest core;
  core.spec.name = profile.name;
  core.spec.num_inputs = profile.inputs;
  core.spec.num_outputs = profile.outputs;
  core.spec.num_patterns = profile.patterns;

  // Fixed scan chains with a deterministic +-15% length wiggle (stitching
  // follows placement, so real chain lengths are never uniform). The last
  // chain absorbs the remainder so the cell count is exact.
  Rng chain_rng(fnv1a(profile.name) ^ 0x5CA9);
  const std::int64_t base = profile.scan_cells / profile.scan_chains;
  std::int64_t remaining = profile.scan_cells;
  for (int i = 0; i < profile.scan_chains - 1; ++i) {
    const std::int64_t wiggle =
        chain_rng.next_range(-(base * 15) / 100, (base * 15) / 100);
    std::int64_t len = std::max<std::int64_t>(1, base + wiggle);
    len = std::min(len, remaining - (profile.scan_chains - 1 - i));
    core.spec.scan_chain_lengths.push_back(static_cast<int>(len));
    remaining -= len;
  }
  core.spec.scan_chain_lengths.push_back(static_cast<int>(remaining));

  CubeSynthParams params;
  params.num_cells = core.spec.stimulus_bits_per_pattern();
  params.num_patterns = profile.patterns;
  params.care_density = profile.care_density;
  params.one_fraction = profile.one_fraction;
  params.chain_lengths = core.spec.scan_chain_lengths;
  params.scan_cell_offset = core.spec.num_inputs;
  core.cubes = synthesize_cubes(params, fnv1a(profile.name));
  core.validate();
  return core;
}

CoreUnderTest make_industrial_core(const std::string& name) {
  return make_industrial_core(industrial_profile(name));
}

}  // namespace soctest
