#include "socgen/rng.hpp"

#include <cassert>
#include <cmath>

namespace soctest {
namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n >= 1);
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

int Rng::next_geometric(double mean) {
  assert(mean >= 1.0);
  // Geometric on {1, 2, ...} with mean `mean`: success prob 1/mean.
  const double u = next_double();
  const double p = 1.0 / mean;
  const int v = 1 + static_cast<int>(std::log1p(-u) / std::log1p(-p));
  return v < 1 ? 1 : v;
}

}  // namespace soctest
