// Deterministic PRNG for synthetic workload generation. All benchmark data
// in this repository is generated from fixed seeds so every experiment is
// bit-reproducible across runs and platforms (no std::mt19937 distribution
// portability caveats: we implement the draws ourselves).
#pragma once

#include <cstdint>

namespace soctest {

/// xoshiro256** seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();
  /// Uniform in [0, n) for n >= 1 (unbiased via rejection).
  std::uint64_t next_below(std::uint64_t n);
  /// Uniform double in [0, 1).
  double next_double();
  /// Bernoulli(p).
  bool next_bool(double p);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);
  /// Geometric with mean `mean` (>= 1), truncated to >= 1.
  int next_geometric(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace soctest
