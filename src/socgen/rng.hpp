// Deterministic PRNG for synthetic workload generation. All benchmark data
// in this repository is generated from fixed seeds so every experiment is
// bit-reproducible across runs and platforms (no std::mt19937 distribution
// portability caveats: we implement the draws ourselves).
#pragma once

#include <array>
#include <cstdint>

namespace soctest {

/// xoshiro256** seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Raw generator state, for checkpointing a walk mid-stream
  /// (src/portfolio). restore()d state resumes the exact draw sequence.
  using State = std::array<std::uint64_t, 4>;
  State state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st[static_cast<std::size_t>(i)];
  }

  std::uint64_t next_u64();
  /// Uniform in [0, n) for n >= 1 (unbiased via rejection).
  std::uint64_t next_below(std::uint64_t n);
  /// Uniform double in [0, 1).
  double next_double();
  /// Bernoulli(p).
  bool next_bool(double p);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);
  /// Geometric with mean `mean` (>= 1), truncated to >= 1.
  int next_geometric(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace soctest
