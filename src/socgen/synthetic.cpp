#include "socgen/synthetic.hpp"

#include <stdexcept>
#include <string>

#include "socgen/cube_synth.hpp"
#include "socgen/rng.hpp"

namespace soctest {

void SyntheticSocParams::validate() const {
  const auto bad_range = [](int lo, int hi) { return lo < 1 || hi < lo; };
  if (num_cores < 1)
    throw std::invalid_argument("SyntheticSocParams: num_cores must be >= 1");
  if (bad_range(min_inputs, max_inputs) || bad_range(min_outputs, max_outputs) ||
      bad_range(min_chains, max_chains) ||
      bad_range(min_chain_length, max_chain_length) ||
      bad_range(min_patterns, max_patterns))
    throw std::invalid_argument("SyntheticSocParams: empty/inverted range");
  if (min_care_density <= 0.0 || max_care_density < min_care_density ||
      max_care_density > 1.0)
    throw std::invalid_argument("SyntheticSocParams: bad care density range");
  if (one_fraction < 0.0 || one_fraction > 1.0)
    throw std::invalid_argument("SyntheticSocParams: bad one_fraction");
  if (giant_fraction < 0.0 || giant_fraction > 1.0 || giant_scale < 1)
    throw std::invalid_argument("SyntheticSocParams: bad giant parameters");
  if (power_profile &&
      (min_power_scale <= 0.0 || max_power_scale < min_power_scale))
    throw std::invalid_argument("SyntheticSocParams: bad power scale range");
  if (hierarchy && (child_fraction < 0.0 || child_fraction > 1.0 ||
                    max_hierarchy_depth < 1))
    throw std::invalid_argument("SyntheticSocParams: bad hierarchy parameters");
}

SocSpec make_synthetic_soc(const SyntheticSocParams& params,
                           std::uint64_t seed) {
  params.validate();
  Rng rng(seed);

  const bool extended = params.power_profile || params.hierarchy;
  SocSpec soc;
  soc.name = (extended ? "synthx" : "synth") +
             std::to_string(params.num_cores) + "c-s" + std::to_string(seed);
  soc.cores.reserve(static_cast<std::size_t>(params.num_cores));
  for (int i = 0; i < params.num_cores; ++i) {
    CoreUnderTest core;
    core.spec.name = "syn" + std::to_string(i);
    core.spec.num_inputs = static_cast<int>(
        rng.next_range(params.min_inputs, params.max_inputs));
    core.spec.num_outputs = static_cast<int>(
        rng.next_range(params.min_outputs, params.max_outputs));

    const bool giant = rng.next_bool(params.giant_fraction);
    const int scale = giant ? params.giant_scale : 1;
    const int chains = static_cast<int>(
        rng.next_range(params.min_chains, params.max_chains));
    for (int c = 0; c < chains; ++c)
      core.spec.scan_chain_lengths.push_back(
          scale * static_cast<int>(rng.next_range(params.min_chain_length,
                                                  params.max_chain_length)));
    core.spec.num_patterns = scale * static_cast<int>(rng.next_range(
                                         params.min_patterns,
                                         params.max_patterns));

    CubeSynthParams p;
    p.num_cells = core.spec.stimulus_bits_per_pattern();
    p.num_patterns = core.spec.num_patterns;
    p.care_density =
        params.min_care_density +
        (params.max_care_density - params.min_care_density) *
            rng.next_double();
    p.one_fraction = params.one_fraction;
    p.chain_lengths = core.spec.scan_chain_lengths;
    p.scan_cell_offset = core.spec.num_inputs;
    core.cubes = synthesize_cubes(p, rng.next_u64());
    core.validate();

    soc.approx_gate_count += 40 * core.spec.total_scan_cells();
    soc.approx_latch_count += core.spec.total_scan_cells();
    soc.cores.push_back(std::move(core));
  }

  if (extended) {
    // Separate derived stream (golden-constant offset): the main `rng`
    // stream above is position-pinned by the existing `synth:` goldens, so
    // the decorations must not consume from it — and must not depend on
    // which of the two extensions is enabled, so power draws come first
    // and hierarchy draws second, unconditionally ordered.
    Rng xrng(seed ^ 0x9E3779B97F4A7C15ULL);
    for (auto& core : soc.cores) {
      const double scale =
          params.min_power_scale +
          (params.max_power_scale - params.min_power_scale) *
              xrng.next_double();
      if (params.power_profile) core.spec.power_scale = scale;
    }
    if (params.hierarchy) {
      soc.hierarchy_parent.assign(static_cast<std::size_t>(params.num_cores),
                                  -1);
      std::vector<int> depth(static_cast<std::size_t>(params.num_cores), 0);
      for (int i = 1; i < params.num_cores; ++i) {
        if (!xrng.next_bool(params.child_fraction)) continue;
        const int p = static_cast<int>(xrng.next_range(0, i - 1));
        if (depth[static_cast<std::size_t>(p)] >= params.max_hierarchy_depth)
          continue;
        soc.hierarchy_parent[static_cast<std::size_t>(i)] = p;
        depth[static_cast<std::size_t>(i)] =
            depth[static_cast<std::size_t>(p)] + 1;
      }
    }
  }
  soc.validate();
  return soc;
}

}  // namespace soctest
