// d695: reconstruction of the ITC'02 SOC test benchmark used in the paper's
// Tables 1-3. The ten ISCAS-85/89 cores follow the published module data
// (terminal counts, scan-chain structure, pattern counts); the test cubes
// are synthesized at the high care-bit densities reported for these small
// cores (~44-66% on average, paper Section 4 and its reference [19]).
// Absolute cycle counts therefore differ from the paper; all experiments
// compare methods on identical inputs (DESIGN.md Section 3).
#pragma once

#include "dft/soc_spec.hpp"

namespace soctest {

SocSpec make_d695();

}  // namespace soctest
