// Synthetic stand-ins for the industrial cores of the paper's reference
// [14] (Wang & Chakrabarty, ITC 2005): named ckt-1 .. ckt-16, with scan-cell
// counts between 10,000 and 110,000, care-bit densities of 1-5% and skewed
// specified values. Each core has a FIXED set of internal scan chains
// (industrial reality: chains are stitched at insertion time and cannot be
// re-cut per wrapper configuration); their lengths carry a deterministic
// +-15% wiggle. This fixed structure is what produces the paper's Figures
// 2-3 non-monotonicity: BFD packing of unsplittable chains makes the
// scan-in depth plateau and jump as m crosses codeword-width bands, while
// idle-bit and slice-reorganization effects perturb the codeword count.
// Pattern counts are scaled to ~10^2 so the exhaustive (w, m) exploration
// runs on one laptop core; the paper's reported quantities (test-time and
// volume *ratios*) are invariant to that scaling (DESIGN.md Section 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dft/soc_spec.hpp"
#include "socgen/cube_synth.hpp"

namespace soctest {

struct IndustrialCoreProfile {
  std::string name;
  std::int64_t scan_cells = 0;
  int scan_chains = 0;  // fixed internal chains the cells are stitched into
  int inputs = 0;
  int outputs = 0;
  int patterns = 0;
  double care_density = 0.02;
  double one_fraction = 0.85;
};

/// The fixed catalogue ckt-1 .. ckt-16 (index 0 = ckt-1).
const std::vector<IndustrialCoreProfile>& industrial_catalogue();

/// Catalogue lookup by name ("ckt-7"); throws std::out_of_range if unknown.
const IndustrialCoreProfile& industrial_profile(const std::string& name);

/// Builds the core (spec + deterministic synthetic cubes). The seed is
/// derived from the profile name, so the same core is identical everywhere.
CoreUnderTest make_industrial_core(const IndustrialCoreProfile& profile);

/// Convenience: make_industrial_core(industrial_profile(name)).
CoreUnderTest make_industrial_core(const std::string& name);

}  // namespace soctest
