// d2758: the second benchmark SOC of the paper's Table 1, taken there from
// Iyengar & Chandra (IEE CDT 2005). The design was never released publicly,
// so this is a fully synthetic substitute in the same regime: many small
// scan-tested cores with high care-bit density (~44% average, per the
// paper's d695/d2758 characterization). See DESIGN.md Section 3.
#pragma once

#include "dft/soc_spec.hpp"

namespace soctest {

SocSpec make_d2758();

}  // namespace soctest
