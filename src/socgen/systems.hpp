// The paper's industrial example SOCs: System1-System4 (Table 3) composed
// of the ckt-* industrial cores, and the four-core design of Figure 4.
#pragma once

#include "dft/soc_spec.hpp"

namespace soctest {

/// System`index`, index in 1..4.
SocSpec make_system(int index);

/// The Figure 4 example (cores ckt-1, ckt-9, ckt-11, ckt-16).
SocSpec make_fig4_soc();

/// All five Table 3 designs: d695, System1..System4, in paper order.
std::vector<SocSpec> make_table3_designs();

}  // namespace soctest
