// Seeded synthetic SOC generator for scale studies. The paper-scale
// designs (d695, System1-4) have 10-30 cores, where τ-table exploration
// dominates and scheduling is O(1)-cheap; the incremental search engine's
// wins only show up in evaluation counts there. This generator produces
// 100-300-core SOCs — sized like modern many-core designs — where the
// step-4 schedule construction (greedy + refine over n cores) dominates
// every candidate evaluation, so BENCH_search can demonstrate wall-clock
// wins, not just counter wins. A configurable heavy tail of "giant" cores
// skews the makespan landscape, which is exactly where the bus-capacity
// lower bound out-prunes the work-conservation bound.
#pragma once

#include <cstdint>

#include "dft/soc_spec.hpp"

namespace soctest {

struct SyntheticSocParams {
  /// Exact number of cores generated.
  int num_cores = 120;

  /// Per-core draws, uniform in [min, max] (inclusive). Regular cores stay
  /// inside these ranges; giants scale lengths/patterns by `giant_scale`.
  int min_inputs = 1, max_inputs = 48;
  int min_outputs = 1, max_outputs = 48;
  int min_chains = 1, max_chains = 12;
  int min_chain_length = 4, max_chain_length = 96;
  int min_patterns = 4, max_patterns = 24;
  double min_care_density = 0.02, max_care_density = 0.30;
  double one_fraction = 0.85;

  /// Heavy tail: each core is a "giant" with this probability; a giant's
  /// chain lengths and pattern count are multiplied by `giant_scale`.
  /// Real SOCs concentrate most test data in a few large cores, and the
  /// skew is what separates the two lower bounds.
  double giant_fraction = 0.05;
  int giant_scale = 6;

  /// Constraint-rich extensions (the `synthx:` design grammar), both OFF
  /// by default so plain `synth:` SOCs — and the goldens pinned on them —
  /// keep their exact bytes. The extra draws come from a separate stream
  /// derived from the seed and run AFTER the core loop, so enabling them
  /// changes nothing about the cores themselves, only decorates them.
  /// Seeded per-core power profile: CoreSpec::power_scale uniform in
  /// [min_power_scale, max_power_scale].
  bool power_profile = false;
  double min_power_scale = 0.5, max_power_scale = 2.0;
  /// Deterministic core hierarchy: each core past the first nests under a
  /// uniformly drawn earlier core with probability `child_fraction`,
  /// depth-capped at `max_hierarchy_depth`.
  bool hierarchy = false;
  double child_fraction = 0.4;
  int max_hierarchy_depth = 3;

  /// Throws std::invalid_argument on empty/inverted ranges.
  void validate() const;
};

/// Deterministically generates a SOC: equal (params, seed) pairs yield
/// identical SocSpecs, cube sets included (socgen/rng + socgen/cube_synth
/// underneath — no std:: distribution portability caveats). The result is
/// validate()d and round-trips exactly through io/soc_text.
SocSpec make_synthetic_soc(const SyntheticSocParams& params,
                           std::uint64_t seed);

}  // namespace soctest
