// Test-cube synthesis. Real ATPG test cubes are not uniform noise: care
// bits cluster along structurally related cells, their 0/1 values are
// heavily skewed (constraint/reset dominated), and overall density is low
// for large industrial cores (1-5%, paper Section 4) but high for the small
// ISCAS cores of d695 (~44-66%). The generator reproduces those three
// distributional properties — the only cube properties the selective
// encoding codec and the planner are sensitive to (DESIGN.md Section 3).
#pragma once

#include <cstdint>

#include "dft/test_cube_set.hpp"
#include "socgen/rng.hpp"

namespace soctest {

struct CubeSynthParams {
  std::int64_t num_cells = 0;
  int num_patterns = 0;
  /// Expected fraction of specified (0/1) bits per pattern.
  double care_density = 0.02;
  /// Fraction of care bits that are 1 (values skew towards one symbol).
  double one_fraction = 0.85;
  /// Mean length of a run of adjacent specified cells.
  double cluster_mean = 6.0;
  /// Probability that a whole cluster shares one value (vs per-bit draws).
  double cluster_coherence = 0.7;

  /// Scan-chain structure, when known (fixed-scan cores): lengths of the
  /// chains occupying cells [scan_cell_offset, ...) in chain order. Enables
  /// *broadside* clusters — care bits at the same depth across adjacent
  /// chains, the cross-chain correlation real ATPG cubes show (a logic cone
  /// touches neighbouring chains at similar depths). These land in one
  /// scan slice and are what the codec's group-copy-mode exploits.
  std::vector<int> chain_lengths;
  std::int64_t scan_cell_offset = 0;
  /// Fraction of clusters placed broadside (requires chain_lengths).
  double broadside_fraction = 0.35;
};

/// Deterministically synthesizes a cube set; equal (params, seed) pairs
/// yield identical sets.
TestCubeSet synthesize_cubes(const CubeSynthParams& params,
                             std::uint64_t seed);

}  // namespace soctest
