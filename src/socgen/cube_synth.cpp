#include "socgen/cube_synth.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace soctest {

TestCubeSet synthesize_cubes(const CubeSynthParams& p, std::uint64_t seed) {
  if (p.num_cells <= 0 || p.num_patterns < 0)
    throw std::invalid_argument("synthesize_cubes: bad sizes");
  if (p.care_density <= 0.0 || p.care_density > 1.0)
    throw std::invalid_argument("synthesize_cubes: bad care density");
  if (p.broadside_fraction < 0.0 || p.broadside_fraction > 1.0)
    throw std::invalid_argument("synthesize_cubes: bad broadside fraction");

  // Chain starts for broadside placement.
  std::vector<std::int64_t> chain_start;
  if (!p.chain_lengths.empty()) {
    chain_start.reserve(p.chain_lengths.size());
    std::int64_t at = p.scan_cell_offset;
    for (int len : p.chain_lengths) {
      if (len <= 0)
        throw std::invalid_argument("synthesize_cubes: bad chain length");
      chain_start.push_back(at);
      at += len;
    }
    if (at > p.num_cells)
      throw std::invalid_argument("synthesize_cubes: chains exceed cells");
  }

  Rng rng(seed);
  TestCubeSet cubes(p.num_cells);

  for (int pat = 0; pat < p.num_patterns; ++pat) {
    const auto budget = static_cast<std::int64_t>(
        static_cast<double>(p.num_cells) * p.care_density);
    std::vector<CareBit> bits;
    bits.reserve(static_cast<std::size_t>(budget) + 8);
    std::vector<bool> used(static_cast<std::size_t>(p.num_cells), false);

    const auto place = [&](std::int64_t cell, bool value,
                           std::int64_t& placed) {
      if (cell < 0 || cell >= p.num_cells) return;
      if (used[static_cast<std::size_t>(cell)]) return;
      used[static_cast<std::size_t>(cell)] = true;
      bits.push_back({static_cast<std::uint32_t>(cell), value});
      ++placed;
    };

    std::int64_t placed = 0;
    while (placed < budget) {
      const int len = rng.next_geometric(p.cluster_mean);
      const bool coherent = rng.next_bool(p.cluster_coherence);
      const bool cluster_value = rng.next_bool(p.one_fraction);
      const bool broadside =
          !chain_start.empty() && rng.next_bool(p.broadside_fraction);

      if (broadside) {
        // Same depth across a run of adjacent chains.
        const std::int64_t c0 = static_cast<std::int64_t>(
            rng.next_below(chain_start.size()));
        const std::int64_t depth = static_cast<std::int64_t>(rng.next_below(
            static_cast<std::uint64_t>(
                p.chain_lengths[static_cast<std::size_t>(c0)])));
        for (int j = 0; j < len && placed < budget; ++j) {
          const std::int64_t c = c0 + j;
          if (c >= static_cast<std::int64_t>(chain_start.size())) break;
          if (depth >= p.chain_lengths[static_cast<std::size_t>(c)]) continue;
          const bool value =
              coherent ? cluster_value : rng.next_bool(p.one_fraction);
          place(chain_start[static_cast<std::size_t>(c)] + depth, value,
                placed);
        }
      } else {
        // Run of adjacent cells (along one chain / the input cells).
        const std::int64_t start = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(p.num_cells)));
        for (int j = 0; j < len && placed < budget; ++j) {
          const bool value =
              coherent ? cluster_value : rng.next_bool(p.one_fraction);
          place(start + j, value, placed);
        }
      }
    }
    cubes.add_pattern(std::move(bits));
  }
  return cubes;
}

}  // namespace soctest
