#include "socgen/d695.hpp"

#include "socgen/cube_synth.hpp"

namespace soctest {
namespace {

struct IscasCore {
  const char* name;
  int inputs;
  int outputs;
  std::vector<int> chains;
  int patterns;
  double care_density;
  double one_fraction;
};

CoreUnderTest build(const IscasCore& c, std::uint64_t seed) {
  CoreUnderTest core;
  core.spec.name = c.name;
  core.spec.num_inputs = c.inputs;
  core.spec.num_outputs = c.outputs;
  core.spec.scan_chain_lengths = c.chains;
  core.spec.num_patterns = c.patterns;

  CubeSynthParams p;
  p.num_cells = core.spec.stimulus_bits_per_pattern();
  p.num_patterns = c.patterns;
  p.care_density = c.care_density;
  p.one_fraction = c.one_fraction;
  p.cluster_mean = 3.0;  // small cores: short structural runs
  p.chain_lengths = core.spec.scan_chain_lengths;
  p.scan_cell_offset = core.spec.num_inputs;
  core.cubes = synthesize_cubes(p, seed);
  core.validate();
  return core;
}

std::vector<int> chains(int count, int total) {
  std::vector<int> v;
  const int base = total / count, extra = total % count;
  for (int i = 0; i < count; ++i) v.push_back(base + (i < extra ? 1 : 0));
  return v;
}

}  // namespace

SocSpec make_d695() {
  SocSpec soc;
  soc.name = "d695";
  soc.approx_gate_count = 160'000;
  soc.approx_latch_count = 6'384;

  // Module data after the ITC'02 benchmark description: ten ISCAS cores,
  // fewer than 16 scan chains each is violated only by the four large
  // sequential cores (32 chains in some published configurations; we use
  // 16, within the paper's "less than 16" characterization), 12-234
  // patterns, ~44-66% care density.
  const std::vector<IscasCore> cores = {
      {"c6288", 32, 32, {}, 12, 0.66, 0.55},
      {"c7552", 207, 108, {}, 73, 0.60, 0.58},
      {"s838", 34, 1, chains(1, 32), 75, 0.55, 0.60},
      {"s9234", 36, 39, chains(4, 211), 105, 0.50, 0.62},
      {"s38417", 28, 106, chains(16, 1636), 68, 0.44, 0.64},
      {"s13207", 62, 152, chains(16, 638), 234, 0.46, 0.60},
      {"s15850", 77, 150, chains(16, 534), 95, 0.48, 0.62},
      {"s5378", 35, 49, chains(4, 179), 97, 0.52, 0.58},
      {"s35932", 35, 320, chains(16, 1728), 12, 0.44, 0.66},
      {"s38584", 38, 304, chains(16, 1426), 110, 0.45, 0.63},
  };
  std::uint64_t seed = 0xD695;
  for (const IscasCore& c : cores) soc.cores.push_back(build(c, seed++));
  soc.validate();
  return soc;
}

}  // namespace soctest
