// SliceEncoder: encodes one m-bit ternary scan slice into codewords.
//
// Per slice (DESIGN.md Section 5):
//   1. the target symbol t is the minority value among the slice's care
//      bits (ties -> 1, matching the paper's example where the rarer 1 is
//      targeted); X bits -- including wrapper idle bits -- take the fill
//      value, the complement of t;
//   2. a slice with no target bits costs a single Head codeword with the
//      empty flag set;
//   3. otherwise each k-bit group is emitted either as one Single per target
//      bit (single-bit-mode) or as a Group/Data pair (group-copy-mode),
//      whichever is fewer codewords (copy wins at >= 3 targets);
//   4. an END marker (Single with operand m) closes the slice.
#pragma once

#include <vector>

#include "bitvec/ternary_vector.hpp"
#include "codec/codeword.hpp"

namespace soctest {

struct EncodedSlice {
  std::vector<Codeword> words;
  bool target_symbol = false;  // t
  bool fill_symbol = false;    // !t; what X positions will hold after expand
};

struct SliceEncoderOptions {
  /// Disable group-copy-mode (ablation: single-bit-mode only, as if the
  /// scheme lacked its second coding mode).
  bool enable_group_copy = true;
};

class SliceEncoder {
 public:
  explicit SliceEncoder(const CodecParams& params,
                        const SliceEncoderOptions& options = {})
      : p_(params), opts_(options) {}

  /// Encodes `slice` (size must equal m).
  EncodedSlice encode(const TernaryVector& slice) const;

  /// Number of codewords encode() would emit, without building them.
  int cost(const TernaryVector& slice) const;

  const CodecParams& params() const { return p_; }

 private:
  CodecParams p_;
  SliceEncoderOptions opts_;
};

}  // namespace soctest
