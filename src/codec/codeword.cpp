#include "codec/codeword.hpp"

#include <stdexcept>

#include "bitvec/bit_util.hpp"

namespace soctest {

CodecParams CodecParams::for_chains(int m) {
  if (m < 2) throw std::invalid_argument("CodecParams: m must be >= 2");
  CodecParams p;
  p.m = m;
  p.k = operand_width_for_chains(m);
  p.w = p.k + 2;
  return p;
}

int CodecParams::num_groups() const {
  return static_cast<int>(ceil_div(m, k));
}

int CodecParams::group_size(int g) const {
  const int start = group_start(g);
  return std::min(k, m - start);
}

std::uint32_t pack(const Codeword& cw, const CodecParams& p) {
  if (cw.operand >= (std::uint32_t{1} << p.k))
    throw std::invalid_argument("pack: operand exceeds k bits");
  return (static_cast<std::uint32_t>(cw.opcode) << p.k) | cw.operand;
}

Codeword unpack(std::uint32_t bits, const CodecParams& p) {
  if (bits >= (std::uint32_t{1} << p.w))
    throw std::invalid_argument("unpack: word exceeds w bits");
  Codeword cw;
  cw.opcode = static_cast<Opcode>(bits >> p.k);
  cw.operand = bits & ((std::uint32_t{1} << p.k) - 1);
  return cw;
}

std::string to_string(const Codeword& cw) {
  static const char* names[] = {"HEAD", "SINGLE", "GROUP", "DATA"};
  return std::string(names[static_cast<int>(cw.opcode)]) + "(" +
         std::to_string(cw.operand) + ")";
}

}  // namespace soctest
