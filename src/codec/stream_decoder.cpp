#include "codec/stream_decoder.hpp"

#include <stdexcept>

namespace soctest {

std::vector<DecodedSlice> StreamDecoder::decode(
    const std::vector<Codeword>& words) const {
  std::vector<DecodedSlice> slices;
  std::size_t i = 0;
  while (i < words.size()) {
    const Codeword head = words[i++];
    if (head.opcode != Opcode::Head)
      throw std::invalid_argument("decode: expected HEAD at slice start");
    const bool target = head.operand & 1u;
    const int count = static_cast<int>(head.operand >> 1);
    const bool escape = count == p_.escape_count();
    DecodedSlice slice(static_cast<std::size_t>(p_.m), !target);  // fill
    int remaining = escape ? -1 : count;  // -1: run until END marker
    while (remaining != 0) {
      if (i >= words.size())
        throw std::invalid_argument("decode: truncated slice");
      const Codeword cw = words[i++];
      switch (cw.opcode) {
        case Opcode::Single:
          if (cw.operand == static_cast<std::uint32_t>(p_.m)) {
            if (!escape)
              throw std::invalid_argument(
                  "decode: END marker outside escape mode");
            remaining = 0;
            continue;
          }
          if (cw.operand >= static_cast<std::uint32_t>(p_.m))
            throw std::invalid_argument("decode: SINGLE index out of range");
          slice[cw.operand] = target;
          if (remaining > 0) --remaining;
          break;
        case Opcode::Group: {
          const int start = static_cast<int>(cw.operand);
          if (start % p_.k != 0 || start >= p_.m)
            throw std::invalid_argument("decode: bad GROUP start");
          if (remaining == 1)
            throw std::invalid_argument("decode: GROUP truncated by count");
          if (i >= words.size() || words[i].opcode != Opcode::Data)
            throw std::invalid_argument("decode: GROUP without DATA");
          const std::uint32_t literal = words[i++].operand;
          const int g = start / p_.k;
          for (int b = 0; b < p_.group_size(g); ++b)
            slice[static_cast<std::size_t>(start + b)] = (literal >> b) & 1u;
          if (remaining > 0) remaining -= 2;  // GROUP + DATA
          break;
        }
        case Opcode::Head:
          throw std::invalid_argument("decode: HEAD inside slice body");
        case Opcode::Data:
          throw std::invalid_argument("decode: DATA without GROUP");
      }
    }
    slices.push_back(std::move(slice));
  }
  return slices;
}

}  // namespace soctest
