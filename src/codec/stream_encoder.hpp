// StreamEncoder: encodes a core's full test-cube set, pattern by pattern and
// slice by slice, into one selective-encoding codeword stream ready for ATE
// storage. Materializes every slice; use SparseCostModel when only the
// codeword count is needed (design-space exploration).
#pragma once

#include <cstdint>
#include <vector>

#include "codec/codeword.hpp"
#include "codec/slice_encoder.hpp"
#include "dft/test_cube_set.hpp"
#include "wrapper/slice_map.hpp"

namespace soctest {

struct EncodedStream {
  CodecParams params;
  std::vector<Codeword> words;
  int patterns = 0;
  int slices_per_pattern = 0;

  std::int64_t codeword_count() const {
    return static_cast<std::int64_t>(words.size());
  }
  /// Compressed data volume in bits (codewords * w).
  std::int64_t compressed_bits() const { return codeword_count() * params.w; }
};

/// Encodes all patterns of `cubes` through the wrapper geometry of `map`.
EncodedStream encode_stream(const SliceMap& map, const TestCubeSet& cubes);

}  // namespace soctest
