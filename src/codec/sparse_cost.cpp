#include "codec/sparse_cost.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "bitvec/bit_util.hpp"
#include "bitvec/slice_kernels.hpp"

namespace soctest {

void validate_sparse_geometry(int num_chains, int depth) {
  if (num_chains < 1 || num_chains > kMaxPackedChains)
    throw std::invalid_argument(
        "sparse_stream_cost: num_chains " + std::to_string(num_chains) +
        " outside [1, " + std::to_string(kMaxPackedChains) +
        "] supported by the key packing");
  if (depth < 0)
    throw std::invalid_argument("sparse_stream_cost: negative depth");
}

namespace {

// Reusable per-thread scratch for the fused path: depth rows of `words`
// 64-bit words per plane, plus the touched-slice list. Sized to the largest
// geometry seen on this thread; rows are zeroed between patterns by walking
// the touched list, never wholesale.
struct ScatterWorkspace {
  std::vector<std::uint64_t> care;
  std::vector<std::uint64_t> value;
  std::vector<std::uint32_t> touched;
  std::vector<std::uint8_t> dirty;  // per-slice "already in touched" flag

  void ensure(std::size_t depth, std::size_t words) {
    const std::size_t cells = depth * words;
    if (care.size() < cells) {
      care.assign(cells, 0);
      value.assign(cells, 0);
    }
    if (dirty.size() < depth) dirty.assign(depth, 0);
    touched.clear();
  }
};

thread_local ScatterWorkspace tls_workspace;

}  // namespace

SparseCostResult sparse_stream_cost(const SliceMap& map,
                                    const TestCubeSet& cubes,
                                    const SliceEncoderOptions& options) {
  const int m = map.num_chains();
  const int depth = map.depth();
  validate_sparse_geometry(m, depth);
  const int k = operand_width_for_chains(m);
  const std::int64_t escape = (std::int64_t{1} << (k - 1)) - 1;
  const std::size_t words =
      static_cast<std::size_t>(ceil_div(m, 64));

  ScatterWorkspace& ws = tls_workspace;
  ws.ensure(static_cast<std::size_t>(depth), words);

  SparseCostResult r;
  for (int p = 0; p < cubes.num_patterns(); ++p) {
    // Scatter: one pass over the pattern's care bits, straight into the
    // touched slices' (care, value) planes — the fused wrapper-walk/cost
    // step; no per-slice query, no sort.
    for (const CareBit& b : cubes.pattern(p)) {
      const std::uint32_t s = map.slice_of_cell(b.cell);
      const std::uint32_t c = map.chain_of_cell(b.cell);
      if (!ws.dirty[s]) {
        ws.dirty[s] = 1;
        ws.touched.push_back(s);
      }
      const std::size_t word = s * words + (c >> 6);
      const std::uint64_t bit = std::uint64_t{1} << (c & 63);
      ws.care[word] |= bit;
      if (b.value) ws.value[word] |= bit;
    }

    // Cost every touched slice word-parallel, then scrub its rows. All
    // counters are integer sums, so the visit order never shows in the
    // result.
    for (const std::uint32_t s : ws.touched) {
      std::uint64_t* care_row = ws.care.data() + s * words;
      std::uint64_t* value_row = ws.value.data() + s * words;
      const kernels::SliceCounts counts =
          kernels::slice_count(care_row, value_row, words);
      const bool target = counts.ones <= counts.care - counts.ones;
      const std::int64_t n_targets =
          target ? counts.ones : counts.care - counts.ones;

      if (n_targets == 0) {
        r.total_codewords += 1;  // Head with body count 0
      } else {
        std::int64_t body = 0;
        std::int64_t run_group = -1;
        int run_count = 0;
        const auto flush_run = [&] {
          if (run_count == 0) return;
          if (options.enable_group_copy && run_count >= 3) {
            body += 2;
            ++r.group_copy_pairs;
          } else {
            body += run_count;
            r.single_codewords += run_count;
          }
          run_count = 0;
        };
        for (std::size_t wi = 0; wi < words; ++wi) {
          std::uint64_t t = target ? (care_row[wi] & value_row[wi])
                                   : (care_row[wi] & ~value_row[wi]);
          while (t != 0) {
            const std::int64_t chain =
                static_cast<std::int64_t>(wi * 64) + std::countr_zero(t);
            t &= t - 1;
            const std::int64_t g = chain / k;
            if (g != run_group) {
              flush_run();
              run_group = g;
            }
            ++run_count;
          }
        }
        flush_run();
        // Head + body, plus an END marker when the body count escapes.
        r.total_codewords += 1 + body + (body >= escape ? 1 : 0);
      }

      std::memset(care_row, 0, words * sizeof(std::uint64_t));
      std::memset(value_row, 0, words * sizeof(std::uint64_t));
      ws.dirty[s] = 0;
    }

    const std::int64_t pattern_touched =
        static_cast<std::int64_t>(ws.touched.size());
    ws.touched.clear();
    r.touched_slices += pattern_touched;
    const std::int64_t empty = depth - pattern_touched;
    r.empty_slices += empty;
    r.total_codewords += empty;  // one empty-Head each
  }
  return r;
}

SparseCostResult sparse_stream_cost_sorted(const SliceMap& map,
                                           const TestCubeSet& cubes,
                                           const SliceEncoderOptions& options) {
  validate_sparse_geometry(map.num_chains(), map.depth());
  const int k = operand_width_for_chains(map.num_chains());
  const std::int64_t escape = (std::int64_t{1} << (k - 1)) - 1;
  SparseCostResult r;

  // One entry per care bit: (slice, chain, value) packed for a single sort.
  // Chains occupy bits [1, 21) — validate_sparse_geometry() enforces the
  // cap, well above max_wrapper_chains()'s 2^16.
  std::vector<std::uint64_t> keys;
  for (int p = 0; p < cubes.num_patterns(); ++p) {
    const std::vector<CareBit>& bits = cubes.pattern(p);
    keys.clear();
    keys.reserve(bits.size());
    for (const CareBit& b : bits) {
      const std::uint64_t slice = map.slice_of_cell(b.cell);
      const std::uint64_t chain = map.chain_of_cell(b.cell);
      keys.push_back((slice << 21) | (chain << 1) | (b.value ? 1u : 0u));
    }
    std::sort(keys.begin(), keys.end());

    std::int64_t pattern_touched = 0;
    std::size_t i = 0;
    while (i < keys.size()) {
      const std::uint64_t slice = keys[i] >> 21;
      std::size_t j = i;
      int c1 = 0;
      while (j < keys.size() && (keys[j] >> 21) == slice) {
        c1 += static_cast<int>(keys[j] & 1u);
        ++j;
      }
      const int care = static_cast<int>(j - i);
      const int c0 = care - c1;
      const bool target = c1 <= c0;  // minority; tie -> 1 (SliceEncoder rule)
      const int n_targets = target ? c1 : c0;

      ++pattern_touched;
      if (n_targets == 0) {
        r.total_codewords += 1;  // Head with body count 0
      } else {
        std::int64_t body = 0;
        // Targets within the slice, grouped by chain / k. Keys are sorted by
        // chain within the slice, so groups appear as runs.
        std::int64_t run_group = -1;
        int run_count = 0;
        const auto flush_run = [&] {
          if (run_count == 0) return;
          if (options.enable_group_copy && run_count >= 3) {
            body += 2;
            ++r.group_copy_pairs;
          } else {
            body += run_count;
            r.single_codewords += run_count;
          }
        };
        for (std::size_t s = i; s < j; ++s) {
          const bool value = keys[s] & 1u;
          if (value != target) continue;
          const std::int64_t chain =
              static_cast<std::int64_t>((keys[s] >> 1) & 0xFFFFF);
          const std::int64_t g = chain / k;
          if (g != run_group) {
            flush_run();
            run_group = g;
            run_count = 0;
          }
          ++run_count;
        }
        flush_run();
        // Head + body, plus an END marker when the body count escapes.
        r.total_codewords += 1 + body + (body >= escape ? 1 : 0);
      }
      i = j;
    }
    r.touched_slices += pattern_touched;
    const std::int64_t empty = map.depth() - pattern_touched;
    r.empty_slices += empty;
    r.total_codewords += empty;  // one empty-Head each
  }
  return r;
}

}  // namespace soctest
