#include "codec/sparse_cost.hpp"

#include <algorithm>
#include <vector>

#include "bitvec/bit_util.hpp"

namespace soctest {

SparseCostResult sparse_stream_cost(const SliceMap& map,
                                    const TestCubeSet& cubes,
                                    const SliceEncoderOptions& options) {
  const int k = operand_width_for_chains(map.num_chains());
  const std::int64_t escape = (std::int64_t{1} << (k - 1)) - 1;
  SparseCostResult r;

  // One entry per care bit: (slice, chain, value) packed for a single sort.
  // Chains fit in 20 bits (max_wrapper_chains caps at 2^16).
  std::vector<std::uint64_t> keys;
  for (int p = 0; p < cubes.num_patterns(); ++p) {
    const std::vector<CareBit>& bits = cubes.pattern(p);
    keys.clear();
    keys.reserve(bits.size());
    for (const CareBit& b : bits) {
      const std::uint64_t slice = map.slice_of_cell(b.cell);
      const std::uint64_t chain = map.chain_of_cell(b.cell);
      keys.push_back((slice << 21) | (chain << 1) | (b.value ? 1u : 0u));
    }
    std::sort(keys.begin(), keys.end());

    std::int64_t pattern_touched = 0;
    std::size_t i = 0;
    while (i < keys.size()) {
      const std::uint64_t slice = keys[i] >> 21;
      std::size_t j = i;
      int c1 = 0;
      while (j < keys.size() && (keys[j] >> 21) == slice) {
        c1 += static_cast<int>(keys[j] & 1u);
        ++j;
      }
      const int care = static_cast<int>(j - i);
      const int c0 = care - c1;
      const bool target = c1 <= c0;  // minority; tie -> 1 (SliceEncoder rule)
      const int n_targets = target ? c1 : c0;

      ++pattern_touched;
      if (n_targets == 0) {
        r.total_codewords += 1;  // Head with body count 0
      } else {
        std::int64_t body = 0;
        // Targets within the slice, grouped by chain / k. Keys are sorted by
        // chain within the slice, so groups appear as runs.
        std::int64_t run_group = -1;
        int run_count = 0;
        const auto flush_run = [&] {
          if (run_count == 0) return;
          if (options.enable_group_copy && run_count >= 3) {
            body += 2;
            ++r.group_copy_pairs;
          } else {
            body += run_count;
            r.single_codewords += run_count;
          }
        };
        for (std::size_t s = i; s < j; ++s) {
          const bool value = keys[s] & 1u;
          if (value != target) continue;
          const std::int64_t chain =
              static_cast<std::int64_t>((keys[s] >> 1) & 0xFFFFF);
          const std::int64_t g = chain / k;
          if (g != run_group) {
            flush_run();
            run_group = g;
            run_count = 0;
          }
          ++run_count;
        }
        flush_run();
        // Head + body, plus an END marker when the body count escapes.
        r.total_codewords += 1 + body + (body >= escape ? 1 : 0);
      }
      i = j;
    }
    r.touched_slices += pattern_touched;
    const std::int64_t empty = map.depth() - pattern_touched;
    r.empty_slices += empty;
    r.total_codewords += empty;  // one empty-Head each
  }
  return r;
}

}  // namespace soctest
