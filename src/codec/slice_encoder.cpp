#include "codec/slice_encoder.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "bitvec/slice_kernels.hpp"

namespace soctest {
namespace {

// Bits of word `wi` holding the target symbol: care & value for target 1,
// care & ~value for target 0. Padding bits are zero in both planes, so the
// mask never points past the slice.
inline std::uint64_t target_word(const TernaryVector& s, std::size_t wi,
                                 bool target) {
  const std::uint64_t c = s.care_words()[wi];
  const std::uint64_t v = s.value_words()[wi];
  return target ? (c & v) : (c & ~v);
}

// Minority care value; tie -> 1, as in the paper's example.
inline bool choose_target(const TernaryVector& slice) {
  const kernels::SliceCounts c = kernels::slice_count(
      slice.care_words(), slice.value_words(), slice.num_words());
  return c.ones <= c.care - c.ones;
}

}  // namespace

EncodedSlice SliceEncoder::encode(const TernaryVector& slice) const {
  if (static_cast<int>(slice.size()) != p_.m)
    throw std::invalid_argument("SliceEncoder: slice width mismatch");

  EncodedSlice out;
  out.target_symbol = choose_target(slice);
  out.fill_symbol = !out.target_symbol;

  // Body codewords first; the Head carries their count (or the escape
  // marker plus a trailing END for oversized bodies). Target positions are
  // walked in ascending order straight off the packed planes; a run is a
  // maximal stretch of targets inside one k-bit group.
  std::vector<Codeword> body;
  std::vector<std::uint32_t> run_pos;
  int run_group = -1;
  const auto flush_run = [&] {
    if (run_pos.empty()) return;
    if (opts_.enable_group_copy && run_pos.size() >= 3) {
      const int start = p_.group_start(run_group);
      const int gs = p_.group_size(run_group);
      const std::uint64_t gmask =
          gs >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << gs) - 1;
      const std::uint64_t care = kernels::extract_bits(
          slice.care_words(), static_cast<std::size_t>(start), gs);
      const std::uint64_t val =
          kernels::extract_bits(slice.value_words(),
                                static_cast<std::size_t>(start), gs) &
          care;
      // X positions take the fill value in the literal.
      const std::uint64_t literal =
          val | (out.fill_symbol ? (~care & gmask) : 0);
      body.push_back({Opcode::Group, static_cast<std::uint32_t>(start)});
      body.push_back({Opcode::Data, static_cast<std::uint32_t>(literal)});
    } else {
      for (std::uint32_t pos : run_pos) body.push_back({Opcode::Single, pos});
    }
    run_pos.clear();
  };

  for (std::size_t wi = 0; wi < slice.num_words(); ++wi) {
    std::uint64_t t = target_word(slice, wi, out.target_symbol);
    while (t != 0) {
      const int pos =
          static_cast<int>(wi * 64) + std::countr_zero(t);
      t &= t - 1;
      const int g = pos / p_.k;
      if (g != run_group) {
        flush_run();
        run_group = g;
      }
      run_pos.push_back(static_cast<std::uint32_t>(pos));
    }
  }
  flush_run();

  const int esc = p_.escape_count();
  const int count = static_cast<int>(body.size());
  if (count < esc) {
    out.words.push_back({Opcode::Head, p_.head_operand(out.target_symbol,
                                                       count)});
    out.words.insert(out.words.end(), body.begin(), body.end());
  } else {
    out.words.push_back({Opcode::Head, p_.head_operand(out.target_symbol,
                                                       esc)});
    out.words.insert(out.words.end(), body.begin(), body.end());
    out.words.push_back({Opcode::Single, static_cast<std::uint32_t>(p_.m)});
  }
  return out;
}

int SliceEncoder::cost(const TernaryVector& slice) const {
  if (static_cast<int>(slice.size()) != p_.m)
    throw std::invalid_argument("SliceEncoder: slice width mismatch");

  const bool target = choose_target(slice);
  int body = 0;
  int run_group = -1;
  int run_count = 0;
  const auto flush_run = [&] {
    if (run_count == 0) return;
    body += opts_.enable_group_copy ? std::min(run_count, 2) : run_count;
    run_count = 0;
  };
  for (std::size_t wi = 0; wi < slice.num_words(); ++wi) {
    std::uint64_t t = target_word(slice, wi, target);
    while (t != 0) {
      const int pos = static_cast<int>(wi * 64) + std::countr_zero(t);
      t &= t - 1;
      const int g = pos / p_.k;
      if (g != run_group) {
        flush_run();
        run_group = g;
      }
      ++run_count;
    }
  }
  flush_run();
  return 1 + body + (body >= p_.escape_count() ? 1 : 0);
}

}  // namespace soctest
