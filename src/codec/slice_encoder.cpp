#include "codec/slice_encoder.hpp"

#include <stdexcept>

namespace soctest {
namespace {

struct SliceStats {
  bool target = false;  // t
  std::vector<int> target_positions;
};

// Chooses the target symbol (minority care value; tie -> 1) and lists the
// positions that must be explicitly encoded. If one care value never occurs
// the other becomes the fill and the slice encodes as empty.
SliceStats analyze(const TernaryVector& slice) {
  int c0 = 0, c1 = 0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    switch (slice.get(i)) {
      case Trit::Zero: ++c0; break;
      case Trit::One: ++c1; break;
      case Trit::X: break;
    }
  }
  SliceStats st;
  st.target = c1 <= c0;  // tie -> target 1, as in the paper's example
  const Trit t = st.target ? Trit::One : Trit::Zero;
  for (std::size_t i = 0; i < slice.size(); ++i)
    if (slice.get(i) == t) st.target_positions.push_back(static_cast<int>(i));
  return st;
}

}  // namespace

EncodedSlice SliceEncoder::encode(const TernaryVector& slice) const {
  if (static_cast<int>(slice.size()) != p_.m)
    throw std::invalid_argument("SliceEncoder: slice width mismatch");

  const SliceStats st = analyze(slice);
  EncodedSlice out;
  out.target_symbol = st.target;
  out.fill_symbol = !st.target;

  // Body codewords first; the Head carries their count (or the escape
  // marker plus a trailing END for oversized bodies).
  std::vector<Codeword> body;
  std::size_t i = 0;
  while (i < st.target_positions.size()) {
    const int g = st.target_positions[i] / p_.k;
    std::size_t j = i;
    while (j < st.target_positions.size() &&
           st.target_positions[j] / p_.k == g)
      ++j;
    const std::size_t n_g = j - i;
    if (opts_.enable_group_copy && n_g >= 3) {
      std::uint32_t literal = 0;
      const int start = p_.group_start(g);
      for (int b = 0; b < p_.group_size(g); ++b) {
        const Trit v = slice.get(static_cast<std::size_t>(start + b));
        const bool bit = (v == Trit::X) ? out.fill_symbol : (v == Trit::One);
        if (bit) literal |= std::uint32_t{1} << b;
      }
      body.push_back({Opcode::Group, static_cast<std::uint32_t>(start)});
      body.push_back({Opcode::Data, literal});
    } else {
      for (std::size_t s = i; s < j; ++s)
        body.push_back({Opcode::Single,
                        static_cast<std::uint32_t>(st.target_positions[s])});
    }
    i = j;
  }

  const int esc = p_.escape_count();
  const int count = static_cast<int>(body.size());
  if (count < esc) {
    out.words.push_back({Opcode::Head, p_.head_operand(st.target, count)});
    out.words.insert(out.words.end(), body.begin(), body.end());
  } else {
    out.words.push_back({Opcode::Head, p_.head_operand(st.target, esc)});
    out.words.insert(out.words.end(), body.begin(), body.end());
    out.words.push_back({Opcode::Single, static_cast<std::uint32_t>(p_.m)});
  }
  return out;
}

int SliceEncoder::cost(const TernaryVector& slice) const {
  if (static_cast<int>(slice.size()) != p_.m)
    throw std::invalid_argument("SliceEncoder: slice width mismatch");
  const SliceStats st = analyze(slice);
  int body = 0;
  std::size_t i = 0;
  while (i < st.target_positions.size()) {
    const int g = st.target_positions[i] / p_.k;
    std::size_t j = i;
    while (j < st.target_positions.size() &&
           st.target_positions[j] / p_.k == g)
      ++j;
    body += opts_.enable_group_copy
                ? static_cast<int>(std::min<std::size_t>(j - i, 2))
                : static_cast<int>(j - i);
    i = j;
  }
  return 1 + body + (body >= p_.escape_count() ? 1 : 0);
}

}  // namespace soctest
