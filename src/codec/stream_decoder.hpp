// StreamDecoder: the software reference for on-chip expansion. Consumes a
// codeword stream and reproduces the fully specified (binary) slice
// sequence the decompressor feeds to the m wrapper chains. The
// cycle-accurate hardware model in src/decomp must agree with this decoder
// word for word.
#pragma once

#include <vector>

#include "codec/codeword.hpp"

namespace soctest {

/// One fully expanded slice: m bits, bit i = value driven into chain i.
using DecodedSlice = std::vector<bool>;

class StreamDecoder {
 public:
  explicit StreamDecoder(const CodecParams& params) : p_(params) {}

  /// Decodes the whole stream. Throws std::invalid_argument on protocol
  /// violations (Data without Group, truncated slice, bad index).
  std::vector<DecodedSlice> decode(const std::vector<Codeword>& words) const;

 private:
  CodecParams p_;
};

}  // namespace soctest
