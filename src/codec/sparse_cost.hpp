// SparseCostModel: computes the exact selective-encoding codeword count for
// a whole cube set without materializing any slice. This is what makes
// exhaustive (w, m) design-space exploration tractable: slices containing no
// care bit (the vast majority at industrial 1-5% densities, including all
// idle-bit positions) cost exactly one Head codeword and are only counted,
// never visited.
//
// Two implementations, pinned codeword-for-codeword-count identical to each
// other and to encode_stream() (tests/codec_consistency_test.cpp):
//
//   sparse_stream_cost         the default, fused word-parallel path: each
//                              pattern's care bits are scattered once into
//                              per-slice (care, value) word planes, then
//                              every touched slice is costed with the
//                              popcount kernels of bitvec/slice_kernels.hpp.
//                              O(care-bits + touched-slices * words) per
//                              pattern, no sort — each cube is touched once
//                              per geometry.
//   sparse_stream_cost_sorted  the seed sort-based reference: one packed
//                              (slice, chain, value) key per care bit,
//                              sorted, runs walked per slice. Kept as the
//                              differential oracle and ablation baseline.
#pragma once

#include <cstdint>

#include "codec/slice_encoder.hpp"
#include "dft/test_cube_set.hpp"
#include "wrapper/slice_map.hpp"

namespace soctest {

struct SparseCostResult {
  std::int64_t total_codewords = 0;
  std::int64_t touched_slices = 0;  // slices with at least one care bit
  std::int64_t empty_slices = 0;    // all-X slices (1 codeword each)
  std::int64_t single_codewords = 0;
  std::int64_t group_copy_pairs = 0;

  friend bool operator==(const SparseCostResult&,
                         const SparseCostResult&) = default;
};

/// Hard cap on the chain index the sorted path can pack: chains occupy bits
/// [1, 21) of the 64-bit sort key. max_wrapper_chains() caps geometries at
/// 2^16, so real designs sit far below this; the checks below make the
/// packing contract explicit instead of silently corrupting keys.
inline constexpr int kMaxPackedChains = 1 << 20;

/// Validates a geometry against the key-packing widths (and the scratch
/// planes' addressing). Throws std::invalid_argument when num_chains is
/// outside [1, kMaxPackedChains] or depth is negative.
void validate_sparse_geometry(int num_chains, int depth);

SparseCostResult sparse_stream_cost(const SliceMap& map,
                                    const TestCubeSet& cubes,
                                    const SliceEncoderOptions& options = {});

SparseCostResult sparse_stream_cost_sorted(
    const SliceMap& map, const TestCubeSet& cubes,
    const SliceEncoderOptions& options = {});

}  // namespace soctest
