// SparseCostModel: computes the exact selective-encoding codeword count for
// a whole cube set in O(care-bits log care-bits) time, without materializing
// any slice. This is what makes exhaustive (w, m) design-space exploration
// tractable: slices containing no care bit (the vast majority at industrial
// 1-5% densities, including all idle-bit positions) cost exactly one Head
// codeword and are only counted, never visited.
//
// Guaranteed to agree codeword-for-codeword-count with encode_stream();
// tests/codec_consistency_test.cpp enforces this.
#pragma once

#include <cstdint>

#include "codec/slice_encoder.hpp"
#include "dft/test_cube_set.hpp"
#include "wrapper/slice_map.hpp"

namespace soctest {

struct SparseCostResult {
  std::int64_t total_codewords = 0;
  std::int64_t touched_slices = 0;  // slices with at least one care bit
  std::int64_t empty_slices = 0;    // all-X slices (1 codeword each)
  std::int64_t single_codewords = 0;
  std::int64_t group_copy_pairs = 0;
};

SparseCostResult sparse_stream_cost(const SliceMap& map,
                                    const TestCubeSet& cubes,
                                    const SliceEncoderOptions& options = {});

}  // namespace soctest
