#include "codec/stream_encoder.hpp"

namespace soctest {

EncodedStream encode_stream(const SliceMap& map, const TestCubeSet& cubes) {
  EncodedStream out;
  out.params = CodecParams::for_chains(map.num_chains());
  out.patterns = cubes.num_patterns();
  out.slices_per_pattern = map.depth();

  const SliceEncoder enc(out.params);
  for (int p = 0; p < cubes.num_patterns(); ++p) {
    const std::vector<TernaryVector> slices = map.slices_of_pattern(cubes, p);
    for (const TernaryVector& slice : slices) {
      const EncodedSlice es = enc.encode(slice);
      out.words.insert(out.words.end(), es.words.begin(), es.words.end());
    }
  }
  return out;
}

}  // namespace soctest
