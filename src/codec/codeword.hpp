// Codeword: one w-bit word of the selective-encoding bitstream
// (Wang & Chakrabarty's scheme, the paper's reference [14]; bit-level
// protocol fully specified in DESIGN.md Section 5).
//
// w = k + 2, k = ceil(log2(m + 1)). Layout: [2-bit opcode][k-bit operand].
//
//   Head   (00)  first codeword of every slice; operand = (count << 1) | t
//                where t is the target symbol and count the number of body
//                codewords that follow. count == 0 -> empty slice (all
//                fill). count == escape_count() -> the body is terminated
//                by an END marker instead (pathologically dense slices).
//   Single (01)  operand = position of one target bit (0..m-1);
//                operand == m is the END marker (escape mode only)
//   Group  (10)  operand = first bit index (g*k) of a k-bit group whose
//                literal content follows in the next codeword
//   Data   (11)  operand = literal group content (bit j -> slice[g*k + j])
//
// The codec requires m >= 2 (so k >= 2 and the Head fields fit); m = 1
// never compresses anyway since w = 3 > m.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace soctest {

enum class Opcode : std::uint8_t { Head = 0, Single = 1, Group = 2, Data = 3 };

struct Codeword {
  Opcode opcode = Opcode::Head;
  std::uint32_t operand = 0;

  friend bool operator==(const Codeword&, const Codeword&) = default;
};

/// Codec geometry for m wrapper chains.
struct CodecParams {
  int m = 0;  // slice width = wrapper chains
  int k = 0;  // operand bits
  int w = 0;  // codeword width = k + 2

  static CodecParams for_chains(int m);

  int num_groups() const;           // ceil(m / k)
  int group_start(int g) const { return g * k; }
  int group_size(int g) const;      // k, except a short final group

  /// Head count-field value signalling END-terminated (escape) mode.
  int escape_count() const { return (1 << (k - 1)) - 1; }
  /// Builds a Head operand from target symbol and body count.
  std::uint32_t head_operand(bool target, int count) const {
    return (static_cast<std::uint32_t>(count) << 1) | (target ? 1u : 0u);
  }
};

/// Packs a codeword into the low w bits of a uint32 (opcode in the top two
/// of the w bits, operand below), as the on-chip decompressor receives it.
std::uint32_t pack(const Codeword& cw, const CodecParams& p);
Codeword unpack(std::uint32_t bits, const CodecParams& p);

std::string to_string(const Codeword& cw);

}  // namespace soctest
