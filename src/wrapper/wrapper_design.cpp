#include "wrapper/wrapper_design.hpp"

#include <algorithm>

namespace soctest {

void WrapperDesign::finalize() {
  num_chains = static_cast<int>(chains.size());
  scan_in_length = 0;
  scan_out_length = 0;
  for (const WrapperChain& c : chains) {
    scan_in_length = std::max(scan_in_length, c.stimulus_length());
    scan_out_length = std::max(scan_out_length, c.response_length());
  }
  idle_bits_per_pattern = 0;
  for (const WrapperChain& c : chains)
    idle_bits_per_pattern += scan_in_length - c.stimulus_length();
}

}  // namespace soctest
