#include "wrapper/slice_map.hpp"

#include <stdexcept>

namespace soctest {

SliceMap::SliceMap(const WrapperDesign& design, std::int64_t num_cells)
    : num_chains_(design.num_chains),
      depth_(design.scan_in_length),
      slice_of_cell_(static_cast<std::size_t>(num_cells), 0),
      chain_of_cell_(static_cast<std::size_t>(num_cells), 0) {
  std::vector<bool> seen(static_cast<std::size_t>(num_cells), false);
  for (int c = 0; c < design.num_chains; ++c) {
    const WrapperChain& wc = design.chains[static_cast<std::size_t>(c)];
    const int pad = depth_ - wc.stimulus_length();
    for (int j = 0; j < wc.stimulus_length(); ++j) {
      const std::uint32_t cell = wc.stimulus_cells[static_cast<std::size_t>(j)];
      if (cell >= seen.size() || seen[cell])
        throw std::invalid_argument("SliceMap: bad or duplicate cell");
      seen[cell] = true;
      slice_of_cell_[cell] = static_cast<std::uint32_t>(pad + j);
      chain_of_cell_[cell] = static_cast<std::uint32_t>(c);
    }
  }
  for (bool s : seen)
    if (!s) throw std::invalid_argument("SliceMap: uncovered stimulus cell");
}

std::vector<TernaryVector> SliceMap::slices_of_pattern(const TestCubeSet& cubes,
                                                       int p) const {
  std::vector<TernaryVector> slices(
      static_cast<std::size_t>(depth_),
      TernaryVector(static_cast<std::size_t>(num_chains_)));
  for (const CareBit& b : cubes.pattern(p)) {
    slices[slice_of_cell_[b.cell]].set(chain_of_cell_[b.cell],
                                       b.value ? Trit::One : Trit::Zero);
  }
  return slices;
}

}  // namespace soctest
