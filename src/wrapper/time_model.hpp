// Test-application time models.
//
// Without compression (paper Fig. 4a; Iyengar et al.'s wrapper model):
//     tau_nc = (1 + max(si, so)) * p + min(si, so)
// where si/so are the scan-in/scan-out lengths of the wrapper design on the
// TAM's w wires (m = w) and p is the pattern count.
//
// With core-level expansion (paper Fig. 1), the decompressor consumes one
// w-bit codeword per ATE cycle and emits complete m-bit slices to the
// wrapper chains. Scan-out of pattern i overlaps the (never shorter)
// compressed scan-in of pattern i+1, so
//     tau_c = total_codewords + so + p
// (final response flush plus one capture cycle per pattern).
#pragma once

#include <cstdint>

#include "wrapper/wrapper_design.hpp"

namespace soctest {

/// Cycles to apply `patterns` patterns through `design` without compression.
std::int64_t uncompressed_test_time(const WrapperDesign& design, int patterns);

/// Cycles to apply a compressed test of `total_codewords` codewords through a
/// wrapper with scan-out length `scan_out` and `patterns` patterns.
std::int64_t compressed_test_time(std::int64_t total_codewords, int scan_out,
                                  int patterns);

/// Uncompressed stimulus volume that the ATE must store for `design`:
/// one si-deep word of w bits per shift cycle (pad bits included, as they
/// occupy tester memory).
std::int64_t uncompressed_data_volume(const WrapperDesign& design,
                                      int patterns);

}  // namespace soctest
