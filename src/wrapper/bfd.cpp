// Best-Fit-Decreasing wrapper-chain construction (paper step 1, after
// Iyengar/Chakrabarty/Marinissen's Design_wrapper heuristic):
//   1. sort internal scan chains by length, longest first;
//   2. assign each to the wrapper chain with the currently shortest
//      stimulus side (ties -> lowest index, for determinism);
//   3. distribute wrapper input cells one by one onto the shortest
//      stimulus side;
//   4. distribute wrapper output cells onto the shortest response side.
//
// Flexible-scan (industrial) cores are re-stitched directly into m balanced
// chains of contiguous cell ranges, which is what core-level compression
// tooling assumes.
#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "bitvec/bit_util.hpp"
#include "wrapper/wrapper_design.hpp"

namespace soctest {
namespace {

int shortest_stimulus_chain(const std::vector<WrapperChain>& chains) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(chains.size()); ++i)
    if (chains[i].stimulus_length() < chains[best].stimulus_length()) best = i;
  return best;
}

int shortest_response_chain(const std::vector<WrapperChain>& chains) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(chains.size()); ++i)
    if (chains[i].response_length() < chains[best].response_length()) best = i;
  return best;
}

WrapperDesign design_fixed(const CoreSpec& core, int m) {
  WrapperDesign d;
  d.chains.resize(static_cast<std::size_t>(m));

  // Scan chains, longest first. Remember each chain's first global cell
  // index: scan cells follow the input cells in the canonical order.
  struct Item {
    int length;
    std::uint32_t first_cell;
  };
  std::vector<Item> items;
  std::uint32_t next_cell = static_cast<std::uint32_t>(core.num_inputs);
  for (int len : core.scan_chain_lengths) {
    items.push_back({len, next_cell});
    next_cell += static_cast<std::uint32_t>(len);
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.length > b.length; });

  for (const Item& it : items) {
    WrapperChain& wc = d.chains[static_cast<std::size_t>(
        shortest_stimulus_chain(d.chains))];
    for (int j = 0; j < it.length; ++j)
      wc.stimulus_cells.push_back(it.first_cell + static_cast<std::uint32_t>(j));
    wc.scan_cells += it.length;
  }

  // Input cells go nearest the core, i.e. last in shift-in order.
  for (int i = 0; i < core.num_inputs; ++i) {
    WrapperChain& wc = d.chains[static_cast<std::size_t>(
        shortest_stimulus_chain(d.chains))];
    wc.stimulus_cells.push_back(static_cast<std::uint32_t>(i));
  }

  for (int i = 0; i < core.num_outputs; ++i) {
    WrapperChain& wc = d.chains[static_cast<std::size_t>(
        shortest_response_chain(d.chains))];
    wc.output_cells += 1;
  }

  d.finalize();
  return d;
}

WrapperDesign design_flexible(const CoreSpec& core, int m) {
  WrapperDesign d;
  d.chains.resize(static_cast<std::size_t>(m));

  const std::int64_t cells = core.flexible_scan_cells;
  const std::int64_t base = cells / m;
  const std::int64_t extra = cells % m;  // first `extra` chains get one more

  std::uint32_t next = static_cast<std::uint32_t>(core.num_inputs);
  for (int c = 0; c < m; ++c) {
    const std::int64_t len = base + (c < extra ? 1 : 0);
    WrapperChain& wc = d.chains[static_cast<std::size_t>(c)];
    wc.stimulus_cells.reserve(static_cast<std::size_t>(len) + 2);
    for (std::int64_t j = 0; j < len; ++j) wc.stimulus_cells.push_back(next++);
    wc.scan_cells = static_cast<int>(len);
  }

  for (int i = 0; i < core.num_inputs; ++i) {
    WrapperChain& wc = d.chains[static_cast<std::size_t>(
        shortest_stimulus_chain(d.chains))];
    wc.stimulus_cells.push_back(static_cast<std::uint32_t>(i));
  }
  for (int i = 0; i < core.num_outputs; ++i) {
    WrapperChain& wc = d.chains[static_cast<std::size_t>(
        shortest_response_chain(d.chains))];
    wc.output_cells += 1;
  }

  d.finalize();
  return d;
}

}  // namespace

WrapperDesign design_wrapper(const CoreSpec& core, int m) {
  if (m < 1 || m > core.max_wrapper_chains())
    throw std::invalid_argument("design_wrapper: m out of range for core " +
                                core.name);
  return core.flexible_scan ? design_flexible(core, m) : design_fixed(core, m);
}

}  // namespace soctest
