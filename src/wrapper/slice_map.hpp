// SliceMap: for a given wrapper design, maps every stimulus cell to the
// (slice, chain) coordinate at which the decompressor must produce its bit.
//
// Slices are indexed 0..si-1 in shift order. A chain of stimulus length L
// carries idle (pad) bits in slices [0, si - L) and its j-th shift-in
// element in slice (si - L + j). The chain index is the bit position within
// the m-bit slice word.
#pragma once

#include <cstdint>
#include <vector>

#include "bitvec/ternary_vector.hpp"
#include "dft/test_cube_set.hpp"
#include "wrapper/wrapper_design.hpp"

namespace soctest {

class SliceMap {
 public:
  /// Builds the map for `design` over a core with `num_cells` stimulus cells.
  SliceMap(const WrapperDesign& design, std::int64_t num_cells);

  int num_chains() const { return num_chains_; }
  /// Number of slices per pattern (= scan-in length si).
  int depth() const { return depth_; }

  std::uint32_t slice_of_cell(std::uint32_t cell) const {
    return slice_of_cell_[cell];
  }
  std::uint32_t chain_of_cell(std::uint32_t cell) const {
    return chain_of_cell_[cell];
  }

  /// Expands pattern `p` of `cubes` into a sequence of `depth()` ternary
  /// slices of `num_chains()` bits each. Idle/pad positions are X.
  std::vector<TernaryVector> slices_of_pattern(const TestCubeSet& cubes,
                                               int p) const;

 private:
  int num_chains_ = 0;
  int depth_ = 0;
  std::vector<std::uint32_t> slice_of_cell_;
  std::vector<std::uint32_t> chain_of_cell_;
};

}  // namespace soctest
