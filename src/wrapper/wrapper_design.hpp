// WrapperDesign: the result of partitioning a core's scannable elements
// (internal scan chains + wrapper input cells, and wrapper output cells on
// the response side) into m wrapper chains, following the wrapper/TAM
// co-optimization model of Iyengar, Chakrabarty & Marinissen (the paper's
// step 1, heuristic from its reference [5]).
//
// Conventions
//  - A wrapper chain's stimulus side is a sequence of stimulus-cell indices
//    in *shift-in order*: element 0 is shifted in first (it occupies the
//    deepest position). We place internal scan cells first and wrapper input
//    cells last, i.e. input cells sit nearest the core terminals.
//  - Chains are left-padded with idle bits so that all chains finish shifting
//    together: on a chain of stimulus length L, the first (si - L) shift
//    cycles carry idle (X) bits. These idle bits participate in compression
//    exactly like cube Xs — the paper's first reason for non-monotonicity.
#pragma once

#include <cstdint>
#include <vector>

#include "dft/core_spec.hpp"

namespace soctest {

struct WrapperChain {
  /// Stimulus cells in shift-in order (global cell indices; see
  /// TestCubeSet for the canonical ordering).
  std::vector<std::uint32_t> stimulus_cells;
  /// Scan cells on this chain (subset of stimulus_cells, for bookkeeping).
  int scan_cells = 0;
  /// Wrapper output cells appended on the response side.
  int output_cells = 0;

  int stimulus_length() const {
    return static_cast<int>(stimulus_cells.size());
  }
  int response_length() const { return scan_cells + output_cells; }
};

struct WrapperDesign {
  int num_chains = 0;  // m
  std::vector<WrapperChain> chains;

  /// Longest stimulus-side chain (scan-in length si).
  int scan_in_length = 0;
  /// Longest response-side chain (scan-out length so).
  int scan_out_length = 0;

  /// Idle pad bits per pattern, summed over chains: sum(si - L_c).
  std::int64_t idle_bits_per_pattern = 0;

  /// Recomputes the derived fields from `chains`.
  void finalize();
};

/// Best-Fit-Decreasing wrapper design for `core` with `m` wrapper chains.
/// Requires 1 <= m <= core.max_wrapper_chains(). Deterministic.
WrapperDesign design_wrapper(const CoreSpec& core, int m);

}  // namespace soctest
