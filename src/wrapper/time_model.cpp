#include "wrapper/time_model.hpp"

#include <algorithm>

namespace soctest {

std::int64_t uncompressed_test_time(const WrapperDesign& design, int patterns) {
  const std::int64_t si = design.scan_in_length;
  const std::int64_t so = design.scan_out_length;
  if (patterns == 0) return 0;
  return (1 + std::max(si, so)) * patterns + std::min(si, so);
}

std::int64_t compressed_test_time(std::int64_t total_codewords, int scan_out,
                                  int patterns) {
  if (patterns == 0) return 0;
  return total_codewords + scan_out + patterns;
}

std::int64_t uncompressed_data_volume(const WrapperDesign& design,
                                      int patterns) {
  return static_cast<std::int64_t>(design.scan_in_length) *
         design.num_chains * patterns;
}

}  // namespace soctest
