// Power-constrained test scheduling: like the step-4 greedy scheduler, but
// the total power of concurrently running core tests may never exceed a
// budget. Buses may idle (gaps) while waiting for power headroom, so the
// resulting Schedule is validated with allow_gaps = true.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/schedule.hpp"

namespace soctest {

/// Power drawn by core i while tested on bus b (depends on the access mode
/// the cost function chose there).
using PowerFn = std::function<double(int core, int bus)>;

struct PowerScheduleOptions {
  double power_budget = 0.0;  // must be > 0
};

/// Event-driven list scheduling: at each completion event, idle buses pick
/// the longest remaining core that fits the power headroom. Throws
/// std::runtime_error if some core alone exceeds the budget (infeasible).
Schedule power_schedule(int num_cores, int num_buses, const CostFn& cost,
                        const PowerFn& power,
                        const std::vector<std::int64_t>& ref_time,
                        const PowerScheduleOptions& opts);

/// Peak concurrent power of an existing schedule under `power`.
double schedule_peak_power(const Schedule& schedule, const PowerFn& power);

}  // namespace soctest
