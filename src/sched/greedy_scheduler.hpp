// Greedy scheduler (paper step 4): cores sorted by reference test time,
// longest first, then each core is appended to the bus where the resulting
// increase in SOC test time is smallest. With k buses and n cores the cost
// is O(n k) lookups plus the sort, matching the paper's complexity claim.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"

namespace soctest {

struct GreedyOptions {
  /// Tie-break: prefer the lowest-index (reporting-stable) bus.
  bool stable_ties = true;
  /// Post-construction refinement: best-improvement move/swap passes on the
  /// assignment (0 disables; the pure paper heuristic).
  int refine_passes = 64;
};

/// `ref_time[i]` orders the cores (descending). `cost(i, b)` gives the test
/// time/volume of core i on bus b.
Schedule greedy_schedule(int num_cores, int num_buses, const CostFn& cost,
                         const std::vector<std::int64_t>& ref_time,
                         const GreedyOptions& opts = {});

}  // namespace soctest
