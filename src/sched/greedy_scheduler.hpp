// Greedy scheduler (paper step 4): cores sorted by reference test time,
// longest first, then each core is appended to the bus where the resulting
// increase in SOC test time is smallest. With k buses and n cores the cost
// is O(n k) lookups plus the sort, matching the paper's complexity claim.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"

namespace soctest {

struct GreedyOptions {
  /// Tie-break: prefer the lowest-index (reporting-stable) bus.
  bool stable_ties = true;
  /// Post-construction refinement: best-improvement move/swap passes on the
  /// assignment (0 disables; the pure paper heuristic).
  int refine_passes = 64;
};

/// Fully-resolved per-(core, bus) cost table, the scheduler's working set.
/// The step-3 search keeps these alive across candidate architectures: a
/// single-wire move changes at most two bus widths, so all other columns
/// carry over unchanged (src/opt DeltaEvaluator).
struct CostTable {
  int num_cores = 0;
  int num_buses = 0;
  std::vector<std::vector<BusAccessCost>> cells;  // [core][bus]

  const BusAccessCost& at(int core, int bus) const {
    return cells[static_cast<std::size_t>(core)][static_cast<std::size_t>(bus)];
  }
};

/// Resolves every (core, bus) pair through `cost`, core-major.
CostTable build_cost_table(int num_cores, int num_buses, const CostFn& cost);

/// Admissible lower bound on the makespan of ANY schedule for this table:
/// max(ceil(sum_i min_b t_ib / k), max_i min_b t_ib). The first term spreads
/// the least possible total load over k buses; the second says every core
/// runs somewhere. Power stalls and refinement only add time, so no
/// achievable schedule — greedy, refined or power-constrained — beats it.
std::int64_t schedule_lower_bound(const CostTable& table);

/// Tighter admissible bound: the work-conservation bound above, raised by a
/// BUS-CAPACITY argument. In any schedule with makespan <= T, core i can
/// only sit on a bus b with t_ib <= T (its own entry already exceeds T
/// elsewhere), so for every bus subset S the cores whose affordable buses
/// all lie inside S must fit into S's capacity |S|*T; their least possible
/// work is sum of min_b t_ib. The bound is the smallest T in
/// [work-conservation, sum_i min_b t_ib] passing every subset check, found
/// by binary search (the checks are monotone in T). On skewed partitions —
/// where a few wide buses are the only affordable home of the long cores —
/// this is strictly tighter than spreading work over all k buses; on
/// balanced ones it degrades gracefully to the work-conservation bound.
/// Never exceeds the optimum, so pruning on it is invisible in search
/// results (bit-identity is preserved by construction, not by luck).
std::int64_t schedule_capacity_bound(const CostTable& table);

/// Core of both bounds, over a row-major time matrix `time[i*num_buses+b]`
/// (the delta evaluator calls this straight off its cached columns, no
/// CostTable materialization). `bus_capacity` gates the subset checks:
/// false reproduces schedule_lower_bound exactly.
std::int64_t makespan_lower_bound(int num_cores, int num_buses,
                                  const std::vector<std::int64_t>& time,
                                  bool bus_capacity);

/// Exactly `makespan_lower_bound(...) > threshold`, but without the binary
/// search: the search engines only ever ask whether the bound clears the
/// incumbent, and that is ONE monotone feasibility probe at `threshold`
/// (bound > T iff T fails a capacity check), not a hunt for the bound's
/// exact value. Turns the pruning test from ~40 probes into 1 — the
/// difference between the capacity bound paying for itself at paper scale
/// and costing more than the schedules it prunes.
bool makespan_bound_exceeds(int num_cores, int num_buses,
                            const std::vector<std::int64_t>& time,
                            std::int64_t threshold, bool bus_capacity);

/// `ref_time[i]` orders the cores (descending). `cost(i, b)` gives the test
/// time/volume of core i on bus b.
Schedule greedy_schedule(int num_cores, int num_buses, const CostFn& cost,
                         const std::vector<std::int64_t>& ref_time,
                         const GreedyOptions& opts = {});

/// Same algorithm over a pre-resolved cost table (no CostFn round trips);
/// output is identical to the CostFn overload for equal costs.
Schedule greedy_schedule(const CostTable& table,
                         const std::vector<std::int64_t>& ref_time,
                         const GreedyOptions& opts = {});

/// The construction order greedy_schedule uses internally: core indices
/// stable-sorted by ref_time descending. Exposed so callers that reuse a
/// reference column across candidates (opt/DeltaEvaluator's warm path) can
/// cache the sorted order instead of re-sorting per evaluation.
std::vector<int> schedule_core_order(int num_cores,
                                     const std::vector<std::int64_t>& ref_time);

/// greedy_schedule with its two O(n log n)/O(n k) inputs precomputed: a
/// row-major time matrix `time[i*num_buses+b]` and the construction order
/// from schedule_core_order. `cost` is only consulted when materializing the
/// final schedule (volume/choice per placed core). Both greedy_schedule
/// overloads route through here, so for equal inputs the output is identical
/// by construction — the warm-start path's bit-identity rests on that.
Schedule greedy_schedule_prepared(int num_cores, int num_buses,
                                  const std::vector<std::int64_t>& time,
                                  const std::vector<int>& order,
                                  const CostFn& cost,
                                  const GreedyOptions& opts = {});

}  // namespace soctest
