#include "sched/gantt.hpp"

#include <algorithm>
#include <sstream>

namespace soctest {

std::string render_gantt(const Schedule& schedule,
                         const TamArchitecture& arch,
                         const std::vector<std::string>& core_names,
                         int width_chars) {
  const std::int64_t makespan = std::max<std::int64_t>(schedule.makespan(), 1);
  std::ostringstream os;
  for (int b = 0; b < arch.num_buses(); ++b) {
    os << "TAM" << b << " (w=" << arch.widths[static_cast<std::size_t>(b)]
       << ") |";
    std::string row(static_cast<std::size_t>(width_chars), ' ');
    for (const ScheduleEntry& e : schedule.entries) {
      if (e.bus != b) continue;
      const int c0 = static_cast<int>(e.start * width_chars / makespan);
      const int c1 = std::max(
          c0 + 1, static_cast<int>(e.end * width_chars / makespan));
      std::string label = "[";
      if (e.core < static_cast<int>(core_names.size()))
        label += core_names[static_cast<std::size_t>(e.core)];
      label += "]";
      for (int c = c0; c < std::min(c1, width_chars); ++c) {
        const std::size_t li = static_cast<std::size_t>(c - c0);
        row[static_cast<std::size_t>(c)] =
            li < label.size() ? label[li] : '=';
      }
      if (c1 - 1 < width_chars && c1 - 1 >= c0)
        row[static_cast<std::size_t>(c1 - 1)] = ']';
    }
    os << row << "|\n";
  }
  os << "makespan = " << schedule.makespan() << " cycles\n";
  return os.str();
}

}  // namespace soctest
