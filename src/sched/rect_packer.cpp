#include "sched/rect_packer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace soctest {

std::int64_t RectPacking::makespan() const {
  std::int64_t span = 0;
  for (const PlacedRect& r : rects) span = std::max(span, r.start + r.time);
  return span;
}

namespace {

void check_items(int strip_width, const std::vector<RectItem>& items) {
  if (strip_width < 1)
    throw std::invalid_argument("pack_rectangles: strip_width must be >= 1");
  for (const RectItem& it : items) {
    if (it.width < 1 || it.width > strip_width)
      throw std::invalid_argument("pack_rectangles: item " +
                                  std::to_string(it.id) +
                                  " width outside [1, strip_width]");
    if (it.time < 0)
      throw std::invalid_argument("pack_rectangles: item " +
                                  std::to_string(it.id) + " has negative time");
  }
}

// Insertion orders for the skyline construction. Each is a TOTAL order on
// the item tuples (id breaks every tie), which makes each construction —
// and the best-of selection below — a pure function of the item multiset;
// the repack-fixed-point invariant depends on this.
bool longest_first(const RectItem& a, const RectItem& b) {
  if (a.time != b.time) return a.time > b.time;
  if (a.width != b.width) return a.width > b.width;
  return a.id < b.id;
}

bool widest_first(const RectItem& a, const RectItem& b) {
  if (a.width != b.width) return a.width > b.width;
  if (a.time != b.time) return a.time > b.time;
  return a.id < b.id;
}

bool largest_area_first(const RectItem& a, const RectItem& b) {
  const std::int64_t aa = static_cast<std::int64_t>(a.width) * a.time;
  const std::int64_t bb = static_cast<std::int64_t>(b.width) * b.time;
  if (aa != bb) return aa > bb;
  if (a.time != b.time) return a.time > b.time;
  return a.id < b.id;
}

RectPacking pack_in_order(int strip_width, std::vector<RectItem> order,
                          bool (*before)(const RectItem&, const RectItem&)) {
  std::sort(order.begin(), order.end(), before);

  RectPacking packing;
  packing.strip_width = strip_width;
  packing.rects.reserve(order.size());

  // skyline[x] = first free cycle on wire x.
  std::vector<std::int64_t> skyline(static_cast<std::size_t>(strip_width), 0);
  // Deque for the O(strip_width) sliding-window maximum over the skyline
  // (indices with non-increasing skyline values), reused across items.
  std::vector<int> win;
  win.reserve(static_cast<std::size_t>(strip_width));
  for (const RectItem& it : order) {
    // Window maxima via monotonic deque: the candidate start at x is
    // max(skyline[x .. x+w-1]); scan x left to right keeping the smallest.
    win.clear();
    std::size_t head = 0;
    int best_x = 0;
    std::int64_t best_start = std::numeric_limits<std::int64_t>::max();
    for (int e = 0; e < strip_width; ++e) {
      while (win.size() > head &&
             skyline[static_cast<std::size_t>(win.back())] <=
                 skyline[static_cast<std::size_t>(e)])
        win.pop_back();
      win.push_back(e);
      const int x = e - it.width + 1;
      if (x < 0) continue;
      if (win[head] < x) ++head;
      const std::int64_t start = skyline[static_cast<std::size_t>(win[head])];
      if (start < best_start) {
        best_start = start;
        best_x = x;
      }
    }
    for (int k = 0; k < it.width; ++k)
      skyline[static_cast<std::size_t>(best_x + k)] = best_start + it.time;
    packing.rects.push_back(
        PlacedRect{it.id, it.width, it.time, best_x, best_start});
  }
  return packing;
}

}  // namespace

RectPacking pack_rectangles(int strip_width,
                            const std::vector<RectItem>& items) {
  check_items(strip_width, items);
  // Run the skyline construction under three insertion orders and keep the
  // shortest strip; ties keep the earliest order, so the choice is as
  // deterministic as each construction. Every skyline placement is maximal
  // (a rect lands exactly on the highest prior end in its span), so the
  // winner is too.
  static bool (*const kOrders[])(const RectItem&, const RectItem&) = {
      longest_first, widest_first, largest_area_first};
  RectPacking best;
  std::int64_t best_span = std::numeric_limits<std::int64_t>::max();
  for (auto* before : kOrders) {
    RectPacking p = pack_in_order(strip_width, items, before);
    const std::int64_t span = p.makespan();
    if (span < best_span) {
      best_span = span;
      best = std::move(p);
    }
  }
  return best;
}

std::int64_t rect_area_bound(int strip_width,
                             const std::vector<RectItem>& items) {
  check_items(strip_width, items);
  std::int64_t area = 0;
  std::int64_t longest = 0;
  for (const RectItem& it : items) {
    area += static_cast<std::int64_t>(it.width) * it.time;
    longest = std::max(longest, it.time);
  }
  const std::int64_t by_area = (area + strip_width - 1) / strip_width;
  return std::max(by_area, longest);
}

void validate_packing(const RectPacking& p) {
  if (p.strip_width < 1)
    throw std::logic_error("rect packing: strip_width must be >= 1");
  for (const PlacedRect& r : p.rects) {
    if (r.width < 1 || r.x < 0 || r.x + r.width > p.strip_width)
      throw std::logic_error("rect packing: rect " + std::to_string(r.id) +
                             " outside the strip");
    if (r.time < 0 || r.start < 0)
      throw std::logic_error("rect packing: rect " + std::to_string(r.id) +
                             " has a negative time span");
  }
  for (std::size_t i = 0; i < p.rects.size(); ++i) {
    const PlacedRect& a = p.rects[i];
    for (std::size_t j = i + 1; j < p.rects.size(); ++j) {
      const PlacedRect& b = p.rects[j];
      const bool wires_disjoint =
          a.x + a.width <= b.x || b.x + b.width <= a.x;
      const bool times_disjoint =
          a.start + a.time <= b.start || b.start + b.time <= a.start;
      if (!wires_disjoint && !times_disjoint)
        throw std::logic_error("rect packing: rects " + std::to_string(a.id) +
                               " and " + std::to_string(b.id) + " overlap");
    }
  }
}

bool packing_is_maximal(const RectPacking& p) {
  for (const PlacedRect& r : p.rects) {
    if (r.start == 0) continue;
    // In a valid packing every rect q sharing a wire with r has either
    // q.end <= r.start or q.start >= r.end, so the tightest obstruction
    // below r is max{q.end : q shares a wire, q.end <= r.start}. r is
    // immovable iff that obstruction equals r.start exactly.
    std::int64_t obstruction = 0;
    for (const PlacedRect& q : p.rects) {
      if (&q == &r) continue;
      const bool shares_wire =
          !(q.x + q.width <= r.x || r.x + r.width <= q.x);
      if (!shares_wire) continue;
      const std::int64_t q_end = q.start + q.time;
      if (q_end <= r.start) obstruction = std::max(obstruction, q_end);
    }
    if (obstruction != r.start) return false;
  }
  return true;
}

}  // namespace soctest
