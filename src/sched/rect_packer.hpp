// Deterministic skyline strip packing for the rectangle-packing TAM
// backend (opt/rect_backend). Cores become (width x time) rectangles and
// the W-wire TAM budget becomes a strip of W wire lanes running forward in
// time; a packing assigns every rectangle a wire span [x, x + width) and a
// start time so that no two rectangles overlap. The SOC test time is the
// latest rectangle end — exactly the makespan objective of the fixed-bus
// model, but over a strictly larger architecture space (a fixed-bus
// schedule IS a packing whose rectangles tile fixed wire spans).
//
// The construction is best-fit-decreasing: rectangles sorted by time
// (desc), width (desc), id (asc) are placed one by one at the wire span
// whose skyline admits the earliest start (ties: smallest x). Placement is
// a pure function of the rectangle multiset — no RNG, no iteration-order
// dependence — so re-packing a packed solution's rectangles reproduces it
// exactly (the fuzz suite's fixed-point invariant), and every placement is
// maximal: a rectangle either starts at 0 or rests on a rectangle that
// ends exactly at its start (no rectangle can shift to an earlier start).
#pragma once

#include <cstdint>
#include <vector>

namespace soctest {

/// One core's rectangle: `width` TAM wires held for `time` cycles.
struct RectItem {
  int id = 0;  // caller's identity (core index); ties broken on it
  int width = 0;
  std::int64_t time = 0;
};

struct PlacedRect {
  int id = 0;
  int width = 0;
  std::int64_t time = 0;
  int x = 0;               // wire span [x, x + width)
  std::int64_t start = 0;  // time span [start, start + time)
};

struct RectPacking {
  int strip_width = 0;
  std::vector<PlacedRect> rects;  // placement (best-fit-decreasing) order

  std::int64_t makespan() const;
};

/// Best-fit-decreasing skyline construction. Throws std::invalid_argument
/// when strip_width < 1 or any item has width outside [1, strip_width] or
/// a negative time. Deterministic: a pure function of the item multiset.
RectPacking pack_rectangles(int strip_width,
                            const std::vector<RectItem>& items);

/// Admissible makespan lower bound over ANY packing of `items` into a
/// strip_width-wide strip: max(ceil(sum w_i * t_i / W), max t_i). The
/// first term is area conservation, the second says the longest rectangle
/// runs somewhere in full.
std::int64_t rect_area_bound(int strip_width,
                             const std::vector<RectItem>& items);

/// Structural invariants: every rectangle inside the strip with a
/// non-negative start, and no two rectangles overlap (wire spans disjoint
/// or time spans disjoint). Throws std::logic_error on violation.
void validate_packing(const RectPacking& p);

/// True iff no rectangle can shift to an earlier start on its wire span:
/// each rectangle starts at 0 or some wire in its span carries another
/// rectangle ending exactly at its start. The best-fit construction
/// guarantees this; the fuzz suite asserts it on random instances.
bool packing_is_maximal(const RectPacking& p);

}  // namespace soctest
