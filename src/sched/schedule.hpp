// Schedule: the outcome of the paper's step 4 — a sequential ordering of
// cores on each test bus. Buses run concurrently; the SOC test time is the
// latest bus finish time (makespan).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "explore/core_table.hpp"

namespace soctest {

struct ScheduleEntry {
  int core = 0;
  int bus = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
  /// The access configuration chosen for this core on its bus.
  CoreChoice choice;
};

struct Schedule {
  std::vector<ScheduleEntry> entries;
  std::vector<std::int64_t> bus_finish;
  std::int64_t total_volume_bits = 0;

  std::int64_t makespan() const;

  /// Checks structural invariants: every core in [0, num_cores) appears
  /// exactly once, entries on one bus do not overlap and are back-to-back
  /// (with allow_gaps, idle gaps are permitted — power-constrained
  /// schedules stall buses), bus_finish matches entry ends. Throws
  /// std::logic_error on violation.
  void validate(int num_cores, bool allow_gaps = false) const;
};

/// Cost of testing one core on one bus, as seen by the scheduler.
struct BusAccessCost {
  std::int64_t time = 0;
  std::int64_t volume_bits = 0;
  CoreChoice choice;
};

/// (core index, bus index) -> cost. Provided by the optimizer, which bakes
/// in the architecture mode and bus realization.
using CostFn = std::function<BusAccessCost(int core, int bus)>;

}  // namespace soctest
