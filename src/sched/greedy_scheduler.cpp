#include "sched/greedy_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace soctest {
namespace {

std::int64_t max_load(const std::vector<std::int64_t>& loads) {
  std::int64_t m = 0;
  for (std::int64_t l : loads) m = std::max(m, l);
  return m;
}

// Best-improvement local search over core-to-bus assignments: move a core
// off a critical bus, or swap a critical core with one on another bus.
// Classic unrelated-machines refinement; keeps the paper's greedy
// construction as the starting point. `time` is row-major
// (time[i * num_buses + b]) so the warm-start path can hand over its cached
// matrix without reshaping.
void refine(int num_cores, int num_buses,
            const std::vector<std::int64_t>& time, std::vector<int>& assign,
            std::vector<std::int64_t>& loads, int max_passes) {
  const std::size_t k = static_cast<std::size_t>(num_buses);
  const auto t = [&](int core, int bus) {
    return time[static_cast<std::size_t>(core) * k +
                static_cast<std::size_t>(bus)];
  };
  for (int pass = 0; pass < max_passes; ++pass) {
    const std::int64_t makespan = max_load(loads);
    std::int64_t best_new = makespan;
    int move_core = -1, move_to = -1, swap_with = -1;

    for (int i = 0; i < num_cores; ++i) {
      const int a = assign[static_cast<std::size_t>(i)];
      if (loads[static_cast<std::size_t>(a)] != makespan) continue;
      const std::int64_t t_ia = t(i, a);
      for (int b = 0; b < num_buses; ++b) {
        if (b == a) continue;
        const std::int64_t t_ib = t(i, b);
        // Move i: a loses t_ia, b gains t_ib.
        {
          std::int64_t new_ms = 0;
          for (int x = 0; x < num_buses; ++x) {
            std::int64_t l = loads[static_cast<std::size_t>(x)];
            if (x == a) l -= t_ia;
            if (x == b) l += t_ib;
            new_ms = std::max(new_ms, l);
          }
          if (new_ms < best_new) {
            best_new = new_ms;
            move_core = i;
            move_to = b;
            swap_with = -1;
          }
        }
        // Swap i with each core j on bus b.
        for (int j = 0; j < num_cores; ++j) {
          if (assign[static_cast<std::size_t>(j)] != b) continue;
          const std::int64_t t_jb = t(j, b);
          const std::int64_t t_ja = t(j, a);
          std::int64_t new_ms = 0;
          for (int x = 0; x < num_buses; ++x) {
            std::int64_t l = loads[static_cast<std::size_t>(x)];
            if (x == a) l += t_ja - t_ia;
            if (x == b) l += t_ib - t_jb;
            new_ms = std::max(new_ms, l);
          }
          if (new_ms < best_new) {
            best_new = new_ms;
            move_core = i;
            move_to = b;
            swap_with = j;
          }
        }
      }
    }
    if (move_core < 0) return;  // local optimum

    const int a = assign[static_cast<std::size_t>(move_core)];
    loads[static_cast<std::size_t>(a)] -= t(move_core, a);
    loads[static_cast<std::size_t>(move_to)] += t(move_core, move_to);
    assign[static_cast<std::size_t>(move_core)] = move_to;
    if (swap_with >= 0) {
      loads[static_cast<std::size_t>(move_to)] -= t(swap_with, move_to);
      loads[static_cast<std::size_t>(a)] += t(swap_with, a);
      assign[static_cast<std::size_t>(swap_with)] = a;
    }
  }
}

}  // namespace

CostTable build_cost_table(int num_cores, int num_buses, const CostFn& cost) {
  if (num_cores < 0 || num_buses < 1)
    throw std::invalid_argument("build_cost_table: bad sizes");
  CostTable t;
  t.num_cores = num_cores;
  t.num_buses = num_buses;
  t.cells.resize(static_cast<std::size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    t.cells[static_cast<std::size_t>(i)].reserve(
        static_cast<std::size_t>(num_buses));
    for (int b = 0; b < num_buses; ++b)
      t.cells[static_cast<std::size_t>(i)].push_back(cost(i, b));
  }
  return t;
}

namespace {

std::vector<std::int64_t> flatten_times(const CostTable& table) {
  std::vector<std::int64_t> time;
  time.reserve(static_cast<std::size_t>(table.num_cores) *
               static_cast<std::size_t>(table.num_buses));
  for (int i = 0; i < table.num_cores; ++i)
    for (int b = 0; b < table.num_buses; ++b)
      time.push_back(table.at(i, b).time);
  return time;
}

// True when no bus-capacity check refutes a schedule of makespan <= T.
// `minv[i]` is min_b t_ib. For every bus subset S, the cores whose
// affordable buses ({b : t_ib <= T}, always containing the argmin bus once
// T >= max_min) all lie in S must fit: sum of their minv <= |S| * T.
// Subset sums come from a zeta transform over affordability bitmasks.
bool capacity_feasible(int num_cores, int num_buses,
                       const std::vector<std::int64_t>& time,
                       const std::vector<std::int64_t>& minv, std::int64_t T,
                       std::vector<std::int64_t>& confined) {
  const std::size_t k = static_cast<std::size_t>(num_buses);
  confined.assign(std::size_t{1} << k, 0);
  for (int i = 0; i < num_cores; ++i) {
    std::size_t mask = 0;
    const std::size_t row = static_cast<std::size_t>(i) * k;
    for (std::size_t b = 0; b < k; ++b)
      if (time[row + b] <= T) mask |= std::size_t{1} << b;
    confined[mask] += minv[static_cast<std::size_t>(i)];
  }
  for (std::size_t b = 0; b < k; ++b)
    for (std::size_t s = 0; s < confined.size(); ++s)
      if (s & (std::size_t{1} << b)) confined[s] += confined[s ^ (std::size_t{1} << b)];
  for (std::size_t s = 1; s < confined.size(); ++s) {
    const int width = static_cast<int>(std::popcount(s));
    if (confined[s] > T * width) return false;
  }
  return true;
}

}  // namespace

std::int64_t makespan_lower_bound(int num_cores, int num_buses,
                                  const std::vector<std::int64_t>& time,
                                  bool bus_capacity) {
  if (num_cores == 0) return 0;
  if (num_buses < 1 ||
      time.size() != static_cast<std::size_t>(num_cores) *
                         static_cast<std::size_t>(num_buses))
    throw std::invalid_argument("makespan_lower_bound: bad sizes");
  std::int64_t sum_min = 0;
  std::int64_t max_min = 0;
  std::vector<std::int64_t> minv(static_cast<std::size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    const std::size_t row =
        static_cast<std::size_t>(i) * static_cast<std::size_t>(num_buses);
    std::int64_t mn = time[row];
    for (int b = 1; b < num_buses; ++b) mn = std::min(mn, time[row + static_cast<std::size_t>(b)]);
    minv[static_cast<std::size_t>(i)] = mn;
    sum_min += mn;
    max_min = std::max(max_min, mn);
  }
  const std::int64_t k = num_buses;
  const std::int64_t base = std::max((sum_min + k - 1) / k, max_min);

  // The subset checks add nothing on one bus (base is already the exact
  // sum); past 16 buses the 2^k transform stops being cheap, so fall back.
  if (!bus_capacity || num_buses <= 1 || num_buses > 16) return base;

  // Smallest T passing every check, by binary search: infeasible(T) is
  // monotone (raising T only enlarges affordability sets, weakening every
  // constraint), sum_min always passes (any confined group's work is at
  // most sum_min <= T * |S| once T >= sum_min).
  std::vector<std::int64_t> confined;
  if (capacity_feasible(num_cores, num_buses, time, minv, base, confined))
    return base;
  std::int64_t lo = base, hi = sum_min;  // lo infeasible, hi feasible
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (capacity_feasible(num_cores, num_buses, time, minv, mid, confined))
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

bool makespan_bound_exceeds(int num_cores, int num_buses,
                            const std::vector<std::int64_t>& time,
                            std::int64_t threshold, bool bus_capacity) {
  if (num_cores == 0) return 0 > threshold;
  if (num_buses < 1 ||
      time.size() != static_cast<std::size_t>(num_cores) *
                         static_cast<std::size_t>(num_buses))
    throw std::invalid_argument("makespan_bound_exceeds: bad sizes");
  std::int64_t sum_min = 0;
  std::int64_t max_min = 0;
  std::vector<std::int64_t> minv(static_cast<std::size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    const std::size_t row =
        static_cast<std::size_t>(i) * static_cast<std::size_t>(num_buses);
    std::int64_t mn = time[row];
    for (int b = 1; b < num_buses; ++b)
      mn = std::min(mn, time[row + static_cast<std::size_t>(b)]);
    minv[static_cast<std::size_t>(i)] = mn;
    sum_min += mn;
    max_min = std::max(max_min, mn);
  }
  const std::int64_t k = num_buses;
  const std::int64_t base = std::max((sum_min + k - 1) / k, max_min);
  if (base > threshold) return true;
  if (!bus_capacity || num_buses <= 1 || num_buses > 16) return false;
  // The capacity bound never exceeds sum_min (one bus can always take
  // every core at its argmin), so a threshold at or past it always passes.
  if (threshold >= sum_min) return false;
  std::vector<std::int64_t> confined;
  return !capacity_feasible(num_cores, num_buses, time, minv, threshold,
                            confined);
}

std::int64_t schedule_lower_bound(const CostTable& table) {
  if (table.num_cores == 0) return 0;
  return makespan_lower_bound(table.num_cores, table.num_buses,
                              flatten_times(table), false);
}

std::int64_t schedule_capacity_bound(const CostTable& table) {
  if (table.num_cores == 0) return 0;
  return makespan_lower_bound(table.num_cores, table.num_buses,
                              flatten_times(table), true);
}

Schedule greedy_schedule(int num_cores, int num_buses, const CostFn& cost,
                         const std::vector<std::int64_t>& ref_time,
                         const GreedyOptions& opts) {
  return greedy_schedule(build_cost_table(num_cores, num_buses, cost),
                         ref_time, opts);
}

Schedule greedy_schedule(const CostTable& table,
                         const std::vector<std::int64_t>& ref_time,
                         const GreedyOptions& opts) {
  const int num_cores = table.num_cores;
  const int num_buses = table.num_buses;
  if (num_cores < 0 || num_buses < 1)
    throw std::invalid_argument("greedy_schedule: bad sizes");
  if (static_cast<int>(ref_time.size()) != num_cores)
    throw std::invalid_argument("greedy_schedule: ref_time size mismatch");

  // Plain row-major time matrix for the hot construction/refinement loops.
  std::vector<std::int64_t> time;
  time.reserve(static_cast<std::size_t>(num_cores) *
               static_cast<std::size_t>(num_buses));
  for (int i = 0; i < num_cores; ++i)
    for (int b = 0; b < num_buses; ++b) time.push_back(table.at(i, b).time);

  const std::vector<int> order = schedule_core_order(num_cores, ref_time);
  const CostFn cost = [&table](int core, int bus) {
    return table.at(core, bus);
  };
  return greedy_schedule_prepared(num_cores, num_buses, time, order, cost,
                                  opts);
}

std::vector<int> schedule_core_order(
    int num_cores, const std::vector<std::int64_t>& ref_time) {
  if (static_cast<int>(ref_time.size()) != num_cores)
    throw std::invalid_argument("schedule_core_order: ref_time size mismatch");
  std::vector<int> order(static_cast<std::size_t>(num_cores));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ref_time[static_cast<std::size_t>(a)] >
           ref_time[static_cast<std::size_t>(b)];
  });
  return order;
}

Schedule greedy_schedule_prepared(int num_cores, int num_buses,
                                  const std::vector<std::int64_t>& time,
                                  const std::vector<int>& order,
                                  const CostFn& cost,
                                  const GreedyOptions& opts) {
  if (num_cores < 0 || num_buses < 1)
    throw std::invalid_argument("greedy_schedule: bad sizes");
  if (time.size() != static_cast<std::size_t>(num_cores) *
                         static_cast<std::size_t>(num_buses))
    throw std::invalid_argument("greedy_schedule: time matrix size mismatch");
  if (static_cast<int>(order.size()) != num_cores)
    throw std::invalid_argument("greedy_schedule: order size mismatch");
  const std::size_t k = static_cast<std::size_t>(num_buses);

  // Paper step 4: longest first, least makespan increase.
  std::vector<int> assign(static_cast<std::size_t>(num_cores), 0);
  std::vector<std::int64_t> loads(k, 0);
  for (int core : order) {
    const std::int64_t makespan = max_load(loads);
    const std::size_t row = static_cast<std::size_t>(core) * k;
    int best_bus = -1;
    std::int64_t best_makespan = 0, best_finish = 0;
    for (int b = 0; b < num_buses; ++b) {
      const std::int64_t finish = loads[static_cast<std::size_t>(b)] +
                                  time[row + static_cast<std::size_t>(b)];
      const std::int64_t new_makespan = std::max(makespan, finish);
      const bool better =
          best_bus < 0 || new_makespan < best_makespan ||
          (new_makespan == best_makespan &&
           (finish < best_finish ||
            (finish == best_finish && !opts.stable_ties)));
      if (better) {
        best_bus = b;
        best_makespan = new_makespan;
        best_finish = finish;
      }
    }
    assign[static_cast<std::size_t>(core)] = best_bus;
    loads[static_cast<std::size_t>(best_bus)] +=
        time[row + static_cast<std::size_t>(best_bus)];
  }

  if (opts.refine_passes > 0)
    refine(num_cores, num_buses, time, assign, loads, opts.refine_passes);

  // Materialize the schedule: cores on each bus in construction order.
  Schedule s;
  s.bus_finish.assign(k, 0);
  for (int core : order) {
    const int b = assign[static_cast<std::size_t>(core)];
    const BusAccessCost c = cost(core, b);
    ScheduleEntry e;
    e.core = core;
    e.bus = b;
    e.start = s.bus_finish[static_cast<std::size_t>(b)];
    e.end = e.start + c.time;
    e.choice = c.choice;
    s.bus_finish[static_cast<std::size_t>(b)] = e.end;
    s.total_volume_bits += c.volume_bits;
    s.entries.push_back(e);
  }
  return s;
}

}  // namespace soctest
