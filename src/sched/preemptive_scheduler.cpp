#include "sched/preemptive_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace soctest {

std::int64_t SegmentedSchedule::makespan() const {
  std::int64_t m = 0;
  for (std::int64_t f : bus_finish) m = std::max(m, f);
  return m;
}

void SegmentedSchedule::validate(
    int num_cores, const std::vector<std::int64_t>& required_time) const {
  if (static_cast<int>(required_time.size()) != num_cores)
    throw std::logic_error("SegmentedSchedule: required_time size");
  std::vector<std::int64_t> done(static_cast<std::size_t>(num_cores), 0);
  std::vector<int> bound_bus(static_cast<std::size_t>(num_cores), -1);
  std::vector<std::int64_t> bus_cursor(bus_finish.size(), 0);
  std::vector<std::int64_t> core_cursor(static_cast<std::size_t>(num_cores),
                                        0);
  for (const ScheduleEntry& s : segments) {
    if (s.core < 0 || s.core >= num_cores)
      throw std::logic_error("SegmentedSchedule: bad core");
    if (s.bus < 0 || s.bus >= static_cast<int>(bus_finish.size()))
      throw std::logic_error("SegmentedSchedule: bad bus");
    if (s.end <= s.start)
      throw std::logic_error("SegmentedSchedule: empty segment");
    if (s.start < bus_cursor[static_cast<std::size_t>(s.bus)])
      throw std::logic_error("SegmentedSchedule: bus overlap");
    bus_cursor[static_cast<std::size_t>(s.bus)] = s.end;
    if (s.start < core_cursor[static_cast<std::size_t>(s.core)])
      throw std::logic_error("SegmentedSchedule: core overlaps itself");
    core_cursor[static_cast<std::size_t>(s.core)] = s.end;
    int& bound = bound_bus[static_cast<std::size_t>(s.core)];
    if (bound < 0)
      bound = s.bus;
    else if (bound != s.bus)
      throw std::logic_error("SegmentedSchedule: core changed bus");
    done[static_cast<std::size_t>(s.core)] += s.end - s.start;
  }
  for (int c = 0; c < num_cores; ++c)
    if (done[static_cast<std::size_t>(c)] !=
        required_time[static_cast<std::size_t>(c)])
      throw std::logic_error("SegmentedSchedule: core " + std::to_string(c) +
                             " ran " +
                             std::to_string(done[static_cast<std::size_t>(c)]) +
                             " of " +
                             std::to_string(
                                 required_time[static_cast<std::size_t>(c)]));
}

SegmentedSchedule preemptive_power_schedule(
    int num_cores, int num_buses, const CostFn& cost, const PowerFn& power,
    const std::vector<std::int64_t>& ref_time,
    const PowerScheduleOptions& opts) {
  if (num_cores < 0 || num_buses < 1)
    throw std::invalid_argument("preemptive_power_schedule: bad sizes");
  if (static_cast<int>(ref_time.size()) != num_cores)
    throw std::invalid_argument("preemptive_power_schedule: ref_time size");
  if (opts.power_budget <= 0.0)
    throw std::invalid_argument("preemptive_power_schedule: budget");

  // Pre-bind nothing; remaining time is defined once a core is bound.
  std::vector<int> bound(static_cast<std::size_t>(num_cores), -1);
  std::vector<std::int64_t> remaining(static_cast<std::size_t>(num_cores),
                                      -1);
  std::vector<BusAccessCost> bound_cost(static_cast<std::size_t>(num_cores));

  // Feasibility: every core must fit alone on its cheapest-power bus.
  for (int i = 0; i < num_cores; ++i) {
    double min_p = std::numeric_limits<double>::max();
    for (int b = 0; b < num_buses; ++b) min_p = std::min(min_p, power(i, b));
    if (min_p > opts.power_budget)
      throw std::runtime_error("preemptive_power_schedule: core " +
                               std::to_string(i) + " exceeds the budget");
  }

  std::vector<int> order(static_cast<std::size_t>(num_cores));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ref_time[static_cast<std::size_t>(a)] >
           ref_time[static_cast<std::size_t>(b)];
  });

  SegmentedSchedule s;
  s.bus_finish.assign(static_cast<std::size_t>(num_buses), 0);
  int unfinished = num_cores;
  std::int64_t now = 0;

  while (unfinished > 0) {
    // Select the active set: longest remaining first (unbound cores rank
    // by ref_time), one per bus, within the power budget.
    std::vector<int> pick_order = order;
    std::stable_sort(pick_order.begin(), pick_order.end(), [&](int a, int b) {
      const std::int64_t ra = remaining[static_cast<std::size_t>(a)] >= 0
                                  ? remaining[static_cast<std::size_t>(a)]
                                  : ref_time[static_cast<std::size_t>(a)];
      const std::int64_t rb = remaining[static_cast<std::size_t>(b)] >= 0
                                  ? remaining[static_cast<std::size_t>(b)]
                                  : ref_time[static_cast<std::size_t>(b)];
      return ra > rb;
    });

    std::vector<bool> bus_taken(static_cast<std::size_t>(num_buses), false);
    std::vector<int> active;
    double used = 0.0;
    for (int core : pick_order) {
      if (remaining[static_cast<std::size_t>(core)] == 0) continue;
      int b = bound[static_cast<std::size_t>(core)];
      if (b >= 0) {
        if (bus_taken[static_cast<std::size_t>(b)]) continue;
        if (used + power(core, b) > opts.power_budget) continue;
      } else {
        // First activation: lowest free bus that fits the budget,
        // preferring buses without a paused (bound, unfinished) core so
        // new work does not steal a resumption slot.
        std::vector<int> busy_bound(static_cast<std::size_t>(num_buses), 0);
        for (int other = 0; other < num_cores; ++other)
          if (bound[static_cast<std::size_t>(other)] >= 0 &&
              remaining[static_cast<std::size_t>(other)] != 0)
            ++busy_bound[static_cast<std::size_t>(
                bound[static_cast<std::size_t>(other)])];
        b = -1;
        for (int pass = 0; pass < 2 && b < 0; ++pass) {
          for (int cand = 0; cand < num_buses; ++cand) {
            if (bus_taken[static_cast<std::size_t>(cand)]) continue;
            if (pass == 0 && busy_bound[static_cast<std::size_t>(cand)] > 0)
              continue;
            if (used + power(core, cand) > opts.power_budget) continue;
            b = cand;
            break;
          }
        }
        if (b < 0) continue;
        bound[static_cast<std::size_t>(core)] = b;
        bound_cost[static_cast<std::size_t>(core)] = cost(core, b);
        remaining[static_cast<std::size_t>(core)] =
            bound_cost[static_cast<std::size_t>(core)].time;
        s.total_volume_bits +=
            bound_cost[static_cast<std::size_t>(core)].volume_bits;
        if (remaining[static_cast<std::size_t>(core)] == 0) {
          --unfinished;
          continue;
        }
      }
      bus_taken[static_cast<std::size_t>(b)] = true;
      used += power(core, b);
      active.push_back(core);
    }
    if (active.empty())
      throw std::logic_error("preemptive_power_schedule: deadlock");

    // Run until the earliest completion among the active cores.
    std::int64_t step = std::numeric_limits<std::int64_t>::max();
    for (int core : active)
      step = std::min(step, remaining[static_cast<std::size_t>(core)]);

    for (int core : active) {
      const int b = bound[static_cast<std::size_t>(core)];
      ScheduleEntry e;
      e.core = core;
      e.bus = b;
      e.start = now;
      e.end = now + step;
      e.choice = bound_cost[static_cast<std::size_t>(core)].choice;
      s.segments.push_back(e);
      s.bus_finish[static_cast<std::size_t>(b)] = e.end;
      remaining[static_cast<std::size_t>(core)] -= step;
      if (remaining[static_cast<std::size_t>(core)] == 0) --unfinished;
    }
    now += step;
  }

  // Merge back-to-back segments of the same core (cosmetic but keeps the
  // segment list minimal).
  std::vector<ScheduleEntry> merged;
  for (const ScheduleEntry& e : s.segments) {
    if (!merged.empty() && merged.back().core == e.core &&
        merged.back().bus == e.bus && merged.back().end == e.start) {
      merged.back().end = e.end;
    } else {
      merged.push_back(e);
    }
  }
  s.segments = std::move(merged);
  return s;
}

}  // namespace soctest
