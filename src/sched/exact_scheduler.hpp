// Exact optimizer for small instances: exhaustively enumerates TAM
// partitions and core-to-bus assignments. Exponential — used in tests to
// bound the greedy heuristic's optimality gap, and available to users for
// small SOCs. The problem is NP-hard (paper Section 3), so this is gated by
// size limits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sched/schedule.hpp"
#include "tam/tam_architecture.hpp"

namespace soctest {

struct ExactResult {
  TamArchitecture arch;
  std::vector<int> assignment;  // core -> bus
  std::int64_t makespan = 0;
};

struct ExactLimits {
  int max_cores = 10;
  int max_buses = 4;
  std::int64_t max_states = 50'000'000;  // partitions * k^n guard
};

/// Finds the minimum-makespan (architecture, assignment) for `num_cores`
/// cores over all partitions of `total_width` into 1..max_buses buses.
/// `cost(core, bus_width)` must be width-monotone-free (any values allowed).
/// Returns nullopt if the instance exceeds `limits`.
std::optional<ExactResult> exact_optimize(
    int num_cores, int total_width,
    const std::function<std::int64_t(int core, int bus_width)>& cost,
    const ExactLimits& limits = {});

}  // namespace soctest
