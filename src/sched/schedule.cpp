#include "sched/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace soctest {

std::int64_t Schedule::makespan() const {
  std::int64_t m = 0;
  for (std::int64_t f : bus_finish) m = std::max(m, f);
  return m;
}

void Schedule::validate(int num_cores, bool allow_gaps) const {
  std::vector<int> seen(static_cast<std::size_t>(num_cores), 0);
  std::vector<std::int64_t> cursor(bus_finish.size(), 0);
  for (const ScheduleEntry& e : entries) {
    if (e.core < 0 || e.core >= num_cores)
      throw std::logic_error("Schedule: core index out of range");
    if (e.bus < 0 || e.bus >= static_cast<int>(bus_finish.size()))
      throw std::logic_error("Schedule: bus index out of range");
    if (++seen[static_cast<std::size_t>(e.core)] > 1)
      throw std::logic_error("Schedule: core scheduled twice");
    std::int64_t& cur = cursor[static_cast<std::size_t>(e.bus)];
    if (allow_gaps ? e.start < cur : e.start != cur)
      throw std::logic_error("Schedule: gap or overlap on bus " +
                             std::to_string(e.bus));
    if (e.end < e.start) throw std::logic_error("Schedule: negative duration");
    cur = e.end;
  }
  for (int c = 0; c < num_cores; ++c)
    if (!seen[static_cast<std::size_t>(c)])
      throw std::logic_error("Schedule: core " + std::to_string(c) +
                             " unscheduled");
  for (std::size_t b = 0; b < bus_finish.size(); ++b)
    if (cursor[b] != bus_finish[b])
      throw std::logic_error("Schedule: bus_finish mismatch");
}

}  // namespace soctest
