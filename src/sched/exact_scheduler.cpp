#include "sched/exact_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "tam/partition.hpp"

namespace soctest {
namespace {

// Depth-first assignment with branch-and-bound on the running makespan.
void assign_rec(int core, int num_cores, const std::vector<int>& widths,
                const std::vector<std::vector<std::int64_t>>& cost,
                std::vector<std::int64_t>& load, std::vector<int>& assign,
                std::int64_t& best, std::vector<int>& best_assign) {
  if (core == num_cores) {
    std::int64_t makespan = 0;
    for (std::int64_t l : load) makespan = std::max(makespan, l);
    if (makespan < best) {
      best = makespan;
      best_assign = assign;
    }
    return;
  }
  for (std::size_t b = 0; b < widths.size(); ++b) {
    const std::int64_t t =
        cost[static_cast<std::size_t>(core)][b];
    if (load[b] + t >= best) continue;  // bound
    load[b] += t;
    assign[static_cast<std::size_t>(core)] = static_cast<int>(b);
    assign_rec(core + 1, num_cores, widths, cost, load, assign, best,
               best_assign);
    load[b] -= t;
  }
}

double pow_ll(double base, int exp) {
  double r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

}  // namespace

std::optional<ExactResult> exact_optimize(
    int num_cores, int total_width,
    const std::function<std::int64_t(int core, int bus_width)>& cost,
    const ExactLimits& limits) {
  if (num_cores > limits.max_cores) return std::nullopt;

  ExactResult best;
  best.makespan = -1;

  const int kmax = std::min({limits.max_buses, num_cores, total_width});
  for (int k = 1; k <= kmax; ++k) {
    const std::vector<TamArchitecture> parts =
        enumerate_partitions(total_width, k);
    const double states = parts.size() * pow_ll(k, num_cores);
    if (states > static_cast<double>(limits.max_states)) return std::nullopt;

    for (const TamArchitecture& arch : parts) {
      // Cache cost(core, width) per distinct width of this partition.
      std::vector<std::vector<std::int64_t>> c(
          static_cast<std::size_t>(num_cores),
          std::vector<std::int64_t>(arch.widths.size(), 0));
      for (int i = 0; i < num_cores; ++i)
        for (std::size_t b = 0; b < arch.widths.size(); ++b)
          c[static_cast<std::size_t>(i)][b] =
              cost(i, arch.widths[b]);

      std::vector<std::int64_t> load(arch.widths.size(), 0);
      std::vector<int> assign(static_cast<std::size_t>(num_cores), 0);
      std::vector<int> best_assign;
      std::int64_t best_ms =
          best.makespan < 0 ? std::numeric_limits<std::int64_t>::max()
                            : best.makespan;
      assign_rec(0, num_cores, arch.widths, c, load, assign, best_ms,
                 best_assign);
      if (!best_assign.empty() &&
          (best.makespan < 0 || best_ms < best.makespan)) {
        best.makespan = best_ms;
        best.arch = arch;
        best.assignment = best_assign;
      }
    }
  }
  if (best.makespan < 0) return std::nullopt;
  return best;
}

}  // namespace soctest
