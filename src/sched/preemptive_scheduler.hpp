// Preemptive power-constrained scheduling (after the related work on SOC
// test scheduling with preemption and power constraints): a core's test
// may be split into segments, pausing while the power budget is needed
// elsewhere and resuming later *on the same bus* (re-binding a wrapper to
// a different-width bus mid-test is not physical).
//
// Model: at every completion event the scheduler re-selects the active
// set — unfinished cores in longest-remaining-first order, each bound to
// its bus (bound at first activation, lowest free bus), subject to one
// core per bus and the power budget. Paused cores lose nothing but time.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/power_scheduler.hpp"
#include "sched/schedule.hpp"

namespace soctest {

struct SegmentedSchedule {
  /// Segments in start order; one core may appear in several entries.
  std::vector<ScheduleEntry> segments;
  std::vector<std::int64_t> bus_finish;
  std::int64_t total_volume_bits = 0;

  std::int64_t makespan() const;

  /// Invariants: segments on one bus do not overlap; segments of one core
  /// do not overlap, all run on one bus, and sum to the core's full test
  /// time. Throws std::logic_error on violation.
  void validate(int num_cores,
                const std::vector<std::int64_t>& required_time) const;
};

/// Event-driven preemptive list scheduling. Same feasibility rule as
/// power_schedule (every core must fit the budget alone).
SegmentedSchedule preemptive_power_schedule(
    int num_cores, int num_buses, const CostFn& cost, const PowerFn& power,
    const std::vector<std::int64_t>& ref_time,
    const PowerScheduleOptions& opts);

}  // namespace soctest
