// ASCII Gantt rendering of a schedule — one row per bus, proportional bars,
// matching the style of the paper's Figure 4 schedule diagrams.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "tam/tam_architecture.hpp"

namespace soctest {

/// Renders `schedule` with `core_names` labels; `width_chars` is the width
/// of the time axis in characters.
std::string render_gantt(const Schedule& schedule,
                         const TamArchitecture& arch,
                         const std::vector<std::string>& core_names,
                         int width_chars = 72);

}  // namespace soctest
