#include "sched/power_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace soctest {

Schedule power_schedule(int num_cores, int num_buses, const CostFn& cost,
                        const PowerFn& power,
                        const std::vector<std::int64_t>& ref_time,
                        const PowerScheduleOptions& opts) {
  if (num_cores < 0 || num_buses < 1)
    throw std::invalid_argument("power_schedule: bad sizes");
  if (static_cast<int>(ref_time.size()) != num_cores)
    throw std::invalid_argument("power_schedule: ref_time size mismatch");
  if (opts.power_budget <= 0.0)
    throw std::invalid_argument("power_schedule: budget must be positive");

  // Feasibility: every core must fit the budget alone on some bus.
  for (int i = 0; i < num_cores; ++i) {
    double min_p = std::numeric_limits<double>::max();
    for (int b = 0; b < num_buses; ++b) min_p = std::min(min_p, power(i, b));
    if (min_p > opts.power_budget)
      throw std::runtime_error("power_schedule: core " + std::to_string(i) +
                               " alone exceeds the power budget");
  }

  std::vector<int> order(static_cast<std::size_t>(num_cores));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ref_time[static_cast<std::size_t>(a)] >
           ref_time[static_cast<std::size_t>(b)];
  });

  Schedule s;
  s.bus_finish.assign(static_cast<std::size_t>(num_buses), 0);
  std::vector<bool> scheduled(static_cast<std::size_t>(num_cores), false);
  std::vector<double> bus_power(static_cast<std::size_t>(num_buses), 0.0);
  std::vector<std::int64_t> bus_busy_until(
      static_cast<std::size_t>(num_buses), 0);
  int remaining = num_cores;
  std::int64_t now = 0;

  while (remaining > 0) {
    double active_power = 0.0;
    for (int b = 0; b < num_buses; ++b)
      if (bus_busy_until[static_cast<std::size_t>(b)] > now)
        active_power += bus_power[static_cast<std::size_t>(b)];

    // Idle buses greedily pick the longest core that fits the headroom.
    bool placed_any = false;
    for (int b = 0; b < num_buses; ++b) {
      if (bus_busy_until[static_cast<std::size_t>(b)] > now) continue;
      for (int core : order) {
        if (scheduled[static_cast<std::size_t>(core)]) continue;
        const double p = power(core, b);
        if (active_power + p > opts.power_budget) continue;
        const BusAccessCost c = cost(core, b);
        ScheduleEntry e;
        e.core = core;
        e.bus = b;
        e.start = now;
        e.end = now + c.time;
        e.choice = c.choice;
        s.entries.push_back(e);
        s.total_volume_bits += c.volume_bits;
        s.bus_finish[static_cast<std::size_t>(b)] = e.end;
        bus_busy_until[static_cast<std::size_t>(b)] = e.end;
        bus_power[static_cast<std::size_t>(b)] = p;
        active_power += p;
        scheduled[static_cast<std::size_t>(core)] = true;
        --remaining;
        placed_any = true;
        break;
      }
    }
    if (remaining == 0) break;

    // Advance to the next completion event.
    std::int64_t next = std::numeric_limits<std::int64_t>::max();
    for (int b = 0; b < num_buses; ++b) {
      const std::int64_t until = bus_busy_until[static_cast<std::size_t>(b)];
      if (until > now) next = std::min(next, until);
    }
    if (next == std::numeric_limits<std::int64_t>::max()) {
      if (!placed_any)
        throw std::logic_error("power_schedule: deadlock with idle buses");
      continue;  // everything idle but we placed work at `now`; re-loop
    }
    now = next;
  }
  return s;
}

double schedule_peak_power(const Schedule& schedule, const PowerFn& power) {
  double peak = 0.0;
  for (const ScheduleEntry& e : schedule.entries) {
    // Evaluate concurrency at each entry start (power steps only there).
    double at_start = 0.0;
    for (const ScheduleEntry& o : schedule.entries)
      if (o.start <= e.start && e.start < o.end)
        at_start += power(o.core, o.bus);
    peak = std::max(peak, at_start);
  }
  return peak;
}

}  // namespace soctest
