// ATE vector-repeat modeling (after "Efficiently Utilizing ATE Vector
// Repeat", in the reproduced paper's related work): testers store a repeat
// count instead of consecutive identical vectors. Compressed codeword
// streams repeat heavily — every empty scan slice is the same Head word —
// so vector repeat shrinks the *stored* footprint below the shipped
// data volume.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/stream_encoder.hpp"

namespace soctest {

struct RepeatStats {
  std::int64_t raw_vectors = 0;     // cycles shipped to the DUT
  std::int64_t stored_vectors = 0;  // distinct-run entries in ATE memory
  double reduction_factor() const {
    return stored_vectors == 0
               ? 0.0
               : static_cast<double>(raw_vectors) /
                     static_cast<double>(stored_vectors);
  }
};

/// Run-length statistics of an arbitrary per-cycle vector sequence.
RepeatStats vector_repeat_stats(const std::vector<std::uint32_t>& vectors);

/// Packs a selective-encoding stream into per-cycle TAM words and measures
/// its repeat compressibility.
RepeatStats vector_repeat_stats(const EncodedStream& stream);

}  // namespace soctest
