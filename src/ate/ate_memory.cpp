#include "ate/ate_memory.hpp"

#include <algorithm>

#include "bitvec/bit_util.hpp"

namespace soctest {

AteMemoryReport ate_memory(const OptimizationResult& result) {
  AteMemoryReport report;
  report.bus_depth.assign(result.buses.size(), 0);

  for (const ScheduleEntry& e : result.schedule.entries) {
    const BusRealization& bus =
        result.buses[static_cast<std::size_t>(e.bus)];
    const int width = std::max(1, bus.ate_width);
    report.bus_depth[static_cast<std::size_t>(e.bus)] +=
        ceil_div(e.choice.data_volume_bits, width);
  }

  std::int64_t sum = 0;
  for (std::size_t b = 0; b < report.bus_depth.size(); ++b) {
    report.max_channel_depth =
        std::max(report.max_channel_depth, report.bus_depth[b]);
    report.total_bits +=
        report.bus_depth[b] *
        std::max(1, result.buses[b].ate_width);
    sum += report.bus_depth[b];
  }
  if (!report.bus_depth.empty() && sum > 0) {
    const double mean =
        static_cast<double>(sum) / static_cast<double>(report.bus_depth.size());
    report.imbalance = static_cast<double>(report.max_channel_depth) / mean;
  }
  return report;
}

}  // namespace soctest
