#include "ate/vector_repeat.hpp"

namespace soctest {

RepeatStats vector_repeat_stats(const std::vector<std::uint32_t>& vectors) {
  RepeatStats stats;
  stats.raw_vectors = static_cast<std::int64_t>(vectors.size());
  for (std::size_t i = 0; i < vectors.size(); ++i)
    if (i == 0 || vectors[i] != vectors[i - 1]) ++stats.stored_vectors;
  return stats;
}

RepeatStats vector_repeat_stats(const EncodedStream& stream) {
  std::vector<std::uint32_t> vectors;
  vectors.reserve(stream.words.size());
  for (const Codeword& cw : stream.words)
    vectors.push_back(pack(cw, stream.params));
  return vector_repeat_stats(vectors);
}

}  // namespace soctest
