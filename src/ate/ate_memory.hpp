// ATE vector-memory model. The paper's opening motivation is that test
// data volume exhausts tester memory: every ATE channel stores one bit per
// cycle in which its bus drives data, and the scarce resource is the
// per-channel memory *depth*. This module computes, for an optimization
// result, how deep each bus's channels must be and the total stored bits —
// the quantity the paper's V columns track, broken down per channel.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/soc_optimizer.hpp"

namespace soctest {

struct AteMemoryReport {
  /// Vector depth required by each bus's channels.
  std::vector<std::int64_t> bus_depth;
  /// Deepest channel anywhere — the tester's required memory depth.
  std::int64_t max_channel_depth = 0;
  /// Total stored bits: sum over buses of ate_width * depth.
  std::int64_t total_bits = 0;
  /// Channel-depth imbalance: max depth / mean depth (1.0 = balanced).
  double imbalance = 1.0;
};

/// Computes the report from a result's schedule and bus realizations:
/// the data for a core occupies ceil(volume / ate_width) vectors on its
/// bus, and a bus's depth is the sum over its cores.
AteMemoryReport ate_memory(const OptimizationResult& result);

}  // namespace soctest
