#include "report/json.hpp"

#include <sstream>

namespace soctest {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string compact_json(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  std::size_t i = 0;
  while (i < pretty.size()) {
    const char c = pretty[i];
    if (c == '\n' || c == '\r') {
      ++i;
      while (i < pretty.size() && pretty[i] == ' ') ++i;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

namespace {

const char* technique_name(Technique t) {
  switch (t) {
    case Technique::None: return "none";
    case Technique::SelectiveEncoding: return "selective-encoding";
    case Technique::Dictionary: return "dictionary";
  }
  return "unknown";
}

}  // namespace

std::string result_to_json(const OptimizationResult& r, const SocSpec& soc,
                           const runtime::RuntimeStats* stats) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"soc\": \"" << json_escape(soc.name) << "\",\n";
  os << "  \"mode\": \"" << json_escape(to_string(r.mode)) << "\",\n";
  os << "  \"constraint\": \"" << json_escape(to_string(r.constraint))
     << "\",\n";
  // Emitted only for non-default backends so pre-backend fixed-bus reports
  // (and the differential goldens pinning them) stay byte-identical.
  if (r.backend != BackendKind::FixedBus)
    os << "  \"backend\": \"" << json_escape(to_string(r.backend)) << "\",\n";
  // Same rule for the scheduling scenario: the default scenario emits
  // nothing, so every pre-scenario report (golden-pinned included) keeps
  // its exact bytes. The canonical string round-trips via parse_scenario.
  if (!r.scenario.is_default())
    os << "  \"scenario\": \"" << json_escape(r.scenario.to_string())
       << "\",\n";
  os << "  \"test_time\": " << r.test_time << ",\n";
  os << "  \"data_volume_bits\": " << r.data_volume_bits << ",\n";
  os << "  \"peak_power_mw\": " << r.peak_power_mw << ",\n";
  os << "  \"cpu_seconds\": " << r.cpu_seconds << ",\n";
  os << "  \"architecture\": {\"total_width\": " << r.arch.total_width()
     << ", \"buses\": [";
  for (int b = 0; b < r.arch.num_buses(); ++b)
    os << (b ? ", " : "") << r.arch.widths[static_cast<std::size_t>(b)];
  os << "]},\n";
  os << "  \"wiring\": {\"onchip_wires\": " << r.wiring.onchip_wires
     << ", \"ate_channels\": " << r.wiring.ate_channels
     << ", \"decompressors\": " << r.wiring.decompressors
     << ", \"flip_flops\": " << r.wiring.total_flip_flops
     << ", \"gates\": " << r.wiring.total_gates << "},\n";
  os << "  \"schedule\": [\n";
  for (std::size_t i = 0; i < r.schedule.entries.size(); ++i) {
    const ScheduleEntry& e = r.schedule.entries[i];
    const std::string name =
        e.core < soc.num_cores()
            ? soc.cores[static_cast<std::size_t>(e.core)].spec.name
            : std::to_string(e.core);
    os << "    {\"core\": \"" << json_escape(name) << "\", \"bus\": " << e.bus
       << ", \"start\": " << e.start << ", \"end\": " << e.end
       << ", \"mode\": \""
       << (e.choice.mode == AccessMode::Compressed ? "compressed" : "direct")
       << "\", \"technique\": \"" << technique_name(e.choice.technique)
       << "\", \"w\": " << e.choice.wires_used << ", \"m\": " << e.choice.m
       << ", \"volume_bits\": " << e.choice.data_volume_bits << "}"
       << (i + 1 < r.schedule.entries.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (stats) os << ",\n  \"runtime\": " << runtime::stats_to_json(*stats);
  os << "\n}\n";
  return os.str();
}

}  // namespace soctest
