#include "report/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace soctest {
namespace {

const char* kBusColors[] = {"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
                            "#76b7b2", "#edc948", "#b07aa1", "#9c755f"};

std::string escape_xml(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string gantt_svg(const Schedule& schedule, const TamArchitecture& arch,
                      const std::vector<std::string>& core_names,
                      const SvgOptions& opts) {
  const int label_w = 110;
  const int top = opts.title.empty() ? 10 : 40;
  const int plot_w = opts.width - label_w - 20;
  const int height = top + arch.num_buses() * opts.row_height + 40;
  const double makespan =
      std::max<double>(1.0, static_cast<double>(schedule.makespan()));

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opts.width
     << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n";
  if (!opts.title.empty())
    os << "  <text x=\"" << opts.width / 2
       << "\" y=\"24\" text-anchor=\"middle\" font-size=\"16\">"
       << escape_xml(opts.title) << "</text>\n";

  for (int b = 0; b < arch.num_buses(); ++b) {
    const int y = top + b * opts.row_height;
    os << "  <text x=\"6\" y=\"" << y + opts.row_height / 2 + 4
       << "\" font-size=\"12\">TAM" << b << " (w="
       << arch.widths[static_cast<std::size_t>(b)] << ")</text>\n";
    os << "  <line x1=\"" << label_w << "\" y1=\"" << y + opts.row_height
       << "\" x2=\"" << label_w + plot_w << "\" y2=\"" << y + opts.row_height
       << "\" stroke=\"#ccc\"/>\n";
  }

  for (const ScheduleEntry& e : schedule.entries) {
    const int y = top + e.bus * opts.row_height + 4;
    const double x0 = label_w + e.start / makespan * plot_w;
    const double x1 = label_w + e.end / makespan * plot_w;
    const char* color = kBusColors[static_cast<std::size_t>(e.bus) %
                                   (sizeof kBusColors / sizeof *kBusColors)];
    os << "  <rect x=\"" << x0 << "\" y=\"" << y << "\" width=\""
       << std::max(1.0, x1 - x0) << "\" height=\"" << opts.row_height - 8
       << "\" fill=\"" << color << "\" fill-opacity=\"0.8\" stroke=\"#333\"/>"
       << "\n";
    std::string name = e.core < static_cast<int>(core_names.size())
                           ? core_names[static_cast<std::size_t>(e.core)]
                           : std::to_string(e.core);
    os << "  <text x=\"" << (x0 + x1) / 2 << "\" y=\""
       << y + (opts.row_height - 8) / 2 + 4
       << "\" text-anchor=\"middle\" font-size=\"11\" fill=\"#fff\">"
       << escape_xml(name) << "</text>\n";
  }

  os << "  <text x=\"" << label_w + plot_w << "\" y=\"" << height - 12
     << "\" text-anchor=\"end\" font-size=\"12\">makespan = "
     << schedule.makespan() << " cycles</text>\n";
  os << "</svg>\n";
  return os.str();
}

std::string chart_svg(const ChartSeries& series, const ChartOptions& copts,
                      const SvgOptions& opts) {
  if (series.x.size() != series.y.size() || series.x.empty())
    throw std::invalid_argument("chart_svg: bad series");
  const int margin = 60;
  const int height = 420;
  const int plot_w = opts.width - 2 * margin;
  const int plot_h = height - 2 * margin;

  const auto [xmin_it, xmax_it] =
      std::minmax_element(series.x.begin(), series.x.end());
  const auto [ymin_it, ymax_it] =
      std::minmax_element(series.y.begin(), series.y.end());
  const double xmin = *xmin_it, xmax = *xmax_it;
  const double ymin = *ymin_it, ymax = *ymax_it;
  const double xspan = xmax > xmin ? xmax - xmin : 1.0;
  const double yspan = ymax > ymin ? ymax - ymin : 1.0;

  const auto px = [&](double x) {
    return margin + (x - xmin) / xspan * plot_w;
  };
  const auto py = [&](double y) {
    return height - margin - (y - ymin) / yspan * plot_h;
  };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opts.width
     << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n";
  const std::string title =
      !opts.title.empty() ? opts.title : copts.title;
  if (!title.empty())
    os << "  <text x=\"" << opts.width / 2
       << "\" y=\"28\" text-anchor=\"middle\" font-size=\"16\">"
       << escape_xml(title) << "</text>\n";

  // Axes.
  os << "  <line x1=\"" << margin << "\" y1=\"" << height - margin
     << "\" x2=\"" << margin + plot_w << "\" y2=\"" << height - margin
     << "\" stroke=\"#333\"/>\n";
  os << "  <line x1=\"" << margin << "\" y1=\"" << margin << "\" x2=\""
     << margin << "\" y2=\"" << height - margin << "\" stroke=\"#333\"/>\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", xmin);
  os << "  <text x=\"" << margin << "\" y=\"" << height - margin + 18
     << "\" font-size=\"11\">" << buf << "</text>\n";
  std::snprintf(buf, sizeof buf, "%.4g", xmax);
  os << "  <text x=\"" << margin + plot_w << "\" y=\"" << height - margin + 18
     << "\" text-anchor=\"end\" font-size=\"11\">" << buf << "</text>\n";
  std::snprintf(buf, sizeof buf, "%.4g", ymin);
  os << "  <text x=\"" << margin - 6 << "\" y=\"" << height - margin
     << "\" text-anchor=\"end\" font-size=\"11\">" << buf << "</text>\n";
  std::snprintf(buf, sizeof buf, "%.4g", ymax);
  os << "  <text x=\"" << margin - 6 << "\" y=\"" << margin + 4
     << "\" text-anchor=\"end\" font-size=\"11\">" << buf << "</text>\n";
  os << "  <text x=\"" << margin + plot_w / 2 << "\" y=\"" << height - 14
     << "\" text-anchor=\"middle\" font-size=\"12\">"
     << escape_xml(copts.x_label) << "</text>\n";
  os << "  <text x=\"16\" y=\"" << height / 2
     << "\" text-anchor=\"middle\" font-size=\"12\" transform=\"rotate(-90 "
        "16 "
     << height / 2 << ")\">" << escape_xml(copts.y_label) << "</text>\n";

  // Polyline + markers.
  os << "  <polyline fill=\"none\" stroke=\"#4e79a7\" stroke-width=\"1.5\" "
        "points=\"";
  for (std::size_t i = 0; i < series.x.size(); ++i)
    os << px(series.x[i]) << "," << py(series.y[i]) << " ";
  os << "\"/>\n";
  for (std::size_t i = 0; i < series.x.size(); ++i)
    os << "  <circle cx=\"" << px(series.x[i]) << "\" cy=\""
       << py(series.y[i]) << "\" r=\"2\" fill=\"#e15759\"/>\n";
  os << "</svg>\n";
  return os.str();
}

void write_svg_file(const std::string& path, const std::string& svg) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_svg_file: cannot open " + path);
  f << svg;
  if (!f) throw std::runtime_error("write_svg_file: write failed " + path);
}

}  // namespace soctest
