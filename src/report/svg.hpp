// SVG rendering of schedules (Gantt) and figure series — publication-ready
// counterparts of the ASCII renderers, written as standalone .svg files.
#pragma once

#include <string>
#include <vector>

#include "report/ascii_chart.hpp"
#include "sched/schedule.hpp"
#include "tam/tam_architecture.hpp"

namespace soctest {

struct SvgOptions {
  int width = 900;
  int row_height = 36;
  std::string title;
};

/// Gantt chart: one row per bus, labeled boxes per core test.
std::string gantt_svg(const Schedule& schedule, const TamArchitecture& arch,
                      const std::vector<std::string>& core_names,
                      const SvgOptions& opts = {});

/// Line chart of one (x, y) series with axes and tick labels.
std::string chart_svg(const ChartSeries& series, const ChartOptions& copts,
                      const SvgOptions& opts = {});

/// Writes `svg` to `path`; throws std::runtime_error on failure.
void write_svg_file(const std::string& path, const std::string& svg);

}  // namespace soctest
