#include "report/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace soctest {

Csv::Csv(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Csv: no headers");
}

Csv& Csv::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Csv: cell count mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Csv::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string Csv::to_string() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << escape(row[c]);
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Csv::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Csv: cannot open " + path);
  f << to_string();
  if (!f) throw std::runtime_error("Csv: write failed for " + path);
}

}  // namespace soctest
