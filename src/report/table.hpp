// Table: minimal column-aligned ASCII table builder for the experiment
// binaries (each reproduces one of the paper's tables).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace soctest {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Formatting helpers for cells.
  static std::string num(std::int64_t v);
  static std::string fixed(double v, int decimals);

  std::string to_string() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }
  const std::vector<std::string>& row(int i) const { return rows_.at(i); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soctest
