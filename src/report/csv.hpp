// CSV emission for downstream plotting of the reproduced figures.
#pragma once

#include <string>
#include <vector>

namespace soctest {

class Csv {
 public:
  explicit Csv(std::vector<std::string> headers);

  Csv& add_row(std::vector<std::string> cells);

  std::string to_string() const;
  /// Writes to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soctest
