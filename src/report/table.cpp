#include "report/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace soctest {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: cell count mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << row[c];
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace soctest
