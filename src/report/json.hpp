// JSON export of optimization results for downstream tooling (dashboards,
// regression diffing). Hand-rolled emitter — the schema is small and the
// repository carries no third-party dependencies beyond test frameworks.
#pragma once

#include <string>

#include "dft/soc_spec.hpp"
#include "opt/soc_optimizer.hpp"
#include "runtime/stats.hpp"

namespace soctest {

/// Serializes a result: mode, constraint, architecture, wiring, and the
/// full schedule with per-core choices. Stable field order. When `stats`
/// is non-null a "runtime" object (pool counters, TableCache hit/miss,
/// phase wall times) is embedded — pass &runtime::collect_stats()'s value
/// to record how the result was produced.
std::string result_to_json(const OptimizationResult& result,
                           const SocSpec& soc,
                           const runtime::RuntimeStats* stats = nullptr);

/// Escapes a string for inclusion in JSON (quotes added by caller).
std::string json_escape(const std::string& s);

/// Collapses a pretty-printed JSON document onto one line by dropping
/// newlines and the indentation that follows them. Safe on any output of
/// this module: json_escape turns control characters inside string values
/// into \u escapes, so a raw newline is always inter-token whitespace.
/// The server uses this to embed full reports in NDJSON response lines.
std::string compact_json(const std::string& pretty);

}  // namespace soctest
