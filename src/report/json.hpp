// JSON export of optimization results for downstream tooling (dashboards,
// regression diffing). Hand-rolled emitter — the schema is small and the
// repository carries no third-party dependencies beyond test frameworks.
#pragma once

#include <string>

#include "dft/soc_spec.hpp"
#include "opt/soc_optimizer.hpp"
#include "runtime/stats.hpp"

namespace soctest {

/// Serializes a result: mode, constraint, architecture, wiring, and the
/// full schedule with per-core choices. Stable field order. When `stats`
/// is non-null a "runtime" object (pool counters, TableCache hit/miss,
/// phase wall times) is embedded — pass &runtime::collect_stats()'s value
/// to record how the result was produced.
std::string result_to_json(const OptimizationResult& result,
                           const SocSpec& soc,
                           const runtime::RuntimeStats* stats = nullptr);

/// Escapes a string for inclusion in JSON (quotes added by caller).
std::string json_escape(const std::string& s);

}  // namespace soctest
