// AsciiChart: terminal line charts for the reproduced figures (test time vs
// wrapper-chain count, test time vs TAM width).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace soctest {

struct ChartSeries {
  std::vector<double> x;
  std::vector<double> y;
};

struct ChartOptions {
  int width = 72;   // plot area columns
  int height = 18;  // plot area rows
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders a scatter/line chart of one series.
std::string render_chart(const ChartSeries& series, const ChartOptions& opts);

}  // namespace soctest
