#include "report/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace soctest {

std::string render_chart(const ChartSeries& s, const ChartOptions& opts) {
  if (s.x.size() != s.y.size() || s.x.empty())
    throw std::invalid_argument("render_chart: bad series");
  const auto [xmin_it, xmax_it] = std::minmax_element(s.x.begin(), s.x.end());
  const auto [ymin_it, ymax_it] = std::minmax_element(s.y.begin(), s.y.end());
  const double xmin = *xmin_it, xmax = *xmax_it;
  const double ymin = *ymin_it, ymax = *ymax_it;
  const double xspan = xmax > xmin ? xmax - xmin : 1.0;
  const double yspan = ymax > ymin ? ymax - ymin : 1.0;

  std::vector<std::string> grid(
      static_cast<std::size_t>(opts.height),
      std::string(static_cast<std::size_t>(opts.width), ' '));
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    const int col = static_cast<int>(
        std::lround((s.x[i] - xmin) / xspan * (opts.width - 1)));
    const int row = static_cast<int>(
        std::lround((s.y[i] - ymin) / yspan * (opts.height - 1)));
    grid[static_cast<std::size_t>(opts.height - 1 - row)]
        [static_cast<std::size_t>(col)] = '*';
  }

  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  char ybuf[64];
  std::snprintf(ybuf, sizeof ybuf, "%.3g", ymax);
  os << ybuf << " (" << opts.y_label << " max)\n";
  for (const std::string& row : grid) os << "|" << row << "\n";
  std::snprintf(ybuf, sizeof ybuf, "%.3g", ymin);
  os << ybuf << " (min)\n";
  os << "+" << std::string(static_cast<std::size_t>(opts.width), '-') << "\n";
  char xbuf[128];
  std::snprintf(xbuf, sizeof xbuf, " %s: %.4g .. %.4g", opts.x_label.c_str(),
                xmin, xmax);
  os << xbuf << "\n";
  return os.str();
}

}  // namespace soctest
