// CoreExplorer: runs the per-core design-space exploration — wrapper design
// for every chain count (step 1) and compression cost for every decompressor
// geometry (step 2) — producing the CoreTable lookup structure.
#pragma once

#include "dft/soc_spec.hpp"
#include "explore/core_table.hpp"

namespace soctest {

struct ExploreOptions {
  /// Largest TAM/bus width the SOC-level optimizer will ever consider.
  int max_width = 64;
  /// Cap on wrapper-chain count m (the paper explores up to 255).
  int max_chains = 255;
};

/// Explores one core. Deterministic; cost is O(max_chains * care-bits).
CoreTable explore_core(const CoreUnderTest& core, const ExploreOptions& opts);

/// Explores every core of a SOC.
std::vector<CoreTable> explore_soc(const SocSpec& soc,
                                   const ExploreOptions& opts);

}  // namespace soctest
