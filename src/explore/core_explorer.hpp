// CoreExplorer: runs the per-core design-space exploration — wrapper design
// for every chain count (step 1) and compression cost for every decompressor
// geometry (step 2) — producing the CoreTable lookup structure.
#pragma once

#include <memory>

#include "dft/soc_spec.hpp"
#include "explore/core_table.hpp"
#include "runtime/cancellation.hpp"

namespace soctest {

struct ExploreOptions {
  /// Largest TAM/bus width the SOC-level optimizer will ever consider.
  int max_width = 64;
  /// Cap on wrapper-chain count m (the paper explores up to 255).
  int max_chains = 255;
  /// Consult/populate the process-wide content-addressed TableCache
  /// (src/runtime). Exploration is deterministic, so a hit is
  /// bit-identical to a cold run; disable only to measure cold costs.
  bool use_cache = true;
  /// Optional cooperative cancellation, polled by the exploration loops
  /// (runtime::CancelledError on the caller). An abandoned exploration
  /// never inserts a partial table into the cache. Excluded from cache
  /// fingerprints — it selects how long the code runs, not what it
  /// computes.
  const runtime::CancelToken* cancel = nullptr;
};

/// Explores one core. Deterministic for any thread count (the geometry
/// sweep runs on the runtime pool with index-ordered result slots); cost is
/// O(max_chains * care-bits). Never consults the cache.
CoreTable explore_core(const CoreUnderTest& core, const ExploreOptions& opts);

/// explore_core through the global TableCache (subject to opts.use_cache).
std::shared_ptr<const CoreTable> explore_core_cached(
    const CoreUnderTest& core, const ExploreOptions& opts);

/// Explores every core of a SOC, cores in parallel on the runtime pool.
std::vector<CoreTable> explore_soc(const SocSpec& soc,
                                   const ExploreOptions& opts);

}  // namespace soctest
