#include "explore/core_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace soctest {

CoreTable::CoreTable(std::string core_name, int max_width)
    : name_(std::move(core_name)), max_width_(max_width) {
  if (max_width < 1) throw std::invalid_argument("CoreTable: max_width < 1");
  direct_.resize(static_cast<std::size_t>(max_width) + 1);
  exact_compressed_.resize(static_cast<std::size_t>(max_width) + 1);
  best_.resize(static_cast<std::size_t>(max_width) + 1);
}

const CoreChoice& CoreTable::best(int w) const {
  if (w < 1 || w > max_width_)
    throw std::out_of_range("CoreTable::best: width out of range");
  return best_[static_cast<std::size_t>(w)];
}

const CoreChoice& CoreTable::best_compressed_exact(int w) const {
  if (w < 1 || w > max_width_)
    throw std::out_of_range("CoreTable::best_compressed_exact: width");
  return exact_compressed_[static_cast<std::size_t>(w)];
}

const CoreChoice& CoreTable::direct(int w) const {
  if (w < 1 || w > max_width_)
    throw std::out_of_range("CoreTable::direct: width out of range");
  return direct_[static_cast<std::size_t>(w)];
}

std::vector<SweepPoint> CoreTable::sweep_at_width(int w) const {
  std::vector<SweepPoint> out;
  for (const SweepPoint& pt : sweep_)
    if (pt.w == w) out.push_back(pt);
  return out;
}

const SweepPoint* CoreTable::at_chains(int m) const {
  // sweep_ is ordered by m; binary search.
  auto it = std::lower_bound(
      sweep_.begin(), sweep_.end(), m,
      [](const SweepPoint& pt, int key) { return pt.m < key; });
  if (it == sweep_.end() || it->m != m) return nullptr;
  return &*it;
}

void CoreTable::add_sweep_point(SweepPoint pt) {
  if (!sweep_.empty() && pt.m <= sweep_.back().m)
    throw std::invalid_argument("CoreTable: sweep points must be m-ordered");
  sweep_.push_back(pt);
}

void CoreTable::set_direct(int w, CoreChoice c) {
  direct_.at(static_cast<std::size_t>(w)) = c;
}

void CoreTable::offer_compressed(int w, CoreChoice c) {
  if (w < 1 || w > max_width_)
    throw std::out_of_range("CoreTable::offer_compressed: width");
  if (c.mode != AccessMode::Compressed || c.m < 1)
    throw std::invalid_argument("CoreTable::offer_compressed: bad choice");
  offers_.emplace_back(w, c);
}

void CoreTable::finalize() {
  // Exact compressed choice per codeword width.
  std::fill(exact_compressed_.begin(), exact_compressed_.end(), CoreChoice{});
  for (const SweepPoint& pt : sweep_) {
    if (pt.w > max_width_) continue;
    CoreChoice& slot = exact_compressed_[static_cast<std::size_t>(pt.w)];
    if (slot.m == 0 || pt.test_time < slot.test_time ||
        (pt.test_time == slot.test_time &&
         pt.data_volume_bits < slot.data_volume_bits)) {
      CoreChoice c;
      c.mode = AccessMode::Compressed;
      c.technique = Technique::SelectiveEncoding;
      c.tam_width = pt.w;
      c.wires_used = pt.w;
      c.m = pt.m;
      c.test_time = pt.test_time;
      c.data_volume_bits = pt.data_volume_bits;
      slot = c;
    }
  }
  for (const auto& [w, offer] : offers_) {
    CoreChoice& slot = exact_compressed_[static_cast<std::size_t>(w)];
    if (slot.m == 0 || offer.test_time < slot.test_time ||
        (offer.test_time == slot.test_time &&
         offer.data_volume_bits < slot.data_volume_bits)) {
      slot = offer;
      slot.tam_width = w;
    }
  }
  // Best choice with at most w wires: min(direct(w), compressed(w' <= w)),
  // then prefix-minimize so best(w) never worsens as w grows.
  for (int w = 1; w <= max_width_; ++w) {
    CoreChoice b = direct_[static_cast<std::size_t>(w)];
    b.tam_width = w;
    const CoreChoice& c = exact_compressed_[static_cast<std::size_t>(w)];
    if (c.m != 0 && (c.test_time < b.test_time ||
                     (c.test_time == b.test_time &&
                      c.data_volume_bits < b.data_volume_bits))) {
      b = c;
      b.tam_width = w;
    }
    if (w > 1) {
      const CoreChoice& prev = best_[static_cast<std::size_t>(w - 1)];
      if (prev.test_time < b.test_time ||
          (prev.test_time == b.test_time &&
           prev.data_volume_bits < b.data_volume_bits)) {
        b = prev;
        b.tam_width = w;
      }
    }
    best_[static_cast<std::size_t>(w)] = b;
  }
}

}  // namespace soctest
