#include "explore/core_explorer.hpp"

#include <algorithm>

#include "bitvec/bit_util.hpp"
#include "codec/sparse_cost.hpp"
#include "wrapper/slice_map.hpp"
#include "wrapper/time_model.hpp"
#include "wrapper/wrapper_design.hpp"

namespace soctest {

CoreTable explore_core(const CoreUnderTest& core, const ExploreOptions& opts) {
  core.validate();
  CoreTable table(core.spec.name, opts.max_width);

  // Step 1: uncompressed wrapper design for every candidate TAM width.
  // A core with fewer scannable elements than w simply leaves wires unused.
  for (int w = 1; w <= opts.max_width; ++w) {
    const int m = std::min(w, core.spec.max_wrapper_chains());
    const WrapperDesign d = design_wrapper(core.spec, m);
    CoreChoice c;
    c.mode = AccessMode::Direct;
    c.tam_width = w;
    c.wires_used = m;
    c.m = m;
    c.test_time = uncompressed_test_time(d, core.spec.num_patterns);
    c.data_volume_bits = uncompressed_data_volume(d, core.spec.num_patterns);
    table.set_direct(w, c);
  }

  // Step 2: every decompressor geometry m in [2, cap]. The codeword width
  // w(m) = ceil(log2(m+1)) + 2 follows from m; geometries whose w exceeds
  // max_width are still recorded for the sweep plots but never selected.
  const int m_cap = std::min(opts.max_chains, core.spec.max_wrapper_chains());
  for (int m = 2; m <= m_cap; ++m) {
    const WrapperDesign d = design_wrapper(core.spec, m);
    const SliceMap map(d, core.cubes.num_cells());
    const SparseCostResult cost = sparse_stream_cost(map, core.cubes);
    SweepPoint pt;
    pt.m = m;
    pt.w = codeword_width_for_chains(m);
    pt.codewords = cost.total_codewords;
    pt.scan_out = d.scan_out_length;
    pt.test_time = compressed_test_time(cost.total_codewords,
                                        d.scan_out_length,
                                        core.spec.num_patterns);
    pt.data_volume_bits = cost.total_codewords * pt.w;
    table.add_sweep_point(pt);
  }

  table.finalize();
  return table;
}

std::vector<CoreTable> explore_soc(const SocSpec& soc,
                                   const ExploreOptions& opts) {
  std::vector<CoreTable> tables;
  tables.reserve(soc.cores.size());
  for (const CoreUnderTest& c : soc.cores)
    tables.push_back(explore_core(c, opts));
  return tables;
}

}  // namespace soctest
