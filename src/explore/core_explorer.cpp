#include "explore/core_explorer.hpp"

#include <algorithm>

#include "bitvec/bit_util.hpp"
#include "codec/sparse_cost.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "runtime/table_cache.hpp"
#include "wrapper/slice_map.hpp"
#include "wrapper/time_model.hpp"
#include "wrapper/wrapper_design.hpp"

namespace soctest {

CoreTable explore_core(const CoreUnderTest& core, const ExploreOptions& opts) {
  core.validate();
  CoreTable table(core.spec.name, opts.max_width);

  // Step 1: uncompressed wrapper design for every candidate TAM width.
  // A core with fewer scannable elements than w simply leaves wires unused.
  // Every width is independent; each writes only its own slot.
  runtime::ParallelOptions popts;
  popts.cancel = opts.cancel;
  std::vector<CoreChoice> direct(static_cast<std::size_t>(opts.max_width));
  runtime::parallel_for(1, opts.max_width + 1, [&](std::int64_t w) {
    const int m =
        std::min(static_cast<int>(w), core.spec.max_wrapper_chains());
    const WrapperDesign d = design_wrapper(core.spec, m);
    CoreChoice c;
    c.mode = AccessMode::Direct;
    c.tam_width = static_cast<int>(w);
    c.wires_used = m;
    c.m = m;
    c.test_time = uncompressed_test_time(d, core.spec.num_patterns);
    c.data_volume_bits = uncompressed_data_volume(d, core.spec.num_patterns);
    direct[static_cast<std::size_t>(w - 1)] = c;
  }, popts);
  for (int w = 1; w <= opts.max_width; ++w)
    table.set_direct(w, direct[static_cast<std::size_t>(w - 1)]);

  // Step 2: every decompressor geometry m in [2, cap]. The codeword width
  // w(m) = ceil(log2(m+1)) + 2 follows from m; geometries whose w exceeds
  // max_width are still recorded for the sweep plots but never selected.
  // This is the expensive loop — each geometry re-runs wrapper design and
  // the sparse codec cost — and each m fills its own slot, so the table is
  // bit-identical no matter how many pool lanes ran it. The cost model is
  // the fused word-parallel path (codec/sparse_cost.cpp): per geometry,
  // every cube is scattered once into packed slice planes and costed with
  // the popcount kernels, so no slice is ever queried bit by bit.
  const int m_cap = std::min(opts.max_chains, core.spec.max_wrapper_chains());
  if (m_cap >= 2) {
    std::vector<SweepPoint> pts(static_cast<std::size_t>(m_cap - 1));
    runtime::parallel_for(2, m_cap + 1, [&](std::int64_t mi) {
      const int m = static_cast<int>(mi);
      const WrapperDesign d = design_wrapper(core.spec, m);
      const SliceMap map(d, core.cubes.num_cells());
      const SparseCostResult cost = sparse_stream_cost(map, core.cubes);
      SweepPoint pt;
      pt.m = m;
      pt.w = codeword_width_for_chains(m);
      pt.codewords = cost.total_codewords;
      pt.scan_out = d.scan_out_length;
      pt.test_time = compressed_test_time(cost.total_codewords,
                                          d.scan_out_length,
                                          core.spec.num_patterns);
      pt.data_volume_bits = cost.total_codewords * pt.w;
      pts[static_cast<std::size_t>(m - 2)] = pt;
    }, popts);
    for (const SweepPoint& pt : pts) table.add_sweep_point(pt);
  }

  table.finalize();
  return table;
}

std::shared_ptr<const CoreTable> explore_core_cached(
    const CoreUnderTest& core, const ExploreOptions& opts) {
  if (!opts.use_cache)
    return std::make_shared<const CoreTable>(explore_core(core, opts));
  return runtime::TableCache::global().get_or_compute(
      runtime::key_of(core, opts), [&] { return explore_core(core, opts); });
}

std::vector<CoreTable> explore_soc(const SocSpec& soc,
                                   const ExploreOptions& opts) {
  runtime::PhaseTimer timer("explore");
  runtime::ParallelOptions popts;
  popts.cancel = opts.cancel;
  return runtime::parallel_map(soc.cores, [&](const CoreUnderTest& c) {
    return *explore_core_cached(c, opts);
  }, popts);
}

}  // namespace soctest
