// CoreTable: the per-core lookup table the SOC-level optimizer consumes
// (paper Section 3, steps 1-2). For every decompressor geometry m we record
// the exact compressed test time and volume; for every TAM width w we record
// the best achievable choice (compressed with codeword width <= w, or the
// plain uncompressed wrapper) using at most w wires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace soctest {

/// How a core is accessed for one candidate width.
enum class AccessMode { Direct, Compressed };

/// Which compression technique realizes a compressed choice (the paper
/// uses selective encoding throughout; the Dictionary alternative enables
/// the follow-up work's per-core technique selection).
enum class Technique { None, SelectiveEncoding, Dictionary };

struct CoreChoice {
  AccessMode mode = AccessMode::Direct;
  Technique technique = Technique::None;
  int tam_width = 0;    // wires allocated on the bus
  int wires_used = 0;   // wires actually driven (codec w, or chain count)
  int m = 0;            // wrapper chains
  int aux = 0;          // technique-specific (dictionary entry count)
  std::int64_t test_time = 0;
  std::int64_t data_volume_bits = 0;

  friend bool operator==(const CoreChoice&, const CoreChoice&) = default;
};

/// One evaluated decompressor geometry (exact, not prefix-minimized) —
/// the raw material of the paper's Figures 2 and 3.
struct SweepPoint {
  int m = 0;
  int w = 0;  // codeword width for this m
  std::int64_t codewords = 0;
  std::int64_t test_time = 0;
  std::int64_t data_volume_bits = 0;
  int scan_out = 0;

  friend bool operator==(const SweepPoint&, const SweepPoint&) = default;
};

class CoreTable {
 public:
  CoreTable() = default;
  CoreTable(std::string core_name, int max_width);

  const std::string& core_name() const { return name_; }
  int max_width() const { return max_width_; }

  /// Best choice using at most `w` wires (prefix-minimized over widths).
  const CoreChoice& best(int w) const;
  /// Best *compressed* choice whose codeword width is exactly `w`
  /// (Figure 3's series); has m == 0 if no geometry exists for that width.
  const CoreChoice& best_compressed_exact(int w) const;
  /// Uncompressed wrapper choice at exactly `w` wires.
  const CoreChoice& direct(int w) const;

  const std::vector<SweepPoint>& sweep() const { return sweep_; }
  /// Sweep points whose codeword width equals `w` (Figure 2's series).
  std::vector<SweepPoint> sweep_at_width(int w) const;

  /// Compressed time/volume at exactly m wrapper chains (PerTam baseline);
  /// returns nullptr if m was not evaluated.
  const SweepPoint* at_chains(int m) const;

  // Builder interface (used by CoreExplorer).
  void add_sweep_point(SweepPoint pt);
  void set_direct(int w, CoreChoice c);
  /// Offers an additional compressed configuration at exact width `w`
  /// (e.g. a dictionary codec evaluated by explore_core_with_selection);
  /// folded into the exact/best tables by finalize(). May be called after
  /// an earlier finalize(); call finalize() again afterwards.
  void offer_compressed(int w, CoreChoice c);
  void finalize();  // computes best/exact tables from sweep + direct + offers

  /// Member-wise equality — the determinism tests' "byte-identical" check
  /// (every field that exists is compared; there is no hidden state).
  friend bool operator==(const CoreTable&, const CoreTable&) = default;

 private:
  std::string name_;
  int max_width_ = 0;
  std::vector<SweepPoint> sweep_;           // ordered by m
  std::vector<std::pair<int, CoreChoice>> offers_;  // (w, external choice)
  std::vector<CoreChoice> direct_;          // [w]
  std::vector<CoreChoice> exact_compressed_;  // [w]
  std::vector<CoreChoice> best_;            // [w], prefix-minimized
};

}  // namespace soctest
