#include "explore/technique_select.hpp"

#include <algorithm>

#include "dict/dict_codec.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "runtime/table_cache.hpp"
#include "wrapper/time_model.hpp"
#include "wrapper/wrapper_design.hpp"

namespace soctest {
namespace {

CoreTable explore_with_selection_uncached(const CoreUnderTest& core,
                                          const ExploreOptions& opts,
                                          const DictSelectOptions& dict_opts) {
  // The base sweep dominates the cost and has its own cache line keyed
  // without the dict options, so plain and selection flows share it.
  CoreTable table = *explore_core_cached(core, opts);

  for (int m : dict_opts.chain_counts) {
    if (m < 2 || m > std::min(opts.max_chains, core.spec.max_wrapper_chains()))
      continue;
    const WrapperDesign d = design_wrapper(core.spec, m);
    const SliceMap map(d, core.cubes.num_cells());
    for (int entries : dict_opts.entry_counts) {
      const Dictionary dict = build_dictionary(map, core.cubes, entries);
      const DictCost cost = dict_cost(map, core.cubes, dict);
      CoreChoice c;
      c.mode = AccessMode::Compressed;
      c.technique = Technique::Dictionary;
      c.wires_used = dict.params.codeword_width();
      c.m = m;
      c.aux = entries;
      c.test_time = compressed_test_time(cost.total_cycles, d.scan_out_length,
                                         core.spec.num_patterns);
      c.data_volume_bits = cost.total_bits;
      if (c.wires_used >= 1 && c.wires_used <= table.max_width())
        table.offer_compressed(c.wires_used, c);
    }
  }
  table.finalize();
  return table;
}

}  // namespace

CoreTable explore_core_with_selection(const CoreUnderTest& core,
                                      const ExploreOptions& opts,
                                      const DictSelectOptions& dict_opts) {
  if (!opts.use_cache)
    return explore_with_selection_uncached(core, opts, dict_opts);
  return *runtime::TableCache::global().get_or_compute(
      runtime::key_of(core, opts, dict_opts),
      [&] { return explore_with_selection_uncached(core, opts, dict_opts); });
}

std::vector<CoreTable> explore_soc_with_selection(
    const SocSpec& soc, const ExploreOptions& opts,
    const DictSelectOptions& dict_opts) {
  runtime::PhaseTimer timer("explore");
  runtime::ParallelOptions popts;
  popts.cancel = opts.cancel;
  return runtime::parallel_map(soc.cores, [&](const CoreUnderTest& c) {
    return explore_core_with_selection(c, opts, dict_opts);
  }, popts);
}

}  // namespace soctest
