#include "explore/technique_select.hpp"

#include <algorithm>

#include "dict/dict_codec.hpp"
#include "wrapper/time_model.hpp"
#include "wrapper/wrapper_design.hpp"

namespace soctest {

CoreTable explore_core_with_selection(const CoreUnderTest& core,
                                      const ExploreOptions& opts,
                                      const DictSelectOptions& dict_opts) {
  CoreTable table = explore_core(core, opts);

  for (int m : dict_opts.chain_counts) {
    if (m < 2 || m > std::min(opts.max_chains, core.spec.max_wrapper_chains()))
      continue;
    const WrapperDesign d = design_wrapper(core.spec, m);
    const SliceMap map(d, core.cubes.num_cells());
    for (int entries : dict_opts.entry_counts) {
      const Dictionary dict = build_dictionary(map, core.cubes, entries);
      const DictCost cost = dict_cost(map, core.cubes, dict);
      CoreChoice c;
      c.mode = AccessMode::Compressed;
      c.technique = Technique::Dictionary;
      c.wires_used = dict.params.codeword_width();
      c.m = m;
      c.aux = entries;
      c.test_time = compressed_test_time(cost.total_cycles, d.scan_out_length,
                                         core.spec.num_patterns);
      c.data_volume_bits = cost.total_bits;
      if (c.wires_used >= 1 && c.wires_used <= table.max_width())
        table.offer_compressed(c.wires_used, c);
    }
  }
  table.finalize();
  return table;
}

std::vector<CoreTable> explore_soc_with_selection(
    const SocSpec& soc, const ExploreOptions& opts,
    const DictSelectOptions& dict_opts) {
  std::vector<CoreTable> tables;
  tables.reserve(soc.cores.size());
  for (const CoreUnderTest& c : soc.cores)
    tables.push_back(explore_core_with_selection(c, opts, dict_opts));
  return tables;
}

}  // namespace soctest
