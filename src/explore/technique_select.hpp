// Core-level compression technique selection (the authors' ATS 2008
// follow-up to the reproduced paper): for every core, evaluate *both*
// available compression techniques — selective encoding (src/codec) and
// dictionary-based slice compression (src/dict) — and let the SOC-level
// optimizer pick per core and per TAM width whichever is best, or no
// compression at all.
#pragma once

#include "dft/soc_spec.hpp"
#include "explore/core_explorer.hpp"

namespace soctest {

struct DictSelectOptions {
  /// Wrapper-chain counts to try (intersected with the core's feasible
  /// range). Coarser than the selective-encoding sweep because dictionary
  /// evaluation touches every slice.
  std::vector<int> chain_counts = {16, 32, 64, 128, 256};
  /// Dictionary sizes (powers of two).
  std::vector<int> entry_counts = {16, 64, 256};
};

/// explore_core() plus dictionary-codec offers folded into the table.
CoreTable explore_core_with_selection(const CoreUnderTest& core,
                                      const ExploreOptions& opts,
                                      const DictSelectOptions& dict_opts = {});

/// Per-SOC convenience.
std::vector<CoreTable> explore_soc_with_selection(
    const SocSpec& soc, const ExploreOptions& opts,
    const DictSelectOptions& dict_opts = {});

}  // namespace soctest
