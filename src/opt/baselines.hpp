// Convenience entry points for the paper's experiment matrix: run the
// proposed method and each baseline on the same SOC/budget and package the
// comparison rows of Tables 1-3.
#pragma once

#include "opt/soc_optimizer.hpp"

namespace soctest {

/// One Table-3-style row: the proposed per-core approach vs the no-TDC
/// architecture at the same TAM width.
struct TdcComparison {
  int width = 0;
  OptimizationResult without_tdc;  // tau_nc, V_nc
  OptimizationResult with_tdc;     // tau_c, V_c
  std::int64_t initial_volume_bits = 0;  // V_i

  double time_reduction_factor() const;    // tau_nc / tau_c
  double volume_vs_initial() const;        // V_i / V_c
  double volume_vs_uncompressed() const;   // V_nc / V_c
};

TdcComparison compare_with_without_tdc(const SocOptimizer& opt, int tam_width,
                                       int max_buses = 8);

/// One Table-1/2-style row: proposed vs per-TAM ([18]-like) vs fixed-w4
/// ([11]-like) under the given constraint.
struct MethodComparison {
  int width = 0;
  ConstraintMode constraint = ConstraintMode::TamWidth;
  OptimizationResult proposed;   // per-core expansion
  OptimizationResult per_tam;    // SOC-level expansion
  OptimizationResult fixed_w4;   // fixed 4-wire interfaces
};

MethodComparison compare_methods(const SocOptimizer& opt, int width,
                                 ConstraintMode constraint,
                                 int max_buses = 8);

}  // namespace soctest
