// SocOptimizer::optimize — the step-3 architecture search. For each bus
// count k the search starts from the balanced partition and hill-climbs over
// single-wire moves; the step-4 schedule is the objective (no surrogate).
// All starts across all bus counts are independent hill climbs, so they run
// in parallel on the runtime pool; the winner is reduced in start order,
// which keeps the result identical for any thread count. FixedWidth4 uses
// its prescribed architecture directly.
//
// Candidate evaluation is incremental by default (DeltaEvaluator): cost
// columns are cached per bus width (a single-wire move disturbs at most
// two), a makespan lower bound prunes candidates that cannot beat the
// incumbent before any scheduling runs, and the surviving neighbourhood is
// batched through runtime::parallel_map and reduced in index order — so the
// result stays bit-identical to the original evaluate-every-neighbour loop
// (kept under OptimizerOptions::incremental = false for the equivalence
// tests and the BENCH_search ablation). Search counters flow into
// runtime::collect_stats() either way.
#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "opt/delta_evaluator.hpp"
#include "opt/soc_optimizer.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "tam/partition.hpp"

namespace soctest {
namespace {

bool better(const OptimizationResult& a, const OptimizationResult& b) {
  if (a.test_time != b.test_time) return a.test_time < b.test_time;
  return a.data_volume_bits < b.data_volume_bits;
}

}  // namespace

TamArchitecture fixed_w4_architecture(int total_width) {
  TamArchitecture arch;
  int left = total_width;
  while (left >= 4) {
    arch.widths.push_back(4);
    left -= 4;
  }
  if (left > 0) arch.widths.push_back(left);
  return arch;
}

OptimizationResult SocOptimizer::optimize(const OptimizerOptions& opts) const {
  return optimize_shared(opts, nullptr, nullptr);
}

OptimizationResult SocOptimizer::optimize_shared(
    const OptimizerOptions& opts, ScheduleMemo* shared_memo,
    ColumnCache* shared_columns) const {
  if (opts.width < 1)
    throw std::invalid_argument("SocOptimizer: width must be >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  runtime::PhaseTimer timer("search");

  OptimizationResult best;
  if (opts.mode == ArchMode::FixedWidth4) {
    best = evaluate(fixed_w4_architecture(opts.width), opts);
  } else {
    // Start set shared with the fixed-bus ArchitectureBackend
    // (tam/hill_climb_starts): balanced, skewed and tapered partitions for
    // each bus count.
    const std::vector<TamArchitecture> starts =
        hill_climb_starts(opts.width, opts.max_buses, soc_->num_cores());

    // Incremental climb: prune on the step-start incumbent. The incumbent
    // only improves during a step's reduction, so a candidate whose bound
    // exceeds it at step start can never be accepted at its position in
    // the scan either — pruning is invisible in the result. The schedule
    // memo AND the per-width column cache are shared across all starts:
    // climbs converging into the same basin re-encounter each other's
    // candidates, and for a fixed (mode, constraint) a width-w cost column
    // is the same no matter which climb builds it first.
    ScheduleMemo local_memo;
    ColumnCache local_columns;
    ScheduleMemo* memo = shared_memo ? shared_memo : &local_memo;
    ColumnCache* columns = shared_columns ? shared_columns : &local_columns;
    runtime::ParallelOptions par;
    par.cancel = opts.cancel;
    const auto climb_incremental = [&](const TamArchitecture& start) {
      DeltaEvaluator ev(*this, opts, memo, columns);
      TamArchitecture arch = start;
      ev.prepare({arch});
      OptimizationResult cur = ev.evaluate(arch);
      for (int step = 0; step < opts.max_search_steps; ++step) {
        if (opts.cancel) opts.cancel->check();
        const std::vector<TamArchitecture> neigh = wire_move_neighbours(arch);
        ev.note_generated(neigh.size());
        ev.prepare(neigh);
        std::vector<int> survivors;
        survivors.reserve(neigh.size());
        for (int i = 0; i < static_cast<int>(neigh.size()); ++i) {
          if (ev.bound_exceeds(neigh[static_cast<std::size_t>(i)],
                               cur.test_time))
            ev.note_pruned(1);
          else
            survivors.push_back(i);
        }
        std::vector<OptimizationResult> results = runtime::parallel_map(
            survivors, [&](int i) {
              return ev.evaluate(neigh[static_cast<std::size_t>(i)]);
            }, par);
        bool improved = false;
        for (std::size_t j = 0; j < survivors.size(); ++j) {
          if (better(results[j], cur)) {
            cur = std::move(results[j]);
            arch = neigh[static_cast<std::size_t>(survivors[j])];
            improved = true;
          }
        }
        if (!improved) break;
      }
      runtime::add_search_counters(ev.counters());
      return cur;
    };

    // The original full-evaluation loop, kept verbatim as the reference.
    const auto climb_full = [&](const TamArchitecture& start) {
      runtime::SearchStats st;
      TamArchitecture arch = start;
      OptimizationResult cur = evaluate(arch, opts);
      ++st.candidates_scheduled;
      for (int step = 0; step < opts.max_search_steps; ++step) {
        if (opts.cancel) opts.cancel->check();
        bool improved = false;
        for (const TamArchitecture& n : wire_move_neighbours(arch)) {
          ++st.candidates_generated;
          OptimizationResult r = evaluate(n, opts);
          ++st.candidates_scheduled;
          if (better(r, cur)) {
            cur = std::move(r);
            arch = n;
            improved = true;
          }
        }
        if (!improved) break;
      }
      runtime::add_search_counters(st);
      return cur;
    };

    const auto hill_climb = [&](const TamArchitecture& start) {
      return opts.incremental ? climb_incremental(start) : climb_full(start);
    };

    const std::vector<OptimizationResult> climbed =
        runtime::parallel_map(starts, hill_climb, par);
    bool have_best = false;
    for (const OptimizationResult& r : climbed) {
      if (!have_best || better(r, best)) {
        best = r;
        have_best = true;
      }
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  best.cpu_seconds = std::chrono::duration<double>(t1 - t0).count();
  return best;
}

}  // namespace soctest
