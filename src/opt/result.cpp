#include "opt/result.hpp"

#include <sstream>

#include "sched/gantt.hpp"

namespace soctest {

std::string summarize(const OptimizationResult& r, const SocSpec& soc) {
  std::ostringstream os;
  os << "mode=" << to_string(r.mode) << " constraint=" << to_string(r.constraint);
  if (r.backend != BackendKind::FixedBus)
    os << " backend=" << to_string(r.backend);
  os << " W=" << r.arch.total_width() << " buses=" << r.arch.to_string()
     << "\n";
  os << "test time = " << r.test_time << " cycles, data volume = "
     << r.data_volume_bits << " bits, planning CPU = " << r.cpu_seconds
     << " s\n";
  os << "wiring: on-chip=" << r.wiring.onchip_wires
     << " ATE=" << r.wiring.ate_channels
     << " decompressors=" << r.wiring.decompressors
     << " (FF=" << r.wiring.total_flip_flops
     << ", gates=" << r.wiring.total_gates << ")\n";
  os << "per-core choices:\n";
  for (const ScheduleEntry& e : r.schedule.entries) {
    os << "  " << soc.cores[static_cast<std::size_t>(e.core)].spec.name
       << ": bus " << e.bus << " "
       << (e.choice.mode == AccessMode::Compressed ? "compressed" : "direct")
       << " w=" << e.choice.wires_used << " m=" << e.choice.m << " time="
       << e.choice.test_time << " [" << e.start << ", " << e.end << ")\n";
  }
  std::vector<std::string> names;
  names.reserve(soc.cores.size());
  for (const auto& c : soc.cores) names.push_back(c.spec.name);
  os << render_gantt(r.schedule, r.arch, names);
  return os.str();
}

std::string one_line(const OptimizationResult& r) {
  std::ostringstream os;
  os << to_string(r.mode) << " W=" << r.arch.total_width() << " ("
     << r.arch.to_string() << ") tau=" << r.test_time
     << " V=" << r.data_volume_bits;
  if (r.backend != BackendKind::FixedBus)
    os << " backend=" << to_string(r.backend);
  return os.str();
}

}  // namespace soctest
