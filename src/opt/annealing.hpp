// Simulated-annealing architecture search — an alternative to the default
// multi-start hill climbing for step 3, exploring bus-count changes
// (merge/split) as well as single-wire moves. Used by the search ablation
// bench and available to users who want to trade CPU time for solution
// quality on hard instances.
#pragma once

#include <cstdint>

#include "opt/soc_optimizer.hpp"

namespace soctest {

struct AnnealingOptions {
  std::int64_t iterations = 2'000;
  double initial_temperature = 0.10;  // relative to the starting makespan
  double cooling = 0.997;             // per-iteration multiplier
  std::uint64_t seed = 1;
};

/// Runs SA over TAM partitions for the given optimizer options (the mode,
/// constraint and width are taken from `opts`; `opts.max_buses` bounds the
/// bus count). Deterministic for a fixed seed.
///
/// With `opts.incremental` (the default) proposals are evaluated through
/// the same DeltaEvaluator the hill climb uses: cached per-width cost
/// columns, width-vector memoization, and lower-bound rejection of
/// provably-uphill proposals — bit-identical to the from-scratch path
/// (opts.incremental = false) including the RNG stream, while running far
/// fewer full schedule constructions. Counters flow into
/// runtime::collect_stats() (anneal_proposals / anneal_memo_hits /
/// anneal_bound_pruned).
///
/// `opts.cancel` is polled between proposals; a fired token surfaces as
/// runtime::CancelledError (the walk's partial state is discarded).
OptimizationResult optimize_annealing(const SocOptimizer& optimizer,
                                      const OptimizerOptions& opts,
                                      const AnnealingOptions& anneal = {});

/// optimize_annealing drinking from externally owned caches (same contract
/// as SocOptimizer::optimize_shared — the caches must come from the same
/// (optimizer, opts) universe). The server's SessionCache passes its
/// per-SOC ScheduleMemo/ColumnCache here so repeat annealing requests hit
/// warm state; nulls fall back to walk-private caches.
OptimizationResult optimize_annealing_shared(const SocOptimizer& optimizer,
                                             const OptimizerOptions& opts,
                                             const AnnealingOptions& anneal,
                                             ScheduleMemo* memo,
                                             ColumnCache* columns);

}  // namespace soctest
