#include "opt/baselines.hpp"

namespace soctest {

namespace {
double ratio(std::int64_t num, std::int64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double TdcComparison::time_reduction_factor() const {
  return ratio(without_tdc.test_time, with_tdc.test_time);
}
double TdcComparison::volume_vs_initial() const {
  return ratio(initial_volume_bits, with_tdc.data_volume_bits);
}
double TdcComparison::volume_vs_uncompressed() const {
  return ratio(without_tdc.data_volume_bits, with_tdc.data_volume_bits);
}

TdcComparison compare_with_without_tdc(const SocOptimizer& opt, int tam_width,
                                       int max_buses) {
  TdcComparison cmp;
  cmp.width = tam_width;
  cmp.initial_volume_bits = opt.soc().initial_data_volume_bits();

  OptimizerOptions o;
  o.width = tam_width;
  o.constraint = ConstraintMode::TamWidth;
  o.max_buses = max_buses;

  o.mode = ArchMode::NoTdc;
  cmp.without_tdc = opt.optimize(o);
  o.mode = ArchMode::PerCore;
  cmp.with_tdc = opt.optimize(o);
  return cmp;
}

MethodComparison compare_methods(const SocOptimizer& opt, int width,
                                 ConstraintMode constraint, int max_buses) {
  MethodComparison cmp;
  cmp.width = width;
  cmp.constraint = constraint;

  OptimizerOptions o;
  o.width = width;
  o.constraint = constraint;
  o.max_buses = max_buses;

  o.mode = ArchMode::PerCore;
  cmp.proposed = opt.optimize(o);
  o.mode = ArchMode::PerTam;
  cmp.per_tam = opt.optimize(o);
  o.mode = ArchMode::FixedWidth4;
  cmp.fixed_w4 = opt.optimize(o);

  // The per-core access options are a superset of the per-TAM options at
  // every bus width, so any architecture the per-TAM search discovered is
  // also a valid (at-least-as-good) per-core candidate. Cross-seeding
  // removes hill-climbing artifacts from the comparison.
  o.mode = ArchMode::PerCore;
  OptimizationResult seeded = opt.evaluate(cmp.per_tam.arch, o);
  if (seeded.test_time < cmp.proposed.test_time ||
      (seeded.test_time == cmp.proposed.test_time &&
       seeded.data_volume_bits < cmp.proposed.data_volume_bits)) {
    seeded.cpu_seconds = cmp.proposed.cpu_seconds;
    cmp.proposed = std::move(seeded);
  }
  return cmp;
}

}  // namespace soctest
