#include "opt/fixed_bus_backend.hpp"

#include <numeric>
#include <stdexcept>

#include "sched/greedy_scheduler.hpp"
#include "tam/partition.hpp"

namespace soctest {

FixedBusBackend::FixedBusBackend(const SocOptimizer& optimizer,
                                 const OptimizerOptions& opts)
    : opt_(&optimizer), opts_(&opts), columns_(optimizer, opts) {
  if (opts.width < 1)
    throw std::invalid_argument("FixedBusBackend: width must be >= 1");
  if (opts.mode == ArchMode::FixedWidth4)
    throw std::invalid_argument(
        "FixedBusBackend: FixedWidth4 prescribes its architecture — nothing "
        "to search");
}

std::vector<std::vector<int>> FixedBusBackend::starts() const {
  std::vector<std::vector<int>> out;
  for (TamArchitecture& a : hill_climb_starts(opts_->width, opts_->max_buses,
                                              opt_->soc().num_cores()))
    out.push_back(std::move(a.widths));
  return out;
}

std::vector<std::vector<int>> FixedBusBackend::neighbours(
    const std::vector<int>& genome) const {
  std::vector<std::vector<int>> out;
  for (TamArchitecture& a : wire_move_neighbours(TamArchitecture{genome}))
    out.push_back(std::move(a.widths));
  return out;
}

bool FixedBusBackend::valid(const std::vector<int>& genome) const {
  if (genome.empty()) return false;
  long long sum = 0;
  for (int w : genome) {
    if (w < 1) return false;
    sum += w;
  }
  return sum == opts_->width;
}

std::int64_t FixedBusBackend::lower_bound(const std::vector<int>& genome) const {
  const int n = opt_->soc().num_cores();
  const int k = static_cast<int>(genome.size());
  std::vector<std::int64_t> time(static_cast<std::size_t>(n) *
                                 static_cast<std::size_t>(k));
  for (int b = 0; b < k; ++b) {
    const auto col = columns_.column(genome[static_cast<std::size_t>(b)]);
    for (int i = 0; i < n; ++i)
      time[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
           static_cast<std::size_t>(b)] =
          col->cost[static_cast<std::size_t>(i)].time;
  }
  return makespan_lower_bound(n, k, time, opts_->capacity_bound);
}

OptimizationResult FixedBusBackend::evaluate(
    const std::vector<int>& genome) const {
  {
    std::lock_guard<std::mutex> lock(memo_.mu);
    auto it = memo_.results.find(genome);
    if (it != memo_.results.end()) {
      memo_.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    memo_.misses.fetch_add(1, std::memory_order_relaxed);
  }
  OptimizationResult r = opt_->evaluate(TamArchitecture{genome}, *opts_);
  std::lock_guard<std::mutex> lock(memo_.mu);
  memo_.results.emplace(genome, r);  // racing computes are identical
  return r;
}

}  // namespace soctest
