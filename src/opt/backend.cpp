#include "opt/backend.hpp"

#include <stdexcept>
#include <utility>

#include "opt/fixed_bus_backend.hpp"
#include "opt/rect_backend.hpp"

namespace soctest {

bool better_result(const OptimizationResult& a, const OptimizationResult& b) {
  if (a.test_time != b.test_time) return a.test_time < b.test_time;
  return a.data_volume_bits < b.data_volume_bits;
}

BackendColumns::BackendColumns(const SocOptimizer& opt,
                               const OptimizerOptions& opts)
    : opt_(&opt), opts_(&opts) {}

std::shared_ptr<const CostColumn> BackendColumns::column(int width) const {
  if (width < 1)
    throw std::invalid_argument("BackendColumns: width must be >= 1");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<std::size_t>(width) < columns_.size() &&
        columns_[static_cast<std::size_t>(width)])
      return columns_[static_cast<std::size_t>(width)];
  }
  auto col = std::make_shared<CostColumn>();
  col->bus = opt_->realize_bus(width, *opts_);
  const int n = opt_->soc().num_cores();
  col->cost.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    col->cost.push_back(opt_->bus_access_cost(i, col->bus, *opts_));
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<std::size_t>(width) >= columns_.size())
    columns_.resize(static_cast<std::size_t>(width) + 1);
  auto& slot = columns_[static_cast<std::size_t>(width)];
  if (!slot) slot = std::move(col);  // racing builders: first insert wins
  return slot;
}

std::unique_ptr<ArchitectureBackend> make_backend(
    BackendKind kind, const SocOptimizer& optimizer,
    const OptimizerOptions& opts) {
  switch (kind) {
    case BackendKind::FixedBus:
      return std::make_unique<FixedBusBackend>(optimizer, opts);
    case BackendKind::Rect:
      return std::make_unique<RectBackend>(optimizer, opts);
    case BackendKind::Race:
      break;
  }
  throw std::invalid_argument(
      "make_backend: race is a driver policy, not an architecture model — "
      "construct the fixed and rect backends separately");
}

OptimizationResult optimize_backend(const SocOptimizer& optimizer,
                                    const OptimizerOptions& opts) {
  switch (opts.backend) {
    case BackendKind::FixedBus:
      return optimizer.optimize(opts);
    case BackendKind::Rect:
      return optimize_rect(optimizer, opts);
    case BackendKind::Race: {
      OptimizationResult fixed = optimizer.optimize(opts);
      return race_merge_rect(optimizer, opts, std::move(fixed));
    }
  }
  throw std::invalid_argument("optimize_backend: unknown backend");
}

OptimizationResult race_merge_rect(const SocOptimizer& optimizer,
                                   const OptimizerOptions& opts,
                                   OptimizationResult fixed_result,
                                   bool* rect_won) {
  if (rect_won) *rect_won = false;
  if (opts.backend != BackendKind::Race) return fixed_result;
  OptimizerOptions ropts = opts;
  ropts.backend = BackendKind::Rect;
  OptimizationResult rect = optimize_rect(optimizer, ropts);
  if (better_result(rect, fixed_result)) {
    if (rect_won) *rect_won = true;
    return rect;
  }
  return fixed_result;
}

}  // namespace soctest
