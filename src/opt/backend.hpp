// ArchitectureBackend: the architecture model behind the step-3 search as
// an interface, so the search drivers (hill climb, annealing, portfolio,
// distributed coordinator) and the invariant test battery are generic over
// HOW a width budget becomes an architecture. A backend defines a genome —
// a vector<int> whose meaning is backend-private:
//
//   FixedBusBackend   genome = the bus width vector (TamArchitecture
//                     widths); evaluation is SocOptimizer::evaluate, the
//                     paper's step-4 greedy + refine scheduler. Its starts
//                     and neighbourhood are the SAME functions the
//                     pre-backend optimize() used (tam/hill_climb_starts,
//                     wire_move_neighbours), so the fixed-bus search stays
//                     byte-identical to the pre-refactor code.
//   RectBackend       genome = one width per core, each drawn from that
//                     core's Pareto-optimal wrapper points; evaluation
//                     packs the (width x time) rectangles into the W-wide
//                     strip (sched/rect_packer) and materializes the
//                     packing through the same result path as fixed-bus.
//
// Every backend obeys the contract pinned by tests/backend_contract_test:
// starts() and neighbours() emit only valid() genomes, neighbours() never
// repeats or includes its input, evaluate() is a deterministic pure
// function of the genome whose schedule passes Schedule::validate with
// every core exactly once, and lower_bound() never exceeds the evaluated
// makespan.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "opt/delta_evaluator.hpp"
#include "opt/soc_optimizer.hpp"

namespace soctest {

/// The search's total order on results: test_time, then data volume as the
/// tie-break. `true` iff a beats b — shared by every driver (hill climb,
/// annealing reductions, race merge) so "better" means one thing.
bool better_result(const OptimizationResult& a, const OptimizationResult& b);

class ArchitectureBackend {
 public:
  virtual ~ArchitectureBackend() = default;

  virtual BackendKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Deterministic multi-start seed genomes (non-empty, all valid()).
  virtual std::vector<std::vector<int>> starts() const = 0;

  /// One-move neighbourhood of `genome`: all valid, no duplicates, the
  /// input itself excluded. Every move must be reversible — each
  /// neighbour's own neighbourhood contains `genome` again (the contract
  /// suite's proposal/undo round-trip).
  virtual std::vector<std::vector<int>> neighbours(
      const std::vector<int>& genome) const = 0;

  /// Is `genome` a well-formed member of this backend's search space?
  virtual bool valid(const std::vector<int>& genome) const = 0;

  /// Admissible makespan lower bound: no evaluation of `genome` (or of any
  /// schedule of the architecture it denotes) beats it. Thread-safe.
  virtual std::int64_t lower_bound(const std::vector<int>& genome) const = 0;

  /// Full evaluation: a deterministic pure function of the genome,
  /// memoized internally. Thread-safe for concurrent distinct genomes.
  virtual OptimizationResult evaluate(const std::vector<int>& genome) const = 0;
};

/// Per-width cost columns for backends. The realization of a width-v bus
/// (or wire lane) and every core's access cost on it depend only on
/// (mode, constraint, v) — the same property DeltaEvaluator's ColumnCache
/// rests on — so one store serves any backend of one (optimizer, opts)
/// universe. Thread-safe; columns are built on demand and immutable after.
class BackendColumns {
 public:
  BackendColumns(const SocOptimizer& opt, const OptimizerOptions& opts);

  /// The column for `width` (>= 1). Never null.
  std::shared_ptr<const CostColumn> column(int width) const;

 private:
  const SocOptimizer* opt_;
  const OptimizerOptions* opts_;
  mutable std::mutex mu_;
  mutable std::vector<std::shared_ptr<const CostColumn>> columns_;
};

/// Constructs the backend for `kind`. Race is a driver policy, not an
/// architecture model — asking for it throws std::invalid_argument (make
/// the fixed and rect backends separately and merge with race_merge_rect).
/// `optimizer` and `opts` must outlive the backend.
std::unique_ptr<ArchitectureBackend> make_backend(BackendKind kind,
                                                  const SocOptimizer& optimizer,
                                                  const OptimizerOptions& opts);

/// The plain (non-anneal, non-portfolio) optimize entry point, dispatched
/// on opts.backend: FixedBus runs optimizer.optimize(opts) untouched, Rect
/// runs the deterministic rect hill climb (optimize_rect), Race runs the
/// fixed-bus search and merges the rect result over it.
OptimizationResult optimize_backend(const SocOptimizer& optimizer,
                                    const OptimizerOptions& opts);

/// Race-merge helper shared by the CLI, run_portfolio and the distributed
/// coordinator: when opts.backend == Race, runs the rectangle backend's
/// deterministic hill climb and returns the better of it and
/// `fixed_result` (ties keep fixed — the conservative, pre-backend
/// answer); any other backend returns `fixed_result` untouched. The rect
/// side depends only on (optimizer, opts) — never on jobs, workers or the
/// fixed trajectory — which is what keeps raced runs bit-identical across
/// every (workers x jobs) split. `rect_won` (optional) reports whether the
/// rect result displaced the fixed one.
OptimizationResult race_merge_rect(const SocOptimizer& optimizer,
                                   const OptimizerOptions& opts,
                                   OptimizationResult fixed_result,
                                   bool* rect_won = nullptr);

}  // namespace soctest
