// DeltaEvaluator: incremental candidate evaluation for the step-3
// architecture search. The cost a core pays on a bus depends only on that
// bus's width (plus the fixed mode/constraint), so the per-(core, bus) cost
// table of a candidate architecture factors into per-width COLUMNS. A
// single-wire move changes at most two bus widths; every other column is
// reused from the cache, an O(1) CoreTable lookup away from free. The
// columns themselves are shared across every climb of one optimize() call
// through a ColumnCache: for a fixed (mode, constraint) a width-w column is
// the same object no matter which climb asks first.
//
// On top of the columns sits a makespan LOWER BOUND (the work-conservation
// formula, tightened by sched/makespan_lower_bound's bus-capacity argument
// when OptimizerOptions::capacity_bound is set): candidates whose bound
// already exceeds the incumbent makespan cannot win even on the volume
// tie-break, so the greedy + refine scheduler never runs for them.
// Survivors are batched through runtime::parallel_map and reduced in index
// order, which keeps the search bit-identical to the serial full-evaluation
// loop.
//
// Finally, evaluations are MEMOIZED by width vector: the wire-move
// neighbourhoods of consecutive hill-climb steps overlap heavily (any
// second move touching one of the two buses changed by the accepted move
// composes back to a single move from the previous incumbent), so a climb
// re-encounters architectures it already scheduled — and independent
// multi-start climbs converge into the same basins, re-encountering each
// other's candidates. Evaluation is a deterministic function of the
// architecture alone — the incumbent never enters it — so handing back a
// memoized result is exact, not an approximation, even when another climb
// produced it. The search therefore shares one ScheduleMemo across all
// climbs of an optimize() call. The annealing search (opt/annealing) leans
// on the same memo even harder: SA revisits the architectures it bounced
// off constantly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "opt/soc_optimizer.hpp"
#include "runtime/fnv.hpp"
#include "runtime/stats.hpp"
#include "scenario/scheduler_backend.hpp"

namespace soctest {

/// FNV fingerprint of a width vector, used as the memo's hash. The memo
/// used to be a std::map whose lexicographic key comparisons showed up at
/// scale (ROADMAP: 1000-core memo probes walk long shared prefixes); a
/// single linear hash replaces O(log n) vector comparisons per probe.
/// Mixing both digests keeps the 64-bit fingerprints decorrelated from the
/// length-prefixed FNV-1a stream alone.
struct WidthVectorHash {
  std::size_t operator()(const std::vector<int>& widths) const {
    runtime::FnvHasher h;
    h.ints(widths);
    return static_cast<std::size_t>(h.digest_a() ^ (h.digest_b() >> 1));
  }
};

/// Evaluation results keyed by the architecture's width vector, shared by
/// every hill climb of one optimize() call. Concurrent climbs may race to
/// compute the same key; both compute the identical result, the second
/// insert is a no-op — correctness never depends on who wins.
///
/// The hit/miss counters are observability only (relaxed atomics, never
/// synchronization): the server's SessionCache keeps one memo alive across
/// requests and reports per-request deltas of these counters to prove that
/// repeat traffic on the same SOC is served from warm state.
struct ScheduleMemo {
  std::mutex mu;
  std::unordered_map<std::vector<int>, OptimizationResult, WidthVectorHash>
      results;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

/// One per-width cost column: the bus realization of that width and every
/// core's access cost on it. Immutable once built (shared_ptr<const> in the
/// cache), so readers never lock.
struct CostColumn {
  BusRealization bus;
  std::vector<BusAccessCost> cost;  // per core
};

/// Width-indexed column store shared across the hill climbs of one
/// optimize() call (ROADMAP: the memo was shared, the columns were not —
/// every climb rebuilt identical columns). Two climbs racing on the same
/// width both build the identical column; the first insert wins and the
/// loser's copy is dropped, costing one redundant build and nothing else.
/// hits/misses count probes of this shared store (an evaluator's private
/// lock-free view never reaches it) — the server's per-request cache
/// evidence, same contract as ScheduleMemo's counters.
struct ColumnCache {
  std::mutex mu;
  std::vector<std::shared_ptr<const CostColumn>> columns;  // indexed by width
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

class DeltaEvaluator {
 public:
  /// `opt`, `opts` — and `memo`/`columns`, when given — must outlive the
  /// evaluator. The evaluator keeps a private lock-free view of every
  /// column it has prepare()d; the shared caches are only touched on a
  /// local miss. Without external caches it uses private ones
  /// (single-climb scope).
  DeltaEvaluator(const SocOptimizer& opt, const OptimizerOptions& opts,
                 ScheduleMemo* memo = nullptr, ColumnCache* columns = nullptr);

  /// Computes and caches the cost column of every width in `archs` that is
  /// not cached yet. Call before a parallel evaluate() batch: afterwards
  /// evaluate()/lower_bound() on those architectures only read the local
  /// view, so they are safe to run concurrently.
  void prepare(const std::vector<TamArchitecture>& archs);

  /// True iff the admissible makespan lower bound of `arch` exceeds
  /// `threshold` — the work-conservation bound, tightened by the
  /// bus-capacity subset checks when opts.capacity_bound is set. A single
  /// O(n k + k 2^k) probe (sched/makespan_bound_exceeds), no scheduling,
  /// no binary search. Uses a per-evaluator scratch buffer — call from one
  /// thread at a time (the search's serial filter phases do).
  bool bound_exceeds(const TamArchitecture& arch,
                     std::int64_t threshold) const;

  /// Full evaluation (greedy construction + refine, wiring metrics) from
  /// cached columns, memoized by width vector; bit-identical to
  /// SocOptimizer::evaluate() on the same architecture. Every width must
  /// have been prepare()d. Thread-safe for distinct architectures (the
  /// deduped neighbourhoods the search batches).
  OptimizationResult evaluate(const TamArchitecture& arch) const;

  /// evaluate() with a warm-started greedy construction: consecutive SA
  /// proposals differ from the last evaluated architecture in at most two
  /// bus widths (wire move / split / merge), so the row-major time matrix
  /// is patched column-wise off the anchor and the construction order is
  /// served from a per-widest-width cache instead of re-sorting. The
  /// resulting schedule — and therefore the memoized OptimizationResult —
  /// is bit-identical to evaluate(): both funnel through
  /// greedy_schedule_prepared on equal inputs (pinned by tests). NOT
  /// thread-safe: the anchor is per-evaluator scratch; only a
  /// single-threaded owner (an AnnealWalk driving its own evaluator) may
  /// call it. Scenarios whose SchedulerBackend has no prepared entry
  /// point (power / preemptive / hierarchical) fall back to the cold path
  /// — still memoized and column-cached, so the incremental engine's
  /// reuse wins carry over to every scenario.
  OptimizationResult evaluate_warm(const TamArchitecture& arch);

  // Counter hooks for the search driver (single-threaded phases).
  void note_generated(std::uint64_t n) { base_.candidates_generated += n; }
  void note_pruned(std::uint64_t n) { base_.candidates_pruned += n; }
  void note_anneal_proposals(std::uint64_t n) { base_.anneal_proposals += n; }
  void note_anneal_pruned(std::uint64_t n) { base_.anneal_bound_pruned += n; }

  /// Snapshot including the concurrent scheduled-evaluation count; the
  /// driver flushes this into runtime::add_search_counters().
  runtime::SearchStats counters() const;

 private:
  const CostColumn& column(int width) const;  // throws if not prepare()d
  /// Cold evaluation off the cached columns (no memo interaction).
  OptimizationResult compute_cold(const TamArchitecture& arch) const;

  const SocOptimizer* opt_;
  const OptimizerOptions* opts_;
  /// The scenario's schedule constructor (src/scenario), fixed at
  /// construction from scenario_of(*opts_). bound_exceeds and the warm
  /// path dispatch through it; the cold path reaches it via
  /// SocOptimizer::evaluate_with.
  std::unique_ptr<SchedulerBackend> sched_;
  // Warm-start anchor: the width vector and row-major time matrix of the
  // last warm evaluation, plus construction orders keyed by the widest
  // bus's width VALUE (the reference column depends on nothing else).
  bool anchor_valid_ = false;
  std::vector<int> anchor_widths_;
  std::vector<std::int64_t> anchor_time_;
  std::unordered_map<int, std::shared_ptr<const std::vector<int>>>
      order_cache_;
  // Local lock-free view; shared_ptrs alias the ColumnCache's entries.
  std::vector<std::shared_ptr<const CostColumn>> columns_;
  runtime::SearchStats base_;
  mutable std::atomic<std::uint64_t> scheduled_{0};
  mutable std::atomic<std::uint64_t> sched_reuse_{0};
  mutable std::vector<std::int64_t> bound_scratch_;  // lower_bound workspace
  mutable ScheduleMemo own_memo_;
  ScheduleMemo* memo_;  // shared across climbs, or &own_memo_
  ColumnCache own_columns_;
  ColumnCache* shared_columns_;  // shared across climbs, or &own_columns_
};

}  // namespace soctest
