// DeltaEvaluator: incremental candidate evaluation for the step-3
// architecture search. The cost a core pays on a bus depends only on that
// bus's width (plus the fixed mode/constraint), so the per-(core, bus) cost
// table of a candidate architecture factors into per-width COLUMNS. A
// single-wire move changes at most two bus widths; every other column is
// reused from the cache, an O(1) CoreTable lookup away from free.
//
// On top of the columns sits a makespan LOWER BOUND
// (sched/schedule_lower_bound's formula): candidates whose bound already
// exceeds the incumbent makespan cannot win even on the volume tie-break,
// so the greedy + refine scheduler never runs for them. Survivors are
// batched through runtime::parallel_map and reduced in index order, which
// keeps the search bit-identical to the serial full-evaluation loop.
//
// Finally, evaluations are MEMOIZED by width vector: the wire-move
// neighbourhoods of consecutive hill-climb steps overlap heavily (any
// second move touching one of the two buses changed by the accepted move
// composes back to a single move from the previous incumbent), so a climb
// re-encounters architectures it already scheduled — and independent
// multi-start climbs converge into the same basins, re-encountering each
// other's candidates. Evaluation is a deterministic function of the
// architecture alone — the incumbent never enters it — so handing back a
// memoized result is exact, not an approximation, even when another climb
// produced it. The search therefore shares one ScheduleMemo across all
// climbs of an optimize() call.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "opt/soc_optimizer.hpp"
#include "runtime/stats.hpp"

namespace soctest {

/// Evaluation results keyed by the architecture's width vector, shared by
/// every hill climb of one optimize() call. Concurrent climbs may race to
/// compute the same key; both compute the identical result, the second
/// insert is a no-op — correctness never depends on who wins.
struct ScheduleMemo {
  std::mutex mu;
  std::map<std::vector<int>, OptimizationResult> results;
};

class DeltaEvaluator {
 public:
  /// `opt`, `opts` — and `memo`, when given — must outlive the evaluator.
  /// The column cache starts empty and persists across prepare() batches
  /// (a hill climb revisits widths constantly). Without an external memo
  /// the evaluator uses a private one (single-climb scope).
  DeltaEvaluator(const SocOptimizer& opt, const OptimizerOptions& opts,
                 ScheduleMemo* memo = nullptr);

  /// Computes and caches the cost column of every width in `archs` that is
  /// not cached yet. Call before a parallel evaluate() batch: afterwards
  /// evaluate()/lower_bound() on those architectures only read the cache,
  /// so they are safe to run concurrently.
  void prepare(const std::vector<TamArchitecture>& archs);

  /// Admissible lower bound on the makespan of any schedule for `arch`
  /// (max of the spread bound sum_i min_b t_ib / k and the per-core bound
  /// max_i min_b t_ib). O(n k) cache reads; no scheduling.
  std::int64_t lower_bound(const TamArchitecture& arch) const;

  /// Full evaluation (greedy construction + refine, wiring metrics) from
  /// cached columns, memoized by width vector; bit-identical to
  /// SocOptimizer::evaluate() on the same architecture. Every width must
  /// have been prepare()d. Thread-safe for distinct architectures (the
  /// deduped neighbourhoods the search batches).
  OptimizationResult evaluate(const TamArchitecture& arch) const;

  // Counter hooks for the search driver (single-threaded phases).
  void note_generated(std::uint64_t n) { base_.candidates_generated += n; }
  void note_pruned(std::uint64_t n) { base_.candidates_pruned += n; }

  /// Snapshot including the concurrent scheduled-evaluation count; the
  /// driver flushes this into runtime::add_search_counters().
  runtime::SearchStats counters() const;

 private:
  struct Column {
    BusRealization bus;
    std::vector<BusAccessCost> cost;  // per core
  };
  const Column& column(int width) const;  // throws if not prepare()d

  const SocOptimizer* opt_;
  const OptimizerOptions* opts_;
  std::vector<std::unique_ptr<Column>> columns_;  // indexed by width
  runtime::SearchStats base_;
  mutable std::atomic<std::uint64_t> scheduled_{0};
  mutable std::atomic<std::uint64_t> sched_reuse_{0};
  mutable ScheduleMemo own_memo_;
  ScheduleMemo* memo_;  // shared across climbs, or &own_memo_
};

}  // namespace soctest
