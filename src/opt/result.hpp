// Human-readable summaries of optimization results.
#pragma once

#include <string>

#include "opt/soc_optimizer.hpp"

namespace soctest {

/// Multi-line summary: architecture, per-core choices, schedule Gantt,
/// test time, data volume and wiring metrics.
std::string summarize(const OptimizationResult& result, const SocSpec& soc);

/// One-line summary for table rows.
std::string one_line(const OptimizationResult& result);

}  // namespace soctest
