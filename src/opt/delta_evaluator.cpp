#include "opt/delta_evaluator.hpp"

#include <algorithm>
#include <stdexcept>

namespace soctest {

DeltaEvaluator::DeltaEvaluator(const SocOptimizer& opt,
                               const OptimizerOptions& opts,
                               ScheduleMemo* memo)
    : opt_(&opt), opts_(&opts), memo_(memo ? memo : &own_memo_) {}

void DeltaEvaluator::prepare(const std::vector<TamArchitecture>& archs) {
  const int n = opt_->soc().num_cores();
  for (const TamArchitecture& arch : archs) {
    for (int v : arch.widths) {
      if (static_cast<std::size_t>(v) >= columns_.size())
        columns_.resize(static_cast<std::size_t>(v) + 1);
      if (columns_[static_cast<std::size_t>(v)]) {
        // A full evaluator would recompute this (candidate, bus) column;
        // the cache hands it over instead.
        ++base_.column_reuse_hits;
        continue;
      }
      auto col = std::make_unique<Column>();
      col->bus = opt_->realize_one(v, *opts_);
      col->cost.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        col->cost.push_back(opt_->access_cost(i, col->bus, *opts_));
      columns_[static_cast<std::size_t>(v)] = std::move(col);
      ++base_.columns_computed;
    }
  }
}

const DeltaEvaluator::Column& DeltaEvaluator::column(int width) const {
  if (width < 0 || static_cast<std::size_t>(width) >= columns_.size() ||
      !columns_[static_cast<std::size_t>(width)])
    throw std::logic_error("DeltaEvaluator: width " + std::to_string(width) +
                           " not prepared");
  return *columns_[static_cast<std::size_t>(width)];
}

std::int64_t DeltaEvaluator::lower_bound(const TamArchitecture& arch) const {
  const int n = opt_->soc().num_cores();
  const int k = arch.num_buses();
  std::vector<const Column*> cols;
  cols.reserve(static_cast<std::size_t>(k));
  for (int v : arch.widths) cols.push_back(&column(v));

  // schedule_lower_bound's formula, straight off the cached columns.
  std::int64_t sum_min = 0;
  std::int64_t max_min = 0;
  for (int i = 0; i < n; ++i) {
    std::int64_t mn = cols[0]->cost[static_cast<std::size_t>(i)].time;
    for (int b = 1; b < k; ++b)
      mn = std::min(mn, cols[static_cast<std::size_t>(b)]
                            ->cost[static_cast<std::size_t>(i)]
                            .time);
    sum_min += mn;
    max_min = std::max(max_min, mn);
  }
  if (n == 0) return 0;
  const std::int64_t spread = (sum_min + k - 1) / k;
  return std::max(spread, max_min);
}

OptimizationResult DeltaEvaluator::evaluate(const TamArchitecture& arch) const {
  {
    std::lock_guard<std::mutex> lk(memo_->mu);
    const auto it = memo_->results.find(arch.widths);
    if (it != memo_->results.end()) {
      sched_reuse_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  std::vector<BusRealization> buses;
  buses.reserve(static_cast<std::size_t>(arch.num_buses()));
  for (int v : arch.widths) buses.push_back(column(v).bus);
  const CostFn cost = [this, &arch](int core, int bus) {
    return column(arch.widths[static_cast<std::size_t>(bus)])
        .cost[static_cast<std::size_t>(core)];
  };
  scheduled_.fetch_add(1, std::memory_order_relaxed);
  OptimizationResult r = opt_->evaluate_with(arch, *opts_, std::move(buses),
                                             cost);
  {
    // A concurrent climb may have raced us to the same key; its result is
    // identical (evaluation is deterministic), so losing the emplace race
    // costs one redundant schedule and nothing else.
    std::lock_guard<std::mutex> lk(memo_->mu);
    memo_->results.emplace(arch.widths, r);
  }
  return r;
}

runtime::SearchStats DeltaEvaluator::counters() const {
  runtime::SearchStats s = base_;
  s.candidates_scheduled = scheduled_.load(std::memory_order_relaxed);
  s.schedule_reuse_hits = sched_reuse_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace soctest
