#include "opt/delta_evaluator.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/greedy_scheduler.hpp"

namespace soctest {

DeltaEvaluator::DeltaEvaluator(const SocOptimizer& opt,
                               const OptimizerOptions& opts,
                               ScheduleMemo* memo, ColumnCache* columns)
    : opt_(&opt),
      opts_(&opts),
      sched_(make_scheduler_backend(scenario_of(opts), opt.hierarchy())),
      memo_(memo ? memo : &own_memo_),
      shared_columns_(columns ? columns : &own_columns_) {}

void DeltaEvaluator::prepare(const std::vector<TamArchitecture>& archs) {
  const int n = opt_->soc().num_cores();
  for (const TamArchitecture& arch : archs) {
    for (int v : arch.widths) {
      const std::size_t w = static_cast<std::size_t>(v);
      if (w >= columns_.size()) columns_.resize(w + 1);
      if (columns_[w]) {
        // A full evaluator would recompute this (candidate, bus) column;
        // the cache hands it over instead.
        ++base_.column_reuse_hits;
        continue;
      }
      {
        // Another climb may have built this width already.
        std::lock_guard<std::mutex> lk(shared_columns_->mu);
        if (w < shared_columns_->columns.size() &&
            shared_columns_->columns[w]) {
          columns_[w] = shared_columns_->columns[w];
          ++base_.column_reuse_hits;
          shared_columns_->hits.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      }
      shared_columns_->misses.fetch_add(1, std::memory_order_relaxed);
      // Build outside the lock: column construction walks every core table
      // and must not serialize concurrent climbs.
      auto col = std::make_shared<CostColumn>();
      col->bus = opt_->realize_one(v, *opts_);
      col->cost.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        col->cost.push_back(opt_->access_cost(i, col->bus, *opts_));
      ++base_.columns_computed;
      {
        std::lock_guard<std::mutex> lk(shared_columns_->mu);
        if (w >= shared_columns_->columns.size())
          shared_columns_->columns.resize(w + 1);
        if (!shared_columns_->columns[w])
          shared_columns_->columns[w] = col;  // first build wins
        columns_[w] = shared_columns_->columns[w];
      }
    }
  }
}

const CostColumn& DeltaEvaluator::column(int width) const {
  if (width < 0 || static_cast<std::size_t>(width) >= columns_.size() ||
      !columns_[static_cast<std::size_t>(width)])
    throw std::logic_error("DeltaEvaluator: width " + std::to_string(width) +
                           " not prepared");
  return *columns_[static_cast<std::size_t>(width)];
}

bool DeltaEvaluator::bound_exceeds(const TamArchitecture& arch,
                                   std::int64_t threshold) const {
  const int n = opt_->soc().num_cores();
  const int k = arch.num_buses();
  std::vector<const CostColumn*> cols;
  cols.reserve(static_cast<std::size_t>(k));
  for (int v : arch.widths) cols.push_back(&column(v));

  // Row-major time matrix off the cached columns; the bound core in sched/
  // takes it straight (no CostTable materialization).
  bound_scratch_.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(k), 0);
  for (int i = 0; i < n; ++i) {
    const std::size_t row =
        static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    for (int b = 0; b < k; ++b)
      bound_scratch_[row + static_cast<std::size_t>(b)] =
          cols[static_cast<std::size_t>(b)]
              ->cost[static_cast<std::size_t>(i)]
              .time;
  }
  return sched_->bound_exceeds(n, k, bound_scratch_, threshold,
                               opts_->capacity_bound);
}

OptimizationResult DeltaEvaluator::compute_cold(
    const TamArchitecture& arch) const {
  std::vector<BusRealization> buses;
  buses.reserve(static_cast<std::size_t>(arch.num_buses()));
  for (int v : arch.widths) buses.push_back(column(v).bus);
  const CostFn cost = [this, &arch](int core, int bus) {
    return column(arch.widths[static_cast<std::size_t>(bus)])
        .cost[static_cast<std::size_t>(core)];
  };
  scheduled_.fetch_add(1, std::memory_order_relaxed);
  return opt_->evaluate_with(arch, *opts_, std::move(buses), cost);
}

OptimizationResult DeltaEvaluator::evaluate(const TamArchitecture& arch) const {
  {
    std::lock_guard<std::mutex> lk(memo_->mu);
    const auto it = memo_->results.find(arch.widths);
    if (it != memo_->results.end()) {
      sched_reuse_.fetch_add(1, std::memory_order_relaxed);
      memo_->hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    memo_->misses.fetch_add(1, std::memory_order_relaxed);
  }
  OptimizationResult r = compute_cold(arch);
  {
    // A concurrent climb may have raced us to the same key; its result is
    // identical (evaluation is deterministic), so losing the emplace race
    // costs one redundant schedule and nothing else.
    std::lock_guard<std::mutex> lk(memo_->mu);
    memo_->results.emplace(arch.widths, r);
  }
  return r;
}

OptimizationResult DeltaEvaluator::evaluate_warm(const TamArchitecture& arch) {
  {
    std::lock_guard<std::mutex> lk(memo_->mu);
    const auto it = memo_->results.find(arch.widths);
    if (it != memo_->results.end()) {
      sched_reuse_.fetch_add(1, std::memory_order_relaxed);
      memo_->hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    memo_->misses.fetch_add(1, std::memory_order_relaxed);
  }

  OptimizationResult r;
  if (!sched_->supports_prepared()) {
    // Constrained scenarios (power / preemptive / hierarchical) have no
    // prepared entry point — their event order depends on power and
    // lineage state, so a cached sort buys nothing. Cold path, identical
    // results; the memo and columns above still do the heavy lifting.
    r = compute_cold(arch);
  } else {
    arch.validate();
    const int n = opt_->soc().num_cores();
    const int k = arch.num_buses();
    const std::size_t ks = static_cast<std::size_t>(k);

    // Patch the anchor matrix when the proposal touches at most two buses
    // (wire move) and keeps the bus count; rebuild it otherwise (split /
    // merge change k, so every column shifts position).
    int changed[2] = {-1, -1};
    int nchanged = 0;
    bool patch = anchor_valid_ && anchor_widths_.size() == arch.widths.size();
    if (patch) {
      for (int b = 0; b < k; ++b) {
        if (anchor_widths_[static_cast<std::size_t>(b)] ==
            arch.widths[static_cast<std::size_t>(b)])
          continue;
        if (nchanged == 2) {
          patch = false;
          break;
        }
        changed[nchanged++] = b;
      }
    }
    if (patch) {
      for (int j = 0; j < nchanged; ++j) {
        const int b = changed[j];
        const CostColumn& col =
            column(arch.widths[static_cast<std::size_t>(b)]);
        for (int i = 0; i < n; ++i)
          anchor_time_[static_cast<std::size_t>(i) * ks +
                       static_cast<std::size_t>(b)] =
              col.cost[static_cast<std::size_t>(i)].time;
        anchor_widths_[static_cast<std::size_t>(b)] =
            arch.widths[static_cast<std::size_t>(b)];
      }
      ++base_.warm_schedule_starts;
    } else {
      anchor_time_.assign(static_cast<std::size_t>(n) * ks, 0);
      for (int b = 0; b < k; ++b) {
        const CostColumn& col =
            column(arch.widths[static_cast<std::size_t>(b)]);
        for (int i = 0; i < n; ++i)
          anchor_time_[static_cast<std::size_t>(i) * ks +
                       static_cast<std::size_t>(b)] =
              col.cost[static_cast<std::size_t>(i)].time;
      }
      anchor_widths_ = arch.widths;
      anchor_valid_ = true;
    }

    // Construction order: the reference column is the first-argmax widest
    // bus's times, which depend only on that bus's width VALUE — cache the
    // sorted order per value instead of re-sorting every proposal.
    int widest = 0;
    for (int b = 1; b < k; ++b)
      if (arch.widths[static_cast<std::size_t>(b)] >
          arch.widths[static_cast<std::size_t>(widest)])
        widest = b;
    const int wv = arch.widths[static_cast<std::size_t>(widest)];
    auto oit = order_cache_.find(wv);
    if (oit == order_cache_.end()) {
      const CostColumn& col = column(wv);
      std::vector<std::int64_t> ref(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        ref[static_cast<std::size_t>(i)] =
            col.cost[static_cast<std::size_t>(i)].time;
      oit = order_cache_
                .emplace(wv, std::make_shared<const std::vector<int>>(
                                 schedule_core_order(n, ref)))
                .first;
    }

    std::vector<BusRealization> buses;
    buses.reserve(ks);
    for (int v : arch.widths) buses.push_back(column(v).bus);
    const CostFn cost = [this, &arch](int core, int bus) {
      return column(arch.widths[static_cast<std::size_t>(bus)])
          .cost[static_cast<std::size_t>(core)];
    };
    Schedule s =
        sched_->construct_prepared(n, k, anchor_time_, *oit->second, cost);
    scheduled_.fetch_add(1, std::memory_order_relaxed);
    r = opt_->evaluate_scheduled(arch, *opts_, std::move(buses), cost,
                                 std::move(s));
  }

  {
    std::lock_guard<std::mutex> lk(memo_->mu);
    memo_->results.emplace(arch.widths, r);
  }
  return r;
}

runtime::SearchStats DeltaEvaluator::counters() const {
  runtime::SearchStats s = base_;
  s.candidates_scheduled = scheduled_.load(std::memory_order_relaxed);
  s.schedule_reuse_hits = sched_reuse_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace soctest
