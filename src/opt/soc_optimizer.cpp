#include "opt/soc_optimizer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "bitvec/bit_util.hpp"
#include "decomp/area_model.hpp"
#include "power/power_model.hpp"
#include "scenario/scheduler_backend.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/power_scheduler.hpp"

namespace soctest {

std::string to_string(ArchMode m) {
  switch (m) {
    case ArchMode::NoTdc: return "no-TDC";
    case ArchMode::PerTam: return "decompressor-per-TAM";
    case ArchMode::PerCore: return "decompressor-per-core";
    case ArchMode::FixedWidth4: return "fixed-w4";
  }
  return "?";
}

std::string to_string(ConstraintMode c) {
  return c == ConstraintMode::TamWidth ? "TAM-width" : "ATE-channels";
}

std::string to_string(BackendKind b) {
  switch (b) {
    case BackendKind::FixedBus: return "fixed";
    case BackendKind::Rect: return "rect";
    case BackendKind::Race: return "race";
  }
  return "?";
}

ScenarioSpec scenario_of(const OptimizerOptions& opts) {
  ScenarioSpec s;
  s.power_cap_mw = opts.power_budget_mw;
  s.preemptive = opts.preemptive;
  s.hierarchical = opts.hierarchical;
  return s;
}

void apply_scenario(const ScenarioSpec& s, OptimizerOptions& opts) {
  opts.power_budget_mw = s.power_cap_mw;
  opts.preemptive = s.preemptive;
  opts.hierarchical = s.hierarchical;
  if (s.width > 0) opts.width = s.width;
}

SocOptimizer::SocOptimizer(const SocSpec& soc, ExploreOptions explore)
    : soc_(&soc), explore_(explore) {
  soc.validate();
  tables_ = explore_soc(soc, explore_);
  hierarchy_ = soc.hierarchy_parent.empty()
                   ? HierarchySpec::flat(soc.num_cores())
                   : HierarchySpec{soc.hierarchy_parent};
}

SocOptimizer::SocOptimizer(const SocSpec& soc, std::vector<CoreTable> tables,
                           ExploreOptions explore)
    : soc_(&soc), explore_(explore), tables_(std::move(tables)) {
  soc.validate();
  if (tables_.size() != soc.cores.size())
    throw std::invalid_argument("SocOptimizer: one table per core required");
  for (std::size_t i = 0; i < tables_.size(); ++i)
    if (tables_[i].core_name() != soc.cores[i].spec.name)
      throw std::invalid_argument("SocOptimizer: table order mismatch at " +
                                  soc.cores[i].spec.name);
  hierarchy_ = soc.hierarchy_parent.empty()
                   ? HierarchySpec::flat(soc.num_cores())
                   : HierarchySpec{soc.hierarchy_parent};
}

int SocOptimizer::choose_per_tam_fanout(int ate_width) const {
  // All cores on the bus share one decompressor whose codeword width must
  // fit in ate_width wires (it may use fewer when the cores are too small
  // to exploit the full band). Pick the fan-out column minimizing the
  // summed per-core compressed time.
  const int lo = 2;
  const int hi = std::min(explore_.max_chains, max_chains_for_width(ate_width));
  int best_m = 0;
  std::int64_t best_sum = std::numeric_limits<std::int64_t>::max();
  for (int m = lo; m <= hi; ++m) {
    std::int64_t sum = 0;
    bool all = true;
    for (const CoreTable& t : tables_) {
      const SweepPoint* pt = t.at_chains(m);
      if (!pt) {
        // Core too small for m chains: fall back to its largest geometry.
        const auto& sweep = t.sweep();
        if (sweep.empty()) {
          all = false;
          break;
        }
        sum += sweep.back().test_time;
        continue;
      }
      sum += pt->test_time;
    }
    if (all && sum < best_sum) {
      best_sum = sum;
      best_m = m;
    }
  }
  return best_m;
}

BusRealization SocOptimizer::realize_one(int v,
                                         const OptimizerOptions& opts) const {
  BusRealization b;
  b.alloc_width = v;
  switch (opts.mode) {
    case ArchMode::NoTdc:
      b.ate_width = v;
      b.onchip_width = v;
      break;
    case ArchMode::PerCore:
    case ArchMode::FixedWidth4:
      // Compressed data is routed; expansion happens at each core.
      b.ate_width = v;
      b.onchip_width = v;
      break;
    case ArchMode::PerTam:
      if (opts.constraint == ConstraintMode::TamWidth) {
        // The expanded bus is what occupies on-chip wires.
        b.onchip_width = v;
        b.m = v >= 2 ? v : 0;
        b.ate_width = b.m >= 2 ? codeword_width_for_chains(b.m) : v;
        b.has_decompressor = b.m >= 2;
      } else {
        b.ate_width = v;
        b.m = v >= 4 ? choose_per_tam_fanout(v) : 0;
        b.has_decompressor = b.m >= 2;
        b.onchip_width = b.has_decompressor ? b.m : v;
      }
      break;
  }
  return b;
}

std::vector<BusRealization> SocOptimizer::realize(
    const TamArchitecture& arch, const OptimizerOptions& opts) const {
  std::vector<BusRealization> buses;
  buses.reserve(static_cast<std::size_t>(arch.num_buses()));
  for (int v : arch.widths) buses.push_back(realize_one(v, opts));
  return buses;
}

BusAccessCost SocOptimizer::serialized_best(int core, int v) const {
  // Deliver w(m)-bit codewords over v wires in ceil(w/v) ATE cycles each.
  const CoreTable& t = tables_[static_cast<std::size_t>(core)];
  const CoreUnderTest& c = soc_->cores[static_cast<std::size_t>(core)];
  BusAccessCost best;
  best.time = std::numeric_limits<std::int64_t>::max();
  for (const SweepPoint& pt : t.sweep()) {
    const std::int64_t cycles =
        pt.codewords * ceil_div(pt.w, v) + pt.scan_out + c.spec.num_patterns;
    if (cycles < best.time) {
      best.time = cycles;
      best.volume_bits = pt.data_volume_bits;
      CoreChoice choice;
      choice.mode = AccessMode::Compressed;
      choice.technique = Technique::SelectiveEncoding;
      choice.tam_width = v;
      choice.wires_used = v;
      choice.m = pt.m;
      choice.test_time = cycles;
      choice.data_volume_bits = pt.data_volume_bits;
      best.choice = choice;
    }
  }
  // Plain access over v wires is always available.
  const CoreChoice& d = t.direct(std::min(v, t.max_width()));
  if (d.test_time < best.time) {
    best.time = d.test_time;
    best.volume_bits = d.data_volume_bits;
    best.choice = d;
  }
  return best;
}

BusAccessCost SocOptimizer::access_cost(int core, const BusRealization& bus,
                                        const OptimizerOptions& opts) const {
  const CoreTable& t = tables_[static_cast<std::size_t>(core)];
  const auto clamp_w = [&](int w) {
    return std::max(1, std::min(w, t.max_width()));
  };
  BusAccessCost out;
  switch (opts.mode) {
    case ArchMode::NoTdc: {
      const CoreChoice& d = t.direct(clamp_w(bus.alloc_width));
      out = {d.test_time, d.data_volume_bits, d};
      break;
    }
    case ArchMode::PerCore: {
      const CoreChoice& b = t.best(clamp_w(bus.alloc_width));
      out = {b.test_time, b.data_volume_bits, b};
      break;
    }
    case ArchMode::FixedWidth4:
      out = serialized_best(core, bus.alloc_width);
      break;
    case ArchMode::PerTam: {
      // Compressed access through the shared bus decompressor, or direct
      // bypass over the ATE-side wires.
      const CoreChoice& d = t.direct(clamp_w(
          opts.constraint == ConstraintMode::TamWidth ? bus.onchip_width
                                                      : bus.ate_width));
      out = {d.test_time, d.data_volume_bits, d};
      if (bus.has_decompressor) {
        if (const SweepPoint* pt = t.at_chains(bus.m)) {
          if (pt->test_time < out.time) {
            out.time = pt->test_time;
            out.volume_bits = pt->data_volume_bits;
            CoreChoice choice;
            choice.mode = AccessMode::Compressed;
            choice.technique = Technique::SelectiveEncoding;
            choice.tam_width = bus.alloc_width;
            choice.wires_used = bus.ate_width;
            choice.m = pt->m;
            choice.test_time = pt->test_time;
            choice.data_volume_bits = pt->data_volume_bits;
            out.choice = choice;
          }
        }
      }
      break;
    }
  }
  return out;
}

OptimizationResult SocOptimizer::evaluate(const TamArchitecture& arch,
                                          const OptimizerOptions& opts) const {
  const std::vector<BusRealization> buses = realize(arch, opts);
  const CostFn cost = [&](int core, int bus) {
    return access_cost(core, buses[static_cast<std::size_t>(bus)], opts);
  };
  // `buses` is copied in (not moved): the cost lambda reads the local.
  return evaluate_with(arch, opts, buses, cost);
}

OptimizationResult SocOptimizer::evaluate_with(
    const TamArchitecture& arch, const OptimizerOptions& opts,
    std::vector<BusRealization> buses, const CostFn& cost) const {
  arch.validate();
  const int n = soc_->num_cores();
  const CostTable table = build_cost_table(n, arch.num_buses(), cost);

  // Reference ordering: test time on the widest bus (longest first).
  int widest = 0;
  for (int b = 1; b < arch.num_buses(); ++b)
    if (arch.widths[static_cast<std::size_t>(b)] >
        arch.widths[static_cast<std::size_t>(widest)])
      widest = b;
  std::vector<std::int64_t> ref(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    ref[static_cast<std::size_t>(i)] = table.at(i, widest).time;

  // Scenario dispatch: every evaluation funnels through the scenario's
  // SchedulerBackend (src/scenario). The default scenario resolves to the
  // greedy backend, whose construct() routes through the exact
  // greedy_schedule path used before the extraction — byte-identical
  // output, pinned by the golden-report tests.
  const auto sched = make_scheduler_backend(scenario_of(opts), hierarchy_);
  const CostFn table_cost = [&](int core, int bus) {
    return table.at(core, bus);
  };
  const PowerFn power = [&](int core, int bus) {
    return core_test_power(soc_->cores[static_cast<std::size_t>(core)].spec,
                           table.at(core, bus).choice);
  };
  Schedule schedule =
      sched->construct(n, arch.num_buses(), table_cost, power, ref);
  // Hand the resolved table (not the raw cost source) to the tail: the
  // peak-power pass re-reads per-entry choices and must stay O(1) a cell.
  const CostFn resolved = [&table](int core, int bus) {
    return table.at(core, bus);
  };
  return evaluate_scheduled(arch, opts, std::move(buses), resolved,
                            std::move(schedule));
}

OptimizationResult SocOptimizer::evaluate_scheduled(
    const TamArchitecture& arch, const OptimizerOptions& opts,
    std::vector<BusRealization> buses, const CostFn& cost,
    Schedule schedule) const {
  OptimizationResult r;
  r.mode = opts.mode;
  r.constraint = opts.constraint;
  r.scenario = scenario_of(opts);
  // Record the EFFECTIVE scenario: preempt without a cap runs the plain
  // scheduler (make_scheduler_backend normalizes it away), so the report —
  // and its byte-identity to the unconstrained one — must not claim
  // otherwise.
  if (r.scenario.power_cap_mw == 0.0) r.scenario.preemptive = false;
  r.arch = arch;
  r.buses = std::move(buses);
  r.schedule = std::move(schedule);

  const PowerFn power = [&](int core, int bus) {
    return core_test_power(soc_->cores[static_cast<std::size_t>(core)].spec,
                           cost(core, bus).choice);
  };
  r.test_time = r.schedule.makespan();
  r.data_volume_bits = r.schedule.total_volume_bits;
  r.peak_power_mw = schedule_peak_power(r.schedule, power);

  // Wiring / hardware metrics.
  for (const BusRealization& b : r.buses) {
    r.wiring.onchip_wires += b.onchip_width;
    r.wiring.ate_channels += b.ate_width;
    if (b.has_decompressor) {
      ++r.wiring.decompressors;
      const DecompressorArea a =
          decompressor_area(CodecParams::for_chains(std::max(2, b.m)));
      r.wiring.total_flip_flops += a.flip_flops;
      r.wiring.total_gates += a.gates;
    }
  }
  if (opts.mode == ArchMode::PerCore || opts.mode == ArchMode::FixedWidth4) {
    // One decompressor per CORE, not per entry: preemptive scenarios list
    // a core once per segment, all segments sharing the core's single
    // decompressor. Non-segmented schedules list each core exactly once,
    // so the dedup is invisible there.
    std::vector<bool> seen(static_cast<std::size_t>(soc_->num_cores()), false);
    for (const ScheduleEntry& e : r.schedule.entries) {
      if (seen[static_cast<std::size_t>(e.core)]) continue;
      seen[static_cast<std::size_t>(e.core)] = true;
      if (e.choice.mode == AccessMode::Compressed && e.choice.m >= 2) {
        ++r.wiring.decompressors;
        const DecompressorArea a =
            decompressor_area(CodecParams::for_chains(e.choice.m));
        r.wiring.total_flip_flops += a.flip_flops;
        r.wiring.total_gates += a.gates;
      }
    }
  }
  return r;
}

}  // namespace soctest
